#include "serve/service.h"

#include <chrono>
#include <cstdio>
#include <unordered_map>
#include <utility>

#include "baselines/matchers.h"
#include "core/hashing.h"
#include "core/log.h"
#include "data/json.h"
#include "data/record.h"

namespace promptem::serve {

namespace {

/// Restart-stable fingerprint of the run options that shape a trained
/// matcher. Any knob that changes the trained weights (seed, epochs,
/// lr, ...) must fold in here: a score cached under one option set must
/// never be served for another. Formatted text, not raw struct bytes,
/// so padding and float representation stay out of the key.
uint64_t OptionsFingerprint(const train::RunOptions& options) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%llu|%d|%d|%.9g|%d|%d|%.17g|%.17g|%d|",
                static_cast<unsigned long long>(options.seed), options.epochs,
                options.student_epochs, static_cast<double>(options.lr),
                options.batch_size, options.mc_passes, options.pseudo_ratio,
                options.prune_ratio, options.prune_every);
  return core::Fnv1a64(options.pseudo_strategy, core::Fnv1a64(buf));
}

MatchResponse ErrorResponse(uint64_t id, ResponseStatus status,
                            std::string error) {
  MatchResponse response;
  response.id = id;
  response.status = status;
  response.error = std::move(error);
  return response;
}

}  // namespace

MatchService::MatchService(const lm::PretrainedLM* lm,
                           data::GemDataset dataset,
                           data::LowResourceSplit split,
                           train::RunOptions options, Config config)
    : lm_(lm),
      dataset_(std::move(dataset)),
      split_(std::move(split)),
      config_(std::move(config)) {
  ctx_.lm = lm_;
  ctx_.kind = config_.kind;
  ctx_.dataset = &dataset_;
  ctx_.split = &split_;
  ctx_.options = options;

  // Matcher list = default first, then extras, deduplicated in order.
  std::vector<std::string> names;
  names.push_back(config_.default_matcher);
  for (const std::string& name : config_.matchers) {
    bool seen = false;
    for (const std::string& have : names) seen = seen || have == name;
    if (!seen) names.push_back(name);
  }
  const uint64_t dataset_fp = data::DatasetFingerprint(dataset_);
  const uint64_t options_fp = OptionsFingerprint(ctx_.options);
  for (std::string& name : names) {
    Entry entry;
    entry.context_tag = em::EmbeddingCache::ContextTag(
        dataset_fp, core::Combine64(core::Fnv1a64(name), options_fp));
    entry.name = std::move(name);
    entries_.push_back(std::move(entry));
  }
}

core::Status MatchService::TrainAll(train::TrainObserver* observer) {
  baselines::EnsureBaselineMatchersRegistered();
  auto& registry = train::MatcherRegistry::Instance();
  for (const Entry& entry : entries_) {
    if (!registry.Contains(entry.name)) {
      return core::Status::InvalidArgument("unknown matcher: " + entry.name);
    }
  }
  ctx_.observer = observer;
  for (Entry& entry : entries_) {
    entry.matcher = registry.Create(entry.name);
    entry.matcher->Train(ctx_);
  }
  ctx_.observer = nullptr;
  trained_ = true;
  return core::Status::OK();
}

MatchService::Entry* MatchService::FindEntry(const std::string& name) {
  const std::string& wanted = name.empty() ? config_.default_matcher : name;
  for (Entry& entry : entries_) {
    if (entry.name == wanted) return &entry;
  }
  return nullptr;
}

const MatchService::Entry* MatchService::FindEntry(
    const std::string& name) const {
  return const_cast<MatchService*>(this)->FindEntry(name);
}

bool MatchService::HasMatcher(const std::string& name) const {
  return FindEntry(name) != nullptr;
}

bool MatchService::ValidateRequest(const MatchRequest& request, Entry** entry,
                                   MatchResponse* error) {
  *entry = FindEntry(request.matcher);
  if (*entry == nullptr) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    *error = ErrorResponse(request.id, ResponseStatus::kUnknownMatcher,
                           "unknown matcher: " + request.matcher);
    return false;
  }
  const int left_rows = static_cast<int>(dataset_.left_table.size());
  const int right_rows = static_cast<int>(dataset_.right_table.size());
  for (const data::PairExample& pair : request.pairs) {
    if (pair.left_index < 0 || pair.left_index >= left_rows ||
        pair.right_index < 0 || pair.right_index >= right_rows) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "pair [%d, %d] out of range (tables are %d x %d)",
                    pair.left_index, pair.right_index, left_rows, right_rows);
      *error = ErrorResponse(request.id, ResponseStatus::kBadRequest, buf);
      return false;
    }
  }
  return true;
}

std::vector<std::array<float, 2>> MatchService::ScoreCached(
    Entry* entry, const std::vector<data::PairExample>& pairs) {
  PROMPTEM_CHECK_MSG(trained_, "MatchService::TrainAll must run first");
  em::EmbeddingCache* cache = config_.score_cache.get();
  if (cache == nullptr) {
    sweeps_.fetch_add(1, std::memory_order_relaxed);
    pairs_scored_.fetch_add(pairs.size(), std::memory_order_relaxed);
    return entry->matcher->ScoreProbs(ctx_, pairs);
  }

  std::vector<std::array<float, 2>> probs(pairs.size());
  std::vector<size_t> miss_slots;
  std::vector<data::PairExample> miss_pairs;
  for (size_t i = 0; i < pairs.size(); ++i) {
    const uint64_t key = em::EmbeddingCache::PairKey(
        entry->context_tag, pairs[i].left_index, pairs[i].right_index);
    const auto hit = cache->Find(key);
    if (hit != nullptr && hit->size() == 2) {
      probs[i] = {(*hit)[0], (*hit)[1]};
      score_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      miss_slots.push_back(i);
      miss_pairs.push_back(pairs[i]);
    }
  }
  if (!miss_pairs.empty()) {
    sweeps_.fetch_add(1, std::memory_order_relaxed);
    pairs_scored_.fetch_add(miss_pairs.size(), std::memory_order_relaxed);
    const std::vector<std::array<float, 2>> fresh =
        entry->matcher->ScoreProbs(ctx_, miss_pairs);
    PROMPTEM_CHECK(fresh.size() == miss_pairs.size());
    for (size_t m = 0; m < miss_slots.size(); ++m) {
      probs[miss_slots[m]] = fresh[m];
      const uint64_t key = em::EmbeddingCache::PairKey(
          entry->context_tag, miss_pairs[m].left_index,
          miss_pairs[m].right_index);
      cache->Insert(key, {fresh[m][0], fresh[m][1]});
    }
  }
  return probs;
}

MatchResponse MatchService::Score(const MatchRequest& request) {
  if (request.op == RequestOp::kInfo) {
    MatchResponse response;
    response.id = request.id;
    response.status = ResponseStatus::kOk;
    response.info = InfoJson();
    return response;
  }
  Entry* entry = nullptr;
  MatchResponse response;
  if (!ValidateRequest(request, &entry, &response)) return response;
  response.id = request.id;
  response.status = ResponseStatus::kOk;
  response.probs = ScoreCached(entry, request.pairs);
  response.labels.reserve(response.probs.size());
  for (const auto& p : response.probs) {
    response.labels.push_back(p[1] >= p[0] ? 1 : 0);
  }
  response.batch_size = request.pairs.size();
  requests_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

void MatchService::HandleBatch(std::vector<PendingRequest> batch) {
  const auto now = std::chrono::steady_clock::now();

  // Admission -> completion triage. Expired requests are answered without
  // scoring (their client has already given up; burning a sweep on them
  // only delays the live ones behind them in the batch).
  struct Live {
    PendingRequest* pending;
    Entry* entry;
  };
  std::vector<Live> live;
  live.reserve(batch.size());
  for (PendingRequest& pending : batch) {
    if (pending.request.op == RequestOp::kInfo) {
      MatchResponse response;
      response.id = pending.request.id;
      response.status = ResponseStatus::kOk;
      response.info = InfoJson();
      pending.complete(std::move(response));
      continue;
    }
    if (pending.has_deadline && now > pending.deadline) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      pending.complete(ErrorResponse(pending.request.id,
                                     ResponseStatus::kDeadlineExceeded,
                                     "deadline expired before scoring"));
      continue;
    }
    Entry* entry = nullptr;
    MatchResponse error;
    if (!ValidateRequest(pending.request, &entry, &error)) {
      pending.complete(std::move(error));
      continue;
    }
    live.push_back({&pending, entry});
  }

  // Group by matcher, preserving arrival order within each group, and
  // ride every group through one coalesced sweep.
  std::unordered_map<Entry*, std::vector<Live*>> groups;
  std::vector<Entry*> group_order;
  for (Live& request : live) {
    auto [it, inserted] = groups.try_emplace(request.entry);
    if (inserted) group_order.push_back(request.entry);
    it->second.push_back(&request);
  }
  for (Entry* entry : group_order) {
    const std::vector<Live*>& members = groups[entry];
    std::vector<data::PairExample> coalesced;
    for (const Live* member : members) {
      const auto& pairs = member->pending->request.pairs;
      coalesced.insert(coalesced.end(), pairs.begin(), pairs.end());
    }
    const std::vector<std::array<float, 2>> probs =
        ScoreCached(entry, coalesced);
    size_t offset = 0;
    for (Live* member : members) {
      const size_t n = member->pending->request.pairs.size();
      MatchResponse response;
      response.id = member->pending->request.id;
      response.status = ResponseStatus::kOk;
      response.probs.assign(probs.begin() + offset, probs.begin() + offset + n);
      response.labels.reserve(n);
      for (const auto& p : response.probs) {
        response.labels.push_back(p[1] >= p[0] ? 1 : 0);
      }
      response.batch_size = coalesced.size();
      offset += n;
      requests_.fetch_add(1, std::memory_order_relaxed);
      member->pending->complete(std::move(response));
    }
  }
}

std::string MatchService::InfoJson() const {
  std::vector<data::Value> matchers;
  for (const Entry& entry : entries_) {
    matchers.push_back(data::Value::Str(entry.name));
  }
  return data::ToJson(data::Value::Object({
      {"dataset", data::Value::Str(dataset_.name)},
      {"left_rows",
       data::Value::Num(static_cast<double>(dataset_.left_table.size()))},
      {"right_rows",
       data::Value::Num(static_cast<double>(dataset_.right_table.size()))},
      {"matchers", data::Value::List(std::move(matchers))},
      {"default_matcher", data::Value::Str(config_.default_matcher)},
      {"score_cache",
       data::Value::Num(config_.score_cache != nullptr ? 1 : 0)},
      // Entries resident in the warm store without having been
      // materialized: nonzero only for an mmap-attached cache, where a
      // restart serves straight from the mapping.
      {"score_cache_persisted",
       data::Value::Num(config_.score_cache != nullptr
                            ? static_cast<double>(
                                  config_.score_cache->PersistedEntries())
                            : 0)},
  }));
}

MatchService::Stats MatchService::stats() const {
  Stats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.pairs_scored = pairs_scored_.load(std::memory_order_relaxed);
  stats.score_hits = score_hits_.load(std::memory_order_relaxed);
  stats.expired = expired_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.sweeps = sweeps_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace promptem::serve
