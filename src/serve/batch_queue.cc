#include "serve/batch_queue.h"

#include <utility>

#include "core/log.h"

namespace promptem::serve {

BatchQueue::BatchQueue(Config config) : config_(config) {
  PROMPTEM_CHECK(config_.capacity > 0);
  PROMPTEM_CHECK(config_.max_batch > 0);
}

bool BatchQueue::TryEnqueue(PendingRequest request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || queue_.size() >= config_.capacity) {
      ++stats_.shed;
      return false;
    }
    queue_.push_back(std::move(request));
    ++stats_.enqueued;
  }
  ready_.notify_one();
  return true;
}

std::vector<PendingRequest> BatchQueue::DequeueBatch() {
  std::unique_lock<std::mutex> lock(mu_);
  ready_.wait(lock, [this] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return {};  // closed and drained

  if (config_.linger.count() > 0 && queue_.size() < config_.max_batch &&
      !closed_) {
    // Hold a small batch open briefly; more arrivals coalesce into this
    // sweep instead of paying a whole scoring cycle of queueing delay.
    ready_.wait_for(lock, config_.linger, [this] {
      return queue_.size() >= config_.max_batch || closed_;
    });
  }

  std::vector<PendingRequest> batch;
  const size_t take = std::min(queue_.size(), config_.max_batch);
  batch.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  ++stats_.batches;
  stats_.dequeued += batch.size();
  return batch;
}

void BatchQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  ready_.notify_all();
}

size_t BatchQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

bool BatchQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

BatchQueue::Stats BatchQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace promptem::serve
