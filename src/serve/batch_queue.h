#ifndef PROMPTEM_SERVE_BATCH_QUEUE_H_
#define PROMPTEM_SERVE_BATCH_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "serve/protocol.h"

namespace promptem::serve {

/// One admitted request waiting for (or riding in) a scoring sweep.
struct PendingRequest {
  MatchRequest request;
  /// Absolute expiry, meaningful when has_deadline. Derived from
  /// deadline_ms at admission so queue time counts against the budget.
  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;
  std::chrono::steady_clock::time_point enqueue_time{};
  /// Called exactly once, from whichever thread resolves the request
  /// (scorer thread for scored/expired work, drain path for shutdown).
  /// Must not throw; must tolerate a dead client.
  std::function<void(MatchResponse)> complete;
};

/// The admission-control and coalescing point between transport threads
/// (producers: one per connection) and the scorer loop (consumer).
///
/// Bounded: TryEnqueue refuses — never blocks — when `capacity` requests
/// are waiting, so a traffic spike degrades into explicit `overloaded`
/// responses instead of unbounded memory growth and collapsing latency
/// (shed early, shed loudly). DequeueBatch blocks for the first request
/// only, then greedily drains up to `max_batch` more: under load, the
/// requests that accumulated while the scorer was busy form the next
/// batch — natural coalescing with zero added idle latency. `linger`
/// optionally holds a sub-max batch open for stragglers, trading a bounded
/// latency bump for larger sweeps.
class BatchQueue {
 public:
  struct Config {
    size_t capacity = 256;  ///< max requests waiting (not yet dequeued)
    size_t max_batch = 64;  ///< max requests per DequeueBatch
    std::chrono::microseconds linger{0};
  };

  struct Stats {
    uint64_t enqueued = 0;
    uint64_t shed = 0;      ///< refused by admission control
    uint64_t batches = 0;   ///< non-empty DequeueBatch returns
    uint64_t dequeued = 0;  ///< requests handed to the scorer
  };

  explicit BatchQueue(Config config);

  /// False = shed (queue full) or closed; the caller owns the response.
  bool TryEnqueue(PendingRequest request);

  /// Blocks until at least one request is available (or the queue is
  /// closed and empty — then returns an empty batch, the consumer's
  /// signal to exit). After Close, keeps returning queued work until the
  /// backlog drains: shutdown finishes admitted requests.
  std::vector<PendingRequest> DequeueBatch();

  /// Stops admission; wakes blocked consumers once the backlog drains.
  void Close();

  size_t depth() const;
  bool closed() const;
  Stats stats() const;

 private:
  const Config config_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<PendingRequest> queue_;
  bool closed_ = false;
  Stats stats_;
};

}  // namespace promptem::serve

#endif  // PROMPTEM_SERVE_BATCH_QUEUE_H_
