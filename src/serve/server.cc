#include "serve/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "core/log.h"

namespace promptem::serve {

namespace {

MatchResponse StatusResponse(uint64_t id, ResponseStatus status,
                             std::string error) {
  MatchResponse response;
  response.id = id;
  response.status = status;
  response.error = std::move(error);
  return response;
}

}  // namespace

/// One client transport endpoint. `fd` is owned (closed on destruction)
/// in TCP mode; stdio mode borrows fd 1 and only marks it done. The
/// write mutex serializes the scorer's completions with the reader's
/// inline rejections so two responses never interleave on the wire.
struct ServeDaemon::Connection {
  Connection(int fd, bool jsonl) : fd(fd), jsonl(jsonl) {}
  ~Connection() {
    if (!jsonl && fd >= 0) ::close(fd);
  }

  const int fd;
  const bool jsonl;
  std::mutex write_mu;
  std::atomic<bool> reader_done{false};
};

ServeDaemon::ServeDaemon(MatchService* service, Config config)
    : service_(service), config_(config), queue_(config.queue) {
  PROMPTEM_CHECK(service_ != nullptr);
}

ServeDaemon::~ServeDaemon() {
  Shutdown();
  Wait();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (int fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

core::Status ServeDaemon::Start() {
  PROMPTEM_CHECK_MSG(!started_.exchange(true),
                     "ServeDaemon::Start called twice");
  if (config_.port >= 0) {
    if (::pipe(wake_pipe_) != 0) {
      return core::Status::IOError("pipe: " + std::string(strerror(errno)));
    }
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return core::Status::IOError("socket: " + std::string(strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(config_.port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return core::Status::IOError("bind: " + std::string(strerror(errno)));
    }
    if (::listen(listen_fd_, 64) != 0) {
      return core::Status::IOError("listen: " + std::string(strerror(errno)));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      return core::Status::IOError("getsockname: " +
                                   std::string(strerror(errno)));
    }
    port_ = static_cast<int>(ntohs(bound.sin_port));
    accept_thread_ = std::thread([this] { AcceptLoop(); });
  } else {
    stdio_thread_ = std::thread([this] { StdioLoop(); });
  }
  scorer_thread_ = std::thread([this] { ScorerLoop(); });
  return core::Status::OK();
}

void ServeDaemon::AcceptLoop() {
  while (!shutting_down_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      PROMPTEM_LOG(Warn) << "accept poll failed: " << strerror(errno);
      return;
    }
    if (fds[1].revents != 0) return;  // woken by Shutdown
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      PROMPTEM_LOG(Warn) << "accept failed: " << strerror(errno);
      return;
    }
    const int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(client, /*jsonl=*/false);
    ReapConnections(/*join_all=*/false);
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (shutting_down_.load(std::memory_order_acquire)) {
      // Raced Shutdown past its sweep: this fd would never see SHUT_RD.
      ::shutdown(client, SHUT_RDWR);
    }
    connections_.push_back(
        {std::thread([this, conn] { ConnectionLoop(conn); }), conn});
  }
}

void ServeDaemon::ConnectionLoop(std::shared_ptr<Connection> conn) {
  while (true) {
    std::string payload;
    const core::Status status = ReadFrame(conn->fd, &payload);
    if (status.ok()) {
      HandlePayload(conn, payload);
      continue;
    }
    if (status.code() == core::StatusCode::kInvalidArgument) {
      // Framing violation (oversized or truncated length/payload): the
      // byte stream is out of sync, so answer once and hang up. The
      // explicit SHUT_WR delivers the EOF now — the fd itself lives
      // until the connection is reaped, which could be much later.
      WriteResponse(conn, StatusResponse(0, ResponseStatus::kBadRequest,
                                         status.message()));
      ::shutdown(conn->fd, SHUT_WR);
    }
    break;  // clean EOF, framing error, or transport error
  }
  conn->reader_done.store(true, std::memory_order_release);
}

void ServeDaemon::StdioLoop() {
  auto conn = std::make_shared<Connection>(STDOUT_FILENO, /*jsonl=*/true);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    connections_.push_back({std::thread(), conn});
  }
  // Poll so a Shutdown (signal) interrupts an idle stdin wait; a pipe
  // cannot be shutdown(2) the way a socket can.
  std::string buffer;
  char chunk[4096];
  bool eof = false;
  while (!eof && !shutting_down_.load(std::memory_order_acquire)) {
    pollfd pfd{STDIN_FILENO, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const ssize_t n = ::read(STDIN_FILENO, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      eof = true;
    } else {
      buffer.append(chunk, static_cast<size_t>(n));
    }
    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      if (nl > start) {
        HandlePayload(conn, std::string_view(buffer).substr(start, nl - start));
      }
      start = nl + 1;
    }
    buffer.erase(0, start);
  }
  if (eof && !buffer.empty()) HandlePayload(conn, buffer);
  conn->reader_done.store(true, std::memory_order_release);
}

void ServeDaemon::HandlePayload(const std::shared_ptr<Connection>& conn,
                                std::string_view payload) {
  core::Result<MatchRequest> parsed = ParseMatchRequest(payload);
  if (!parsed.ok()) {
    WriteResponse(conn, StatusResponse(0, ResponseStatus::kBadRequest,
                                       parsed.status().message()));
    return;
  }
  MatchRequest request = std::move(parsed).value();
  if (request.op == RequestOp::kInfo) {
    // Metadata is immutable after TrainAll — answered inline, never
    // queued behind scoring work.
    WriteResponse(conn, service_->Score(request));
    return;
  }
  const uint64_t id = request.id;
  PendingRequest pending;
  pending.enqueue_time = std::chrono::steady_clock::now();
  if (request.deadline_ms > 0) {
    pending.has_deadline = true;
    pending.deadline =
        pending.enqueue_time + std::chrono::milliseconds(request.deadline_ms);
  }
  pending.request = std::move(request);
  pending.complete = [conn](MatchResponse response) {
    WriteResponse(conn, response);
  };
  if (!queue_.TryEnqueue(std::move(pending))) {
    const bool closed = queue_.closed();
    WriteResponse(
        conn, StatusResponse(id,
                             closed ? ResponseStatus::kShuttingDown
                                    : ResponseStatus::kOverloaded,
                             closed ? "daemon draining" : "queue full"));
  }
}

void ServeDaemon::WriteResponse(const std::shared_ptr<Connection>& conn,
                                const MatchResponse& response) {
  const std::string payload = SerializeResponse(response);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  bool ok;
  if (conn->jsonl) {
    const std::string line = payload + "\n";
    ok = WriteFull(conn->fd, line.data(), line.size());
  } else {
    ok = WriteFrame(conn->fd, payload).ok();
  }
  // A client that vanished mid-response is its problem, not ours:
  // SIGPIPE is ignored process-wide, the failed write surfaces here,
  // and the daemon keeps serving everyone else.
  if (!ok) {
    PROMPTEM_LOG(Warn) << "dropped response id=" << response.id
                       << " (client gone)";
  }
}

void ServeDaemon::ScorerLoop() {
  while (true) {
    std::vector<PendingRequest> batch = queue_.DequeueBatch();
    if (batch.empty()) return;  // closed and drained
    service_->HandleBatch(std::move(batch));
  }
}

void ServeDaemon::ReapConnections(bool join_all) {
  std::vector<ConnEntry> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (size_t i = 0; i < connections_.size();) {
      const bool done =
          join_all ||
          connections_[i].conn->reader_done.load(std::memory_order_acquire);
      if (done) {
        finished.push_back(std::move(connections_[i]));
        connections_.erase(connections_.begin() +
                           static_cast<ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  for (ConnEntry& entry : finished) {
    if (entry.thread.joinable()) entry.thread.join();
  }
}

void ServeDaemon::Shutdown() {
  bool expected = false;
  if (!shutting_down_.compare_exchange_strong(expected, true)) return;
  if (wake_pipe_[1] >= 0) {
    const char byte = 'x';
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  // Half-close every live client: readers wake with EOF and exit, while
  // the write side stays open so the scorer can flush in-flight
  // responses during the drain.
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (ConnEntry& entry : connections_) {
    if (!entry.conn->jsonl) ::shutdown(entry.conn->fd, SHUT_RD);
  }
  queue_.Close();
}

void ServeDaemon::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  if (stdio_thread_.joinable()) stdio_thread_.join();
  // All producers have stopped; close admission (idempotent — Shutdown
  // may have done it) so the scorer exits once the backlog drains. The
  // stdio EOF path reaches here with the queue still open.
  queue_.Close();
  if (scorer_thread_.joinable()) scorer_thread_.join();
  ReapConnections(/*join_all=*/true);
}

}  // namespace promptem::serve
