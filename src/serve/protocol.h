#ifndef PROMPTEM_SERVE_PROTOCOL_H_
#define PROMPTEM_SERVE_PROTOCOL_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"
#include "data/dataset.h"

namespace promptem::serve {

/// Wire protocol of the promptem_serve daemon.
///
/// Two transports carry the same JSON documents:
///  - TCP: length-prefixed frames — a 4-byte big-endian payload length
///    followed by that many bytes of UTF-8 JSON. Both directions use the
///    same framing; frames above kMaxFrameBytes are rejected (the stream
///    is then out of sync, so the server answers once and closes).
///  - stdio: JSON Lines — one document per '\n'-terminated line on
///    stdin/stdout (no length prefix; a raw newline inside a JSON string
///    is impossible — it is always escaped).
///
/// Requests:
///   {"id": 7, "pairs": [[0, 3], [5, 2]],
///    "matcher": "PromptEM",      // optional; server default when absent
///    "deadline_ms": 50}          // optional; 0 / absent = no deadline
///   {"id": 8, "op": "info"}      // server + table metadata, never queued
/// Pair indexes refer to the rows of the tables the daemon loaded at
/// startup (match-by-id against a resident catalog).
///
/// Responses echo the id:
///   {"id": 7, "status": "ok", "probs": [[0.9, 0.1], ...],
///    "labels": [0, ...], "batch": 17}
///   {"id": 9, "status": "overloaded", "error": "queue full"}
/// "batch" reports how many pairs the scoring sweep that served this
/// request coalesced (observability for the batching layer). Probability
/// floats are serialized with %.9g — enough decimal digits that parsing
/// them back recovers the exact float, so a client sees bit-identical
/// scores to the in-process CLI path.

inline constexpr uint32_t kMaxFrameBytes = 1u << 20;
/// Hard per-request pair cap: one request may not monopolize a batch.
inline constexpr size_t kMaxPairsPerRequest = 4096;

enum class RequestOp { kMatch, kInfo };

struct MatchRequest {
  uint64_t id = 0;
  RequestOp op = RequestOp::kMatch;
  std::string matcher;  ///< empty = server default
  std::vector<data::PairExample> pairs;
  int64_t deadline_ms = 0;  ///< relative to server receipt; 0 = none
};

enum class ResponseStatus {
  kOk,
  kOverloaded,        ///< admission control shed the request
  kDeadlineExceeded,  ///< expired while queued; never scored
  kBadRequest,        ///< malformed JSON / fields / out-of-range indexes
  kUnknownMatcher,    ///< matcher not trained into this daemon
  kShuttingDown,      ///< daemon draining; no new work accepted
};

const char* ResponseStatusName(ResponseStatus status);

struct MatchResponse {
  uint64_t id = 0;
  ResponseStatus status = ResponseStatus::kOk;
  std::string error;  ///< detail for non-ok statuses
  std::vector<std::array<float, 2>> probs;
  std::vector<int> labels;
  size_t batch_size = 0;  ///< pairs in the coalesced scoring sweep
  std::string info;       ///< pre-serialized JSON object for kInfo replies
};

/// Parses and structurally validates one request document. Rejected
/// inputs (non-object, bad field types, empty/oversized pair lists,
/// negative indexes, negative or non-integral deadline) come back as
/// InvalidArgument — index bounds against the loaded tables are the
/// service's job.
core::Result<MatchRequest> ParseMatchRequest(std::string_view json);

std::string SerializeRequest(const MatchRequest& request);
std::string SerializeResponse(const MatchResponse& response);

/// Client-side response parse (load generator, tests).
core::Result<MatchResponse> ParseMatchResponse(std::string_view json);

/// Reads/writes exactly `n` bytes, retrying EINTR and short transfers.
/// False on EOF, EPIPE, or any other hard error — never a crash: callers
/// run with SIGPIPE ignored (core::IgnoreSigPipe), so a peer vanishing
/// mid-transfer is an error return, not a process kill.
bool ReadFull(int fd, void* buf, size_t n);
bool WriteFull(int fd, const void* buf, size_t n);

/// One length-prefixed frame. ReadFrame distinguishes a clean EOF at a
/// frame boundary (kNotFound) from a truncated frame or oversized length
/// (kInvalidArgument) and transport errors (kIOError).
core::Status ReadFrame(int fd, std::string* payload);
core::Status WriteFrame(int fd, std::string_view payload);

}  // namespace promptem::serve

#endif  // PROMPTEM_SERVE_PROTOCOL_H_
