#ifndef PROMPTEM_SERVE_SERVER_H_
#define PROMPTEM_SERVE_SERVER_H_

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/status.h"
#include "serve/batch_queue.h"
#include "serve/service.h"

namespace promptem::serve {

/// The transport shell of promptem_serve: accepts clients, frames and
/// parses their requests, pushes admitted work through the BatchQueue,
/// and runs the single scorer loop that rides coalesced batches through
/// MatchService::HandleBatch.
///
/// Two transports, one daemon:
///  - TCP (config.port >= 0): binds 127.0.0.1, one reader thread per
///    connection, length-prefixed frames both ways. Port 0 binds an
///    ephemeral port; port() reports the real one after Start.
///  - stdio (config.port < 0): JSONL on stdin/stdout, single reader.
///
/// Crash-proofing against clients: every read/write retries EINTR, the
/// process runs with SIGPIPE ignored (callers must IgnoreSigPipe before
/// Start), and a response write to a vanished client is a logged no-op —
/// a client dying mid-response can never take the daemon down
/// (serve_test kills a client mid-stream to pin this).
///
/// Graceful drain: Shutdown() (idempotent, safe from the signal-watcher
/// thread) stops accepting, wakes every blocked reader, closes the queue
/// for admission, and lets the scorer finish every admitted request
/// before Wait() returns. In-flight responses are written; late arrivals
/// get `shutting_down`.
class ServeDaemon {
 public:
  struct Config {
    /// >= 0: TCP on 127.0.0.1:port (0 = ephemeral). < 0: stdio JSONL.
    int port = -1;
    BatchQueue::Config queue;
  };

  ServeDaemon(MatchService* service, Config config);
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Binds (TCP) and spawns the transport + scorer threads.
  core::Status Start();

  /// Bound TCP port after Start (-1 in stdio mode).
  int port() const { return port_; }

  /// Begins the graceful drain; returns immediately. Idempotent.
  void Shutdown();

  /// Blocks until every transport thread has exited and the scorer has
  /// drained the queue. In stdio mode, EOF on stdin completes the drain
  /// without a Shutdown call.
  void Wait();

  BatchQueue::Stats queue_stats() const { return queue_.stats(); }

 private:
  struct Connection;

  void AcceptLoop();
  void ConnectionLoop(std::shared_ptr<Connection> conn);
  void StdioLoop();
  void ScorerLoop();

  /// Parses one request payload and either answers it inline (info,
  /// parse errors, shed) or admits it to the queue.
  void HandlePayload(const std::shared_ptr<Connection>& conn,
                     std::string_view payload);

  /// Serializes and writes under the connection's write lock; a dead
  /// client makes this a no-op, never an error.
  static void WriteResponse(const std::shared_ptr<Connection>& conn,
                            const MatchResponse& response);

  /// Joins finished connection threads (called from the accept loop so a
  /// long-lived daemon does not accumulate dead threads).
  void ReapConnections(bool join_all);

  MatchService* service_;
  Config config_;
  BatchQueue queue_;

  int listen_fd_ = -1;
  int port_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< self-pipe to unblock the accept poll

  std::thread accept_thread_;
  std::thread stdio_thread_;
  std::thread scorer_thread_;

  struct ConnEntry {
    std::thread thread;
    std::shared_ptr<Connection> conn;
  };
  mutable std::mutex conns_mu_;
  std::vector<ConnEntry> connections_;

  std::atomic<bool> started_{false};
  std::atomic<bool> shutting_down_{false};
};

}  // namespace promptem::serve

#endif  // PROMPTEM_SERVE_SERVER_H_
