#include "serve/protocol.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "core/string_util.h"
#include "data/json.h"
#include "data/record.h"

namespace promptem::serve {

namespace {

const data::Value* FindField(const data::Value& object,
                             const std::string& name) {
  for (const auto& [key, value] : object.as_object()) {
    if (key == name) return &value;
  }
  return nullptr;
}

/// A JSON number that is an exact non-negative integer <= `max`.
bool AsIndex(const data::Value& v, int64_t max, int64_t* out) {
  if (!v.is_number()) return false;
  const double d = v.as_number();
  if (!(d >= 0) || d > static_cast<double>(max)) return false;
  if (d != std::floor(d)) return false;
  *out = static_cast<int64_t>(d);
  return true;
}

core::Status Bad(const std::string& what) {
  return core::Status::InvalidArgument("bad request: " + what);
}

/// %.9g prints enough significant digits that text -> double -> float
/// recovers the exact float32 bit pattern (IEEE round-trip guarantee);
/// the served scores stay bitwise comparable to the in-process path.
void AppendFloat(std::string* out, float v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(v));
  out->append(buf);
}

std::string QuoteJson(const std::string& s) {
  return data::ToJson(data::Value::Str(s));
}

}  // namespace

const char* ResponseStatusName(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk:
      return "ok";
    case ResponseStatus::kOverloaded:
      return "overloaded";
    case ResponseStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case ResponseStatus::kBadRequest:
      return "bad_request";
    case ResponseStatus::kUnknownMatcher:
      return "unknown_matcher";
    case ResponseStatus::kShuttingDown:
      return "shutting_down";
  }
  return "unknown";
}

core::Result<MatchRequest> ParseMatchRequest(std::string_view json) {
  core::Result<data::Value> parsed = data::ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  const data::Value& root = parsed.value();
  if (!root.is_object()) return Bad("request must be a JSON object");

  MatchRequest request;
  if (const data::Value* id = FindField(root, "id")) {
    int64_t v = 0;
    // 2^53: the largest range a JSON double carries exactly.
    if (!AsIndex(*id, int64_t{1} << 53, &v)) {
      return Bad("'id' must be a non-negative integer");
    }
    request.id = static_cast<uint64_t>(v);
  }

  if (const data::Value* op = FindField(root, "op")) {
    if (!op->is_string()) return Bad("'op' must be a string");
    const std::string& name = op->as_string();
    if (name == "info") {
      request.op = RequestOp::kInfo;
      return request;
    }
    if (name != "match") return Bad("unknown op '" + name + "'");
  }

  if (const data::Value* matcher = FindField(root, "matcher")) {
    if (!matcher->is_string()) return Bad("'matcher' must be a string");
    request.matcher = matcher->as_string();
  }

  if (const data::Value* deadline = FindField(root, "deadline_ms")) {
    int64_t v = 0;
    if (!AsIndex(*deadline, int64_t{1} << 40, &v)) {
      return Bad("'deadline_ms' must be a non-negative integer");
    }
    request.deadline_ms = v;
  }

  const data::Value* pairs = FindField(root, "pairs");
  if (pairs == nullptr || !pairs->is_list()) {
    return Bad("'pairs' must be a list of [left, right] index pairs");
  }
  if (pairs->as_list().empty()) return Bad("'pairs' is empty");
  if (pairs->as_list().size() > kMaxPairsPerRequest) {
    return Bad("'pairs' exceeds the per-request cap of " +
               std::to_string(kMaxPairsPerRequest));
  }
  request.pairs.reserve(pairs->as_list().size());
  for (const data::Value& entry : pairs->as_list()) {
    if (!entry.is_list() || entry.as_list().size() != 2) {
      return Bad("each pair must be a [left, right] list");
    }
    int64_t left = 0;
    int64_t right = 0;
    if (!AsIndex(entry.as_list()[0], INT32_MAX, &left) ||
        !AsIndex(entry.as_list()[1], INT32_MAX, &right)) {
      return Bad("pair indexes must be non-negative 32-bit integers");
    }
    data::PairExample pair;
    pair.left_index = static_cast<int>(left);
    pair.right_index = static_cast<int>(right);
    pair.label = data::kUnlabeledLabel;
    request.pairs.push_back(pair);
  }
  return request;
}

std::string SerializeRequest(const MatchRequest& request) {
  std::string out = "{\"id\":" + std::to_string(request.id);
  if (request.op == RequestOp::kInfo) {
    out += ",\"op\":\"info\"}";
    return out;
  }
  if (!request.matcher.empty()) {
    out += ",\"matcher\":" + QuoteJson(request.matcher);
  }
  if (request.deadline_ms > 0) {
    out += ",\"deadline_ms\":" + std::to_string(request.deadline_ms);
  }
  out += ",\"pairs\":[";
  for (size_t i = 0; i < request.pairs.size(); ++i) {
    if (i > 0) out += ',';
    out += '[' + std::to_string(request.pairs[i].left_index) + ',' +
           std::to_string(request.pairs[i].right_index) + ']';
  }
  out += "]}";
  return out;
}

std::string SerializeResponse(const MatchResponse& response) {
  std::string out = "{\"id\":" + std::to_string(response.id) +
                    ",\"status\":\"" + ResponseStatusName(response.status) +
                    "\"";
  if (!response.error.empty()) {
    out += ",\"error\":" + QuoteJson(response.error);
  }
  if (!response.info.empty()) {
    out += ",\"info\":" + response.info;
  }
  if (response.status == ResponseStatus::kOk && !response.probs.empty()) {
    out += ",\"probs\":[";
    for (size_t i = 0; i < response.probs.size(); ++i) {
      if (i > 0) out += ',';
      out += '[';
      AppendFloat(&out, response.probs[i][0]);
      out += ',';
      AppendFloat(&out, response.probs[i][1]);
      out += ']';
    }
    out += "],\"labels\":[";
    for (size_t i = 0; i < response.labels.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(response.labels[i]);
    }
    out += "],\"batch\":" + std::to_string(response.batch_size);
  }
  out += '}';
  return out;
}

core::Result<MatchResponse> ParseMatchResponse(std::string_view json) {
  core::Result<data::Value> parsed = data::ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  const data::Value& root = parsed.value();
  if (!root.is_object()) return Bad("response must be a JSON object");

  MatchResponse response;
  if (const data::Value* id = FindField(root, "id")) {
    int64_t v = 0;
    if (!AsIndex(*id, int64_t{1} << 53, &v)) return Bad("bad 'id'");
    response.id = static_cast<uint64_t>(v);
  }
  const data::Value* status = FindField(root, "status");
  if (status == nullptr || !status->is_string()) {
    return Bad("missing 'status'");
  }
  bool known = false;
  for (ResponseStatus s :
       {ResponseStatus::kOk, ResponseStatus::kOverloaded,
        ResponseStatus::kDeadlineExceeded, ResponseStatus::kBadRequest,
        ResponseStatus::kUnknownMatcher, ResponseStatus::kShuttingDown}) {
    if (status->as_string() == ResponseStatusName(s)) {
      response.status = s;
      known = true;
      break;
    }
  }
  if (!known) return Bad("unknown status '" + status->as_string() + "'");
  if (const data::Value* error = FindField(root, "error")) {
    if (error->is_string()) response.error = error->as_string();
  }
  if (const data::Value* info = FindField(root, "info")) {
    response.info = data::ToJson(*info);
  }
  if (const data::Value* batch = FindField(root, "batch")) {
    int64_t v = 0;
    if (AsIndex(*batch, int64_t{1} << 53, &v)) {
      response.batch_size = static_cast<size_t>(v);
    }
  }
  if (const data::Value* probs = FindField(root, "probs")) {
    if (!probs->is_list()) return Bad("'probs' must be a list");
    for (const data::Value& entry : probs->as_list()) {
      if (!entry.is_list() || entry.as_list().size() != 2 ||
          !entry.as_list()[0].is_number() ||
          !entry.as_list()[1].is_number()) {
        return Bad("each prob must be a [p_no, p_yes] list");
      }
      response.probs.push_back(
          {static_cast<float>(entry.as_list()[0].as_number()),
           static_cast<float>(entry.as_list()[1].as_number())});
    }
  }
  if (const data::Value* labels = FindField(root, "labels")) {
    if (!labels->is_list()) return Bad("'labels' must be a list");
    for (const data::Value& entry : labels->as_list()) {
      if (!entry.is_number()) return Bad("labels must be numbers");
      response.labels.push_back(static_cast<int>(entry.as_number()));
    }
  }
  return response;
}

bool ReadFull(int fd, void* buf, size_t n) {
  char* out = static_cast<char*>(buf);
  size_t done = 0;
  while (done < n) {
    const ssize_t got = ::read(fd, out + done, n - done);
    if (got > 0) {
      done += static_cast<size_t>(got);
      continue;
    }
    if (got == 0) return false;  // EOF mid-buffer
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

bool WriteFull(int fd, const void* buf, size_t n) {
  const char* in = static_cast<const char*>(buf);
  size_t done = 0;
  while (done < n) {
    const ssize_t put = ::write(fd, in + done, n - done);
    if (put > 0) {
      done += static_cast<size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    return false;  // EPIPE (peer gone), or any other hard error
  }
  return true;
}

core::Status ReadFrame(int fd, std::string* payload) {
  uint8_t header[4];
  // EOF before any header byte is the normal end of a connection; detect
  // it with a one-byte probe so a clean close is not reported as error.
  {
    const ssize_t got = [&] {
      while (true) {
        const ssize_t r = ::read(fd, header, 1);
        if (r < 0 && errno == EINTR) continue;
        return r;
      }
    }();
    if (got == 0) return core::Status::NotFound("eof");
    if (got < 0) return core::Status::IOError("read failed");
  }
  if (!ReadFull(fd, header + 1, 3)) {
    return core::Status::InvalidArgument("truncated frame header");
  }
  const uint32_t length = (static_cast<uint32_t>(header[0]) << 24) |
                          (static_cast<uint32_t>(header[1]) << 16) |
                          (static_cast<uint32_t>(header[2]) << 8) |
                          static_cast<uint32_t>(header[3]);
  if (length == 0 || length > kMaxFrameBytes) {
    return core::Status::InvalidArgument(
        core::StrFormat("frame length %u out of range", length));
  }
  payload->resize(length);
  if (!ReadFull(fd, payload->data(), length)) {
    return core::Status::InvalidArgument("truncated frame payload");
  }
  return core::Status::OK();
}

core::Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return core::Status::InvalidArgument("frame too large");
  }
  const uint32_t length = static_cast<uint32_t>(payload.size());
  const uint8_t header[4] = {static_cast<uint8_t>(length >> 24),
                             static_cast<uint8_t>(length >> 16),
                             static_cast<uint8_t>(length >> 8),
                             static_cast<uint8_t>(length)};
  if (!WriteFull(fd, header, sizeof(header)) ||
      !WriteFull(fd, payload.data(), payload.size())) {
    return core::Status::IOError("write failed (peer closed?)");
  }
  return core::Status::OK();
}

}  // namespace promptem::serve
