#ifndef PROMPTEM_SERVE_SERVICE_H_
#define PROMPTEM_SERVE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "data/dataset.h"
#include "promptem/embed_cache.h"
#include "serve/batch_queue.h"
#include "serve/protocol.h"
#include "train/registry.h"

namespace promptem::serve {

/// The resident scoring core of promptem_serve: owns the loaded tables,
/// the trained matchers, and the per-matcher score cache; turns batches
/// of admitted requests into coalesced Matcher::ScoreProbs sweeps.
///
/// Trained once, scored many: TrainAll pays the full training cost at
/// daemon startup (models load/pre-train through the shared LM exactly
/// like the CLI), after which every request is a graph-free batched
/// engine sweep. Because each pair's eval score is a pure function of
/// the pair — independent of batch composition, pool size, and cache
/// state — coalescing concurrent requests into one sweep, slicing the
/// results back out, and caching them per (dataset, matcher, options)
/// are all bitwise-invisible: a served score is identical to the CLI
/// one-shot path (serve_test pins this).
///
/// Thread model: Score/HandleBatch must be called from one scorer thread
/// at a time (matcher models are not concurrently re-entrant); stats and
/// the score cache are safe to read from anywhere.
class MatchService {
 public:
  struct Config {
    /// Benchmark family of the loaded dataset (MatcherContext::kind).
    data::BenchmarkKind kind = data::BenchmarkKind::kRelHeter;
    /// Served when a request names no matcher.
    std::string default_matcher = "PromptEM";
    /// Additional matchers to train at startup. Requests naming anything
    /// else are answered `unknown_matcher` — a resident server never
    /// hides a multi-minute training stall behind a match request.
    std::vector<std::string> matchers;
    /// Optional persistent score store. Served {P(no), P(yes)} results
    /// are cached as dim-2 embeddings under restart-stable keys
    /// (dataset fingerprint x matcher name x run options), so a daemon
    /// restarted over the same tables and seed warm-starts: previously
    /// served pairs hit without touching the model. Also installable as
    /// the global embedding cache so startup training's clustering
    /// sweeps share the file. Attach the cache with CacheBackend::kMmap
    /// (`--cache-backend mmap`) and the warm start reads the store in
    /// place from the mapping — a daemon restart over a beyond-RAM
    /// corpus never materializes the full cache (InfoJson reports the
    /// mapped entry count as `score_cache_persisted`).
    std::shared_ptr<em::EmbeddingCache> score_cache;
  };

  struct Stats {
    uint64_t requests = 0;       ///< match requests resolved
    uint64_t pairs_scored = 0;   ///< pairs through ScoreProbs (misses)
    uint64_t score_hits = 0;     ///< pairs served from the score cache
    uint64_t expired = 0;        ///< resolved deadline_exceeded
    uint64_t rejected = 0;       ///< bad_request / unknown_matcher
    uint64_t sweeps = 0;         ///< coalesced ScoreProbs calls
  };

  /// Takes ownership of the dataset and split (they must outlive every
  /// matcher, and matchers hold encoder state pointing at them).
  MatchService(const lm::PretrainedLM* lm, data::GemDataset dataset,
               data::LowResourceSplit split, train::RunOptions options,
               Config config);

  /// Creates and trains every configured matcher (the startup cost).
  /// Fails fast on an unknown name — before training anything.
  core::Status TrainAll(train::TrainObserver* observer = nullptr);

  /// Resolves one request synchronously (validation + scoring). The
  /// response carries batch_size = this request's own pair count; the
  /// batched entry point below reports the real coalesced width.
  MatchResponse Score(const MatchRequest& request);

  /// Resolves a coalesced batch: expired requests complete with
  /// deadline_exceeded (unscored), the rest group by matcher, each group
  /// rides one ScoreProbs sweep, and every PendingRequest::complete is
  /// invoked exactly once.
  void HandleBatch(std::vector<PendingRequest> batch);

  /// Pre-serialized JSON object for `{"op": "info"}` requests.
  std::string InfoJson() const;

  bool HasMatcher(const std::string& name) const;
  const data::GemDataset& dataset() const { return dataset_; }
  const std::string& default_matcher() const {
    return config_.default_matcher;
  }
  Stats stats() const;

 private:
  struct Entry {
    std::string name;
    std::unique_ptr<train::Matcher> matcher;
    uint64_t context_tag = 0;  ///< score-cache key namespace
  };

  Entry* FindEntry(const std::string& name);
  const Entry* FindEntry(const std::string& name) const;

  /// ScoreProbs through the score cache: hits are copied out, misses are
  /// compacted into one sweep and inserted for next time. Bitwise equal
  /// to the uncached sweep (values are pure functions of their keys).
  std::vector<std::array<float, 2>> ScoreCached(
      Entry* entry, const std::vector<data::PairExample>& pairs);

  /// Validates a match request against the loaded tables; fills and
  /// returns false via `error` on rejection.
  bool ValidateRequest(const MatchRequest& request, Entry** entry,
                       MatchResponse* error);

  const lm::PretrainedLM* lm_;
  data::GemDataset dataset_;
  data::LowResourceSplit split_;
  train::MatcherContext ctx_;
  Config config_;
  std::vector<Entry> entries_;
  bool trained_ = false;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> pairs_scored_{0};
  std::atomic<uint64_t> score_hits_{0};
  std::atomic<uint64_t> expired_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> sweeps_{0};
};

}  // namespace promptem::serve

#endif  // PROMPTEM_SERVE_SERVICE_H_
