#ifndef PROMPTEM_TRAIN_REGISTRY_H_
#define PROMPTEM_TRAIN_REGISTRY_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/benchmarks.h"
#include "promptem/metrics.h"
#include "train/observer.h"

namespace promptem::lm {
class PretrainedLM;
}  // namespace promptem::lm

namespace promptem::train {

/// Knobs shared by every matcher run. Epoch counts are scaled-down
/// stand-ins for the paper's 20 teacher / 30 student epochs.
struct RunOptions {
  uint64_t seed = 42;
  int epochs = 12;          ///< baselines and PromptEM's teacher
  int student_epochs = 14;  ///< PromptEM's student
  float lr = 5e-3f;
  int batch_size = 8;
  int mc_passes = 10;
  double pseudo_ratio = 0.10;  ///< u_r
  double prune_ratio = 0.20;   ///< e_r
  int prune_every = 2;
  /// Pseudo-label selection for PromptEM: "uncertainty" (paper default),
  /// "confidence", or "clustering" (the strategy that consults the
  /// persistent embedding cache). Kept as a string so this header stays
  /// matcher-agnostic; MakePromptEmConfig parses and rejects typos.
  std::string pseudo_strategy = "uncertainty";
};

/// Everything a matcher needs to train and predict on one benchmark
/// split. Pointers are not owned and must outlive the matcher.
struct MatcherContext {
  const lm::PretrainedLM* lm = nullptr;
  data::BenchmarkKind kind = data::BenchmarkKind::kRelHeter;
  const data::GemDataset* dataset = nullptr;
  const data::LowResourceSplit* split = nullptr;
  RunOptions options;
  /// Receives every TrainLoop event of the run (may be null). Matchers
  /// without an epoch loop synthesize a single epoch record.
  TrainObserver* observer = nullptr;
};

/// One matcher's outcome on one dataset split.
struct MatcherResult {
  em::Metrics test;
  em::Metrics valid;
  double train_seconds = 0.0;
  size_t peak_memory_bytes = 0;
};

/// Uniform face of every entity-matching method in the repo — PromptEM,
/// its ablations, and all eight baselines. Train() fits internal state
/// from ctx.split->labeled (consuming randomness only from seeds derived
/// from ctx.options.seed); Predict() labels arbitrary candidate pairs
/// with the trained state. Matchers are single-use: one Train, then any
/// number of Predicts.
class Matcher {
 public:
  virtual ~Matcher() = default;

  virtual std::string Name() const = 0;
  virtual void Train(const MatcherContext& ctx) = 0;
  virtual std::vector<int> Predict(
      const MatcherContext& ctx,
      const std::vector<data::PairExample>& pairs) = 0;

  /// {P(no), P(yes)} per pair — the scoring face the serving daemon and
  /// the match pipeline rank by. Classifier-backed matchers override this
  /// to run the batched engine (em::ScoreBatch) and return calibrated
  /// probabilities; the default degrades to hard {1,0}/{0,1} one-hots
  /// from Predict for matchers with no probabilistic head (TDmatch).
  /// Deterministic per pair for a trained matcher: slot i is a pure
  /// function of pairs[i], independent of batch composition — the
  /// contract that makes response caching and request coalescing exact.
  virtual std::vector<std::array<float, 2>> ScoreProbs(
      const MatcherContext& ctx,
      const std::vector<data::PairExample>& pairs);
};

using MatcherFactory = std::function<std::unique_ptr<Matcher>()>;

/// Name -> factory table, populated at static-initialization time by
/// REGISTER_MATCHER. CLI dispatch, --list-matchers, and the benchmark
/// harness all derive from this one table, so adding a matcher is one
/// registration away from everywhere.
class MatcherRegistry {
 public:
  static MatcherRegistry& Instance();

  /// `listed` controls --list-matchers visibility; hidden entries (the
  /// PromptEM ablations) remain creatable by name.
  void Register(std::string name, MatcherFactory factory, bool listed);

  bool Contains(const std::string& name) const;
  /// Null when `name` is unknown.
  std::unique_ptr<Matcher> Create(const std::string& name) const;

  /// Listed names in registration order.
  std::vector<std::string> ListedNames() const;
  /// Every registered name (listed + hidden) in registration order.
  std::vector<std::string> AllNames() const;

 private:
  struct Entry {
    std::string name;
    MatcherFactory factory;
    bool listed = true;
  };
  std::vector<Entry> entries_;
};

/// Static-init helper behind REGISTER_MATCHER.
struct MatcherRegistrar {
  MatcherRegistrar(const char* name, MatcherFactory factory,
                   bool listed = true);
};

#define PROMPTEM_MATCHER_CONCAT_INNER(a, b) a##b
#define PROMPTEM_MATCHER_CONCAT(a, b) PROMPTEM_MATCHER_CONCAT_INNER(a, b)

/// Registers `factory` (returning std::unique_ptr<Matcher>) under `name`.
/// Place registrations in a .cc anchored by a function the program calls
/// (static archives drop unreferenced translation units).
#define REGISTER_MATCHER(name, factory)                      \
  static const ::promptem::train::MatcherRegistrar           \
      PROMPTEM_MATCHER_CONCAT(kMatcherRegistrar_, __COUNTER__)( \
          name, factory)

/// Same, but omitted from --list-matchers (ablation variants).
#define REGISTER_MATCHER_HIDDEN(name, factory)               \
  static const ::promptem::train::MatcherRegistrar           \
      PROMPTEM_MATCHER_CONCAT(kMatcherRegistrar_, __COUNTER__)( \
          name, factory, /*listed=*/false)

/// The uniform run protocol: time + memory-track Train, then score the
/// split's valid and test pairs through Predict. Every metric in the repo
/// reduces through em::ComputeMetrics here.
MatcherResult RunMatcher(Matcher* matcher, const MatcherContext& ctx);

}  // namespace promptem::train

#endif  // PROMPTEM_TRAIN_REGISTRY_H_
