#include "train/registry.h"

#include <utility>

#include "core/mem_tracker.h"
#include "core/status.h"
#include "core/timer.h"

namespace promptem::train {

MatcherRegistry& MatcherRegistry::Instance() {
  static MatcherRegistry* kInstance = new MatcherRegistry();
  return *kInstance;
}

void MatcherRegistry::Register(std::string name, MatcherFactory factory,
                               bool listed) {
  PROMPTEM_CHECK_MSG(!Contains(name), "duplicate matcher registration");
  entries_.push_back({std::move(name), std::move(factory), listed});
}

bool MatcherRegistry::Contains(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return true;
  }
  return false;
}

std::unique_ptr<Matcher> MatcherRegistry::Create(
    const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return e.factory();
  }
  return nullptr;
}

std::vector<std::string> MatcherRegistry::ListedNames() const {
  std::vector<std::string> names;
  for (const auto& e : entries_) {
    if (e.listed) names.push_back(e.name);
  }
  return names;
}

std::vector<std::string> MatcherRegistry::AllNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& e : entries_) names.push_back(e.name);
  return names;
}

MatcherRegistrar::MatcherRegistrar(const char* name, MatcherFactory factory,
                                   bool listed) {
  MatcherRegistry::Instance().Register(name, std::move(factory), listed);
}

std::vector<std::array<float, 2>> Matcher::ScoreProbs(
    const MatcherContext& ctx, const std::vector<data::PairExample>& pairs) {
  const std::vector<int> labels = Predict(ctx, pairs);
  std::vector<std::array<float, 2>> probs(labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    probs[i] = labels[i] == 1 ? std::array<float, 2>{0.0f, 1.0f}
                              : std::array<float, 2>{1.0f, 0.0f};
  }
  return probs;
}

MatcherResult RunMatcher(Matcher* matcher, const MatcherContext& ctx) {
  PROMPTEM_CHECK(matcher != nullptr);
  PROMPTEM_CHECK(ctx.lm != nullptr);
  PROMPTEM_CHECK(ctx.dataset != nullptr);
  PROMPTEM_CHECK(ctx.split != nullptr);

  MatcherResult result;
  core::Timer timer;
  core::ScopedPeakMemory peak;
  matcher->Train(ctx);
  result.train_seconds = timer.ElapsedSeconds();
  result.peak_memory_bytes = peak.Peak();

  const auto evaluate = [&](const std::vector<data::PairExample>& pairs) {
    std::vector<int> gold;
    gold.reserve(pairs.size());
    for (const auto& p : pairs) gold.push_back(p.label);
    return em::ComputeMetrics(matcher->Predict(ctx, pairs), gold);
  };
  result.valid = evaluate(ctx.split->valid);
  result.test = evaluate(ctx.split->test);
  return result;
}

}  // namespace promptem::train
