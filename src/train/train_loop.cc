#include "train/train_loop.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <numeric>
#include <utility>

#include "core/status.h"
#include "core/string_util.h"
#include "core/thread_pool.h"
#include "core/timer.h"
#include "nn/optimizer.h"
#include "tensor/autograd.h"

namespace promptem::train {

std::vector<std::vector<float>> SnapshotModuleParams(
    const nn::Module& module) {
  std::vector<std::vector<float>> snapshot;
  for (const auto& p : module.Parameters()) {
    snapshot.emplace_back(p.data(), p.data() + p.numel());
  }
  return snapshot;
}

void RestoreModuleParams(nn::Module* module,
                         const std::vector<std::vector<float>>& snapshot) {
  auto params = module->Parameters();
  PROMPTEM_CHECK(params.size() == snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    PROMPTEM_CHECK(static_cast<size_t>(params[i].numel()) ==
                   snapshot[i].size());
    std::memcpy(params[i].data(), snapshot[i].data(),
                snapshot[i].size() * sizeof(float));
  }
}

TrainLoop::TrainLoop(nn::Module* module, LoopOptions options)
    : module_(module), options_(std::move(options)) {
  PROMPTEM_CHECK(module_ != nullptr);
  PROMPTEM_CHECK(options_.epochs >= 0);
  PROMPTEM_CHECK(options_.batch_size >= 1);
}

TrainLoop& TrainLoop::OnParallelStep(ParallelStepFn fn) {
  parallel_fn_ = std::move(fn);
  return *this;
}

TrainLoop& TrainLoop::OnSequentialStep(SequentialStepFn fn) {
  sequential_fn_ = std::move(fn);
  return *this;
}

TrainLoop& TrainLoop::OnEval(EvalFn fn) {
  eval_fn_ = std::move(fn);
  return *this;
}

TrainLoop& TrainLoop::OnEpochHook(EpochHookFn fn) {
  epoch_hook_ = std::move(fn);
  return *this;
}

std::string TrainLoop::ConfigHash() const {
  const std::string canonical = core::StrFormat(
      "epochs=%d;batch=%d;lr=%.9g;wd=%.9g;clip=%.9g;shuffle=%d;reset=%d;"
      "seed=%llu;extern_rng=%d;mode=%s;patience=%d",
      options_.epochs, options_.batch_size, options_.lr,
      options_.weight_decay, options_.max_grad_norm,
      options_.shuffle ? 1 : 0, options_.reset_order_each_epoch ? 1 : 0,
      static_cast<unsigned long long>(options_.seed),
      options_.rng != nullptr ? 1 : 0,
      sequential_fn_ ? "sequential" : "data-parallel",
      options_.early_stop_patience);
  uint64_t hash = 1469598103934665603ULL;  // FNV-1a 64
  for (unsigned char c : canonical) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return core::StrFormat("%016llx", static_cast<unsigned long long>(hash));
}

double TrainLoop::RunEpochDataParallel(const std::vector<size_t>& order,
                                       core::Rng* rng, nn::AdamW* optimizer,
                                       int epoch, int64_t* processed) {
  const std::vector<tensor::Tensor> params = module_->Parameters();

  // One gradient shard per minibatch slot, reused across batches. Sample b
  // of every batch accumulates into shard b; shards merge in slot order.
  const size_t slots =
      std::min(static_cast<size_t>(options_.batch_size), order.size());
  std::vector<std::unique_ptr<tensor::GradShard>> shards;
  shards.reserve(slots);
  for (size_t s = 0; s < slots; ++s) {
    shards.push_back(std::make_unique<tensor::GradShard>(params));
  }

  double epoch_loss = 0.0;
  int64_t batch_index = 0;
  std::vector<uint64_t> seeds(slots);
  std::vector<float> losses(slots);
  for (size_t start = 0; start < order.size();
       start += static_cast<size_t>(options_.batch_size)) {
    const size_t bsz = std::min(static_cast<size_t>(options_.batch_size),
                                order.size() - start);
    // Per-sample dropout streams, drawn in batch order so the seeds (and
    // everything downstream) are independent of the pool size.
    for (size_t b = 0; b < bsz; ++b) seeds[b] = rng->NextU64();
    core::ParallelFor(0, static_cast<int64_t>(bsz), 1,
                      [&](int64_t begin, int64_t end) {
      for (int64_t b = begin; b < end; ++b) {
        const size_t slot = static_cast<size_t>(b);
        tensor::GradShard::Scope scope(shards[slot].get());
        core::Rng sample_rng(seeds[slot]);
        tensor::Tensor loss = parallel_fn_(order[start + slot], &sample_rng);
        losses[slot] = loss.item();
        loss.Backward();
      }
    });
    double batch_loss = 0.0;
    for (size_t b = 0; b < bsz; ++b) {
      // Accumulate per sample into the epoch total (not via the batch
      // subtotal) to keep the double summation order — and therefore the
      // recorded losses — bitwise identical to the historical loops.
      epoch_loss += losses[b];
      batch_loss += losses[b];
      shards[b]->MergeAndReset();
    }
    *processed += static_cast<int64_t>(bsz);
    optimizer->Step();
    optimizer->ZeroGrad();
    if (options_.observer != nullptr) {
      options_.observer->OnBatchEnd(
          {epoch, batch_index, static_cast<int64_t>(bsz), batch_loss});
    }
    ++batch_index;
  }
  return epoch_loss;
}

double TrainLoop::RunEpochSequential(const std::vector<size_t>& order,
                                     core::Rng* rng, nn::AdamW* optimizer,
                                     int epoch, int64_t* processed) {
  double epoch_loss = 0.0;
  double batch_loss = 0.0;
  int64_t batch_index = 0;
  int64_t in_batch = 0;
  const auto flush = [&]() {
    optimizer->Step();
    optimizer->ZeroGrad();
    if (options_.observer != nullptr) {
      options_.observer->OnBatchEnd({epoch, batch_index, in_batch,
                                     batch_loss});
    }
    ++batch_index;
    in_batch = 0;
    batch_loss = 0.0;
  };
  for (size_t idx : order) {
    std::optional<tensor::Tensor> loss = sequential_fn_(idx, rng);
    if (!loss.has_value()) continue;  // skipped: no loss, no gradient
    const float value = loss->item();
    epoch_loss += value;
    batch_loss += value;
    ++*processed;
    loss->Backward();
    if (++in_batch == options_.batch_size) flush();
  }
  if (in_batch > 0) flush();  // partial accumulation group at epoch end
  return epoch_loss;
}

LoopResult TrainLoop::Run(size_t dataset_size) {
  PROMPTEM_CHECK_MSG(
      (parallel_fn_ != nullptr) != (sequential_fn_ != nullptr),
      "TrainLoop needs exactly one of OnParallelStep / OnSequentialStep");

  core::Rng local_rng(options_.seed);
  core::Rng* rng = options_.rng != nullptr ? options_.rng : &local_rng;

  nn::AdamWConfig opt_config;
  opt_config.lr = options_.lr;
  opt_config.weight_decay = options_.weight_decay;
  opt_config.max_grad_norm = options_.max_grad_norm;
  nn::AdamW optimizer(module_->Parameters(), opt_config);

  LoopResult result;
  result.best_score = options_.best_score_init;

  TrainObserver* observer = options_.observer;
  if (observer != nullptr) {
    RunMeta meta;
    meta.run_name = options_.run_name;
    meta.dataset = options_.dataset_name;
    meta.seed = options_.rng != nullptr ? 0 : options_.seed;
    meta.config_hash = ConfigHash();
    meta.epochs = options_.epochs;
    meta.batch_size = options_.batch_size;
    meta.dataset_size = static_cast<int64_t>(dataset_size);
    observer->OnLoopBegin(meta);
  }

  std::vector<size_t> order(dataset_size);
  std::iota(order.begin(), order.end(), 0);
  size_t current_size = dataset_size;
  int stale_evals = 0;

  for (int epoch = 1; epoch <= options_.epochs; ++epoch) {
    module_->Train();
    if (observer != nullptr) observer->OnEpochBegin(epoch);
    if (options_.reset_order_each_epoch || order.size() != current_size) {
      order.resize(current_size);
      std::iota(order.begin(), order.end(), 0);
    }
    if (options_.shuffle) rng->Shuffle(&order);

    core::Timer epoch_timer;
    int64_t processed = 0;
    const double epoch_loss =
        sequential_fn_
            ? RunEpochSequential(order, rng, &optimizer, epoch, &processed)
            : RunEpochDataParallel(order, rng, &optimizer, epoch,
                                   &processed);
    result.samples_processed += processed;
    result.epochs_run = epoch;

    EpochStats stats;
    stats.epoch = epoch;
    stats.loss_sum = epoch_loss;
    stats.samples = processed;
    stats.avg_loss =
        processed == 0
            ? 0.0f
            : static_cast<float>(epoch_loss / static_cast<double>(processed));
    result.epoch_losses.push_back(stats.avg_loss);

    // Post-epoch hook (dynamic data pruning and the like) may resize the
    // dataset; the next epoch re-indexes against the new size.
    if (epoch_hook_) current_size = epoch_hook_(epoch, rng);

    bool improved = false;
    if (eval_fn_) {
      const em::Metrics metrics = eval_fn_();
      const double score = metrics.F1();
      improved = score > result.best_score;
      if (improved) {
        result.best_score = score;
        result.best_eval = metrics;
        result.best_epoch = epoch;
        result.best_snapshot = SnapshotModuleParams(*module_);
      }
      if (observer != nullptr) {
        observer->OnEvalEnd({epoch, metrics, score, improved});
      }
      stats.has_eval = true;
      stats.eval = metrics;
    }

    stats.seconds = epoch_timer.ElapsedSeconds();
    stats.examples_per_sec =
        stats.seconds > 0.0
            ? static_cast<double>(processed) / stats.seconds
            : 0.0;
    if (observer != nullptr) observer->OnEpochEnd(stats);

    if (eval_fn_ && options_.early_stop_patience > 0) {
      stale_evals = improved ? 0 : stale_evals + 1;
      if (stale_evals >= options_.early_stop_patience &&
          epoch < options_.epochs) {
        result.early_stopped = true;
        break;
      }
    }
  }

  if (options_.restore_best && !result.best_snapshot.empty()) {
    RestoreModuleParams(module_, result.best_snapshot);
  }
  if (observer != nullptr) observer->OnLoopEnd(result);
  return result;
}

}  // namespace promptem::train
