#ifndef PROMPTEM_TRAIN_TRAIN_LOOP_H_
#define PROMPTEM_TRAIN_TRAIN_LOOP_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/rng.h"
#include "nn/module.h"
#include "promptem/metrics.h"
#include "train/observer.h"

namespace promptem::nn {
class AdamW;
}  // namespace promptem::nn

namespace promptem::train {

/// Data-parallel per-sample step: computes the differentiable loss for
/// dataset element `index`. Runs concurrently across the minibatch, each
/// call under its own GradShard and a per-sample Rng derived from the
/// loop's stream in batch order (so results are independent of the pool
/// size). The loop reads `.item()` and calls `.Backward()`.
using ParallelStepFn =
    std::function<tensor::Tensor(size_t index, core::Rng* rng)>;

/// Sequential per-sample step: runs on the loop thread against the loop's
/// shared Rng stream. Returning nullopt skips the sample entirely — it
/// contributes no loss, no gradient, and does not advance the
/// accumulation counter (MLM documents with nothing masked).
using SequentialStepFn = std::function<std::optional<tensor::Tensor>(
    size_t index, core::Rng* rng)>;

/// Per-epoch evaluation; the returned metrics drive best-checkpoint
/// tracking (score = F1) and early stopping.
using EvalFn = std::function<em::Metrics()>;

/// Post-epoch hook, run after the epoch's batches and before evaluation.
/// May mutate the caller's dataset (self-training's dynamic data pruning)
/// and must return the dataset's new size; `rng` is the loop's stream, so
/// hook randomness stays on the run's deterministic timeline.
using EpochHookFn = std::function<size_t(int epoch, core::Rng* rng)>;

/// One training run's knobs. The defaults mirror em::TrainOptions.
struct LoopOptions {
  int epochs = 10;
  int batch_size = 8;  ///< gradient-accumulation group
  float lr = 5e-3f;
  float weight_decay = 0.01f;
  float max_grad_norm = 1.0f;  ///< <= 0 disables clipping
  bool shuffle = true;
  /// Rebuild the identity order every epoch instead of re-shuffling the
  /// previous permutation (required when the epoch hook resizes the
  /// dataset; also the historical convention of the self-training student).
  bool reset_order_each_epoch = false;
  uint64_t seed = 17;
  /// External RNG stream; when set, `seed` is ignored and shuffling,
  /// per-sample seeds, and the epoch hook all draw from this stream.
  core::Rng* rng = nullptr;
  /// Restore the best-eval parameter snapshot after the last epoch.
  bool restore_best = true;
  /// Incoming best score; an epoch only becomes "best" by beating this
  /// (self-training phases compete across teacher/student rounds).
  double best_score_init = -1.0;
  /// Stop after this many consecutive non-improving evals (0 = disabled).
  int early_stop_patience = 0;
  TrainObserver* observer = nullptr;  ///< not owned; may be null
  std::string run_name;               ///< observer label ("teacher", "Ditto")
  std::string dataset_name;           ///< observer label
};

/// What one Run produced.
struct LoopResult {
  std::vector<float> epoch_losses;  ///< avg loss per processed sample
  em::Metrics best_eval;
  double best_score = -1.0;  ///< == options.best_score_init if never beaten
  int best_epoch = -1;       ///< 1-based; -1 when no epoch improved
  int64_t samples_processed = 0;
  int epochs_run = 0;
  bool early_stopped = false;
  /// Parameter snapshot at the best epoch (empty when no epoch improved).
  std::vector<std::vector<float>> best_snapshot;
};

/// The one training loop every learner in the repo runs through —
/// prompt-tuning, fine-tuning, MLM pre-training, the baseline heads, and
/// self-training student rounds. Owns epoch/minibatch iteration,
/// deterministic shuffling, gradient accumulation, AdamW stepping,
/// best-checkpoint tracking, and optional early stopping; the learner
/// plugs in as a per-sample loss callback.
///
/// Two execution modes, chosen by which step callback is set:
///  - data-parallel (ParallelStepFn): minibatch samples run concurrently,
///    each under its own tensor::GradShard and a per-sample Rng seeded
///    from the loop stream in batch order; shards merge in sample order
///    before the optimizer step, so gradients — and therefore weights —
///    are bitwise identical for any PROMPTEM_NUM_THREADS.
///  - sequential (SequentialStepFn): samples run on the loop thread
///    against the shared stream, stepping every `batch_size` processed
///    samples with a partial flush at epoch end.
///
/// Epochs are 1-based everywhere (iteration, observer events, best_epoch).
class TrainLoop {
 public:
  TrainLoop(nn::Module* module, LoopOptions options);

  TrainLoop& OnParallelStep(ParallelStepFn fn);
  TrainLoop& OnSequentialStep(SequentialStepFn fn);
  TrainLoop& OnEval(EvalFn fn);
  TrainLoop& OnEpochHook(EpochHookFn fn);

  /// Runs the configured number of epochs over `dataset_size` elements.
  /// Exactly one step callback must be set.
  LoopResult Run(size_t dataset_size);

  /// FNV-1a hash of the loop configuration (stamped into run logs so a
  /// record is traceable to the exact hyper-parameters that produced it).
  std::string ConfigHash() const;

 private:
  double RunEpochDataParallel(const std::vector<size_t>& order,
                              core::Rng* rng, nn::AdamW* optimizer,
                              int epoch, int64_t* processed);
  double RunEpochSequential(const std::vector<size_t>& order, core::Rng* rng,
                            nn::AdamW* optimizer, int epoch,
                            int64_t* processed);

  nn::Module* module_;
  LoopOptions options_;
  ParallelStepFn parallel_fn_;
  SequentialStepFn sequential_fn_;
  EvalFn eval_fn_;
  EpochHookFn epoch_hook_;
};

/// Copies all parameter values out of / back into a module (best-epoch
/// snapshotting, teacher/student hand-off).
std::vector<std::vector<float>> SnapshotModuleParams(
    const nn::Module& module);
void RestoreModuleParams(nn::Module* module,
                         const std::vector<std::vector<float>>& snapshot);

}  // namespace promptem::train

#endif  // PROMPTEM_TRAIN_TRAIN_LOOP_H_
