#include "train/observer.h"

#include "core/log.h"
#include "core/string_util.h"
#include "data/json.h"
#include "data/record.h"

namespace promptem::train {

void ObserverList::Add(TrainObserver* observer) {
  if (observer != nullptr) observers_.push_back(observer);
}

void ObserverList::OnLoopBegin(const RunMeta& meta) {
  for (auto* o : observers_) o->OnLoopBegin(meta);
}

void ObserverList::OnEpochBegin(int epoch) {
  for (auto* o : observers_) o->OnEpochBegin(epoch);
}

void ObserverList::OnBatchEnd(const BatchStats& stats) {
  for (auto* o : observers_) o->OnBatchEnd(stats);
}

void ObserverList::OnEvalEnd(const EvalStats& stats) {
  for (auto* o : observers_) o->OnEvalEnd(stats);
}

void ObserverList::OnEpochEnd(const EpochStats& stats) {
  for (auto* o : observers_) o->OnEpochEnd(stats);
}

void ObserverList::OnLoopEnd(const LoopResult& result) {
  for (auto* o : observers_) o->OnLoopEnd(result);
}

void ConsoleObserver::OnLoopBegin(const RunMeta& meta) { meta_ = meta; }

void ConsoleObserver::OnEpochEnd(const EpochStats& stats) {
  std::string line = core::StrFormat(
      "%s epoch %d/%d loss %.4f (%.0f ex/s)",
      meta_.run_name.empty() ? "train" : meta_.run_name.c_str(),
      stats.epoch, meta_.epochs, stats.avg_loss, stats.examples_per_sec);
  if (stats.has_eval) {
    line += " valid " + stats.eval.ToString();
  }
  PROMPTEM_LOG(Info) << line;
}

JsonlRunLogger::JsonlRunLogger(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "a");
  if (file_ == nullptr) {
    PROMPTEM_LOG(Warn) << "run-log: cannot open " << path_
                       << " for appending; epoch records are dropped";
  }
}

JsonlRunLogger::~JsonlRunLogger() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlRunLogger::OnLoopBegin(const RunMeta& meta) { meta_ = meta; }

void JsonlRunLogger::OnEpochEnd(const EpochStats& stats) {
  if (file_ == nullptr) return;
  // Strings go through the JSON serializer for escaping; numbers are
  // formatted directly so the log keeps full float precision.
  std::string line = "{";
  line += "\"run\": " + data::ToJson(data::Value::Str(meta_.run_name));
  line += ", \"dataset\": " + data::ToJson(data::Value::Str(meta_.dataset));
  line += core::StrFormat(", \"epoch\": %d", stats.epoch);
  line += core::StrFormat(", \"loss\": %.9g", stats.avg_loss);
  line += core::StrFormat(", \"samples\": %lld",
                          static_cast<long long>(stats.samples));
  if (stats.has_eval) {
    line += core::StrFormat(
        ", \"precision\": %.9g, \"recall\": %.9g, \"f1\": %.9g",
        stats.eval.Precision(), stats.eval.Recall(), stats.eval.F1());
  }
  line += core::StrFormat(", \"seconds\": %.6g", stats.seconds);
  line += core::StrFormat(", \"examples_per_sec\": %.6g",
                          stats.examples_per_sec);
  line += core::StrFormat(", \"seed\": %llu",
                          static_cast<unsigned long long>(meta_.seed));
  line +=
      ", \"config_hash\": " + data::ToJson(data::Value::Str(meta_.config_hash));
  line += "}\n";
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
}

}  // namespace promptem::train
