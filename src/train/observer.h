#ifndef PROMPTEM_TRAIN_OBSERVER_H_
#define PROMPTEM_TRAIN_OBSERVER_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "promptem/metrics.h"

namespace promptem::train {

struct LoopResult;

/// Static facts about one TrainLoop run, emitted once at loop start and
/// stamped into every structured log record.
struct RunMeta {
  std::string run_name;     ///< matcher / phase label ("Ditto", "teacher")
  std::string dataset;      ///< dataset name when known
  uint64_t seed = 0;        ///< the loop's RNG seed (0 for external streams)
  std::string config_hash;  ///< FNV-1a over the loop configuration
  int epochs = 0;
  int batch_size = 0;
  int64_t dataset_size = 0;
};

/// One optimizer step's worth of samples.
struct BatchStats {
  int epoch = 0;             ///< 1-based
  int64_t batch_index = 0;   ///< 0-based within the epoch
  int64_t batch_samples = 0; ///< samples contributing to this step
  double batch_loss = 0.0;   ///< summed per-sample loss of the batch
};

/// Outcome of the per-epoch evaluation (when the loop has an EvalFn).
struct EvalStats {
  int epoch = 0;       ///< 1-based
  em::Metrics metrics;
  double score = 0.0;  ///< selection score (validation F1)
  bool improved = false;
};

/// Everything known about one finished epoch. `eval` is meaningful only
/// when `has_eval` is true.
struct EpochStats {
  int epoch = 0;  ///< 1-based
  double loss_sum = 0.0;
  float avg_loss = 0.0f;  ///< loss_sum / samples (0 when no samples)
  int64_t samples = 0;    ///< samples processed (skipped samples excluded)
  double seconds = 0.0;
  double examples_per_sec = 0.0;
  bool has_eval = false;
  em::Metrics eval;
};

/// Event hooks fired by train::TrainLoop. Per epoch the order is
///   OnEpochBegin -> OnBatchEnd* -> [OnEvalEnd] -> OnEpochEnd
/// bracketed by one OnLoopBegin / OnLoopEnd pair. Observers must not
/// mutate training state; they exist for progress display and telemetry.
class TrainObserver {
 public:
  virtual ~TrainObserver() = default;

  virtual void OnLoopBegin(const RunMeta& meta) { (void)meta; }
  virtual void OnEpochBegin(int epoch) { (void)epoch; }
  virtual void OnBatchEnd(const BatchStats& stats) { (void)stats; }
  virtual void OnEvalEnd(const EvalStats& stats) { (void)stats; }
  virtual void OnEpochEnd(const EpochStats& stats) { (void)stats; }
  virtual void OnLoopEnd(const LoopResult& result) { (void)result; }
};

/// Fans every event out to a list of observers (not owned).
class ObserverList : public TrainObserver {
 public:
  void Add(TrainObserver* observer);

  void OnLoopBegin(const RunMeta& meta) override;
  void OnEpochBegin(int epoch) override;
  void OnBatchEnd(const BatchStats& stats) override;
  void OnEvalEnd(const EvalStats& stats) override;
  void OnEpochEnd(const EpochStats& stats) override;
  void OnLoopEnd(const LoopResult& result) override;

 private:
  std::vector<TrainObserver*> observers_;
};

/// Human-readable per-epoch progress on stderr via the logging sink.
class ConsoleObserver : public TrainObserver {
 public:
  void OnLoopBegin(const RunMeta& meta) override;
  void OnEpochEnd(const EpochStats& stats) override;

 private:
  RunMeta meta_;
};

/// Appends one structured JSON record per epoch to a run-log file — the
/// first rung of the observability ladder. Each line carries the loss,
/// eval metrics (when the loop evaluates), wall-time, throughput, and the
/// run's identity (name, dataset, seed, config hash), so a full benchmark
/// sweep concatenates into one greppable, machine-parseable log.
class JsonlRunLogger : public TrainObserver {
 public:
  /// Opens `path` for appending. ok() reports whether the open succeeded;
  /// a failed logger swallows events instead of crashing the run.
  explicit JsonlRunLogger(std::string path);
  ~JsonlRunLogger() override;

  JsonlRunLogger(const JsonlRunLogger&) = delete;
  JsonlRunLogger& operator=(const JsonlRunLogger&) = delete;

  bool ok() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  void OnLoopBegin(const RunMeta& meta) override;
  void OnEpochEnd(const EpochStats& stats) override;

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  RunMeta meta_;
};

}  // namespace promptem::train

#endif  // PROMPTEM_TRAIN_OBSERVER_H_
