#include "text/vocab.h"

#include <algorithm>
#include <fstream>
#include <map>

#include "core/string_util.h"

namespace promptem::text {

const char* SpecialTokens::Name(int id) {
  switch (id) {
    case kPad:
      return "[PAD]";
    case kUnk:
      return "[UNK]";
    case kCls:
      return "[CLS]";
    case kSep:
      return "[SEP]";
    case kMask:
      return "[MASK]";
    case kCol:
      return "[COL]";
    case kVal:
      return "[VAL]";
    default:
      return "";
  }
}

Vocab::Vocab() {
  for (int i = 0; i < SpecialTokens::kCount; ++i) {
    const std::string name = SpecialTokens::Name(i);
    ids_.emplace(name, i);
    tokens_.push_back(name);
  }
}

int Vocab::AddToken(const std::string& token) {
  auto it = ids_.find(token);
  if (it != ids_.end()) return it->second;
  const int id = static_cast<int>(tokens_.size());
  ids_.emplace(token, id);
  tokens_.push_back(token);
  return id;
}

int Vocab::ToId(const std::string& token) const {
  auto it = ids_.find(token);
  return it == ids_.end() ? SpecialTokens::kUnk : it->second;
}

bool Vocab::Contains(const std::string& token) const {
  return ids_.count(token) > 0;
}

const std::string& Vocab::ToToken(int id) const {
  PROMPTEM_CHECK(id >= 0 && id < size());
  return tokens_[static_cast<size_t>(id)];
}

Vocab BuildVocab(const std::vector<std::vector<std::string>>& documents,
                 int min_count, int max_size,
                 const std::vector<std::string>& always_keep) {
  std::map<std::string, int64_t> counts;
  for (const auto& doc : documents) {
    for (const auto& tok : doc) ++counts[tok];
  }
  std::vector<std::pair<std::string, int64_t>> sorted(counts.begin(),
                                                      counts.end());
  // Most frequent first; ties alphabetical for determinism.
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  Vocab vocab;
  for (const auto& token : always_keep) vocab.AddToken(token);
  for (const auto& [token, count] : sorted) {
    if (count < min_count) break;
    if (max_size > 0 && vocab.size() >= max_size) break;
    vocab.AddToken(token);
  }
  return vocab;
}

core::Result<Vocab> LoadVocabFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return core::Status::IOError("cannot read vocab: " + path);
  Vocab vocab;
  std::string line;
  int index = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (index < SpecialTokens::kCount) {
      if (line != SpecialTokens::Name(index)) {
        return core::Status::InvalidArgument(core::StrFormat(
            "%s line %d: expected special token %s", path.c_str(),
            index + 1, SpecialTokens::Name(index)));
      }
    } else {
      if (line.empty()) {
        return core::Status::InvalidArgument(core::StrFormat(
            "%s line %d: empty vocab token", path.c_str(), index + 1));
      }
      if (vocab.Contains(line)) {
        return core::Status::InvalidArgument(core::StrFormat(
            "%s line %d: duplicate vocab token '%s'", path.c_str(),
            index + 1, line.c_str()));
      }
      vocab.AddToken(line);
    }
    ++index;
  }
  if (index < SpecialTokens::kCount) {
    return core::Status::InvalidArgument(
        core::StrFormat("%s: vocab truncated (%d of %d special tokens)",
                        path.c_str(), index, SpecialTokens::kCount));
  }
  return vocab;
}

}  // namespace promptem::text
