#include "text/tokenizer.h"

#include <cctype>

namespace promptem::text {

std::vector<std::string> WordTokenize(const std::string& text) {
  std::vector<std::string> out;
  std::string current;
  // Long alphabetic runs are split into 3-character chunks, mimicking
  // subword tokenization: an abbreviated or truncated word still shares
  // its leading chunks with the full form, which is what makes LM-based
  // matchers robust to surface noise (and what whole-word graph matchers
  // like TDmatch lack).
  auto flush = [&]() {
    if (current.empty()) return;
    if (current.size() <= 4) {
      out.push_back(current);
    } else {
      for (size_t i = 0; i < current.size(); i += 3) {
        out.push_back(current.substr(i, 3));
      }
    }
    current.clear();
  };
  for (size_t i = 0; i < text.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(text[i]);
    if (c == '[') {
      // Try to match a bracketed special tag like [COL] / [MASK].
      size_t close = text.find(']', i);
      if (close != std::string::npos && close - i <= 8) {
        bool is_tag = true;
        for (size_t j = i + 1; j < close; ++j) {
          if (!std::isalpha(static_cast<unsigned char>(text[j]))) {
            is_tag = false;
            break;
          }
        }
        if (is_tag && close > i + 1) {
          flush();
          std::string tag = text.substr(i, close - i + 1);
          for (auto& ch : tag) {
            ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
          }
          out.push_back(tag);
          i = close;
          continue;
        }
      }
    }
    if (std::isspace(c)) {
      flush();
    } else if (std::isdigit(c)) {
      // Digits become single-character tokens.
      flush();
      out.push_back(std::string(1, static_cast<char>(c)));
    } else if (std::isalpha(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else {
      // Punctuation: single-character token.
      flush();
      out.push_back(std::string(1, static_cast<char>(c)));
    }
  }
  flush();
  return out;
}

std::vector<int> TokensToIds(const Vocab& vocab,
                             const std::vector<std::string>& tokens) {
  std::vector<int> ids;
  ids.reserve(tokens.size());
  for (const auto& tok : tokens) ids.push_back(vocab.ToId(tok));
  return ids;
}

std::vector<int> EncodeText(const Vocab& vocab, const std::string& text) {
  return TokensToIds(vocab, WordTokenize(text));
}

std::string DecodeIds(const Vocab& vocab, const std::vector<int>& ids) {
  std::string out;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ' ';
    out += vocab.ToToken(ids[i]);
  }
  return out;
}

}  // namespace promptem::text
