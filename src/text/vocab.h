#ifndef PROMPTEM_TEXT_VOCAB_H_
#define PROMPTEM_TEXT_VOCAB_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/status.h"

namespace promptem::text {

/// Special token ids occupy the first vocabulary slots, in this order.
struct SpecialTokens {
  static constexpr int kPad = 0;
  static constexpr int kUnk = 1;
  static constexpr int kCls = 2;
  static constexpr int kSep = 3;
  static constexpr int kMask = 4;
  static constexpr int kCol = 5;   ///< attribute-name tag from serialization
  static constexpr int kVal = 6;   ///< attribute-value tag from serialization
  static constexpr int kCount = 7;

  static const char* Name(int id);
};

/// A frozen token -> id mapping with the special tokens pre-installed.
/// Built once from a corpus (see BuildVocab) and shared by the LM, all
/// matchers, and the prompt verbalizer.
class Vocab {
 public:
  /// Creates a vocabulary holding only the special tokens.
  Vocab();

  /// Adds a token if absent; returns its id either way.
  int AddToken(const std::string& token);

  /// Id for the token, or kUnk when unknown.
  int ToId(const std::string& token) const;

  /// True when the token is present.
  bool Contains(const std::string& token) const;

  /// Token string for an id (checked).
  const std::string& ToToken(int id) const;

  int size() const { return static_cast<int>(tokens_.size()); }

 private:
  std::unordered_map<std::string, int> ids_;
  std::vector<std::string> tokens_;
};

/// Builds a vocabulary from tokenized documents, keeping tokens that occur
/// at least `min_count` times, most frequent first, capped at `max_size`
/// (0 = unlimited). Label words needed by the verbalizer should be passed
/// via `always_keep` so prompt-tuning never hits [UNK] on them.
Vocab BuildVocab(const std::vector<std::vector<std::string>>& documents,
                 int min_count, int max_size,
                 const std::vector<std::string>& always_keep = {});

/// Loads a vocabulary saved as one token per line in id order (the format
/// lm::PretrainedLM::Save writes). The file is validated as untrusted
/// input: the first SpecialTokens::kCount lines must be exactly the
/// special-token names, and the remaining lines must be non-empty and
/// free of duplicates — so a truncated, shifted, or doctored vocab file
/// surfaces as InvalidArgument instead of silently remapping token ids.
core::Result<Vocab> LoadVocabFile(const std::string& path);

}  // namespace promptem::text

#endif  // PROMPTEM_TEXT_VOCAB_H_
