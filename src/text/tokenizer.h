#ifndef PROMPTEM_TEXT_TOKENIZER_H_
#define PROMPTEM_TEXT_TOKENIZER_H_

#include <string>
#include <vector>

#include "text/vocab.h"

namespace promptem::text {

/// Splits raw text into normalized word tokens:
///  - ASCII-lowercases,
///  - separates punctuation into single-character tokens,
///  - splits runs of digits into single-digit tokens ("2012" -> 2 0 1 2),
///    which mirrors how LM tokenizers fragment numbers and reproduces the
///    paper's "LMs are not good at understanding digits" behaviour on
///    digit-heavy datasets,
///  - splits alphabetic runs longer than four characters into 3-character
///    chunks (subword-style), so abbreviations still overlap with the full
///    word form,
///  - keeps bracketed special tags ([COL], [VAL], [MASK], ...) whole.
std::vector<std::string> WordTokenize(const std::string& text);

/// Maps tokens to ids with a vocabulary (unknowns -> [UNK]).
std::vector<int> TokensToIds(const Vocab& vocab,
                             const std::vector<std::string>& tokens);

/// Tokenize + map in one step.
std::vector<int> EncodeText(const Vocab& vocab, const std::string& text);

/// Decodes ids back to a space-joined string (debugging aids and tests).
std::string DecodeIds(const Vocab& vocab, const std::vector<int>& ids);

}  // namespace promptem::text

#endif  // PROMPTEM_TEXT_TOKENIZER_H_
