#ifndef PROMPTEM_TEXT_TFIDF_H_
#define PROMPTEM_TEXT_TFIDF_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace promptem::text {

/// Corpus-level TF-IDF statistics. Used for (a) the long-entry summarizer
/// from the paper's Appendix F (Ditto-style: keep non-stopword tokens with
/// high TF-IDF), and (b) the TDmatch graph edge weights.
class TfIdf {
 public:
  /// Builds document frequencies over tokenized documents.
  explicit TfIdf(const std::vector<std::vector<std::string>>& documents);

  /// Inverse document frequency of a token (smoothed); unseen tokens get
  /// the maximum IDF.
  double Idf(const std::string& token) const;

  /// TF-IDF score of `token` within one tokenized document.
  double Score(const std::string& token,
               const std::vector<std::string>& document) const;

  int num_documents() const { return num_documents_; }

 private:
  std::unordered_map<std::string, int> doc_freq_;
  int num_documents_ = 0;
};

/// True for common English stopwords and single punctuation tokens.
bool IsStopword(const std::string& token);

/// Appendix F summarizer: retains the `max_tokens` tokens with the highest
/// TF-IDF (dropping stopwords), preserving the original token order.
/// Documents already short enough are returned unchanged.
std::vector<std::string> SummarizeTokens(
    const TfIdf& tfidf, const std::vector<std::string>& tokens,
    size_t max_tokens);

}  // namespace promptem::text

#endif  // PROMPTEM_TEXT_TFIDF_H_
