#include "text/tfidf.h"

#include <algorithm>
#include <cmath>

namespace promptem::text {

TfIdf::TfIdf(const std::vector<std::vector<std::string>>& documents)
    : num_documents_(static_cast<int>(documents.size())) {
  for (const auto& doc : documents) {
    std::unordered_set<std::string> seen(doc.begin(), doc.end());
    for (const auto& tok : seen) ++doc_freq_[tok];
  }
}

double TfIdf::Idf(const std::string& token) const {
  auto it = doc_freq_.find(token);
  const int df = it == doc_freq_.end() ? 0 : it->second;
  return std::log((1.0 + num_documents_) / (1.0 + df)) + 1.0;
}

double TfIdf::Score(const std::string& token,
                    const std::vector<std::string>& document) const {
  if (document.empty()) return 0.0;
  int tf = 0;
  for (const auto& tok : document) tf += tok == token ? 1 : 0;
  return (static_cast<double>(tf) / document.size()) * Idf(token);
}

bool IsStopword(const std::string& token) {
  static const std::unordered_set<std::string> kStopwords = {
      "a",    "an",   "and",  "are", "as",   "at",   "be",   "by",
      "for",  "from", "has",  "he",  "in",   "is",   "it",   "its",
      "of",   "on",   "that", "the", "to",   "was",  "were", "will",
      "with", "this", "or",   "but", "not",  "have", "had",  "we",
      "they", "their", "which", "been", "than", "then", "these", "those"};
  if (token.size() == 1 &&
      !std::isalnum(static_cast<unsigned char>(token[0]))) {
    return true;
  }
  return kStopwords.count(token) > 0;
}

std::vector<std::string> SummarizeTokens(
    const TfIdf& tfidf, const std::vector<std::string>& tokens,
    size_t max_tokens) {
  if (tokens.size() <= max_tokens) return tokens;
  // Rank positions by TF-IDF of their token, stopwords last.
  std::vector<size_t> order(tokens.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<double> scores(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    scores[i] = IsStopword(tokens[i]) ? -1.0 : tfidf.Score(tokens[i], tokens);
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  order.resize(max_tokens);
  std::sort(order.begin(), order.end());  // restore original order
  std::vector<std::string> out;
  out.reserve(max_tokens);
  for (size_t pos : order) out.push_back(tokens[pos]);
  return out;
}

}  // namespace promptem::text
