#ifndef PROMPTEM_CORE_THREAD_POOL_H_
#define PROMPTEM_CORE_THREAD_POOL_H_

#include <cstdint>
#include <functional>

namespace promptem::core {

/// Chunk-level work function for ParallelFor: processes [begin, end).
using RangeFn = std::function<void(int64_t begin, int64_t end)>;

/// Number of execution lanes (worker threads + the calling thread). Sized
/// on first use from the PROMPTEM_NUM_THREADS environment variable, falling
/// back to std::thread::hardware_concurrency(). Always >= 1.
int GetNumThreads();

/// Resizes the pool to `n` lanes (n <= 0 restores the environment /
/// hardware default). Must not be called from inside a ParallelFor body.
void SetNumThreads(int n);

/// Splits [begin, end) into fixed chunks of at most `grain` indices
/// (grain <= 0 means one chunk) and runs `fn(chunk_begin, chunk_end)` for
/// each. Blocks until every chunk has finished.
///
/// Determinism contract: the chunk decomposition depends only on (begin,
/// end, grain) — never on the pool size — and chunk c is statically
/// assigned to lane c % lanes, each lane running its chunks in increasing
/// order. Callers that reduce across chunks must accumulate into per-chunk
/// buffers and merge them in chunk order; results are then bitwise
/// identical for every PROMPTEM_NUM_THREADS setting.
///
/// With one lane, or when called from inside another ParallelFor body
/// (nested parallelism), every chunk runs inline on the calling thread.
/// The first exception thrown by a chunk (lowest chunk index wins) is
/// rethrown on the calling thread after all lanes finish.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const RangeFn& fn);

/// True while the current thread is executing a ParallelFor chunk; nested
/// ParallelFor calls detect this and degrade to inline execution.
bool InParallelRegion();

}  // namespace promptem::core

#endif  // PROMPTEM_CORE_THREAD_POOL_H_
