#include "core/timer.h"

#include <cstdio>

namespace promptem::core {

std::string FormatDuration(double seconds) {
  char buf[32];
  if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
  } else if (seconds < 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.1fm", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fh", seconds / 3600.0);
  }
  return buf;
}

std::string FormatBytes(size_t bytes) {
  char buf[32];
  const double b = static_cast<double>(bytes);
  if (b >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.1fG", b / 1e9);
  } else if (b >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", b / 1e6);
  } else if (b >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fK", b / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%zuB", bytes);
  }
  return buf;
}

}  // namespace promptem::core
