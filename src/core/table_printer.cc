#include "core/table_printer.h"

#include <cstdio>
#include <algorithm>

#include "core/status.h"
#include "core/string_util.h"

namespace promptem::core {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  PROMPTEM_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Pct(double value01) {
  return StrFormat("%.1f", value01 * 100.0);
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      line += " |";
    }
    return line + "\n";
  };
  std::string sep = "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    sep.append(widths[c] + 2, '-');
    sep += "|";
  }
  sep += "\n";
  std::string out = render_row(header_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string TablePrinter::ToCsv() const {
  auto csv_row = [](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += ",";
      bool quote = row[c].find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        line += '"';
        line += ReplaceAll(row[c], "\"", "\"\"");
        line += '"';
      } else {
        line += row[c];
      }
    }
    return line + "\n";
  };
  std::string out = csv_row(header_);
  for (const auto& row : rows_) out += csv_row(row);
  return out;
}

}  // namespace promptem::core
