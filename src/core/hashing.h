#ifndef PROMPTEM_CORE_HASHING_H_
#define PROMPTEM_CORE_HASHING_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace promptem::core {

/// FNV-1a 64-bit over a byte range. The same polynomial the checkpoint
/// trailer and the run-telemetry config hash use; hoisted here so cache
/// keys, dataset fingerprints, and persisted-cache trailers all agree on
/// one implementation. Pass the previous return value as `seed` to chain
/// ranges.
inline constexpr uint64_t kFnv1aOffset = 1469598103934665603ull;
inline constexpr uint64_t kFnv1aPrime = 1099511628211ull;

uint64_t Fnv1a64(const void* data, size_t n, uint64_t seed = kFnv1aOffset);
uint64_t Fnv1a64(const std::string& s, uint64_t seed = kFnv1aOffset);

/// SplitMix64 finalizer: diffuses a 64-bit value so composite keys built
/// from small integers (side, index, generation counters) spread across
/// cache shards and probe sequences.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Order-sensitive combine of two 64-bit values (boost::hash_combine
/// style, widened): Combine64(a, b) != Combine64(b, a).
inline uint64_t Combine64(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2)));
}

}  // namespace promptem::core

#endif  // PROMPTEM_CORE_HASHING_H_
