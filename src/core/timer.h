#ifndef PROMPTEM_CORE_TIMER_H_
#define PROMPTEM_CORE_TIMER_H_

#include <chrono>
#include <string>

namespace promptem::core {

/// Monotonic wall-clock stopwatch used by the efficiency benchmarks
/// (Table 4) to report training time per method.
class Timer {
 public:
  Timer() { Reset(); }

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Formats a duration the way the paper's Table 4 prints it:
/// "26.6s", "7.4m", or "51.0h".
std::string FormatDuration(double seconds);

/// Formats a byte count as "29.2G" / "105.3M" / "1.5K".
std::string FormatBytes(size_t bytes);

}  // namespace promptem::core

#endif  // PROMPTEM_CORE_TIMER_H_
