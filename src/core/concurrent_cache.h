#ifndef PROMPTEM_CORE_CONCURRENT_CACHE_H_
#define PROMPTEM_CORE_CONCURRENT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/hashing.h"
#include "core/status.h"

namespace promptem::core {

/// A fixed-capacity concurrent cache: 64-bit keys -> shared immutable
/// values. The per-record building block behind the token-encoding memo
/// (em::PairEncoder), the embedding cache (em::EmbeddingCache), and the
/// incremental matcher's score reuse.
///
/// Design (the openaddr/cachechain shape, simplified to the cache
/// contract where losing an entry is always legal):
///  - Sharded: the mixed key selects one of `shards` independent tables,
///    so concurrent inserts/finds contend only per shard. Each shard is
///    guarded by its own mutex — entries move between threads only via
///    the shard lock, which keeps every interleaving TSan-clean.
///  - Open addressing inside a shard: power-of-two slot array, linear
///    probing, backward-shift deletion (no tombstones, probe chains stay
///    short under churn).
///  - Fixed capacity with CLOCK / second-chance eviction: a hit sets the
///    slot's reference bit; when a full shard inserts, a clock hand
///    sweeps the slots, clearing reference bits until it finds a cold
///    entry to evict. Hot entries survive scan pressure.
///  - Generation-counter invalidation (the QuantizedWeightCache pattern):
///    entries are stamped with the cache generation at insert;
///    Invalidate() bumps the counter and every older entry becomes a miss
///    (and is reclaimed lazily when next touched or swept).
///
/// Values are handed out as shared_ptr<const V>: eviction can race with a
/// reader holding the value, and immutability is what makes a racy
/// double-compute of the same key harmless — both threads insert
/// bitwise-identical values (callers must only cache pure functions of
/// the key).
///
/// Determinism: the cache never changes *what* a caller computes, only
/// whether it recomputes it. Callers that fill output slot i from
/// Find-or-compute therefore stay bitwise identical at any pool size.
template <typename V>
class ConcurrentCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;  ///< live entries (any generation)
  };

  /// `capacity` bounds the total live entries (>= 1). `shards` must be a
  /// power of two; 0 picks a default that keeps per-shard contention low
  /// without shattering tiny caches.
  explicit ConcurrentCache(size_t capacity, size_t shards = 0) {
    PROMPTEM_CHECK(capacity >= 1);
    if (shards == 0) {
      shards = 1;
      while (shards < 16 && shards * kMinShardSlots <= capacity) shards *= 2;
    }
    PROMPTEM_CHECK((shards & (shards - 1)) == 0);
    shard_mask_ = shards - 1;
    const size_t per_shard = (capacity + shards - 1) / shards;
    size_t slots = 1;
    // Slot array sized so the capacity cap (not the load factor) is what
    // triggers eviction: probe chains stay short at full capacity.
    while (slots < per_shard * 2) slots *= 2;
    shards_.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
      shards_.push_back(std::make_unique<Shard>(per_shard, slots));
    }
    capacity_ = per_shard * shards;
  }

  /// Looks up `key`; null on miss (absent or stale generation). A hit
  /// sets the entry's reference bit (second chance).
  std::shared_ptr<const V> Find(uint64_t key) {
    const uint64_t gen = generation_.load(std::memory_order_acquire);
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const size_t idx = shard.Locate(key);
    if (idx == kNotFound) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    Slot& slot = shard.slots[idx];
    if (slot.generation != gen) {
      // Stale: reclaim the slot now so dead generations don't squat on
      // capacity until the clock hand reaches them.
      shard.EraseAt(idx);
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    slot.referenced = true;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return slot.value;
  }

  /// Inserts `value` under `key`, evicting one cold entry if the shard is
  /// at capacity. If the key is already present (another thread computed
  /// it first), the existing value wins and is returned — callers cache
  /// pure functions, so both are identical anyway.
  std::shared_ptr<const V> Insert(uint64_t key, V value) {
    return InsertShared(key, std::make_shared<const V>(std::move(value)));
  }

  std::shared_ptr<const V> InsertShared(uint64_t key,
                                        std::shared_ptr<const V> value) {
    const uint64_t gen = generation_.load(std::memory_order_acquire);
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const size_t existing = shard.Locate(key);
    if (existing != kNotFound) {
      Slot& slot = shard.slots[existing];
      if (slot.generation == gen) return slot.value;
      // Same key from a dead generation: replace in place.
      slot.generation = gen;
      slot.value = std::move(value);
      slot.referenced = true;
      return slot.value;
    }
    if (shard.size >= shard.cap) {
      shard.EvictOne(gen);
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    return shard.InsertNew(key, gen, std::move(value));
  }

  /// Find-or-compute: `fn()` runs without any lock held (it is expensive
  /// — that is why it is being cached), so two threads may compute the
  /// same key concurrently; the first insert wins.
  template <typename Fn>
  std::shared_ptr<const V> GetOrCompute(uint64_t key, Fn&& fn) {
    if (auto hit = Find(key)) return hit;
    return Insert(key, fn());
  }

  /// Removes one key (no-op when absent). Precise invalidation for
  /// callers that know exactly which entry went stale (record upserts).
  void Erase(uint64_t key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const size_t idx = shard.Locate(key);
    if (idx != kNotFound) shard.EraseAt(idx);
  }

  /// Bumps the generation: every current entry becomes a miss. O(1); the
  /// slots are reclaimed lazily (stale Find, clock sweep) rather than
  /// eagerly scanned.
  void Invalidate() { generation_.fetch_add(1, std::memory_order_acq_rel); }

  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Total capacity actually provisioned (>= the constructor request,
  /// rounded up to whole shards).
  size_t capacity() const { return capacity_; }

  Stats stats() const {
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      s.entries += shard->size;
    }
    return s;
  }

  /// Visits every current-generation entry as fn(key, value). Shards are
  /// locked one at a time; `fn` must not call back into the cache.
  /// Visit order is unspecified — persistence sorts by key for a stable
  /// file image.
  template <typename Fn>
  void ForEachLive(Fn&& fn) const {
    const uint64_t gen = generation_.load(std::memory_order_acquire);
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      for (const Slot& slot : shard->slots) {
        if (slot.used && slot.generation == gen) fn(slot.key, slot.value);
      }
    }
  }

  /// Live entries whose generation is current (walks every shard).
  size_t LiveEntries() const {
    const uint64_t gen = generation_.load(std::memory_order_acquire);
    size_t n = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      for (const Slot& slot : shard->slots) {
        if (slot.used && slot.generation == gen) ++n;
      }
    }
    return n;
  }

 private:
  static constexpr size_t kNotFound = static_cast<size_t>(-1);
  static constexpr size_t kMinShardSlots = 64;

  struct Slot {
    uint64_t key = 0;
    uint64_t generation = 0;
    std::shared_ptr<const V> value;
    bool used = false;
    bool referenced = false;
  };

  struct Shard {
    Shard(size_t cap_in, size_t num_slots) : cap(cap_in), slots(num_slots) {
      PROMPTEM_CHECK(cap >= 1 && cap < num_slots);
    }

    size_t Mask() const { return slots.size() - 1; }

    /// Slot index of `key`, or kNotFound. Caller holds mu.
    size_t Locate(uint64_t key) const {
      size_t i = static_cast<size_t>(Mix64(key)) & Mask();
      while (slots[i].used) {
        if (slots[i].key == key) return i;
        i = (i + 1) & Mask();
      }
      return kNotFound;
    }

    std::shared_ptr<const V> InsertNew(uint64_t key, uint64_t gen,
                                       std::shared_ptr<const V> value) {
      size_t i = static_cast<size_t>(Mix64(key)) & Mask();
      while (slots[i].used) i = (i + 1) & Mask();
      Slot& slot = slots[i];
      slot.key = key;
      slot.generation = gen;
      slot.value = std::move(value);
      slot.used = true;
      slot.referenced = true;
      ++size;
      return slot.value;
    }

    /// Backward-shift deletion: closes the probe chain so no tombstones
    /// are needed. Caller holds mu.
    void EraseAt(size_t idx) {
      slots[idx].value.reset();
      slots[idx].used = false;
      --size;
      size_t hole = idx;
      size_t i = (idx + 1) & Mask();
      while (slots[i].used) {
        const size_t home = static_cast<size_t>(Mix64(slots[i].key)) & Mask();
        // Move slot i back into the hole iff the hole lies on i's probe
        // path (cyclic interval test home..i covers hole).
        const bool moves = ((i - home) & Mask()) >= ((i - hole) & Mask());
        if (moves) {
          slots[hole] = std::move(slots[i]);
          slots[i].value.reset();
          slots[i].used = false;
          hole = i;
        }
        i = (i + 1) & Mask();
      }
    }

    /// CLOCK second chance: sweep from the hand, clearing reference bits;
    /// evict the first unreferenced entry. Stale-generation entries are
    /// evicted on sight (no second chance for dead data). Terminates: the
    /// sweep clears bits as it goes, so the second lap finds a victim.
    void EvictOne(uint64_t gen) {
      for (;;) {
        hand = (hand + 1) & Mask();
        Slot& slot = slots[hand];
        if (!slot.used) continue;
        if (slot.generation != gen || !slot.referenced) {
          EraseAt(hand);
          // EraseAt may shift a later entry into `hand`; stepping the
          // hand forward next sweep is still fair enough for CLOCK.
          return;
        }
        slot.referenced = false;
      }
    }

    mutable std::mutex mu;
    size_t cap;
    size_t size = 0;
    size_t hand = 0;
    std::vector<Slot> slots;
  };

  Shard& ShardFor(uint64_t key) {
    return *shards_[static_cast<size_t>(Mix64(key ^ kShardSalt)) &
                    shard_mask_];
  }

  /// Shard selection is salted so it never correlates with the in-shard
  /// probe position (both are Mix64 of the key).
  static constexpr uint64_t kShardSalt = 0xA5A5A5A55A5A5A5Aull;

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t shard_mask_ = 0;
  size_t capacity_ = 0;
  std::atomic<uint64_t> generation_{1};
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace promptem::core

#endif  // PROMPTEM_CORE_CONCURRENT_CACHE_H_
