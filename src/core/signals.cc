#include "core/signals.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <atomic>
#include <thread>
#include <utility>

#include <unistd.h>

namespace promptem::core {

namespace {

std::atomic<bool> g_shutdown_requested{false};

}  // namespace

void IgnoreSigPipe() {
  struct sigaction action {};
  action.sa_handler = SIG_IGN;
  sigemptyset(&action.sa_mask);
  sigaction(SIGPIPE, &action, nullptr);
}

void BlockShutdownSignals() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
}

void InstallShutdownHandler(std::function<void(int)> on_signal) {
  // Re-block in the installing thread (harmless if already blocked);
  // only the sigwait below ever consumes these signals.
  BlockShutdownSignals();
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);

  std::thread([set, handler = std::move(on_signal)] {
    int signo = 0;
    if (sigwait(&set, &signo) != 0) return;
    g_shutdown_requested.store(true, std::memory_order_release);
    if (handler) handler(signo);
    // A second signal means "stop waiting for the drain": exit with the
    // conventional fatal-signal code immediately.
    int again = 0;
    if (sigwait(&set, &again) == 0) {
      std::fprintf(stderr, "second signal %d, exiting immediately\n", again);
      _exit(128 + again);
    }
  }).detach();
}

bool ShutdownRequested() {
  return g_shutdown_requested.load(std::memory_order_acquire);
}

}  // namespace promptem::core
