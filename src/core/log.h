#ifndef PROMPTEM_CORE_LOG_H_
#define PROMPTEM_CORE_LOG_H_

#include <sstream>
#include <string>

namespace promptem::core {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Writes one formatted log line ("[INFO] message") to stderr if `level`
/// passes the global threshold. Thread-compatible (single writer assumed).
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style log line builder; emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define PROMPTEM_LOG(level)                       \
  ::promptem::core::internal::LogStream(          \
      ::promptem::core::LogLevel::k##level)

}  // namespace promptem::core

#endif  // PROMPTEM_CORE_LOG_H_
