#ifndef PROMPTEM_CORE_MEM_TRACKER_H_
#define PROMPTEM_CORE_MEM_TRACKER_H_

#include <atomic>
#include <cstddef>

namespace promptem::core {

/// Process-wide accounting of tensor-storage bytes. Tensor storage
/// registers allocations/frees here, giving deterministic,
/// machine-independent "memory usage" numbers for the Table 4 efficiency
/// benchmark (standing in for the paper's GPU-memory column).
///
/// Thread-safe: worker threads allocate per-sample graph tensors
/// concurrently, so the counters are atomics (the peak is maintained with
/// a CAS loop).
class MemTracker {
 public:
  /// Records an allocation of `bytes`.
  static void Add(size_t bytes);

  /// Records a free of `bytes`.
  static void Sub(size_t bytes);

  /// Bytes currently live.
  static size_t CurrentBytes();

  /// High-water mark since the last ResetPeak().
  static size_t PeakBytes();

  /// Resets the high-water mark to the current live size.
  static void ResetPeak();

  /// Process-wide peak resident set (VmHWM from /proc/self/status), in
  /// bytes; 0 where unavailable. Unlike the tensor counters above this
  /// sees *everything* — index arenas, mmap page residency, malloc —
  /// which is what the --blocking-report memory line needs to make the
  /// in-RAM vs mmap trade measurable. Note the kernel never lowers the
  /// high-water mark, so this is a whole-process number, not a scoped
  /// one.
  static size_t ProcessPeakRssBytes();

 private:
  static std::atomic<size_t> current_;
  static std::atomic<size_t> peak_;
};

/// RAII scope that resets the peak on entry and exposes the peak observed
/// while alive. Used around a method's training run to report its peak
/// working set.
class ScopedPeakMemory {
 public:
  ScopedPeakMemory() { MemTracker::ResetPeak(); }

  /// Peak bytes observed since this scope began.
  size_t Peak() const { return MemTracker::PeakBytes(); }
};

}  // namespace promptem::core

#endif  // PROMPTEM_CORE_MEM_TRACKER_H_
