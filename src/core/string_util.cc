#include "core/string_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <set>

namespace promptem::core {

std::vector<std::string> SplitString(std::string_view s,
                                     std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool IsAllDigits(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isdigit(c) != 0;
  });
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t pos = 0;
  for (;;) {
    size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      return out;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

size_t EditDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<size_t> prev(m + 1);
  std::vector<size_t> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double TokenJaccard(std::string_view a, std::string_view b) {
  auto ta = SplitString(a);
  auto tb = SplitString(b);
  std::set<std::string> sa(ta.begin(), ta.end());
  std::set<std::string> sb(tb.begin(), tb.end());
  if (sa.empty() && sb.empty()) return 1.0;
  size_t inter = 0;
  for (const auto& t : sa) inter += sb.count(t);
  size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / uni;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int len = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (len > 0) {
    out.resize(static_cast<size_t>(len));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool ParseInt64(const char* text, long long* out) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseFiniteDouble(const char* text, double* out) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (errno != 0 || end == text || *end != '\0') return false;
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

}  // namespace promptem::core
