#ifndef PROMPTEM_CORE_TABLE_PRINTER_H_
#define PROMPTEM_CORE_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace promptem::core {

/// Renders aligned text tables for the benchmark harness so every bench
/// binary prints rows in the same layout the paper's tables use.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles to one decimal place (the paper's
  /// precision for P/R/F1 percentages).
  static std::string Pct(double value01);

  /// Renders the table with column alignment and a separator line.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

  /// Writes the table as CSV (for downstream plotting).
  std::string ToCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace promptem::core

#endif  // PROMPTEM_CORE_TABLE_PRINTER_H_
