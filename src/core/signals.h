#ifndef PROMPTEM_CORE_SIGNALS_H_
#define PROMPTEM_CORE_SIGNALS_H_

#include <functional>

namespace promptem::core {

/// Ignores SIGPIPE process-wide (idempotent). Any long-lived process that
/// writes to sockets or pipes must call this before serving: a peer that
/// disconnects mid-response otherwise kills the whole process with the
/// default SIGPIPE disposition. With it ignored, the write returns EPIPE
/// and the caller handles the dead peer like any other I/O error.
void IgnoreSigPipe();

/// Blocks SIGINT/SIGTERM in the calling thread (idempotent). Call first
/// thing in main(), before any thread — pool workers, daemon loops —
/// exists: every later thread inherits the mask, which is what ensures a
/// delivery can only ever surface in InstallShutdownHandler's sigwait
/// watcher instead of asynchronously killing whichever unblocked thread
/// the kernel picked.
void BlockShutdownSignals();

/// Graceful-shutdown plumbing for SIGINT/SIGTERM.
///
/// Requires BlockShutdownSignals() semantics: it (re-)blocks both
/// signals in the calling thread and starts a dedicated watcher thread
/// that sigwait()s for them — but only threads spawned after the mask
/// was first applied are covered, so call BlockShutdownSignals() at
/// startup and install the handler whenever the state it needs exists. The first delivery
/// sets ShutdownRequested() and invokes `on_signal(signo)` from the
/// watcher thread — a normal thread context, so the callback may take
/// locks, write files (e.g. flush a cache through the atomic save path),
/// or wake a poll loop. A second delivery _exit(128+sig)s immediately:
/// one Ctrl-C drains, two force-quit.
///
/// Because the signals are blocked rather than handled, in-flight
/// syscalls are never interrupted by them — but reads/writes must still
/// retry EINTR for every other signal (see serve/protocol.h's ReadFull /
/// WriteFull).
void InstallShutdownHandler(std::function<void(int)> on_signal);

/// True once the first SIGINT/SIGTERM arrived.
bool ShutdownRequested();

}  // namespace promptem::core

#endif  // PROMPTEM_CORE_SIGNALS_H_
