#include "core/hashing.h"

namespace promptem::core {

uint64_t Fnv1a64(const void* data, size_t n, uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= kFnv1aPrime;
  }
  return hash;
}

uint64_t Fnv1a64(const std::string& s, uint64_t seed) {
  return Fnv1a64(s.data(), s.size(), seed);
}

}  // namespace promptem::core
