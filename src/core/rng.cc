#include "core/rng.h"

#include <cmath>

#include "core/status.h"

namespace promptem::core {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextU64(uint64_t n) {
  PROMPTEM_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  PROMPTEM_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextU64(span));
}

float Rng::NextFloat() {
  return static_cast<float>(NextU64() >> 40) * (1.0f / 16777216.0f);
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
}

float Rng::Uniform(float lo, float hi) { return lo + (hi - lo) * NextFloat(); }

float Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  float u1 = 0.0f;
  do {
    u1 = NextFloat();
  } while (u1 <= 1e-12f);
  float u2 = NextFloat();
  float mag = std::sqrt(-2.0f * std::log(u1));
  spare_gaussian_ = mag * std::sin(6.28318530717958647692f * u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(6.28318530717958647692f * u2);
}

float Rng::Gaussian(float mean, float stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    PROMPTEM_CHECK(w >= 0.0);
    total += w;
  }
  PROMPTEM_CHECK(total > 0.0);
  double r = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xD6E8FEB86659FD93ULL); }

}  // namespace promptem::core
