#ifndef PROMPTEM_CORE_RNG_H_
#define PROMPTEM_CORE_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace promptem::core {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// splitmix64). All stochastic components in the library (initialization,
/// dropout, MLM masking, dataset generation, k-means, random walks) draw
/// from an explicitly passed Rng so runs are reproducible end to end.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, n). Requires n > 0.
  uint64_t NextU64(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform float in [0, 1).
  float NextFloat();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform float in [lo, hi).
  float Uniform(float lo, float hi);

  /// Standard normal via Box-Muller.
  float Gaussian();

  /// Normal with the given mean and standard deviation.
  float Gaussian(float mean, float stddev);

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of an index-addressable container.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (std::size_t i = v->size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(NextU64(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples an index according to non-negative weights (sum > 0).
  std::size_t Categorical(const std::vector<double>& weights);

  /// Derives a child generator with an independent-looking stream. Used to
  /// give each module (data gen, model init, dropout) its own stream from
  /// one top-level seed.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  float spare_gaussian_ = 0.0f;
};

}  // namespace promptem::core

#endif  // PROMPTEM_CORE_RNG_H_
