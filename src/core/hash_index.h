#ifndef PROMPTEM_CORE_HASH_INDEX_H_
#define PROMPTEM_CORE_HASH_INDEX_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"

namespace promptem::core {

/// A u64-keyed open-addressing index with two interchangeable backing
/// stores: an in-RAM arena and an mmap-backed file, so the same index
/// API serves tables that fit in memory and tables that do not. This is
/// the storage layer ROADMAP item 2 calls for: the MinHash band tables,
/// the persisted embedding cache, and the serving warm-start path all
/// key u64 -> bytes, and previously each grew its own ad-hoc store.
///
/// Shape:
///  - Multi-value keys: Add(key, rank, bytes) stages one value; at Seal
///    every value staged under a key is concatenated in (rank asc,
///    payload asc) order into one packed payload — a postings list when
///    the values are int32 rights (AddPosting), an embedding blob when
///    the value is a float vector.
///  - Build is sharded-lock parallel: Add takes one of kNumShards
///    mutexes keyed by Mix64(key), so index construction can run under
///    core::ParallelFor. Determinism does NOT come from insertion order
///    (which is pool-dependent) but from Seal's global sort: the sealed
///    image is a pure function of the staged (key, rank, payload)
///    multiset, so any pool size and any insertion order produce a
///    byte-identical table — including the mmap file image.
///  - Reads are wait-free probes over an immutable sealed snapshot
///    (linear probing from Mix64(key), table kept at most half full).
///    A Snapshot pins one sealed generation: spans returned by
///    Snapshot::Find stay valid for the snapshot's lifetime even while
///    a concurrent Seal publishes a new generation.
///  - Re-Seal merges: values staged since the last Seal replace that
///    key's sealed payload; untouched sealed keys carry over (in the
///    mmap backend they stream file -> file without a RAM round trip).
///
/// Mmap file format "PEMHIDX1" (checkpoint-v2 envelope discipline):
///   header  : magic[8] | u32 endian tag | u32 version | u64 key_count
///             | u64 slot_count | u64 payload_bytes
///             | u64 FNV-1a(header bytes so far)
///   slots   : slot_count x {u64 key, u64 offset, u64 size}
///             (offset == UINT64_MAX marks an empty slot)
///   payload : payload_bytes of packed values
///   trailer : u64 FNV-1a over every preceding byte of the file
/// Growth is atomic: the merged image is written to "<path>.tmp" and
/// renamed over the live file, so a crash at any instant leaves either
/// the old complete file or the new complete one. Open treats the file
/// as adversarial input — structure checks are bounds-checked against
/// the real file size and the full-file checksum must match before a
/// single entry is trusted; corruption is rejected wholesale.
class HashIndex {
 public:
  enum class Backend { kRam, kMmap };

  struct Options {
    Backend backend = Backend::kRam;
    /// Index file for Backend::kMmap (ignored for kRam). The file is
    /// only created/updated by Seal; a missing file is an empty index.
    std::string path;
  };

  /// A borrowed view of one key's packed payload.
  struct Span {
    const uint8_t* data = nullptr;
    uint64_t size = 0;
    bool empty() const { return size == 0; }
  };

  struct SealedState;  // opaque; owned via shared_ptr by snapshots

  /// One pinned sealed generation. Probing is wait-free and the spans
  /// it returns stay valid as long as the snapshot is alive, even if
  /// the index re-Seals concurrently.
  class Snapshot {
   public:
    Snapshot() = default;

    /// Packed payload of `key`; empty span when absent.
    Span Find(uint64_t key) const;
    /// Postings-list view: Find reinterpreted as int32 values (ascending
    /// when staged via AddPosting). Returns false when absent.
    bool FindPostings(uint64_t key, const int32_t** values,
                      size_t* count) const;

    size_t key_count() const;
    uint64_t payload_bytes() const;
    /// Sealed bytes resident on the heap (slots + payload for kRam;
    /// zero for kMmap, whose sealed bytes live in the file/page cache).
    uint64_t ram_bytes() const;
    /// Bytes of the backing file (zero for kRam).
    uint64_t file_bytes() const;

    /// Visits every sealed (key, payload) in ascending key order —
    /// pool-size invariant by construction. Builds an O(key_count)
    /// temporary ordering, so this is for seal/merge/stats paths, not
    /// per-probe use.
    void ForEach(
        const std::function<void(uint64_t key, Span payload)>& fn) const;

   private:
    friend class HashIndex;
    explicit Snapshot(std::shared_ptr<const SealedState> state)
        : state_(std::move(state)) {}
    std::shared_ptr<const SealedState> state_;
  };

  /// An empty index over the given backing store. For kMmap the file is
  /// not touched until the first Seal.
  explicit HashIndex(Options options);
  ~HashIndex();

  HashIndex(const HashIndex&) = delete;
  HashIndex& operator=(const HashIndex&) = delete;

  /// Opens an existing mmap-backed index file read-validated; the
  /// returned index can keep growing via Add + Seal. Any structural or
  /// checksum failure rejects the file wholesale with a Status naming
  /// the path, offset, and failed check.
  static Result<std::unique_ptr<HashIndex>> Open(const std::string& path);

  /// Stages one value under `key`. Thread-safe (sharded locks); the
  /// sealed result is independent of call order. `size` may be zero.
  void Add(uint64_t key, uint64_t rank, const void* data, size_t size);

  /// Stages one int32 posting; rank = value, so a key's sealed postings
  /// list is ascending regardless of insertion order.
  void AddPosting(uint64_t key, int32_t value);

  /// Publishes every staged value into a new immutable sealed
  /// generation, merging with the previous one (staged keys replace,
  /// untouched keys carry over). kMmap writes the merged image through
  /// the atomic tmp+rename path and remaps. Existing snapshots keep
  /// reading the old generation. On error nothing is published and the
  /// staged values remain staged.
  Status Seal();

  /// Pins the current sealed generation (empty before the first Seal
  /// of a kRam index / of a kMmap index with no file).
  Snapshot snapshot() const;

  Backend backend() const { return options_.backend; }
  const std::string& path() const { return options_.path; }

  // Convenience forwards to the current snapshot.
  size_t key_count() const { return snapshot().key_count(); }
  uint64_t payload_bytes() const { return snapshot().payload_bytes(); }
  uint64_t ram_bytes() const { return snapshot().ram_bytes(); }
  uint64_t file_bytes() const { return snapshot().file_bytes(); }

 private:
  static constexpr size_t kNumShards = 64;

  struct PendingEntry {
    uint64_t key;
    uint64_t rank;
    uint64_t offset;  // into the shard arena
    uint32_t size;
  };
  struct Shard {
    std::mutex mu;
    std::vector<PendingEntry> entries;
    std::vector<uint8_t> arena;
  };

  HashIndex(Options options, std::shared_ptr<const SealedState> sealed);

  Options options_;
  std::unique_ptr<Shard[]> shards_;
  /// Seal() publishes here; snapshot() loads. Immutable after publish.
  std::atomic<std::shared_ptr<const SealedState>> sealed_;
  /// Serializes Seal against itself (reads never take it).
  std::mutex seal_mu_;
};

}  // namespace promptem::core

#endif  // PROMPTEM_CORE_HASH_INDEX_H_
