#include "core/thread_pool.h"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "core/status.h"

namespace promptem::core {

namespace {

thread_local bool t_in_parallel_region = false;

int DefaultNumThreads() {
  if (const char* env = std::getenv("PROMPTEM_NUM_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<int>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Persistent fixed-size pool. A ParallelFor publishes one job; lane 0 is
/// the calling thread, lanes 1..N-1 are the pool workers. Chunks are
/// statically assigned (chunk c -> lane c % N), so scheduling never
/// depends on timing and reductions merged in chunk order are bitwise
/// reproducible.
class ThreadPool {
 public:
  static ThreadPool& Get() {
    static ThreadPool pool;
    return pool;
  }

  int lanes() {
    std::lock_guard<std::mutex> lock(mu_);
    return lanes_;
  }

  void Resize(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    PROMPTEM_CHECK_MSG(!t_in_parallel_region,
                       "SetNumThreads inside ParallelFor");
    const int target = n <= 0 ? DefaultNumThreads() : n;
    if (target == lanes_) return;
    StopWorkersLocked(&lock);
    lanes_ = target;
    StartWorkersLocked();
  }

  void Run(int64_t begin, int64_t end, int64_t grain, const RangeFn& fn) {
    if (end <= begin) return;
    if (grain <= 0) grain = end - begin;
    const int64_t chunks = (end - begin + grain - 1) / grain;

    // Inline when nested inside a worker chunk, when the pool has one
    // lane, or when there is only one chunk anyway.
    if (t_in_parallel_region || chunks == 1) {
      RunLaneInline(begin, end, grain, chunks, fn, /*lane=*/0, /*lanes=*/1);
      return;
    }

    std::unique_lock<std::mutex> lock(mu_);
    if (lanes_ == 1) {
      lock.unlock();
      RunLaneInline(begin, end, grain, chunks, fn, 0, 1);
      return;
    }
    // One job at a time: library callers issue top-level ParallelFors from
    // a single thread; a second concurrent caller simply runs inline.
    if (job_active_) {
      lock.unlock();
      RunLaneInline(begin, end, grain, chunks, fn, 0, 1);
      return;
    }
    job_active_ = true;
    job_fn_ = &fn;
    job_begin_ = begin;
    job_end_ = end;
    job_grain_ = grain;
    job_chunks_ = chunks;
    job_lanes_ = lanes_;
    errors_.assign(static_cast<size_t>(lanes_), Error{});
    pending_workers_ = lanes_ - 1;
    ++job_id_;
    lock.unlock();
    work_cv_.notify_all();

    // The caller is lane 0.
    RunLane(0);

    lock.lock();
    done_cv_.wait(lock, [this] { return pending_workers_ == 0; });
    job_active_ = false;
    job_fn_ = nullptr;
    // Rethrow the error from the lowest failing chunk.
    Error* first = nullptr;
    for (auto& e : errors_) {
      if (e.eptr && (first == nullptr || e.chunk < first->chunk)) first = &e;
    }
    if (first != nullptr) {
      std::exception_ptr eptr = first->eptr;
      lock.unlock();
      std::rethrow_exception(eptr);
    }
  }

 private:
  struct Error {
    std::exception_ptr eptr;
    int64_t chunk = 0;
  };

  ThreadPool() : lanes_(DefaultNumThreads()) { StartWorkersLocked(); }

  ~ThreadPool() {
    std::unique_lock<std::mutex> lock(mu_);
    StopWorkersLocked(&lock);
  }

  void StartWorkersLocked() {
    shutdown_ = false;
    const int workers = lanes_ - 1;
    threads_.reserve(static_cast<size_t>(workers));
    // Workers spawned after a Resize must not mistake the previous pool
    // generation's last job for a fresh one.
    const uint64_t current_job = job_id_;
    for (int w = 0; w < workers; ++w) {
      threads_.emplace_back(
          [this, w, current_job] { WorkerLoop(w + 1, current_job); });
    }
  }

  void StopWorkersLocked(std::unique_lock<std::mutex>* lock) {
    shutdown_ = true;
    work_cv_.notify_all();
    std::vector<std::thread> joining = std::move(threads_);
    threads_.clear();
    lock->unlock();
    for (auto& t : joining) t.join();
    lock->lock();
  }

  void WorkerLoop(int lane, uint64_t seen_job) {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [this, seen_job] {
          return shutdown_ || job_id_ != seen_job;
        });
        if (shutdown_) return;
        seen_job = job_id_;
        if (lane >= job_lanes_) {
          // Lane beyond this job's width: nothing to do, report done.
          FinishWorkerLocked();
          continue;
        }
      }
      RunLane(lane);
      {
        std::lock_guard<std::mutex> lock(mu_);
        FinishWorkerLocked();
      }
    }
  }

  void FinishWorkerLocked() {
    if (--pending_workers_ == 0) done_cv_.notify_all();
  }

  /// Runs every chunk assigned to `lane` (chunk c where c % lanes == lane),
  /// in increasing chunk order.
  void RunLane(int lane) {
    t_in_parallel_region = true;
    for (int64_t c = lane; c < job_chunks_; c += job_lanes_) {
      const int64_t b = job_begin_ + c * job_grain_;
      const int64_t e = std::min(job_end_, b + job_grain_);
      try {
        (*job_fn_)(b, e);
      } catch (...) {
        Error& slot = errors_[static_cast<size_t>(lane)];
        if (!slot.eptr) {
          slot.eptr = std::current_exception();
          slot.chunk = c;
        }
      }
    }
    t_in_parallel_region = false;
  }

  /// Inline execution path (one lane): runs chunks 0..chunks-1 in order on
  /// the calling thread, preserving the chunked call pattern so callers'
  /// per-chunk reductions behave identically to the pooled path.
  static void RunLaneInline(int64_t begin, int64_t end, int64_t grain,
                            int64_t chunks, const RangeFn& fn, int lane,
                            int lanes) {
    const bool was_nested = t_in_parallel_region;
    t_in_parallel_region = true;
    std::exception_ptr eptr;
    for (int64_t c = lane; c < chunks; c += lanes) {
      const int64_t b = begin + c * grain;
      const int64_t e = std::min(end, b + grain);
      try {
        fn(b, e);
      } catch (...) {
        if (!eptr) eptr = std::current_exception();
      }
    }
    t_in_parallel_region = was_nested;
    if (eptr) std::rethrow_exception(eptr);
  }

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  int lanes_ = 1;
  bool shutdown_ = false;

  // Current job (guarded by mu_ for publication; read by workers after the
  // job_id_ handshake).
  bool job_active_ = false;
  uint64_t job_id_ = 0;
  const RangeFn* job_fn_ = nullptr;
  int64_t job_begin_ = 0;
  int64_t job_end_ = 0;
  int64_t job_grain_ = 1;
  int64_t job_chunks_ = 0;
  int job_lanes_ = 1;
  int pending_workers_ = 0;
  std::vector<Error> errors_;
};

}  // namespace

int GetNumThreads() { return ThreadPool::Get().lanes(); }

void SetNumThreads(int n) { ThreadPool::Get().Resize(n); }

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const RangeFn& fn) {
  ThreadPool::Get().Run(begin, end, grain, fn);
}

bool InParallelRegion() { return t_in_parallel_region; }

}  // namespace promptem::core
