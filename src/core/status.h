#ifndef PROMPTEM_CORE_STATUS_H_
#define PROMPTEM_CORE_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace promptem::core {

/// Error codes used across the library. Modeled after the RocksDB/Arrow
/// status idiom: library entry points that can fail for data-dependent
/// reasons return a Status (or Result<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIOError,
  kUnimplemented,
};

/// Returns a short human-readable name for a status code ("InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A cheap value type carrying success or an error code plus message.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "InvalidArgument: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result is a programmer error and aborts.
template <typename T>
class Result {
 public:
  /// Implicit from value and from Status, so functions can `return value;`
  /// or `return Status::InvalidArgument(...)`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      std::fprintf(stderr, "Result constructed from OK status\n");
      std::abort();
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return value_;
  }
  T& value() & {
    CheckOk();
    return value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(value_);
  }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? value_ : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!status_.ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  T value_{};
};

/// Aborts with a message when `cond` is false. Reserved for programmer
/// errors (shape mismatches, index bugs) that are not recoverable states.
#define PROMPTEM_CHECK(cond)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define PROMPTEM_CHECK_MSG(cond, msg)                                     \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,  \
                   __LINE__, #cond, (msg));                               \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

/// Propagates a non-OK Status to the caller.
#define PROMPTEM_RETURN_IF_ERROR(expr)          \
  do {                                          \
    ::promptem::core::Status _st = (expr);      \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace promptem::core

#endif  // PROMPTEM_CORE_STATUS_H_
