#ifndef PROMPTEM_CORE_STRING_UTIL_H_
#define PROMPTEM_CORE_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace promptem::core {

/// Splits on any of the characters in `delims`; empty pieces are dropped.
std::vector<std::string> SplitString(std::string_view s,
                                     std::string_view delims = " \t\n\r");

/// Joins pieces with a separator.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// Strips leading/trailing whitespace.
std::string Trim(std::string_view s);

/// True when every character is an ASCII digit (and s is non-empty).
bool IsAllDigits(std::string_view s);

/// True when `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Replaces every occurrence of `from` with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// Levenshtein edit distance; used by tests and data-noise validators.
size_t EditDistance(std::string_view a, std::string_view b);

/// Jaccard similarity of whitespace token sets in [0,1].
double TokenJaccard(std::string_view a, std::string_view b);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Strict command-line number parsing, shared by every tool. atoi/atof
/// silently read "0.1x" or "" as a number and let the garbage value
/// travel deep into the run; these accept only a complete, in-range
/// literal. ParseFiniteDouble additionally rejects nan/inf — "nan"
/// otherwise slips through naive range checks ('nan <= 0.0' and
/// 'nan > 1.0' are both false) and poisons every later comparison.
bool ParseInt64(const char* text, long long* out);
bool ParseFiniteDouble(const char* text, double* out);

}  // namespace promptem::core

#endif  // PROMPTEM_CORE_STRING_UTIL_H_
