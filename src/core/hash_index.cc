#include "core/hash_index.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "core/hashing.h"

namespace promptem::core {

namespace {

// File format "PEMHIDX1": fixed 48-byte header (magic, u32 endianness
// tag, u32 version, u64 key_count, u64 slot_count, u64 payload_bytes,
// u64 FNV-1a of the preceding 40 bytes), slot array, packed payload,
// trailing u64 FNV-1a over every preceding byte. Same adversarial-input
// discipline as checkpoint v2 and the embedding-cache file.
constexpr char kMagic[8] = {'P', 'E', 'M', 'H', 'I', 'D', 'X', '1'};
constexpr uint32_t kEndianTag = 0x01020304u;
constexpr uint32_t kVersion = 1;
constexpr uint64_t kHeaderBytes = 48;
constexpr uint64_t kEmptyOffset = UINT64_MAX;

/// Payload offsets are 8-byte aligned so postings lists and float blobs
/// can be read in place from the mapping without unaligned access.
uint64_t AlignUp8(uint64_t v) { return (v + 7) & ~static_cast<uint64_t>(7); }

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// fwrite folding every byte into a running FNV-1a hash (the trailer).
class HashingWriter {
 public:
  explicit HashingWriter(std::FILE* f) : f_(f) {}

  bool Write(const void* data, size_t n) {
    hash_ = Fnv1a64(data, n, hash_);
    return std::fwrite(data, 1, n, f_) == n;
  }
  bool WriteU32(uint32_t v) { return Write(&v, sizeof(v)); }
  bool WriteU64(uint64_t v) { return Write(&v, sizeof(v)); }
  uint64_t hash() const { return hash_; }

 private:
  std::FILE* f_;
  uint64_t hash_ = kFnv1aOffset;
};

Status Corrupt(const std::string& path, uint64_t offset,
               const std::string& check) {
  return Status::InvalidArgument("corrupt hash index (" + check +
                                 " at offset " + std::to_string(offset) +
                                 "): " + path);
}

}  // namespace

struct HashIndex::SealedState {
  struct Slot {
    uint64_t key;
    uint64_t offset;  // into the payload section; kEmptyOffset = empty
    uint64_t size;
  };
  static_assert(sizeof(Slot) == 24, "Slot must be packed");

  // Owned storage: exactly one of (slots_ram, payload_ram) / (map) is
  // populated; the view pointers below point into whichever owns.
  std::vector<Slot> slots_ram;
  std::vector<uint8_t> payload_ram;
  void* map = nullptr;
  uint64_t map_size = 0;

  const Slot* slots = nullptr;
  uint64_t slot_count = 0;  // power of two; 0 only for the empty state
  const uint8_t* payload = nullptr;
  uint64_t payload_bytes = 0;  // packed bytes incl. alignment padding
  uint64_t key_count = 0;
  uint64_t file_bytes = 0;

  ~SealedState() {
    if (map != nullptr) ::munmap(map, static_cast<size_t>(map_size));
  }

  const Slot* FindSlot(uint64_t key) const {
    if (slot_count == 0) return nullptr;
    const uint64_t mask = slot_count - 1;
    // Linear probe from the key's home slot. The table is kept at most
    // half full, so an empty slot (= miss) is always reachable.
    for (uint64_t i = Mix64(key) & mask;; i = (i + 1) & mask) {
      const Slot& s = slots[i];
      if (s.offset == kEmptyOffset) return nullptr;
      if (s.key == key) return &s;
    }
  }

  /// Occupied slots in ascending key order (seal/merge/stats paths).
  std::vector<const Slot*> SortedSlots() const {
    std::vector<const Slot*> out;
    out.reserve(static_cast<size_t>(key_count));
    for (uint64_t i = 0; i < slot_count; ++i) {
      if (slots[i].offset != kEmptyOffset) out.push_back(&slots[i]);
    }
    std::sort(out.begin(), out.end(),
              [](const Slot* a, const Slot* b) { return a->key < b->key; });
    return out;
  }
};

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

HashIndex::Span HashIndex::Snapshot::Find(uint64_t key) const {
  if (!state_) return {};
  const SealedState::Slot* s = state_->FindSlot(key);
  if (s == nullptr) return {};
  return {state_->payload + s->offset, s->size};
}

bool HashIndex::Snapshot::FindPostings(uint64_t key, const int32_t** values,
                                       size_t* count) const {
  const Span span = Find(key);
  if (span.data == nullptr) return false;
  *values = reinterpret_cast<const int32_t*>(span.data);
  *count = static_cast<size_t>(span.size / sizeof(int32_t));
  return true;
}

size_t HashIndex::Snapshot::key_count() const {
  return state_ ? static_cast<size_t>(state_->key_count) : 0;
}

uint64_t HashIndex::Snapshot::payload_bytes() const {
  return state_ ? state_->payload_bytes : 0;
}

uint64_t HashIndex::Snapshot::ram_bytes() const {
  if (!state_) return 0;
  return state_->slots_ram.size() * sizeof(SealedState::Slot) +
         state_->payload_ram.size();
}

uint64_t HashIndex::Snapshot::file_bytes() const {
  return state_ ? state_->file_bytes : 0;
}

void HashIndex::Snapshot::ForEach(
    const std::function<void(uint64_t key, Span payload)>& fn) const {
  if (!state_) return;
  for (const SealedState::Slot* s : state_->SortedSlots()) {
    fn(s->key, Span{state_->payload + s->offset, s->size});
  }
}

// ---------------------------------------------------------------------------
// HashIndex: construction / open
// ---------------------------------------------------------------------------

HashIndex::HashIndex(Options options)
    : HashIndex(std::move(options), std::make_shared<const SealedState>()) {}

HashIndex::HashIndex(Options options,
                     std::shared_ptr<const SealedState> sealed)
    : options_(std::move(options)),
      shards_(new Shard[kNumShards]),
      sealed_(std::move(sealed)) {}

HashIndex::~HashIndex() = default;

namespace {

/// Maps and fully validates an index file. On any failure nothing is
/// retained — corruption is rejected wholesale before a single entry is
/// visible to a reader.
Result<std::shared_ptr<const HashIndex::SealedState>> MapAndValidate(
    const std::string& path) {
  using Slot = HashIndex::SealedState::Slot;

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::NotFound("cannot open: " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat: " + path);
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size < kHeaderBytes + sizeof(uint64_t)) {
    ::close(fd);
    return Corrupt(path, size, "file too small");
  }
  void* map = ::mmap(nullptr, static_cast<size_t>(size), PROT_READ,
                     MAP_SHARED, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) return Status::IOError("cannot mmap: " + path);
  auto state = std::make_shared<HashIndex::SealedState>();
  state->map = map;  // unmapped by the destructor on every exit path
  state->map_size = size;

  const uint8_t* base = static_cast<const uint8_t*>(map);
  if (std::memcmp(base, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt(path, 0, "bad magic");
  }
  uint32_t endian = 0;
  uint32_t version = 0;
  std::memcpy(&endian, base + 8, sizeof(endian));
  std::memcpy(&version, base + 12, sizeof(version));
  if (endian != kEndianTag) return Corrupt(path, 8, "endianness mismatch");
  if (version != kVersion) return Corrupt(path, 12, "unsupported version");
  uint64_t key_count = 0;
  uint64_t slot_count = 0;
  uint64_t payload_bytes = 0;
  uint64_t header_hash = 0;
  std::memcpy(&key_count, base + 16, sizeof(key_count));
  std::memcpy(&slot_count, base + 24, sizeof(slot_count));
  std::memcpy(&payload_bytes, base + 32, sizeof(payload_bytes));
  std::memcpy(&header_hash, base + 40, sizeof(header_hash));
  if (header_hash != Fnv1a64(base, 40)) {
    return Corrupt(path, 40, "header checksum mismatch");
  }
  // Structure checks, all bounds-checked against the real file size
  // before any of the body is trusted.
  if (slot_count < 8 || (slot_count & (slot_count - 1)) != 0) {
    return Corrupt(path, 24, "slot count not a power of two");
  }
  if (key_count * 2 > slot_count) {
    return Corrupt(path, 16, "key count exceeds half the slots");
  }
  if (slot_count > (size - kHeaderBytes) / sizeof(Slot)) {
    return Corrupt(path, 24, "slot table exceeds file size");
  }
  const uint64_t expected = kHeaderBytes + slot_count * sizeof(Slot) +
                            payload_bytes + sizeof(uint64_t);
  if (expected != size) return Corrupt(path, 32, "file size mismatch");
  uint64_t trailer = 0;
  std::memcpy(&trailer, base + size - sizeof(trailer), sizeof(trailer));
  if (trailer != Fnv1a64(base, size - sizeof(trailer))) {
    return Corrupt(path, size - sizeof(trailer), "checksum mismatch");
  }

  const Slot* slots = reinterpret_cast<const Slot*>(base + kHeaderBytes);
  uint64_t occupied = 0;
  for (uint64_t i = 0; i < slot_count; ++i) {
    if (slots[i].offset == kEmptyOffset) continue;
    ++occupied;
    if (slots[i].offset > payload_bytes ||
        slots[i].size > payload_bytes - slots[i].offset) {
      return Corrupt(path, kHeaderBytes + i * sizeof(Slot),
                     "slot out of payload bounds");
    }
  }
  if (occupied != key_count) {
    return Corrupt(path, 16, "slot occupancy disagrees with key count");
  }

  state->slots = slots;
  state->slot_count = slot_count;
  state->payload = base + kHeaderBytes + slot_count * sizeof(Slot);
  state->payload_bytes = payload_bytes;
  state->key_count = key_count;
  state->file_bytes = size;
  return std::shared_ptr<const HashIndex::SealedState>(std::move(state));
}

}  // namespace

Result<std::unique_ptr<HashIndex>> HashIndex::Open(const std::string& path) {
  auto state = MapAndValidate(path);
  if (!state.ok()) return state.status();
  Options options;
  options.backend = Backend::kMmap;
  options.path = path;
  return std::unique_ptr<HashIndex>(
      new HashIndex(std::move(options), std::move(state).value()));
}

HashIndex::Snapshot HashIndex::snapshot() const {
  return Snapshot(sealed_.load(std::memory_order_acquire));
}

// ---------------------------------------------------------------------------
// Build
// ---------------------------------------------------------------------------

void HashIndex::Add(uint64_t key, uint64_t rank, const void* data,
                    size_t size) {
  PROMPTEM_CHECK(size <= UINT32_MAX);
  Shard& shard = shards_[Mix64(key) % kNumShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  const uint64_t offset = shard.arena.size();
  if (size > 0) {
    const uint8_t* bytes = static_cast<const uint8_t*>(data);
    shard.arena.insert(shard.arena.end(), bytes, bytes + size);
  }
  shard.entries.push_back(
      PendingEntry{key, rank, offset, static_cast<uint32_t>(size)});
}

void HashIndex::AddPosting(uint64_t key, int32_t value) {
  // rank = value keeps a key's sealed postings list ascending no matter
  // the insertion order (the order legacy sorted band arrays emit).
  Add(key, static_cast<uint64_t>(static_cast<uint32_t>(value)), &value,
      sizeof(value));
}

Status HashIndex::Seal() {
  std::lock_guard<std::mutex> seal_lock(seal_mu_);
  // Drain each shard's staging under its own lock, one shard at a time —
  // never all kNumShards at once (TSan's deadlock detector aborts the
  // process at 64 simultaneously-held locks, and holding them buys
  // nothing: an Add racing the drain lands in the next generation either
  // way). Readers never block — they keep probing the previous snapshot
  // until the new one is published.
  std::vector<std::vector<PendingEntry>> staged_entries(kNumShards);
  std::vector<std::vector<uint8_t>> staged_arenas(kNumShards);
  for (size_t i = 0; i < kNumShards; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    staged_entries[i] = std::move(shard.entries);
    staged_arenas[i] = std::move(shard.arena);
    shard.entries = {};
    shard.arena = {};
  }

  // Gather pending values and order them (key asc, rank asc, payload
  // asc), dropping exact duplicates: the sealed image becomes a pure
  // function of the staged multiset, independent of insertion order and
  // pool size.
  struct PendingRef {
    uint64_t key;
    uint64_t rank;
    const uint8_t* data;
    uint32_t size;
  };
  std::vector<PendingRef> pending;
  size_t total_pending = 0;
  for (size_t i = 0; i < kNumShards; ++i) total_pending += staged_entries[i].size();
  pending.reserve(total_pending);
  for (size_t i = 0; i < kNumShards; ++i) {
    const std::vector<uint8_t>& arena = staged_arenas[i];
    for (const PendingEntry& e : staged_entries[i]) {
      pending.push_back(
          PendingRef{e.key, e.rank, arena.data() + e.offset, e.size});
    }
  }
  std::sort(pending.begin(), pending.end(),
            [](const PendingRef& a, const PendingRef& b) {
              if (a.key != b.key) return a.key < b.key;
              if (a.rank != b.rank) return a.rank < b.rank;
              return std::lexicographical_compare(a.data, a.data + a.size,
                                                  b.data, b.data + b.size);
            });
  pending.erase(
      std::unique(pending.begin(), pending.end(),
                  [](const PendingRef& a, const PendingRef& b) {
                    return a.key == b.key && a.rank == b.rank &&
                           a.size == b.size &&
                           std::memcmp(a.data, b.data, a.size) == 0;
                  }),
      pending.end());

  const std::shared_ptr<const SealedState> old =
      sealed_.load(std::memory_order_acquire);

  // Merge plan in ascending key order: staged keys replace their sealed
  // payload, untouched sealed keys carry over (for the mmap backend the
  // carried bytes stream file -> file below, no RAM round trip).
  struct MergedKey {
    uint64_t key;
    size_t pending_begin = 0;  // [begin, end) into `pending` when staged
    size_t pending_end = 0;
    const SealedState::Slot* carried = nullptr;  // else carried slot
    uint64_t size = 0;
    uint64_t offset = 0;
  };
  std::vector<MergedKey> merged;
  {
    const std::vector<const SealedState::Slot*> old_sorted =
        old->SortedSlots();
    merged.reserve(old_sorted.size() + pending.size());
    size_t p = 0;
    size_t o = 0;
    while (p < pending.size() || o < old_sorted.size()) {
      MergedKey m;
      const bool take_pending =
          p < pending.size() &&
          (o >= old_sorted.size() || pending[p].key <= old_sorted[o]->key);
      if (take_pending) {
        m.key = pending[p].key;
        m.pending_begin = p;
        while (p < pending.size() && pending[p].key == m.key) {
          m.size += pending[p].size;
          ++p;
        }
        m.pending_end = p;
        if (o < old_sorted.size() && old_sorted[o]->key == m.key) ++o;
      } else {
        m.key = old_sorted[o]->key;
        m.carried = old_sorted[o];
        m.size = old_sorted[o]->size;
        ++o;
      }
      merged.push_back(m);
    }
  }

  const uint64_t key_count = merged.size();
  uint64_t slot_count = 8;
  while (slot_count < key_count * 2) slot_count <<= 1;
  uint64_t payload_bytes = 0;
  for (MergedKey& m : merged) {
    m.offset = payload_bytes;
    payload_bytes = AlignUp8(payload_bytes + m.size);
  }

  // Slot table, inserted in ascending key order so the probe layout (and
  // thus the file image) is deterministic for a given key set.
  std::vector<SealedState::Slot> slots(
      static_cast<size_t>(slot_count),
      SealedState::Slot{0, kEmptyOffset, 0});
  const uint64_t mask = slot_count - 1;
  for (const MergedKey& m : merged) {
    uint64_t i = Mix64(m.key) & mask;
    while (slots[static_cast<size_t>(i)].offset != kEmptyOffset) {
      i = (i + 1) & mask;
    }
    slots[static_cast<size_t>(i)] =
        SealedState::Slot{m.key, m.offset, m.size};
  }

  auto payload_of = [&](const MergedKey& m,
                        const std::function<void(const void*, size_t)>& sink) {
    if (m.carried != nullptr) {
      sink(old->payload + m.carried->offset, static_cast<size_t>(m.size));
    } else {
      for (size_t i = m.pending_begin; i < m.pending_end; ++i) {
        sink(pending[i].data, pending[i].size);
      }
    }
    static constexpr uint8_t kPad[8] = {0};
    const uint64_t padded = AlignUp8(m.size) - m.size;
    if (padded > 0) sink(kPad, static_cast<size_t>(padded));
  };

  std::shared_ptr<SealedState> fresh;
  if (options_.backend == Backend::kRam) {
    fresh = std::make_shared<SealedState>();
    fresh->payload_ram.reserve(static_cast<size_t>(payload_bytes));
    for (const MergedKey& m : merged) {
      payload_of(m, [&](const void* data, size_t n) {
        const uint8_t* bytes = static_cast<const uint8_t*>(data);
        fresh->payload_ram.insert(fresh->payload_ram.end(), bytes, bytes + n);
      });
    }
    fresh->slots_ram = std::move(slots);
    fresh->slots = fresh->slots_ram.data();
    fresh->payload = fresh->payload_ram.data();
  } else {
    if (options_.path.empty()) {
      return Status::InvalidArgument("mmap hash index has no path");
    }
    const std::string tmp = options_.path + ".tmp";
    {
      FilePtr f(std::fopen(tmp.c_str(), "wb"));
      if (!f) return Status::IOError("cannot open for write: " + tmp);
      HashingWriter w(f.get());
      bool ok = w.Write(kMagic, sizeof(kMagic)) && w.WriteU32(kEndianTag) &&
                w.WriteU32(kVersion) && w.WriteU64(key_count) &&
                w.WriteU64(slot_count) && w.WriteU64(payload_bytes) &&
                // Running hash now covers exactly the first 40 bytes.
                w.WriteU64(w.hash()) &&
                w.Write(slots.data(), slots.size() * sizeof(slots[0]));
      for (const MergedKey& m : merged) {
        if (!ok) break;
        payload_of(m, [&](const void* data, size_t n) {
          ok = ok && w.Write(data, n);
        });
      }
      if (ok) {
        const uint64_t trailer = w.hash();
        ok = std::fwrite(&trailer, 1, sizeof(trailer), f.get()) ==
             sizeof(trailer);
      }
      if (ok) ok = std::fflush(f.get()) == 0;
      if (!ok) {
        std::remove(tmp.c_str());
        return Status::IOError("write failed: " + tmp);
      }
    }
    if (std::rename(tmp.c_str(), options_.path.c_str()) != 0) {
      std::remove(tmp.c_str());
      return Status::IOError("rename failed: " + options_.path);
    }
    auto mapped = MapAndValidate(options_.path);
    if (!mapped.ok()) return mapped.status();
    sealed_.store(std::move(mapped).value(), std::memory_order_release);
    return Status::OK();
  }

  fresh->slot_count = slot_count;
  fresh->payload_bytes = payload_bytes;
  fresh->key_count = key_count;
  sealed_.store(std::shared_ptr<const SealedState>(std::move(fresh)),
                std::memory_order_release);
  return Status::OK();
}

}  // namespace promptem::core
