#include "core/mem_tracker.h"

namespace promptem::core {

std::atomic<size_t> MemTracker::current_{0};
std::atomic<size_t> MemTracker::peak_{0};

void MemTracker::Add(size_t bytes) {
  const size_t now = current_.fetch_add(bytes, std::memory_order_relaxed) +
                     bytes;
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now,
                                      std::memory_order_relaxed)) {
  }
}

void MemTracker::Sub(size_t bytes) {
  size_t cur = current_.load(std::memory_order_relaxed);
  size_t next;
  do {
    next = bytes > cur ? 0 : cur - bytes;
  } while (!current_.compare_exchange_weak(cur, next,
                                           std::memory_order_relaxed));
}

size_t MemTracker::CurrentBytes() {
  return current_.load(std::memory_order_relaxed);
}

size_t MemTracker::PeakBytes() { return peak_.load(std::memory_order_relaxed); }

void MemTracker::ResetPeak() {
  peak_.store(current_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
}

}  // namespace promptem::core
