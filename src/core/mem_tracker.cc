#include "core/mem_tracker.h"

#include <cstdio>
#include <cstring>

namespace promptem::core {

std::atomic<size_t> MemTracker::current_{0};
std::atomic<size_t> MemTracker::peak_{0};

void MemTracker::Add(size_t bytes) {
  const size_t now = current_.fetch_add(bytes, std::memory_order_relaxed) +
                     bytes;
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now,
                                      std::memory_order_relaxed)) {
  }
}

void MemTracker::Sub(size_t bytes) {
  size_t cur = current_.load(std::memory_order_relaxed);
  size_t next;
  do {
    next = bytes > cur ? 0 : cur - bytes;
  } while (!current_.compare_exchange_weak(cur, next,
                                           std::memory_order_relaxed));
}

size_t MemTracker::CurrentBytes() {
  return current_.load(std::memory_order_relaxed);
}

size_t MemTracker::PeakBytes() { return peak_.load(std::memory_order_relaxed); }

void MemTracker::ResetPeak() {
  peak_.store(current_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
}

size_t MemTracker::ProcessPeakRssBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  size_t peak_kb = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      unsigned long long kb = 0;
      if (std::sscanf(line + 6, "%llu", &kb) == 1) {
        peak_kb = static_cast<size_t>(kb);
      }
      break;
    }
  }
  std::fclose(f);
  return peak_kb * 1024;
#else
  return 0;
#endif
}

}  // namespace promptem::core
