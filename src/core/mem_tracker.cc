#include "core/mem_tracker.h"

namespace promptem::core {

size_t MemTracker::current_ = 0;
size_t MemTracker::peak_ = 0;

void MemTracker::Add(size_t bytes) {
  current_ += bytes;
  if (current_ > peak_) peak_ = current_;
}

void MemTracker::Sub(size_t bytes) {
  current_ = bytes > current_ ? 0 : current_ - bytes;
}

size_t MemTracker::CurrentBytes() { return current_; }
size_t MemTracker::PeakBytes() { return peak_; }
void MemTracker::ResetPeak() { peak_ = current_; }

}  // namespace promptem::core
