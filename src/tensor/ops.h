#ifndef PROMPTEM_TENSOR_OPS_H_
#define PROMPTEM_TENSOR_OPS_H_

#include <vector>

#include "core/rng.h"
#include "tensor/tensor.h"

namespace promptem::tensor::ops {

/// Differentiable operations. Every function returns a fresh tensor; when
/// grad mode is on (see NoGradGuard) and any input requires grad, the result
/// carries a backward closure that accumulates into the inputs' grads.
///
/// Shapes are 1-D or 2-D; "rows x cols" below. Shape mismatches are
/// programmer errors and abort via PROMPTEM_CHECK.

/// Elementwise a + b (same shape).
Tensor Add(const Tensor& a, const Tensor& b);

/// Elementwise a - b (same shape).
Tensor Sub(const Tensor& a, const Tensor& b);

/// Elementwise a * b (same shape).
Tensor Mul(const Tensor& a, const Tensor& b);

/// x[m,n] + bias[n] broadcast over rows.
Tensor AddBias(const Tensor& x, const Tensor& bias);

/// s * a.
Tensor Scale(const Tensor& a, float s);

/// a + s.
Tensor AddScalar(const Tensor& a, float s);

/// op(a) @ op(b) with optional transposes. op(a) is [m,k], op(b) is [k,n].
Tensor MatMul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);

/// Row-wise softmax of a 2-D tensor.
Tensor Softmax(const Tensor& x);

/// Row-wise log-softmax of a 2-D tensor.
Tensor LogSoftmax(const Tensor& x);

/// Layer normalization over the last dim; gamma/beta are [cols].
Tensor LayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 float eps = 1e-5f);

/// Activations (elementwise).
Tensor Gelu(const Tensor& x);
Tensor Tanh(const Tensor& x);
Tensor Sigmoid(const Tensor& x);
Tensor Relu(const Tensor& x);
Tensor Abs(const Tensor& x);
Tensor Log(const Tensor& x);

/// Inverted dropout with keep-scale 1/(1-p). Draws the mask from `rng`.
/// With p == 0 returns the input unchanged.
Tensor Dropout(const Tensor& x, float p, core::Rng* rng);

/// Gathers rows of `table` [V,D] at token ids -> [ids.size(), D].
/// Backward scatter-adds into the table rows.
Tensor EmbeddingLookup(const Tensor& table, const std::vector<int>& ids);

/// Gathers rows of x at `rows` -> [rows.size(), cols].
Tensor SelectRows(const Tensor& x, const std::vector<int>& rows);

/// Gathers columns of x at `cols` -> [rows, cols.size()].
Tensor SelectCols(const Tensor& x, const std::vector<int>& cols);

/// Contiguous column window x[:, col_begin : col_begin + count). Built on
/// the strided-view machinery (tensor/view.h): the forward is one
/// block copy with no per-column index vector, and the backward
/// scatter-adds straight into the window. For an iota column list this is
/// value- and gradient-identical to SelectCols, just cheaper.
Tensor SliceCols(const Tensor& x, int col_begin, int count);

/// Fused multi-head scaled-dot-product self-attention over packed
/// per-head buffers. q, k, v are [T, D] with D = num_heads * head_dim and
/// head h occupying columns [h*head_dim, (h+1)*head_dim). Returns the
/// packed [T, D] context (softmax(scale * Q_h K_h^T) with dropout, times
/// V_h, written directly into head h's column block).
///
/// One tiled pass per (head, row-tile) — parallelized via
/// core::ParallelFor with a pool-size-independent decomposition — reads
/// the head operands as strided views, runs a streaming (online-max)
/// softmax so score tiles stay cache-resident, and applies inverted
/// dropout with keep-scale 1/(1-p). The Bernoulli mask is pre-drawn from
/// `rng` in the exact order the unfused per-op composition draws it
/// (head-major, then row-major over the [T, T] score matrix), so masks
/// are bit-identical to that path and independent of the pool size.
/// `rng` may be null when dropout_p == 0.
///
/// Under grad mode the result carries a single hand-written backward that
/// reuses cached softmax rows and the seeded mask; with grad mode off the
/// pass is graph-free and every intermediate (workspace tiles, mask)
/// draws from the thread's ScratchArena when one is installed.
Tensor FusedSdpa(const Tensor& q, const Tensor& k, const Tensor& v,
                 int num_heads, float scale, float dropout_p,
                 core::Rng* rng);

/// Vertically stacks tensors with equal column counts.
Tensor ConcatRows(const std::vector<Tensor>& parts);

/// Horizontally concatenates tensors with equal row counts.
Tensor ConcatCols(const std::vector<Tensor>& parts);

/// Mean over rows -> [1, cols] (sequence pooling).
Tensor MeanRows(const Tensor& x);

/// Sum of all elements -> scalar [1].
Tensor Sum(const Tensor& x);

/// Mean of all elements -> scalar [1].
Tensor Mean(const Tensor& x);

/// Mean cross-entropy of row-wise logits [m, C] against integer targets.
/// Returns scalar [1]. Rows with target < 0 are ignored (masked).
Tensor CrossEntropyLogits(const Tensor& logits,
                          const std::vector<int>& targets);

}  // namespace promptem::tensor::ops

#endif  // PROMPTEM_TENSOR_OPS_H_
