#ifndef PROMPTEM_TENSOR_OPS_H_
#define PROMPTEM_TENSOR_OPS_H_

#include <vector>

#include "core/rng.h"
#include "tensor/tensor.h"

namespace promptem::tensor::ops {

/// Differentiable operations. Every function returns a fresh tensor; when
/// grad mode is on (see NoGradGuard) and any input requires grad, the result
/// carries a backward closure that accumulates into the inputs' grads.
///
/// Shapes are 1-D or 2-D; "rows x cols" below. Shape mismatches are
/// programmer errors and abort via PROMPTEM_CHECK.

/// Elementwise a + b (same shape).
Tensor Add(const Tensor& a, const Tensor& b);

/// Elementwise a - b (same shape).
Tensor Sub(const Tensor& a, const Tensor& b);

/// Elementwise a * b (same shape).
Tensor Mul(const Tensor& a, const Tensor& b);

/// x[m,n] + bias[n] broadcast over rows.
Tensor AddBias(const Tensor& x, const Tensor& bias);

/// s * a.
Tensor Scale(const Tensor& a, float s);

/// a + s.
Tensor AddScalar(const Tensor& a, float s);

/// op(a) @ op(b) with optional transposes. op(a) is [m,k], op(b) is [k,n].
Tensor MatMul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);

/// Row-wise softmax of a 2-D tensor.
Tensor Softmax(const Tensor& x);

/// Row-wise log-softmax of a 2-D tensor.
Tensor LogSoftmax(const Tensor& x);

/// Layer normalization over the last dim; gamma/beta are [cols].
Tensor LayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 float eps = 1e-5f);

/// Activations (elementwise).
Tensor Gelu(const Tensor& x);
Tensor Tanh(const Tensor& x);
Tensor Sigmoid(const Tensor& x);
Tensor Relu(const Tensor& x);
Tensor Abs(const Tensor& x);
Tensor Log(const Tensor& x);

/// Inverted dropout with keep-scale 1/(1-p). Draws the mask from `rng`.
/// With p == 0 returns the input unchanged.
Tensor Dropout(const Tensor& x, float p, core::Rng* rng);

/// Gathers rows of `table` [V,D] at token ids -> [ids.size(), D].
/// Backward scatter-adds into the table rows.
Tensor EmbeddingLookup(const Tensor& table, const std::vector<int>& ids);

/// Gathers rows of x at `rows` -> [rows.size(), cols].
Tensor SelectRows(const Tensor& x, const std::vector<int>& rows);

/// Gathers columns of x at `cols` -> [rows, cols.size()].
Tensor SelectCols(const Tensor& x, const std::vector<int>& cols);

/// Vertically stacks tensors with equal column counts.
Tensor ConcatRows(const std::vector<Tensor>& parts);

/// Horizontally concatenates tensors with equal row counts.
Tensor ConcatCols(const std::vector<Tensor>& parts);

/// Mean over rows -> [1, cols] (sequence pooling).
Tensor MeanRows(const Tensor& x);

/// Sum of all elements -> scalar [1].
Tensor Sum(const Tensor& x);

/// Mean of all elements -> scalar [1].
Tensor Mean(const Tensor& x);

/// Mean cross-entropy of row-wise logits [m, C] against integer targets.
/// Returns scalar [1]. Rows with target < 0 are ignored (masked).
Tensor CrossEntropyLogits(const Tensor& logits,
                          const std::vector<int>& targets);

}  // namespace promptem::tensor::ops

#endif  // PROMPTEM_TENSOR_OPS_H_
