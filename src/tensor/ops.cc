#include "tensor/ops.h"

#include <cmath>
#include <cstring>
#include <algorithm>

#include "tensor/autograd.h"
#include "tensor/kernels.h"

namespace promptem::tensor::ops {

namespace {

using kernels::Gemm;

bool Track(const Tensor& a) { return GradEnabled() && a.requires_grad(); }
bool Track(const Tensor& a, const Tensor& b) {
  return GradEnabled() && (a.requires_grad() || b.requires_grad());
}

/// Attaches parents and a backward closure to `out`.
void Attach(Tensor* out, std::vector<Tensor> parents,
            std::function<void()> backward) {
  TensorImpl* impl = out->impl().get();
  impl->requires_grad = true;
  impl->parents.reserve(parents.size());
  for (const Tensor& p : parents) impl->parents.push_back(p.impl());
  impl->backward_fn = std::move(backward);
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  PROMPTEM_CHECK(SameShape(a.shape(), b.shape()));
  Tensor out = Tensor::Zeros(a.shape());
  const int64_t n = a.numel();
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) po[i] = pa[i] + pb[i];
  if (Track(a, b)) {
    auto ai = a.impl();
    auto bi = b.impl();
    TensorImpl* oi = out.impl().get();
    Attach(&out, {a, b}, [ai, bi, oi, n]() {
      const float* g = oi->grad_data();
      if (ai->requires_grad) {
        ai->EnsureGrad();
        kernels::AxpyOne(g, ai->grad_data(), n);
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        kernels::AxpyOne(g, bi->grad_data(), n);
      }
    });
  }
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  PROMPTEM_CHECK(SameShape(a.shape(), b.shape()));
  Tensor out = Tensor::Zeros(a.shape());
  const int64_t n = a.numel();
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) po[i] = pa[i] - pb[i];
  if (Track(a, b)) {
    auto ai = a.impl();
    auto bi = b.impl();
    TensorImpl* oi = out.impl().get();
    Attach(&out, {a, b}, [ai, bi, oi, n]() {
      const float* g = oi->grad_data();
      if (ai->requires_grad) {
        ai->EnsureGrad();
        kernels::AxpyOne(g, ai->grad_data(), n);
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        float* gb = bi->grad_data();
        for (int64_t i = 0; i < n; ++i) gb[i] -= g[i];
      }
    });
  }
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  PROMPTEM_CHECK(SameShape(a.shape(), b.shape()));
  Tensor out = Tensor::Zeros(a.shape());
  const int64_t n = a.numel();
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) po[i] = pa[i] * pb[i];
  if (Track(a, b)) {
    auto ai = a.impl();
    auto bi = b.impl();
    TensorImpl* oi = out.impl().get();
    Attach(&out, {a, b}, [ai, bi, oi, n]() {
      const float* g = oi->grad_data();
      const float* pa2 = ai->storage->data();
      const float* pb2 = bi->storage->data();
      if (ai->requires_grad) {
        ai->EnsureGrad();
        float* ga = ai->grad_data();
        for (int64_t i = 0; i < n; ++i) ga[i] += g[i] * pb2[i];
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        float* gb = bi->grad_data();
        for (int64_t i = 0; i < n; ++i) gb[i] += g[i] * pa2[i];
      }
    });
  }
  return out;
}

Tensor AddBias(const Tensor& x, const Tensor& bias) {
  PROMPTEM_CHECK(x.ndim() == 2 && bias.ndim() == 1);
  PROMPTEM_CHECK(x.dim(1) == bias.dim(0));
  const int rows = x.dim(0);
  const int cols = x.dim(1);
  Tensor out = Tensor::Zeros(x.shape());
  const float* px = x.data();
  const float* pb = bias.data();
  float* po = out.data();
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      po[static_cast<int64_t>(i) * cols + j] =
          px[static_cast<int64_t>(i) * cols + j] + pb[j];
    }
  }
  if (Track(x, bias)) {
    auto xi = x.impl();
    auto bi = bias.impl();
    TensorImpl* oi = out.impl().get();
    Attach(&out, {x, bias}, [xi, bi, oi, rows, cols]() {
      const float* g = oi->grad_data();
      if (xi->requires_grad) {
        xi->EnsureGrad();
        kernels::AxpyOne(g, xi->grad_data(),
                         static_cast<int64_t>(rows) * cols);
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        float* gb = bi->grad_data();
        for (int i = 0; i < rows; ++i) {
          for (int j = 0; j < cols; ++j) {
            gb[j] += g[static_cast<int64_t>(i) * cols + j];
          }
        }
      }
    });
  }
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out = Tensor::Zeros(a.shape());
  const int64_t n = a.numel();
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) po[i] = pa[i] * s;
  if (Track(a)) {
    auto ai = a.impl();
    TensorImpl* oi = out.impl().get();
    Attach(&out, {a}, [ai, oi, n, s]() {
      ai->EnsureGrad();
      const float* g = oi->grad_data();
      float* ga = ai->grad_data();
      for (int64_t i = 0; i < n; ++i) ga[i] += g[i] * s;
    });
  }
  return out;
}

Tensor AddScalar(const Tensor& a, float s) {
  Tensor out = Tensor::Zeros(a.shape());
  const int64_t n = a.numel();
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) po[i] = pa[i] + s;
  if (Track(a)) {
    auto ai = a.impl();
    TensorImpl* oi = out.impl().get();
    Attach(&out, {a}, [ai, oi, n]() {
      ai->EnsureGrad();
      kernels::AxpyOne(oi->grad_data(), ai->grad_data(), n);
    });
  }
  return out;
}

Tensor MatMul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  PROMPTEM_CHECK(a.ndim() == 2 && b.ndim() == 2);
  const int m = trans_a ? a.dim(1) : a.dim(0);
  const int k = trans_a ? a.dim(0) : a.dim(1);
  const int kb = trans_b ? b.dim(1) : b.dim(0);
  const int n = trans_b ? b.dim(0) : b.dim(1);
  PROMPTEM_CHECK_MSG(k == kb, "matmul inner dimensions differ");
  Tensor out = Tensor::Zeros({m, n});
  Gemm(trans_a, trans_b, m, n, k, 1.0f, a.data(), b.data(), 0.0f, out.data());
  if (Track(a, b)) {
    auto ai = a.impl();
    auto bi = b.impl();
    TensorImpl* oi = out.impl().get();
    Attach(&out, {a, b}, [ai, bi, oi, m, n, k, trans_a, trans_b]() {
      const float* g = oi->grad_data();
      const float* pa = ai->storage->data();
      const float* pb = bi->storage->data();
      if (ai->requires_grad) {
        ai->EnsureGrad();
        float* ga = ai->grad_data();
        if (!trans_a) {
          // dA[m,k] = dC @ op(B)^T
          Gemm(false, !trans_b, m, k, n, 1.0f, g, pb, 1.0f, ga);
        } else {
          // A stored [k,m]; dA_stored = op(B) @ dC^T
          Gemm(trans_b, true, k, m, n, 1.0f, pb, g, 1.0f, ga);
        }
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        float* gb = bi->grad_data();
        if (!trans_b) {
          // dB[k,n] = op(A)^T @ dC
          Gemm(!trans_a, false, k, n, m, 1.0f, pa, g, 1.0f, gb);
        } else {
          // B stored [n,k]; dB_stored = dC^T @ op(A)
          Gemm(true, trans_a, n, k, m, 1.0f, g, pa, 1.0f, gb);
        }
      }
    });
  }
  return out;
}

Tensor Softmax(const Tensor& x) {
  PROMPTEM_CHECK(x.ndim() == 2);
  const int rows = x.dim(0);
  const int cols = x.dim(1);
  Tensor out = Tensor::Zeros(x.shape());
  kernels::SoftmaxRows(x.data(), rows, cols, out.data());
  if (Track(x)) {
    auto xi = x.impl();
    TensorImpl* oi = out.impl().get();
    Attach(&out, {x}, [xi, oi, rows, cols]() {
      xi->EnsureGrad();
      const float* g = oi->grad_data();
      const float* y = oi->storage->data();
      float* gx = xi->grad_data();
      for (int i = 0; i < rows; ++i) {
        const float* yi = y + static_cast<int64_t>(i) * cols;
        const float* gi = g + static_cast<int64_t>(i) * cols;
        float dot = 0.0f;
        for (int j = 0; j < cols; ++j) dot += gi[j] * yi[j];
        float* gxi = gx + static_cast<int64_t>(i) * cols;
        for (int j = 0; j < cols; ++j) gxi[j] += yi[j] * (gi[j] - dot);
      }
    });
  }
  return out;
}

Tensor LogSoftmax(const Tensor& x) {
  PROMPTEM_CHECK(x.ndim() == 2);
  const int rows = x.dim(0);
  const int cols = x.dim(1);
  Tensor out = Tensor::Zeros(x.shape());
  kernels::LogSoftmaxRows(x.data(), rows, cols, out.data());
  if (Track(x)) {
    auto xi = x.impl();
    TensorImpl* oi = out.impl().get();
    Attach(&out, {x}, [xi, oi, rows, cols]() {
      xi->EnsureGrad();
      const float* g = oi->grad_data();
      const float* logy = oi->storage->data();
      float* gx = xi->grad_data();
      for (int i = 0; i < rows; ++i) {
        const float* gi = g + static_cast<int64_t>(i) * cols;
        const float* lyi = logy + static_cast<int64_t>(i) * cols;
        float sum = 0.0f;
        for (int j = 0; j < cols; ++j) sum += gi[j];
        float* gxi = gx + static_cast<int64_t>(i) * cols;
        for (int j = 0; j < cols; ++j) {
          gxi[j] += gi[j] - std::exp(lyi[j]) * sum;
        }
      }
    });
  }
  return out;
}

Tensor LayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 float eps) {
  PROMPTEM_CHECK(x.ndim() == 2 && gamma.ndim() == 1 && beta.ndim() == 1);
  PROMPTEM_CHECK(x.dim(1) == gamma.dim(0) && x.dim(1) == beta.dim(0));
  const int rows = x.dim(0);
  const int cols = x.dim(1);
  Tensor out = Tensor::Zeros(x.shape());
  const bool track =
      GradEnabled() && (x.requires_grad() || gamma.requires_grad() ||
                        beta.requires_grad());
  if (!track) {
    // Graph-free path: the saved statistics exist only for the backward
    // closure, so stack-local scratch suffices.
    std::vector<float> mean(static_cast<size_t>(rows));
    std::vector<float> rstd(static_cast<size_t>(rows));
    kernels::LayerNormForward(x.data(), rows, cols, gamma.data(),
                              beta.data(), eps, out.data(), mean.data(),
                              rstd.data());
    return out;
  }
  auto mean = std::make_shared<std::vector<float>>(rows);
  auto rstd = std::make_shared<std::vector<float>>(rows);
  kernels::LayerNormForward(x.data(), rows, cols, gamma.data(), beta.data(),
                            eps, out.data(), mean->data(), rstd->data());
  {
    auto xi = x.impl();
    auto gi = gamma.impl();
    auto bi = beta.impl();
    TensorImpl* oi = out.impl().get();
    Attach(&out, {x, gamma, beta}, [xi, gi, bi, oi, rows, cols, mean,
                                    rstd]() {
      xi->EnsureGrad();
      gi->EnsureGrad();
      bi->EnsureGrad();
      kernels::LayerNormBackward(xi->storage->data(), gi->storage->data(),
                                 mean->data(), rstd->data(),
                                 oi->grad_data(), rows, cols,
                                 xi->grad_data(), gi->grad_data(),
                                 bi->grad_data());
    });
  }
  return out;
}

namespace {

template <typename Fwd, typename Bwd>
Tensor UnaryOp(const Tensor& x, Fwd fwd, Bwd bwd_from_input_and_output) {
  Tensor out = Tensor::Zeros(x.shape());
  const int64_t n = x.numel();
  const float* px = x.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) po[i] = fwd(px[i]);
  if (Track(x)) {
    auto xi = x.impl();
    TensorImpl* oi = out.impl().get();
    Attach(&out, {x}, [xi, oi, n, bwd_from_input_and_output]() {
      xi->EnsureGrad();
      const float* g = oi->grad_data();
      const float* in = xi->storage->data();
      const float* outv = oi->storage->data();
      float* gx = xi->grad_data();
      for (int64_t i = 0; i < n; ++i) {
        gx[i] += g[i] * bwd_from_input_and_output(in[i], outv[i]);
      }
    });
  }
  return out;
}

}  // namespace

Tensor Gelu(const Tensor& x) {
  return UnaryOp(
      x, [](float v) { return kernels::Gelu(v); },
      [](float in, float) { return kernels::GeluGrad(in); });
}

Tensor Tanh(const Tensor& x) {
  return UnaryOp(
      x, [](float v) { return std::tanh(v); },
      [](float, float out) { return 1.0f - out * out; });
}

Tensor Sigmoid(const Tensor& x) {
  return UnaryOp(
      x, [](float v) { return 1.0f / (1.0f + std::exp(-v)); },
      [](float, float out) { return out * (1.0f - out); });
}

Tensor Relu(const Tensor& x) {
  return UnaryOp(
      x, [](float v) { return v > 0.0f ? v : 0.0f; },
      [](float in, float) { return in > 0.0f ? 1.0f : 0.0f; });
}

Tensor Abs(const Tensor& x) {
  return UnaryOp(
      x, [](float v) { return std::fabs(v); },
      [](float in, float) { return in >= 0.0f ? 1.0f : -1.0f; });
}

Tensor Log(const Tensor& x) {
  return UnaryOp(
      x,
      [](float v) { return std::log(std::max(v, 1e-12f)); },
      [](float in, float) { return 1.0f / std::max(in, 1e-12f); });
}

Tensor Dropout(const Tensor& x, float p, core::Rng* rng) {
  PROMPTEM_CHECK(p >= 0.0f && p < 1.0f);
  if (p == 0.0f) return x;
  PROMPTEM_CHECK(rng != nullptr);
  const int64_t n = x.numel();
  const float keep_scale = 1.0f / (1.0f - p);
  Tensor out = Tensor::Zeros(x.shape());
  const float* px = x.data();
  float* po = out.data();
  if (!Track(x)) {
    // Graph-free path (MC-Dropout scoring): apply the mask on the fly
    // without materializing it. The Bernoulli draw order matches the
    // tracked path exactly, so a pass's dropout pattern depends only on
    // its rng stream, never on grad mode.
    for (int64_t i = 0; i < n; ++i) {
      po[i] = rng->Bernoulli(p) ? 0.0f : px[i] * keep_scale;
    }
    return out;
  }
  auto mask = std::make_shared<std::vector<float>>(n);
  for (int64_t i = 0; i < n; ++i) {
    (*mask)[i] = rng->Bernoulli(p) ? 0.0f : keep_scale;
  }
  for (int64_t i = 0; i < n; ++i) po[i] = px[i] * (*mask)[i];
  {
    auto xi = x.impl();
    TensorImpl* oi = out.impl().get();
    Attach(&out, {x}, [xi, oi, n, mask]() {
      xi->EnsureGrad();
      const float* g = oi->grad_data();
      float* gx = xi->grad_data();
      for (int64_t i = 0; i < n; ++i) gx[i] += g[i] * (*mask)[i];
    });
  }
  return out;
}

Tensor EmbeddingLookup(const Tensor& table, const std::vector<int>& ids) {
  PROMPTEM_CHECK(table.ndim() == 2);
  const int vocab = table.dim(0);
  const int dim = table.dim(1);
  const int t = static_cast<int>(ids.size());
  Tensor out = Tensor::Zeros({t, dim});
  const float* pt = table.data();
  float* po = out.data();
  for (int i = 0; i < t; ++i) {
    PROMPTEM_CHECK(ids[i] >= 0 && ids[i] < vocab);
    std::memcpy(po + static_cast<int64_t>(i) * dim,
                pt + static_cast<int64_t>(ids[i]) * dim,
                sizeof(float) * dim);
  }
  if (Track(table)) {
    auto ti = table.impl();
    TensorImpl* oi = out.impl().get();
    auto ids_copy = std::make_shared<std::vector<int>>(ids);
    Attach(&out, {table}, [ti, oi, dim, ids_copy]() {
      ti->EnsureGrad();
      const float* g = oi->grad_data();
      float* gt = ti->grad_data();
      for (size_t i = 0; i < ids_copy->size(); ++i) {
        kernels::AxpyOne(g + static_cast<int64_t>(i) * dim,
                         gt + static_cast<int64_t>((*ids_copy)[i]) * dim,
                         dim);
      }
    });
  }
  return out;
}

Tensor SelectRows(const Tensor& x, const std::vector<int>& rows) {
  PROMPTEM_CHECK(x.ndim() == 2);
  const int cols = x.dim(1);
  const int k = static_cast<int>(rows.size());
  Tensor out = Tensor::Zeros({k, cols});
  const float* px = x.data();
  float* po = out.data();
  for (int i = 0; i < k; ++i) {
    PROMPTEM_CHECK(rows[i] >= 0 && rows[i] < x.dim(0));
    std::memcpy(po + static_cast<int64_t>(i) * cols,
                px + static_cast<int64_t>(rows[i]) * cols,
                sizeof(float) * cols);
  }
  if (Track(x)) {
    auto xi = x.impl();
    TensorImpl* oi = out.impl().get();
    auto rows_copy = std::make_shared<std::vector<int>>(rows);
    Attach(&out, {x}, [xi, oi, cols, rows_copy]() {
      xi->EnsureGrad();
      const float* g = oi->grad_data();
      float* gx = xi->grad_data();
      for (size_t i = 0; i < rows_copy->size(); ++i) {
        kernels::AxpyOne(g + static_cast<int64_t>(i) * cols,
                         gx + static_cast<int64_t>((*rows_copy)[i]) * cols,
                         cols);
      }
    });
  }
  return out;
}

Tensor SelectCols(const Tensor& x, const std::vector<int>& cols) {
  PROMPTEM_CHECK(x.ndim() == 2);
  const int rows = x.dim(0);
  const int in_cols = x.dim(1);
  const int k = static_cast<int>(cols.size());
  Tensor out = Tensor::Zeros({rows, k});
  const float* px = x.data();
  float* po = out.data();
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < k; ++j) {
      PROMPTEM_CHECK(cols[j] >= 0 && cols[j] < in_cols);
      po[static_cast<int64_t>(i) * k + j] =
          px[static_cast<int64_t>(i) * in_cols + cols[j]];
    }
  }
  if (Track(x)) {
    auto xi = x.impl();
    TensorImpl* oi = out.impl().get();
    auto cols_copy = std::make_shared<std::vector<int>>(cols);
    Attach(&out, {x}, [xi, oi, rows, in_cols, k, cols_copy]() {
      xi->EnsureGrad();
      const float* g = oi->grad_data();
      float* gx = xi->grad_data();
      for (int i = 0; i < rows; ++i) {
        for (int j = 0; j < k; ++j) {
          gx[static_cast<int64_t>(i) * in_cols + (*cols_copy)[j]] +=
              g[static_cast<int64_t>(i) * k + j];
        }
      }
    });
  }
  return out;
}

Tensor SliceCols(const Tensor& x, int col_begin, int count) {
  PROMPTEM_CHECK(x.ndim() == 2);
  const int rows = x.dim(0);
  const int in_cols = x.dim(1);
  PROMPTEM_CHECK(count > 0 && col_begin >= 0 &&
                 col_begin + count <= in_cols);
  Tensor out = Tensor::Zeros({rows, count});
  kernels::CopyBlock(x.data() + col_begin, in_cols, out.data(), count, rows,
                     count);
  if (Track(x)) {
    auto xi = x.impl();
    TensorImpl* oi = out.impl().get();
    Attach(&out, {x}, [xi, oi, rows, in_cols, count, col_begin]() {
      xi->EnsureGrad();
      kernels::AddBlock(oi->grad_data(), count,
                        xi->grad_data() + col_begin, in_cols, rows, count);
    });
  }
  return out;
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  PROMPTEM_CHECK(!parts.empty());
  const int cols = parts[0].dim(1);
  int rows = 0;
  bool any_grad = false;
  for (const Tensor& p : parts) {
    PROMPTEM_CHECK(p.ndim() == 2 && p.dim(1) == cols);
    rows += p.dim(0);
    any_grad = any_grad || p.requires_grad();
  }
  Tensor out = Tensor::Zeros({rows, cols});
  float* po = out.data();
  int offset = 0;
  for (const Tensor& p : parts) {
    std::memcpy(po + static_cast<int64_t>(offset) * cols, p.data(),
                sizeof(float) * p.numel());
    offset += p.dim(0);
  }
  if (GradEnabled() && any_grad) {
    TensorImpl* oi = out.impl().get();
    std::vector<std::shared_ptr<TensorImpl>> impls;
    for (const Tensor& p : parts) impls.push_back(p.impl());
    Attach(&out, parts, [impls, oi, cols]() {
      const float* g = oi->grad_data();
      int off = 0;
      for (const auto& pi : impls) {
        const int pr = pi->shape[0];
        if (pi->requires_grad) {
          pi->EnsureGrad();
          kernels::AxpyOne(g + static_cast<int64_t>(off) * cols,
                           pi->grad_data(),
                           static_cast<int64_t>(pr) * cols);
        }
        off += pr;
      }
    });
  }
  return out;
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  PROMPTEM_CHECK(!parts.empty());
  const int rows = parts[0].dim(0);
  int cols = 0;
  bool any_grad = false;
  for (const Tensor& p : parts) {
    PROMPTEM_CHECK(p.ndim() == 2 && p.dim(0) == rows);
    cols += p.dim(1);
    any_grad = any_grad || p.requires_grad();
  }
  Tensor out = Tensor::Zeros({rows, cols});
  float* po = out.data();
  int offset = 0;
  for (const Tensor& p : parts) {
    const int pc = p.dim(1);
    const float* pp = p.data();
    for (int i = 0; i < rows; ++i) {
      std::memcpy(po + static_cast<int64_t>(i) * cols + offset,
                  pp + static_cast<int64_t>(i) * pc, sizeof(float) * pc);
    }
    offset += pc;
  }
  if (GradEnabled() && any_grad) {
    TensorImpl* oi = out.impl().get();
    std::vector<std::shared_ptr<TensorImpl>> impls;
    for (const Tensor& p : parts) impls.push_back(p.impl());
    Attach(&out, parts, [impls, oi, rows, cols]() {
      const float* g = oi->grad_data();
      int off = 0;
      for (const auto& pi : impls) {
        const int pc = pi->shape[1];
        if (pi->requires_grad) {
          pi->EnsureGrad();
          float* gp = pi->grad_data();
          for (int i = 0; i < rows; ++i) {
            kernels::AxpyOne(g + static_cast<int64_t>(i) * cols + off,
                             gp + static_cast<int64_t>(i) * pc, pc);
          }
        }
        off += pc;
      }
    });
  }
  return out;
}

Tensor MeanRows(const Tensor& x) {
  PROMPTEM_CHECK(x.ndim() == 2);
  const int rows = x.dim(0);
  const int cols = x.dim(1);
  PROMPTEM_CHECK(rows > 0);
  Tensor out = Tensor::Zeros({1, cols});
  const float* px = x.data();
  float* po = out.data();
  for (int i = 0; i < rows; ++i) {
    kernels::AxpyOne(px + static_cast<int64_t>(i) * cols, po, cols);
  }
  const float inv = 1.0f / static_cast<float>(rows);
  for (int j = 0; j < cols; ++j) po[j] *= inv;
  if (Track(x)) {
    auto xi = x.impl();
    TensorImpl* oi = out.impl().get();
    Attach(&out, {x}, [xi, oi, rows, cols]() {
      xi->EnsureGrad();
      const float* g = oi->grad_data();
      float* gx = xi->grad_data();
      const float inv2 = 1.0f / static_cast<float>(rows);
      for (int i = 0; i < rows; ++i) {
        for (int j = 0; j < cols; ++j) {
          gx[static_cast<int64_t>(i) * cols + j] += g[j] * inv2;
        }
      }
    });
  }
  return out;
}

Tensor Sum(const Tensor& x) {
  const int64_t n = x.numel();
  const float* px = x.data();
  float acc = 0.0f;
  for (int64_t i = 0; i < n; ++i) acc += px[i];
  Tensor out = Tensor::Scalar(acc);
  if (Track(x)) {
    auto xi = x.impl();
    TensorImpl* oi = out.impl().get();
    Attach(&out, {x}, [xi, oi, n]() {
      xi->EnsureGrad();
      const float g = oi->grad_data()[0];
      float* gx = xi->grad_data();
      for (int64_t i = 0; i < n; ++i) gx[i] += g;
    });
  }
  return out;
}

Tensor Mean(const Tensor& x) {
  const int64_t n = x.numel();
  PROMPTEM_CHECK(n > 0);
  Tensor s = Sum(x);
  return Scale(s, 1.0f / static_cast<float>(n));
}

Tensor CrossEntropyLogits(const Tensor& logits,
                          const std::vector<int>& targets) {
  PROMPTEM_CHECK(logits.ndim() == 2);
  const int rows = logits.dim(0);
  const int cols = logits.dim(1);
  PROMPTEM_CHECK(static_cast<int>(targets.size()) == rows);
  auto probs = std::make_shared<std::vector<float>>(
      static_cast<size_t>(rows) * cols);
  kernels::SoftmaxRows(logits.data(), rows, cols, probs->data());
  int valid = 0;
  double loss = 0.0;
  for (int i = 0; i < rows; ++i) {
    const int t = targets[i];
    if (t < 0) continue;
    PROMPTEM_CHECK(t < cols);
    ++valid;
    loss -= std::log(
        std::max((*probs)[static_cast<size_t>(i) * cols + t], 1e-12f));
  }
  PROMPTEM_CHECK_MSG(valid > 0, "all targets masked in cross entropy");
  Tensor out = Tensor::Scalar(static_cast<float>(loss / valid));
  if (Track(logits)) {
    auto li = logits.impl();
    TensorImpl* oi = out.impl().get();
    auto targets_copy = std::make_shared<std::vector<int>>(targets);
    Attach(&out, {logits}, [li, oi, rows, cols, probs, targets_copy,
                            valid]() {
      li->EnsureGrad();
      const float g = oi->grad_data()[0];
      float* gl = li->grad_data();
      const float scale = g / static_cast<float>(valid);
      for (int i = 0; i < rows; ++i) {
        const int t = (*targets_copy)[i];
        if (t < 0) continue;
        const float* pi = probs->data() + static_cast<size_t>(i) * cols;
        float* gi = gl + static_cast<int64_t>(i) * cols;
        for (int j = 0; j < cols; ++j) gi[j] += scale * pi[j];
        gi[t] -= scale;
      }
    });
  }
  return out;
}

// NOTE(execution-modes): every op above follows the same discipline — the
// forward value is computed unconditionally, and graph state (parents,
// backward closure, saved activations) is attached only under Track(). A
// batched eval pass therefore builds zero graph nodes; DESIGN.md
// "Execution modes" documents the contract and tests/execution_test.cc
// asserts it over a full transformer forward.

}  // namespace promptem::tensor::ops
