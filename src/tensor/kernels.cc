#include "tensor/kernels.h"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <algorithm>
#include <vector>

#include "core/thread_pool.h"
#include "tensor/kernels_internal.h"

namespace promptem::tensor::kernels {

namespace {

// Blocking constants. kKc is the k-panel depth (A/B panel rows stay in
// cache while a C block accumulates); kMr x kNr is the register microtile.
// The chunk decomposition of every parallel loop below is a pure function
// of the problem shape and these constants — never of the pool size — so
// results are bitwise identical for any PROMPTEM_NUM_THREADS.
constexpr int kKc = 256;
constexpr int kMr = 4;
constexpr int kNr = 16;

/// Row-chunk grain for the parallel outer M loop.
constexpr int64_t kGemmRowGrain = 16;
/// Below this many multiply-adds a GEMM runs single-chunk: dispatch
/// overhead would dominate (typical per-sample transformer GEMMs).
constexpr int64_t kGemmParallelThreshold = 1 << 19;
/// Row grain / minimum element count for the parallel row-wise kernels.
constexpr int64_t kRowGrain = 32;
constexpr int64_t kRowParallelThreshold = 1 << 14;

/// Scales or clears rows [i0, i1) of C by beta.
void ScaleRows(float* c, int i0, int i1, int n, float beta) {
  float* begin = c + static_cast<int64_t>(i0) * n;
  const int64_t count = static_cast<int64_t>(i1 - i0) * n;
  if (beta == 0.0f) {
    std::fill_n(begin, count, 0.0f);
  } else if (beta != 1.0f) {
    for (int64_t i = 0; i < count; ++i) begin[i] *= beta;
  }
}

/// C[i0:i1, :] += alpha * A[i0:i1, :] * B for row-major A (m x k) and
/// B (k x n). Cache-tiled over k (kKc panels) with a kMr x kNr
/// register-blocked microkernel; per (i, j) the k sum is grouped by panel,
/// independent of the row chunking.
void GemmNNChunk(int i0, int i1, int n, int k, float alpha, const float* a,
                 const float* b, float* c) {
  for (int pc = 0; pc < k; pc += kKc) {
    const int pe = std::min(k, pc + kKc);
    int i = i0;
    for (; i + kMr <= i1; i += kMr) {
      const float* a0 = a + static_cast<int64_t>(i) * k;
      const float* a1 = a0 + k;
      const float* a2 = a1 + k;
      const float* a3 = a2 + k;
      int j = 0;
      for (; j + kNr <= n; j += kNr) {
        float acc0[kNr] = {0};
        float acc1[kNr] = {0};
        float acc2[kNr] = {0};
        float acc3[kNr] = {0};
        for (int p = pc; p < pe; ++p) {
          const float* bp = b + static_cast<int64_t>(p) * n + j;
          const float v0 = a0[p];
          const float v1 = a1[p];
          const float v2 = a2[p];
          const float v3 = a3[p];
          for (int jj = 0; jj < kNr; ++jj) {
            const float bv = bp[jj];
            acc0[jj] += v0 * bv;
            acc1[jj] += v1 * bv;
            acc2[jj] += v2 * bv;
            acc3[jj] += v3 * bv;
          }
        }
        float* c0 = c + static_cast<int64_t>(i) * n + j;
        float* c1 = c0 + n;
        float* c2 = c1 + n;
        float* c3 = c2 + n;
        for (int jj = 0; jj < kNr; ++jj) {
          c0[jj] += alpha * acc0[jj];
          c1[jj] += alpha * acc1[jj];
          c2[jj] += alpha * acc2[jj];
          c3[jj] += alpha * acc3[jj];
        }
      }
      // Ragged j tail.
      for (; j < n; ++j) {
        float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
        for (int p = pc; p < pe; ++p) {
          const float bv = b[static_cast<int64_t>(p) * n + j];
          s0 += a0[p] * bv;
          s1 += a1[p] * bv;
          s2 += a2[p] * bv;
          s3 += a3[p] * bv;
        }
        c[static_cast<int64_t>(i) * n + j] += alpha * s0;
        c[static_cast<int64_t>(i + 1) * n + j] += alpha * s1;
        c[static_cast<int64_t>(i + 2) * n + j] += alpha * s2;
        c[static_cast<int64_t>(i + 3) * n + j] += alpha * s3;
      }
    }
    // Ragged row tail: one row at a time, same panel structure.
    for (; i < i1; ++i) {
      const float* arow = a + static_cast<int64_t>(i) * k;
      float* crow = c + static_cast<int64_t>(i) * n;
      int j = 0;
      for (; j + kNr <= n; j += kNr) {
        float acc[kNr] = {0};
        for (int p = pc; p < pe; ++p) {
          const float* bp = b + static_cast<int64_t>(p) * n + j;
          const float av = arow[p];
          for (int jj = 0; jj < kNr; ++jj) acc[jj] += av * bp[jj];
        }
        for (int jj = 0; jj < kNr; ++jj) crow[j + jj] += alpha * acc[jj];
      }
      for (; j < n; ++j) {
        float s = 0.0f;
        for (int p = pc; p < pe; ++p) {
          s += arow[p] * b[static_cast<int64_t>(p) * n + j];
        }
        crow[j] += alpha * s;
      }
    }
  }
}

/// C[i0:i1, :] += alpha * A[i0:i1, :] * B^T for row-major A (m x k) and
/// B stored (n x k): rows of dot products, 2 x 4 register blocking so the
/// k loop carries eight independent accumulator chains.
void GemmNTChunk(int i0, int i1, int n, int k, float alpha, const float* a,
                 const float* b, float* c) {
  int i = i0;
  for (; i + 2 <= i1; i += 2) {
    const float* a0 = a + static_cast<int64_t>(i) * k;
    const float* a1 = a0 + k;
    float* c0 = c + static_cast<int64_t>(i) * n;
    float* c1 = c0 + n;
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + static_cast<int64_t>(j) * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      float s00 = 0.0f, s01 = 0.0f, s02 = 0.0f, s03 = 0.0f;
      float s10 = 0.0f, s11 = 0.0f, s12 = 0.0f, s13 = 0.0f;
      for (int p = 0; p < k; ++p) {
        const float v0 = a0[p];
        const float v1 = a1[p];
        s00 += v0 * b0[p];
        s01 += v0 * b1[p];
        s02 += v0 * b2[p];
        s03 += v0 * b3[p];
        s10 += v1 * b0[p];
        s11 += v1 * b1[p];
        s12 += v1 * b2[p];
        s13 += v1 * b3[p];
      }
      c0[j] += alpha * s00;
      c0[j + 1] += alpha * s01;
      c0[j + 2] += alpha * s02;
      c0[j + 3] += alpha * s03;
      c1[j] += alpha * s10;
      c1[j + 1] += alpha * s11;
      c1[j + 2] += alpha * s12;
      c1[j + 3] += alpha * s13;
    }
    for (; j < n; ++j) {
      const float* bj = b + static_cast<int64_t>(j) * k;
      float s0 = 0.0f, s1 = 0.0f;
      for (int p = 0; p < k; ++p) {
        s0 += a0[p] * bj[p];
        s1 += a1[p] * bj[p];
      }
      c0[j] += alpha * s0;
      c1[j] += alpha * s1;
    }
  }
  for (; i < i1; ++i) {
    const float* arow = a + static_cast<int64_t>(i) * k;
    float* crow = c + static_cast<int64_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* bj = b + static_cast<int64_t>(j) * k;
      float s = 0.0f;
      for (int p = 0; p < k; ++p) s += arow[p] * bj[p];
      crow[j] += alpha * s;
    }
  }
}

/// C[i0:i1, :] += alpha * A^T[i0:i1, :] * B for A stored (k x m) and
/// B (k x n). p-outer form: for each p, A's row p is unit-stride over i
/// and B's row p is broadcast across the chunk's C rows.
void GemmTNChunk(int i0, int i1, int n, int k, int m, float alpha,
                 const float* a, const float* b, float* c) {
  for (int p = 0; p < k; ++p) {
    const float* ap = a + static_cast<int64_t>(p) * m;
    const float* bp = b + static_cast<int64_t>(p) * n;
    for (int i = i0; i < i1; ++i) {
      const float av = alpha * ap[i];
      float* crow = c + static_cast<int64_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * bp[j];
    }
  }
}

/// C[i0:i1, :] += alpha * A^T * B^T: generic indexed loop (backward-only
/// combination on small matrices).
void GemmTTChunk(int i0, int i1, int n, int k, int m, float alpha,
                 const float* a, const float* b, float* c) {
  for (int i = i0; i < i1; ++i) {
    float* crow = c + static_cast<int64_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      const float av = alpha * a[static_cast<int64_t>(p) * m + i];
      for (int j = 0; j < n; ++j) {
        crow[j] += av * b[static_cast<int64_t>(j) * k + p];
      }
    }
  }
}

/// Strided single-thread GEMM, all four transpose cases (beta already
/// applied by the dispatching wrapper).
void GemmStridedImpl(bool trans_a, bool trans_b, int m, int n, int k,
                     float alpha, const float* a, int lda, const float* b,
                     int ldb, float* c, int ldc) {
  if (!trans_a && !trans_b) {
    // C[i,:] += alpha * A[i,p] * B[p,:] — unit-stride inner axpy,
    // 4-way unrolled over p so each pass over C[i,:] folds four B rows
    // (short-n callers like attention's P.V with n = head_dim would
    // otherwise spend most of their time re-reading C).
    for (int i = 0; i < m; ++i) {
      const float* arow = a + static_cast<int64_t>(i) * lda;
      float* crow = c + static_cast<int64_t>(i) * ldc;
      int p = 0;
      for (; p + 4 <= k; p += 4) {
        const float a0 = alpha * arow[p];
        const float a1 = alpha * arow[p + 1];
        const float a2 = alpha * arow[p + 2];
        const float a3 = alpha * arow[p + 3];
        const float* b0 = b + static_cast<int64_t>(p) * ldb;
        const float* b1 = b0 + ldb;
        const float* b2 = b1 + ldb;
        const float* b3 = b2 + ldb;
        for (int j = 0; j < n; ++j) {
          crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
        }
      }
      for (; p < k; ++p) {
        const float av = alpha * arow[p];
        const float* brow = b + static_cast<int64_t>(p) * ldb;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (!trans_a && trans_b) {
    // C[i,j] += alpha * dot(A[i,:], B[j,:]) — unit-stride dots.
    for (int i = 0; i < m; ++i) {
      const float* arow = a + static_cast<int64_t>(i) * lda;
      float* crow = c + static_cast<int64_t>(i) * ldc;
      for (int j = 0; j < n; ++j) {
        const float* brow = b + static_cast<int64_t>(j) * ldb;
        float s = 0.0f;
        for (int p = 0; p < k; ++p) s += arow[p] * brow[p];
        crow[j] += alpha * s;
      }
    }
  } else if (trans_a && !trans_b) {
    // A stored (k x m): p-outer so A's row p is unit stride over i and
    // B's row p broadcasts across C rows.
    for (int p = 0; p < k; ++p) {
      const float* ap = a + static_cast<int64_t>(p) * lda;
      const float* bp = b + static_cast<int64_t>(p) * ldb;
      for (int i = 0; i < m; ++i) {
        const float av = alpha * ap[i];
        float* crow = c + static_cast<int64_t>(i) * ldc;
        for (int j = 0; j < n; ++j) crow[j] += av * bp[j];
      }
    }
  } else {
    for (int i = 0; i < m; ++i) {
      float* crow = c + static_cast<int64_t>(i) * ldc;
      for (int p = 0; p < k; ++p) {
        const float av = alpha * a[static_cast<int64_t>(p) * lda + i];
        for (int j = 0; j < n; ++j) {
          crow[j] += av * b[static_cast<int64_t>(j) * ldb + p];
        }
      }
    }
  }
}

/// Scalar ExpRowSum: clamp pass, polynomial pass (both auto-vectorize —
/// the structure the fused-attention kernel always used), then a fixed
/// four-lane sum so the (deterministic) reduction is not one serial
/// dependency chain.
float ExpRowSumScalar(const float* x, float* out, int n, float m) {
  for (int j = 0; j < n; ++j) {
    const float v = x[j] - m;
    out[j] = v < -80.0f ? -80.0f : v;
  }
  for (int j = 0; j < n; ++j) {
    const float v = out[j];
    // e = round(v * log2 e). The +127.5 bias makes the truncating
    // float->int convert (one SSE2 lane op, unlike std::floor) a correct
    // floor(y + 0.5) for any in-range argument.
    const int e = static_cast<int>(v * 1.44269504089f + 127.5f) - 127;
    const float z = static_cast<float>(e);
    // Two-step Cody-Waite reduction keeps the remainder exact in float.
    float r = v - z * 0.693359375f;
    r -= z * -2.12194440e-4f;
    float p = 1.9875691500e-4f;
    p = p * r + 1.3981999507e-3f;
    p = p * r + 8.3334519073e-3f;
    p = p * r + 4.1665795894e-2f;
    p = p * r + 1.6666665459e-1f;
    p = p * r + 5.0000001201e-1f;
    p = p * r * r + r + 1.0f;
    out[j] = p * std::bit_cast<float>(static_cast<uint32_t>(e + 127) << 23);
  }
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    s0 += out[j];
    s1 += out[j + 1];
    s2 += out[j + 2];
    s3 += out[j + 3];
  }
  for (; j < n; ++j) s0 += out[j];
  return (s0 + s1) + (s2 + s3);
}

/// Scalar SumExpRow: same polynomial, no store (x stays intact, which is
/// what lets LogSoftmaxRows run with out aliasing x).
float SumExpRowScalar(const float* x, int n, float m) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    s0 += FastExpf(x[j] - m);
    s1 += FastExpf(x[j + 1] - m);
    s2 += FastExpf(x[j + 2] - m);
    s3 += FastExpf(x[j + 3] - m);
  }
  for (; j < n; ++j) s0 += FastExpf(x[j] - m);
  return (s0 + s1) + (s2 + s3);
}

float RowMaxScalar(const float* x, int n) {
  float mx = x[0];
  for (int j = 1; j < n; ++j) mx = std::max(mx, x[j]);
  return mx;
}

void LayerNormRowScalar(const float* x, int n, const float* gamma,
                        const float* beta, float eps, float* out, float* mean,
                        float* rstd) {
  float mu = 0.0f;
  for (int j = 0; j < n; ++j) mu += x[j];
  mu /= static_cast<float>(n);
  float var = 0.0f;
  for (int j = 0; j < n; ++j) {
    const float d = x[j] - mu;
    var += d * d;
  }
  var /= static_cast<float>(n);
  const float rs = 1.0f / std::sqrt(var + eps);
  *mean = mu;
  *rstd = rs;
  for (int j = 0; j < n; ++j) {
    out[j] = gamma[j] * (x[j] - mu) * rs + beta[j];
  }
}

/// Exact integer u8 x s8 dots; bit-identical to the AVX2 maddubs kernel
/// as long as A stays in [0, 127] (no saturation on either path).
void GemmInt8NTScalar(int m, int n, int k, const uint8_t* a, int lda,
                      const int8_t* b, int ldb, int32_t* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    const uint8_t* arow = a + static_cast<int64_t>(i) * lda;
    int32_t* crow = c + static_cast<int64_t>(i) * ldc;
    for (int j = 0; j < n; ++j) {
      const int8_t* brow = b + static_cast<int64_t>(j) * ldb;
      int32_t acc = 0;
      for (int p = 0; p < k; ++p) {
        acc += static_cast<int32_t>(arow[p]) * static_cast<int32_t>(brow[p]);
      }
      crow[j] = acc;
    }
  }
}

/// The table the dispatcher swaps in; initialized lazily so the env check
/// and CPUID run once. Benign init race: every thread resolves the same
/// pointer.
std::atomic<const detail::KernelTable*> g_active_table{nullptr};

const detail::KernelTable* DefaultTable() {
#ifdef PROMPTEM_HAVE_AVX2
  if (!ScalarForced() && CpuSupportsAvx2()) return &detail::Avx2Table();
#endif
  return &detail::ScalarTable();
}

}  // namespace

namespace detail {

const KernelTable& ScalarTable() {
  static const KernelTable table = {
      KernelVariant::kScalar, GemmNNChunk,      GemmNTChunk,
      GemmTNChunk,            GemmTTChunk,      GemmStridedImpl,
      ExpRowSumScalar,        SumExpRowScalar,  RowMaxScalar,
      LayerNormRowScalar,     GemmInt8NTScalar,
  };
  return table;
}

const KernelTable& Active() {
  const KernelTable* t = g_active_table.load(std::memory_order_acquire);
  if (t == nullptr) {
    t = DefaultTable();
    g_active_table.store(t, std::memory_order_release);
  }
  return *t;
}

}  // namespace detail

KernelVariant ActiveKernelVariant() { return detail::Active().variant; }

const char* KernelVariantName(KernelVariant v) {
  return v == KernelVariant::kAvx2 ? "avx2" : "scalar";
}

bool CpuSupportsAvx2() {
#ifdef PROMPTEM_HAVE_AVX2
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool ScalarForced() {
  static const bool forced = [] {
    const char* env = std::getenv("PROMPTEM_FORCE_SCALAR");
    return env != nullptr && env[0] == '1';
  }();
  return forced;
}

ScopedKernelVariant::ScopedKernelVariant(KernelVariant v) {
  prev_ = &detail::Active();
  const detail::KernelTable* next = &detail::ScalarTable();
#ifdef PROMPTEM_HAVE_AVX2
  if (v == KernelVariant::kAvx2 && CpuSupportsAvx2()) {
    next = &detail::Avx2Table();
  }
#else
  (void)v;
#endif
  g_active_table.store(next, std::memory_order_release);
}

ScopedKernelVariant::~ScopedKernelVariant() {
  g_active_table.store(static_cast<const detail::KernelTable*>(prev_),
                       std::memory_order_release);
}

float FastExpf(float x) {
  const float v = x < -80.0f ? -80.0f : x;
  const int e = static_cast<int>(v * 1.44269504089f + 127.5f) - 127;
  const float z = static_cast<float>(e);
  float r = v - z * 0.693359375f;
  r -= z * -2.12194440e-4f;
  float p = 1.9875691500e-4f;
  p = p * r + 1.3981999507e-3f;
  p = p * r + 8.3334519073e-3f;
  p = p * r + 4.1665795894e-2f;
  p = p * r + 1.6666665459e-1f;
  p = p * r + 5.0000001201e-1f;
  p = p * r * r + r + 1.0f;
  return p * std::bit_cast<float>(static_cast<uint32_t>(e + 127) << 23);
}

float ExpRowSum(const float* x, float* out, int n, float m) {
  return detail::Active().exp_row_sum(x, out, n, m);
}

float SumExpRow(const float* x, int n, float m) {
  return detail::Active().sum_exp_row(x, n, m);
}

void Gemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
          const float* a, const float* b, float beta, float* c) {
  const detail::KernelTable& kt = detail::Active();
  const int64_t work = static_cast<int64_t>(m) * n * k;
  const int64_t grain =
      work >= kGemmParallelThreshold ? kGemmRowGrain : static_cast<int64_t>(m);
  core::ParallelFor(0, m, std::max<int64_t>(grain, 1),
                    [&](int64_t begin, int64_t end) {
    const int i0 = static_cast<int>(begin);
    const int i1 = static_cast<int>(end);
    ScaleRows(c, i0, i1, n, beta);
    if (!trans_a && !trans_b) {
      kt.gemm_nn_chunk(i0, i1, n, k, alpha, a, b, c);
    } else if (!trans_a && trans_b) {
      kt.gemm_nt_chunk(i0, i1, n, k, alpha, a, b, c);
    } else if (trans_a && !trans_b) {
      kt.gemm_tn_chunk(i0, i1, n, k, m, alpha, a, b, c);
    } else {
      kt.gemm_tt_chunk(i0, i1, n, k, m, alpha, a, b, c);
    }
  });
}

void GemmStrided(bool trans_a, bool trans_b, int m, int n, int k,
                 float alpha, const float* a, int lda, const float* b,
                 int ldb, float beta, float* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    float* crow = c + static_cast<int64_t>(i) * ldc;
    if (beta == 0.0f) {
      std::fill_n(crow, n, 0.0f);
    } else if (beta != 1.0f) {
      for (int j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
  detail::Active().gemm_strided(trans_a, trans_b, m, n, k, alpha, a, lda, b,
                                ldb, c, ldc);
}

void GemmInt8NT(int m, int n, int k, const uint8_t* a, int lda,
                const int8_t* b, int ldb, int32_t* c, int ldc) {
  detail::Active().gemm_int8_nt(m, n, k, a, lda, b, ldb, c, ldc);
}

void CopyBlock(const float* src, int ld_src, float* dst, int ld_dst,
               int rows, int cols) {
  for (int i = 0; i < rows; ++i) {
    const float* s = src + static_cast<int64_t>(i) * ld_src;
    float* d = dst + static_cast<int64_t>(i) * ld_dst;
    for (int j = 0; j < cols; ++j) d[j] = s[j];
  }
}

void AddBlock(const float* src, int ld_src, float* dst, int ld_dst,
              int rows, int cols) {
  for (int i = 0; i < rows; ++i) {
    const float* s = src + static_cast<int64_t>(i) * ld_src;
    float* d = dst + static_cast<int64_t>(i) * ld_dst;
    for (int j = 0; j < cols; ++j) d[j] += s[j];
  }
}

void SoftmaxRows(const float* x, int rows, int cols, float* out) {
  const detail::KernelTable& kt = detail::Active();
  const int64_t grain =
      static_cast<int64_t>(rows) * cols >= kRowParallelThreshold
          ? kRowGrain
          : static_cast<int64_t>(rows);
  core::ParallelFor(0, rows, std::max<int64_t>(grain, 1),
                    [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const float* xi = x + i * cols;
      float* oi = out + i * cols;
      const float mx = kt.row_max(xi, cols);
      const float sum = kt.exp_row_sum(xi, oi, cols, mx);
      const float inv = 1.0f / sum;
      for (int j = 0; j < cols; ++j) oi[j] *= inv;
    }
  });
}

void LogSoftmaxRows(const float* x, int rows, int cols, float* out) {
  const detail::KernelTable& kt = detail::Active();
  const int64_t grain =
      static_cast<int64_t>(rows) * cols >= kRowParallelThreshold
          ? kRowGrain
          : static_cast<int64_t>(rows);
  core::ParallelFor(0, rows, std::max<int64_t>(grain, 1),
                    [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const float* xi = x + i * cols;
      float* oi = out + i * cols;
      const float mx = kt.row_max(xi, cols);
      const float sum = kt.sum_exp_row(xi, cols, mx);
      const float lse = mx + std::log(sum);
      for (int j = 0; j < cols; ++j) oi[j] = xi[j] - lse;
    }
  });
}

void LayerNormForward(const float* x, int rows, int cols, const float* gamma,
                      const float* beta, float eps, float* out, float* mean,
                      float* rstd) {
  const detail::KernelTable& kt = detail::Active();
  const int64_t grain =
      static_cast<int64_t>(rows) * cols >= kRowParallelThreshold
          ? kRowGrain
          : static_cast<int64_t>(rows);
  core::ParallelFor(0, rows, std::max<int64_t>(grain, 1),
                    [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      kt.layernorm_row(x + i * cols, cols, gamma, beta, eps, out + i * cols,
                       mean + i, rstd + i);
    }
  });
}

void LayerNormBackward(const float* x, const float* gamma, const float* mean,
                       const float* rstd, const float* dout, int rows,
                       int cols, float* dx, float* dgamma, float* dbeta) {
  // dgamma/dbeta reduce across rows: each chunk accumulates into its own
  // slice of `partial`, merged below in chunk order, so the sum grouping
  // depends only on the fixed grain — bitwise identical for any pool size.
  const int64_t grain =
      static_cast<int64_t>(rows) * cols >= kRowParallelThreshold
          ? kRowGrain
          : static_cast<int64_t>(rows);
  const int64_t g = std::max<int64_t>(grain, 1);
  const int64_t chunks = (static_cast<int64_t>(rows) + g - 1) / g;
  std::vector<float> partial(static_cast<size_t>(chunks) * 2 * cols, 0.0f);
  core::ParallelFor(0, rows, g, [&](int64_t begin, int64_t end) {
    const int64_t chunk = begin / g;
    float* dgamma_c = partial.data() + chunk * 2 * cols;
    float* dbeta_c = dgamma_c + cols;
    for (int64_t i = begin; i < end; ++i) {
      const float* xi = x + i * cols;
      const float* doi = dout + i * cols;
      float* dxi = dx + i * cols;
      const float mu = mean[i];
      const float rs = rstd[i];
      // dL/dxhat_j = dout_j * gamma_j; with xhat = (x - mu) * rs:
      // dx = rs * (dxhat - mean(dxhat) - xhat * mean(dxhat * xhat)).
      float sum_dxhat = 0.0f;
      float sum_dxhat_xhat = 0.0f;
      for (int j = 0; j < cols; ++j) {
        const float xhat = (xi[j] - mu) * rs;
        const float dxhat = doi[j] * gamma[j];
        sum_dxhat += dxhat;
        sum_dxhat_xhat += dxhat * xhat;
        dgamma_c[j] += doi[j] * xhat;
        dbeta_c[j] += doi[j];
      }
      const float inv_cols = 1.0f / static_cast<float>(cols);
      for (int j = 0; j < cols; ++j) {
        const float xhat = (xi[j] - mu) * rs;
        const float dxhat = doi[j] * gamma[j];
        dxi[j] += rs * (dxhat - inv_cols * sum_dxhat -
                        xhat * inv_cols * sum_dxhat_xhat);
      }
    }
  });
  for (int64_t chunk = 0; chunk < chunks; ++chunk) {
    const float* dgamma_c = partial.data() + chunk * 2 * cols;
    const float* dbeta_c = dgamma_c + cols;
    for (int j = 0; j < cols; ++j) {
      dgamma[j] += dgamma_c[j];
      dbeta[j] += dbeta_c[j];
    }
  }
}

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
}  // namespace

float Gelu(float x) {
  const float inner = kGeluC * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

float GeluGrad(float x) {
  const float x3 = x * x * x;
  const float inner = kGeluC * (x + 0.044715f * x3);
  const float t = std::tanh(inner);
  const float sech2 = 1.0f - t * t;
  return 0.5f * (1.0f + t) +
         0.5f * x * sech2 * kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
}

void AxpyOne(const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += x[i];
}

float Dot(const float* a, const float* b, int64_t n) {
  float acc = 0.0f;
  for (int64_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

float L2Norm(const float* x, int64_t n) {
  float acc = 0.0f;
  for (int64_t i = 0; i < n; ++i) acc += x[i] * x[i];
  return std::sqrt(acc);
}

}  // namespace promptem::tensor::kernels
