#include "tensor/kernels.h"

#include <cmath>
#include <algorithm>

namespace promptem::tensor::kernels {

void Gemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
          const float* a, const float* b, float beta, float* c) {
  // Scale or clear C first.
  const int64_t total = static_cast<int64_t>(m) * n;
  if (beta == 0.0f) {
    std::fill_n(c, total, 0.0f);
  } else if (beta != 1.0f) {
    for (int64_t i = 0; i < total; ++i) c[i] *= beta;
  }
  // Element accessors respecting storage layout.
  // a_elem(i, p) = op(A)[i, p]; b_elem(p, j) = op(B)[p, j].
  auto a_idx = [&](int i, int p) -> int64_t {
    return trans_a ? static_cast<int64_t>(p) * m + i
                   : static_cast<int64_t>(i) * k + p;
  };
  auto b_idx = [&](int p, int j) -> int64_t {
    return trans_b ? static_cast<int64_t>(j) * k + p
                   : static_cast<int64_t>(p) * n + j;
  };
  if (!trans_a && !trans_b) {
    // i-k-j loop order: unit-stride access of B and C inner loops.
    for (int i = 0; i < m; ++i) {
      const float* arow = a + static_cast<int64_t>(i) * k;
      float* crow = c + static_cast<int64_t>(i) * n;
      for (int p = 0; p < k; ++p) {
        const float av = alpha * arow[p];
        if (av == 0.0f) continue;
        const float* brow = b + static_cast<int64_t>(p) * n;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
    return;
  }
  if (!trans_a && trans_b) {
    // C[i,j] = sum_p A[i,p] * B[j,p]: both unit stride (dot products).
    for (int i = 0; i < m; ++i) {
      const float* arow = a + static_cast<int64_t>(i) * k;
      float* crow = c + static_cast<int64_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        const float* brow = b + static_cast<int64_t>(j) * k;
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] += alpha * acc;
      }
    }
    return;
  }
  // Remaining transpose combinations: generic indexed loop (used on the
  // backward paths; matrices are small).
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const float av = alpha * a[a_idx(i, p)];
      if (av == 0.0f) continue;
      float* crow = c + static_cast<int64_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * b[b_idx(p, j)];
    }
  }
}

void SoftmaxRows(const float* x, int rows, int cols, float* out) {
  for (int i = 0; i < rows; ++i) {
    const float* xi = x + static_cast<int64_t>(i) * cols;
    float* oi = out + static_cast<int64_t>(i) * cols;
    float mx = xi[0];
    for (int j = 1; j < cols; ++j) mx = std::max(mx, xi[j]);
    float sum = 0.0f;
    for (int j = 0; j < cols; ++j) {
      oi[j] = std::exp(xi[j] - mx);
      sum += oi[j];
    }
    const float inv = 1.0f / sum;
    for (int j = 0; j < cols; ++j) oi[j] *= inv;
  }
}

void LogSoftmaxRows(const float* x, int rows, int cols, float* out) {
  for (int i = 0; i < rows; ++i) {
    const float* xi = x + static_cast<int64_t>(i) * cols;
    float* oi = out + static_cast<int64_t>(i) * cols;
    float mx = xi[0];
    for (int j = 1; j < cols; ++j) mx = std::max(mx, xi[j]);
    float sum = 0.0f;
    for (int j = 0; j < cols; ++j) sum += std::exp(xi[j] - mx);
    const float lse = mx + std::log(sum);
    for (int j = 0; j < cols; ++j) oi[j] = xi[j] - lse;
  }
}

void LayerNormForward(const float* x, int rows, int cols, const float* gamma,
                      const float* beta, float eps, float* out, float* mean,
                      float* rstd) {
  for (int i = 0; i < rows; ++i) {
    const float* xi = x + static_cast<int64_t>(i) * cols;
    float* oi = out + static_cast<int64_t>(i) * cols;
    float mu = 0.0f;
    for (int j = 0; j < cols; ++j) mu += xi[j];
    mu /= static_cast<float>(cols);
    float var = 0.0f;
    for (int j = 0; j < cols; ++j) {
      const float d = xi[j] - mu;
      var += d * d;
    }
    var /= static_cast<float>(cols);
    const float rs = 1.0f / std::sqrt(var + eps);
    mean[i] = mu;
    rstd[i] = rs;
    for (int j = 0; j < cols; ++j) {
      oi[j] = gamma[j] * (xi[j] - mu) * rs + beta[j];
    }
  }
}

void LayerNormBackward(const float* x, const float* gamma, const float* mean,
                       const float* rstd, const float* dout, int rows,
                       int cols, float* dx, float* dgamma, float* dbeta) {
  for (int i = 0; i < rows; ++i) {
    const float* xi = x + static_cast<int64_t>(i) * cols;
    const float* doi = dout + static_cast<int64_t>(i) * cols;
    float* dxi = dx + static_cast<int64_t>(i) * cols;
    const float mu = mean[i];
    const float rs = rstd[i];
    // dL/dxhat_j = dout_j * gamma_j; with xhat = (x - mu) * rs:
    // dx = rs * (dxhat - mean(dxhat) - xhat * mean(dxhat * xhat)).
    float sum_dxhat = 0.0f;
    float sum_dxhat_xhat = 0.0f;
    for (int j = 0; j < cols; ++j) {
      const float xhat = (xi[j] - mu) * rs;
      const float dxhat = doi[j] * gamma[j];
      sum_dxhat += dxhat;
      sum_dxhat_xhat += dxhat * xhat;
      dgamma[j] += doi[j] * xhat;
      dbeta[j] += doi[j];
    }
    const float inv_cols = 1.0f / static_cast<float>(cols);
    for (int j = 0; j < cols; ++j) {
      const float xhat = (xi[j] - mu) * rs;
      const float dxhat = doi[j] * gamma[j];
      dxi[j] += rs * (dxhat - inv_cols * sum_dxhat -
                      xhat * inv_cols * sum_dxhat_xhat);
    }
  }
}

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
}  // namespace

float Gelu(float x) {
  const float inner = kGeluC * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

float GeluGrad(float x) {
  const float x3 = x * x * x;
  const float inner = kGeluC * (x + 0.044715f * x3);
  const float t = std::tanh(inner);
  const float sech2 = 1.0f - t * t;
  return 0.5f * (1.0f + t) +
         0.5f * x * sech2 * kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
}

void AxpyOne(const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += x[i];
}

float Dot(const float* a, const float* b, int64_t n) {
  float acc = 0.0f;
  for (int64_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

float L2Norm(const float* x, int64_t n) {
  float acc = 0.0f;
  for (int64_t i = 0; i < n; ++i) acc += x[i] * x[i];
  return std::sqrt(acc);
}

}  // namespace promptem::tensor::kernels
