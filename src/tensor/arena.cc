#include "tensor/arena.h"

#include <algorithm>

#include "tensor/autograd.h"

namespace promptem::tensor {

namespace {

thread_local ScratchArena* t_current_arena = nullptr;

/// Returns the buffer to its arena when that arena is still alive and the
/// release happens on the owning thread; otherwise deletes it. The weak
/// token makes escaped tensors (alive past the arena, or handed to another
/// thread) safe at the cost of not being recycled.
struct ArenaDeleter {
  std::weak_ptr<ScratchArena::Token> token;

  void operator()(Storage* storage) const {
    if (auto live = token.lock();
        live && live->owner == std::this_thread::get_id()) {
      live->arena->Release(storage);
      return;
    }
    delete storage;
  }
};

}  // namespace

ScratchArena::ScratchArena()
    : token_(std::make_shared<Token>(
          Token{this, std::this_thread::get_id()})) {}

ScratchArena::~ScratchArena() = default;

ScratchArena::Scope::Scope(ScratchArena* arena) : previous_(t_current_arena) {
  t_current_arena = arena;
}

ScratchArena::Scope::~Scope() { t_current_arena = previous_; }

ScratchArena* ScratchArena::Current() { return t_current_arena; }

size_t ScratchArena::cached_buffers() const {
  size_t n = 0;
  for (const auto& [size, bucket] : free_) n += bucket.size();
  return n;
}

std::shared_ptr<Storage> ScratchArena::Acquire(size_t size) {
  Storage* raw = nullptr;
  auto& bucket = free_[size];
  if (!bucket.empty()) {
    raw = bucket.back().release();
    bucket.pop_back();
    // Tensor::Zeros is a contract several ops rely on (e.g. MeanRows
    // accumulates into its zero-initialized output), so recycled buffers
    // are re-zeroed.
    std::fill_n(raw->data(), raw->size(), 0.0f);
    ++reuse_count_;
  } else {
    raw = new Storage(size);
    ++fresh_count_;
  }
  return std::shared_ptr<Storage>(raw, ArenaDeleter{token_});
}

void ScratchArena::Release(Storage* storage) {
  free_[storage->size()].emplace_back(storage);
}

std::shared_ptr<Storage> AcquireStorage(size_t size, bool requires_grad) {
  ScratchArena* arena = t_current_arena;
  if (arena == nullptr || requires_grad || GradEnabled()) {
    return std::make_shared<Storage>(size);
  }
  return arena->Acquire(size);
}

}  // namespace promptem::tensor
