#ifndef PROMPTEM_TENSOR_VIEW_H_
#define PROMPTEM_TENSOR_VIEW_H_

#include <cstdint>

#include "core/status.h"
#include "tensor/tensor.h"

namespace promptem::tensor {

/// Lightweight non-owning 2-D windows over packed row-major buffers.
///
/// A view is (data, rows, cols, ld) where `ld` is the row stride of the
/// underlying buffer — `row(i)` starts at `data + i * ld`. Views let the
/// fused attention kernel and the LSTM gate slicing read per-head /
/// per-gate column blocks of a packed [T, H*hd] (or [T, 4H]) buffer in
/// place, instead of gathering them into fresh tensors with SelectCols.
/// Views carry no graph state and never outlive the tensor they window.
struct ConstMatView {
  const float* data = nullptr;
  int rows = 0;
  int cols = 0;
  int ld = 0;

  const float* row(int i) const {
    return data + static_cast<int64_t>(i) * ld;
  }
  float at(int i, int j) const { return row(i)[j]; }
};

/// Mutable variant of ConstMatView.
struct MatView {
  float* data = nullptr;
  int rows = 0;
  int cols = 0;
  int ld = 0;

  float* row(int i) const { return data + static_cast<int64_t>(i) * ld; }

  ConstMatView as_const() const { return {data, rows, cols, ld}; }
};

/// Column block [col_begin, col_begin + cols) of a packed rows x total_cols
/// buffer. The checked factories below are the only way user code should
/// form views over tensor storage.
inline ConstMatView ColBlockView(const float* base, int rows, int total_cols,
                                 int col_begin, int cols) {
  PROMPTEM_CHECK(base != nullptr && rows >= 0 && cols > 0);
  PROMPTEM_CHECK(col_begin >= 0 && col_begin + cols <= total_cols);
  return {base + col_begin, rows, cols, total_cols};
}

inline MatView MutColBlockView(float* base, int rows, int total_cols,
                               int col_begin, int cols) {
  PROMPTEM_CHECK(base != nullptr && rows >= 0 && cols > 0);
  PROMPTEM_CHECK(col_begin >= 0 && col_begin + cols <= total_cols);
  return {base + col_begin, rows, cols, total_cols};
}

/// Column block of a 2-D tensor's values (no graph edge; the caller keeps
/// the tensor alive for the view's lifetime).
inline ConstMatView ColBlockView(const Tensor& t, int col_begin, int cols) {
  PROMPTEM_CHECK(t.ndim() == 2);
  return ColBlockView(t.data(), t.dim(0), t.dim(1), col_begin, cols);
}

}  // namespace promptem::tensor

#endif  // PROMPTEM_TENSOR_VIEW_H_
