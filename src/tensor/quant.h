#ifndef PROMPTEM_TENSOR_QUANT_H_
#define PROMPTEM_TENSOR_QUANT_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace promptem::tensor::quant {

/// Quantization scheme (the "dynamic quantization" trade: weights are
/// quantized once, activations per row at call time, accumulation in
/// int32, dequantization back to f32 before bias/activation):
///
///   Weights  — per-output-channel symmetric s8: for output channel o,
///              so = max_p |W[o, p]| / 127, q[o, p] = round(W[o, p] / so)
///              in [-127, 127]. Symmetric means no weight zero-point.
///   Activations — per-row asymmetric *u7* over the row's range widened
///              to include zero (lo = min(0, min x), hi = max(0, max x) —
///              zero must be representable or the zero-point clamps and
///              skews every code): sx = (hi - lo) / 127,
///              zx = round(-lo / sx) in [0, 127],
///              q = clamp(round(x / sx) + zx, 0, 127).
///              7 bits is deliberate: with u7 activations the AVX2
///              maddubs pair-sums are bounded by 2 * 127 * 127 < 2^15,
///              so the int16 stage never saturates and the int8 GEMM is
///              exact integer arithmetic — scalar and AVX2 agree bitwise.
///   Dequant  — y[m, o] = sx_m * so * (acc[m, o] - zx_m * row_sums[o])
///              + bias[o], where row_sums[o] = sum_p q[o, p] folds the
///              activation zero-point out of the integer product.
///
/// The f32 accuracy loss this trades away is bounded by the quantized
/// ScoreBatch F1-parity test (<= 0.5 F1 points on every benchmark).

/// A weight matrix [rows, cols] (Linear stores W as [out, in]) quantized
/// per output channel.
struct QuantizedWeight {
  int rows = 0;
  int cols = 0;
  std::vector<int8_t> data;     // [rows, cols], row-major
  std::vector<float> scales;    // [rows], so per output channel
  std::vector<int32_t> row_sums;  // [rows], sum_p data[o, p]
};

/// Quantize w ([rows, cols], row-major) per output channel (per row).
/// An all-zero channel gets scale 1 and zero codes (dequantizes to 0).
QuantizedWeight QuantizeWeightPerChannel(const float* w, int rows, int cols);

/// Quantize one activation row to u7: q in [0, 127] with
/// x[j] ~ scale * (q[j] - zero). A constant row (max == min) encodes the
/// value exactly: scale * (q - zero) == v with q, zero in range.
void QuantizeRowU7(const float* x, int n, uint8_t* q, float* scale,
                   int32_t* zero);

/// y = dequant(quant_u7(x) @ qw^T) + bias for x [m, k] row-major,
/// qw [n, k] (n = out features), y [m, n]. bias may be null. Runs on the
/// calling thread (callers parallelize over examples); uses thread-local
/// scratch, so it is safe inside a ParallelFor chunk. Output depends only
/// on the inputs — the int8 GEMM is exact in every kernel variant, so
/// the whole path is bitwise deterministic at any pool size *and* across
/// variants.
void Int8LinearForward(const float* x, int m, int k,
                       const QuantizedWeight& qw, const float* bias,
                       float* y);

/// Process-wide evaluation quantization mode, set from the CLI
/// (--quantize int8) or tests. Training always runs f32; the mode only
/// affects graph-free eval passes (see Int8EvalActive).
enum class EvalQuantMode { kF32 = 0, kInt8 = 1 };

void SetEvalQuantMode(EvalQuantMode mode);
EvalQuantMode GetEvalQuantMode();

/// True when this call site should take the int8 path: int8 mode is on
/// AND autograd is off on this thread (a NoGradGuard is alive — i.e. a
/// graph-free eval pass, not training and not a stochastic MC-dropout
/// pass, which runs with training-mode dropout and grad-tracking
/// semantics).
bool Int8EvalActive();

/// Generation counter for quantized-weight caches. Any code that mutates
/// parameters while int8 mode is enabled (optimizer steps between eval
/// sweeps, checkpoint loads) bumps it; caches rebuild lazily on the next
/// quantized forward that observes a stale generation.
uint64_t QuantGeneration();
void BumpQuantGeneration();

/// Per-layer cache of a quantized weight, rebuilt when the global
/// generation moves. Thread-safe: eval sweeps shard examples across the
/// pool and every worker hits the same layer's cache.
class QuantizedWeightCache {
 public:
  /// Returns the cached quantization of w ([rows, cols]), rebuilding it
  /// if absent or stale. The reference stays valid until the next Get
  /// with a newer generation (callers hold it only for one forward; the
  /// scoring engine bumps the generation between, not during, sweeps).
  const QuantizedWeight& Get(const float* w, int rows, int cols);

 private:
  std::mutex mu_;
  QuantizedWeight cached_;
  uint64_t generation_ = 0;
  bool valid_ = false;
};

}  // namespace promptem::tensor::quant

#endif  // PROMPTEM_TENSOR_QUANT_H_
