#ifndef PROMPTEM_TENSOR_KERNELS_INTERNAL_H_
#define PROMPTEM_TENSOR_KERNELS_INTERNAL_H_

// Variant dispatch table shared by kernels.cc (scalar reference
// implementations + dispatch) and kernels_avx2.cc (the AVX2/FMA
// translation unit, compiled with -mavx2 -mfma when the toolchain
// supports it). Not installed with the public headers: everything here
// is an implementation detail of tensor/kernels.cc.
//
// Each entry is one *chunk* or *row* primitive. The parallel
// decomposition (ParallelFor grains, k-panel grouping) lives in the
// dispatching wrappers and is identical for every variant, so results
// are bitwise deterministic at any pool size *within* a variant; the
// two variants differ from each other only by documented floating-point
// tolerance (FMA contraction and 8-lane reduction trees).

#include <cstdint>

#include "tensor/kernels.h"

namespace promptem::tensor::kernels::detail {

struct KernelTable {
  KernelVariant variant;

  /// C[i0:i1, :] += alpha * A[i0:i1, :] * B, row-major A (m x k), B (k x n).
  void (*gemm_nn_chunk)(int i0, int i1, int n, int k, float alpha,
                        const float* a, const float* b, float* c);
  /// C[i0:i1, :] += alpha * A[i0:i1, :] * B^T, B stored (n x k).
  void (*gemm_nt_chunk)(int i0, int i1, int n, int k, float alpha,
                        const float* a, const float* b, float* c);
  /// C[i0:i1, :] += alpha * A^T[i0:i1, :] * B, A stored (k x m).
  void (*gemm_tn_chunk)(int i0, int i1, int n, int k, int m, float alpha,
                        const float* a, const float* b, float* c);
  /// C[i0:i1, :] += alpha * A^T * B^T, A (k x m), B (n x k).
  void (*gemm_tt_chunk)(int i0, int i1, int n, int k, int m, float alpha,
                        const float* a, const float* b, float* c);

  /// Strided single-thread GEMM over views (all four transpose cases);
  /// beta scaling is applied by the caller.
  void (*gemm_strided)(bool trans_a, bool trans_b, int m, int n, int k,
                       float alpha, const float* a, int lda, const float* b,
                       int ldb, float* c, int ldc);

  /// out[j] = exp(x[j] - m) for j in [0, n); returns sum_j out[j].
  /// x and out may alias elementwise.
  float (*exp_row_sum)(const float* x, float* out, int n, float m);
  /// Returns sum_j exp(x[j] - m) without writing.
  float (*sum_exp_row)(const float* x, int n, float m);
  /// max_j x[j] (n >= 1).
  float (*row_max)(const float* x, int n);
  /// One layer-norm row: out = gamma * (x - mu) * rstd + beta, writing the
  /// row's mean and reciprocal std.
  void (*layernorm_row)(const float* x, int n, const float* gamma,
                        const float* beta, float eps, float* out, float* mean,
                        float* rstd);

  /// C[i, j] (int32) = sum_p A[i, p] * B[j, p] for u8 A (m x k, row stride
  /// lda) and s8 B (n x k, row stride ldb). Exact integer arithmetic:
  /// every variant produces identical bits provided A values stay in
  /// [0, 127] (the u7 activation contract, which keeps the AVX2
  /// maddubs pair-sums inside int16 range).
  void (*gemm_int8_nt)(int m, int n, int k, const uint8_t* a, int lda,
                       const int8_t* b, int ldb, int32_t* c, int ldc);
};

/// The portable reference table (always available).
const KernelTable& ScalarTable();

#ifdef PROMPTEM_HAVE_AVX2
/// The AVX2/FMA table; only safe to call into when CpuSupportsAvx2().
const KernelTable& Avx2Table();
#endif

/// The table every kernel wrapper dispatches through.
const KernelTable& Active();

}  // namespace promptem::tensor::kernels::detail

#endif  // PROMPTEM_TENSOR_KERNELS_INTERNAL_H_
