#ifndef PROMPTEM_TENSOR_TENSOR_H_
#define PROMPTEM_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"

namespace promptem::tensor {

/// Row-major float buffer whose bytes are registered with core::MemTracker,
/// so benchmark memory numbers reflect live tensor storage.
class Storage {
 public:
  explicit Storage(size_t size);
  ~Storage();

  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  size_t size() const { return data_.size(); }

 private:
  std::vector<float> data_;
};

class TensorImpl;

/// A dense row-major float tensor with reverse-mode autodiff.
///
/// Tensor is a cheap value type (shared_ptr to impl). Operations in
/// ops.h build a computation graph when any input has requires_grad;
/// Tensor::Backward() runs reverse topological accumulation into
/// each participating tensor's grad buffer.
///
/// The library trains with per-sample graphs (batch dimension folded into
/// the row dimension or looped outside), so all shapes here are 1-D or 2-D.
class Tensor {
 public:
  /// An empty (null) tensor. Most APIs require a non-null tensor.
  Tensor() = default;

  /// Allocates a zero-initialized tensor of the given shape.
  static Tensor Zeros(std::vector<int> shape, bool requires_grad = false);

  /// Allocates a tensor filled with `value`.
  static Tensor Full(std::vector<int> shape, float value,
                     bool requires_grad = false);

  /// Wraps explicit values; `values.size()` must equal the shape volume.
  static Tensor FromValues(std::vector<int> shape,
                           std::vector<float> values,
                           bool requires_grad = false);

  /// 1-element convenience scalar.
  static Tensor Scalar(float value, bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }

  const std::vector<int>& shape() const;
  int dim(int i) const;
  int ndim() const;
  /// Total element count.
  int64_t numel() const;

  float* data();
  const float* data() const;

  /// Element access for 1-D / 2-D tensors (checked).
  float at(int i) const;
  float at(int i, int j) const;
  void set(int i, float v);
  void set(int i, int j, float v);

  /// Scalar value of a 1-element tensor.
  float item() const;

  bool requires_grad() const;
  void set_requires_grad(bool value);

  /// Gradient buffer (same shape as data). Null until backward touches it.
  float* grad();
  const float* grad() const;
  bool has_grad() const;
  /// Allocates (if needed) and zeroes the gradient buffer.
  void ZeroGrad();

  /// Runs reverse-mode accumulation from this scalar tensor. Seeds with
  /// d(self)/d(self) = 1. Requires numel() == 1.
  void Backward();

  /// Returns a detached copy sharing no graph history (fresh storage).
  Tensor DetachedClone() const;

  /// Copies values from another tensor of identical shape (no graph edge).
  void CopyDataFrom(const Tensor& other);

  /// Human-readable shape like "[3, 4]".
  std::string ShapeString() const;

  /// Internal: graph node access for ops.cc / autograd.cc.
  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

 private:
  std::shared_ptr<TensorImpl> impl_;
};

/// Graph node + storage for one tensor. Exposed so ops.cc can attach
/// backward closures; user code should only touch Tensor.
class TensorImpl {
 public:
  TensorImpl(std::vector<int> shape, bool requires_grad);

  std::vector<int> shape;
  std::shared_ptr<Storage> storage;
  std::shared_ptr<Storage> grad;  // lazily allocated
  bool requires_grad = false;

  /// Parents in the computation graph and the closure that propagates this
  /// node's grad into the parents' grads.
  std::vector<std::shared_ptr<TensorImpl>> parents;
  std::function<void()> backward_fn;

  int64_t numel() const;

  /// Allocates (and zeroes) the shared grad buffer if absent. No-op when a
  /// thread-local GradShard (autograd.h) redirects this impl: the shard
  /// owns the accumulation buffer instead.
  void EnsureGrad();

  /// Gradient accumulation buffer for backward closures: the thread-local
  /// GradShard's buffer when one is installed and covers this impl,
  /// otherwise the shared grad storage (EnsureGrad must have run).
  float* grad_data();
};

/// Volume of a shape.
int64_t ShapeNumel(const std::vector<int>& shape);

/// True when two shapes are identical.
bool SameShape(const std::vector<int>& a, const std::vector<int>& b);

}  // namespace promptem::tensor

#endif  // PROMPTEM_TENSOR_TENSOR_H_
