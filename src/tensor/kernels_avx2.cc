// AVX2/FMA micro-kernels behind tensor/kernels.cc's dispatch table.
//
// This translation unit is the only one compiled with -mavx2 -mfma (see
// src/CMakeLists.txt); it is entered exclusively through function
// pointers resolved after a CPUID check, so the binary still runs on
// pre-AVX2 hardware (and under PROMPTEM_FORCE_SCALAR=1, which pins the
// portable table). When the toolchain cannot target AVX2 the whole file
// compiles to nothing and dispatch never offers the variant.
//
// Determinism: every loop below is a pure function of the problem shape —
// tile walk order, reduction trees, and tails never depend on the pool
// size — so results are bitwise identical for any PROMPTEM_NUM_THREADS.
// Relative to the scalar variant the float kernels differ by FMA
// contraction and 8-lane reduction grouping (documented tolerance, see
// DESIGN.md); the int8 kernel is exact integer arithmetic and matches
// the scalar variant bit for bit.

#ifdef PROMPTEM_HAVE_AVX2

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "tensor/kernels_internal.h"

namespace promptem::tensor::kernels::detail {

namespace {

// Same blocking constants as the scalar tiles (kernels.cc): k panels of
// 256, 4 x 16 register microtile for the NN case.
constexpr int kKc = 256;

/// Horizontal sum of one __m256 (fixed tree: lanes pair up the same way
/// every call, keeping the reduction deterministic).
inline float HSum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

inline int32_t HSumI32(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 1));
  return _mm_cvtsi128_si32(s);
}

/// 8-lane Cephes-style expf on v - m: the same clamp, Cody-Waite
/// reduction, and degree-5 minimax polynomial as kernels::FastExpf, with
/// the truncating convert matching the scalar float->int cast exactly.
inline __m256 ExpPs(__m256 x) {
  const __m256 clamp = _mm256_set1_ps(-80.0f);
  __m256 v = _mm256_max_ps(x, clamp);
  const __m256 log2e = _mm256_set1_ps(1.44269504089f);
  const __m256 bias = _mm256_set1_ps(127.5f);
  const __m256i e =
      _mm256_sub_epi32(_mm256_cvttps_epi32(_mm256_fmadd_ps(v, log2e, bias)),
                       _mm256_set1_epi32(127));
  const __m256 z = _mm256_cvtepi32_ps(e);
  __m256 r = _mm256_fnmadd_ps(z, _mm256_set1_ps(0.693359375f), v);
  r = _mm256_fnmadd_ps(z, _mm256_set1_ps(-2.12194440e-4f), r);
  __m256 p = _mm256_set1_ps(1.9875691500e-4f);
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.3981999507e-3f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(8.3334519073e-3f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(4.1665795894e-2f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.6666665459e-1f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(5.0000001201e-1f));
  p = _mm256_fmadd_ps(_mm256_mul_ps(p, r), r, _mm256_add_ps(r,
                      _mm256_set1_ps(1.0f)));
  const __m256i pow2 = _mm256_slli_epi32(
      _mm256_add_epi32(e, _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(p, _mm256_castsi256_ps(pow2));
}

// ---------------------------------------------------------------------------
// GEMM NN: 4 x 16 microtile (8 FMA accumulators), k-panel outer loop.

void GemmNNChunkAvx2(int i0, int i1, int n, int k, float alpha,
                     const float* a, const float* b, float* c) {
  const __m256 valpha = _mm256_set1_ps(alpha);
  for (int pc = 0; pc < k; pc += kKc) {
    const int pe = std::min(k, pc + kKc);
    int i = i0;
    for (; i + 4 <= i1; i += 4) {
      const float* a0 = a + static_cast<int64_t>(i) * k;
      const float* a1 = a0 + k;
      const float* a2 = a1 + k;
      const float* a3 = a2 + k;
      int j = 0;
      for (; j + 16 <= n; j += 16) {
        __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
        __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
        __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
        __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
        for (int p = pc; p < pe; ++p) {
          const float* bp = b + static_cast<int64_t>(p) * n + j;
          const __m256 b0 = _mm256_loadu_ps(bp);
          const __m256 b1 = _mm256_loadu_ps(bp + 8);
          __m256 v = _mm256_broadcast_ss(a0 + p);
          c00 = _mm256_fmadd_ps(v, b0, c00);
          c01 = _mm256_fmadd_ps(v, b1, c01);
          v = _mm256_broadcast_ss(a1 + p);
          c10 = _mm256_fmadd_ps(v, b0, c10);
          c11 = _mm256_fmadd_ps(v, b1, c11);
          v = _mm256_broadcast_ss(a2 + p);
          c20 = _mm256_fmadd_ps(v, b0, c20);
          c21 = _mm256_fmadd_ps(v, b1, c21);
          v = _mm256_broadcast_ss(a3 + p);
          c30 = _mm256_fmadd_ps(v, b0, c30);
          c31 = _mm256_fmadd_ps(v, b1, c31);
        }
        float* c0 = c + static_cast<int64_t>(i) * n + j;
        float* c1 = c0 + n;
        float* c2 = c1 + n;
        float* c3 = c2 + n;
        _mm256_storeu_ps(c0, _mm256_fmadd_ps(valpha, c00,
                                             _mm256_loadu_ps(c0)));
        _mm256_storeu_ps(c0 + 8, _mm256_fmadd_ps(valpha, c01,
                                                 _mm256_loadu_ps(c0 + 8)));
        _mm256_storeu_ps(c1, _mm256_fmadd_ps(valpha, c10,
                                             _mm256_loadu_ps(c1)));
        _mm256_storeu_ps(c1 + 8, _mm256_fmadd_ps(valpha, c11,
                                                 _mm256_loadu_ps(c1 + 8)));
        _mm256_storeu_ps(c2, _mm256_fmadd_ps(valpha, c20,
                                             _mm256_loadu_ps(c2)));
        _mm256_storeu_ps(c2 + 8, _mm256_fmadd_ps(valpha, c21,
                                                 _mm256_loadu_ps(c2 + 8)));
        _mm256_storeu_ps(c3, _mm256_fmadd_ps(valpha, c30,
                                             _mm256_loadu_ps(c3)));
        _mm256_storeu_ps(c3 + 8, _mm256_fmadd_ps(valpha, c31,
                                                 _mm256_loadu_ps(c3 + 8)));
      }
      // 8-wide j tail.
      for (; j + 8 <= n; j += 8) {
        __m256 c0v = _mm256_setzero_ps(), c1v = _mm256_setzero_ps();
        __m256 c2v = _mm256_setzero_ps(), c3v = _mm256_setzero_ps();
        for (int p = pc; p < pe; ++p) {
          const __m256 bv = _mm256_loadu_ps(b + static_cast<int64_t>(p) * n
                                            + j);
          c0v = _mm256_fmadd_ps(_mm256_broadcast_ss(a0 + p), bv, c0v);
          c1v = _mm256_fmadd_ps(_mm256_broadcast_ss(a1 + p), bv, c1v);
          c2v = _mm256_fmadd_ps(_mm256_broadcast_ss(a2 + p), bv, c2v);
          c3v = _mm256_fmadd_ps(_mm256_broadcast_ss(a3 + p), bv, c3v);
        }
        float* c0 = c + static_cast<int64_t>(i) * n + j;
        float* c1 = c0 + n;
        float* c2 = c1 + n;
        float* c3 = c2 + n;
        _mm256_storeu_ps(c0, _mm256_fmadd_ps(valpha, c0v,
                                             _mm256_loadu_ps(c0)));
        _mm256_storeu_ps(c1, _mm256_fmadd_ps(valpha, c1v,
                                             _mm256_loadu_ps(c1)));
        _mm256_storeu_ps(c2, _mm256_fmadd_ps(valpha, c2v,
                                             _mm256_loadu_ps(c2)));
        _mm256_storeu_ps(c3, _mm256_fmadd_ps(valpha, c3v,
                                             _mm256_loadu_ps(c3)));
      }
      // Scalar j tail.
      for (; j < n; ++j) {
        float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
        for (int p = pc; p < pe; ++p) {
          const float bv = b[static_cast<int64_t>(p) * n + j];
          s0 += a0[p] * bv;
          s1 += a1[p] * bv;
          s2 += a2[p] * bv;
          s3 += a3[p] * bv;
        }
        c[static_cast<int64_t>(i) * n + j] += alpha * s0;
        c[static_cast<int64_t>(i + 1) * n + j] += alpha * s1;
        c[static_cast<int64_t>(i + 2) * n + j] += alpha * s2;
        c[static_cast<int64_t>(i + 3) * n + j] += alpha * s3;
      }
    }
    // Ragged row tail, one row at a time.
    for (; i < i1; ++i) {
      const float* arow = a + static_cast<int64_t>(i) * k;
      float* crow = c + static_cast<int64_t>(i) * n;
      int j = 0;
      for (; j + 8 <= n; j += 8) {
        __m256 acc = _mm256_setzero_ps();
        for (int p = pc; p < pe; ++p) {
          acc = _mm256_fmadd_ps(
              _mm256_broadcast_ss(arow + p),
              _mm256_loadu_ps(b + static_cast<int64_t>(p) * n + j), acc);
        }
        _mm256_storeu_ps(crow + j, _mm256_fmadd_ps(valpha, acc,
                                                   _mm256_loadu_ps(crow + j)));
      }
      for (; j < n; ++j) {
        float s = 0.0f;
        for (int p = pc; p < pe; ++p) {
          s += arow[p] * b[static_cast<int64_t>(p) * n + j];
        }
        crow[j] += alpha * s;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// GEMM NT: 2 x 4 dot-product block, 8-lane accumulators over k.

void GemmNTChunkAvx2(int i0, int i1, int n, int k, float alpha,
                     const float* a, const float* b, float* c) {
  int i = i0;
  for (; i + 2 <= i1; i += 2) {
    const float* a0 = a + static_cast<int64_t>(i) * k;
    const float* a1 = a0 + k;
    float* c0 = c + static_cast<int64_t>(i) * n;
    float* c1 = c0 + n;
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + static_cast<int64_t>(j) * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      __m256 s00 = _mm256_setzero_ps(), s01 = _mm256_setzero_ps();
      __m256 s02 = _mm256_setzero_ps(), s03 = _mm256_setzero_ps();
      __m256 s10 = _mm256_setzero_ps(), s11 = _mm256_setzero_ps();
      __m256 s12 = _mm256_setzero_ps(), s13 = _mm256_setzero_ps();
      int p = 0;
      for (; p + 8 <= k; p += 8) {
        const __m256 v0 = _mm256_loadu_ps(a0 + p);
        const __m256 v1 = _mm256_loadu_ps(a1 + p);
        const __m256 w0 = _mm256_loadu_ps(b0 + p);
        const __m256 w1 = _mm256_loadu_ps(b1 + p);
        const __m256 w2 = _mm256_loadu_ps(b2 + p);
        const __m256 w3 = _mm256_loadu_ps(b3 + p);
        s00 = _mm256_fmadd_ps(v0, w0, s00);
        s01 = _mm256_fmadd_ps(v0, w1, s01);
        s02 = _mm256_fmadd_ps(v0, w2, s02);
        s03 = _mm256_fmadd_ps(v0, w3, s03);
        s10 = _mm256_fmadd_ps(v1, w0, s10);
        s11 = _mm256_fmadd_ps(v1, w1, s11);
        s12 = _mm256_fmadd_ps(v1, w2, s12);
        s13 = _mm256_fmadd_ps(v1, w3, s13);
      }
      float t00 = HSum(s00), t01 = HSum(s01), t02 = HSum(s02),
            t03 = HSum(s03);
      float t10 = HSum(s10), t11 = HSum(s11), t12 = HSum(s12),
            t13 = HSum(s13);
      for (; p < k; ++p) {
        const float v0 = a0[p];
        const float v1 = a1[p];
        t00 += v0 * b0[p];
        t01 += v0 * b1[p];
        t02 += v0 * b2[p];
        t03 += v0 * b3[p];
        t10 += v1 * b0[p];
        t11 += v1 * b1[p];
        t12 += v1 * b2[p];
        t13 += v1 * b3[p];
      }
      c0[j] += alpha * t00;
      c0[j + 1] += alpha * t01;
      c0[j + 2] += alpha * t02;
      c0[j + 3] += alpha * t03;
      c1[j] += alpha * t10;
      c1[j + 1] += alpha * t11;
      c1[j + 2] += alpha * t12;
      c1[j + 3] += alpha * t13;
    }
    for (; j < n; ++j) {
      const float* bj = b + static_cast<int64_t>(j) * k;
      __m256 s0 = _mm256_setzero_ps(), s1 = _mm256_setzero_ps();
      int p = 0;
      for (; p + 8 <= k; p += 8) {
        const __m256 w = _mm256_loadu_ps(bj + p);
        s0 = _mm256_fmadd_ps(_mm256_loadu_ps(a0 + p), w, s0);
        s1 = _mm256_fmadd_ps(_mm256_loadu_ps(a1 + p), w, s1);
      }
      float t0 = HSum(s0), t1 = HSum(s1);
      for (; p < k; ++p) {
        t0 += a0[p] * bj[p];
        t1 += a1[p] * bj[p];
      }
      c0[j] += alpha * t0;
      c1[j] += alpha * t1;
    }
  }
  for (; i < i1; ++i) {
    const float* arow = a + static_cast<int64_t>(i) * k;
    float* crow = c + static_cast<int64_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* bj = b + static_cast<int64_t>(j) * k;
      __m256 s = _mm256_setzero_ps();
      int p = 0;
      for (; p + 8 <= k; p += 8) {
        s = _mm256_fmadd_ps(_mm256_loadu_ps(arow + p),
                            _mm256_loadu_ps(bj + p), s);
      }
      float t = HSum(s);
      for (; p < k; ++p) t += arow[p] * bj[p];
      crow[j] += alpha * t;
    }
  }
}

// ---------------------------------------------------------------------------
// GEMM TN: p-outer axpy — broadcast A^T[i, p], stream B's row p.

void GemmTNChunkAvx2(int i0, int i1, int n, int k, int m, float alpha,
                     const float* a, const float* b, float* c) {
  for (int p = 0; p < k; ++p) {
    const float* ap = a + static_cast<int64_t>(p) * m;
    const float* bp = b + static_cast<int64_t>(p) * n;
    for (int i = i0; i < i1; ++i) {
      const float av = alpha * ap[i];
      const __m256 vav = _mm256_set1_ps(av);
      float* crow = c + static_cast<int64_t>(i) * n;
      int j = 0;
      for (; j + 8 <= n; j += 8) {
        _mm256_storeu_ps(crow + j,
                         _mm256_fmadd_ps(vav, _mm256_loadu_ps(bp + j),
                                         _mm256_loadu_ps(crow + j)));
      }
      for (; j < n; ++j) crow[j] += av * bp[j];
    }
  }
}

// ---------------------------------------------------------------------------
// GEMM TT: 8 x 2 column microtile. A's row p is unit stride over i, so
// eight C rows accumulate in one register; the [8, 2] result scatters
// through a stack spill (C columns are strided).

void GemmTTChunkAvx2(int i0, int i1, int n, int k, int m, float alpha,
                     const float* a, const float* b, float* c) {
  const __m256 valpha = _mm256_set1_ps(alpha);
  int i = i0;
  for (; i + 8 <= i1; i += 8) {
    int j = 0;
    for (; j + 2 <= n; j += 2) {
      const float* b0 = b + static_cast<int64_t>(j) * k;
      const float* b1 = b0 + k;
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      for (int p = 0; p < k; ++p) {
        const __m256 av = _mm256_loadu_ps(a + static_cast<int64_t>(p) * m
                                          + i);
        acc0 = _mm256_fmadd_ps(av, _mm256_broadcast_ss(b0 + p), acc0);
        acc1 = _mm256_fmadd_ps(av, _mm256_broadcast_ss(b1 + p), acc1);
      }
      alignas(32) float t0[8];
      alignas(32) float t1[8];
      _mm256_store_ps(t0, _mm256_mul_ps(valpha, acc0));
      _mm256_store_ps(t1, _mm256_mul_ps(valpha, acc1));
      for (int r = 0; r < 8; ++r) {
        float* crow = c + static_cast<int64_t>(i + r) * n + j;
        crow[0] += t0[r];
        crow[1] += t1[r];
      }
    }
    for (; j < n; ++j) {
      const float* bj = b + static_cast<int64_t>(j) * k;
      __m256 acc = _mm256_setzero_ps();
      for (int p = 0; p < k; ++p) {
        acc = _mm256_fmadd_ps(
            _mm256_loadu_ps(a + static_cast<int64_t>(p) * m + i),
            _mm256_broadcast_ss(bj + p), acc);
      }
      alignas(32) float t[8];
      _mm256_store_ps(t, _mm256_mul_ps(valpha, acc));
      for (int r = 0; r < 8; ++r) {
        c[static_cast<int64_t>(i + r) * n + j] += t[r];
      }
    }
  }
  // Ragged row tail: scalar indexed loop (same shape as the reference).
  for (; i < i1; ++i) {
    float* crow = c + static_cast<int64_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      const float av = alpha * a[static_cast<int64_t>(p) * m + i];
      for (int j = 0; j < n; ++j) {
        crow[j] += av * b[static_cast<int64_t>(j) * k + p];
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Strided GEMM (single thread, per-head attention views).

void GemmStridedAvx2(bool trans_a, bool trans_b, int m, int n, int k,
                     float alpha, const float* a, int lda, const float* b,
                     int ldb, float* c, int ldc) {
  if (!trans_a && !trans_b) {
    // axpy with 4-way p unroll: crow += sum of four broadcast*B-row FMAs.
    for (int i = 0; i < m; ++i) {
      const float* arow = a + static_cast<int64_t>(i) * lda;
      float* crow = c + static_cast<int64_t>(i) * ldc;
      int p = 0;
      for (; p + 4 <= k; p += 4) {
        const __m256 a0 = _mm256_set1_ps(alpha * arow[p]);
        const __m256 a1 = _mm256_set1_ps(alpha * arow[p + 1]);
        const __m256 a2 = _mm256_set1_ps(alpha * arow[p + 2]);
        const __m256 a3 = _mm256_set1_ps(alpha * arow[p + 3]);
        const float* b0 = b + static_cast<int64_t>(p) * ldb;
        const float* b1 = b0 + ldb;
        const float* b2 = b1 + ldb;
        const float* b3 = b2 + ldb;
        int j = 0;
        for (; j + 8 <= n; j += 8) {
          __m256 acc = _mm256_loadu_ps(crow + j);
          acc = _mm256_fmadd_ps(a0, _mm256_loadu_ps(b0 + j), acc);
          acc = _mm256_fmadd_ps(a1, _mm256_loadu_ps(b1 + j), acc);
          acc = _mm256_fmadd_ps(a2, _mm256_loadu_ps(b2 + j), acc);
          acc = _mm256_fmadd_ps(a3, _mm256_loadu_ps(b3 + j), acc);
          _mm256_storeu_ps(crow + j, acc);
        }
        const float f0 = alpha * arow[p];
        const float f1 = alpha * arow[p + 1];
        const float f2 = alpha * arow[p + 2];
        const float f3 = alpha * arow[p + 3];
        for (; j < n; ++j) {
          crow[j] += f0 * b0[j] + f1 * b1[j] + f2 * b2[j] + f3 * b3[j];
        }
      }
      for (; p < k; ++p) {
        const float av = alpha * arow[p];
        const __m256 vav = _mm256_set1_ps(av);
        const float* brow = b + static_cast<int64_t>(p) * ldb;
        int j = 0;
        for (; j + 8 <= n; j += 8) {
          _mm256_storeu_ps(crow + j,
                           _mm256_fmadd_ps(vav, _mm256_loadu_ps(brow + j),
                                           _mm256_loadu_ps(crow + j)));
        }
        for (; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (!trans_a && trans_b) {
    // Unit-stride dots, 1 x 4 j block.
    for (int i = 0; i < m; ++i) {
      const float* arow = a + static_cast<int64_t>(i) * lda;
      float* crow = c + static_cast<int64_t>(i) * ldc;
      int j = 0;
      for (; j + 4 <= n; j += 4) {
        const float* b0 = b + static_cast<int64_t>(j) * ldb;
        const float* b1 = b0 + ldb;
        const float* b2 = b1 + ldb;
        const float* b3 = b2 + ldb;
        __m256 s0 = _mm256_setzero_ps(), s1 = _mm256_setzero_ps();
        __m256 s2 = _mm256_setzero_ps(), s3 = _mm256_setzero_ps();
        int p = 0;
        for (; p + 8 <= k; p += 8) {
          const __m256 av = _mm256_loadu_ps(arow + p);
          s0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b0 + p), s0);
          s1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b1 + p), s1);
          s2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b2 + p), s2);
          s3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b3 + p), s3);
        }
        float t0 = HSum(s0), t1 = HSum(s1), t2 = HSum(s2), t3 = HSum(s3);
        for (; p < k; ++p) {
          const float av = arow[p];
          t0 += av * b0[p];
          t1 += av * b1[p];
          t2 += av * b2[p];
          t3 += av * b3[p];
        }
        crow[j] += alpha * t0;
        crow[j + 1] += alpha * t1;
        crow[j + 2] += alpha * t2;
        crow[j + 3] += alpha * t3;
      }
      for (; j < n; ++j) {
        const float* bj = b + static_cast<int64_t>(j) * ldb;
        __m256 s = _mm256_setzero_ps();
        int p = 0;
        for (; p + 8 <= k; p += 8) {
          s = _mm256_fmadd_ps(_mm256_loadu_ps(arow + p),
                              _mm256_loadu_ps(bj + p), s);
        }
        float t = HSum(s);
        for (; p < k; ++p) t += arow[p] * bj[p];
        crow[j] += alpha * t;
      }
    }
  } else if (trans_a && !trans_b) {
    for (int p = 0; p < k; ++p) {
      const float* ap = a + static_cast<int64_t>(p) * lda;
      const float* bp = b + static_cast<int64_t>(p) * ldb;
      for (int i = 0; i < m; ++i) {
        const float av = alpha * ap[i];
        const __m256 vav = _mm256_set1_ps(av);
        float* crow = c + static_cast<int64_t>(i) * ldc;
        int j = 0;
        for (; j + 8 <= n; j += 8) {
          _mm256_storeu_ps(crow + j,
                           _mm256_fmadd_ps(vav, _mm256_loadu_ps(bp + j),
                                           _mm256_loadu_ps(crow + j)));
        }
        for (; j < n; ++j) crow[j] += av * bp[j];
      }
    }
  } else {
    // TT: 8 x 1 column microtile over the unit-stride i axis of A.
    int i = 0;
    for (; i + 8 <= m; i += 8) {
      for (int j = 0; j < n; ++j) {
        const float* bj = b + static_cast<int64_t>(j) * ldb;
        __m256 acc = _mm256_setzero_ps();
        for (int p = 0; p < k; ++p) {
          acc = _mm256_fmadd_ps(
              _mm256_loadu_ps(a + static_cast<int64_t>(p) * lda + i),
              _mm256_broadcast_ss(bj + p), acc);
        }
        alignas(32) float t[8];
        _mm256_store_ps(t, _mm256_mul_ps(_mm256_set1_ps(alpha), acc));
        for (int r = 0; r < 8; ++r) {
          c[static_cast<int64_t>(i + r) * ldc + j] += t[r];
        }
      }
    }
    for (; i < m; ++i) {
      float* crow = c + static_cast<int64_t>(i) * ldc;
      for (int p = 0; p < k; ++p) {
        const float av = alpha * a[static_cast<int64_t>(p) * lda + i];
        for (int j = 0; j < n; ++j) {
          crow[j] += av * b[static_cast<int64_t>(j) * ldb + p];
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Row primitives.

float ExpRowSumAvx2(const float* x, float* out, int n, float m) {
  const __m256 vm = _mm256_set1_ps(m);
  __m256 vsum = _mm256_setzero_ps();
  int j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 e = ExpPs(_mm256_sub_ps(_mm256_loadu_ps(x + j), vm));
    _mm256_storeu_ps(out + j, e);
    vsum = _mm256_add_ps(vsum, e);
  }
  float sum = HSum(vsum);
  for (; j < n; ++j) {
    const float e = FastExpf(x[j] - m);
    out[j] = e;
    sum += e;
  }
  return sum;
}

float SumExpRowAvx2(const float* x, int n, float m) {
  const __m256 vm = _mm256_set1_ps(m);
  __m256 vsum = _mm256_setzero_ps();
  int j = 0;
  for (; j + 8 <= n; j += 8) {
    vsum = _mm256_add_ps(vsum,
                         ExpPs(_mm256_sub_ps(_mm256_loadu_ps(x + j), vm)));
  }
  float sum = HSum(vsum);
  for (; j < n; ++j) sum += FastExpf(x[j] - m);
  return sum;
}

float RowMaxAvx2(const float* x, int n) {
  int j = 0;
  float mx;
  if (n >= 8) {
    __m256 vmax = _mm256_loadu_ps(x);
    for (j = 8; j + 8 <= n; j += 8) {
      vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(x + j));
    }
    const __m128 lo = _mm256_castps256_ps128(vmax);
    const __m128 hi = _mm256_extractf128_ps(vmax, 1);
    __m128 s = _mm_max_ps(lo, hi);
    s = _mm_max_ps(s, _mm_movehl_ps(s, s));
    s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 1));
    mx = _mm_cvtss_f32(s);
  } else {
    mx = x[0];
    j = 1;
  }
  for (; j < n; ++j) mx = std::max(mx, x[j]);
  return mx;
}

void LayerNormRowAvx2(const float* x, int n, const float* gamma,
                      const float* beta, float eps, float* out, float* mean,
                      float* rstd) {
  __m256 vsum = _mm256_setzero_ps();
  int j = 0;
  for (; j + 8 <= n; j += 8) {
    vsum = _mm256_add_ps(vsum, _mm256_loadu_ps(x + j));
  }
  float mu = HSum(vsum);
  for (; j < n; ++j) mu += x[j];
  mu /= static_cast<float>(n);

  const __m256 vmu = _mm256_set1_ps(mu);
  __m256 vvar = _mm256_setzero_ps();
  j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(x + j), vmu);
    vvar = _mm256_fmadd_ps(d, d, vvar);
  }
  float var = HSum(vvar);
  for (; j < n; ++j) {
    const float d = x[j] - mu;
    var += d * d;
  }
  var /= static_cast<float>(n);

  const float rs = 1.0f / std::sqrt(var + eps);
  *mean = mu;
  *rstd = rs;
  const __m256 vrs = _mm256_set1_ps(rs);
  j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 xhat =
        _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(x + j), vmu), vrs);
    _mm256_storeu_ps(out + j,
                     _mm256_fmadd_ps(_mm256_loadu_ps(gamma + j), xhat,
                                     _mm256_loadu_ps(beta + j)));
  }
  for (; j < n; ++j) {
    out[j] = gamma[j] * (x[j] - mu) * rs + beta[j];
  }
}

// ---------------------------------------------------------------------------
// Int8 GEMM: u8 activations x s8 weights, maddubs pairs -> madd(1) i32
// lanes -> i32 accumulators. Exact (no saturation) because activations
// obey the u7 contract: |pair sum| <= 2 * 127 * 127 < 2^15.

void GemmInt8NTAvx2(int m, int n, int k, const uint8_t* a, int lda,
                    const int8_t* b, int ldb, int32_t* c, int ldc) {
  const __m256i ones = _mm256_set1_epi16(1);
  for (int i = 0; i < m; ++i) {
    const uint8_t* arow = a + static_cast<int64_t>(i) * lda;
    int32_t* crow = c + static_cast<int64_t>(i) * ldc;
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const int8_t* b0 = b + static_cast<int64_t>(j) * ldb;
      const int8_t* b1 = b0 + ldb;
      const int8_t* b2 = b1 + ldb;
      const int8_t* b3 = b2 + ldb;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      int p = 0;
      for (; p + 32 <= k; p += 32) {
        const __m256i av = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(arow + p));
        acc0 = _mm256_add_epi32(
            acc0, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(
                          av, _mm256_loadu_si256(
                                  reinterpret_cast<const __m256i*>(b0 + p))),
                      ones));
        acc1 = _mm256_add_epi32(
            acc1, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(
                          av, _mm256_loadu_si256(
                                  reinterpret_cast<const __m256i*>(b1 + p))),
                      ones));
        acc2 = _mm256_add_epi32(
            acc2, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(
                          av, _mm256_loadu_si256(
                                  reinterpret_cast<const __m256i*>(b2 + p))),
                      ones));
        acc3 = _mm256_add_epi32(
            acc3, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(
                          av, _mm256_loadu_si256(
                                  reinterpret_cast<const __m256i*>(b3 + p))),
                      ones));
      }
      int32_t t0 = HSumI32(acc0);
      int32_t t1 = HSumI32(acc1);
      int32_t t2 = HSumI32(acc2);
      int32_t t3 = HSumI32(acc3);
      for (; p < k; ++p) {
        const int32_t av = arow[p];
        t0 += av * b0[p];
        t1 += av * b1[p];
        t2 += av * b2[p];
        t3 += av * b3[p];
      }
      crow[j] = t0;
      crow[j + 1] = t1;
      crow[j + 2] = t2;
      crow[j + 3] = t3;
    }
    for (; j < n; ++j) {
      const int8_t* bj = b + static_cast<int64_t>(j) * ldb;
      __m256i acc = _mm256_setzero_si256();
      int p = 0;
      for (; p + 32 <= k; p += 32) {
        acc = _mm256_add_epi32(
            acc, _mm256_madd_epi16(
                     _mm256_maddubs_epi16(
                         _mm256_loadu_si256(
                             reinterpret_cast<const __m256i*>(arow + p)),
                         _mm256_loadu_si256(
                             reinterpret_cast<const __m256i*>(bj + p))),
                     ones));
      }
      int32_t t = HSumI32(acc);
      for (; p < k; ++p) t += static_cast<int32_t>(arow[p]) * bj[p];
      crow[j] = t;
    }
  }
}

}  // namespace

const KernelTable& Avx2Table() {
  static const KernelTable table = {
      KernelVariant::kAvx2, GemmNNChunkAvx2, GemmNTChunkAvx2,
      GemmTNChunkAvx2,      GemmTTChunkAvx2, GemmStridedAvx2,
      ExpRowSumAvx2,        SumExpRowAvx2,   RowMaxAvx2,
      LayerNormRowAvx2,     GemmInt8NTAvx2,
  };
  return table;
}

}  // namespace promptem::tensor::kernels::detail

#endif  // PROMPTEM_HAVE_AVX2
