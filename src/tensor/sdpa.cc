// Fused multi-head scaled-dot-product attention (ops::FusedSdpa).
//
// The unfused composition (SelectCols -> MatMul -> Scale -> Softmax ->
// Dropout -> MatMul per head, then ConcatCols) materializes the [T, T]
// score matrix through four separate graph ops and copies every head
// three times on the way in and once on the way out. This kernel instead:
//
//  * reads per-head Q/K/V slices as strided views over the packed
//    [T, H*hd] buffers (tensor/view.h) and writes head outputs directly
//    into the packed [T, H*hd] context;
//  * runs scale -> softmax -> dropout -> attn·V in one tiled pass per
//    (head, row-tile) with a streaming (online-max) softmax, so score
//    tiles stay cache-resident and are never graph nodes;
//  * registers a single hand-written backward that reuses cached softmax
//    rows and the seeded dropout mask (bit-identical to the unfused
//    path's mask by construction);
//  * with grad mode off builds no graph and draws its workspace and mask
//    from the thread's ScratchArena when one is installed.
//
// Determinism: the (head, row-tile) task decomposition and every
// per-row reduction order are pure functions of (T, H, hd) and the tile
// constants — never of the pool size — and tasks write disjoint output
// regions, so results are bitwise identical for any PROMPTEM_NUM_THREADS.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "core/thread_pool.h"
#include "tensor/autograd.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/view.h"

namespace promptem::tensor::ops {

namespace {

/// Query rows per parallel task and key columns per streaming tile. The
/// live working set per task is one [kSdpaRowTile, kSdpaKeyTile] score
/// tile plus a [kSdpaRowTile, hd] output accumulator and the running
/// max/denominator vectors — small enough to stay in L1/L2 for every
/// configuration the library runs.
constexpr int kSdpaRowTile = 32;
constexpr int kSdpaKeyTile = 64;

/// Mirror of ops.cc's graph-node helper (that one is file-local).
void AttachNode(Tensor* out, std::vector<Tensor> parents,
                std::function<void()> backward) {
  TensorImpl* impl = out->impl().get();
  impl->requires_grad = true;
  impl->parents.reserve(parents.size());
  for (const Tensor& p : parents) impl->parents.push_back(p.impl());
  impl->backward_fn = std::move(backward);
}

/// Streaming-softmax forward for rows [i0, i1) of one head, whole
/// row-tile at a time so both GEMMs run blocked. `qh`/`vh` are strided
/// views of the head's column block; `kt_h` is the head's pre-transposed
/// [hd, t] key panel (row stride t), which turns the score tile into a
/// plain NN GEMM — the unit-stride axpy kernel, ~4x the throughput of
/// the dot-product NT case. `mask` / `p_cache` are this head's [T, T]
/// slices (null when dropout is off / grad is off). Task scratch: `tile`
/// is [kSdpaRowTile, kSdpaKeyTile] (scores, then probabilities, in
/// place), `acc` is [kSdpaRowTile, hd], `mvec`/`lvec` hold each row's
/// running max and denominator. `out_head` is the head's column block of
/// the packed output.
void SdpaForwardTile(const ConstMatView& qh, const float* kt_h,
                     const ConstMatView& vh, MatView out_head, int i0,
                     int i1, float scale, const float* mask, float* p_cache,
                     float* tile, float* acc, float* mvec, float* lvec) {
  const int t = vh.rows;
  const int hd = qh.cols;
  const int rows = i1 - i0;
  for (int r = 0; r < rows; ++r) {
    mvec[r] = -std::numeric_limits<float>::infinity();
    lvec[r] = 0.0f;
  }
  std::fill(acc, acc + static_cast<int64_t>(rows) * hd, 0.0f);
  for (int j0 = 0; j0 < t; j0 += kSdpaKeyTile) {
    const int jn = std::min(t, j0 + kSdpaKeyTile) - j0;
    // S_tile = scale * Q_tile . K_h^T, via the transposed key panel.
    kernels::GemmStrided(false, false, rows, jn, hd, scale, qh.row(i0),
                         qh.ld, kt_h + j0, t, 0.0f, tile, kSdpaKeyTile);
    for (int r = 0; r < rows; ++r) {
      float* srow = tile + static_cast<int64_t>(r) * kSdpaKeyTile;
      float tile_max = srow[0];
      for (int j = 1; j < jn; ++j) tile_max = std::max(tile_max, srow[j]);
      const int i = i0 + r;
      float* crow = p_cache == nullptr
                        ? nullptr
                        : p_cache + static_cast<int64_t>(i) * t;
      if (tile_max > mvec[r]) {
        // Online-max rescale: fold the stale max out of the running
        // accumulator, denominator, and (in train mode) the cached
        // softmax prefix. exp(-inf - tile_max) == 0 handles the first
        // tile for free.
        const float factor = std::exp(mvec[r] - tile_max);
        lvec[r] *= factor;
        float* arow = acc + static_cast<int64_t>(r) * hd;
        for (int c = 0; c < hd; ++c) arow[c] *= factor;
        if (crow != nullptr) {
          for (int j = 0; j < j0; ++j) crow[j] *= factor;
        }
        mvec[r] = tile_max;
      }
      // Exponentiate the tile row in place and fold its mass into the
      // running denominator (the one shared fast-expf; see FastExpf in
      // tensor/kernels.h for the error budget).
      lvec[r] += kernels::ExpRowSum(srow, srow, jn, mvec[r]);
      if (crow != nullptr) {
        for (int j = 0; j < jn; ++j) crow[j0 + j] = srow[j];
      }
      // Dropout applies after normalization, so dropped keys still count
      // toward the denominator; the mask value (0 or keep-scale) weights
      // only the V accumulation. No zero-skip: NaN/Inf in V must
      // propagate exactly as in the unfused matmul.
      if (mask != nullptr) {
        const float* mrow = mask + static_cast<int64_t>(i) * t + j0;
        for (int j = 0; j < jn; ++j) srow[j] *= mrow[j];
      }
    }
    // Acc_tile += P_tile . V_tile.
    kernels::GemmStrided(false, false, rows, hd, jn, 1.0f, tile,
                         kSdpaKeyTile, vh.row(j0), vh.ld, 1.0f, acc, hd);
  }
  for (int r = 0; r < rows; ++r) {
    const float inv = 1.0f / lvec[r];
    const int i = i0 + r;
    const float* arow = acc + static_cast<int64_t>(r) * hd;
    float* orow = out_head.row(i);
    for (int c = 0; c < hd; ++c) orow[c] = arow[c] * inv;
    if (p_cache != nullptr) {
      float* crow = p_cache + static_cast<int64_t>(i) * t;
      for (int j = 0; j < t; ++j) crow[j] *= inv;
    }
  }
}

}  // namespace

Tensor FusedSdpa(const Tensor& q, const Tensor& k, const Tensor& v,
                 int num_heads, float scale, float dropout_p,
                 core::Rng* rng) {
  PROMPTEM_CHECK(q.ndim() == 2 && k.ndim() == 2 && v.ndim() == 2);
  PROMPTEM_CHECK(SameShape(q.shape(), k.shape()) &&
                 SameShape(q.shape(), v.shape()));
  const int t = q.dim(0);
  const int d = q.dim(1);
  PROMPTEM_CHECK(num_heads > 0 && d % num_heads == 0);
  PROMPTEM_CHECK(dropout_p >= 0.0f && dropout_p < 1.0f);
  const int hd = d / num_heads;
  const int row_tiles = (t + kSdpaRowTile - 1) / kSdpaRowTile;
  const int64_t tasks = static_cast<int64_t>(num_heads) * row_tiles;

  const bool track =
      GradEnabled() &&
      (q.requires_grad() || k.requires_grad() || v.requires_grad());

  // Pre-draw the dropout mask sequentially, in the exact order the
  // unfused composition consumes `rng` (head-major, row-major within each
  // head's [T, T] attention matrix): the parallel pass below must not
  // touch the stream. Allocated as a tensor so an installed ScratchArena
  // recycles it on graph-free MC-Dropout passes.
  Tensor mask;
  if (dropout_p > 0.0f) {
    PROMPTEM_CHECK(rng != nullptr);
    const float keep_scale = 1.0f / (1.0f - dropout_p);
    mask = Tensor::Zeros({num_heads * t, t});
    float* mp = mask.data();
    const int64_t n = static_cast<int64_t>(num_heads) * t * t;
    for (int64_t i = 0; i < n; ++i) {
      mp[i] = rng->Bernoulli(dropout_p) ? 0.0f : keep_scale;
    }
  }

  // Softmax rows cached for the hand-written backward (train mode only).
  Tensor p_cache;
  if (track) p_cache = Tensor::Zeros({num_heads * t, t});

  Tensor out = Tensor::Zeros({t, d});
  // Per-task workspace (score/probability tile + output accumulator +
  // running max / denominator vectors), one slab so the graph-free path
  // costs a single arena draw per forward.
  const int per_task =
      kSdpaRowTile * kSdpaKeyTile + kSdpaRowTile * hd + 2 * kSdpaRowTile;
  Tensor workspace = Tensor::Zeros({static_cast<int>(tasks), per_task});
  // Per-head transposed key panels [hd, t]: scores then come from the
  // unit-stride NN GEMM kernel instead of the much slower dot-product NT
  // case, and each panel is transposed once and shared by every row-tile
  // task of that head.
  Tensor k_t = Tensor::Zeros({num_heads, hd * t});

  const float* mask_data = mask.defined() ? mask.data() : nullptr;
  float* cache_data = p_cache.defined() ? p_cache.data() : nullptr;
  float* ws = workspace.data();
  float* kt_data = k_t.data();
  const float* k_data = k.data();
  const int64_t head_elems = static_cast<int64_t>(t) * t;

  core::ParallelFor(0, num_heads, 1, [&](int64_t hb, int64_t he) {
    for (int64_t h = hb; h < he; ++h) {
      float* panel = kt_data + h * static_cast<int64_t>(hd) * t;
      for (int i = 0; i < t; ++i) {
        const float* krow = k_data + static_cast<int64_t>(i) * d + h * hd;
        for (int c = 0; c < hd; ++c) {
          panel[static_cast<int64_t>(c) * t + i] = krow[c];
        }
      }
    }
  });

  core::ParallelFor(0, tasks, 1, [&](int64_t begin, int64_t end) {
    for (int64_t task = begin; task < end; ++task) {
      const int h = static_cast<int>(task / row_tiles);
      const int rt = static_cast<int>(task % row_tiles);
      const int i0 = rt * kSdpaRowTile;
      const int i1 = std::min(t, i0 + kSdpaRowTile);
      float* tile = ws + task * per_task;
      float* acc = tile + kSdpaRowTile * kSdpaKeyTile;
      float* mvec = acc + kSdpaRowTile * hd;
      float* lvec = mvec + kSdpaRowTile;
      SdpaForwardTile(
          ColBlockView(q.data(), t, d, h * hd, hd),
          kt_data + h * static_cast<int64_t>(hd) * t,
          ColBlockView(v.data(), t, d, h * hd, hd),
          MutColBlockView(out.data(), t, d, h * hd, hd), i0, i1, scale,
          mask_data == nullptr ? nullptr : mask_data + h * head_elems,
          cache_data == nullptr ? nullptr : cache_data + h * head_elems,
          tile, acc, mvec, lvec);
    }
  });

  if (!track) return out;

  auto qi = q.impl();
  auto ki = k.impl();
  auto vi = v.impl();
  TensorImpl* oi = out.impl().get();
  AttachNode(&out, {q, k, v}, [qi, ki, vi, oi, p_cache, mask, t, d,
                               num_heads, hd, scale]() {
    const float* dout = oi->grad_data();
    // Resolve grad sinks once on the backward thread: GradShard scopes
    // are thread-local, so pool workers must receive raw pointers.
    float* dq = nullptr;
    float* dk = nullptr;
    float* dv = nullptr;
    if (qi->requires_grad) {
      qi->EnsureGrad();
      dq = qi->grad_data();
    }
    if (ki->requires_grad) {
      ki->EnsureGrad();
      dk = ki->grad_data();
    }
    if (vi->requires_grad) {
      vi->EnsureGrad();
      dv = vi->grad_data();
    }
    const float* qd = qi->storage->data();
    const float* kd = ki->storage->data();
    const float* vd = vi->storage->data();
    const float* mk = mask.defined() ? mask.data() : nullptr;
    const float* cache = p_cache.data();
    const int64_t head_elems = static_cast<int64_t>(t) * t;
    // Per-head scratch: dS (score-shaped) plus, under dropout, the
    // masked probabilities A = mask .* P.
    const int64_t per_head = (mk == nullptr ? 1 : 2) * head_elems;
    std::vector<float> scratch(static_cast<size_t>(num_heads) * per_head);
    // Heads write disjoint column blocks of dq/dk/dv, so the parallel
    // loop is race-free and bitwise deterministic at any pool size.
    core::ParallelFor(0, num_heads, 1, [&](int64_t hb, int64_t he) {
      for (int64_t h = hb; h < he; ++h) {
        const float* P = cache + h * head_elems;
        float* dS = scratch.data() + h * per_head;
        const float* mh = mk == nullptr ? nullptr : mk + h * head_elems;
        const float* doh = dout + h * hd;
        // dV_h += A^T dO_h with A = mask .* P (A = P when dropout off).
        const float* a = P;
        if (mh != nullptr) {
          float* masked = dS + head_elems;
          for (int64_t idx = 0; idx < head_elems; ++idx) {
            masked[idx] = P[idx] * mh[idx];
          }
          a = masked;
        }
        if (dv != nullptr) {
          kernels::GemmStrided(true, false, t, hd, t, 1.0f, a, t, doh, d,
                               1.0f, dv + h * hd, d);
        }
        if (dq == nullptr && dk == nullptr) continue;
        // dA = dO_h V_h^T, then dP = mask .* dA, then the softmax
        // backward dS = P .* (dP - rowsum(dP .* P)), all in one buffer.
        kernels::GemmStrided(false, true, t, t, hd, 1.0f, doh, d,
                             vd + h * hd, d, 0.0f, dS, t);
        for (int i = 0; i < t; ++i) {
          const float* pi = P + static_cast<int64_t>(i) * t;
          float* dsi = dS + static_cast<int64_t>(i) * t;
          if (mh != nullptr) {
            const float* mi = mh + static_cast<int64_t>(i) * t;
            for (int j = 0; j < t; ++j) dsi[j] *= mi[j];
          }
          float dot = 0.0f;
          for (int j = 0; j < t; ++j) dot += dsi[j] * pi[j];
          for (int j = 0; j < t; ++j) dsi[j] = pi[j] * (dsi[j] - dot);
        }
        if (dq != nullptr) {
          kernels::GemmStrided(false, false, t, hd, t, scale, dS, t,
                               kd + h * hd, d, 1.0f, dq + h * hd, d);
        }
        if (dk != nullptr) {
          kernels::GemmStrided(true, false, t, hd, t, scale, dS, t,
                               qd + h * hd, d, 1.0f, dk + h * hd, d);
        }
      }
    });
  });
  return out;
}

}  // namespace promptem::tensor::ops
