#ifndef PROMPTEM_TENSOR_ARENA_H_
#define PROMPTEM_TENSOR_ARENA_H_

#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace promptem::tensor {

/// Size-bucketed scratch allocator for inference-mode intermediates.
///
/// A forward pass with grad mode disabled produces a stream of short-lived
/// tensors whose shapes repeat exactly from sample to sample. While a
/// ScratchArena Scope is installed on a thread, tensor construction with
/// grad mode off draws buffers from the arena's freelist instead of the
/// heap; when the last Tensor referencing a buffer dies, the buffer goes
/// back to the freelist. After the first sample warms the buckets, eval
/// scoring is allocation-free in steady state (see reuse_count /
/// fresh_count).
///
/// An arena is single-threaded: it may only be installed, used, and
/// destroyed on one thread (each pool worker builds its own). Buffers that
/// outlive the arena, or that are released from another thread, fall back
/// to plain deletion — escaping a tensor from an arena scope is safe, just
/// not recycled. Graph-mode tensors (requires_grad, or grad mode enabled)
/// never touch the arena: training allocation behavior is unchanged.
///
/// Cached buffers stay registered with core::MemTracker while they sit in
/// the freelist, so tracked bytes reflect real residency.
class ScratchArena {
 public:
  ScratchArena();
  ~ScratchArena();

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// RAII installer: makes `arena` the current thread's scratch source.
  /// Scopes nest; the innermost arena wins and the previous one is
  /// restored on destruction.
  class Scope {
   public:
    explicit Scope(ScratchArena* arena);
    ~Scope();

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ScratchArena* previous_;
  };

  /// The arena installed on the current thread, or nullptr.
  static ScratchArena* Current();

  /// Buffers created because no cached buffer of the right size existed.
  int64_t fresh_count() const { return fresh_count_; }
  /// Buffers served from the freelist (zero heap traffic).
  int64_t reuse_count() const { return reuse_count_; }
  /// Buffers currently parked in the freelist.
  size_t cached_buffers() const;

  /// Liveness + ownership token shared with buffer deleters; public only
  /// so the deleter (an implementation detail of arena.cc) can name it.
  struct Token {
    ScratchArena* arena;
    std::thread::id owner;
  };

  /// Parks a dying buffer back in the freelist. Called by the buffer
  /// deleter (arena.cc) after it has verified the arena is alive and the
  /// release is on the owning thread; not part of the user-facing API.
  void Release(Storage* storage);

 private:
  friend std::shared_ptr<Storage> AcquireStorage(size_t size,
                                                 bool requires_grad);

  std::shared_ptr<Storage> Acquire(size_t size);

  std::shared_ptr<Token> token_;
  std::unordered_map<size_t, std::vector<std::unique_ptr<Storage>>> free_;
  int64_t fresh_count_ = 0;
  int64_t reuse_count_ = 0;
};

/// Storage factory behind every TensorImpl: an arena-recycled (re-zeroed)
/// buffer when the current thread has an installed ScratchArena, grad mode
/// is off, and the tensor does not require grad; a plain heap Storage
/// otherwise.
std::shared_ptr<Storage> AcquireStorage(size_t size, bool requires_grad);

}  // namespace promptem::tensor

#endif  // PROMPTEM_TENSOR_ARENA_H_
