#ifndef PROMPTEM_TENSOR_KERNELS_H_
#define PROMPTEM_TENSOR_KERNELS_H_

#include <cstdint>

namespace promptem::tensor::kernels {

/// General matrix multiply: C = alpha * op(A) * op(B) + beta * C, where
/// op is optional transposition. op(A) is m x k, op(B) is k x n, C is m x n.
/// A and B are row-major with their *stored* (pre-transpose) layouts:
/// A is (m x k) when !trans_a, else (k x m); likewise for B.
/// Cache-tiled (k panels) with a register-blocked microkernel; the outer
/// M loop is sharded across the core thread pool for large problems. The
/// k-summation grouping is a pure function of the shape, so results are
/// bitwise identical for any PROMPTEM_NUM_THREADS.
/// NaN/Inf propagate from both operands (no data-dependent skipping).
void Gemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
          const float* a, const float* b, float beta, float* c);

/// Row-wise softmax with max subtraction: out[i,:] = softmax(x[i,:]).
/// x and out may alias. Rows are independent and sharded across the pool
/// for large inputs (as are LogSoftmaxRows and LayerNormForward below).
void SoftmaxRows(const float* x, int rows, int cols, float* out);

/// Row-wise log-softmax. x and out may alias.
void LogSoftmaxRows(const float* x, int rows, int cols, float* out);

/// Layer normalization over the last dimension.
/// For each row i: out = gamma * (x - mean_i) / sqrt(var_i + eps) + beta.
/// Saves per-row mean and reciprocal std for the backward pass.
void LayerNormForward(const float* x, int rows, int cols, const float* gamma,
                      const float* beta, float eps, float* out, float* mean,
                      float* rstd);

/// Backward of LayerNormForward. Accumulates (+=) into dx, dgamma, dbeta.
/// The dgamma/dbeta cross-row reductions go through per-chunk buffers
/// merged in fixed chunk order, keeping results bitwise deterministic
/// under parallel execution.
void LayerNormBackward(const float* x, const float* gamma, const float* mean,
                       const float* rstd, const float* dout, int rows,
                       int cols, float* dx, float* dgamma, float* dbeta);

/// Strided general matrix multiply over views into packed buffers:
/// C = alpha * op(A) * op(B) + beta * C with explicit row strides
/// (leading dimensions) lda/ldb/ldc. op(A) is m x k, op(B) is k x n, C is
/// m x n; stored layouts are pre-transpose, as in Gemm. This is the
/// workhorse of the fused-attention backward, where per-head operands are
/// column blocks of packed [T, H*hd] buffers (stride = H*hd) and the
/// score-shaped factors are contiguous [T, T] scratch. Runs on the calling
/// thread (the caller parallelizes across heads), so it is safe inside a
/// ParallelFor chunk.
void GemmStrided(bool trans_a, bool trans_b, int m, int n, int k,
                 float alpha, const float* a, int lda, const float* b,
                 int ldb, float beta, float* c, int ldc);

/// dst[i, 0:cols) = src[i, 0:cols) for rows rows, with row strides
/// ld_src / ld_dst. The view-based column-block copy behind ops::SliceCols.
void CopyBlock(const float* src, int ld_src, float* dst, int ld_dst,
               int rows, int cols);

/// dst[i, 0:cols) += src[i, 0:cols) with row strides (the scatter-add
/// backward of a column-block slice).
void AddBlock(const float* src, int ld_src, float* dst, int ld_dst,
              int rows, int cols);

/// Tanh-approximation GELU and its derivative.
float Gelu(float x);
float GeluGrad(float x);

/// y += x for n elements.
void AxpyOne(const float* x, float* y, int64_t n);

/// Dot product of two length-n vectors.
float Dot(const float* a, const float* b, int64_t n);

/// Euclidean (L2) norm of a length-n vector.
float L2Norm(const float* x, int64_t n);

}  // namespace promptem::tensor::kernels

#endif  // PROMPTEM_TENSOR_KERNELS_H_
