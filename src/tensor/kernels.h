#ifndef PROMPTEM_TENSOR_KERNELS_H_
#define PROMPTEM_TENSOR_KERNELS_H_

#include <cstdint>

namespace promptem::tensor::kernels {

/// Kernel implementation variants. kScalar is the portable reference
/// (auto-vectorized tiled loops); kAvx2 is the hand-written AVX2/FMA
/// micro-kernel set, selected at startup when CPUID reports AVX2+FMA.
/// Results are bitwise deterministic at any pool size *within* one
/// variant; across variants they agree only to floating-point tolerance
/// (FMA contraction, 8-lane reduction trees) — except the int8 GEMM,
/// whose integer arithmetic is exact and bit-identical in both.
enum class KernelVariant { kScalar = 0, kAvx2 = 1 };

/// The variant every dispatched kernel currently runs.
KernelVariant ActiveKernelVariant();

/// "scalar" / "avx2".
const char* KernelVariantName(KernelVariant v);

/// True when this binary carries AVX2 kernels *and* the CPU reports
/// AVX2+FMA at runtime.
bool CpuSupportsAvx2();

/// True when PROMPTEM_FORCE_SCALAR=1 was set in the environment (the
/// supported way to pin the portable fallback for CI and A/B runs).
bool ScalarForced();

/// RAII override of the active variant, for parity tests and the
/// before/after benchmark pairs. Takes effect process-wide; do not
/// construct concurrently with kernel calls on other (non-pool) threads.
/// Requesting kAvx2 without CPU support falls back to kScalar.
class ScopedKernelVariant {
 public:
  explicit ScopedKernelVariant(KernelVariant v);
  ~ScopedKernelVariant();

  ScopedKernelVariant(const ScopedKernelVariant&) = delete;
  ScopedKernelVariant& operator=(const ScopedKernelVariant&) = delete;

 private:
  const void* prev_;
};

/// General matrix multiply: C = alpha * op(A) * op(B) + beta * C, where
/// op is optional transposition. op(A) is m x k, op(B) is k x n, C is m x n.
/// A and B are row-major with their *stored* (pre-transpose) layouts:
/// A is (m x k) when !trans_a, else (k x m); likewise for B.
/// Cache-tiled (k panels) with a register-blocked microkernel; the outer
/// M loop is sharded across the core thread pool for large problems. The
/// k-summation grouping is a pure function of the shape, so results are
/// bitwise identical for any PROMPTEM_NUM_THREADS.
/// NaN/Inf propagate from both operands (no data-dependent skipping).
void Gemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
          const float* a, const float* b, float beta, float* c);

/// Row-wise softmax with max subtraction: out[i,:] = softmax(x[i,:]).
/// x and out may alias. Rows are independent and sharded across the pool
/// for large inputs (as are LogSoftmaxRows and LayerNormForward below).
void SoftmaxRows(const float* x, int rows, int cols, float* out);

/// Row-wise log-softmax. x and out may alias.
void LogSoftmaxRows(const float* x, int rows, int cols, float* out);

/// Layer normalization over the last dimension.
/// For each row i: out = gamma * (x - mean_i) / sqrt(var_i + eps) + beta.
/// Saves per-row mean and reciprocal std for the backward pass.
void LayerNormForward(const float* x, int rows, int cols, const float* gamma,
                      const float* beta, float eps, float* out, float* mean,
                      float* rstd);

/// Backward of LayerNormForward. Accumulates (+=) into dx, dgamma, dbeta.
/// The dgamma/dbeta cross-row reductions go through per-chunk buffers
/// merged in fixed chunk order, keeping results bitwise deterministic
/// under parallel execution.
void LayerNormBackward(const float* x, const float* gamma, const float* mean,
                       const float* rstd, const float* dout, int rows,
                       int cols, float* dx, float* dgamma, float* dbeta);

/// Strided general matrix multiply over views into packed buffers:
/// C = alpha * op(A) * op(B) + beta * C with explicit row strides
/// (leading dimensions) lda/ldb/ldc. op(A) is m x k, op(B) is k x n, C is
/// m x n; stored layouts are pre-transpose, as in Gemm. This is the
/// workhorse of the fused-attention backward, where per-head operands are
/// column blocks of packed [T, H*hd] buffers (stride = H*hd) and the
/// score-shaped factors are contiguous [T, T] scratch. Runs on the calling
/// thread (the caller parallelizes across heads), so it is safe inside a
/// ParallelFor chunk.
void GemmStrided(bool trans_a, bool trans_b, int m, int n, int k,
                 float alpha, const float* a, int lda, const float* b,
                 int ldb, float beta, float* c, int ldc);

/// The repo's one fast expf (Cephes-style: round to a multiple of ln 2,
/// degree-5 minimax polynomial on the remainder, 2^e through the exponent
/// bits). Relative error vs std::expf is ~1.2e-7 on the post-max-
/// subtraction domain every softmax feeds it (x <= 0); inputs below -80
/// clamp (exp(-80) ~ 2e-35) and NaN propagates. Valid up to ~+80 on the
/// positive side, but every in-repo caller subtracts the row max first.
float FastExpf(float x);

/// out[j] = exp(x[j] - m) for j in [0, n); returns sum_j out[j]. x and
/// out may alias elementwise (the streaming-softmax in-place case). The
/// summation grouping is a pure function of n, never of the pool size.
float ExpRowSum(const float* x, float* out, int n, float m);

/// sum_j exp(x[j] - m) without writing the exponentials (log-softmax).
float SumExpRow(const float* x, int n, float m);

/// dst[i, 0:cols) = src[i, 0:cols) for rows rows, with row strides
/// ld_src / ld_dst. The view-based column-block copy behind ops::SliceCols.
void CopyBlock(const float* src, int ld_src, float* dst, int ld_dst,
               int rows, int cols);

/// dst[i, 0:cols) += src[i, 0:cols) with row strides (the scatter-add
/// backward of a column-block slice).
void AddBlock(const float* src, int ld_src, float* dst, int ld_dst,
              int rows, int cols);

/// Integer GEMM for the dynamically quantized inference path:
/// C[i, j] (int32) = sum_p A[i, p] * B[j, p], with A an m x k matrix of
/// u8 activations (row stride lda) and B an n x k matrix of s8 weights
/// (row stride ldb) — the NT shape of Linear's x @ W^T. A's values must
/// stay in [0, 127] (the u7 activation contract from tensor/quant.h);
/// that bound keeps the AVX2 maddubs pair-sums inside int16 range, so
/// the arithmetic is exact and the scalar and AVX2 variants produce
/// identical bits. Runs on the calling thread.
void GemmInt8NT(int m, int n, int k, const uint8_t* a, int lda,
                const int8_t* b, int ldb, int32_t* c, int ldc);

/// Tanh-approximation GELU and its derivative.
float Gelu(float x);
float GeluGrad(float x);

/// y += x for n elements.
void AxpyOne(const float* x, float* y, int64_t n);

/// Dot product of two length-n vectors.
float Dot(const float* a, const float* b, int64_t n);

/// Euclidean (L2) norm of a length-n vector.
float L2Norm(const float* x, int64_t n);

}  // namespace promptem::tensor::kernels

#endif  // PROMPTEM_TENSOR_KERNELS_H_
