#include "tensor/autograd.h"

#include <unordered_set>
#include <vector>

#include "core/mem_tracker.h"

namespace promptem::tensor {

namespace {
thread_local bool t_grad_enabled = true;
thread_local GradShard* t_grad_shard = nullptr;
}  // namespace

bool GradEnabled() { return t_grad_enabled; }

NoGradGuard::NoGradGuard() : previous_(t_grad_enabled) {
  t_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { t_grad_enabled = previous_; }

namespace internal {
float* ShardGradLookup(TensorImpl* impl) {
  return t_grad_shard == nullptr ? nullptr : t_grad_shard->Lookup(impl);
}
}  // namespace internal

GradShard::GradShard(const std::vector<Tensor>& targets)
    : targets_(targets) {
  buffers_.reserve(targets_.size());
  by_impl_.reserve(targets_.size());
  for (const Tensor& t : targets_) {
    PROMPTEM_CHECK(t.defined());
    buffers_.emplace_back(static_cast<size_t>(t.numel()), 0.0f);
    by_impl_[t.impl().get()] = buffers_.back().data();
    tracked_bytes_ += static_cast<size_t>(t.numel()) * sizeof(float);
  }
  core::MemTracker::Add(tracked_bytes_);
}

GradShard::~GradShard() { core::MemTracker::Sub(tracked_bytes_); }

void GradShard::MergeAndReset() {
  PROMPTEM_CHECK_MSG(t_grad_shard != this,
                     "MergeAndReset under this shard's own Scope");
  for (size_t i = 0; i < targets_.size(); ++i) {
    std::vector<float>& local = buffers_[i];
    targets_[i].impl()->EnsureGrad();
    float* shared = targets_[i].impl()->grad_data();
    for (size_t j = 0; j < local.size(); ++j) {
      shared[j] += local[j];
      local[j] = 0.0f;
    }
  }
}

void GradShard::Reset() {
  for (auto& buf : buffers_) std::fill(buf.begin(), buf.end(), 0.0f);
}

GradShard::Scope::Scope(GradShard* shard) : previous_(t_grad_shard) {
  t_grad_shard = shard;
}

GradShard::Scope::~Scope() { t_grad_shard = previous_; }

void RunBackward(const Tensor& root) {
  PROMPTEM_CHECK(root.defined());
  PROMPTEM_CHECK(root.numel() == 1);

  // Iterative post-order topological sort (graphs from long LSTM unrolls
  // can be deep enough to overflow the stack with recursion). The order
  // holds shared_ptrs: releasing a visited node's parent links must not
  // free impls that still await their own backward step.
  std::vector<std::shared_ptr<TensorImpl>> topo;
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    std::shared_ptr<TensorImpl> node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  TensorImpl* root_impl = root.impl().get();
  if (visited.insert(root_impl).second) {
    stack.push_back({root.impl(), 0});
  }
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      const std::shared_ptr<TensorImpl>& parent =
          f.node->parents[f.next_parent++];
      if (visited.insert(parent.get()).second) {
        stack.push_back({parent, 0});
      }
    } else {
      topo.push_back(f.node);
      stack.pop_back();
    }
  }

  // Seed d(root)/d(root) = 1.
  root_impl->EnsureGrad();
  root_impl->grad_data()[0] += 1.0f;

  // topo is post-order: parents before children; walk children-first.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    TensorImpl* node = it->get();
    if (node->backward_fn) {
      node->backward_fn();
      // Release the closure (and the intermediate buffers it captured) as
      // soon as it has run; keeps peak memory at one live graph.
      node->backward_fn = nullptr;
      node->parents.clear();
    }
  }
}

}  // namespace promptem::tensor
