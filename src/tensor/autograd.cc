#include "tensor/autograd.h"

#include <unordered_set>
#include <vector>

namespace promptem::tensor {

namespace {
bool g_grad_enabled = true;
}  // namespace

bool GradEnabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) {
  g_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

void RunBackward(const Tensor& root) {
  PROMPTEM_CHECK(root.defined());
  PROMPTEM_CHECK(root.numel() == 1);

  // Iterative post-order topological sort (graphs from long LSTM unrolls
  // can be deep enough to overflow the stack with recursion). The order
  // holds shared_ptrs: releasing a visited node's parent links must not
  // free impls that still await their own backward step.
  std::vector<std::shared_ptr<TensorImpl>> topo;
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    std::shared_ptr<TensorImpl> node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  TensorImpl* root_impl = root.impl().get();
  if (visited.insert(root_impl).second) {
    stack.push_back({root.impl(), 0});
  }
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      const std::shared_ptr<TensorImpl>& parent =
          f.node->parents[f.next_parent++];
      if (visited.insert(parent.get()).second) {
        stack.push_back({parent, 0});
      }
    } else {
      topo.push_back(f.node);
      stack.pop_back();
    }
  }

  // Seed d(root)/d(root) = 1.
  root_impl->EnsureGrad();
  root_impl->grad->data()[0] += 1.0f;

  // topo is post-order: parents before children; walk children-first.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    TensorImpl* node = it->get();
    if (node->backward_fn) {
      node->backward_fn();
      // Release the closure (and the intermediate buffers it captured) as
      // soon as it has run; keeps peak memory at one live graph.
      node->backward_fn = nullptr;
      node->parents.clear();
    }
  }
}

}  // namespace promptem::tensor
