#ifndef PROMPTEM_TENSOR_AUTOGRAD_H_
#define PROMPTEM_TENSOR_AUTOGRAD_H_

#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace promptem::tensor {

namespace internal {
/// The redirected accumulation buffer for `impl` on this thread, or
/// nullptr when no GradShard scope is installed / the shard does not cover
/// `impl`. Used by TensorImpl::EnsureGrad / grad_data.
float* ShardGradLookup(TensorImpl* impl);
}  // namespace internal

/// Runs reverse-mode differentiation from `root`, which must be a scalar
/// (numel == 1). Seeds root.grad = 1, visits the graph in reverse
/// topological order, and calls each node's backward closure exactly once.
/// Gradients accumulate (+=) into every tensor with requires_grad on the
/// path, so calling Backward for several per-sample losses before an
/// optimizer step sums their gradients — this is how minibatches are formed.
/// Under data-parallel accumulation each sample's Backward runs with a
/// GradShard installed, and the shards are merged in sample order, so the
/// "sum of per-sample losses" contract is preserved deterministically.
void RunBackward(const Tensor& root);

/// True while a NoGradGuard is alive on the *current thread*; ops skip
/// building graph edges. The flag is thread-local so concurrent MC-Dropout
/// scoring passes can disable graph construction independently.
bool GradEnabled();

/// RAII scope that disables graph construction (inference / MC-Dropout
/// scoring passes) on the current thread, cutting memory and time.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();

  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// A private gradient accumulation buffer for a fixed set of tensors
/// (typically a module's parameters). While a shard's Scope is installed
/// on a thread, backward closures on that thread accumulate the covered
/// tensors' gradients into the shard instead of the shared grad storage —
/// uncovered tensors (per-sample intermediates) are unaffected.
///
/// Data-parallel minibatch recipe: one shard per sample slot, each sample's
/// forward+Backward runs under its slot's Scope on some worker, then the
/// main thread merges shard 0..B-1 into the shared parameter grads in slot
/// order. Because the per-slot sums and the merge order are independent of
/// the pool size, the accumulated gradients are bitwise identical for any
/// PROMPTEM_NUM_THREADS.
class GradShard {
 public:
  /// Allocates zeroed buffers covering `targets` (buffer i matches
  /// targets[i].numel()).
  explicit GradShard(const std::vector<Tensor>& targets);
  ~GradShard();

  GradShard(const GradShard&) = delete;
  GradShard& operator=(const GradShard&) = delete;

  /// Adds this shard's buffers into the targets' shared grads (allocating
  /// them if needed) in target order, then zeroes the shard for reuse.
  /// Call on a thread with no Scope installed.
  void MergeAndReset();

  /// Zeroes the shard's buffers without merging.
  void Reset();

  /// Installs the shard as the current thread's gradient sink.
  class Scope {
   public:
    explicit Scope(GradShard* shard);
    ~Scope();

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    GradShard* previous_;
  };

  /// This shard's buffer for `impl`, or nullptr when not covered.
  float* Lookup(TensorImpl* impl) const {
    auto it = by_impl_.find(impl);
    return it == by_impl_.end() ? nullptr : it->second;
  }

 private:
  std::vector<Tensor> targets_;
  std::vector<std::vector<float>> buffers_;
  std::unordered_map<TensorImpl*, float*> by_impl_;
  size_t tracked_bytes_ = 0;
};

}  // namespace promptem::tensor

#endif  // PROMPTEM_TENSOR_AUTOGRAD_H_
