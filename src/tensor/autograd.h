#ifndef PROMPTEM_TENSOR_AUTOGRAD_H_
#define PROMPTEM_TENSOR_AUTOGRAD_H_

#include "tensor/tensor.h"

namespace promptem::tensor {

/// Runs reverse-mode differentiation from `root`, which must be a scalar
/// (numel == 1). Seeds root.grad = 1, visits the graph in reverse
/// topological order, and calls each node's backward closure exactly once.
/// Gradients accumulate (+=) into every tensor with requires_grad on the
/// path, so calling Backward for several per-sample losses before an
/// optimizer step sums their gradients — this is how minibatches are formed.
void RunBackward(const Tensor& root);

/// True while a NoGradGuard is alive; ops skip building graph edges.
bool GradEnabled();

/// RAII scope that disables graph construction (inference / MC-Dropout
/// scoring passes), cutting memory and time.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();

  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

}  // namespace promptem::tensor

#endif  // PROMPTEM_TENSOR_AUTOGRAD_H_
