#include "tensor/tensor.h"

#include <algorithm>
#include <cstring>

#include "core/mem_tracker.h"
#include "core/string_util.h"
#include "tensor/arena.h"
#include "tensor/autograd.h"

namespace promptem::tensor {

Storage::Storage(size_t size) : data_(size, 0.0f) {
  core::MemTracker::Add(size * sizeof(float));
}

Storage::~Storage() { core::MemTracker::Sub(data_.size() * sizeof(float)); }

int64_t ShapeNumel(const std::vector<int>& shape) {
  int64_t n = 1;
  for (int d : shape) {
    PROMPTEM_CHECK(d >= 0);
    n *= d;
  }
  return n;
}

bool SameShape(const std::vector<int>& a, const std::vector<int>& b) {
  return a == b;
}

TensorImpl::TensorImpl(std::vector<int> shape_in, bool requires_grad_in)
    : shape(std::move(shape_in)), requires_grad(requires_grad_in) {
  // Inference-mode intermediates come from the thread's ScratchArena when
  // one is installed; everything else (training, parameters, grads) is a
  // plain heap Storage.
  storage = AcquireStorage(static_cast<size_t>(ShapeNumel(shape)),
                           requires_grad);
}

int64_t TensorImpl::numel() const { return ShapeNumel(shape); }

void TensorImpl::EnsureGrad() {
  if (internal::ShardGradLookup(this) != nullptr) return;
  if (!grad) {
    grad = std::make_shared<Storage>(static_cast<size_t>(numel()));
  }
}

float* TensorImpl::grad_data() {
  if (float* redirected = internal::ShardGradLookup(this)) return redirected;
  return grad->data();
}

Tensor Tensor::Zeros(std::vector<int> shape, bool requires_grad) {
  return Tensor(std::make_shared<TensorImpl>(std::move(shape), requires_grad));
}

Tensor Tensor::Full(std::vector<int> shape, float value, bool requires_grad) {
  Tensor t = Zeros(std::move(shape), requires_grad);
  std::fill_n(t.data(), t.numel(), value);
  return t;
}

Tensor Tensor::FromValues(std::vector<int> shape, std::vector<float> values,
                          bool requires_grad) {
  PROMPTEM_CHECK(ShapeNumel(shape) == static_cast<int64_t>(values.size()));
  Tensor t = Zeros(std::move(shape), requires_grad);
  std::memcpy(t.data(), values.data(), values.size() * sizeof(float));
  return t;
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromValues({1}, {value}, requires_grad);
}

const std::vector<int>& Tensor::shape() const {
  PROMPTEM_CHECK(defined());
  return impl_->shape;
}

int Tensor::dim(int i) const {
  PROMPTEM_CHECK(defined());
  PROMPTEM_CHECK(i >= 0 && i < static_cast<int>(impl_->shape.size()));
  return impl_->shape[i];
}

int Tensor::ndim() const {
  PROMPTEM_CHECK(defined());
  return static_cast<int>(impl_->shape.size());
}

int64_t Tensor::numel() const {
  PROMPTEM_CHECK(defined());
  return impl_->numel();
}

float* Tensor::data() {
  PROMPTEM_CHECK(defined());
  return impl_->storage->data();
}

const float* Tensor::data() const {
  PROMPTEM_CHECK(defined());
  return impl_->storage->data();
}

float Tensor::at(int i) const {
  PROMPTEM_CHECK(ndim() == 1);
  PROMPTEM_CHECK(i >= 0 && i < dim(0));
  return data()[i];
}

float Tensor::at(int i, int j) const {
  PROMPTEM_CHECK(ndim() == 2);
  PROMPTEM_CHECK(i >= 0 && i < dim(0) && j >= 0 && j < dim(1));
  return data()[static_cast<int64_t>(i) * dim(1) + j];
}

void Tensor::set(int i, float v) {
  PROMPTEM_CHECK(ndim() == 1);
  PROMPTEM_CHECK(i >= 0 && i < dim(0));
  data()[i] = v;
}

void Tensor::set(int i, int j, float v) {
  PROMPTEM_CHECK(ndim() == 2);
  PROMPTEM_CHECK(i >= 0 && i < dim(0) && j >= 0 && j < dim(1));
  data()[static_cast<int64_t>(i) * dim(1) + j] = v;
}

float Tensor::item() const {
  PROMPTEM_CHECK(numel() == 1);
  return data()[0];
}

bool Tensor::requires_grad() const {
  PROMPTEM_CHECK(defined());
  return impl_->requires_grad;
}

void Tensor::set_requires_grad(bool value) {
  PROMPTEM_CHECK(defined());
  impl_->requires_grad = value;
}

float* Tensor::grad() {
  PROMPTEM_CHECK(defined());
  impl_->EnsureGrad();
  return impl_->grad->data();
}

const float* Tensor::grad() const {
  PROMPTEM_CHECK(defined() && impl_->grad);
  return impl_->grad->data();
}

bool Tensor::has_grad() const { return defined() && impl_->grad != nullptr; }

void Tensor::ZeroGrad() {
  PROMPTEM_CHECK(defined());
  impl_->EnsureGrad();
  std::fill_n(impl_->grad->data(), impl_->numel(), 0.0f);
}

void Tensor::Backward() { RunBackward(*this); }

Tensor Tensor::DetachedClone() const {
  PROMPTEM_CHECK(defined());
  Tensor out = Zeros(impl_->shape, /*requires_grad=*/false);
  std::memcpy(out.data(), data(), numel() * sizeof(float));
  return out;
}

void Tensor::CopyDataFrom(const Tensor& other) {
  PROMPTEM_CHECK(defined() && other.defined());
  PROMPTEM_CHECK(SameShape(impl_->shape, other.shape()));
  std::memcpy(data(), other.data(), numel() * sizeof(float));
}

std::string Tensor::ShapeString() const {
  if (!defined()) return "[null]";
  std::string out = "[";
  for (size_t i = 0; i < impl_->shape.size(); ++i) {
    if (i > 0) out += ", ";
    out += core::StrFormat("%d", impl_->shape[i]);
  }
  return out + "]";
}

}  // namespace promptem::tensor
