#include "tensor/quant.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "tensor/autograd.h"
#include "tensor/kernels.h"

namespace promptem::tensor::quant {

namespace {

std::atomic<int> g_eval_quant_mode{static_cast<int>(EvalQuantMode::kF32)};
std::atomic<uint64_t> g_quant_generation{1};

/// round-half-up in float; keeps the scalar and any future vector
/// quantizer in agreement (rint's banker's rounding would not).
inline int32_t RoundHalfUp(float v) {
  return static_cast<int32_t>(std::floor(v + 0.5f));
}

}  // namespace

QuantizedWeight QuantizeWeightPerChannel(const float* w, int rows, int cols) {
  QuantizedWeight qw;
  qw.rows = rows;
  qw.cols = cols;
  qw.data.resize(static_cast<size_t>(rows) * cols);
  qw.scales.resize(rows);
  qw.row_sums.resize(rows);
  for (int o = 0; o < rows; ++o) {
    const float* row = w + static_cast<int64_t>(o) * cols;
    float amax = 0.0f;
    for (int p = 0; p < cols; ++p) amax = std::max(amax, std::fabs(row[p]));
    int8_t* qrow = qw.data.data() + static_cast<int64_t>(o) * cols;
    if (amax == 0.0f) {
      qw.scales[o] = 1.0f;
      std::fill(qrow, qrow + cols, static_cast<int8_t>(0));
      qw.row_sums[o] = 0;
      continue;
    }
    const float scale = amax / 127.0f;
    const float inv = 127.0f / amax;
    int32_t sum = 0;
    for (int p = 0; p < cols; ++p) {
      int32_t q = RoundHalfUp(row[p] * inv);
      q = std::clamp(q, -127, 127);
      qrow[p] = static_cast<int8_t>(q);
      sum += q;
    }
    qw.scales[o] = scale;
    qw.row_sums[o] = sum;
  }
  return qw;
}

void QuantizeRowU7(const float* x, int n, uint8_t* q, float* scale,
                   int32_t* zero) {
  float mn = x[0];
  float mx = x[0];
  for (int j = 1; j < n; ++j) {
    mn = std::min(mn, x[j]);
    mx = std::max(mx, x[j]);
  }
  if (mx == mn) {
    // Constant row: pick (s, z, q) with s * (q - z) == v exactly.
    const float v = mn;
    float s;
    int32_t z, code;
    if (v == 0.0f) {
      s = 1.0f;
      z = 0;
      code = 0;
    } else if (v > 0.0f) {
      s = v;
      z = 0;
      code = 1;
    } else {
      s = -v;
      z = 1;
      code = 0;
    }
    *scale = s;
    *zero = z;
    std::fill(q, q + n, static_cast<uint8_t>(code));
    return;
  }
  // Asymmetric quantization needs a representable zero: widen the range
  // to include 0 so the zero-point lands inside [0, 127]. Without this,
  // an all-negative row would clamp z at 127 and saturate every code,
  // collapsing the row's dynamic range.
  mn = std::min(mn, 0.0f);
  mx = std::max(mx, 0.0f);
  const float s = (mx - mn) / 127.0f;
  const float inv = 127.0f / (mx - mn);
  const int32_t z = std::clamp(RoundHalfUp(-mn * inv), 0, 127);
  for (int j = 0; j < n; ++j) {
    const int32_t code = std::clamp(RoundHalfUp(x[j] * inv) + z, 0, 127);
    q[j] = static_cast<uint8_t>(code);
  }
  *scale = s;
  *zero = z;
}

void Int8LinearForward(const float* x, int m, int k,
                       const QuantizedWeight& qw, const float* bias,
                       float* y) {
  const int n = qw.rows;
  thread_local std::vector<uint8_t> qx;
  thread_local std::vector<int32_t> acc;
  thread_local std::vector<float> sx;
  thread_local std::vector<int32_t> zx;
  qx.resize(static_cast<size_t>(m) * k);
  acc.resize(static_cast<size_t>(m) * n);
  sx.resize(m);
  zx.resize(m);
  for (int i = 0; i < m; ++i) {
    QuantizeRowU7(x + static_cast<int64_t>(i) * k, k,
                  qx.data() + static_cast<int64_t>(i) * k, &sx[i], &zx[i]);
  }
  kernels::GemmInt8NT(m, n, k, qx.data(), k, qw.data.data(), k, acc.data(),
                      n);
  for (int i = 0; i < m; ++i) {
    const float si = sx[i];
    const int32_t zi = zx[i];
    const int32_t* arow = acc.data() + static_cast<int64_t>(i) * n;
    float* yrow = y + static_cast<int64_t>(i) * n;
    for (int o = 0; o < n; ++o) {
      const float deq = si * qw.scales[o] *
                        static_cast<float>(arow[o] - zi * qw.row_sums[o]);
      yrow[o] = bias != nullptr ? deq + bias[o] : deq;
    }
  }
}

void SetEvalQuantMode(EvalQuantMode mode) {
  g_eval_quant_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

EvalQuantMode GetEvalQuantMode() {
  return static_cast<EvalQuantMode>(
      g_eval_quant_mode.load(std::memory_order_relaxed));
}

bool Int8EvalActive() {
  return GetEvalQuantMode() == EvalQuantMode::kInt8 && !GradEnabled();
}

uint64_t QuantGeneration() {
  return g_quant_generation.load(std::memory_order_acquire);
}

void BumpQuantGeneration() {
  g_quant_generation.fetch_add(1, std::memory_order_acq_rel);
}

const QuantizedWeight& QuantizedWeightCache::Get(const float* w, int rows,
                                                 int cols) {
  const uint64_t gen = QuantGeneration();
  std::lock_guard<std::mutex> lock(mu_);
  if (!valid_ || generation_ != gen || cached_.rows != rows ||
      cached_.cols != cols) {
    cached_ = QuantizeWeightPerChannel(w, rows, cols);
    generation_ = gen;
    valid_ = true;
  }
  return cached_;
}

}  // namespace promptem::tensor::quant
