#include "lm/pretrained_lm.h"

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/string_util.h"

#include "core/log.h"
#include "data/benchmarks.h"
#include "nn/serialize.h"

namespace promptem::lm {

std::unique_ptr<PretrainedLM> PretrainedLM::Pretrain(
    const Corpus& corpus, nn::TransformerConfig config,
    const MlmOptions& options,
    const std::vector<std::string>& always_keep_tokens, core::Rng* rng) {
  auto lm = std::unique_ptr<PretrainedLM>(new PretrainedLM());
  lm->vocab_ = BuildCorpusVocab(corpus, always_keep_tokens);
  config.vocab_size = lm->vocab_.size();
  lm->config_ = config;
  lm->encoder_ = std::make_unique<nn::TransformerEncoder>(config, rng);
  MlmOptions resolved = options;
  for (const auto& word : options.always_mask_words) {
    if (lm->vocab_.Contains(word)) {
      resolved.always_mask_ids.push_back(lm->vocab_.ToId(word));
    }
  }
  lm->pretrain_losses_ =
      PretrainMlm(lm->encoder_.get(), corpus, lm->vocab_, resolved, rng);
  return lm;
}

core::Status PretrainedLM::Save(const std::string& path_prefix) const {
  // Vocabulary: one token per line, id order.
  std::ofstream vf(path_prefix + ".vocab");
  if (!vf) {
    return core::Status::IOError("cannot write vocab: " + path_prefix);
  }
  for (int i = 0; i < vocab_.size(); ++i) {
    vf << vocab_.ToToken(i) << "\n";
  }
  vf << std::flush;
  if (!vf) return core::Status::IOError("vocab write failed");

  // Architecture line + weights.
  std::ofstream cf(path_prefix + ".config");
  if (!cf) {
    return core::Status::IOError("cannot write config: " + path_prefix);
  }
  cf << config_.vocab_size << " " << config_.max_seq_len << " "
     << config_.dim << " " << config_.num_layers << " " << config_.num_heads
     << " " << config_.ffn_dim << " " << config_.dropout << "\n";
  cf << std::flush;
  if (!cf) return core::Status::IOError("config write failed");

  return nn::SaveCheckpoint(*encoder_, path_prefix + ".ckpt");
}

namespace {

/// Rejects architecture lines that are syntactically readable but could
/// only come from a corrupt or doctored .config file. The caps are far
/// above any configuration this library builds, and they bound the
/// allocation a bad config could otherwise trigger when the encoder is
/// constructed below.
core::Status ValidateLoadedConfig(const nn::TransformerConfig& config,
                                  int vocab_size,
                                  const std::string& path_prefix) {
  auto bad = [&](const char* what) {
    return core::Status::InvalidArgument(
        core::StrFormat("implausible config for %s: %s",
                        path_prefix.c_str(), what));
  };
  if (config.vocab_size != vocab_size) {
    return core::Status::InvalidArgument(
        "config/vocab mismatch for " + path_prefix);
  }
  if (config.dim <= 0 || config.dim > (1 << 16)) return bad("dim");
  if (config.num_layers <= 0 || config.num_layers > 1024) {
    return bad("num_layers");
  }
  if (config.num_heads <= 0 || config.num_heads > config.dim ||
      config.dim % config.num_heads != 0) {
    return bad("num_heads");
  }
  if (config.ffn_dim <= 0 || config.ffn_dim > (1 << 20)) {
    return bad("ffn_dim");
  }
  if (config.max_seq_len <= 0 || config.max_seq_len > (1 << 20)) {
    return bad("max_seq_len");
  }
  if (!(config.dropout >= 0.0f && config.dropout < 1.0f)) {
    return bad("dropout");
  }
  return core::Status::OK();
}

}  // namespace

core::Result<std::unique_ptr<PretrainedLM>> PretrainedLM::Load(
    const std::string& path_prefix) {
  auto vocab = text::LoadVocabFile(path_prefix + ".vocab");
  if (!vocab.ok()) return vocab.status();
  auto lm = std::unique_ptr<PretrainedLM>(new PretrainedLM());
  lm->vocab_ = std::move(vocab).value();

  std::ifstream cf(path_prefix + ".config");
  if (!cf) {
    return core::Status::IOError("cannot read config: " + path_prefix);
  }
  nn::TransformerConfig config;
  cf >> config.vocab_size >> config.max_seq_len >> config.dim >>
      config.num_layers >> config.num_heads >> config.ffn_dim >>
      config.dropout;
  if (!cf) {
    return core::Status::InvalidArgument(
        "unparseable config for " + path_prefix);
  }
  core::Status valid =
      ValidateLoadedConfig(config, lm->vocab_.size(), path_prefix);
  if (!valid.ok()) return valid;
  lm->config_ = config;
  core::Rng init_rng(1);  // overwritten by the checkpoint below
  lm->encoder_ = std::make_unique<nn::TransformerEncoder>(config, &init_rng);
  core::Status st =
      nn::LoadCheckpoint(lm->encoder_.get(), path_prefix + ".ckpt");
  if (!st.ok()) return st;
  return lm;
}

std::unique_ptr<nn::TransformerEncoder> PretrainedLM::CloneEncoder(
    core::Rng* rng) const {
  auto clone = std::make_unique<nn::TransformerEncoder>(config_, rng);
  core::Status st = nn::CopyParameters(*encoder_, clone.get());
  PROMPTEM_CHECK_MSG(st.ok(), st.ToString().c_str());
  return clone;
}

std::vector<std::string> RequiredPromptTokens() {
  return {"matched",   "similar",   "relevant",  "mismatched",
          "different", "irrelevant", "they",     "are",
          "is",        "to",         "yes",      "no"};
}

std::unique_ptr<PretrainedLM> GetOrCreateSharedLM(
    const std::string& path_prefix, uint64_t seed) {
  auto loaded = PretrainedLM::Load(path_prefix);
  if (loaded.ok()) {
    return std::move(loaded).value();
  }
  // A missing cache is the normal first-run path; a cache that exists but
  // fails validation deserves a visible warning before we fall back.
  struct stat cache_stat;
  if (::stat((path_prefix + ".vocab").c_str(), &cache_stat) == 0 ||
      ::stat((path_prefix + ".ckpt").c_str(), &cache_stat) == 0) {
    PROMPTEM_LOG(Warn) << "ignoring unusable LM cache at " << path_prefix
                       << ": " << loaded.status().ToString();
  }
  PROMPTEM_LOG(Info) << "pre-training shared LM (cache miss at "
                     << path_prefix << ")";
  core::Rng rng(seed);
  Corpus corpus = BuildCorpus(data::GenerateAllBenchmarks(seed), seed);
  nn::TransformerConfig config;
  config.dim = 32;
  config.num_layers = 2;
  config.num_heads = 4;
  config.ffn_dim = 64;
  config.max_seq_len = 96;
  MlmOptions options;
  options.epochs = 4;
  if (const char* env = std::getenv("PROMPTEM_LM_EPOCHS")) {
    options.epochs = std::max(1, std::atoi(env));
  }
  options.max_seq_len = 96;
  options.always_mask_words = {"matched",    "similar",   "relevant",
                               "mismatched", "different", "irrelevant"};
  auto lm = PretrainedLM::Pretrain(corpus, config, options,
                                   RequiredPromptTokens(), &rng);
  core::Status st = lm->Save(path_prefix);
  if (!st.ok()) {
    PROMPTEM_LOG(Warn) << "could not cache LM: " << st.ToString();
  }
  return lm;
}

}  // namespace promptem::lm
