#ifndef PROMPTEM_LM_PRETRAINED_LM_H_
#define PROMPTEM_LM_PRETRAINED_LM_H_

#include <memory>
#include <string>
#include <vector>

#include "lm/mlm.h"
#include "nn/transformer.h"

namespace promptem::lm {

/// The "pre-trained language model" every matcher starts from: a shared
/// vocabulary plus an MLM-pre-trained transformer encoder. Plays the role
/// of RoBERTa-base in the paper (see DESIGN.md §1 for the substitution).
///
/// Methods clone the encoder weights (nn::CopyParameters) before tuning so
/// each experiment starts from the same pre-trained state.
class PretrainedLM {
 public:
  /// Builds the vocabulary from `corpus`, constructs the encoder with
  /// `config` (vocab_size is overwritten), and pre-trains it.
  static std::unique_ptr<PretrainedLM> Pretrain(
      const Corpus& corpus, nn::TransformerConfig config,
      const MlmOptions& options,
      const std::vector<std::string>& always_keep_tokens, core::Rng* rng);

  /// Loads vocab + weights saved by Save(). Status on failure.
  static core::Result<std::unique_ptr<PretrainedLM>> Load(
      const std::string& path_prefix);

  /// Writes "<prefix>.vocab" and "<prefix>.ckpt".
  core::Status Save(const std::string& path_prefix) const;

  /// Makes a fresh encoder with identical architecture and copies the
  /// pre-trained weights into it (the starting point for tuning).
  std::unique_ptr<nn::TransformerEncoder> CloneEncoder(
      core::Rng* rng) const;

  const text::Vocab& vocab() const { return vocab_; }
  const nn::TransformerConfig& config() const { return config_; }
  const nn::TransformerEncoder& encoder() const { return *encoder_; }
  const std::vector<float>& pretrain_losses() const {
    return pretrain_losses_;
  }

 private:
  PretrainedLM() = default;

  text::Vocab vocab_;
  nn::TransformerConfig config_;
  std::unique_ptr<nn::TransformerEncoder> encoder_;
  std::vector<float> pretrain_losses_;
};

/// Benchmark-harness convenience: loads the shared LM from `path_prefix`
/// if present, otherwise pre-trains it on all eight benchmarks (seeded)
/// and saves it, so every bench binary reuses one pre-training run.
std::unique_ptr<PretrainedLM> GetOrCreateSharedLM(
    const std::string& path_prefix, uint64_t seed);

/// The label words that must survive vocabulary construction (the union of
/// the designed and simple verbalizers plus template words; see
/// promptem/verbalizer.h).
std::vector<std::string> RequiredPromptTokens();

}  // namespace promptem::lm

#endif  // PROMPTEM_LM_PRETRAINED_LM_H_
