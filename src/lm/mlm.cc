#include "lm/mlm.h"

#include <algorithm>

#include "core/log.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "text/tokenizer.h"

namespace promptem::lm {

namespace ops = tensor::ops;
using text::SpecialTokens;

MlmInstance MaskTokens(const std::vector<int>& ids, int vocab_size,
                       float mask_prob, core::Rng* rng) {
  MlmInstance inst;
  inst.input_ids = ids;
  inst.targets.assign(ids.size(), -1);
  int masked = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    // Never corrupt special tokens.
    if (ids[i] < SpecialTokens::kCount) continue;
    if (!rng->Bernoulli(mask_prob)) continue;
    inst.targets[i] = ids[i];
    ++masked;
    const double roll = rng->NextDouble();
    if (roll < 0.8) {
      inst.input_ids[i] = SpecialTokens::kMask;
    } else if (roll < 0.9) {
      inst.input_ids[i] = SpecialTokens::kCount +
                          static_cast<int>(rng->NextU64(static_cast<uint64_t>(
                              vocab_size - SpecialTokens::kCount)));
    }  // else: keep original token.
  }
  if (masked == 0 && !ids.empty()) {
    // Guarantee a learning signal on short documents.
    for (size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] >= SpecialTokens::kCount) {
        inst.targets[i] = ids[i];
        inst.input_ids[i] = SpecialTokens::kMask;
        break;
      }
    }
  }
  return inst;
}

std::vector<float> PretrainMlm(nn::TransformerEncoder* encoder,
                               const Corpus& corpus,
                               const text::Vocab& vocab,
                               const MlmOptions& options, core::Rng* rng) {
  PROMPTEM_CHECK(encoder != nullptr);
  encoder->Train();
  nn::AdamWConfig opt_config;
  opt_config.lr = options.lr;
  nn::AdamW optimizer(encoder->Parameters(), opt_config);

  // Pre-encode all documents once.
  std::vector<std::vector<int>> encoded;
  encoded.reserve(corpus.documents.size());
  for (const auto& doc : corpus.documents) {
    std::vector<int> ids = text::TokensToIds(vocab, doc);
    if (static_cast<int>(ids.size()) > options.max_seq_len) {
      ids.resize(static_cast<size_t>(options.max_seq_len));
    }
    if (!ids.empty()) encoded.push_back(std::move(ids));
  }
  PROMPTEM_CHECK_MSG(!encoded.empty(), "empty pre-training corpus");

  std::vector<float> epoch_losses;
  std::vector<size_t> order(encoded.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng->Shuffle(&order);
    double total_loss = 0.0;
    int64_t steps = 0;
    for (size_t idx : order) {
      MlmInstance inst = MaskTokens(encoded[idx], vocab.size(),
                                    options.mask_prob, rng);
      if (!options.always_mask_ids.empty()) {
        for (size_t i = 0; i < encoded[idx].size(); ++i) {
          const int original = encoded[idx][i];
          for (int forced : options.always_mask_ids) {
            if (original == forced) {
              inst.targets[i] = original;
              inst.input_ids[i] = SpecialTokens::kMask;
            }
          }
        }
      }
      std::vector<int> positions;
      std::vector<int> labels;
      for (size_t i = 0; i < inst.targets.size(); ++i) {
        if (inst.targets[i] >= 0) {
          positions.push_back(static_cast<int>(i));
          labels.push_back(inst.targets[i]);
        }
      }
      if (positions.empty()) continue;
      tensor::Tensor hidden = encoder->Encode(inst.input_ids, rng);
      tensor::Tensor logits = encoder->MlmLogits(hidden, positions);
      tensor::Tensor loss = ops::CrossEntropyLogits(logits, labels);
      total_loss += loss.item();
      ++steps;
      loss.Backward();
      optimizer.Step();
      optimizer.ZeroGrad();
      if (options.log_every > 0 && steps % options.log_every == 0) {
        PROMPTEM_LOG(Info) << "mlm epoch " << epoch << " step " << steps
                           << " loss " << total_loss / steps;
      }
    }
    epoch_losses.push_back(
        steps == 0 ? 0.0f : static_cast<float>(total_loss / steps));
  }
  return epoch_losses;
}

}  // namespace promptem::lm
