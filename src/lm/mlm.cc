#include "lm/mlm.h"

#include <algorithm>

#include "core/log.h"
#include "tensor/ops.h"
#include "text/tokenizer.h"
#include "train/train_loop.h"

namespace promptem::lm {

namespace ops = tensor::ops;
using text::SpecialTokens;

MlmInstance MaskTokens(const std::vector<int>& ids, int vocab_size,
                       float mask_prob, core::Rng* rng) {
  MlmInstance inst;
  inst.input_ids = ids;
  inst.targets.assign(ids.size(), -1);
  int masked = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    // Never corrupt special tokens.
    if (ids[i] < SpecialTokens::kCount) continue;
    if (!rng->Bernoulli(mask_prob)) continue;
    inst.targets[i] = ids[i];
    ++masked;
    const double roll = rng->NextDouble();
    if (roll < 0.8) {
      inst.input_ids[i] = SpecialTokens::kMask;
    } else if (roll < 0.9) {
      inst.input_ids[i] = SpecialTokens::kCount +
                          static_cast<int>(rng->NextU64(static_cast<uint64_t>(
                              vocab_size - SpecialTokens::kCount)));
    }  // else: keep original token.
  }
  if (masked == 0 && !ids.empty()) {
    // Guarantee a learning signal on short documents.
    for (size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] >= SpecialTokens::kCount) {
        inst.targets[i] = ids[i];
        inst.input_ids[i] = SpecialTokens::kMask;
        break;
      }
    }
  }
  return inst;
}

namespace {

/// Periodic in-epoch progress lines ("mlm epoch 1 step 200 loss ..."),
/// reconstructed from per-step batch events.
class MlmProgressLogger final : public train::TrainObserver {
 public:
  explicit MlmProgressLogger(int log_every) : log_every_(log_every) {}

  void OnEpochBegin(int epoch) override {
    epoch_ = epoch;
    steps_ = 0;
    total_loss_ = 0.0;
  }

  void OnBatchEnd(const train::BatchStats& stats) override {
    total_loss_ += stats.batch_loss;
    ++steps_;
    if (log_every_ > 0 && steps_ % log_every_ == 0) {
      PROMPTEM_LOG(Info) << "mlm epoch " << epoch_ << " step " << steps_
                         << " loss " << total_loss_ / steps_;
    }
  }

 private:
  int log_every_;
  int epoch_ = 0;
  int64_t steps_ = 0;
  double total_loss_ = 0.0;
};

}  // namespace

std::vector<float> PretrainMlm(nn::TransformerEncoder* encoder,
                               const Corpus& corpus,
                               const text::Vocab& vocab,
                               const MlmOptions& options, core::Rng* rng) {
  PROMPTEM_CHECK(encoder != nullptr);

  // Pre-encode all documents once.
  std::vector<std::vector<int>> encoded;
  encoded.reserve(corpus.documents.size());
  for (const auto& doc : corpus.documents) {
    std::vector<int> ids = text::TokensToIds(vocab, doc);
    if (static_cast<int>(ids.size()) > options.max_seq_len) {
      ids.resize(static_cast<size_t>(options.max_seq_len));
    }
    if (!ids.empty()) encoded.push_back(std::move(ids));
  }
  PROMPTEM_CHECK_MSG(!encoded.empty(), "empty pre-training corpus");

  MlmProgressLogger progress(options.log_every);
  train::ObserverList observers;
  observers.Add(&progress);
  observers.Add(options.observer);

  train::LoopOptions loop_options;
  loop_options.epochs = options.epochs;
  // MLM steps after every document (sequential mode with group size 1);
  // documents where masking selected nothing are skipped entirely.
  loop_options.batch_size = 1;
  loop_options.lr = options.lr;
  loop_options.rng = rng;
  loop_options.observer = &observers;
  loop_options.run_name = "mlm";

  train::TrainLoop loop(encoder, loop_options);
  loop.OnSequentialStep(
      [&](size_t idx, core::Rng* step_rng)
          -> std::optional<tensor::Tensor> {
        MlmInstance inst = MaskTokens(encoded[idx], vocab.size(),
                                      options.mask_prob, step_rng);
        if (!options.always_mask_ids.empty()) {
          for (size_t i = 0; i < encoded[idx].size(); ++i) {
            const int original = encoded[idx][i];
            for (int forced : options.always_mask_ids) {
              if (original == forced) {
                inst.targets[i] = original;
                inst.input_ids[i] = SpecialTokens::kMask;
              }
            }
          }
        }
        std::vector<int> positions;
        std::vector<int> labels;
        for (size_t i = 0; i < inst.targets.size(); ++i) {
          if (inst.targets[i] >= 0) {
            positions.push_back(static_cast<int>(i));
            labels.push_back(inst.targets[i]);
          }
        }
        if (positions.empty()) return std::nullopt;
        tensor::Tensor hidden = encoder->Encode(inst.input_ids, step_rng);
        tensor::Tensor logits = encoder->MlmLogits(hidden, positions);
        return ops::CrossEntropyLogits(logits, labels);
      });

  return loop.Run(encoded.size()).epoch_losses;
}

}  // namespace promptem::lm
