#include "lm/corpus.h"

#include "data/serializer.h"
#include "text/tokenizer.h"

namespace promptem::lm {

namespace {

/// A "noisy copy" of a token sequence: random drops and local swaps. Used
/// to make self-pair pre-training documents resemble real matching pairs
/// (which never repeat verbatim) instead of exact copies.
std::vector<std::string> NoisyCopy(const std::vector<std::string>& tokens,
                                   core::Rng* rng) {
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (const auto& tok : tokens) {
    if (tokens.size() > 4 && rng->Bernoulli(0.25)) continue;
    out.push_back(tok);
  }
  if (out.empty()) out = tokens;
  for (size_t i = 1; i < out.size(); ++i) {
    if (rng->Bernoulli(0.1)) std::swap(out[i - 1], out[i]);
  }
  return out;
}

std::vector<std::string> Tokens(const data::Record& record) {
  return text::WordTokenize(data::SerializeRecord(record));
}

void Append(std::vector<std::string>* doc,
            const std::vector<std::string>& tokens) {
  doc->insert(doc->end(), tokens.begin(), tokens.end());
}

}  // namespace

Corpus BuildCorpus(const std::vector<data::GemDataset>& datasets,
                   uint64_t seed) {
  core::Rng rng(seed ^ 0xC0121955ULL);
  Corpus corpus;

  // Cloze phrasings mirroring the downstream templates (§3.1). The word
  // slots are filled with the verbalizer's label words so the MLM head
  // pre-learns the overlap -> label-word mapping — the "rich knowledge in
  // the LM" that prompt-tuning stimulates and a fresh classification head
  // cannot reuse (Challenge I). Everything here is self-supervised:
  // "similar" pairs are a record with a noisy copy of itself; "different"
  // pairs are two random records. No match labels are consulted.
  static const char* kYesWords[] = {"matched", "similar", "relevant"};
  static const char* kNoWords[] = {"mismatched", "different", "irrelevant"};

  auto add_pair_doc = [&](const std::vector<std::string>& a,
                          const std::vector<std::string>& b, bool positive) {
    const char* word = positive ? kYesWords[rng.NextU64(3)]
                                : kNoWords[rng.NextU64(3)];
    std::vector<std::string> doc;
    doc.reserve(a.size() + b.size() + 6);
    doc.emplace_back("[CLS]");
    if (rng.Bernoulli(0.5)) {
      // T2 shape: a is <word> to b.
      Append(&doc, a);
      doc.emplace_back("is");
      doc.emplace_back(word);
      doc.emplace_back("to");
      Append(&doc, b);
      doc.emplace_back("[SEP]");
    } else {
      // T1 shape: a [SEP] b [SEP] they are <word>.
      Append(&doc, a);
      doc.emplace_back("[SEP]");
      Append(&doc, b);
      doc.emplace_back("[SEP]");
      doc.emplace_back("they");
      doc.emplace_back("are");
      doc.emplace_back(word);
    }
    corpus.documents.push_back(std::move(doc));
  };

  for (const auto& ds : datasets) {
    std::vector<const data::Record*> records;
    for (const auto& r : ds.left_table) records.push_back(&r);
    for (const auto& r : ds.right_table) records.push_back(&r);
    for (const data::Record* record : records) {
      const std::vector<std::string> tokens = Tokens(*record);
      // Plain document, shaped like one input segment.
      std::vector<std::string> plain;
      plain.reserve(tokens.size() + 2);
      plain.emplace_back("[CLS]");
      Append(&plain, tokens);
      plain.emplace_back("[SEP]");
      corpus.documents.push_back(std::move(plain));
      // "Similar" pair: the record with a noisy copy of itself.
      add_pair_doc(tokens, NoisyCopy(tokens, &rng), /*positive=*/true);
      // "Different" pair: the record with a random other record from the
      // same pool (vanishingly unlikely to be a true match, and noisy
      // labels at this rate are harmless for pre-training).
      const data::Record* other =
          records[rng.NextU64(records.size())];
      if (other != record) {
        add_pair_doc(tokens, Tokens(*other), /*positive=*/false);
      }
    }
  }
  return corpus;
}

text::Vocab BuildCorpusVocab(const Corpus& corpus,
                             const std::vector<std::string>& always_keep,
                             int min_count, int max_size) {
  return text::BuildVocab(corpus.documents, min_count, max_size,
                          always_keep);
}

}  // namespace promptem::lm
