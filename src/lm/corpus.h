#ifndef PROMPTEM_LM_CORPUS_H_
#define PROMPTEM_LM_CORPUS_H_

#include <string>
#include <vector>

#include "core/rng.h"
#include "data/dataset.h"
#include "text/vocab.h"

namespace promptem::lm {

/// A pre-training corpus: tokenized documents (one per entity record)
/// drawn from benchmark tables. The LM pre-trains on these with the MLM
/// objective, standing in for RoBERTa's web-scale pre-training at the
/// benchmark-domain scale (DESIGN.md §1).
struct Corpus {
  std::vector<std::vector<std::string>> documents;
};

/// Serializes and tokenizes every record of every dataset into documents:
/// plain records, self-pair "similar" cloze documents, and random-pair
/// "different" cloze documents (self-supervised; see corpus.cc).
Corpus BuildCorpus(const std::vector<data::GemDataset>& datasets,
                   uint64_t seed = 7);

/// Builds the shared vocabulary over a corpus. `always_keep` should carry
/// the verbalizer's label words so they are never [UNK].
text::Vocab BuildCorpusVocab(const Corpus& corpus,
                             const std::vector<std::string>& always_keep,
                             int min_count = 1, int max_size = 0);

}  // namespace promptem::lm

#endif  // PROMPTEM_LM_CORPUS_H_
