#ifndef PROMPTEM_LM_MLM_H_
#define PROMPTEM_LM_MLM_H_

#include <vector>

#include "lm/corpus.h"
#include "nn/transformer.h"
#include "train/observer.h"

namespace promptem::lm {

/// Masked-LM pre-training options (BERT-style 15% selection with 80/10/10
/// mask/random/keep corruption).
struct MlmOptions {
  int epochs = 3;
  float mask_prob = 0.15f;
  float lr = 1e-3f;
  int max_seq_len = 64;
  int log_every = 0;  ///< 0 disables progress logging
  /// Token ids that are always masked when present (the verbalizer's
  /// label words, so every cloze document trains the label-word mapping).
  std::vector<int> always_mask_ids;
  /// Same, by surface form — resolved against the vocabulary by
  /// PretrainedLM::Pretrain (which builds the vocab) into always_mask_ids.
  std::vector<std::string> always_mask_words;
  /// Receives the pre-training loop's events (not owned; may be null).
  train::TrainObserver* observer = nullptr;
};

/// One masked training instance.
struct MlmInstance {
  std::vector<int> input_ids;  ///< with [MASK]/random corruptions applied
  std::vector<int> targets;    ///< original id at masked positions, -1 else
};

/// Applies the 15% / 80-10-10 corruption to a token-id sequence. Ensures
/// at least one position is masked for non-empty inputs.
MlmInstance MaskTokens(const std::vector<int>& ids, int vocab_size,
                       float mask_prob, core::Rng* rng);

/// Pre-trains `encoder` on the corpus with the MLM objective. Returns the
/// final average loss per epoch (front = first epoch), so callers and
/// tests can assert the loss decreases.
std::vector<float> PretrainMlm(nn::TransformerEncoder* encoder,
                               const Corpus& corpus,
                               const text::Vocab& vocab,
                               const MlmOptions& options, core::Rng* rng);

}  // namespace promptem::lm

#endif  // PROMPTEM_LM_MLM_H_
