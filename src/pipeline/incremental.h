#ifndef PROMPTEM_PIPELINE_INCREMENTAL_H_
#define PROMPTEM_PIPELINE_INCREMENTAL_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/concurrent_cache.h"
#include "pipeline/match_pipeline.h"
#include "promptem/embed_cache.h"

namespace promptem::em {

/// Incremental re-matching: the serving-shaped layer over MatchPipeline.
/// An IncrementalMatcher owns a pair of tables, matches them once, then
/// accepts record upsert/delete deltas and re-matches by re-scoring ONLY
/// the candidate pairs that touch a changed record — every other
/// candidate's probability is served from a version-keyed score cache, so
/// one changed record costs O(its candidates), not O(all candidates).
///
/// Mechanics:
///  - Every record carries a version counter; an upsert or delete bumps
///    it. A candidate's score-cache key folds both records' versions, so
///    a change makes exactly the touching pairs miss — no scan, no
///    explicit invalidation of the candidate set.
///  - Deletes are tombstones: the record stays in the table (emptied) so
///    indexes stay stable, and a filter around the blocker drops any
///    candidate touching a deleted record.
///  - Each match rebuilds the blocker over the current tables (blocking
///    is the cheap stage); scoring is where the cache pays.
///
/// Determinism: the scorer is the deterministic eval engine, so a cached
/// probability is bitwise the probability a fresh match would compute.
/// ApplyDelta's result equals a from-scratch FullMatch over the same
/// final tables (cache_test pins this).

/// Replaces (or appends, when `index == table size`) one record.
struct RecordUpsert {
  bool left = true;  ///< which table
  int index = 0;
  data::Record record;
};

/// Tombstones one record: it leaves the candidate stream permanently.
struct RecordDelete {
  bool left = true;
  int index = 0;
};

/// One batch of changes applied atomically before re-matching.
struct RecordDelta {
  std::vector<RecordUpsert> upserts;
  std::vector<RecordDelete> deletes;
};

/// What one re-match actually paid.
struct DeltaStats {
  size_t changed_records = 0;  ///< upserts + deletes applied
  size_t candidates = 0;       ///< candidate pairs in the re-match
  size_t rescored = 0;         ///< pairs scored by the model
  size_t reused = 0;           ///< pairs served from the score cache
};

class IncrementalMatcher {
 public:
  /// Builds the chunk scorer over the matcher's owned dataset (called
  /// once, at construction — the reference stays valid for the matcher's
  /// lifetime).
  using ScorerFactory =
      std::function<ChunkScoreFn(const data::GemDataset& dataset)>;
  /// Builds a fresh blocker over the current tables (called per match).
  using BlockerFactory = std::function<std::unique_ptr<data::Blocker>(
      const data::GemDataset& dataset)>;

  struct Config {
    MatchPipelineConfig pipeline;
    /// Bound on cached pair scores; eviction only costs re-scoring.
    size_t score_cache_capacity = 1u << 20;
    /// When set, upserts/deletes also drop the encoder's token memo for
    /// the changed record (pass the encoder the scorer uses).
    const PairEncoder* encoder = nullptr;
    /// Restart-stable persistence seam. The in-process score cache is
    /// version-keyed with in-process counters, so it cannot survive a
    /// restart; pairs whose records are both still at version 0 (i.e.
    /// bitwise the constructed tables) additionally consult/populate
    /// this shared EmbeddingCache under `persistent_tag`, so a fresh
    /// matcher over the same corpus re-scores nothing a previous
    /// process already scored — through the cache's mmap backing, the
    /// warm start never materializes the full store.
    std::shared_ptr<EmbeddingCache> persistent;
    /// Content-fingerprint tag (EmbeddingCache::ContextTag) scoping the
    /// persistent keys to this dataset + scorer.
    uint64_t persistent_tag = 0;
  };

  IncrementalMatcher(data::GemDataset dataset, const ScorerFactory& scorer,
                     BlockerFactory blocker_factory, Config config);
  /// Default configuration (defined out of line: nested-class member
  /// initializers are unusable in default arguments here).
  IncrementalMatcher(data::GemDataset dataset, const ScorerFactory& scorer,
                     BlockerFactory blocker_factory);

  /// Matches the current tables from scratch, filling the score cache.
  MatchPipelineResult FullMatch();

  /// Applies `delta` to the tables, then re-matches. Only candidates
  /// touching changed records are re-scored (see last_stats()).
  MatchPipelineResult ApplyDelta(const RecordDelta& delta);

  const data::GemDataset& dataset() const { return dataset_; }
  const DeltaStats& last_stats() const { return last_stats_; }
  core::ConcurrentCache<ProbPair>::Stats cache_stats() const {
    return score_cache_.stats();
  }

 private:
  MatchPipelineResult Match();
  uint64_t PairScoreKey(int left_index, int right_index) const;
  void TouchRecord(bool left, int index);

  data::GemDataset dataset_;
  Config config_;
  ChunkScoreFn scorer_;
  BlockerFactory blocker_factory_;
  /// Version per record, bumped on every change; deleted records keep
  /// a tombstone flag so the blocker filter can drop them.
  std::vector<uint64_t> left_version_;
  std::vector<uint64_t> right_version_;
  std::vector<bool> left_deleted_;
  std::vector<bool> right_deleted_;
  core::ConcurrentCache<ProbPair> score_cache_;
  DeltaStats last_stats_;
};

}  // namespace promptem::em

#endif  // PROMPTEM_PIPELINE_INCREMENTAL_H_
