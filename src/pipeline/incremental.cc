#include "pipeline/incremental.h"

#include <utility>

#include "core/hashing.h"

namespace promptem::em {

namespace {

/// Drops candidates touching tombstoned records from an inner blocker's
/// stream. Passing chunks through a filter preserves the stream's
/// deterministic order (it only removes elements), so the pipeline's
/// chunk-size/pool-size invariance is untouched.
class TombstoneFilterBlocker : public data::Blocker {
 public:
  TombstoneFilterBlocker(std::unique_ptr<data::Blocker> inner,
                         const std::vector<bool>* left_deleted,
                         const std::vector<bool>* right_deleted)
      : inner_(std::move(inner)),
        left_deleted_(left_deleted),
        right_deleted_(right_deleted) {}

  const char* Name() const override { return inner_->Name(); }
  size_t left_size() const override { return inner_->left_size(); }
  size_t right_size() const override { return inner_->right_size(); }
  void Reset() override { inner_->Reset(); }

  size_t NextChunk(size_t max_pairs,
                   std::vector<data::PairExample>* out) override {
    size_t appended = 0;
    // A chunk of pure tombstones must not read as exhaustion: keep
    // pulling until something survives or the inner stream truly ends.
    while (appended == 0) {
      scratch_.clear();
      if (inner_->NextChunk(max_pairs, &scratch_) == 0) break;
      for (const auto& p : scratch_) {
        if ((*left_deleted_)[static_cast<size_t>(p.left_index)] ||
            (*right_deleted_)[static_cast<size_t>(p.right_index)]) {
          continue;
        }
        out->push_back(p);
        ++appended;
      }
    }
    return appended;
  }

 private:
  std::unique_ptr<data::Blocker> inner_;
  const std::vector<bool>* left_deleted_;
  const std::vector<bool>* right_deleted_;
  std::vector<data::PairExample> scratch_;
};

}  // namespace

IncrementalMatcher::IncrementalMatcher(data::GemDataset dataset,
                                       const ScorerFactory& scorer,
                                       BlockerFactory blocker_factory,
                                       Config config)
    : dataset_(std::move(dataset)),
      config_(std::move(config)),
      blocker_factory_(std::move(blocker_factory)),
      left_version_(dataset_.left_table.size(), 0),
      right_version_(dataset_.right_table.size(), 0),
      left_deleted_(dataset_.left_table.size(), false),
      right_deleted_(dataset_.right_table.size(), false),
      score_cache_(config_.score_cache_capacity) {
  PROMPTEM_CHECK(scorer != nullptr);
  PROMPTEM_CHECK(blocker_factory_ != nullptr);
  // The matcher mutates its tables in place; a private identity keeps its
  // encoder memo entries distinct from any the caller made against the
  // pre-move dataset object.
  dataset_.RefreshCacheIdentity();
  scorer_ = scorer(dataset_);
  PROMPTEM_CHECK(scorer_ != nullptr);
}

IncrementalMatcher::IncrementalMatcher(data::GemDataset dataset,
                                       const ScorerFactory& scorer,
                                       BlockerFactory blocker_factory)
    : IncrementalMatcher(std::move(dataset), scorer,
                         std::move(blocker_factory), Config{}) {}

uint64_t IncrementalMatcher::PairScoreKey(int left_index,
                                          int right_index) const {
  const auto l = static_cast<size_t>(left_index);
  const auto r = static_cast<size_t>(right_index);
  // Folding both version counters into the key makes every cached score
  // self-invalidating: changing a record bumps its version and exactly
  // the candidates touching it stop hitting.
  return core::Combine64(
      core::Combine64(static_cast<uint64_t>(l) << 1, left_version_[l]),
      core::Combine64((static_cast<uint64_t>(r) << 1) | 1,
                      right_version_[r]));
}

void IncrementalMatcher::TouchRecord(bool left, int index) {
  auto& version = left ? left_version_ : right_version_;
  version[static_cast<size_t>(index)] += 1;
  if (config_.encoder != nullptr) {
    config_.encoder->InvalidateRecord(dataset_, left, index);
  }
}

MatchPipelineResult IncrementalMatcher::Match() {
  DeltaStats stats = last_stats_;  // changed_records already set by caller
  stats.candidates = 0;
  stats.rescored = 0;
  stats.reused = 0;

  std::unique_ptr<data::Blocker> inner = blocker_factory_(dataset_);
  PROMPTEM_CHECK(inner != nullptr);
  TombstoneFilterBlocker blocker(std::move(inner), &left_deleted_,
                                 &right_deleted_);

  // The cache-consulting scorer: hits are served, misses go through the
  // real scorer as one compacted sub-chunk (per-candidate eval forwards
  // are independent, so compaction cannot change any probability).
  ChunkScoreFn cached_scorer =
      [this, &stats](const std::vector<data::PairExample>& chunk) {
        stats.candidates += chunk.size();
        std::vector<ProbPair> probs(chunk.size());
        std::vector<size_t> misses;
        std::vector<uint64_t> keys(chunk.size());
        // A pair is restart-stable while both its records are still at
        // version 0: its persistent key is a pure function of table
        // indexes + content fingerprints, so a previous process's score
        // is bitwise the score this one would compute.
        auto persistent_key = [this](const data::PairExample& p,
                                     uint64_t* key) {
          if (!config_.persistent) return false;
          if (left_version_[static_cast<size_t>(p.left_index)] != 0 ||
              right_version_[static_cast<size_t>(p.right_index)] != 0) {
            return false;
          }
          *key = EmbeddingCache::PairKey(config_.persistent_tag,
                                         p.left_index, p.right_index);
          return true;
        };
        for (size_t i = 0; i < chunk.size(); ++i) {
          keys[i] = PairScoreKey(chunk[i].left_index, chunk[i].right_index);
          if (auto hit = score_cache_.Find(keys[i])) {
            probs[i] = *hit;
            continue;
          }
          uint64_t pkey = 0;
          if (persistent_key(chunk[i], &pkey)) {
            if (auto persisted = config_.persistent->Find(pkey);
                persisted && persisted->size() == 2) {
              probs[i] = ProbPair{(*persisted)[0], (*persisted)[1]};
              score_cache_.Insert(keys[i], probs[i]);
              continue;
            }
          }
          misses.push_back(i);
        }
        stats.reused += chunk.size() - misses.size();
        stats.rescored += misses.size();
        if (!misses.empty()) {
          std::vector<data::PairExample> miss_chunk;
          miss_chunk.reserve(misses.size());
          for (size_t i : misses) miss_chunk.push_back(chunk[i]);
          const std::vector<ProbPair> computed = scorer_(miss_chunk);
          PROMPTEM_CHECK(computed.size() == misses.size());
          for (size_t m = 0; m < misses.size(); ++m) {
            probs[misses[m]] = computed[m];
            score_cache_.Insert(keys[misses[m]], computed[m]);
            uint64_t pkey = 0;
            if (persistent_key(chunk[misses[m]], &pkey)) {
              config_.persistent->Insert(
                  pkey, std::vector<float>{computed[m][0], computed[m][1]});
            }
          }
        }
        return probs;
      };

  MatchPipeline pipeline(&blocker, cached_scorer, config_.pipeline);
  MatchPipelineResult result = pipeline.Run();
  last_stats_ = stats;
  return result;
}

MatchPipelineResult IncrementalMatcher::FullMatch() {
  last_stats_ = DeltaStats{};
  return Match();
}

MatchPipelineResult IncrementalMatcher::ApplyDelta(const RecordDelta& delta) {
  for (const auto& up : delta.upserts) {
    auto& table = up.left ? dataset_.left_table : dataset_.right_table;
    auto& version = up.left ? left_version_ : right_version_;
    auto& deleted = up.left ? left_deleted_ : right_deleted_;
    PROMPTEM_CHECK(up.index >= 0 &&
                   static_cast<size_t>(up.index) <= table.size());
    if (static_cast<size_t>(up.index) == table.size()) {
      table.push_back(up.record);
      version.push_back(0);
      deleted.push_back(false);
    } else {
      table[static_cast<size_t>(up.index)] = up.record;
      deleted[static_cast<size_t>(up.index)] = false;  // upsert revives
      TouchRecord(up.left, up.index);
    }
  }
  for (const auto& del : delta.deletes) {
    auto& table = del.left ? dataset_.left_table : dataset_.right_table;
    auto& deleted = del.left ? left_deleted_ : right_deleted_;
    PROMPTEM_CHECK(del.index >= 0 &&
                   static_cast<size_t>(del.index) < table.size());
    // Tombstone: empty the record (indexes stay stable, the blocker sees
    // nothing to match) and flag it out of the candidate stream.
    table[static_cast<size_t>(del.index)] = data::Record::Relational({});
    deleted[static_cast<size_t>(del.index)] = true;
    TouchRecord(del.left, del.index);
  }
  last_stats_ = DeltaStats{};
  last_stats_.changed_records = delta.upserts.size() + delta.deletes.size();
  return Match();
}

}  // namespace promptem::em
