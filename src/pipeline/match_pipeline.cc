#include "pipeline/match_pipeline.h"

#include <algorithm>
#include <utility>

#include "core/status.h"

namespace promptem::em {

namespace {

/// The total order top-k selection uses: higher P(yes) first, then table
/// position. Strict ordering with no equal elements (a candidate pair is
/// unique), so the retained set cannot depend on arrival order — i.e. on
/// chunk size.
bool BetterMatch(const ScoredMatch& a, const ScoredMatch& b) {
  if (a.pos_prob != b.pos_prob) return a.pos_prob > b.pos_prob;
  if (a.left_index != b.left_index) return a.left_index < b.left_index;
  return a.right_index < b.right_index;
}

}  // namespace

MatchPipeline::MatchPipeline(data::Blocker* blocker, ChunkScoreFn scorer,
                             MatchPipelineConfig config)
    : blocker_(blocker),
      scorer_(std::move(scorer)),
      config_(std::move(config)) {
  PROMPTEM_CHECK(blocker_ != nullptr);
  PROMPTEM_CHECK(scorer_ != nullptr);
  PROMPTEM_CHECK(config_.chunk_size > 0);
  blocker_->Reset();
  chunk_.reserve(config_.chunk_size);
}

bool MatchPipeline::Step() {
  if (finalized_) return false;
  chunk_.clear();
  const size_t pulled = blocker_->NextChunk(config_.chunk_size, &chunk_);
  if (pulled == 0) {
    // Stream exhausted: heap order -> final (prob desc, left, right) order.
    std::sort(result_.top_matches.begin(), result_.top_matches.end(),
              BetterMatch);
    finalized_ = true;
    return false;
  }
  if (config_.gold_label) {
    for (auto& pair : chunk_) {
      pair.label = config_.gold_label(pair.left_index, pair.right_index);
    }
  }
  FoldChunk(chunk_, scorer_(chunk_));
  return true;
}

MatchPipelineResult MatchPipeline::Run() {
  while (Step()) {
  }
  return result_;
}

void MatchPipeline::FoldChunk(const std::vector<data::PairExample>& chunk,
                              const std::vector<ProbPair>& probs) {
  PROMPTEM_CHECK_MSG(probs.size() == chunk.size(),
                     "chunk scorer must return one ProbPair per candidate");
  ++result_.chunks;
  result_.candidates += chunk.size();
  result_.max_chunk = std::max(result_.max_chunk, chunk.size());
  auto& top = result_.top_matches;
  for (size_t i = 0; i < chunk.size(); ++i) {
    const data::PairExample& pair = chunk[i];
    const float pos = probs[i][1];
    const int pred = pos >= config_.threshold ? 1 : 0;
    if (pair.label == data::kUnlabeledLabel) {
      ++result_.unlabeled;
    } else {
      ++result_.labeled;
    }
    result_.metrics.Count(pred, pair.label);
    if (pred == 1) {
      ++result_.matches;
      if (config_.top_k_matches > 0) {
        const ScoredMatch match{pair.left_index, pair.right_index, pos};
        if (top.size() < config_.top_k_matches) {
          // Max-heap under BetterMatch-as-less: the worst retained match
          // sits at the front, ready to be displaced.
          top.push_back(match);
          std::push_heap(top.begin(), top.end(), BetterMatch);
        } else if (BetterMatch(match, top.front())) {
          std::pop_heap(top.begin(), top.end(), BetterMatch);
          top.back() = match;
          std::push_heap(top.begin(), top.end(), BetterMatch);
        }
      }
    }
    if (config_.on_scored) config_.on_scored(pair, probs[i]);
  }
}

ChunkScoreFn MakeClassifierChunkScorer(PairClassifier* model,
                                       const PairEncoder* encoder,
                                       const data::GemDataset* dataset) {
  PROMPTEM_CHECK(model != nullptr);
  PROMPTEM_CHECK(encoder != nullptr);
  PROMPTEM_CHECK(dataset != nullptr);
  return [model, encoder,
          dataset](const std::vector<data::PairExample>& chunk) {
    return ScoreBatch(model, encoder->EncodeAll(*dataset, chunk));
  };
}

data::GemDataset MakeTableDataset(std::string name,
                                  std::vector<data::Record> left,
                                  std::vector<data::Record> right) {
  data::GemDataset dataset;
  dataset.name = std::move(name);
  dataset.domain = "tables";
  dataset.left_table = std::move(left);
  dataset.right_table = std::move(right);
  return dataset;
}

MatchPipelineResult RunTableMatch(train::Matcher* matcher,
                                  const train::MatcherContext& ctx,
                                  data::Blocker* blocker,
                                  const MatchPipelineConfig& config) {
  PROMPTEM_CHECK(matcher != nullptr);
  PROMPTEM_CHECK(ctx.dataset != nullptr);
  ChunkScoreFn scorer =
      [matcher, &ctx](const std::vector<data::PairExample>& chunk) {
        std::vector<ProbPair> probs = matcher->ScoreProbs(ctx, chunk);
        PROMPTEM_CHECK(probs.size() == chunk.size());
        return probs;
      };
  MatchPipeline pipeline(blocker, std::move(scorer), config);
  return pipeline.Run();
}

}  // namespace promptem::em
