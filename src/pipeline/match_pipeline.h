#ifndef PROMPTEM_PIPELINE_MATCH_PIPELINE_H_
#define PROMPTEM_PIPELINE_MATCH_PIPELINE_H_

#include <functional>
#include <vector>

#include "data/blocking.h"
#include "promptem/encoding.h"
#include "promptem/metrics.h"
#include "promptem/promptem.h"
#include "promptem/scoring.h"
#include "train/registry.h"

namespace promptem::em {

/// The streaming end of the classic block -> score -> match workflow:
/// MatchPipeline pulls bounded candidate chunks from a data::Blocker,
/// scores each chunk through the batched engine, and folds the
/// predictions into incremental metrics and a bounded top-k match list.
/// Nothing proportional to the candidate count is ever materialized —
/// peak memory is O(chunk_size) plus the blocker's index — which is what
/// makes all-pairs-scale tables (ROADMAP item 2) feasible.
///
/// Determinism: the blocker's candidate stream is chunk-size invariant
/// and every chunk is scored by ScoreBatch, whose per-sample eval
/// forwards are independent and seed-fixed. The per-candidate
/// probabilities are therefore bitwise identical to one one-shot
/// ScoreBatch call over the drained candidate list, for any chunk size
/// and any PROMPTEM_NUM_THREADS (pipeline_test pins this).

/// One retained match: a candidate whose P(yes) cleared the threshold.
struct ScoredMatch {
  int left_index = 0;
  int right_index = 0;
  float pos_prob = 0.0f;
};

struct MatchPipelineConfig {
  /// Max candidates pulled and scored per chunk — the memory bound.
  size_t chunk_size = 4096;
  /// P(yes) >= threshold declares a match.
  float threshold = 0.5f;
  /// Highest-P(yes) matches retained (0 disables tracking). Selection is
  /// by (pos_prob desc, left asc, right asc) — a total order, so the
  /// retained set is chunk-size invariant.
  size_t top_k_matches = 10;
  /// Optional gold oracle (left, right) -> {0, 1, data::kUnlabeledLabel}.
  /// When set, each candidate is labeled before scoring and labeled
  /// candidates fold into MatchPipelineResult::metrics.
  std::function<int(int, int)> gold_label;
  /// Optional per-candidate observer, invoked in stream order with the
  /// candidate (gold label attached when gold_label is set) and its
  /// probabilities. Parity tests and exporters hook in here.
  std::function<void(const data::PairExample&, ProbPair)> on_scored;
};

struct MatchPipelineResult {
  size_t candidates = 0;  ///< total candidates scored
  size_t chunks = 0;      ///< chunks pulled from the blocker
  size_t matches = 0;     ///< predictions above threshold
  size_t labeled = 0;     ///< candidates with a gold label (gold_label set)
  size_t unlabeled = 0;   ///< candidates without one
  size_t max_chunk = 0;   ///< largest chunk actually scored (bound check)
  /// Incremental metrics over the labeled candidates only.
  Metrics metrics;
  /// Retained matches, sorted (pos_prob desc, left asc, right asc).
  std::vector<ScoredMatch> top_matches;
};

/// Scores one candidate chunk: slot i holds {P(no), P(yes)} for chunk[i].
using ChunkScoreFn =
    std::function<std::vector<ProbPair>(const std::vector<data::PairExample>&)>;

class MatchPipeline {
 public:
  /// `blocker` is Reset() on construction and must outlive the pipeline.
  MatchPipeline(data::Blocker* blocker, ChunkScoreFn scorer,
                MatchPipelineConfig config = {});

  /// Pulls and scores one chunk; false when the stream is exhausted.
  bool Step();

  /// Steps to exhaustion and returns the final fold.
  MatchPipelineResult Run();

  /// The fold so far (top_matches unsorted until the stream ends).
  const MatchPipelineResult& result() const { return result_; }

 private:
  void FoldChunk(const std::vector<data::PairExample>& chunk,
                 const std::vector<ProbPair>& probs);

  data::Blocker* blocker_;
  ChunkScoreFn scorer_;
  MatchPipelineConfig config_;
  MatchPipelineResult result_;
  std::vector<data::PairExample> chunk_;  // reused across Steps
  bool finalized_ = false;
};

/// The standard scorer: encodes each chunk against `dataset`'s tables via
/// `encoder` (whose per-record memo makes re-touched records free) and
/// runs the batched ScoreBatch engine. All three pointers must outlive
/// the returned function.
ChunkScoreFn MakeClassifierChunkScorer(PairClassifier* model,
                                       const PairEncoder* encoder,
                                       const data::GemDataset* dataset);

/// Wraps two raw tables in a pair-less GemDataset — the CLI's table-match
/// mode input shape (no gold pairs, just tables to block and score).
data::GemDataset MakeTableDataset(std::string name,
                                  std::vector<data::Record> left,
                                  std::vector<data::Record> right);

/// Table-match through the MatcherRegistry face: streams blocker chunks
/// through Matcher::ScoreProbs (ctx.dataset must hold the tables the
/// blocker indexes). Classifier-backed matchers yield calibrated P(yes),
/// so top_matches ranks by real confidence; matchers without a
/// probabilistic head degrade to {1,0}/{0,1} one-hots (candidate-order
/// ranking).
MatchPipelineResult RunTableMatch(train::Matcher* matcher,
                                  const train::MatcherContext& ctx,
                                  data::Blocker* blocker,
                                  const MatchPipelineConfig& config = {});

}  // namespace promptem::em

#endif  // PROMPTEM_PIPELINE_MATCH_PIPELINE_H_
