#ifndef PROMPTEM_NN_MODULE_H_
#define PROMPTEM_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "core/rng.h"
#include "tensor/tensor.h"

namespace promptem::nn {

/// A named trainable parameter.
struct NamedParam {
  std::string name;
  tensor::Tensor param;
};

/// Base class for layers and models. Subclasses register parameters and
/// child modules in their constructors; the base provides recursive
/// parameter collection, grad zeroing, train/eval mode, and counting.
///
/// Forward signatures are defined per subclass (no generic virtual
/// forward): layers operate on per-sample 2-D tensors.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and children, with dotted names
  /// ("encoder.layer0.attn.wq.weight").
  std::vector<NamedParam> NamedParameters() const;

  /// Flat list of parameter tensors.
  std::vector<tensor::Tensor> Parameters() const;

  /// Zeroes every parameter gradient.
  void ZeroGrad();

  /// Train/eval mode (controls dropout). Propagates to children.
  void SetTraining(bool training);
  bool training() const { return training_; }

  /// Explicit execution-state switches (PyTorch-style). Train() enables
  /// stochastic layers; Eval() makes forwards deterministic. Note the mode
  /// is independent of grad mode: MC-Dropout runs with Train() semantics
  /// under a NoGradGuard.
  void Train() { SetTraining(true); }
  void Eval() { SetTraining(false); }

  /// Total scalar parameter count.
  int64_t NumParams() const;

 protected:
  /// Registers a trainable tensor under `name`; sets requires_grad.
  tensor::Tensor RegisterParameter(const std::string& name,
                                   tensor::Tensor param);

  /// Registers a child module (non-owning; children are members of the
  /// subclass and must outlive it).
  void RegisterModule(const std::string& name, Module* child);

 private:
  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>* out) const;

  std::vector<NamedParam> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

/// Xavier/Glorot uniform initialization for a [fan_out, fan_in] matrix.
void XavierInit(tensor::Tensor* t, core::Rng* rng);

/// Gaussian init with the given stddev (embedding tables, prompts).
void NormalInit(tensor::Tensor* t, float stddev, core::Rng* rng);

}  // namespace promptem::nn

#endif  // PROMPTEM_NN_MODULE_H_
