#include "nn/attention.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <numeric>

namespace promptem::nn {

namespace ops = tensor::ops;

namespace {

/// Program-wide escape hatch for A/B runs: PROMPTEM_UNFUSED_ATTENTION=1
/// starts every attention module on the unfused reference path.
bool DefaultUseFused() {
  const char* env = std::getenv("PROMPTEM_UNFUSED_ATTENTION");
  return env == nullptr || std::strcmp(env, "1") != 0;
}

}  // namespace

MultiHeadSelfAttention::MultiHeadSelfAttention(int dim, int num_heads,
                                               float dropout, core::Rng* rng)
    : dim_(dim),
      num_heads_(num_heads),
      head_dim_(dim / num_heads),
      use_fused_(DefaultUseFused()),
      wq_(dim, dim, rng),
      wk_(dim, dim, rng),
      wv_(dim, dim, rng),
      wo_(dim, dim, rng),
      attn_dropout_(dropout) {
  PROMPTEM_CHECK_MSG(dim % num_heads == 0, "dim must divide by heads");
  RegisterModule("wq", &wq_);
  RegisterModule("wk", &wk_);
  RegisterModule("wv", &wv_);
  RegisterModule("wo", &wo_);
  RegisterModule("attn_dropout", &attn_dropout_);
}

tensor::Tensor MultiHeadSelfAttention::Forward(const tensor::Tensor& x,
                                               core::Rng* rng) const {
  PROMPTEM_CHECK(x.ndim() == 2 && x.dim(1) == dim_);
  tensor::Tensor q = wq_.Forward(x);
  tensor::Tensor k = wk_.Forward(x);
  tensor::Tensor v = wv_.Forward(x);

  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  tensor::Tensor merged;
  if (use_fused_) {
    // DropoutLayer applies dropout only in training mode; mirror that
    // here so eval forwards are deterministic and draw nothing from rng.
    const float p = attn_dropout_.training() ? attn_dropout_.p() : 0.0f;
    merged = ops::FusedSdpa(q, k, v, num_heads_, scale, p, rng);
  } else {
    // Unfused parity reference: the original per-op composition.
    std::vector<tensor::Tensor> head_outputs;
    head_outputs.reserve(num_heads_);
    for (int h = 0; h < num_heads_; ++h) {
      std::vector<int> cols(head_dim_);
      std::iota(cols.begin(), cols.end(), h * head_dim_);
      tensor::Tensor qh = ops::SelectCols(q, cols);
      tensor::Tensor kh = ops::SelectCols(k, cols);
      tensor::Tensor vh = ops::SelectCols(v, cols);
      tensor::Tensor scores =
          ops::Scale(ops::MatMul(qh, kh, false, /*trans_b=*/true), scale);
      tensor::Tensor attn = ops::Softmax(scores);
      attn = attn_dropout_.Forward(attn, rng);
      head_outputs.push_back(ops::MatMul(attn, vh));
    }
    merged = ops::ConcatCols(head_outputs);
  }
  return wo_.Forward(merged);
}

}  // namespace promptem::nn
