#ifndef PROMPTEM_NN_OPTIMIZER_H_
#define PROMPTEM_NN_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"

namespace promptem::nn {

/// AdamW configuration (paper defaults: lr 2e-5 for the LM; heads use
/// larger rates).
struct AdamWConfig {
  float lr = 2e-5f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.01f;
  /// Clips the global gradient norm before the step; <= 0 disables.
  float max_grad_norm = 1.0f;
};

/// Decoupled-weight-decay Adam (Loshchilov & Hutter). Holds moment state
/// per parameter; parameters are captured at construction.
class AdamW {
 public:
  AdamW(std::vector<tensor::Tensor> params, AdamWConfig config);

  /// Applies one update from the accumulated gradients, then leaves grads
  /// in place (call ZeroGrad afterwards — typically via Module::ZeroGrad).
  void Step();

  /// Zeroes every tracked parameter's gradient.
  void ZeroGrad();

  /// Adjusts the learning rate (for warmup/decay schedules).
  void set_lr(float lr) { config_.lr = lr; }
  float lr() const { return config_.lr; }

  int64_t step_count() const { return step_count_; }

 private:
  std::vector<tensor::Tensor> params_;
  AdamWConfig config_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
  int64_t step_count_ = 0;
};

/// Linear warmup for `warmup_steps`, then constant. Returns the lr to use
/// at `step` (1-based).
float WarmupLr(float base_lr, int64_t step, int64_t warmup_steps);

}  // namespace promptem::nn

#endif  // PROMPTEM_NN_OPTIMIZER_H_
