#include "nn/optimizer.h"

#include <cmath>

#include "core/status.h"

namespace promptem::nn {

AdamW::AdamW(std::vector<tensor::Tensor> params, AdamWConfig config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.numel(), 0.0f);
    v_.emplace_back(p.numel(), 0.0f);
  }
}

void AdamW::Step() {
  ++step_count_;

  // Global gradient-norm clipping.
  float clip_scale = 1.0f;
  if (config_.max_grad_norm > 0.0f) {
    double sq = 0.0;
    for (auto& p : params_) {
      if (!p.has_grad()) continue;
      const float* g = p.grad();
      for (int64_t i = 0; i < p.numel(); ++i) {
        sq += static_cast<double>(g[i]) * g[i];
      }
    }
    const double norm = std::sqrt(sq);
    if (norm > config_.max_grad_norm) {
      clip_scale = static_cast<float>(config_.max_grad_norm / (norm + 1e-12));
    }
  }

  const float bias1 =
      1.0f - std::pow(config_.beta1, static_cast<float>(step_count_));
  const float bias2 =
      1.0f - std::pow(config_.beta2, static_cast<float>(step_count_));

  for (size_t pi = 0; pi < params_.size(); ++pi) {
    tensor::Tensor& p = params_[pi];
    if (!p.has_grad()) continue;
    float* w = p.data();
    const float* g = p.grad();
    std::vector<float>& m = m_[pi];
    std::vector<float>& v = v_[pi];
    for (int64_t i = 0; i < p.numel(); ++i) {
      const float gi = g[i] * clip_scale;
      m[i] = config_.beta1 * m[i] + (1.0f - config_.beta1) * gi;
      v[i] = config_.beta2 * v[i] + (1.0f - config_.beta2) * gi * gi;
      const float mhat = m[i] / bias1;
      const float vhat = v[i] / bias2;
      w[i] -= config_.lr *
              (mhat / (std::sqrt(vhat) + config_.eps) +
               config_.weight_decay * w[i]);
    }
  }
}

void AdamW::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

float WarmupLr(float base_lr, int64_t step, int64_t warmup_steps) {
  PROMPTEM_CHECK(step >= 1);
  if (warmup_steps <= 0 || step >= warmup_steps) return base_lr;
  return base_lr * static_cast<float>(step) /
         static_cast<float>(warmup_steps);
}

}  // namespace promptem::nn
