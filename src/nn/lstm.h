#ifndef PROMPTEM_NN_LSTM_H_
#define PROMPTEM_NN_LSTM_H_

#include "nn/layers.h"

namespace promptem::nn {

/// Single-layer unidirectional LSTM unrolled over a [T, in] sequence.
/// Gate order in the packed 4H projections: input, forget, cell, output.
class Lstm : public Module {
 public:
  Lstm(int input_dim, int hidden_dim, core::Rng* rng);

  /// x: [T, in] -> hidden states [T, H].
  tensor::Tensor Forward(const tensor::Tensor& x) const;

  int hidden_dim() const { return hidden_dim_; }

 private:
  int input_dim_;
  int hidden_dim_;
  Linear wx_;  // in -> 4H
  Linear wh_;  // H -> 4H (no bias; wx_ carries it)
};

/// Bidirectional LSTM: forward and backward passes concatenated -> [T, 2H].
/// Used by P-tuning to contextualize continuous prompt tokens (paper §3.1)
/// and by the DeepMatcher baseline's attribute aggregator.
class BiLstm : public Module {
 public:
  BiLstm(int input_dim, int hidden_dim, core::Rng* rng);

  tensor::Tensor Forward(const tensor::Tensor& x) const;

  int output_dim() const { return 2 * forward_.hidden_dim(); }

 private:
  Lstm forward_;
  Lstm backward_;
};

}  // namespace promptem::nn

#endif  // PROMPTEM_NN_LSTM_H_
