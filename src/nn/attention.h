#ifndef PROMPTEM_NN_ATTENTION_H_
#define PROMPTEM_NN_ATTENTION_H_

#include <memory>

#include "nn/layers.h"

namespace promptem::nn {

/// Multi-head self-attention over one unpadded sequence [T, D].
/// Per-sample sequences carry no padding, so no attention mask is needed.
///
/// The attention core runs through the fused kernel
/// (tensor::ops::FusedSdpa) by default: strided per-head views over the
/// packed Q/K/V projections, one streaming-softmax pass per (head,
/// row-tile), a single hand-written backward, and arena-backed graph-free
/// eval. set_use_fused(false) — or PROMPTEM_UNFUSED_ATTENTION=1 in the
/// environment — restores the original per-op composition (SelectCols /
/// MatMul / Softmax / Dropout / ConcatCols), kept as the parity
/// reference; both paths consume identical dropout Rng streams, so masks
/// are bit-identical across them.
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int dim, int num_heads, float dropout,
                         core::Rng* rng);

  /// x: [T, D] -> [T, D].
  tensor::Tensor Forward(const tensor::Tensor& x, core::Rng* rng) const;

  int num_heads() const { return num_heads_; }

  /// Selects the fused kernel (default) or the unfused reference path.
  void set_use_fused(bool use_fused) { use_fused_ = use_fused; }
  bool use_fused() const { return use_fused_; }

 private:
  int dim_;
  int num_heads_;
  int head_dim_;
  bool use_fused_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
  DropoutLayer attn_dropout_;
};

}  // namespace promptem::nn

#endif  // PROMPTEM_NN_ATTENTION_H_
