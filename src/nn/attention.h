#ifndef PROMPTEM_NN_ATTENTION_H_
#define PROMPTEM_NN_ATTENTION_H_

#include <memory>

#include "nn/layers.h"

namespace promptem::nn {

/// Multi-head self-attention over one unpadded sequence [T, D].
/// Per-sample sequences carry no padding, so no attention mask is needed.
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int dim, int num_heads, float dropout,
                         core::Rng* rng);

  /// x: [T, D] -> [T, D].
  tensor::Tensor Forward(const tensor::Tensor& x, core::Rng* rng) const;

  int num_heads() const { return num_heads_; }

 private:
  int dim_;
  int num_heads_;
  int head_dim_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
  DropoutLayer attn_dropout_;
};

}  // namespace promptem::nn

#endif  // PROMPTEM_NN_ATTENTION_H_
