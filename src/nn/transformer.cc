#include "nn/transformer.h"

#include "text/vocab.h"

#include <map>
#include <numeric>

namespace promptem::nn {

namespace ops = tensor::ops;

TransformerEncoderLayer::TransformerEncoderLayer(
    const TransformerConfig& config, core::Rng* rng)
    : attn_(config.dim, config.num_heads, config.dropout, rng),
      ffn1_(config.dim, config.ffn_dim, rng),
      ffn2_(config.ffn_dim, config.dim, rng),
      ln1_(config.dim),
      ln2_(config.dim),
      dropout_(config.dropout) {
  RegisterModule("attn", &attn_);
  RegisterModule("ffn1", &ffn1_);
  RegisterModule("ffn2", &ffn2_);
  RegisterModule("ln1", &ln1_);
  RegisterModule("ln2", &ln2_);
  RegisterModule("dropout", &dropout_);
}

tensor::Tensor TransformerEncoderLayer::Forward(const tensor::Tensor& x,
                                                core::Rng* rng) const {
  tensor::Tensor attn_out = dropout_.Forward(attn_.Forward(x, rng), rng);
  tensor::Tensor h = ln1_.Forward(ops::Add(x, attn_out));
  tensor::Tensor ffn = ffn2_.Forward(ops::Gelu(ffn1_.Forward(h)));
  ffn = dropout_.Forward(ffn, rng);
  return ln2_.Forward(ops::Add(h, ffn));
}

TransformerEncoder::TransformerEncoder(const TransformerConfig& config,
                                       core::Rng* rng)
    : config_(config),
      token_embedding_(config.vocab_size, config.dim, rng),
      position_embedding_(config.max_seq_len, config.dim, rng),
      dup_embedding_(2, config.dim, rng),
      embed_ln_(config.dim),
      embed_dropout_(config.dropout) {
  PROMPTEM_CHECK(config.vocab_size > 0);
  RegisterModule("tok", &token_embedding_);
  RegisterModule("pos", &position_embedding_);
  RegisterModule("dup", &dup_embedding_);
  RegisterModule("embed_ln", &embed_ln_);
  RegisterModule("embed_dropout", &embed_dropout_);
  for (int i = 0; i < config.num_layers; ++i) {
    layers_.push_back(
        std::make_unique<TransformerEncoderLayer>(config, rng));
    RegisterModule("layer" + std::to_string(i), layers_.back().get());
  }
  mlm_bias_ = RegisterParameter(
      "mlm_bias", tensor::Tensor::Zeros({config.vocab_size}));
}

std::vector<int> TransformerEncoder::DuplicateFlags(
    const std::vector<int>& ids) {
  std::map<int, int> counts;
  for (int id : ids) ++counts[id];
  std::vector<int> flags(ids.size(), 0);
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] >= text::SpecialTokens::kCount && counts[ids[i]] >= 2) {
      flags[i] = 1;
    }
  }
  return flags;
}

tensor::Tensor TransformerEncoder::EmbedRows(
    const tensor::Tensor& rows, const std::vector<int>& dup_flags,
    core::Rng* rng) const {
  PROMPTEM_CHECK(rows.ndim() == 2 && rows.dim(1) == config_.dim);
  const int t = rows.dim(0);
  PROMPTEM_CHECK_MSG(t <= config_.max_seq_len,
                     "sequence exceeds max_seq_len");
  std::vector<int> positions(t);
  std::iota(positions.begin(), positions.end(), 0);
  tensor::Tensor emb = ops::Add(rows, position_embedding_.Forward(positions));
  if (!dup_flags.empty()) {
    PROMPTEM_CHECK(static_cast<int>(dup_flags.size()) == t);
    emb = ops::Add(emb, dup_embedding_.Forward(dup_flags));
  }
  emb = embed_ln_.Forward(emb);
  return embed_dropout_.Forward(emb, rng);
}

tensor::Tensor TransformerEncoder::Embed(const std::vector<int>& ids,
                                         core::Rng* rng) const {
  return EmbedRows(token_embedding_.Forward(ids), DuplicateFlags(ids), rng);
}

tensor::Tensor TransformerEncoder::EncodeEmbedded(
    const tensor::Tensor& embedded, core::Rng* rng) const {
  tensor::Tensor h = embedded;
  for (const auto& layer : layers_) h = layer->Forward(h, rng);
  return h;
}

tensor::Tensor TransformerEncoder::Encode(const std::vector<int>& ids,
                                          core::Rng* rng) const {
  return EncodeEmbedded(Embed(ids, rng), rng);
}

tensor::Tensor TransformerEncoder::MlmLogits(
    const tensor::Tensor& hidden, const std::vector<int>& positions) const {
  // NOTE(execution-modes): the tied MLM head multiplies against the full
  // embedding table, which is the most allocation-heavy step of a prompt
  // forward. Rows are selected *before* the projection so eval scoring
  // only pays for the [MASK] positions, and under a NoGradGuard the
  // [positions, vocab] logits buffer comes from the thread's ScratchArena
  // rather than the heap (see DESIGN.md "Execution modes").
  tensor::Tensor selected = ops::SelectRows(hidden, positions);
  tensor::Tensor logits = ops::MatMul(selected, token_embedding_.table(),
                                      false, /*trans_b=*/true);
  return ops::AddBias(logits, mlm_bias_);
}

}  // namespace promptem::nn
