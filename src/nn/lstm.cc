#include "nn/lstm.h"

namespace promptem::nn {

namespace ops = tensor::ops;

Lstm::Lstm(int input_dim, int hidden_dim, core::Rng* rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      wx_(input_dim, 4 * hidden_dim, rng),
      wh_(hidden_dim, 4 * hidden_dim, rng, /*bias=*/false) {
  RegisterModule("wx", &wx_);
  RegisterModule("wh", &wh_);
}

tensor::Tensor Lstm::Forward(const tensor::Tensor& x) const {
  PROMPTEM_CHECK(x.ndim() == 2 && x.dim(1) == input_dim_);
  const int t_len = x.dim(0);
  const int h = hidden_dim_;

  // Project the whole input once: [T, 4H].
  tensor::Tensor xproj = wx_.Forward(x);

  tensor::Tensor h_prev = tensor::Tensor::Zeros({1, h});
  tensor::Tensor c_prev = tensor::Tensor::Zeros({1, h});
  std::vector<tensor::Tensor> outputs;
  outputs.reserve(t_len);
  for (int t = 0; t < t_len; ++t) {
    tensor::Tensor gates = ops::Add(ops::SelectRows(xproj, {t}),
                                    wh_.Forward(h_prev));
    // The four gates are contiguous column blocks of the packed [1, 4H]
    // pre-activation; slice them as strided views (value- and
    // gradient-identical to the former SelectCols gathers).
    tensor::Tensor i_gate = ops::Sigmoid(ops::SliceCols(gates, 0, h));
    tensor::Tensor f_gate = ops::Sigmoid(ops::SliceCols(gates, h, h));
    tensor::Tensor g_gate = ops::Tanh(ops::SliceCols(gates, 2 * h, h));
    tensor::Tensor o_gate = ops::Sigmoid(ops::SliceCols(gates, 3 * h, h));
    tensor::Tensor c_new = ops::Add(ops::Mul(f_gate, c_prev),
                                    ops::Mul(i_gate, g_gate));
    tensor::Tensor h_new = ops::Mul(o_gate, ops::Tanh(c_new));
    outputs.push_back(h_new);
    h_prev = h_new;
    c_prev = c_new;
  }
  return ops::ConcatRows(outputs);
}

BiLstm::BiLstm(int input_dim, int hidden_dim, core::Rng* rng)
    : forward_(input_dim, hidden_dim, rng),
      backward_(input_dim, hidden_dim, rng) {
  RegisterModule("fwd", &forward_);
  RegisterModule("bwd", &backward_);
}

tensor::Tensor BiLstm::Forward(const tensor::Tensor& x) const {
  const int t_len = x.dim(0);
  std::vector<int> reversed(t_len);
  for (int i = 0; i < t_len; ++i) reversed[i] = t_len - 1 - i;

  tensor::Tensor fwd_out = forward_.Forward(x);
  tensor::Tensor bwd_out =
      backward_.Forward(ops::SelectRows(x, reversed));
  // Un-reverse the backward pass so both directions align per position.
  bwd_out = ops::SelectRows(bwd_out, reversed);
  return ops::ConcatCols({fwd_out, bwd_out});
}

}  // namespace promptem::nn
