#ifndef PROMPTEM_NN_TRANSFORMER_H_
#define PROMPTEM_NN_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "nn/attention.h"
#include "nn/layers.h"

namespace promptem::nn {

/// Hyper-parameters of the transformer encoder (the "LM backbone").
/// Defaults are sized for single-core CPU training; raise for fidelity.
struct TransformerConfig {
  int vocab_size = 0;      ///< set from the tokenizer
  int max_seq_len = 160;   ///< positions available
  int dim = 64;            ///< hidden size
  int num_layers = 2;
  int num_heads = 4;
  int ffn_dim = 128;       ///< inner FFN width
  float dropout = 0.1f;
};

/// One post-LN encoder block: x = LN(x + Attn(x)); x = LN(x + FFN(x)).
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(const TransformerConfig& config, core::Rng* rng);

  tensor::Tensor Forward(const tensor::Tensor& x, core::Rng* rng) const;

 private:
  MultiHeadSelfAttention attn_;
  Linear ffn1_;
  Linear ffn2_;
  LayerNormLayer ln1_;
  LayerNormLayer ln2_;
  DropoutLayer dropout_;
};

/// BERT-style encoder: token + position embeddings, N blocks, and a tied
/// masked-LM head (logits = h @ E^T + vocab bias). The tied head is what
/// lets prompt-tuning reuse pre-trained token knowledge at [MASK].
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(const TransformerConfig& config, core::Rng* rng);

  /// Embeds token ids (with positions and duplicate markers) -> [T, D].
  /// Exposed separately so P-tuning can splice trainable prompt embeddings
  /// into the input.
  tensor::Tensor Embed(const std::vector<int>& ids, core::Rng* rng) const;

  /// Adds position embeddings, duplicate-marker embeddings, embedding
  /// layer-norm, and dropout to externally assembled token rows [T, D].
  /// P-tuning uses this to splice trainable prompt embeddings into the
  /// input before positions are added. `dup_flags` has one 0/1 entry per
  /// row (1 = this token id occurs more than once in the sequence); pass
  /// an empty vector to skip the marker.
  tensor::Tensor EmbedRows(const tensor::Tensor& rows,
                           const std::vector<int>& dup_flags,
                           core::Rng* rng) const;

  /// Duplicate-marker flags for a token-id sequence: flag[i] = 1 when
  /// ids[i] appears at least twice (special tokens always 0). This learned
  /// input feature is the small-scale stand-in for a large pre-trained
  /// model's innate token-overlap awareness (DESIGN.md §1): it marks
  /// surface overlap between the two record segments of a pair input.
  /// Single-digit tokens duplicate spuriously in digit-heavy records, so
  /// the marker is uninformative exactly where the paper observes LMs
  /// failing on numeric attributes.
  static std::vector<int> DuplicateFlags(const std::vector<int>& ids);

  /// Runs the encoder blocks over already-embedded input [T, D] -> [T, D].
  tensor::Tensor EncodeEmbedded(const tensor::Tensor& embedded,
                                core::Rng* rng) const;

  /// Embed + encode convenience.
  tensor::Tensor Encode(const std::vector<int>& ids, core::Rng* rng) const;

  /// Tied MLM logits for selected positions: [positions.size(), vocab].
  tensor::Tensor MlmLogits(const tensor::Tensor& hidden,
                           const std::vector<int>& positions) const;

  const TransformerConfig& config() const { return config_; }
  const Embedding& token_embedding() const { return token_embedding_; }

 private:
  TransformerConfig config_;
  Embedding token_embedding_;
  Embedding position_embedding_;
  Embedding dup_embedding_;  ///< [2, D]: row 1 marks duplicated tokens
  LayerNormLayer embed_ln_;
  DropoutLayer embed_dropout_;
  std::vector<std::unique_ptr<TransformerEncoderLayer>> layers_;
  tensor::Tensor mlm_bias_;
};

}  // namespace promptem::nn

#endif  // PROMPTEM_NN_TRANSFORMER_H_
