#ifndef PROMPTEM_NN_SERIALIZE_H_
#define PROMPTEM_NN_SERIALIZE_H_

#include <string>

#include "core/status.h"
#include "nn/module.h"

namespace promptem::nn {

/// Writes all named parameters of `module` to a binary checkpoint.
/// Format v2: magic "PEMCKPT2", u32 endianness tag (0x01020304), u32
/// count, then per parameter: u32 name_len, name bytes, u32 ndim,
/// u32 dims..., float32 data; finally a u64 FNV-1a hash of every
/// preceding byte. The save is atomic: it writes "<path>.tmp" and
/// renames it over `path` only after the full file (checksum included)
/// is flushed, so an interrupted save never leaves a partial checkpoint
/// at the target path.
core::Status SaveCheckpoint(const Module& module, const std::string& path);

/// Loads a checkpoint into `module`, treating the file as untrusted
/// input: every length field is bounds-checked against the bytes left in
/// the file before anything is allocated, truncation and trailing
/// garbage are detected, and (v2) the checksum catches byte corruption.
/// Legacy v1 files ("PEMCKPT1": no endian tag or checksum) still load.
///
/// strict=true: every stored name must exist in the module with an
/// identical shape and every module parameter must be matched.
/// strict=false: unknown names and shape-mismatched entries are skipped
/// (the latter with a logged warning); unmatched module parameters keep
/// their current values. Structural corruption is an error either way.
core::Status LoadCheckpoint(Module* module, const std::string& path,
                            bool strict = true);

/// In-memory deep copy of parameters from one module into another with the
/// same architecture (used to clone the pre-trained LM into each method's
/// model, and the teacher into the student).
core::Status CopyParameters(const Module& source, Module* target);

/// Content fingerprint of a module: FNV-1a over every parameter's dotted
/// name, shape, and float32 bytes in NamedParameters order. Two modules
/// with identical architecture and weights fingerprint identically —
/// across processes, so deterministically-initialized models are
/// restart-stable and persisted caches can key embeddings on the model
/// that produced them. Any weight update changes the fingerprint.
uint64_t ParameterFingerprint(const Module& module);

}  // namespace promptem::nn

#endif  // PROMPTEM_NN_SERIALIZE_H_
