#ifndef PROMPTEM_NN_SERIALIZE_H_
#define PROMPTEM_NN_SERIALIZE_H_

#include <string>

#include "core/status.h"
#include "nn/module.h"

namespace promptem::nn {

/// Writes all named parameters of `module` to a binary checkpoint.
/// Format: magic "PEMCKPT1", u32 count, then per parameter:
/// u32 name_len, name bytes, u32 ndim, u32 dims..., float32 data.
core::Status SaveCheckpoint(const Module& module, const std::string& path);

/// Loads a checkpoint into `module`. Every stored name must exist in the
/// module with an identical shape; unmatched module parameters keep their
/// current values (strict=false) or make the load fail (strict=true).
core::Status LoadCheckpoint(Module* module, const std::string& path,
                            bool strict = true);

/// In-memory deep copy of parameters from one module into another with the
/// same architecture (used to clone the pre-trained LM into each method's
/// model, and the teacher into the student).
core::Status CopyParameters(const Module& source, Module* target);

}  // namespace promptem::nn

#endif  // PROMPTEM_NN_SERIALIZE_H_
