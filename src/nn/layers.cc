#include "nn/layers.h"

#include <memory>

namespace promptem::nn {

namespace ops = tensor::ops;

Linear::Linear(int in_features, int out_features, core::Rng* rng, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias) {
  tensor::Tensor w = tensor::Tensor::Zeros({out_features, in_features});
  XavierInit(&w, rng);
  weight_ = RegisterParameter("weight", w);
  if (has_bias_) {
    bias_ = RegisterParameter("bias", tensor::Tensor::Zeros({out_features}));
  }
}

tensor::Tensor Linear::Forward(const tensor::Tensor& x) const {
  PROMPTEM_CHECK(x.ndim() == 2 && x.dim(1) == in_features_);
  if (!training() && tensor::quant::Int8EvalActive()) {
    return QuantizedForward(x);
  }
  tensor::Tensor y = ops::MatMul(x, weight_, false, /*trans_b=*/true);
  if (has_bias_) y = ops::AddBias(y, bias_);
  return y;
}

tensor::Tensor Linear::QuantizedForward(const tensor::Tensor& x) const {
  const int rows = x.dim(0);
  const tensor::quant::QuantizedWeight& qw =
      qcache_.Get(weight_.data(), out_features_, in_features_);
  tensor::Tensor y = tensor::Tensor::Zeros({rows, out_features_});
  tensor::quant::Int8LinearForward(x.data(), rows, in_features_, qw,
                                   has_bias_ ? bias_.data() : nullptr,
                                   y.data());
  return y;
}

Embedding::Embedding(int vocab_size, int dim, core::Rng* rng)
    : vocab_size_(vocab_size), dim_(dim) {
  tensor::Tensor t = tensor::Tensor::Zeros({vocab_size, dim});
  NormalInit(&t, 0.02f, rng);
  table_ = RegisterParameter("table", t);
}

tensor::Tensor Embedding::Forward(const std::vector<int>& ids) const {
  return ops::EmbeddingLookup(table_, ids);
}

LayerNormLayer::LayerNormLayer(int dim) {
  gamma_ = RegisterParameter("gamma", tensor::Tensor::Full({dim}, 1.0f));
  beta_ = RegisterParameter("beta", tensor::Tensor::Zeros({dim}));
}

tensor::Tensor LayerNormLayer::Forward(const tensor::Tensor& x) const {
  return ops::LayerNorm(x, gamma_, beta_);
}

tensor::Tensor DropoutLayer::Forward(const tensor::Tensor& x,
                                     core::Rng* rng) const {
  if (!training() || p_ == 0.0f) return x;
  return ops::Dropout(x, p_, rng);
}

Mlp::Mlp(const std::vector<int>& dims, core::Rng* rng, float dropout)
    : dropout_(dropout) {
  PROMPTEM_CHECK(dims.size() >= 2);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    RegisterModule("fc" + std::to_string(i), layers_.back().get());
  }
  RegisterModule("dropout", &dropout_);
}

tensor::Tensor Mlp::Forward(const tensor::Tensor& x, core::Rng* rng) const {
  tensor::Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) {
      h = ops::Relu(h);
      h = dropout_.Forward(h, rng);
    }
  }
  return h;
}

}  // namespace promptem::nn
