#ifndef PROMPTEM_NN_LAYERS_H_
#define PROMPTEM_NN_LAYERS_H_

#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"
#include "tensor/quant.h"

namespace promptem::nn {

/// Affine layer: y = x @ W^T + b, weight stored [out, in].
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, core::Rng* rng,
         bool bias = true);

  /// x: [rows, in] -> [rows, out]. In eval mode with the int8
  /// quantization path enabled (tensor/quant.h: --quantize int8 and a
  /// graph-free pass), runs x through the dynamically quantized kernel
  /// against a cached per-output-channel int8 copy of the weight;
  /// training and MC-dropout passes always take the f32 op.
  tensor::Tensor Forward(const tensor::Tensor& x) const;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  const tensor::Tensor& weight() const { return weight_; }
  const tensor::Tensor& bias() const { return bias_; }

 private:
  tensor::Tensor QuantizedForward(const tensor::Tensor& x) const;

  int in_features_;
  int out_features_;
  tensor::Tensor weight_;
  tensor::Tensor bias_;
  bool has_bias_;
  /// Lazily built int8 weight image, invalidated through the global
  /// quant generation (bumped when parameters may have changed).
  mutable tensor::quant::QuantizedWeightCache qcache_;
};

/// Token embedding table [vocab, dim].
class Embedding : public Module {
 public:
  Embedding(int vocab_size, int dim, core::Rng* rng);

  /// ids -> [ids.size(), dim].
  tensor::Tensor Forward(const std::vector<int>& ids) const;

  int vocab_size() const { return vocab_size_; }
  int dim() const { return dim_; }
  const tensor::Tensor& table() const { return table_; }

 private:
  int vocab_size_;
  int dim_;
  tensor::Tensor table_;
};

/// Learned layer normalization over the last dimension.
class LayerNormLayer : public Module {
 public:
  explicit LayerNormLayer(int dim);

  tensor::Tensor Forward(const tensor::Tensor& x) const;

 private:
  tensor::Tensor gamma_;
  tensor::Tensor beta_;
};

/// Inverted dropout; active only in training mode. MC-Dropout keeps the
/// module in training mode at inference to draw stochastic passes.
class DropoutLayer : public Module {
 public:
  explicit DropoutLayer(float p) : p_(p) {}

  tensor::Tensor Forward(const tensor::Tensor& x, core::Rng* rng) const;

  float p() const { return p_; }

 private:
  float p_;
};

/// Two-layer perceptron head: Linear -> activation -> ... -> Linear.
/// Hidden layers use ReLU.
class Mlp : public Module {
 public:
  /// dims = {in, hidden..., out}.
  Mlp(const std::vector<int>& dims, core::Rng* rng, float dropout = 0.0f);

  tensor::Tensor Forward(const tensor::Tensor& x, core::Rng* rng) const;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  DropoutLayer dropout_;
};

}  // namespace promptem::nn

#endif  // PROMPTEM_NN_LAYERS_H_
