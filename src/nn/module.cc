#include "nn/module.h"

#include <cmath>

namespace promptem::nn {

std::vector<NamedParam> Module::NamedParameters() const {
  std::vector<NamedParam> out;
  CollectParameters("", &out);
  return out;
}

std::vector<tensor::Tensor> Module::Parameters() const {
  std::vector<tensor::Tensor> out;
  for (const auto& np : NamedParameters()) out.push_back(np.param);
  return out;
}

void Module::ZeroGrad() {
  for (auto& p : Parameters()) p.ZeroGrad();
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

int64_t Module::NumParams() const {
  int64_t n = 0;
  for (const auto& p : Parameters()) n += p.numel();
  return n;
}

tensor::Tensor Module::RegisterParameter(const std::string& name,
                                         tensor::Tensor param) {
  param.set_requires_grad(true);
  params_.push_back({name, param});
  return param;
}

void Module::RegisterModule(const std::string& name, Module* child) {
  PROMPTEM_CHECK(child != nullptr);
  children_.emplace_back(name, child);
}

void Module::CollectParameters(const std::string& prefix,
                               std::vector<NamedParam>* out) const {
  for (const auto& np : params_) {
    out->push_back({prefix.empty() ? np.name : prefix + "." + np.name,
                    np.param});
  }
  for (const auto& [name, child] : children_) {
    child->CollectParameters(prefix.empty() ? name : prefix + "." + name,
                             out);
  }
}

void XavierInit(tensor::Tensor* t, core::Rng* rng) {
  PROMPTEM_CHECK(t->ndim() == 2);
  const float fan_out = static_cast<float>(t->dim(0));
  const float fan_in = static_cast<float>(t->dim(1));
  const float bound = std::sqrt(6.0f / (fan_in + fan_out));
  float* p = t->data();
  for (int64_t i = 0; i < t->numel(); ++i) {
    p[i] = rng->Uniform(-bound, bound);
  }
}

void NormalInit(tensor::Tensor* t, float stddev, core::Rng* rng) {
  float* p = t->data();
  for (int64_t i = 0; i < t->numel(); ++i) {
    p[i] = rng->Gaussian(0.0f, stddev);
  }
}

}  // namespace promptem::nn
