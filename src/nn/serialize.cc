#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <set>

#include "core/hashing.h"
#include "core/log.h"
#include "core/string_util.h"

namespace promptem::nn {

namespace {

// Format v2 ("PEMCKPT2"): magic, u32 endianness tag, u32 entry count,
// entries (u32 name_len, name, u32 ndim, u32 dims..., float32 data),
// u64 FNV-1a hash of every preceding byte. Readers treat checkpoints as
// adversarial input: every length is bounds-checked against the bytes
// actually remaining in the file before any allocation, and the trailing
// hash catches bit flips that leave the structure parseable. v1 files
// ("PEMCKPT1": no endian tag, no hash) are still readable.
constexpr char kMagicV1[8] = {'P', 'E', 'M', 'C', 'K', 'P', 'T', '1'};
constexpr char kMagicV2[8] = {'P', 'E', 'M', 'C', 'K', 'P', 'T', '2'};
constexpr uint32_t kEndianTag = 0x01020304u;
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;
constexpr uint32_t kMaxNameLen = 4096;
constexpr uint32_t kMaxNdim = 8;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void FnvMix(uint64_t* hash, const void* data, size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    *hash ^= bytes[i];
    *hash *= kFnvPrime;
  }
}

/// Buffered writer that hashes every byte it emits.
class HashingWriter {
 public:
  explicit HashingWriter(std::FILE* f) : f_(f) {}

  bool Write(const void* data, size_t n) {
    if (n == 0) return true;
    FnvMix(&hash_, data, n);
    return std::fwrite(data, 1, n, f_) == n;
  }
  bool WriteU32(uint32_t v) { return Write(&v, sizeof(v)); }
  uint64_t hash() const { return hash_; }

 private:
  std::FILE* f_;
  uint64_t hash_ = kFnvOffset;
};

/// Reader that tracks the bytes remaining in the file (so element counts
/// can be validated before allocation) and hashes what it consumes.
class HashingReader {
 public:
  HashingReader(std::FILE* f, uint64_t remaining)
      : f_(f), remaining_(remaining) {}

  bool Read(void* data, size_t n) {
    if (n > remaining_) return false;
    if (n == 0) return true;
    if (std::fread(data, 1, n, f_) != n) return false;
    FnvMix(&hash_, data, n);
    remaining_ -= n;
    return true;
  }
  bool ReadU32(uint32_t* v) { return Read(v, sizeof(*v)); }
  uint64_t remaining() const { return remaining_; }
  uint64_t hash() const { return hash_; }

 private:
  std::FILE* f_;
  uint64_t remaining_;
  uint64_t hash_ = kFnvOffset;
};

core::Result<uint64_t> FileSize(std::FILE* f, const std::string& path) {
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return core::Status::IOError("cannot seek: " + path);
  }
  const long size = std::ftell(f);
  if (size < 0 || std::fseek(f, 0, SEEK_SET) != 0) {
    return core::Status::IOError("cannot measure size: " + path);
  }
  return static_cast<uint64_t>(size);
}

core::Status WriteBody(const Module& module, HashingWriter* w,
                       const std::string& path) {
  auto params = module.NamedParameters();
  std::set<std::string> seen;
  for (const auto& np : params) {
    if (!seen.insert(np.name).second) {
      return core::Status::InvalidArgument(
          "duplicate parameter name in module: " + np.name);
    }
    if (np.name.size() > kMaxNameLen) {
      return core::Status::InvalidArgument(
          "parameter name too long: " + np.name);
    }
  }
  if (!w->WriteU32(static_cast<uint32_t>(params.size()))) {
    return core::Status::IOError("write header failed: " + path);
  }
  for (const auto& np : params) {
    const auto& shape = np.param.shape();
    if (!w->WriteU32(static_cast<uint32_t>(np.name.size())) ||
        !w->Write(np.name.data(), np.name.size()) ||
        !w->WriteU32(static_cast<uint32_t>(shape.size()))) {
      return core::Status::IOError("write entry failed: " + path);
    }
    for (int d : shape) {
      if (!w->WriteU32(static_cast<uint32_t>(d))) {
        return core::Status::IOError("write shape failed: " + path);
      }
    }
    const size_t n = static_cast<size_t>(np.param.numel());
    if (!w->Write(np.param.data(), n * sizeof(float))) {
      return core::Status::IOError("write data failed: " + path);
    }
  }
  return core::Status::OK();
}

}  // namespace

core::Status SaveCheckpoint(const Module& module, const std::string& path) {
  // Write to a sibling temp file and rename over the target only once the
  // whole checkpoint is durably on disk, so a crash mid-save never leaves
  // a truncated file at `path` (and never clobbers a good previous one).
  const std::string tmp = path + ".tmp";
  core::Status status;
  {
    FilePtr f(std::fopen(tmp.c_str(), "wb"));
    if (!f) return core::Status::IOError("cannot open for write: " + tmp);
    HashingWriter w(f.get());
    if (std::fwrite(kMagicV2, sizeof(kMagicV2), 1, f.get()) != 1 ||
        !w.WriteU32(kEndianTag)) {
      status = core::Status::IOError("write header failed: " + tmp);
    } else {
      status = WriteBody(module, &w, tmp);
    }
    if (status.ok()) {
      const uint64_t hash = w.hash();
      if (std::fwrite(&hash, sizeof(hash), 1, f.get()) != 1 ||
          std::fflush(f.get()) != 0) {
        status = core::Status::IOError("write checksum failed: " + tmp);
      }
    }
    std::FILE* raw = f.release();
    if (std::fclose(raw) != 0 && status.ok()) {
      status = core::Status::IOError("close failed: " + tmp);
    }
  }
  if (!status.ok()) {
    std::remove(tmp.c_str());
    return status;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return core::Status::IOError("rename failed: " + tmp + " -> " + path);
  }
  return core::Status::OK();
}

core::Status LoadCheckpoint(Module* module, const std::string& path,
                            bool strict) {
  PROMPTEM_CHECK(module != nullptr);
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return core::Status::IOError("cannot open for read: " + path);
  auto size = FileSize(f.get(), path);
  if (!size.ok()) return size.status();

  char magic[8];
  if (size.value() < sizeof(magic) ||
      std::fread(magic, sizeof(magic), 1, f.get()) != 1) {
    return core::Status::InvalidArgument("checkpoint too short: " + path);
  }
  bool v2 = false;
  if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) {
    v2 = true;
  } else if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) != 0) {
    return core::Status::InvalidArgument("bad checkpoint magic: " + path);
  }

  // Body bytes between the magic and the (v2-only) trailing hash.
  uint64_t body = size.value() - sizeof(magic);
  if (v2) {
    if (body < sizeof(uint64_t)) {
      return core::Status::InvalidArgument("checkpoint truncated: " + path);
    }
    body -= sizeof(uint64_t);
  }
  HashingReader r(f.get(), body);

  if (v2) {
    uint32_t endian = 0;
    if (!r.ReadU32(&endian)) {
      return core::Status::InvalidArgument("checkpoint truncated: " + path);
    }
    if (endian != kEndianTag) {
      return core::Status::InvalidArgument(
          core::StrFormat("checkpoint endianness mismatch (tag %08x): %s",
                          endian, path.c_str()));
    }
  }
  uint32_t count = 0;
  if (!r.ReadU32(&count)) {
    return core::Status::InvalidArgument(
        "checkpoint truncated reading entry count: " + path);
  }

  std::map<std::string, tensor::Tensor> by_name;
  for (auto& np : module->NamedParameters()) by_name.emplace(np.name, np.param);

  std::set<std::string> seen;
  size_t matched = 0;
  for (uint32_t e = 0; e < count; ++e) {
    uint32_t name_len = 0;
    if (!r.ReadU32(&name_len) || name_len > kMaxNameLen) {
      return core::Status::InvalidArgument(core::StrFormat(
          "entry %u: bad name length in %s", e, path.c_str()));
    }
    std::string name(name_len, '\0');
    if (!r.Read(name.data(), name_len)) {
      return core::Status::InvalidArgument(core::StrFormat(
          "entry %u: truncated name in %s", e, path.c_str()));
    }
    if (!seen.insert(name).second) {
      return core::Status::InvalidArgument("duplicate checkpoint entry: " +
                                           name);
    }
    uint32_t ndim = 0;
    if (!r.ReadU32(&ndim) || ndim > kMaxNdim) {
      return core::Status::InvalidArgument(core::StrFormat(
          "entry %u (%s): bad rank in %s", e, name.c_str(), path.c_str()));
    }
    std::vector<int> shape(ndim);
    // Accumulate the element count in 64 bits and bound it by the bytes
    // actually left in the file *before* allocating, so corrupt dims can
    // neither overflow the count nor trigger a huge allocation.
    uint64_t n = 1;
    const uint64_t max_elems = r.remaining() / sizeof(float);
    for (uint32_t d = 0; d < ndim; ++d) {
      uint32_t dim = 0;
      if (!r.ReadU32(&dim)) {
        return core::Status::InvalidArgument(core::StrFormat(
            "entry %u (%s): truncated shape in %s", e, name.c_str(),
            path.c_str()));
      }
      if (dim > static_cast<uint32_t>(std::numeric_limits<int>::max())) {
        return core::Status::InvalidArgument(core::StrFormat(
            "entry %u (%s): dimension %u out of range", e, name.c_str(),
            dim));
      }
      shape[d] = static_cast<int>(dim);
      n *= dim;
      if (n > max_elems) {
        return core::Status::InvalidArgument(core::StrFormat(
            "entry %u (%s): %llu elements exceed the %llu remaining in %s",
            e, name.c_str(), static_cast<unsigned long long>(n),
            static_cast<unsigned long long>(max_elems), path.c_str()));
      }
    }
    std::vector<float> values(static_cast<size_t>(n));
    if (!r.Read(values.data(), static_cast<size_t>(n) * sizeof(float))) {
      return core::Status::InvalidArgument(core::StrFormat(
          "entry %u (%s): truncated data in %s", e, name.c_str(),
          path.c_str()));
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      if (strict) {
        return core::Status::NotFound("checkpoint param not in module: " +
                                      name);
      }
      continue;
    }
    if (!tensor::SameShape(it->second.shape(), shape)) {
      if (strict) {
        return core::Status::InvalidArgument(
            core::StrFormat("shape mismatch for %s", name.c_str()));
      }
      PROMPTEM_LOG(Warn) << "LoadCheckpoint: skipping " << name
                         << " (shape mismatch) from " << path;
      continue;
    }
    if (n > 0) {
      std::memcpy(it->second.data(), values.data(),
                  static_cast<size_t>(n) * sizeof(float));
    }
    ++matched;
  }
  if (r.remaining() != 0) {
    return core::Status::InvalidArgument(core::StrFormat(
        "%llu trailing bytes after %u entries in %s",
        static_cast<unsigned long long>(r.remaining()), count,
        path.c_str()));
  }
  if (v2) {
    uint64_t stored = 0;
    if (std::fread(&stored, sizeof(stored), 1, f.get()) != 1) {
      return core::Status::InvalidArgument("checkpoint truncated: " + path);
    }
    if (stored != r.hash()) {
      return core::Status::InvalidArgument("checkpoint checksum mismatch: " +
                                           path);
    }
  }
  if (strict && matched != by_name.size()) {
    return core::Status::FailedPrecondition(
        core::StrFormat("checkpoint matched %zu of %zu module params",
                        matched, by_name.size()));
  }
  return core::Status::OK();
}

core::Status CopyParameters(const Module& source, Module* target) {
  PROMPTEM_CHECK(target != nullptr);
  auto src = source.NamedParameters();
  auto dst = target->NamedParameters();
  if (src.size() != dst.size()) {
    return core::Status::InvalidArgument(core::StrFormat(
        "parameter count mismatch: %zu vs %zu", src.size(), dst.size()));
  }
  std::map<std::string, tensor::Tensor> by_name;
  for (auto& np : dst) by_name.emplace(np.name, np.param);
  for (const auto& np : src) {
    auto it = by_name.find(np.name);
    if (it == by_name.end()) {
      return core::Status::NotFound("target missing param: " + np.name);
    }
    if (!tensor::SameShape(it->second.shape(), np.param.shape())) {
      return core::Status::InvalidArgument("shape mismatch: " + np.name);
    }
    it->second.CopyDataFrom(np.param);
  }
  return core::Status::OK();
}

uint64_t ParameterFingerprint(const Module& module) {
  uint64_t hash = core::kFnv1aOffset;
  for (const auto& np : module.NamedParameters()) {
    hash = core::Fnv1a64(np.name, hash);
    const auto& shape = np.param.shape();
    for (int d : shape) {
      const auto dim = static_cast<uint32_t>(d);
      hash = core::Fnv1a64(&dim, sizeof(dim), hash);
    }
    hash = core::Fnv1a64(np.param.data(),
                         static_cast<size_t>(np.param.numel()) * sizeof(float),
                         hash);
  }
  return hash;
}

}  // namespace promptem::nn
