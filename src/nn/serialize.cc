#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>

#include "core/string_util.h"

namespace promptem::nn {

namespace {
constexpr char kMagic[8] = {'P', 'E', 'M', 'C', 'K', 'P', 'T', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteU32(std::FILE* f, uint32_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool ReadU32(std::FILE* f, uint32_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}
}  // namespace

core::Status SaveCheckpoint(const Module& module, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return core::Status::IOError("cannot open for write: " + path);
  auto params = module.NamedParameters();
  if (std::fwrite(kMagic, sizeof(kMagic), 1, f.get()) != 1 ||
      !WriteU32(f.get(), static_cast<uint32_t>(params.size()))) {
    return core::Status::IOError("write header failed: " + path);
  }
  for (const auto& np : params) {
    const auto& shape = np.param.shape();
    if (!WriteU32(f.get(), static_cast<uint32_t>(np.name.size())) ||
        std::fwrite(np.name.data(), 1, np.name.size(), f.get()) !=
            np.name.size() ||
        !WriteU32(f.get(), static_cast<uint32_t>(shape.size()))) {
      return core::Status::IOError("write entry failed: " + path);
    }
    for (int d : shape) {
      if (!WriteU32(f.get(), static_cast<uint32_t>(d))) {
        return core::Status::IOError("write shape failed: " + path);
      }
    }
    const size_t n = static_cast<size_t>(np.param.numel());
    if (std::fwrite(np.param.data(), sizeof(float), n, f.get()) != n) {
      return core::Status::IOError("write data failed: " + path);
    }
  }
  return core::Status::OK();
}

core::Status LoadCheckpoint(Module* module, const std::string& path,
                            bool strict) {
  PROMPTEM_CHECK(module != nullptr);
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return core::Status::IOError("cannot open for read: " + path);
  char magic[8];
  if (std::fread(magic, sizeof(magic), 1, f.get()) != 1 ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return core::Status::InvalidArgument("bad checkpoint magic: " + path);
  }
  uint32_t count = 0;
  if (!ReadU32(f.get(), &count)) {
    return core::Status::IOError("read count failed: " + path);
  }

  std::map<std::string, tensor::Tensor> by_name;
  for (auto& np : module->NamedParameters()) by_name.emplace(np.name, np.param);

  size_t matched = 0;
  for (uint32_t e = 0; e < count; ++e) {
    uint32_t name_len = 0;
    if (!ReadU32(f.get(), &name_len) || name_len > 4096) {
      return core::Status::IOError("read name length failed: " + path);
    }
    std::string name(name_len, '\0');
    if (std::fread(name.data(), 1, name_len, f.get()) != name_len) {
      return core::Status::IOError("read name failed: " + path);
    }
    uint32_t ndim = 0;
    if (!ReadU32(f.get(), &ndim) || ndim > 8) {
      return core::Status::IOError("read ndim failed: " + path);
    }
    std::vector<int> shape(ndim);
    size_t n = 1;
    for (uint32_t d = 0; d < ndim; ++d) {
      uint32_t dim = 0;
      if (!ReadU32(f.get(), &dim)) {
        return core::Status::IOError("read dim failed: " + path);
      }
      shape[d] = static_cast<int>(dim);
      n *= dim;
    }
    std::vector<float> values(n);
    if (std::fread(values.data(), sizeof(float), n, f.get()) != n) {
      return core::Status::IOError("read data failed: " + path);
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      if (strict) {
        return core::Status::NotFound("checkpoint param not in module: " +
                                      name);
      }
      continue;
    }
    if (!tensor::SameShape(it->second.shape(), shape)) {
      return core::Status::InvalidArgument(
          core::StrFormat("shape mismatch for %s", name.c_str()));
    }
    std::memcpy(it->second.data(), values.data(), n * sizeof(float));
    ++matched;
  }
  if (strict && matched != by_name.size()) {
    return core::Status::FailedPrecondition(
        core::StrFormat("checkpoint matched %zu of %zu module params",
                        matched, by_name.size()));
  }
  return core::Status::OK();
}

core::Status CopyParameters(const Module& source, Module* target) {
  PROMPTEM_CHECK(target != nullptr);
  auto src = source.NamedParameters();
  auto dst = target->NamedParameters();
  if (src.size() != dst.size()) {
    return core::Status::InvalidArgument(core::StrFormat(
        "parameter count mismatch: %zu vs %zu", src.size(), dst.size()));
  }
  std::map<std::string, tensor::Tensor> by_name;
  for (auto& np : dst) by_name.emplace(np.name, np.param);
  for (const auto& np : src) {
    auto it = by_name.find(np.name);
    if (it == by_name.end()) {
      return core::Status::NotFound("target missing param: " + np.name);
    }
    if (!tensor::SameShape(it->second.shape(), np.param.shape())) {
      return core::Status::InvalidArgument("shape mismatch: " + np.name);
    }
    it->second.CopyDataFrom(np.param);
  }
  return core::Status::OK();
}

}  // namespace promptem::nn
