#include "baselines/bert_ft.h"

namespace promptem::baselines {

std::unique_ptr<em::PairClassifier> MakeBertBaseline(
    const lm::PretrainedLM& lm, core::Rng* rng) {
  return std::make_unique<em::FinetuneModel>(lm, rng);
}

}  // namespace promptem::baselines
