#ifndef PROMPTEM_BASELINES_DITTO_H_
#define PROMPTEM_BASELINES_DITTO_H_

#include <vector>

#include "core/rng.h"
#include "promptem/encoding.h"

namespace promptem::baselines {

/// Ditto-style data augmentation operators (Li et al., PVLDB'21).
/// Operators act on the token-id level of one encoded pair.
enum class AugOp {
  kSpanDeletion,   ///< drop a short contiguous span from one side
  kTokenShuffle,   ///< locally shuffle a short span
  kSideTruncate,   ///< drop the tail of one side
};

/// Applies one operator to a copy of `x` (label preserved — Ditto's
/// augmentations are label-invariant by construction).
em::EncodedPair Augment(const em::EncodedPair& x, AugOp op, core::Rng* rng);

/// Produces `copies` augmented variants of every example with random
/// operators. The returned vector holds only the new examples.
std::vector<em::EncodedPair> AugmentSet(
    const std::vector<em::EncodedPair>& examples, int copies,
    core::Rng* rng);

}  // namespace promptem::baselines

#endif  // PROMPTEM_BASELINES_DITTO_H_
