#include "baselines/matchers.h"

#include <array>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "baselines/bert_ft.h"
#include "baselines/common.h"
#include "baselines/dader.h"
#include "baselines/deepmatcher.h"
#include "baselines/ditto.h"
#include "baselines/rotom.h"
#include "baselines/sentence_bert.h"
#include "baselines/tdmatch.h"
#include "baselines/tdmatch_star.h"
#include "core/status.h"
#include "core/timer.h"
#include "promptem/scoring.h"
#include "promptem/trainer.h"
#include "train/registry.h"
#include "train/train_loop.h"

// One adapter per method, registered under its canonical MethodName. Each
// Train() preserves its pre-registry RunMethod branch exactly — the same
// RNG construction (options.seed ^ (method << 8)), the same draw order,
// the same training entry point — so a fixed seed reproduces the
// pre-refactor weights bit for bit (pinned by tests/data/train_golden.json).

namespace promptem::baselines {

namespace {

using train::Matcher;
using train::MatcherContext;

core::Rng MethodRng(Method method, const RunOptions& options) {
  return core::Rng(options.seed ^ (static_cast<uint64_t>(method) << 8));
}

em::TrainOptions MakeTrainOptions(const MatcherContext& ctx,
                                  const std::string& run_name) {
  em::TrainOptions train;
  train.epochs = ctx.options.epochs;
  train.lr = ctx.options.lr;
  train.batch_size = ctx.options.batch_size;
  train.seed = ctx.options.seed ^ 0xB5;
  train.observer = ctx.observer;
  train.run_name = run_name;
  train.dataset_name = ctx.dataset->name;
  return train;
}

/// Base for the methods whose trained state is an em::PairClassifier
/// scored through the unified engine: Predict re-encodes the candidate
/// pairs with the run's (deterministic) encoder and thresholds P(yes).
class ClassifierMatcher : public Matcher {
 public:
  std::vector<int> Predict(
      const MatcherContext& ctx,
      const std::vector<data::PairExample>& pairs) override {
    PROMPTEM_CHECK_MSG(model_ != nullptr, "Predict before Train");
    return em::PredictLabels(model_.get(),
                             encoder_->EncodeAll(*ctx.dataset, pairs));
  }

  std::vector<std::array<float, 2>> ScoreProbs(
      const MatcherContext& ctx,
      const std::vector<data::PairExample>& pairs) override {
    PROMPTEM_CHECK_MSG(model_ != nullptr, "ScoreProbs before Train");
    return em::ScoreBatch(model_.get(),
                          encoder_->EncodeAll(*ctx.dataset, pairs));
  }

 protected:
  std::optional<em::PairEncoder> encoder_;
  std::unique_ptr<em::PairClassifier> model_;
};

class DeepMatcherMatcher final : public ClassifierMatcher {
 public:
  std::string Name() const override { return "DeepMatcher"; }

  void Train(const MatcherContext& ctx) override {
    core::Rng rng = MethodRng(Method::kDeepMatcher, ctx.options);
    encoder_.emplace(em::MakePairEncoder(*ctx.lm, *ctx.dataset));
    model_ = std::make_unique<DeepMatcherModel>(
        ctx.lm->vocab(), /*embed_dim=*/32, /*hidden_dim=*/16, &rng);
    const auto train = encoder_->EncodeAll(*ctx.dataset, ctx.split->labeled);
    const auto valid = encoder_->EncodeAll(*ctx.dataset, ctx.split->valid);
    em::TrainClassifier(model_.get(), train, valid,
                        MakeTrainOptions(ctx, Name()));
  }
};

class BertMatcher final : public ClassifierMatcher {
 public:
  std::string Name() const override { return "BERT"; }

  void Train(const MatcherContext& ctx) override {
    core::Rng rng = MethodRng(Method::kBert, ctx.options);
    encoder_.emplace(em::MakePairEncoder(*ctx.lm, *ctx.dataset));
    model_ = MakeBertBaseline(*ctx.lm, &rng);
    const auto train = encoder_->EncodeAll(*ctx.dataset, ctx.split->labeled);
    const auto valid = encoder_->EncodeAll(*ctx.dataset, ctx.split->valid);
    em::TrainClassifier(model_.get(), train, valid,
                        MakeTrainOptions(ctx, Name()));
  }
};

class SentenceBertMatcher final : public ClassifierMatcher {
 public:
  std::string Name() const override { return "SentenceBERT"; }

  void Train(const MatcherContext& ctx) override {
    core::Rng rng = MethodRng(Method::kSentenceBert, ctx.options);
    encoder_.emplace(em::MakePairEncoder(*ctx.lm, *ctx.dataset));
    model_ = std::make_unique<SentenceBertModel>(*ctx.lm, &rng);
    const auto train = encoder_->EncodeAll(*ctx.dataset, ctx.split->labeled);
    const auto valid = encoder_->EncodeAll(*ctx.dataset, ctx.split->valid);
    em::TrainClassifier(model_.get(), train, valid,
                        MakeTrainOptions(ctx, Name()));
  }
};

class DittoMatcher final : public ClassifierMatcher {
 public:
  std::string Name() const override { return "Ditto"; }

  void Train(const MatcherContext& ctx) override {
    // Fine-tuning + TF-IDF summarization (in the encoder) + one round of
    // label-invariant augmentation. The RNG draw order (fork, augment,
    // then model init) is part of the pinned behavioural contract.
    core::Rng rng = MethodRng(Method::kDitto, ctx.options);
    encoder_.emplace(em::MakePairEncoder(*ctx.lm, *ctx.dataset));
    auto train = encoder_->EncodeAll(*ctx.dataset, ctx.split->labeled);
    core::Rng aug_rng = rng.Fork();
    const auto augmented = AugmentSet(train, /*copies=*/1, &aug_rng);
    model_ = std::make_unique<em::FinetuneModel>(*ctx.lm, &rng);
    train.insert(train.end(), augmented.begin(), augmented.end());
    const auto valid = encoder_->EncodeAll(*ctx.dataset, ctx.split->valid);
    em::TrainClassifier(model_.get(), train, valid,
                        MakeTrainOptions(ctx, Name()));
  }
};

class RotomMatcher final : public ClassifierMatcher {
 public:
  std::string Name() const override { return "Rotom"; }

  void Train(const MatcherContext& ctx) override {
    core::Rng rng = MethodRng(Method::kRotom, ctx.options);
    encoder_.emplace(em::MakePairEncoder(*ctx.lm, *ctx.dataset));
    const auto labeled =
        encoder_->EncodeAll(*ctx.dataset, ctx.split->labeled);
    const auto valid = encoder_->EncodeAll(*ctx.dataset, ctx.split->valid);
    model_ = RunRotom(*ctx.lm, labeled, valid,
                      MakeTrainOptions(ctx, Name()), &rng);
  }
};

class DaderMatcher final : public ClassifierMatcher {
 public:
  std::string Name() const override { return "DADER"; }

  void Train(const MatcherContext& ctx) override {
    core::Rng rng = MethodRng(Method::kDader, ctx.options);
    encoder_.emplace(em::MakePairEncoder(*ctx.lm, *ctx.dataset));
    const data::BenchmarkKind source_kind = DaderSourceFor(ctx.kind);
    const data::GemDataset source =
        data::GenerateBenchmark(source_kind, ctx.options.seed);
    em::PairEncoder source_encoder = em::MakePairEncoder(*ctx.lm, source);
    const auto source_train = source_encoder.EncodeAll(source, source.train);
    const auto labeled =
        encoder_->EncodeAll(*ctx.dataset, ctx.split->labeled);
    const auto unlabeled =
        encoder_->EncodeAll(*ctx.dataset, ctx.split->unlabeled);
    const auto valid = encoder_->EncodeAll(*ctx.dataset, ctx.split->valid);
    model_ = RunDader(*ctx.lm, source_train, labeled, unlabeled, valid,
                      MakeTrainOptions(ctx, Name()), &rng);
  }
};

class TdMatchMatcher final : public Matcher {
 public:
  std::string Name() const override { return "TDmatch"; }

  void Train(const MatcherContext& ctx) override {
    core::Timer timer;
    graph_ = std::make_unique<TdMatchGraph>(*ctx.dataset);
    graph_->ComputeAllEmbeddings();  // the measured "training" phase
    // TDmatch has no epochs; synthesize a single epoch record so its runs
    // appear in the same telemetry stream as every learner.
    if (ctx.observer != nullptr) {
      train::RunMeta meta;
      meta.run_name = Name();
      meta.dataset = ctx.dataset->name;
      meta.seed = ctx.options.seed;
      meta.epochs = 1;
      meta.dataset_size = graph_->num_nodes();
      ctx.observer->OnLoopBegin(meta);
      ctx.observer->OnEpochBegin(1);
      train::EpochStats stats;
      stats.epoch = 1;
      stats.samples = graph_->num_nodes();
      stats.seconds = timer.ElapsedSeconds();
      stats.examples_per_sec =
          stats.seconds > 0.0
              ? static_cast<double>(stats.samples) / stats.seconds
              : 0.0;
      ctx.observer->OnEpochEnd(stats);
      train::LoopResult result;
      result.epochs_run = 1;
      ctx.observer->OnLoopEnd(result);
    }
  }

  std::vector<int> Predict(
      const MatcherContext& ctx,
      const std::vector<data::PairExample>& pairs) override {
    (void)ctx;
    PROMPTEM_CHECK_MSG(graph_ != nullptr, "Predict before Train");
    return graph_->PredictPairs(pairs);
  }

 private:
  std::unique_ptr<TdMatchGraph> graph_;
};

class TdMatchStarMatcher final : public Matcher {
 public:
  std::string Name() const override { return "TDmatch*"; }

  void Train(const MatcherContext& ctx) override {
    core::Rng rng = MethodRng(Method::kTdMatchStar, ctx.options);
    graph_ = std::make_unique<TdMatchGraph>(*ctx.dataset);
    graph_->ComputeAllEmbeddings();
    star_ = std::make_unique<TdMatchStar>(graph_.get(),
                                          /*embedding_dim=*/32,
                                          ctx.options.seed, &rng);
    star_->Train(ctx.split->labeled, ctx.options.epochs * 4, /*lr=*/5e-3f,
                 &rng, ctx.observer);
  }

  std::vector<int> Predict(
      const MatcherContext& ctx,
      const std::vector<data::PairExample>& pairs) override {
    (void)ctx;
    PROMPTEM_CHECK_MSG(star_ != nullptr, "Predict before Train");
    return star_->Predict(pairs);
  }

 private:
  std::unique_ptr<TdMatchGraph> graph_;
  std::unique_ptr<TdMatchStar> star_;
};

/// PromptEM and its three ablation variants (hidden from --list-matchers
/// but creatable by name).
class PromptEmMatcher final : public ClassifierMatcher {
 public:
  explicit PromptEmMatcher(Method method) : method_(method) {}

  std::string Name() const override { return MethodName(method_); }

  void Train(const MatcherContext& ctx) override {
    em::PromptEMConfig config = MakePromptEmConfig(method_, ctx.options);
    config.self_training.teacher_options.observer = ctx.observer;
    config.self_training.teacher_options.dataset_name = ctx.dataset->name;
    config.self_training.student_options.observer = ctx.observer;
    config.self_training.student_options.dataset_name = ctx.dataset->name;
    promptem_ = std::make_unique<em::PromptEM>(ctx.lm, config);
    result_ = promptem_->Run(*ctx.dataset, *ctx.split);
    // The façade trains and keeps the final model; the registry's Predict
    // path scores through the same encoder construction Run used.
    encoder_.emplace(em::MakePairEncoder(*ctx.lm, *ctx.dataset));
  }

  std::vector<int> Predict(
      const MatcherContext& ctx,
      const std::vector<data::PairExample>& pairs) override {
    PROMPTEM_CHECK_MSG(promptem_ != nullptr, "Predict before Train");
    return em::PredictLabels(promptem_->last_model(),
                             encoder_->EncodeAll(*ctx.dataset, pairs));
  }

  std::vector<std::array<float, 2>> ScoreProbs(
      const MatcherContext& ctx,
      const std::vector<data::PairExample>& pairs) override {
    // The façade owns the trained model (model_ stays null); score it
    // through the same engine path ClassifierMatcher uses.
    PROMPTEM_CHECK_MSG(promptem_ != nullptr, "ScoreProbs before Train");
    return em::ScoreBatch(promptem_->last_model(),
                          encoder_->EncodeAll(*ctx.dataset, pairs));
  }

  const em::PromptEMResult& result() const { return result_; }

 private:
  Method method_;
  std::unique_ptr<em::PromptEM> promptem_;
  em::PromptEMResult result_;
};

REGISTER_MATCHER("DeepMatcher",
                 [] { return std::make_unique<DeepMatcherMatcher>(); });
REGISTER_MATCHER("BERT", [] { return std::make_unique<BertMatcher>(); });
REGISTER_MATCHER("SentenceBERT",
                 [] { return std::make_unique<SentenceBertMatcher>(); });
REGISTER_MATCHER("Ditto", [] { return std::make_unique<DittoMatcher>(); });
REGISTER_MATCHER("DADER", [] { return std::make_unique<DaderMatcher>(); });
REGISTER_MATCHER("Rotom", [] { return std::make_unique<RotomMatcher>(); });
REGISTER_MATCHER("TDmatch",
                 [] { return std::make_unique<TdMatchMatcher>(); });
REGISTER_MATCHER("TDmatch*",
                 [] { return std::make_unique<TdMatchStarMatcher>(); });
REGISTER_MATCHER("PromptEM", [] {
  return std::make_unique<PromptEmMatcher>(Method::kPromptEM);
});
REGISTER_MATCHER_HIDDEN("PromptEM w/o PT", [] {
  return std::make_unique<PromptEmMatcher>(Method::kPromptEMNoPT);
});
REGISTER_MATCHER_HIDDEN("PromptEM w/o LST", [] {
  return std::make_unique<PromptEmMatcher>(Method::kPromptEMNoLST);
});
REGISTER_MATCHER_HIDDEN("PromptEM w/o DDP", [] {
  return std::make_unique<PromptEmMatcher>(Method::kPromptEMNoDDP);
});

}  // namespace

void EnsureBaselineMatchersRegistered() {
  // The registrations above run during this translation unit's static
  // initialization; referencing this function forces the TU to link.
}

}  // namespace promptem::baselines
