#include "baselines/tdmatch_star.h"

#include <cmath>

#include "promptem/scoring.h"
#include "tensor/autograd.h"
#include "train/train_loop.h"

namespace promptem::baselines {

namespace ops = tensor::ops;

TdMatchStar::TdMatchStar(const TdMatchGraph* graph, int embedding_dim,
                         uint64_t seed, core::Rng* rng)
    : graph_(graph),
      embedding_dim_(embedding_dim),
      projection_seed_(seed) {
  PROMPTEM_CHECK(graph != nullptr);
  head_ = std::make_unique<nn::Mlp>(
      std::vector<int>{4 * embedding_dim, embedding_dim, 2}, rng, 0.1f);
}

tensor::Tensor TdMatchStar::Features(const data::PairExample& pair) {
  std::vector<float> u = graph_->ProjectedEmbedding(
      /*left=*/true, pair.left_index, embedding_dim_, projection_seed_);
  std::vector<float> v = graph_->ProjectedEmbedding(
      /*left=*/false, pair.right_index, embedding_dim_, projection_seed_);
  std::vector<float> features;
  features.reserve(4 * static_cast<size_t>(embedding_dim_));
  features.insert(features.end(), u.begin(), u.end());
  features.insert(features.end(), v.begin(), v.end());
  for (size_t i = 0; i < u.size(); ++i) {
    features.push_back(std::fabs(u[i] - v[i]));
  }
  for (size_t i = 0; i < u.size(); ++i) features.push_back(u[i] * v[i]);
  return tensor::Tensor::FromValues({1, 4 * embedding_dim_},
                                    std::move(features));
}

tensor::Tensor TdMatchStar::Logits(const data::PairExample& pair,
                                   core::Rng* rng) {
  return head_->Forward(Features(pair), rng);
}

void TdMatchStar::Train(const std::vector<data::PairExample>& labeled,
                        int epochs, float lr, core::Rng* rng,
                        train::TrainObserver* observer) {
  train::LoopOptions loop_options;
  loop_options.epochs = epochs;
  loop_options.batch_size = 8;  // the historical accumulation group
  loop_options.lr = lr;
  loop_options.rng = rng;
  loop_options.observer = observer;
  loop_options.run_name = "TDmatch*";

  train::TrainLoop loop(head_.get(), loop_options);
  loop.OnSequentialStep(
      [&](size_t idx, core::Rng* step_rng)
          -> std::optional<tensor::Tensor> {
        return ops::CrossEntropyLogits(Logits(labeled[idx], step_rng),
                                       {labeled[idx].label});
      });
  loop.Run(labeled.size());
  head_->Eval();
}

std::vector<int> TdMatchStar::Predict(
    const std::vector<data::PairExample>& pairs) {
  // TdMatchStar is not a PairClassifier (it scores graph-projection
  // features, not EncodedPairs), so it adapts to the unified engine via
  // ScoreIndexed. Softmax is monotone, so thresholding P(yes) >= P(no)
  // decides exactly like the raw-logit comparison it replaces.
  head_->Eval();
  const std::vector<em::ProbPair> probs = em::ScoreIndexed(
      static_cast<int64_t>(pairs.size()), [&](int64_t i, core::Rng* rng) {
        return em::SoftmaxProbs2(Logits(pairs[static_cast<size_t>(i)], rng));
      });
  std::vector<int> out;
  out.reserve(pairs.size());
  for (const auto& p : probs) out.push_back(p[1] >= p[0] ? 1 : 0);
  return out;
}

em::Metrics TdMatchStar::Evaluate(
    const std::vector<data::PairExample>& pairs) {
  std::vector<int> gold;
  gold.reserve(pairs.size());
  for (const auto& p : pairs) gold.push_back(p.label);
  return em::ComputeMetrics(Predict(pairs), gold);
}

}  // namespace promptem::baselines
