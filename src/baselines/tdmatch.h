#ifndef PROMPTEM_BASELINES_TDMATCH_H_
#define PROMPTEM_BASELINES_TDMATCH_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/rng.h"
#include "data/dataset.h"

namespace promptem::baselines {

/// TDmatch (Ahmadi et al., ICDE'22): unsupervised matching of structured
/// and textual data via a record-token graph and random walks with
/// restart (RWR / personalized PageRank).
///
/// Unlike the LM pipeline, the graph tokenizer keeps digit runs whole, so
/// exact identifier matches ("9780672336072") are first-class edges — the
/// reason TDmatch wins on digit-heavy SEMI-HETER in the paper while its
/// random walks blow up in time and memory on large inputs (Table 4).
class TdMatchGraph {
 public:
  explicit TdMatchGraph(const data::GemDataset& dataset);
  ~TdMatchGraph();

  TdMatchGraph(const TdMatchGraph&) = delete;
  TdMatchGraph& operator=(const TdMatchGraph&) = delete;

  int num_nodes() const { return num_nodes_; }
  int num_left() const { return num_left_; }
  int num_right() const { return num_right_; }
  int64_t num_edges() const { return static_cast<int64_t>(col_.size()); }

  int LeftNode(int i) const { return i; }
  int RightNode(int j) const { return num_left_ + j; }

  /// Personalized PageRank from `source` by power iteration.
  std::vector<float> Ppr(int source, int iterations = 20,
                         float restart = 0.15f) const;

  /// RWR score of the candidate (left i, right j).
  float PairScore(int left_index, int right_index) const;

  /// Unsupervised predictions for candidate pairs: a pair matches when
  /// each side is the other's best-scoring counterpart among the
  /// candidates (mutual best match).
  std::vector<int> PredictPairs(
      const std::vector<data::PairExample>& pairs) const;

  /// Dense PPR "embeddings" for every record node — the expensive
  /// whole-graph random-walk phase whose cost Table 4 measures. Bytes are
  /// tracked via tensor storage.
  void ComputeAllEmbeddings();
  bool embeddings_ready() const { return !embeddings_.empty(); }

  /// Fixed random projection of a record's PPR vector to `dim` floats
  /// (the representation TDmatch* trains its MLP on).
  std::vector<float> ProjectedEmbedding(bool left, int index, int dim,
                                        uint64_t seed) const;

 private:
  std::vector<float> PprUncached(int source, int iterations,
                                 float restart) const;

  // CSR adjacency (symmetric, weighted).
  std::vector<int64_t> row_start_;
  std::vector<int> col_;
  std::vector<float> weight_;
  std::vector<float> out_weight_;  // per-node total outgoing weight

  int num_left_ = 0;
  int num_right_ = 0;
  int num_nodes_ = 0;

  std::vector<std::vector<float>> embeddings_;  // per record node
  size_t tracked_bytes_ = 0;  // embeddings bytes registered with MemTracker
};

/// Tokenizer used for graph construction: lowercased words and *whole*
/// digit runs (no single-digit splitting).
std::vector<std::string> GraphTokenize(const std::string& text);

}  // namespace promptem::baselines

#endif  // PROMPTEM_BASELINES_TDMATCH_H_
