#include "baselines/common.h"

#include "baselines/bert_ft.h"
#include "baselines/dader.h"
#include "baselines/deepmatcher.h"
#include "baselines/ditto.h"
#include "baselines/rotom.h"
#include "baselines/sentence_bert.h"
#include "baselines/tdmatch.h"
#include "baselines/tdmatch_star.h"
#include "core/mem_tracker.h"
#include "core/timer.h"

namespace promptem::baselines {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kDeepMatcher:
      return "DeepMatcher";
    case Method::kBert:
      return "BERT";
    case Method::kSentenceBert:
      return "SentenceBERT";
    case Method::kDitto:
      return "Ditto";
    case Method::kDader:
      return "DADER";
    case Method::kRotom:
      return "Rotom";
    case Method::kTdMatch:
      return "TDmatch";
    case Method::kTdMatchStar:
      return "TDmatch*";
    case Method::kPromptEM:
      return "PromptEM";
    case Method::kPromptEMNoPT:
      return "PromptEM w/o PT";
    case Method::kPromptEMNoLST:
      return "PromptEM w/o LST";
    case Method::kPromptEMNoDDP:
      return "PromptEM w/o DDP";
  }
  return "?";
}

const std::vector<Method>& BaselineMethods() {
  static const std::vector<Method> kMethods = {
      Method::kDeepMatcher, Method::kBert,    Method::kSentenceBert,
      Method::kDitto,       Method::kDader,   Method::kRotom,
      Method::kTdMatch,     Method::kTdMatchStar,
  };
  return kMethods;
}

const std::vector<Method>& PromptEmVariants() {
  static const std::vector<Method> kVariants = {
      Method::kPromptEM, Method::kPromptEMNoPT, Method::kPromptEMNoLST,
      Method::kPromptEMNoDDP,
  };
  return kVariants;
}

em::PromptEMConfig MakePromptEmConfig(Method method,
                                      const RunOptions& options) {
  em::PromptEMConfig config;
  config.seed = options.seed;
  config.use_prompt_tuning = method != Method::kPromptEMNoPT;
  config.use_self_training = method != Method::kPromptEMNoLST;
  config.use_data_pruning =
      method != Method::kPromptEMNoDDP && method != Method::kPromptEMNoLST;
  config.self_training.teacher_options.epochs = options.epochs;
  config.self_training.teacher_options.lr = options.lr;
  config.self_training.teacher_options.batch_size = options.batch_size;
  config.self_training.student_options.epochs = options.student_epochs;
  config.self_training.student_options.lr = options.lr;
  config.self_training.student_options.batch_size = options.batch_size;
  config.self_training.pseudo_ratio = options.pseudo_ratio;
  config.self_training.prune_ratio = options.prune_ratio;
  config.self_training.prune_every = options.prune_every;
  config.self_training.mc_passes = options.mc_passes;
  return config;
}

namespace {

em::TrainOptions MakeTrainOptions(const RunOptions& options) {
  em::TrainOptions train;
  train.epochs = options.epochs;
  train.lr = options.lr;
  train.batch_size = options.batch_size;
  train.seed = options.seed ^ 0xB5;
  return train;
}

/// Supervised baselines share this scaffold: encode, train, evaluate.
MethodResult RunSupervised(em::PairClassifier* model,
                           const em::PairEncoder& encoder,
                           const data::GemDataset& dataset,
                           const data::LowResourceSplit& split,
                           const em::TrainOptions& train_options,
                           const std::vector<em::EncodedPair>* extra_train) {
  std::vector<em::EncodedPair> train =
      encoder.EncodeAll(dataset, split.labeled);
  if (extra_train != nullptr) {
    train.insert(train.end(), extra_train->begin(), extra_train->end());
  }
  const auto valid = encoder.EncodeAll(dataset, split.valid);
  const auto test = encoder.EncodeAll(dataset, split.test);

  MethodResult result;
  core::Timer timer;
  core::ScopedPeakMemory peak;
  em::TrainClassifier(model, train, valid, train_options);
  result.train_seconds = timer.ElapsedSeconds();
  result.peak_memory_bytes = peak.Peak();
  result.valid = em::Evaluate(model, valid);
  result.test = em::Evaluate(model, test);
  return result;
}

data::BenchmarkKind KindByOffset(data::BenchmarkKind kind) { return kind; }

}  // namespace

MethodResult RunMethod(Method method, const lm::PretrainedLM& lm,
                       data::BenchmarkKind kind,
                       const data::GemDataset& dataset,
                       const data::LowResourceSplit& split,
                       const RunOptions& options) {
  core::Rng rng(options.seed ^ (static_cast<uint64_t>(method) << 8));
  em::PairEncoder encoder = em::MakePairEncoder(lm, dataset);
  const em::TrainOptions train_options = MakeTrainOptions(options);

  switch (method) {
    case Method::kDeepMatcher: {
      DeepMatcherModel model(lm.vocab(), /*embed_dim=*/32,
                             /*hidden_dim=*/16, &rng);
      return RunSupervised(&model, encoder, dataset, split, train_options,
                           nullptr);
    }
    case Method::kBert: {
      auto model = MakeBertBaseline(lm, &rng);
      return RunSupervised(model.get(), encoder, dataset, split,
                           train_options, nullptr);
    }
    case Method::kSentenceBert: {
      SentenceBertModel model(lm, &rng);
      return RunSupervised(&model, encoder, dataset, split, train_options,
                           nullptr);
    }
    case Method::kDitto: {
      // Fine-tuning + TF-IDF summarization (in the encoder) + one round of
      // label-invariant augmentation.
      const auto labeled = encoder.EncodeAll(dataset, split.labeled);
      core::Rng aug_rng = rng.Fork();
      const auto augmented = AugmentSet(labeled, /*copies=*/1, &aug_rng);
      em::FinetuneModel model(lm, &rng);
      return RunSupervised(&model, encoder, dataset, split, train_options,
                           &augmented);
    }
    case Method::kRotom: {
      const auto labeled = encoder.EncodeAll(dataset, split.labeled);
      const auto valid = encoder.EncodeAll(dataset, split.valid);
      const auto test = encoder.EncodeAll(dataset, split.test);
      MethodResult result;
      core::Timer timer;
      core::ScopedPeakMemory peak;
      auto model = RunRotom(lm, labeled, valid, train_options, &rng);
      result.train_seconds = timer.ElapsedSeconds();
      result.peak_memory_bytes = peak.Peak();
      result.valid = em::Evaluate(model.get(), valid);
      result.test = em::Evaluate(model.get(), test);
      return result;
    }
    case Method::kDader: {
      const data::BenchmarkKind source_kind =
          DaderSourceFor(KindByOffset(kind));
      const data::GemDataset source =
          data::GenerateBenchmark(source_kind, options.seed);
      em::PairEncoder source_encoder = em::MakePairEncoder(lm, source);
      const auto source_train = source_encoder.EncodeAll(source,
                                                         source.train);
      const auto labeled = encoder.EncodeAll(dataset, split.labeled);
      const auto unlabeled = encoder.EncodeAll(dataset, split.unlabeled);
      const auto valid = encoder.EncodeAll(dataset, split.valid);
      const auto test = encoder.EncodeAll(dataset, split.test);
      MethodResult result;
      core::Timer timer;
      core::ScopedPeakMemory peak;
      auto model = RunDader(lm, source_train, labeled, unlabeled, valid,
                            train_options, &rng);
      result.train_seconds = timer.ElapsedSeconds();
      result.peak_memory_bytes = peak.Peak();
      result.valid = em::Evaluate(model.get(), valid);
      result.test = em::Evaluate(model.get(), test);
      return result;
    }
    case Method::kTdMatch: {
      MethodResult result;
      core::Timer timer;
      core::ScopedPeakMemory peak;
      TdMatchGraph graph(dataset);
      graph.ComputeAllEmbeddings();  // the measured "training" phase
      result.train_seconds = timer.ElapsedSeconds();
      result.peak_memory_bytes = peak.Peak();
      auto evaluate = [&](const std::vector<data::PairExample>& pairs) {
        std::vector<int> gold;
        gold.reserve(pairs.size());
        for (const auto& p : pairs) gold.push_back(p.label);
        return em::ComputeMetrics(graph.PredictPairs(pairs), gold);
      };
      result.valid = evaluate(split.valid);
      result.test = evaluate(split.test);
      return result;
    }
    case Method::kTdMatchStar: {
      MethodResult result;
      core::Timer timer;
      core::ScopedPeakMemory peak;
      TdMatchGraph graph(dataset);
      graph.ComputeAllEmbeddings();
      TdMatchStar star(&graph, /*embedding_dim=*/32, options.seed, &rng);
      std::vector<data::PairExample> labeled = split.labeled;
      star.Train(labeled, options.epochs * 4, /*lr=*/5e-3f, &rng);
      result.train_seconds = timer.ElapsedSeconds();
      result.peak_memory_bytes = peak.Peak();
      result.valid = star.Evaluate(split.valid);
      result.test = star.Evaluate(split.test);
      return result;
    }
    case Method::kPromptEM:
    case Method::kPromptEMNoPT:
    case Method::kPromptEMNoLST:
    case Method::kPromptEMNoDDP: {
      em::PromptEM promptem(&lm, MakePromptEmConfig(method, options));
      em::PromptEMResult run = promptem.Run(dataset, split);
      MethodResult result;
      result.test = run.test;
      result.valid = run.valid;
      result.train_seconds = run.total_seconds;
      result.peak_memory_bytes = run.peak_memory_bytes;
      return result;
    }
  }
  PROMPTEM_CHECK_MSG(false, "unknown method");
  return {};
}

}  // namespace promptem::baselines
