#include "baselines/common.h"

#include "baselines/matchers.h"
#include "core/status.h"

namespace promptem::baselines {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kDeepMatcher:
      return "DeepMatcher";
    case Method::kBert:
      return "BERT";
    case Method::kSentenceBert:
      return "SentenceBERT";
    case Method::kDitto:
      return "Ditto";
    case Method::kDader:
      return "DADER";
    case Method::kRotom:
      return "Rotom";
    case Method::kTdMatch:
      return "TDmatch";
    case Method::kTdMatchStar:
      return "TDmatch*";
    case Method::kPromptEM:
      return "PromptEM";
    case Method::kPromptEMNoPT:
      return "PromptEM w/o PT";
    case Method::kPromptEMNoLST:
      return "PromptEM w/o LST";
    case Method::kPromptEMNoDDP:
      return "PromptEM w/o DDP";
  }
  return "?";
}

const std::vector<Method>& BaselineMethods() {
  static const std::vector<Method> kMethods = {
      Method::kDeepMatcher, Method::kBert,    Method::kSentenceBert,
      Method::kDitto,       Method::kDader,   Method::kRotom,
      Method::kTdMatch,     Method::kTdMatchStar,
  };
  return kMethods;
}

const std::vector<Method>& PromptEmVariants() {
  static const std::vector<Method> kVariants = {
      Method::kPromptEM, Method::kPromptEMNoPT, Method::kPromptEMNoLST,
      Method::kPromptEMNoDDP,
  };
  return kVariants;
}

em::PromptEMConfig MakePromptEmConfig(Method method,
                                      const RunOptions& options) {
  em::PromptEMConfig config;
  config.seed = options.seed;
  config.use_prompt_tuning = method != Method::kPromptEMNoPT;
  config.use_self_training = method != Method::kPromptEMNoLST;
  config.use_data_pruning =
      method != Method::kPromptEMNoDDP && method != Method::kPromptEMNoLST;
  config.self_training.teacher_options.epochs = options.epochs;
  config.self_training.teacher_options.lr = options.lr;
  config.self_training.teacher_options.batch_size = options.batch_size;
  config.self_training.student_options.epochs = options.student_epochs;
  config.self_training.student_options.lr = options.lr;
  config.self_training.student_options.batch_size = options.batch_size;
  config.self_training.pseudo_ratio = options.pseudo_ratio;
  config.self_training.prune_ratio = options.prune_ratio;
  config.self_training.prune_every = options.prune_every;
  config.self_training.mc_passes = options.mc_passes;
  PROMPTEM_CHECK_MSG(
      em::ParsePseudoLabelStrategy(options.pseudo_strategy,
                                   &config.self_training.strategy),
      "unknown pseudo-label strategy (uncertainty|confidence|clustering)");
  return config;
}

MethodResult RunMethod(Method method, const lm::PretrainedLM& lm,
                       data::BenchmarkKind kind,
                       const data::GemDataset& dataset,
                       const data::LowResourceSplit& split,
                       const RunOptions& options,
                       train::TrainObserver* observer) {
  EnsureBaselineMatchersRegistered();
  std::unique_ptr<train::Matcher> matcher =
      train::MatcherRegistry::Instance().Create(MethodName(method));
  PROMPTEM_CHECK_MSG(matcher != nullptr, "method has no registered matcher");

  train::MatcherContext ctx;
  ctx.lm = &lm;
  ctx.kind = kind;
  ctx.dataset = &dataset;
  ctx.split = &split;
  ctx.options = options;
  ctx.observer = observer;
  return train::RunMatcher(matcher.get(), ctx);
}

}  // namespace promptem::baselines
