#ifndef PROMPTEM_BASELINES_BERT_FT_H_
#define PROMPTEM_BASELINES_BERT_FT_H_

#include <memory>

#include "promptem/finetune_model.h"

namespace promptem::baselines {

/// The BERT baseline of §5.1: vanilla sequence-pair fine-tuning of the
/// pre-trained LM. Architecturally identical to em::FinetuneModel (which
/// also serves as PromptEM w/o PT); this factory exists so the benchmark
/// registry reads naturally.
std::unique_ptr<em::PairClassifier> MakeBertBaseline(
    const lm::PretrainedLM& lm, core::Rng* rng);

}  // namespace promptem::baselines

#endif  // PROMPTEM_BASELINES_BERT_FT_H_
