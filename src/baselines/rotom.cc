#include "baselines/rotom.h"

#include "baselines/ditto.h"
#include "promptem/finetune_model.h"
#include "promptem/scoring.h"

namespace promptem::baselines {

std::vector<em::EncodedPair> MetaFilterAugmented(
    em::PairClassifier* seed_model,
    const std::vector<em::EncodedPair>& candidates, float min_confidence) {
  // Batched eval scoring; the keep-filter then runs over the slots in
  // input order, so the kept set matches the old sequential loop exactly.
  const std::vector<em::ProbPair> probs =
      em::ScoreBatch(seed_model, candidates);
  std::vector<em::EncodedPair> kept;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const int pred = probs[i][1] >= 0.5f ? 1 : 0;
    const float confidence = std::max(probs[i][0], probs[i][1]);
    if (pred == candidates[i].label && confidence >= min_confidence) {
      kept.push_back(candidates[i]);
    }
  }
  return kept;
}

std::unique_ptr<em::PairClassifier> RunRotom(
    const lm::PretrainedLM& lm, const std::vector<em::EncodedPair>& labeled,
    const std::vector<em::EncodedPair>& valid,
    const em::TrainOptions& options, core::Rng* rng) {
  // Stage 1: seed model on the original labeled data (shorter schedule).
  core::Rng seed_rng = rng->Fork();
  auto seed_model = std::make_unique<em::FinetuneModel>(lm, &seed_rng);
  em::TrainOptions seed_options = options;
  seed_options.epochs = std::max(1, options.epochs / 2);
  em::TrainClassifier(seed_model.get(), labeled, valid, seed_options);

  // Stage 2: augment and meta-filter.
  std::vector<em::EncodedPair> augmented = AugmentSet(labeled, 2, rng);
  std::vector<em::EncodedPair> kept =
      MetaFilterAugmented(seed_model.get(), augmented, 0.6f);

  // Stage 3: final model on original + surviving augmented examples.
  std::vector<em::EncodedPair> train = labeled;
  train.insert(train.end(), kept.begin(), kept.end());
  core::Rng final_rng = rng->Fork();
  auto final_model = std::make_unique<em::FinetuneModel>(lm, &final_rng);
  em::TrainClassifier(final_model.get(), train, valid, options);
  return final_model;
}

}  // namespace promptem::baselines
