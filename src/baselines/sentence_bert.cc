#include "baselines/sentence_bert.h"

#include "promptem/scoring.h"
#include "tensor/autograd.h"

namespace promptem::baselines {

namespace ops = tensor::ops;
using text::SpecialTokens;

SentenceBertModel::SentenceBertModel(const lm::PretrainedLM& lm,
                                     core::Rng* rng)
    : encoder_(lm.CloneEncoder(rng)) {
  const int dim = encoder_->config().dim;
  head_ = std::make_unique<nn::Linear>(4 * dim, 2, rng);
  RegisterModule("encoder", encoder_.get());
  RegisterModule("head", head_.get());
}

tensor::Tensor SentenceBertModel::EncodeSide(const std::vector<int>& ids,
                                             core::Rng* rng) const {
  const int budget = encoder_->config().max_seq_len - 2;
  std::vector<int> input;
  input.push_back(SpecialTokens::kCls);
  for (size_t i = 0; i < ids.size() && static_cast<int>(i) < budget; ++i) {
    input.push_back(ids[i]);
  }
  input.push_back(SpecialTokens::kSep);
  tensor::Tensor hidden = encoder_->Encode(input, rng);
  return ops::MeanRows(hidden);
}

tensor::Tensor SentenceBertModel::Logits(const em::EncodedPair& x,
                                         core::Rng* rng) const {
  tensor::Tensor u = EncodeSide(x.left_ids, rng);
  tensor::Tensor v = EncodeSide(x.right_ids, rng);
  tensor::Tensor features =
      ops::ConcatCols({u, v, ops::Abs(ops::Sub(u, v)), ops::Mul(u, v)});
  return head_->Forward(features);
}

tensor::Tensor SentenceBertModel::Loss(const em::EncodedPair& x, int label,
                                       core::Rng* rng) {
  return ops::CrossEntropyLogits(Logits(x, rng), {label});
}

std::array<float, 2> SentenceBertModel::Probs(const em::EncodedPair& x,
                                              core::Rng* rng) {
  tensor::NoGradGuard no_grad;
  return em::SoftmaxProbs2(Logits(x, rng));
}

}  // namespace promptem::baselines
