#ifndef PROMPTEM_BASELINES_ROTOM_H_
#define PROMPTEM_BASELINES_ROTOM_H_

#include <vector>

#include "lm/pretrained_lm.h"
#include "promptem/trainer.h"

namespace promptem::baselines {

/// Rotom's meta-filtering (Miao et al., SIGMOD'21), simplified: a seed
/// model trained on the original data screens augmented candidates; only
/// candidates the seed model labels consistently (with confidence at least
/// `min_confidence`) survive. This approximates Rotom's learned
/// select-and-weight policy with its dominant signal (seed-model
/// agreement). See DESIGN.md §1.
std::vector<em::EncodedPair> MetaFilterAugmented(
    em::PairClassifier* seed_model,
    const std::vector<em::EncodedPair>& candidates, float min_confidence);

/// Full Rotom pipeline: seed training -> augmentation -> meta-filter ->
/// final training. Returns the trained final model.
std::unique_ptr<em::PairClassifier> RunRotom(
    const lm::PretrainedLM& lm, const std::vector<em::EncodedPair>& labeled,
    const std::vector<em::EncodedPair>& valid,
    const em::TrainOptions& options, core::Rng* rng);

}  // namespace promptem::baselines

#endif  // PROMPTEM_BASELINES_ROTOM_H_
