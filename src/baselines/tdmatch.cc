#include "baselines/tdmatch.h"

#include <cctype>
#include <cmath>
#include <algorithm>
#include <map>

#include "core/mem_tracker.h"
#include "core/status.h"
#include "core/thread_pool.h"
#include "data/serializer.h"

namespace promptem::baselines {

std::vector<std::string> GraphTokenize(const std::string& text) {
  std::vector<std::string> out;
  std::string current;
  auto flush = [&]() {
    if (!current.empty()) {
      out.push_back(current);
      current.clear();
    }
  };
  for (char raw : text) {
    const unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else {
      flush();
    }
  }
  flush();
  return out;
}

TdMatchGraph::TdMatchGraph(const data::GemDataset& dataset) {
  num_left_ = static_cast<int>(dataset.left_table.size());
  num_right_ = static_cast<int>(dataset.right_table.size());

  // Token vocabulary over both tables; tag tokens ([COL]/attribute names)
  // participate too, which links records of the same schema.
  std::map<std::string, int> token_ids;
  std::vector<std::vector<int>> record_tokens;
  std::map<std::string, int> doc_freq;
  record_tokens.reserve(static_cast<size_t>(num_left_ + num_right_));

  auto add_record = [&](const data::Record& record) {
    const auto tokens = GraphTokenize(data::SerializeRecord(record));
    std::vector<int> ids;
    std::map<std::string, bool> seen;
    for (const auto& tok : tokens) {
      auto [it, inserted] =
          token_ids.emplace(tok, static_cast<int>(token_ids.size()));
      ids.push_back(it->second);
      if (!seen.count(tok)) {
        seen[tok] = true;
        ++doc_freq[tok];
      }
    }
    record_tokens.push_back(std::move(ids));
  };
  for (const auto& r : dataset.left_table) add_record(r);
  for (const auto& r : dataset.right_table) add_record(r);

  const int num_records = num_left_ + num_right_;
  const int num_tokens = static_cast<int>(token_ids.size());
  num_nodes_ = num_records + num_tokens;

  // IDF per token id.
  std::vector<float> idf(static_cast<size_t>(num_tokens), 1.0f);
  const double n_docs = static_cast<double>(num_records);
  for (const auto& [tok, id] : token_ids) {
    idf[static_cast<size_t>(id)] = static_cast<float>(
        std::log((1.0 + n_docs) / (1.0 + doc_freq[tok])) + 1.0);
  }

  // Build symmetric record<->token edges with TF-IDF weights.
  std::vector<std::map<int, float>> adjacency(
      static_cast<size_t>(num_nodes_));
  for (int r = 0; r < num_records; ++r) {
    std::map<int, int> tf;
    for (int t : record_tokens[static_cast<size_t>(r)]) ++tf[t];
    for (const auto& [t, count] : tf) {
      const int token_node = num_records + t;
      const float w =
          static_cast<float>(count) * idf[static_cast<size_t>(t)];
      adjacency[static_cast<size_t>(r)][token_node] += w;
      adjacency[static_cast<size_t>(token_node)][r] += w;
    }
  }

  // CSR.
  row_start_.assign(static_cast<size_t>(num_nodes_) + 1, 0);
  for (int v = 0; v < num_nodes_; ++v) {
    row_start_[static_cast<size_t>(v) + 1] =
        row_start_[static_cast<size_t>(v)] +
        static_cast<int64_t>(adjacency[static_cast<size_t>(v)].size());
  }
  col_.reserve(static_cast<size_t>(row_start_.back()));
  weight_.reserve(static_cast<size_t>(row_start_.back()));
  out_weight_.assign(static_cast<size_t>(num_nodes_), 0.0f);
  for (int v = 0; v < num_nodes_; ++v) {
    float total = 0.0f;
    for (const auto& [u, w] : adjacency[static_cast<size_t>(v)]) {
      col_.push_back(u);
      weight_.push_back(w);
      total += w;
    }
    out_weight_[static_cast<size_t>(v)] = total;
  }
}

std::vector<float> TdMatchGraph::PprUncached(int source, int iterations,
                                             float restart) const {
  PROMPTEM_CHECK(source >= 0 && source < num_nodes_);
  std::vector<float> p(static_cast<size_t>(num_nodes_), 0.0f);
  std::vector<float> next(static_cast<size_t>(num_nodes_), 0.0f);
  p[static_cast<size_t>(source)] = 1.0f;
  for (int iter = 0; iter < iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0f);
    next[static_cast<size_t>(source)] = restart;
    for (int v = 0; v < num_nodes_; ++v) {
      const float pv = p[static_cast<size_t>(v)];
      if (pv <= 0.0f || out_weight_[static_cast<size_t>(v)] <= 0.0f) {
        continue;
      }
      const float share =
          (1.0f - restart) * pv / out_weight_[static_cast<size_t>(v)];
      for (int64_t e = row_start_[static_cast<size_t>(v)];
           e < row_start_[static_cast<size_t>(v) + 1]; ++e) {
        next[static_cast<size_t>(col_[static_cast<size_t>(e)])] +=
            share * weight_[static_cast<size_t>(e)];
      }
    }
    std::swap(p, next);
  }
  return p;
}

std::vector<float> TdMatchGraph::Ppr(int source, int iterations,
                                     float restart) const {
  return PprUncached(source, iterations, restart);
}

float TdMatchGraph::PairScore(int left_index, int right_index) const {
  const std::vector<float> p = Ppr(LeftNode(left_index));
  return p[static_cast<size_t>(RightNode(right_index))];
}

std::vector<int> TdMatchGraph::PredictPairs(
    const std::vector<data::PairExample>& pairs) const {
  // Collect the distinct left/right records among the candidates, then
  // compute PPR once per record with the walks sharded across the pool.
  std::map<int, std::vector<float>> left_ppr;
  std::map<int, std::vector<float>> right_ppr;
  for (const auto& pr : pairs) {
    left_ppr.emplace(pr.left_index, std::vector<float>());
    right_ppr.emplace(pr.right_index, std::vector<float>());
  }
  std::vector<std::pair<int, std::vector<float>*>> tasks;
  tasks.reserve(left_ppr.size() + right_ppr.size());
  for (auto& [i, ppr] : left_ppr) tasks.emplace_back(LeftNode(i), &ppr);
  for (auto& [j, ppr] : right_ppr) tasks.emplace_back(RightNode(j), &ppr);
  core::ParallelFor(0, static_cast<int64_t>(tasks.size()), 1,
                    [&](int64_t begin, int64_t end) {
    for (int64_t t = begin; t < end; ++t) {
      auto& [node, ppr] = tasks[static_cast<size_t>(t)];
      *ppr = Ppr(node);
    }
  });
  // Global mutual best match: each side's PPR is ranked against every
  // record of the other table (TDmatch ranks whole tables, not just the
  // candidate list).
  auto argmax_right = [&](const std::vector<float>& ppr) {
    int best = 0;
    float best_score = -1.0f;
    for (int j = 0; j < num_right_; ++j) {
      const float s = ppr[static_cast<size_t>(RightNode(j))];
      if (s > best_score) {
        best_score = s;
        best = j;
      }
    }
    return best;
  };
  auto argmax_left = [&](const std::vector<float>& ppr) {
    int best = 0;
    float best_score = -1.0f;
    for (int i = 0; i < num_left_; ++i) {
      const float s = ppr[static_cast<size_t>(LeftNode(i))];
      if (s > best_score) {
        best_score = s;
        best = i;
      }
    }
    return best;
  };
  std::vector<int> predictions;
  predictions.reserve(pairs.size());
  for (const auto& pr : pairs) {
    const bool mutual =
        argmax_right(left_ppr[pr.left_index]) == pr.right_index &&
        argmax_left(right_ppr[pr.right_index]) == pr.left_index;
    predictions.push_back(mutual ? 1 : 0);
  }
  return predictions;
}

TdMatchGraph::~TdMatchGraph() {
  if (tracked_bytes_ > 0) core::MemTracker::Sub(tracked_bytes_);
}

void TdMatchGraph::ComputeAllEmbeddings() {
  // The whole-graph random-walk phase: one dense PPR vector per record.
  // O(records * iterations * edges) time and O(records * nodes) memory —
  // the scalability bottleneck the paper measures in Table 4.
  // Each record's walk is independent, so the records shard across the
  // thread pool, each filling its own preallocated slot.
  const int num_records = num_left_ + num_right_;
  embeddings_.assign(static_cast<size_t>(num_records), {});
  core::ParallelFor(0, num_records, 1, [&](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      embeddings_[static_cast<size_t>(r)] = PprUncached(
          static_cast<int>(r), /*iterations=*/20, /*restart=*/0.15f);
    }
  });
  if (tracked_bytes_ > 0) core::MemTracker::Sub(tracked_bytes_);
  tracked_bytes_ = static_cast<size_t>(num_records) *
                   static_cast<size_t>(num_nodes_) * sizeof(float);
  core::MemTracker::Add(tracked_bytes_);
}

std::vector<float> TdMatchGraph::ProjectedEmbedding(bool left, int index,
                                                    int dim,
                                                    uint64_t seed) const {
  const int node = left ? LeftNode(index) : RightNode(index);
  std::vector<float> ppr =
      embeddings_.empty()
          ? PprUncached(node, 20, 0.15f)
          : embeddings_[static_cast<size_t>(node)];
  // Seeded sparse random projection (+1/-1), deterministic per (seed, dim).
  std::vector<float> out(static_cast<size_t>(dim), 0.0f);
  for (int j = 0; j < num_nodes_; ++j) {
    const float v = ppr[static_cast<size_t>(j)];
    if (v == 0.0f) continue;
    // Cheap per-(row, col) hash for the projection sign and bucket.
    uint64_t h = seed ^ (static_cast<uint64_t>(j) * 0x9E3779B97F4A7C15ULL);
    h ^= h >> 29;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 32;
    const int bucket = static_cast<int>(h % static_cast<uint64_t>(dim));
    const float sign = (h >> 60) & 1 ? 1.0f : -1.0f;
    out[static_cast<size_t>(bucket)] += sign * v;
  }
  return out;
}

}  // namespace promptem::baselines
