#include "baselines/deepmatcher.h"

#include "promptem/scoring.h"
#include "tensor/autograd.h"

namespace promptem::baselines {

namespace ops = tensor::ops;

DeepMatcherModel::DeepMatcherModel(const text::Vocab& vocab, int embed_dim,
                                   int hidden_dim, core::Rng* rng)
    : embedding_(vocab.size(), embed_dim, rng),
      aggregator_(embed_dim, hidden_dim, rng) {
  const int rep = 2 * hidden_dim;  // BiLSTM output per side
  head_ = std::make_unique<nn::Mlp>(
      std::vector<int>{4 * rep, rep, 2}, rng, /*dropout=*/0.1f);
  RegisterModule("embedding", &embedding_);
  RegisterModule("aggregator", &aggregator_);
  RegisterModule("head", head_.get());
}

tensor::Tensor DeepMatcherModel::EncodeSide(const std::vector<int>& ids,
                                            core::Rng* rng) const {
  (void)rng;
  std::vector<int> safe = ids;
  if (safe.empty()) safe.push_back(text::SpecialTokens::kPad);
  tensor::Tensor embedded = embedding_.Forward(safe);
  tensor::Tensor states = aggregator_.Forward(embedded);
  return ops::MeanRows(states);
}

tensor::Tensor DeepMatcherModel::Logits(const em::EncodedPair& x,
                                        core::Rng* rng) const {
  tensor::Tensor u = EncodeSide(x.left_ids, rng);
  tensor::Tensor v = EncodeSide(x.right_ids, rng);
  tensor::Tensor features =
      ops::ConcatCols({u, v, ops::Abs(ops::Sub(u, v)), ops::Mul(u, v)});
  return head_->Forward(features, rng);
}

tensor::Tensor DeepMatcherModel::Loss(const em::EncodedPair& x, int label,
                                      core::Rng* rng) {
  return ops::CrossEntropyLogits(Logits(x, rng), {label});
}

std::array<float, 2> DeepMatcherModel::Probs(const em::EncodedPair& x,
                                             core::Rng* rng) {
  tensor::NoGradGuard no_grad;
  return em::SoftmaxProbs2(Logits(x, rng));
}

}  // namespace promptem::baselines
