#ifndef PROMPTEM_BASELINES_COMMON_H_
#define PROMPTEM_BASELINES_COMMON_H_

#include <string>
#include <vector>

#include "data/benchmarks.h"
#include "lm/pretrained_lm.h"
#include "promptem/promptem.h"

namespace promptem::baselines {

/// Every method the paper evaluates (Tables 2, 3, 6), including PromptEM's
/// ablations.
enum class Method {
  kDeepMatcher,
  kBert,
  kSentenceBert,
  kDitto,
  kDader,
  kRotom,
  kTdMatch,
  kTdMatchStar,
  kPromptEM,
  kPromptEMNoPT,   ///< w/o prompt-tuning (fine-tune instead)
  kPromptEMNoLST,  ///< w/o lightweight self-training (teacher only)
  kPromptEMNoDDP,  ///< w/o dynamic data pruning (a.k.a. "PromptEM-")
};

const char* MethodName(Method method);

/// The eight baselines in Table 2's row order (PromptEM rows excluded).
const std::vector<Method>& BaselineMethods();

/// All PromptEM variants (main + three ablations).
const std::vector<Method>& PromptEmVariants();

/// Knobs shared by the harness. Epoch counts are scaled-down stand-ins
/// for the paper's 20 teacher / 30 student epochs.
struct RunOptions {
  uint64_t seed = 42;
  int epochs = 12;          ///< baselines and PromptEM's teacher
  int student_epochs = 14;  ///< PromptEM's student
  float lr = 5e-3f;
  int batch_size = 8;
  int mc_passes = 10;
  double pseudo_ratio = 0.10;  ///< u_r
  double prune_ratio = 0.20;   ///< e_r
  int prune_every = 2;
};

/// One method's outcome on one dataset split.
struct MethodResult {
  em::Metrics test;
  em::Metrics valid;
  double train_seconds = 0.0;
  size_t peak_memory_bytes = 0;
};

/// Trains and evaluates `method` on the split. `kind` identifies the
/// benchmark (DADER derives its source dataset from it).
MethodResult RunMethod(Method method, const lm::PretrainedLM& lm,
                       data::BenchmarkKind kind,
                       const data::GemDataset& dataset,
                       const data::LowResourceSplit& split,
                       const RunOptions& options);

/// Builds the PromptEMConfig a given PromptEM variant uses (shared by
/// RunMethod and the ablation benches).
em::PromptEMConfig MakePromptEmConfig(Method method,
                                      const RunOptions& options);

}  // namespace promptem::baselines

#endif  // PROMPTEM_BASELINES_COMMON_H_
