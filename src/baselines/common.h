#ifndef PROMPTEM_BASELINES_COMMON_H_
#define PROMPTEM_BASELINES_COMMON_H_

#include <string>
#include <vector>

#include "data/benchmarks.h"
#include "lm/pretrained_lm.h"
#include "promptem/promptem.h"
#include "train/registry.h"

namespace promptem::baselines {

/// Every method the paper evaluates (Tables 2, 3, 6), including PromptEM's
/// ablations.
enum class Method {
  kDeepMatcher,
  kBert,
  kSentenceBert,
  kDitto,
  kDader,
  kRotom,
  kTdMatch,
  kTdMatchStar,
  kPromptEM,
  kPromptEMNoPT,   ///< w/o prompt-tuning (fine-tune instead)
  kPromptEMNoLST,  ///< w/o lightweight self-training (teacher only)
  kPromptEMNoDDP,  ///< w/o dynamic data pruning (a.k.a. "PromptEM-")
};

/// Canonical display name — also the method's train::MatcherRegistry key.
const char* MethodName(Method method);

/// The eight baselines in Table 2's row order (PromptEM rows excluded).
const std::vector<Method>& BaselineMethods();

/// All PromptEM variants (main + three ablations).
const std::vector<Method>& PromptEmVariants();

/// Harness knobs / per-run outcome, shared with the training runtime's
/// matcher registry (the registry owns the canonical definitions).
using RunOptions = ::promptem::train::RunOptions;
using MethodResult = ::promptem::train::MatcherResult;

/// Trains and evaluates `method` on the split via the matcher registry.
/// `kind` identifies the benchmark (DADER derives its source dataset from
/// it); `observer` receives every training-loop event of the run.
MethodResult RunMethod(Method method, const lm::PretrainedLM& lm,
                       data::BenchmarkKind kind,
                       const data::GemDataset& dataset,
                       const data::LowResourceSplit& split,
                       const RunOptions& options,
                       train::TrainObserver* observer = nullptr);

/// Builds the PromptEMConfig a given PromptEM variant uses (shared by
/// RunMethod and the ablation benches).
em::PromptEMConfig MakePromptEmConfig(Method method,
                                      const RunOptions& options);

}  // namespace promptem::baselines

#endif  // PROMPTEM_BASELINES_COMMON_H_
