#ifndef PROMPTEM_BASELINES_TDMATCH_STAR_H_
#define PROMPTEM_BASELINES_TDMATCH_STAR_H_

#include <memory>

#include "baselines/tdmatch.h"
#include "nn/layers.h"
#include "promptem/metrics.h"
#include "train/observer.h"

namespace promptem::baselines {

/// TDmatch* (paper Appendix D): a supervised MLP classifier on top of
/// TDmatch's embeddings. For entity embeddings u, v the classifier input
/// is (u, v, |u - v|, u * v).
class TdMatchStar {
 public:
  /// `embedding_dim` is the random-projection width of the PPR vectors.
  TdMatchStar(const TdMatchGraph* graph, int embedding_dim, uint64_t seed,
              core::Rng* rng);

  /// Trains the MLP on labeled pairs (labels from PairExample).
  void Train(const std::vector<data::PairExample>& labeled, int epochs,
             float lr, core::Rng* rng,
             train::TrainObserver* observer = nullptr);

  /// Predicted labels for candidate pairs.
  std::vector<int> Predict(const std::vector<data::PairExample>& pairs);

  /// Convenience: metrics against the pairs' own labels.
  em::Metrics Evaluate(const std::vector<data::PairExample>& pairs);

 private:
  tensor::Tensor Features(const data::PairExample& pair);
  tensor::Tensor Logits(const data::PairExample& pair, core::Rng* rng);

  const TdMatchGraph* graph_;
  int embedding_dim_;
  uint64_t projection_seed_;
  std::unique_ptr<nn::Mlp> head_;
  std::unique_ptr<nn::Module> owner_;  // keeps Mlp registered
};

}  // namespace promptem::baselines

#endif  // PROMPTEM_BASELINES_TDMATCH_STAR_H_
