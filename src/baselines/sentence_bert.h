#ifndef PROMPTEM_BASELINES_SENTENCE_BERT_H_
#define PROMPTEM_BASELINES_SENTENCE_BERT_H_

#include <memory>

#include "lm/pretrained_lm.h"
#include "promptem/trainer.h"

namespace promptem::baselines {

/// SentenceBERT (Reimers & Gurevych, EMNLP'19): a siamese encoder — each
/// side is encoded independently and mean-pooled; the classifier reads
/// (u, v, |u-v|, u*v). Both sides share one encoder (tied weights).
class SentenceBertModel : public nn::Module, public em::PairClassifier {
 public:
  SentenceBertModel(const lm::PretrainedLM& lm, core::Rng* rng);

  tensor::Tensor Loss(const em::EncodedPair& x, int label,
                      core::Rng* rng) override;
  std::array<float, 2> Probs(const em::EncodedPair& x,
                             core::Rng* rng) override;
  nn::Module* AsModule() override { return this; }

 private:
  tensor::Tensor EncodeSide(const std::vector<int>& ids,
                            core::Rng* rng) const;
  tensor::Tensor Logits(const em::EncodedPair& x, core::Rng* rng) const;

  std::unique_ptr<nn::TransformerEncoder> encoder_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace promptem::baselines

#endif  // PROMPTEM_BASELINES_SENTENCE_BERT_H_
