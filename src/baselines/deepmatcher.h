#ifndef PROMPTEM_BASELINES_DEEPMATCHER_H_
#define PROMPTEM_BASELINES_DEEPMATCHER_H_

#include <memory>

#include "nn/lstm.h"
#include "promptem/trainer.h"
#include "text/vocab.h"

namespace promptem::baselines {

/// DeepMatcher (Mudgal et al., SIGMOD'18), hybrid-model spirit: each side's
/// serialized tokens go through an embedding + BiLSTM aggregator; the two
/// aggregated representations are compared with a (u, v, |u-v|, u*v) MLP.
/// No pre-trained LM is involved (the paper's reason it trails LM methods).
class DeepMatcherModel : public nn::Module, public em::PairClassifier {
 public:
  DeepMatcherModel(const text::Vocab& vocab, int embed_dim, int hidden_dim,
                   core::Rng* rng);

  tensor::Tensor Loss(const em::EncodedPair& x, int label,
                      core::Rng* rng) override;
  std::array<float, 2> Probs(const em::EncodedPair& x,
                             core::Rng* rng) override;
  nn::Module* AsModule() override { return this; }

 private:
  /// Aggregates one side into [1, 2*hidden].
  tensor::Tensor EncodeSide(const std::vector<int>& ids,
                            core::Rng* rng) const;
  tensor::Tensor Logits(const em::EncodedPair& x, core::Rng* rng) const;

  nn::Embedding embedding_;
  nn::BiLstm aggregator_;
  std::unique_ptr<nn::Mlp> head_;
};

}  // namespace promptem::baselines

#endif  // PROMPTEM_BASELINES_DEEPMATCHER_H_
