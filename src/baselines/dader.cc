#include "baselines/dader.h"

#include <algorithm>

#include "nn/serialize.h"
#include "promptem/finetune_model.h"
#include "promptem/scoring.h"

namespace promptem::baselines {

data::BenchmarkKind DaderSourceFor(data::BenchmarkKind target) {
  using data::BenchmarkKind;
  switch (target) {
    case BenchmarkKind::kRelHeter:
      return BenchmarkKind::kGeoHeter;  // both name/address-style records
    case BenchmarkKind::kSemiHomo:
      return BenchmarkKind::kRelText;  // citation domain
    case BenchmarkKind::kSemiHeter:
      return BenchmarkKind::kSemiHomo;
    case BenchmarkKind::kSemiRel:
      return BenchmarkKind::kSemiHeter;
    case BenchmarkKind::kSemiTextW:
      return BenchmarkKind::kSemiTextC;  // sibling product benchmarks
    case BenchmarkKind::kSemiTextC:
      return BenchmarkKind::kSemiTextW;
    case BenchmarkKind::kRelText:
      return BenchmarkKind::kSemiHomo;
    case BenchmarkKind::kGeoHeter:
      return BenchmarkKind::kRelHeter;
  }
  return BenchmarkKind::kSemiHomo;
}

std::unique_ptr<em::PairClassifier> RunDader(
    const lm::PretrainedLM& lm,
    const std::vector<em::EncodedPair>& source_train,
    const std::vector<em::EncodedPair>& target_labeled,
    const std::vector<em::EncodedPair>& target_unlabeled,
    const std::vector<em::EncodedPair>& target_valid,
    const em::TrainOptions& options, core::Rng* rng) {
  // Phase 1: source model on the source benchmark's full labels.
  core::Rng source_rng = rng->Fork();
  auto source_model = std::make_unique<em::FinetuneModel>(lm, &source_rng);
  em::TrainOptions source_options = options;
  source_options.select_best_on_valid = false;
  em::TrainClassifier(source_model.get(), source_train, {}, source_options);

  // Phase 2: target model initialized from the source model.
  core::Rng target_rng = rng->Fork();
  auto target_model = std::make_unique<em::FinetuneModel>(lm, &target_rng);
  core::Status st = nn::CopyParameters(*source_model, target_model.get());
  PROMPTEM_CHECK_MSG(st.ok(), st.ToString().c_str());

  // Phase 3: fine-tune on target labels, plus a KD/alignment term — the
  // source model pseudo-labels a slice of the target's unlabeled pool
  // through the batched eval engine.
  std::vector<em::EncodedPair> train = target_labeled;
  const size_t kd_budget = std::min<size_t>(target_unlabeled.size(),
                                            target_labeled.size());
  const std::vector<em::EncodedPair> kd_pool(
      target_unlabeled.begin(),
      target_unlabeled.begin() + static_cast<long>(kd_budget));
  const std::vector<em::ProbPair> kd_probs =
      em::ScoreBatch(source_model.get(), kd_pool);
  for (size_t i = 0; i < kd_budget; ++i) {
    const float confidence = std::max(kd_probs[i][0], kd_probs[i][1]);
    if (confidence < 0.75f) continue;  // only confident source knowledge
    em::EncodedPair kd = kd_pool[i];
    kd.label = kd_probs[i][1] >= 0.5f ? 1 : 0;
    train.push_back(std::move(kd));
  }
  em::TrainClassifier(target_model.get(), train, target_valid, options);
  return target_model;
}

}  // namespace promptem::baselines
