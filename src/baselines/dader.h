#ifndef PROMPTEM_BASELINES_DADER_H_
#define PROMPTEM_BASELINES_DADER_H_

#include <memory>

#include "data/benchmarks.h"
#include "lm/pretrained_lm.h"
#include "promptem/trainer.h"

namespace promptem::baselines {

/// Source benchmark used to adapt to each target (the paper "selects the
/// source and target datasets from a similar domain").
data::BenchmarkKind DaderSourceFor(data::BenchmarkKind target);

/// DADER (Tu et al., SIGMOD'22), simplified InvGAN+KD: (1) train a source
/// model on the source benchmark's full training labels; (2) initialize
/// the target model from it; (3) fine-tune on the target's low-resource
/// labels with a knowledge-distillation term against the source model's
/// soft predictions on the target's unlabeled pool (the feature-alignment
/// signal). See DESIGN.md §1 for the substitution note.
std::unique_ptr<em::PairClassifier> RunDader(
    const lm::PretrainedLM& lm,
    const std::vector<em::EncodedPair>& source_train,
    const std::vector<em::EncodedPair>& target_labeled,
    const std::vector<em::EncodedPair>& target_unlabeled,
    const std::vector<em::EncodedPair>& target_valid,
    const em::TrainOptions& options, core::Rng* rng);

}  // namespace promptem::baselines

#endif  // PROMPTEM_BASELINES_DADER_H_
