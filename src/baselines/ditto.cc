#include "baselines/ditto.h"

#include <algorithm>

namespace promptem::baselines {

namespace {

void DeleteSpan(std::vector<int>* ids, core::Rng* rng) {
  if (ids->size() < 4) return;
  const size_t span = 1 + rng->NextU64(std::min<size_t>(3, ids->size() / 4));
  const size_t start = rng->NextU64(ids->size() - span);
  ids->erase(ids->begin() + static_cast<long>(start),
             ids->begin() + static_cast<long>(start + span));
}

void ShuffleSpan(std::vector<int>* ids, core::Rng* rng) {
  if (ids->size() < 4) return;
  const size_t span =
      2 + rng->NextU64(std::min<size_t>(3, ids->size() / 2 - 1));
  const size_t start = rng->NextU64(ids->size() - span);
  std::vector<int> window(ids->begin() + static_cast<long>(start),
                          ids->begin() + static_cast<long>(start + span));
  rng->Shuffle(&window);
  std::copy(window.begin(), window.end(),
            ids->begin() + static_cast<long>(start));
}

void TruncateTail(std::vector<int>* ids, core::Rng* rng) {
  if (ids->size() < 4) return;
  const size_t keep =
      ids->size() - 1 - rng->NextU64(std::min<size_t>(3, ids->size() / 4));
  ids->resize(keep);
}

}  // namespace

em::EncodedPair Augment(const em::EncodedPair& x, AugOp op, core::Rng* rng) {
  em::EncodedPair out = x;
  std::vector<int>* side = rng->Bernoulli(0.5) ? &out.left_ids
                                               : &out.right_ids;
  switch (op) {
    case AugOp::kSpanDeletion:
      DeleteSpan(side, rng);
      break;
    case AugOp::kTokenShuffle:
      ShuffleSpan(side, rng);
      break;
    case AugOp::kSideTruncate:
      TruncateTail(side, rng);
      break;
  }
  return out;
}

std::vector<em::EncodedPair> AugmentSet(
    const std::vector<em::EncodedPair>& examples, int copies,
    core::Rng* rng) {
  static constexpr AugOp kOps[] = {AugOp::kSpanDeletion, AugOp::kTokenShuffle,
                                   AugOp::kSideTruncate};
  std::vector<em::EncodedPair> out;
  out.reserve(examples.size() * static_cast<size_t>(copies));
  for (const auto& x : examples) {
    for (int c = 0; c < copies; ++c) {
      out.push_back(Augment(x, kOps[rng->NextU64(3)], rng));
    }
  }
  return out;
}

}  // namespace promptem::baselines
