#ifndef PROMPTEM_BASELINES_MATCHERS_H_
#define PROMPTEM_BASELINES_MATCHERS_H_

namespace promptem::baselines {

/// Anchors the REGISTER_MATCHER static initializers in matchers.cc: call
/// this before consulting train::MatcherRegistry. Without a referenced
/// symbol the static archive's linker would drop the registration
/// translation unit entirely.
void EnsureBaselineMatchersRegistered();

}  // namespace promptem::baselines

#endif  // PROMPTEM_BASELINES_MATCHERS_H_
