#include "data/blocking.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "data/serializer.h"
#include "text/tokenizer.h"

namespace promptem::data {

OverlapBlocker::OverlapBlocker(const std::vector<Record>& left_table,
                               const std::vector<Record>& right_table) {
  std::map<std::string, int> token_ids;
  auto encode = [&](const Record& record) {
    std::vector<int> ids;
    std::set<int> seen;
    for (const auto& tok :
         text::WordTokenize(SerializeRecord(record))) {
      auto [it, inserted] =
          token_ids.emplace(tok, static_cast<int>(token_ids.size()));
      if (seen.insert(it->second).second) ids.push_back(it->second);
    }
    return ids;
  };
  left_tokens_.reserve(left_table.size());
  for (const auto& r : left_table) left_tokens_.push_back(encode(r));
  right_tokens_.reserve(right_table.size());
  for (const auto& r : right_table) right_tokens_.push_back(encode(r));
  num_tokens_ = static_cast<int>(token_ids.size());

  // Document frequencies over both tables.
  std::vector<int> df(static_cast<size_t>(num_tokens_), 0);
  for (const auto& ids : left_tokens_) {
    for (int t : ids) ++df[static_cast<size_t>(t)];
  }
  for (const auto& ids : right_tokens_) {
    for (int t : ids) ++df[static_cast<size_t>(t)];
  }
  const double n_docs =
      static_cast<double>(left_tokens_.size() + right_tokens_.size());
  idf_.resize(static_cast<size_t>(num_tokens_));
  for (int t = 0; t < num_tokens_; ++t) {
    idf_[static_cast<size_t>(t)] =
        std::log((1.0 + n_docs) / (1.0 + df[static_cast<size_t>(t)])) + 1.0;
  }

  // Inverted index over the right table.
  right_index_.resize(static_cast<size_t>(num_tokens_));
  for (size_t j = 0; j < right_tokens_.size(); ++j) {
    for (int t : right_tokens_[j]) {
      right_index_[static_cast<size_t>(t)].push_back(static_cast<int>(j));
    }
  }
}

double OverlapBlocker::PairScore(int left_index, int right_index) const {
  const auto& li = left_tokens_[static_cast<size_t>(left_index)];
  const auto& ri = right_tokens_[static_cast<size_t>(right_index)];
  std::set<int> right_set(ri.begin(), ri.end());
  double score = 0.0;
  for (int t : li) {
    if (right_set.count(t)) score += idf_[static_cast<size_t>(t)];
  }
  return score;
}

std::vector<PairExample> OverlapBlocker::GenerateCandidates(
    const Config& config) const {
  const double n_docs =
      static_cast<double>(left_tokens_.size() + right_tokens_.size());
  const size_t stop_threshold = static_cast<size_t>(
      std::max(1.0, config.max_token_frequency * n_docs));

  std::vector<PairExample> candidates;
  std::vector<double> score(right_tokens_.size());
  std::vector<int> shared(right_tokens_.size());
  for (size_t i = 0; i < left_tokens_.size(); ++i) {
    std::fill(score.begin(), score.end(), 0.0);
    std::fill(shared.begin(), shared.end(), 0);
    for (int t : left_tokens_[i]) {
      const auto& postings = right_index_[static_cast<size_t>(t)];
      if (postings.size() > stop_threshold) continue;  // stop token
      for (int j : postings) {
        score[static_cast<size_t>(j)] += idf_[static_cast<size_t>(t)];
        ++shared[static_cast<size_t>(j)];
      }
    }
    std::vector<int> order;
    for (size_t j = 0; j < score.size(); ++j) {
      if (shared[j] >= config.min_shared_tokens && score[j] > 0.0) {
        order.push_back(static_cast<int>(j));
      }
    }
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return score[static_cast<size_t>(a)] > score[static_cast<size_t>(b)];
    });
    if (static_cast<int>(order.size()) > config.top_k) {
      order.resize(static_cast<size_t>(config.top_k));
    }
    for (int j : order) {
      candidates.push_back({static_cast<int>(i), j, 0});
    }
  }
  return candidates;
}

BlockingQuality EvaluateBlocking(
    const std::vector<PairExample>& candidates,
    const std::vector<PairExample>& gold_matches, size_t left_size,
    size_t right_size) {
  std::set<std::pair<int, int>> candidate_set;
  for (const auto& c : candidates) {
    candidate_set.emplace(c.left_index, c.right_index);
  }
  size_t kept = 0;
  size_t total = 0;
  for (const auto& g : gold_matches) {
    if (g.label != 1) continue;
    ++total;
    kept += candidate_set.count({g.left_index, g.right_index});
  }
  BlockingQuality quality;
  quality.pair_completeness =
      total == 0 ? 1.0 : static_cast<double>(kept) / total;
  const double all_pairs =
      static_cast<double>(left_size) * static_cast<double>(right_size);
  quality.reduction_ratio =
      all_pairs == 0.0 ? 0.0 : 1.0 - candidates.size() / all_pairs;
  return quality;
}

}  // namespace promptem::data
