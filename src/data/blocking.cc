#include "data/blocking.h"

#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <unordered_set>

#include "core/status.h"
#include "core/thread_pool.h"
#include "data/serializer.h"
#include "text/tokenizer.h"

namespace promptem::data {

namespace {

/// Left records generated per streaming refill. Fixed (never derived from
/// the pool size) so the candidate stream is bitwise independent of
/// PROMPTEM_NUM_THREADS; large enough that one refill amortizes the
/// ParallelFor dispatch over real per-record work.
constexpr size_t kRefillBatch = 256;

/// Per-left-record grain for the parallel generation sweeps.
constexpr int64_t kLeftGrain = 16;

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t Fnv1a64(const char* data, size_t n, uint64_t hash = kFnvOffset) {
  for (size_t i = 0; i < n; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= kFnvPrime;
  }
  return hash;
}

/// splitmix64 finalizer: cheap, well-mixed derivation of the i-th hash
/// function from a shingle's base hash.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

// ---------------------------------------------------------------------------
// Blocker / LeftStreamBlocker
// ---------------------------------------------------------------------------

std::vector<PairExample> Blocker::Drain() {
  std::vector<PairExample> all;
  while (NextChunk(static_cast<size_t>(1) << 16, &all) > 0) {
  }
  return all;
}

size_t LeftStreamBlocker::NextChunk(size_t max_pairs,
                                    std::vector<PairExample>* out) {
  PROMPTEM_CHECK(out != nullptr);
  size_t appended = 0;
  while (appended < max_pairs) {
    if (pending_pos_ == pending_.size()) {
      if (next_left_ >= left_size()) break;
      Refill();
      continue;
    }
    const size_t take =
        std::min(max_pairs - appended, pending_.size() - pending_pos_);
    out->insert(out->end(), pending_.begin() + static_cast<ptrdiff_t>(pending_pos_),
                pending_.begin() + static_cast<ptrdiff_t>(pending_pos_ + take));
    pending_pos_ += take;
    appended += take;
  }
  return appended;
}

void LeftStreamBlocker::Reset() {
  next_left_ = 0;
  pending_.clear();
  pending_pos_ = 0;
}

void LeftStreamBlocker::Refill() {
  const size_t batch = std::min(kRefillBatch, left_size() - next_left_);
  std::vector<std::vector<PairExample>> per_left(batch);
  const size_t base = next_left_;
  // Per-left buffers merged in left order: the stream never depends on
  // which lane generated which record.
  core::ParallelFor(0, static_cast<int64_t>(batch), kLeftGrain,
                    [&](int64_t begin, int64_t end) {
                      for (int64_t b = begin; b < end; ++b) {
                        CandidatesForLeft(static_cast<int>(base + static_cast<size_t>(b)),
                                          &per_left[static_cast<size_t>(b)]);
                      }
                    });
  pending_.clear();
  pending_pos_ = 0;
  for (const auto& buf : per_left) {
    pending_.insert(pending_.end(), buf.begin(), buf.end());
  }
  next_left_ += batch;
}

// ---------------------------------------------------------------------------
// AllPairsBlocker
// ---------------------------------------------------------------------------

size_t AllPairsBlocker::NextChunk(size_t max_pairs,
                                  std::vector<PairExample>* out) {
  PROMPTEM_CHECK(out != nullptr);
  size_t appended = 0;
  if (right_size_ == 0) return 0;
  while (appended < max_pairs && next_left_ < left_size_) {
    out->push_back({static_cast<int>(next_left_),
                    static_cast<int>(next_right_), kUnlabeledLabel});
    ++appended;
    if (++next_right_ == right_size_) {
      next_right_ = 0;
      ++next_left_;
    }
  }
  return appended;
}

// ---------------------------------------------------------------------------
// OverlapBlocker
// ---------------------------------------------------------------------------

OverlapBlocker::OverlapBlocker(const std::vector<Record>& left_table,
                               const std::vector<Record>& right_table)
    : OverlapBlocker(left_table, right_table, Config()) {}

OverlapBlocker::OverlapBlocker(const std::vector<Record>& left_table,
                               const std::vector<Record>& right_table,
                               const Config& config)
    : config_(config) {
  // Tokenization (serialize + word-split) dominates index build, and is
  // per-record independent: run it across the pool into per-record string
  // lists, then assign token ids sequentially in record order so the id
  // space (and everything derived from it) is pool-size invariant.
  const size_t n_left = left_table.size();
  const size_t n_right = right_table.size();
  std::vector<std::vector<std::string>> words(n_left + n_right);
  core::ParallelFor(0, static_cast<int64_t>(n_left + n_right), kLeftGrain,
                    [&](int64_t begin, int64_t end) {
                      for (int64_t i = begin; i < end; ++i) {
                        const size_t idx = static_cast<size_t>(i);
                        const Record& r = idx < n_left
                                              ? left_table[idx]
                                              : right_table[idx - n_left];
                        words[idx] = text::WordTokenize(SerializeRecord(r));
                      }
                    });

  std::map<std::string, int> token_ids;
  auto encode = [&](const std::vector<std::string>& toks) {
    std::vector<int> ids;
    std::set<int> seen;
    for (const auto& tok : toks) {
      auto [it, inserted] =
          token_ids.emplace(tok, static_cast<int>(token_ids.size()));
      if (seen.insert(it->second).second) ids.push_back(it->second);
    }
    return ids;
  };
  left_tokens_.reserve(n_left);
  for (size_t i = 0; i < n_left; ++i) left_tokens_.push_back(encode(words[i]));
  right_tokens_.reserve(n_right);
  for (size_t j = 0; j < n_right; ++j) {
    right_tokens_.push_back(encode(words[n_left + j]));
  }
  num_tokens_ = static_cast<int>(token_ids.size());

  // Document frequencies over both tables.
  std::vector<int> df(static_cast<size_t>(num_tokens_), 0);
  for (const auto& ids : left_tokens_) {
    for (int t : ids) ++df[static_cast<size_t>(t)];
  }
  for (const auto& ids : right_tokens_) {
    for (int t : ids) ++df[static_cast<size_t>(t)];
  }
  const double n_docs =
      static_cast<double>(left_tokens_.size() + right_tokens_.size());
  idf_.resize(static_cast<size_t>(num_tokens_));
  for (int t = 0; t < num_tokens_; ++t) {
    idf_[static_cast<size_t>(t)] =
        std::log((1.0 + n_docs) / (1.0 + df[static_cast<size_t>(t)])) + 1.0;
  }

  // Inverted index over the right table.
  right_index_.resize(static_cast<size_t>(num_tokens_));
  for (size_t j = 0; j < right_tokens_.size(); ++j) {
    for (int t : right_tokens_[j]) {
      right_index_[static_cast<size_t>(t)].push_back(static_cast<int>(j));
    }
  }
}

double OverlapBlocker::PairScore(int left_index, int right_index) const {
  const auto& li = left_tokens_[static_cast<size_t>(left_index)];
  const auto& ri = right_tokens_[static_cast<size_t>(right_index)];
  std::set<int> right_set(ri.begin(), ri.end());
  double score = 0.0;
  for (int t : li) {
    if (right_set.count(t)) score += idf_[static_cast<size_t>(t)];
  }
  return score;
}

void OverlapBlocker::CandidatesForLeftWithConfig(
    int left_index, const Config& config,
    std::vector<PairExample>* out) const {
  const double n_docs =
      static_cast<double>(left_tokens_.size() + right_tokens_.size());
  const size_t stop_threshold = static_cast<size_t>(
      std::max(1.0, config.max_token_frequency * n_docs));

  // Sparse accumulation: only rights actually touched by a posting list
  // are tracked, so one left record costs O(candidate postings), not
  // O(right table) — the difference between 1M-row streaming and a dense
  // per-left scan.
  std::map<int, std::pair<double, int>> hits;  // right -> (score, shared)
  for (int t : left_tokens_[static_cast<size_t>(left_index)]) {
    const auto& postings = right_index_[static_cast<size_t>(t)];
    if (postings.size() > stop_threshold) continue;  // stop token
    for (int j : postings) {
      auto& slot = hits[j];
      slot.first += idf_[static_cast<size_t>(t)];
      ++slot.second;
    }
  }
  std::vector<int> order;
  order.reserve(hits.size());
  for (const auto& [j, slot] : hits) {
    if (slot.second >= config.min_shared_tokens && slot.first > 0.0) {
      order.push_back(j);
    }
  }
  // `hits` iterates right-index ascending, so the stable sort reproduces
  // the original dense scan's order exactly: score descending, right
  // index ascending on ties.
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return hits.find(a)->second.first > hits.find(b)->second.first;
  });
  if (static_cast<int>(order.size()) > config.top_k) {
    order.resize(static_cast<size_t>(config.top_k));
  }
  for (int j : order) {
    out->push_back({left_index, j, kUnlabeledLabel});
  }
}

void OverlapBlocker::CandidatesForLeft(int left_index,
                                       std::vector<PairExample>* out) const {
  CandidatesForLeftWithConfig(left_index, config_, out);
}

std::vector<PairExample> OverlapBlocker::GenerateCandidates(
    const Config& config) const {
  const size_t n_left = left_tokens_.size();
  std::vector<std::vector<PairExample>> per_left(n_left);
  core::ParallelFor(0, static_cast<int64_t>(n_left), kLeftGrain,
                    [&](int64_t begin, int64_t end) {
                      for (int64_t i = begin; i < end; ++i) {
                        CandidatesForLeftWithConfig(
                            static_cast<int>(i), config,
                            &per_left[static_cast<size_t>(i)]);
                      }
                    });
  std::vector<PairExample> candidates;
  for (const auto& buf : per_left) {
    candidates.insert(candidates.end(), buf.begin(), buf.end());
  }
  return candidates;
}

// ---------------------------------------------------------------------------
// MinHashBlocker
// ---------------------------------------------------------------------------

namespace {

/// The text a record is shingled over: attribute values only (plus the
/// free text of textual records). The [COL]/[VAL] tags and attribute
/// names of the full §2.2 serialization are shared by every record of a
/// table — universal shingles that inflate the Jaccard similarity of
/// *unrelated* pairs and waste bands on boilerplate buckets.
std::string ShingleText(const Record& record) {
  if (record.format == RecordFormat::kTextual) return record.text;
  std::string out;
  for (const auto& [attr, value] : record.attrs) {
    out += SerializeValue(value);
    out += ' ';
  }
  return out;
}

}  // namespace

std::vector<uint64_t> MinHashBlocker::BandKeys(const Record& record) const {
  const int hashes = config_.num_hashes;
  const int bands = config_.num_bands;
  const int rows = hashes / bands;
  std::vector<uint64_t> sig(static_cast<size_t>(hashes), ~0ULL);

  std::string text = ShingleText(record);
  for (char& c : text) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  const size_t len = text.size();
  const size_t k = static_cast<size_t>(config_.shingle_len);
  const size_t n_shingles = len >= k ? len - k + 1 : (len > 0 ? 1 : 0);
  for (size_t s = 0; s < n_shingles; ++s) {
    const uint64_t base =
        Fnv1a64(text.data() + s, std::min(k, len - s)) ^ config_.seed;
    for (int h = 0; h < hashes; ++h) {
      const uint64_t v = Mix64(base + 0x9E3779B97F4A7C15ULL *
                                          static_cast<uint64_t>(h + 1));
      if (v < sig[static_cast<size_t>(h)]) sig[static_cast<size_t>(h)] = v;
    }
  }

  std::vector<uint64_t> keys(static_cast<size_t>(bands));
  for (int b = 0; b < bands; ++b) {
    uint64_t key = kFnvOffset ^ static_cast<uint64_t>(b);
    for (int r = 0; r < rows; ++r) {
      const uint64_t v = sig[static_cast<size_t>(b * rows + r)];
      key = Fnv1a64(reinterpret_cast<const char*>(&v), sizeof(v), key);
    }
    keys[static_cast<size_t>(b)] = key;
  }
  return keys;
}

MinHashBlocker::MinHashBlocker(const std::vector<Record>& left_table,
                               const std::vector<Record>& right_table)
    : MinHashBlocker(left_table, right_table, Config()) {}

MinHashBlocker::MinHashBlocker(const std::vector<Record>& left_table,
                               const std::vector<Record>& right_table,
                               const Config& config)
    : config_(config), left_table_(&left_table) {
  PROMPTEM_CHECK_MSG(config_.num_bands >= 1 &&
                         config_.num_hashes % config_.num_bands == 0,
                     "num_hashes must be a positive multiple of num_bands");
  PROMPTEM_CHECK(config_.shingle_len >= 1);
  right_size_ = right_table.size();
  bucket_cap_ = std::clamp<size_t>(
      static_cast<size_t>(config_.max_bucket_fraction *
                          static_cast<double>(right_size_)),
      16, std::max<size_t>(16, config_.max_bucket_cap));

  const int bands = config_.num_bands;
  // Right-side band keys, computed across the pool (per-record
  // independent, so deterministic), stored as one flat band-major array...
  std::vector<uint64_t> flat(static_cast<size_t>(bands) * right_size_);
  core::ParallelFor(0, static_cast<int64_t>(right_size_), kLeftGrain,
                    [&](int64_t begin, int64_t end) {
                      for (int64_t j = begin; j < end; ++j) {
                        const auto keys = BandKeys(right_table[static_cast<size_t>(j)]);
                        for (int b = 0; b < bands; ++b) {
                          flat[static_cast<size_t>(b) * right_size_ +
                               static_cast<size_t>(j)] =
                              keys[static_cast<size_t>(b)];
                        }
                      }
                    });

  // ...then packed per band into key -> ascending-rights tables. Only
  // band keys are retained — O(bands * right) memory, no per-record
  // signatures — which is what lets the index fit at 1M rows.
  if (config_.index_backend == IndexBackend::kSortedArray) {
    // Legacy backend: sorted (key, right) arrays probed with
    // equal_range. Bands are independent, so the sorts run across the
    // pool.
    band_keys_.assign(static_cast<size_t>(bands), {});
    band_rights_.assign(static_cast<size_t>(bands), {});
    core::ParallelFor(0, bands, 1, [&](int64_t begin, int64_t end) {
      for (int64_t b = begin; b < end; ++b) {
        const uint64_t* keys =
            flat.data() + static_cast<size_t>(b) * right_size_;
        std::vector<int32_t> order(right_size_);
        for (size_t j = 0; j < right_size_; ++j) {
          order[j] = static_cast<int32_t>(j);
        }
        std::sort(order.begin(), order.end(), [&](int32_t a, int32_t c) {
          return keys[static_cast<size_t>(a)] != keys[static_cast<size_t>(c)]
                     ? keys[static_cast<size_t>(a)] <
                           keys[static_cast<size_t>(c)]
                     : a < c;
        });
        auto& bk = band_keys_[static_cast<size_t>(b)];
        auto& br = band_rights_[static_cast<size_t>(b)];
        bk.resize(right_size_);
        br.resize(right_size_);
        for (size_t j = 0; j < right_size_; ++j) {
          bk[j] = keys[static_cast<size_t>(order[j])];
          br[j] = order[j];
        }
      }
    });
    for (const auto& bk : band_keys_) {
      for (size_t j = 0; j < bk.size();) {
        size_t k = j;
        while (k < bk.size() && bk[k] == bk[j]) ++k;
        if (k - j > bucket_cap_) ++buckets_over_cap_;
        j = k;
      }
    }
    return;
  }

  // HashIndex backends: one postings index per band. AddPosting uses
  // rank = right, so a key's sealed list is the rights ascending —
  // byte-for-byte the segment the sorted arrays cover with equal_range.
  const bool mmap_backed =
      config_.index_backend == IndexBackend::kHashIndexMmap;
  if (mmap_backed) {
    PROMPTEM_CHECK_MSG(!config_.index_dir.empty(),
                       "kHashIndexMmap requires Config::index_dir");
    ::mkdir(config_.index_dir.c_str(), 0755);  // EEXIST is fine
  }
  band_index_.resize(static_cast<size_t>(bands));
  auto build_band = [&](int64_t b) {
    core::HashIndex::Options options;
    options.backend = mmap_backed ? core::HashIndex::Backend::kMmap
                                  : core::HashIndex::Backend::kRam;
    if (mmap_backed) {
      options.path =
          config_.index_dir + "/band_" + std::to_string(b) + ".phx";
    }
    auto index = std::make_unique<core::HashIndex>(options);
    const uint64_t* keys = flat.data() + static_cast<size_t>(b) * right_size_;
    if (mmap_backed) {
      // Sharded-lock parallel insert within the band (the outer loop is
      // sequential here to bound staging memory to one band at a time).
      core::ParallelFor(0, static_cast<int64_t>(right_size_), 1024,
                        [&](int64_t begin, int64_t end) {
                          for (int64_t j = begin; j < end; ++j) {
                            index->AddPosting(keys[static_cast<size_t>(j)],
                                              static_cast<int32_t>(j));
                          }
                        });
    } else {
      for (size_t j = 0; j < right_size_; ++j) {
        index->AddPosting(keys[j], static_cast<int32_t>(j));
      }
    }
    const core::Status sealed = index->Seal();
    PROMPTEM_CHECK_MSG(sealed.ok(), sealed.ToString().c_str());
    band_index_[static_cast<size_t>(b)] = std::move(index);
  };
  if (mmap_backed) {
    // One band's staging at a time: the sealed bytes land in the band
    // file, so peak heap stays O(right), not O(bands * right).
    for (int64_t b = 0; b < bands; ++b) build_band(b);
  } else {
    core::ParallelFor(0, bands, 1, [&](int64_t begin, int64_t end) {
      for (int64_t b = begin; b < end; ++b) build_band(b);
    });
  }
  band_snap_.reserve(static_cast<size_t>(bands));
  for (const auto& index : band_index_) {
    band_snap_.push_back(index->snapshot());
    band_snap_.back().ForEach(
        [&](uint64_t, core::HashIndex::Span payload) {
          if (payload.size / sizeof(int32_t) > bucket_cap_) {
            ++buckets_over_cap_;
          }
        });
  }
}

MinHashBlocker::IndexStats MinHashBlocker::index_stats() const {
  IndexStats stats;
  stats.buckets_over_cap = buckets_over_cap_;
  stats.capped_probes = capped_probes_.load(std::memory_order_relaxed);
  if (config_.index_backend == IndexBackend::kSortedArray) {
    for (size_t b = 0; b < band_keys_.size(); ++b) {
      const uint64_t bytes =
          band_keys_[b].size() * sizeof(uint64_t) +
          band_rights_[b].size() * sizeof(int32_t);
      stats.band_bytes.push_back(bytes);
      stats.ram_bytes += bytes;
    }
    return stats;
  }
  for (const auto& snap : band_snap_) {
    const uint64_t bytes = snap.ram_bytes() + snap.file_bytes();
    stats.band_bytes.push_back(bytes);
    stats.ram_bytes += snap.ram_bytes();
    stats.file_bytes += snap.file_bytes();
  }
  return stats;
}

void MinHashBlocker::CandidatesForLeft(int left_index,
                                       std::vector<PairExample>* out) const {
  const auto keys = BandKeys((*left_table_)[static_cast<size_t>(left_index)]);
  const bool legacy = config_.index_backend == IndexBackend::kSortedArray;
  std::vector<int32_t> hits;
  for (int b = 0; b < config_.num_bands; ++b) {
    if (legacy) {
      const auto& bk = band_keys_[static_cast<size_t>(b)];
      const auto& br = band_rights_[static_cast<size_t>(b)];
      const auto range = std::equal_range(bk.begin(), bk.end(),
                                          keys[static_cast<size_t>(b)]);
      const size_t lo = static_cast<size_t>(range.first - bk.begin());
      const size_t hi = static_cast<size_t>(range.second - bk.begin());
      if (hi - lo > bucket_cap_) {  // boilerplate bucket, no signal
        capped_probes_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      hits.insert(hits.end(), br.begin() + static_cast<ptrdiff_t>(lo),
                  br.begin() + static_cast<ptrdiff_t>(hi));
      continue;
    }
    const int32_t* values = nullptr;
    size_t count = 0;
    if (!band_snap_[static_cast<size_t>(b)].FindPostings(
            keys[static_cast<size_t>(b)], &values, &count)) {
      continue;
    }
    if (count > bucket_cap_) {  // boilerplate bucket, no signal
      capped_probes_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    hits.insert(hits.end(), values, values + count);
  }
  if (hits.empty()) return;
  std::sort(hits.begin(), hits.end());

  // Run-length the sorted hit list into (right, band-match count), rank
  // by (count desc, right asc), keep top-k.
  std::vector<std::pair<int32_t, int>> counted;
  for (size_t i = 0; i < hits.size();) {
    size_t j = i;
    while (j < hits.size() && hits[j] == hits[i]) ++j;
    const int count = static_cast<int>(j - i);
    if (count >= config_.min_band_matches) {
      counted.emplace_back(hits[i], count);
    }
    i = j;
  }
  std::stable_sort(counted.begin(), counted.end(),
                   [](const auto& a, const auto& b) {
                     return a.second != b.second ? a.second > b.second
                                                 : a.first < b.first;
                   });
  if (static_cast<int>(counted.size()) > config_.top_k) {
    counted.resize(static_cast<size_t>(config_.top_k));
  }
  for (const auto& [right, count] : counted) {
    out->push_back({left_index, right, kUnlabeledLabel});
  }
}

// ---------------------------------------------------------------------------
// Blocking quality
// ---------------------------------------------------------------------------

namespace {

struct PairHash {
  size_t operator()(const std::pair<int, int>& p) const {
    return static_cast<size_t>(
        Mix64((static_cast<uint64_t>(static_cast<uint32_t>(p.first)) << 32) |
              static_cast<uint32_t>(p.second)));
  }
};

BlockingQuality QualityFromCounts(size_t kept, size_t total,
                                  size_t num_candidates, size_t left_size,
                                  size_t right_size) {
  BlockingQuality quality;
  quality.num_candidates = num_candidates;
  quality.pair_completeness =
      total == 0 ? 1.0 : static_cast<double>(kept) / static_cast<double>(total);
  const double all_pairs =
      static_cast<double>(left_size) * static_cast<double>(right_size);
  quality.reduction_ratio =
      all_pairs == 0.0
          ? 0.0
          : 1.0 - static_cast<double>(num_candidates) / all_pairs;
  return quality;
}

}  // namespace

BlockingQuality EvaluateBlocking(
    const std::vector<PairExample>& candidates,
    const std::vector<PairExample>& gold_matches, size_t left_size,
    size_t right_size) {
  std::unordered_set<std::pair<int, int>, PairHash> candidate_set;
  candidate_set.reserve(candidates.size());
  for (const auto& c : candidates) {
    candidate_set.emplace(c.left_index, c.right_index);
  }
  size_t kept = 0;
  size_t total = 0;
  for (const auto& g : gold_matches) {
    if (g.label != 1) continue;
    ++total;
    kept += candidate_set.count({g.left_index, g.right_index});
  }
  return QualityFromCounts(kept, total, candidates.size(), left_size,
                           right_size);
}

BlockingQuality EvaluateBlockingStream(
    Blocker* blocker, const std::vector<PairExample>& gold_matches,
    size_t chunk_size) {
  PROMPTEM_CHECK(blocker != nullptr);
  PROMPTEM_CHECK(chunk_size >= 1);
  std::unordered_set<std::pair<int, int>, PairHash> gold_set;
  for (const auto& g : gold_matches) {
    if (g.label == 1) gold_set.emplace(g.left_index, g.right_index);
  }
  const size_t total = gold_set.size();

  blocker->Reset();
  size_t kept = 0;
  size_t num_candidates = 0;
  std::vector<PairExample> chunk;
  chunk.reserve(chunk_size);
  while (blocker->NextChunk(chunk_size, &chunk) > 0) {
    num_candidates += chunk.size();
    for (const auto& c : chunk) {
      // erase() rather than count() so duplicate candidates (possible
      // across blockers in principle) never double-count a gold match.
      kept += gold_set.erase({c.left_index, c.right_index});
    }
    chunk.clear();
  }
  return QualityFromCounts(kept, total, num_candidates, blocker->left_size(),
                           blocker->right_size());
}

}  // namespace promptem::data
