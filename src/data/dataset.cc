#include "data/dataset.h"

#include <algorithm>
#include <atomic>

#include "core/hashing.h"
#include "data/serializer.h"

namespace promptem::data {

uint64_t NextDatasetIdentity() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

uint64_t DatasetFingerprint(const GemDataset& dataset) {
  uint64_t hash = core::kFnv1aOffset;
  // Table sizes guard against boundary ambiguity (where the left table
  // ends and the right begins).
  const uint64_t sizes[2] = {dataset.left_table.size(),
                             dataset.right_table.size()};
  hash = core::Fnv1a64(sizes, sizeof(sizes), hash);
  for (const auto& record : dataset.left_table) {
    hash = core::Fnv1a64(SerializeRecord(record), hash);
  }
  for (const auto& record : dataset.right_table) {
    hash = core::Fnv1a64(SerializeRecord(record), hash);
  }
  return hash;
}

double GemDataset::MeanAttrs(const std::vector<Record>& table) {
  if (table.empty()) return 0.0;
  int64_t total = 0;
  for (const auto& r : table) total += r.NumAttrs();
  return static_cast<double>(total) / static_cast<double>(table.size());
}

namespace {

LowResourceSplit SplitWithLabeledCount(const GemDataset& dataset,
                                       size_t labeled_count,
                                       core::Rng* rng) {
  PROMPTEM_CHECK(labeled_count >= 1);
  labeled_count = std::min(labeled_count, dataset.train.size());

  // Stratify: shuffle positives and negatives separately, then take a
  // proportional slice of each so tiny label budgets keep both classes.
  std::vector<PairExample> pos;
  std::vector<PairExample> neg;
  for (const auto& p : dataset.train) {
    (p.label == 1 ? pos : neg).push_back(p);
  }
  rng->Shuffle(&pos);
  rng->Shuffle(&neg);

  const double pos_share =
      dataset.train.empty()
          ? 0.0
          : static_cast<double>(pos.size()) / dataset.train.size();
  size_t take_pos = static_cast<size_t>(pos_share * labeled_count + 0.5);
  take_pos = std::min(take_pos, pos.size());
  if (take_pos == 0 && !pos.empty() && labeled_count >= 2) take_pos = 1;
  size_t take_neg = labeled_count - take_pos;
  if (take_neg > neg.size()) {
    take_pos = std::min(pos.size(), take_pos + (take_neg - neg.size()));
    take_neg = neg.size();
  }

  LowResourceSplit split;
  split.labeled.insert(split.labeled.end(), pos.begin(),
                       pos.begin() + static_cast<long>(take_pos));
  split.labeled.insert(split.labeled.end(), neg.begin(),
                       neg.begin() + static_cast<long>(take_neg));
  split.unlabeled.insert(split.unlabeled.end(),
                         pos.begin() + static_cast<long>(take_pos),
                         pos.end());
  split.unlabeled.insert(split.unlabeled.end(),
                         neg.begin() + static_cast<long>(take_neg),
                         neg.end());
  rng->Shuffle(&split.labeled);
  rng->Shuffle(&split.unlabeled);
  split.valid = dataset.valid;
  split.test = dataset.test;
  return split;
}

}  // namespace

LowResourceSplit MakeLowResourceSplit(const GemDataset& dataset, double rate,
                                      core::Rng* rng) {
  PROMPTEM_CHECK(rate > 0.0 && rate <= 1.0);
  // The paper's rate applies to "All" labeled examples; the labeled budget
  // is rate * All, drawn from the training pool.
  const auto budget = static_cast<size_t>(
      std::max(1.0, rate * dataset.TotalLabeled() + 0.5));
  return SplitWithLabeledCount(dataset, budget, rng);
}

LowResourceSplit MakeCountSplit(const GemDataset& dataset, int count,
                                core::Rng* rng) {
  PROMPTEM_CHECK(count >= 1);
  return SplitWithLabeledCount(dataset, static_cast<size_t>(count), rng);
}

double PositiveRate(const std::vector<PairExample>& pairs) {
  if (pairs.empty()) return 0.0;
  int64_t pos = 0;
  for (const auto& p : pairs) pos += p.label == 1 ? 1 : 0;
  return static_cast<double>(pos) / static_cast<double>(pairs.size());
}

}  // namespace promptem::data
