#include "data/benchmarks.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "core/string_util.h"

namespace promptem::data {

namespace {

// ---------------------------------------------------------------------------
// Pseudo-word generation. Syllable-based words give a Zipf-ish vocabulary
// with realistic collisions (shared prefixes) without shipping real data.
// ---------------------------------------------------------------------------

const char* const kSyllables[] = {
    "ba", "be", "bi", "bo", "bu", "ca", "ce", "ci", "co", "cu", "da", "de",
    "di", "do", "du", "fa", "fe", "fi", "fo", "fu", "ga", "ge", "gi", "go",
    "gu", "ha", "he", "hi", "ho", "hu", "ka", "ke", "ki", "ko", "ku", "la",
    "le", "li", "lo", "lu", "ma", "me", "mi", "mo", "mu", "na", "ne", "ni",
    "no", "nu", "pa", "pe", "pi", "po", "pu", "ra", "re", "ri", "ro", "ru",
    "sa", "se", "si", "so", "su", "ta", "te", "ti", "to", "tu", "va", "ve",
    "vi", "vo", "vu", "za", "ze", "zi", "zo", "zu", "mar", "ton", "ser",
    "lan", "ber", "chi", "dor", "el", "fran", "gram", "hol", "jin", "kel",
    "lim", "mon", "nor", "pol", "quin", "ros", "stan", "tril", "und", "vor",
    "wil", "xan", "yor", "zen"};
constexpr int kNumSyllables =
    static_cast<int>(sizeof(kSyllables) / sizeof(kSyllables[0]));

std::string MakeWord(core::Rng* rng, int min_syll, int max_syll) {
  const int n = static_cast<int>(rng->UniformInt(min_syll, max_syll));
  std::string w;
  for (int i = 0; i < n; ++i) {
    w += kSyllables[rng->NextU64(kNumSyllables)];
  }
  return w;
}

std::vector<std::string> MakeWordPool(core::Rng* rng, int count,
                                      int min_syll, int max_syll) {
  std::vector<std::string> pool;
  pool.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    pool.push_back(MakeWord(rng, min_syll, max_syll));
  }
  return pool;
}

std::string Pick(const std::vector<std::string>& pool, core::Rng* rng) {
  return pool[rng->NextU64(pool.size())];
}

std::string MakeDigits(core::Rng* rng, int len) {
  std::string s;
  for (int i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('0' + rng->NextU64(10)));
  }
  return s;
}

// ---------------------------------------------------------------------------
// Noise processes applied when rendering one world entity into a table row.
// `level` in [0,1] scales every corruption probability.
// ---------------------------------------------------------------------------

std::string AbbreviateWord(const std::string& w) {
  if (w.size() <= 3) return w;
  return w.substr(0, 3) + ".";
}

std::string TypoWord(const std::string& w, core::Rng* rng) {
  if (w.size() < 3) return w;
  std::string out = w;
  const size_t i = 1 + rng->NextU64(out.size() - 2);
  std::swap(out[i - 1], out[i]);
  return out;
}

std::vector<std::string> NoisyWords(const std::vector<std::string>& words,
                                    double level, core::Rng* rng) {
  std::vector<std::string> out;
  out.reserve(words.size());
  for (const auto& w : words) {
    if (words.size() > 2 && rng->Bernoulli(0.25 * level)) continue;  // drop
    std::string v = w;
    if (rng->Bernoulli(0.5 * level)) v = AbbreviateWord(v);
    if (rng->Bernoulli(0.2 * level)) v = TypoWord(v, rng);
    out.push_back(v);
  }
  if (out.empty()) out.push_back(words.front());
  return out;
}

std::string NoisyPhrase(const std::vector<std::string>& words, double level,
                        core::Rng* rng) {
  return core::JoinStrings(NoisyWords(words, level, rng), " ");
}

// ---------------------------------------------------------------------------
// World entities: canonical truth records rendered into both tables.
// Entities come in families of two "siblings" that share surface features
// (hard negatives); the differentiating signal per benchmark controls task
// difficulty.
// ---------------------------------------------------------------------------

struct WorldEntity {
  std::vector<std::string> name_words;
  std::vector<std::string> people;  // "first last" strings
  std::string org;
  std::string category;
  std::string city;
  std::string street;
  int street_no = 0;
  int year = 0;
  int month = 1;
  int day = 1;
  int pages = 0;
  double price = 0.0;
  std::string phone;
  std::string ident;  // isbn / model number
  double lat = 0.0;
  double lon = 0.0;
  std::vector<std::string> desc_words;
  int family = 0;
};

struct World {
  std::vector<std::string> nouns;
  std::vector<std::string> adjectives;
  std::vector<std::string> first_names;
  std::vector<std::string> last_names;
  std::vector<std::string> orgs;
  std::vector<std::string> categories;
  std::vector<std::string> cities;
  std::vector<std::string> streets;
  std::vector<WorldEntity> entities;
};

std::string MakePerson(const World& world, core::Rng* rng) {
  return Pick(world.first_names, rng) + " " + Pick(world.last_names, rng);
}

/// `sibling_divergence` selects what distinguishes family siblings:
/// 0 = everything differs except a shared name prefix (easy),
/// 1 = only people and org differ (medium),
/// 2 = only identifier digits and dates differ (hard; SEMI-HETER style).
World MakeWorld(core::Rng* rng, int num_entities, int sibling_divergence) {
  World world;
  world.nouns = MakeWordPool(rng, 80, 2, 3);
  world.adjectives = MakeWordPool(rng, 40, 2, 3);
  world.first_names = MakeWordPool(rng, 30, 2, 2);
  world.last_names = MakeWordPool(rng, 40, 2, 3);
  world.orgs = MakeWordPool(rng, 16, 2, 3);
  world.categories = MakeWordPool(rng, 10, 2, 2);
  world.cities = MakeWordPool(rng, 12, 2, 3);
  world.streets = MakeWordPool(rng, 20, 2, 3);

  const int num_families = (num_entities + 1) / 2;
  for (int f = 0; f < num_families; ++f) {
    // Family base.
    WorldEntity base;
    base.family = f;
    const int name_len = static_cast<int>(rng->UniformInt(3, 5));
    for (int i = 0; i < name_len; ++i) {
      base.name_words.push_back(
          i == 0 ? Pick(world.adjectives, rng) : Pick(world.nouns, rng));
    }
    const int num_people = static_cast<int>(rng->UniformInt(1, 3));
    for (int i = 0; i < num_people; ++i) {
      base.people.push_back(MakePerson(world, rng));
    }
    base.org = Pick(world.orgs, rng);
    base.category = Pick(world.categories, rng);
    base.city = Pick(world.cities, rng);
    base.street = Pick(world.streets, rng);
    base.street_no = static_cast<int>(rng->UniformInt(1, 999));
    base.year = static_cast<int>(rng->UniformInt(1990, 2022));
    base.month = static_cast<int>(rng->UniformInt(1, 12));
    base.day = static_cast<int>(rng->UniformInt(1, 28));
    base.pages = static_cast<int>(rng->UniformInt(80, 900));
    base.price = static_cast<double>(rng->UniformInt(5, 500)) +
                 0.01 * static_cast<double>(rng->UniformInt(0, 99));
    base.phone = MakeDigits(rng, 10);
    base.ident = MakeDigits(rng, 13);
    base.lat = 30.0 + 20.0 * rng->NextDouble();
    base.lon = -120.0 + 40.0 * rng->NextDouble();
    const int num_desc = static_cast<int>(rng->UniformInt(4, 8));
    for (int i = 0; i < num_desc; ++i) {
      base.desc_words.push_back(Pick(world.nouns, rng));
    }
    world.entities.push_back(base);
    if (static_cast<int>(world.entities.size()) >= num_entities) break;

    // Sibling: a confusable distinct entity in the same family.
    WorldEntity sib = base;
    switch (sibling_divergence) {
      case 0:
        // Shares only the first name word; everything else is fresh.
        sib.name_words.resize(1);
        while (sib.name_words.size() < base.name_words.size()) {
          sib.name_words.push_back(Pick(world.nouns, rng));
        }
        sib.people.clear();
        for (int i = 0; i < num_people; ++i) {
          sib.people.push_back(MakePerson(world, rng));
        }
        sib.org = Pick(world.orgs, rng);
        sib.city = Pick(world.cities, rng);
        sib.street = Pick(world.streets, rng);
        sib.street_no = static_cast<int>(rng->UniformInt(1, 999));
        sib.year = static_cast<int>(rng->UniformInt(1990, 2022));
        sib.phone = MakeDigits(rng, 10);
        sib.ident = MakeDigits(rng, 13);
        sib.lat = 30.0 + 20.0 * rng->NextDouble();
        sib.lon = -120.0 + 40.0 * rng->NextDouble();
        break;
      case 1:
        // Same name; people, org, year differ (textual signal remains).
        sib.people.clear();
        for (int i = 0; i < num_people; ++i) {
          sib.people.push_back(MakePerson(world, rng));
        }
        sib.org = Pick(world.orgs, rng);
        sib.year = static_cast<int>(rng->UniformInt(1990, 2022));
        sib.ident = MakeDigits(rng, 13);
        sib.phone = MakeDigits(rng, 10);
        sib.street_no = static_cast<int>(rng->UniformInt(1, 999));
        sib.desc_words[0] = Pick(world.nouns, rng);
        sib.lat = base.lat + 0.2 * (rng->NextDouble() - 0.5);
        sib.lon = base.lon + 0.2 * (rng->NextDouble() - 0.5);
        break;
      default:
        // Same name AND people/org; only digits (identifier, full date,
        // pages, price) distinguish the siblings — the SEMI-HETER regime
        // where LMs struggle (paper §5.2 and Appendix C).
        sib.ident = MakeDigits(rng, 13);
        sib.year = static_cast<int>(rng->UniformInt(1990, 2022));
        sib.month = static_cast<int>(rng->UniformInt(1, 12));
        sib.day = static_cast<int>(rng->UniformInt(1, 28));
        sib.pages = static_cast<int>(rng->UniformInt(80, 900));
        sib.price = static_cast<double>(rng->UniformInt(5, 500)) +
                    0.01 * static_cast<double>(rng->UniformInt(0, 99));
        break;
    }
    sib.family = f;
    world.entities.push_back(sib);
    if (static_cast<int>(world.entities.size()) >= num_entities) break;
  }
  return world;
}

// ---------------------------------------------------------------------------
// Per-benchmark rendering of one entity into the left / right table row.
// ---------------------------------------------------------------------------

using AttrList = std::vector<std::pair<std::string, Value>>;

std::string DateString(const WorldEntity& e) {
  return core::StrFormat("%02d/%02d/%d", e.month, e.day, e.year);
}

Record RenderRestaurantLeft(const WorldEntity& e, double noise,
                            core::Rng* rng) {
  AttrList attrs;
  attrs.emplace_back("name", Value::Str(NoisyPhrase(e.name_words, noise, rng)));
  attrs.emplace_back("address",
                     Value::Str(core::StrFormat("%d %s", e.street_no,
                                                e.street.c_str())));
  attrs.emplace_back("city", Value::Str(e.city));
  attrs.emplace_back("phone", Value::Str(e.phone));
  attrs.emplace_back("cuisine", Value::Str(e.category));
  attrs.emplace_back("price", Value::Num(e.price));
  return Record::Relational(std::move(attrs));
}

Record RenderRestaurantRight(const WorldEntity& e, double noise,
                             core::Rng* rng) {
  // Heterogeneous schema: different attribute names, address split in two,
  // phone formatted differently.
  AttrList attrs;
  attrs.emplace_back("restaurant",
                     Value::Str(NoisyPhrase(e.name_words, noise, rng)));
  attrs.emplace_back("street_no", Value::Num(e.street_no));
  attrs.emplace_back("street", Value::Str(e.street));
  attrs.emplace_back("town", Value::Str(e.city));
  attrs.emplace_back("phone_number",
                     Value::Str(e.phone.substr(0, 3) + "-" +
                                e.phone.substr(3, 3) + "-" +
                                e.phone.substr(6)));
  attrs.emplace_back("food_type", Value::Str(e.category));
  attrs.emplace_back("owner", Value::Str(e.people.front()));
  return Record::Relational(std::move(attrs));
}

Record RenderCitationSemi(const WorldEntity& e, double noise, core::Rng* rng,
                          bool alt_order) {
  std::vector<Value> authors;
  for (const auto& p : e.people) {
    if (alt_order) {
      // Citation-style abbreviation: "ronald fagin" -> "r. fagin". Whole
      // first-name tokens no longer match across tables.
      const size_t space = p.find(' ');
      authors.push_back(Value::Str(p.substr(0, 1) + ". " +
                                   (space == std::string::npos
                                        ? ""
                                        : p.substr(space + 1))));
    } else {
      authors.push_back(Value::Str(p));
    }
  }
  AttrList attrs;
  attrs.emplace_back("title", Value::Str(NoisyPhrase(e.name_words, noise, rng)));
  attrs.emplace_back("authors", Value::List(std::move(authors)));
  attrs.emplace_back("venue", Value::Str(e.org));
  attrs.emplace_back("year", Value::Num(e.year));
  attrs.emplace_back("pages", Value::Num(e.pages));
  attrs.emplace_back("topic", Value::Str(e.category));
  if (alt_order) {
    // Homogeneous schema, but attribute order may differ between tables.
    std::reverse(attrs.begin() + 1, attrs.end());
  }
  return Record::SemiStructured(std::move(attrs));
}

Record RenderBookSemi(const WorldEntity& e, double noise, core::Rng* rng,
                      bool right_side) {
  AttrList attrs;
  if (!right_side) {
    attrs.emplace_back("title",
                       Value::Str(NoisyPhrase(e.name_words, noise, rng)));
    attrs.emplace_back("author", Value::Str(e.people.front()));
    attrs.emplace_back("isbn", Value::Str(e.ident));
    attrs.emplace_back("publisher", Value::Str(e.org));
    attrs.emplace_back("publication_date", Value::Str(DateString(e)));
    attrs.emplace_back("pages", Value::Num(e.pages));
    attrs.emplace_back("price", Value::Num(e.price));
  } else {
    // Heterogeneous: renamed attributes, isbn10-style prefix, split date.
    attrs.emplace_back("book_title",
                       Value::Str(NoisyPhrase(e.name_words, noise, rng)));
    attrs.emplace_back("writer", Value::Str(e.people.front()));
    attrs.emplace_back("isbn13", Value::Str(e.ident));
    attrs.emplace_back("press", Value::Str(e.org));
    attrs.emplace_back("pub_year", Value::Num(e.year));
    attrs.emplace_back("pub_month", Value::Num(e.month));
    attrs.emplace_back("page_count", Value::Num(e.pages));
    attrs.emplace_back("list_price",
                       Value::Str(core::StrFormat("$%.2f", e.price)));
  }
  return Record::SemiStructured(std::move(attrs));
}

Record RenderMovieSemi(const WorldEntity& e, double noise, core::Rng* rng) {
  std::vector<Value> actors;
  for (const auto& p : e.people) actors.push_back(Value::Str(p));
  AttrList attrs;
  attrs.emplace_back("title", Value::Str(NoisyPhrase(e.name_words, noise, rng)));
  // Nested object exercises the recursive [COL]/[VAL] serialization.
  attrs.emplace_back(
      "credits",
      Value::Object({{"director", Value::Str(e.people.front())},
                     {"actors", Value::List(std::move(actors))}}));
  attrs.emplace_back("genre", Value::Str(e.category));
  attrs.emplace_back("year", Value::Num(e.year));
  return Record::SemiStructured(std::move(attrs));
}

Record RenderMovieRel(const WorldEntity& e, double noise, core::Rng* rng) {
  AttrList attrs;
  attrs.emplace_back("movie_name",
                     Value::Str(NoisyPhrase(e.name_words, noise, rng)));
  attrs.emplace_back("directed_by", Value::Str(e.people.front()));
  attrs.emplace_back("genre", Value::Str(e.category));
  attrs.emplace_back("release_year", Value::Num(e.year));
  attrs.emplace_back("runtime", Value::Num(90 + e.pages % 90));
  attrs.emplace_back("studio", Value::Str(e.org));
  return Record::Relational(std::move(attrs));
}

Record RenderProductSemi(const WorldEntity& e, double noise, core::Rng* rng) {
  AttrList attrs;
  attrs.emplace_back("name", Value::Str(NoisyPhrase(e.name_words, noise, rng)));
  attrs.emplace_back("brand", Value::Str(e.org));
  attrs.emplace_back("model", Value::Str(e.ident.substr(0, 6)));
  attrs.emplace_back("category", Value::Str(e.category));
  attrs.emplace_back("price", Value::Num(e.price));
  attrs.emplace_back("weight", Value::Num(e.pages % 50 + 1));
  attrs.emplace_back("color", Value::Str(e.desc_words[0]));
  attrs.emplace_back("material", Value::Str(e.desc_words[1]));
  attrs.emplace_back("year", Value::Num(e.year));
  attrs.emplace_back("feature", Value::Str(e.desc_words[2]));
  return Record::SemiStructured(std::move(attrs));
}

Record RenderProductText(const WorldEntity& e, double noise, core::Rng* rng) {
  // A long marketing description: the discriminative tokens (name, brand)
  // are buried in generic filler, and the exact model number is absent.
  // Long entries are what the paper's Appendix-F TF-IDF summarizer exists
  // for — and they dilute random-walk mass for graph matchers.
  static const char* kFiller[] = {
      "with",    "quality", "great",   "design",  "features", "high",
      "new",     "best",    "value",   "product", "series",   "edition",
      "style",   "premium", "classic", "modern",  "perfect",  "everyday",
      "durable", "popular"};
  std::vector<std::string> words;
  words.push_back("the");
  for (const auto& w : e.name_words) words.push_back(w);
  words.push_back("by");
  words.push_back(e.org);
  words.push_back("in");
  words.push_back(e.desc_words[0]);
  words.push_back(e.desc_words[1]);
  words.push_back("finish");
  words.push_back("a");
  words.push_back(e.category);
  words.push_back("from");
  words.push_back(core::StrFormat("%d", e.year));
  const int filler_count = static_cast<int>(rng->UniformInt(14, 22));
  for (int i = 0; i < filler_count; ++i) {
    words.push_back(kFiller[rng->NextU64(20)]);
    if (i % 4 == 2) {
      words.push_back(e.desc_words[rng->NextU64(e.desc_words.size())]);
    }
  }
  return Record::Textual(NoisyPhrase(words, noise, rng));
}

Record RenderPaperText(const WorldEntity& e, double noise, core::Rng* rng) {
  // Abstract-like text: some title words appear, plus topic words; venue
  // and authors usually absent (what makes REL-TEXT hard).
  std::vector<std::string> words;
  words.push_back("we");
  words.push_back("study");
  for (const auto& w : e.name_words) words.push_back(w);
  words.push_back("for");
  words.push_back(e.category);
  words.push_back("problems");
  for (const auto& w : e.desc_words) words.push_back(w);
  if (rng->Bernoulli(0.4)) {
    words.push_back("presented");
    words.push_back("at");
    words.push_back(e.org);
  }
  return Record::Textual(NoisyPhrase(words, noise, rng));
}

Record RenderPaperRel(const WorldEntity& e, double noise, core::Rng* rng) {
  AttrList attrs;
  attrs.emplace_back("title", Value::Str(NoisyPhrase(e.name_words, noise, rng)));
  attrs.emplace_back("authors",
                     Value::Str(core::JoinStrings(e.people, " ")));
  attrs.emplace_back("venue", Value::Str(e.org));
  attrs.emplace_back("year", Value::Num(e.year));
  attrs.emplace_back("pages", Value::Num(e.pages));
  attrs.emplace_back("area", Value::Str(e.category));
  return Record::Relational(std::move(attrs));
}

Record RenderGeoLeft(const WorldEntity& e, double noise, core::Rng* rng) {
  AttrList attrs;
  attrs.emplace_back("name", Value::Str(NoisyPhrase(e.name_words, noise, rng)));
  attrs.emplace_back("category", Value::Str(e.category));
  attrs.emplace_back("address",
                     Value::Str(core::StrFormat("%d %s", e.street_no,
                                                e.street.c_str())));
  attrs.emplace_back("latitude", Value::Num(std::round(e.lat * 1000) / 1000));
  attrs.emplace_back("longitude",
                     Value::Num(std::round(e.lon * 1000) / 1000));
  return Record::Relational(std::move(attrs));
}

Record RenderGeoRight(const WorldEntity& e, double noise, core::Rng* rng) {
  // Heterogeneous: lat/lon combined into one "position" attribute
  // (mirrors the paper's GEO-HETER construction, Appendix E).
  const double lat = e.lat + 0.0005 * (rng->NextDouble() - 0.5);
  const double lon = e.lon + 0.0005 * (rng->NextDouble() - 0.5);
  AttrList attrs;
  attrs.emplace_back("venue_name",
                     Value::Str(NoisyPhrase(e.name_words, noise, rng)));
  attrs.emplace_back("type", Value::Str(e.category));
  // A different provider reports coarser precision, so coordinate tokens
  // rarely match verbatim across tables.
  attrs.emplace_back("position",
                     Value::Str(core::StrFormat("%.2f %.2f", lat, lon)));
  attrs.emplace_back("street", Value::Str(e.street));
  return Record::Relational(std::move(attrs));
}

// ---------------------------------------------------------------------------
// Benchmark assembly.
// ---------------------------------------------------------------------------

struct GenSpec {
  int num_entities = 170;
  int num_pos = 96;
  int num_hard_neg = 96;
  int num_rand_neg = 96;
  int sibling_divergence = 1;
  double left_noise = 0.3;
  double right_noise = 0.3;
  Record (*render_left)(const WorldEntity&, double, core::Rng*) = nullptr;
  Record (*render_right)(const WorldEntity&, double, core::Rng*) = nullptr;
};

GemDataset Assemble(const BenchmarkInfo& info, const GenSpec& spec,
                    uint64_t seed) {
  core::Rng rng(seed);
  World world = MakeWorld(&rng, spec.num_entities, spec.sibling_divergence);
  const int n = static_cast<int>(world.entities.size());

  GemDataset ds;
  ds.name = info.name;
  ds.domain = info.domain;
  ds.default_rate = info.default_rate;
  ds.left_table.reserve(static_cast<size_t>(n));
  ds.right_table.reserve(static_cast<size_t>(n));
  for (const auto& e : world.entities) {
    ds.left_table.push_back(spec.render_left(e, spec.left_noise, &rng));
    ds.right_table.push_back(spec.render_right(e, spec.right_noise, &rng));
  }

  std::vector<PairExample> pairs;
  // Positives: left and right renderings of the same entity.
  std::vector<int> entity_order(n);
  for (int i = 0; i < n; ++i) entity_order[i] = i;
  rng.Shuffle(&entity_order);
  for (int i = 0; i < std::min(spec.num_pos, n); ++i) {
    pairs.push_back({entity_order[i], entity_order[i], 1});
  }
  // Hard negatives: family siblings (adjacent indexes share a family).
  int hard = 0;
  for (int i = 0; i + 1 < n && hard < spec.num_hard_neg; i += 2) {
    if (world.entities[i].family == world.entities[i + 1].family) {
      pairs.push_back({i, i + 1, 0});
      ++hard;
      if (hard < spec.num_hard_neg) {
        pairs.push_back({i + 1, i, 0});
        ++hard;
      }
    }
  }
  // Random negatives across families.
  int made = 0;
  while (made < spec.num_rand_neg) {
    const int a = static_cast<int>(rng.NextU64(n));
    const int b = static_cast<int>(rng.NextU64(n));
    if (world.entities[a].family == world.entities[b].family) continue;
    pairs.push_back({a, b, 0});
    ++made;
  }
  rng.Shuffle(&pairs);

  // 60/20/20 split.
  const size_t total = pairs.size();
  const size_t train_end = total * 3 / 5;
  const size_t valid_end = total * 4 / 5;
  ds.train.assign(pairs.begin(), pairs.begin() + static_cast<long>(train_end));
  ds.valid.assign(pairs.begin() + static_cast<long>(train_end),
                  pairs.begin() + static_cast<long>(valid_end));
  ds.test.assign(pairs.begin() + static_cast<long>(valid_end), pairs.end());
  return ds;
}

Record RenderCitationSemiLeft(const WorldEntity& e, double noise,
                              core::Rng* rng) {
  return RenderCitationSemi(e, noise, rng, /*alt_order=*/false);
}
Record RenderCitationSemiRight(const WorldEntity& e, double noise,
                               core::Rng* rng) {
  return RenderCitationSemi(e, noise, rng, /*alt_order=*/true);
}
Record RenderBookLeft(const WorldEntity& e, double noise, core::Rng* rng) {
  return RenderBookSemi(e, noise, rng, /*right_side=*/false);
}
Record RenderBookRight(const WorldEntity& e, double noise, core::Rng* rng) {
  return RenderBookSemi(e, noise, rng, /*right_side=*/true);
}

const BenchmarkInfo kInfos[] = {
    {BenchmarkKind::kRelHeter, "REL-HETER", "R-H", "restaurant", 0.10},
    {BenchmarkKind::kSemiHomo, "SEMI-HOMO", "S-HO", "citation", 0.05},
    {BenchmarkKind::kSemiHeter, "SEMI-HETER", "S-HE", "book", 0.10},
    {BenchmarkKind::kSemiRel, "SEMI-REL", "S-R", "movie", 0.10},
    {BenchmarkKind::kSemiTextW, "SEMI-TEXT-w", "S-T-w", "product", 0.10},
    {BenchmarkKind::kSemiTextC, "SEMI-TEXT-c", "S-T-c", "product", 0.05},
    {BenchmarkKind::kRelText, "REL-TEXT", "R-T", "citation", 0.10},
    {BenchmarkKind::kGeoHeter, "GEO-HETER", "G-H", "geo-spatial", 0.10},
};

}  // namespace

const std::vector<BenchmarkKind>& AllBenchmarks() {
  static const std::vector<BenchmarkKind> kAll = {
      BenchmarkKind::kRelHeter,  BenchmarkKind::kSemiHomo,
      BenchmarkKind::kSemiHeter, BenchmarkKind::kSemiRel,
      BenchmarkKind::kSemiTextW, BenchmarkKind::kSemiTextC,
      BenchmarkKind::kRelText,   BenchmarkKind::kGeoHeter,
  };
  return kAll;
}

const BenchmarkInfo& GetBenchmarkInfo(BenchmarkKind kind) {
  for (const auto& info : kInfos) {
    if (info.kind == kind) return info;
  }
  PROMPTEM_CHECK_MSG(false, "unknown benchmark kind");
  return kInfos[0];
}

GemDataset GenerateBenchmark(BenchmarkKind kind, uint64_t seed,
                             const BenchmarkGenOptions& options) {
  const BenchmarkInfo& info = GetBenchmarkInfo(kind);
  GenSpec spec;
  switch (kind) {
    case BenchmarkKind::kRelHeter:
      // Easy: distinct names, light noise (paper: ~100 F1 for PromptEM).
      spec.sibling_divergence = 0;
      spec.left_noise = 0.1;
      spec.right_noise = 0.1;
      spec.render_left = RenderRestaurantLeft;
      spec.render_right = RenderRestaurantRight;
      break;
    case BenchmarkKind::kSemiHomo:
      spec.sibling_divergence = 1;
      spec.left_noise = 0.15;
      spec.right_noise = 0.15;
      spec.render_left = RenderCitationSemiLeft;
      spec.render_right = RenderCitationSemiRight;
      break;
    case BenchmarkKind::kSemiHeter:
      // Siblings differ only in digits: LM-hard (paper: TDmatch wins).
      spec.sibling_divergence = 2;
      spec.left_noise = 0.1;
      spec.right_noise = 0.1;
      spec.render_left = RenderBookLeft;
      spec.render_right = RenderBookRight;
      break;
    case BenchmarkKind::kSemiRel:
      spec.sibling_divergence = 1;
      spec.left_noise = 0.10;
      spec.right_noise = 0.10;
      spec.render_left = RenderMovieSemi;
      spec.render_right = RenderMovieRel;
      break;
    case BenchmarkKind::kSemiTextW:
      // Hardest: heavy text corruption (paper: ~41 F1).
      spec.sibling_divergence = 1;
      spec.left_noise = 0.40;
      spec.right_noise = 0.95;
      spec.render_left = RenderProductSemi;
      spec.render_right = RenderProductText;
      break;
    case BenchmarkKind::kSemiTextC:
      spec.sibling_divergence = 1;
      spec.left_noise = 0.15;
      spec.right_noise = 0.30;
      spec.render_left = RenderProductSemi;
      spec.render_right = RenderProductText;
      break;
    case BenchmarkKind::kRelText:
      spec.sibling_divergence = 1;
      spec.left_noise = 0.25;
      spec.right_noise = 0.4;
      spec.render_left = RenderPaperText;
      spec.render_right = RenderPaperRel;
      break;
    case BenchmarkKind::kGeoHeter:
      spec.sibling_divergence = 1;
      spec.left_noise = 0.12;
      spec.right_noise = 0.12;
      spec.render_left = RenderGeoLeft;
      spec.render_right = RenderGeoRight;
      break;
  }
  if (options.size_scale != 1.0) {
    auto scaled = [&](int v) {
      return std::max(4, static_cast<int>(v * options.size_scale));
    };
    spec.num_entities = scaled(spec.num_entities);
    spec.num_pos = scaled(spec.num_pos);
    spec.num_hard_neg = scaled(spec.num_hard_neg);
    spec.num_rand_neg = scaled(spec.num_rand_neg);
  }
  return Assemble(info, spec, seed ^ (static_cast<uint64_t>(kind) + 1));
}

std::vector<GemDataset> GenerateAllBenchmarks(uint64_t seed) {
  std::vector<GemDataset> out;
  for (BenchmarkKind kind : AllBenchmarks()) {
    out.push_back(GenerateBenchmark(kind, seed));
  }
  return out;
}

namespace {

void CountChars(const Value& v, int64_t* digits, int64_t* total) {
  switch (v.kind()) {
    case Value::Kind::kString:
      for (char c : v.as_string()) {
        if (std::isspace(static_cast<unsigned char>(c))) continue;
        ++*total;
        if (std::isdigit(static_cast<unsigned char>(c))) ++*digits;
      }
      return;
    case Value::Kind::kNumber: {
      const std::string s = v.NumberToString();
      for (char c : s) {
        ++*total;
        if (std::isdigit(static_cast<unsigned char>(c))) ++*digits;
      }
      return;
    }
    case Value::Kind::kList:
      for (const auto& item : v.as_list()) CountChars(item, digits, total);
      return;
    case Value::Kind::kObject:
      for (const auto& [name, item] : v.as_object()) {
        CountChars(item, digits, total);
      }
      return;
  }
}

}  // namespace

double DigitFraction(const std::vector<Record>& table) {
  int64_t digits = 0;
  int64_t total = 0;
  for (const auto& record : table) {
    if (record.format == RecordFormat::kTextual) {
      for (char c : record.text) {
        if (std::isspace(static_cast<unsigned char>(c))) continue;
        ++total;
        if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
      }
      continue;
    }
    for (const auto& [name, value] : record.attrs) {
      CountChars(value, &digits, &total);
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(digits) / total;
}

}  // namespace promptem::data
