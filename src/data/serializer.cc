#include "data/serializer.h"

namespace promptem::data {

namespace {

void AppendValue(const Value& value, std::string* out);

void AppendObject(
    const std::vector<std::pair<std::string, Value>>& fields,
    std::string* out) {
  for (const auto& [name, value] : fields) {
    if (!out->empty()) out->push_back(' ');
    out->append("[COL] ");
    out->append(name);
    out->append(" [VAL]");
    if (value.is_object()) {
      // Recursive tagging for each nesting level (paper §2.2 rule (i)).
      // AppendObject inserts its own separating space.
      AppendObject(value.as_object(), out);
    } else {
      std::string rendered;
      AppendValue(value, &rendered);
      if (!rendered.empty()) {
        out->push_back(' ');
        out->append(rendered);
      }
    }
  }
}

void AppendValue(const Value& value, std::string* out) {
  switch (value.kind()) {
    case Value::Kind::kString:
      out->append(value.as_string());
      return;
    case Value::Kind::kNumber:
      out->append(value.NumberToString());
      return;
    case Value::Kind::kList: {
      // Rule (ii): concatenate list elements into one string.
      bool first = true;
      for (const auto& item : value.as_list()) {
        if (!first) out->push_back(' ');
        first = false;
        AppendValue(item, out);
      }
      return;
    }
    case Value::Kind::kObject:
      AppendObject(value.as_object(), out);
      return;
  }
}

}  // namespace

std::string SerializeValue(const Value& value) {
  std::string out;
  AppendValue(value, &out);
  return out;
}

std::string SerializeRecord(const Record& record) {
  if (record.format == RecordFormat::kTextual) return record.text;
  std::string out;
  AppendObject(record.attrs, &out);
  return out;
}

std::string SerializePair(const Record& left, const Record& right) {
  return "[CLS] " + SerializeRecord(left) + " [SEP] " +
         SerializeRecord(right) + " [SEP]";
}

}  // namespace promptem::data
