#ifndef PROMPTEM_DATA_BENCHMARKS_H_
#define PROMPTEM_DATA_BENCHMARKS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace promptem::data {

/// The eight GEM benchmarks of the paper (seven Machamp datasets plus
/// GEO-HETER). Each generator reproduces the *structure* of the original:
/// table formats, schema heterogeneity, nesting, list attributes,
/// digit-heavy attributes, and noise processes; content is synthetic and
/// deterministic per seed (see DESIGN.md §1 for the substitution rationale).
enum class BenchmarkKind {
  kRelHeter,    ///< restaurant; relational vs relational, heterogeneous
  kSemiHomo,    ///< citation; semi-structured both sides, same schema
  kSemiHeter,   ///< book; semi-structured, heterogeneous, digit-heavy
  kSemiRel,     ///< movie; semi-structured (nested) vs relational
  kSemiTextW,   ///< product (watch-like); semi-structured vs noisy text
  kSemiTextC,   ///< product (computer-like); semi-structured vs text
  kRelText,     ///< citation; textual abstract vs relational metadata
  kGeoHeter,    ///< geo-spatial; split lat/lon vs combined position
};

/// Static description of one benchmark.
struct BenchmarkInfo {
  BenchmarkKind kind;
  const char* name;
  const char* abbrev;  ///< Table 4 abbreviation ("S-HO")
  const char* domain;
  double default_rate;  ///< Table 1 "% rate"
};

/// All eight benchmarks in the paper's table order.
const std::vector<BenchmarkKind>& AllBenchmarks();

/// Metadata for one benchmark kind.
const BenchmarkInfo& GetBenchmarkInfo(BenchmarkKind kind);

/// Generation knobs. The defaults size each benchmark for a single-core
/// budget; `size_scale` multiplies entity and pair counts (used by the
/// efficiency benchmark to grow inputs).
struct BenchmarkGenOptions {
  double size_scale = 1.0;
};

/// Deterministically generates one benchmark dataset.
GemDataset GenerateBenchmark(BenchmarkKind kind, uint64_t seed,
                             const BenchmarkGenOptions& options = {});

/// Generates all eight (same order as AllBenchmarks()).
std::vector<GemDataset> GenerateAllBenchmarks(uint64_t seed);

/// Fraction of attribute-value characters that are digits, over one table.
/// SEMI-HETER is generated to keep this above 0.5, matching the paper's
/// observation that 53% of its attribute values are digits.
double DigitFraction(const std::vector<Record>& table);

}  // namespace promptem::data

#endif  // PROMPTEM_DATA_BENCHMARKS_H_
