#ifndef PROMPTEM_DATA_RECORD_H_
#define PROMPTEM_DATA_RECORD_H_

#include <string>
#include <utility>
#include <vector>

#include "core/status.h"

namespace promptem::data {

/// The value of one attribute in a (semi-)structured entity. Supports the
/// shapes GEM needs: strings, numbers, lists (e.g., author lists), and
/// nested objects (semi-structured JSON-like records).
class Value {
 public:
  enum class Kind { kString, kNumber, kList, kObject };

  /// Factories.
  static Value Str(std::string s);
  static Value Num(double n);
  static Value List(std::vector<Value> items);
  static Value Object(std::vector<std::pair<std::string, Value>> fields);

  Kind kind() const { return kind_; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_list() const { return kind_ == Kind::kList; }
  bool is_object() const { return kind_ == Kind::kObject; }

  const std::string& as_string() const;
  double as_number() const;
  const std::vector<Value>& as_list() const;
  const std::vector<std::pair<std::string, Value>>& as_object() const;

  /// Number formatting drops trailing zeros ("2003", "4.5").
  std::string NumberToString() const;

 private:
  Kind kind_ = Kind::kString;
  std::string str_;
  double num_ = 0.0;
  std::vector<Value> list_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Storage format of one entity table (paper §2.1): relational rows,
/// semi-structured JSON-like objects, or unstructured text.
enum class RecordFormat { kRelational, kSemiStructured, kTextual };

const char* RecordFormatName(RecordFormat format);

/// One entity record. Relational records hold flat attributes (string or
/// number values only); semi-structured records may nest lists/objects;
/// textual records carry a single free-text body.
struct Record {
  RecordFormat format = RecordFormat::kRelational;
  std::vector<std::pair<std::string, Value>> attrs;  ///< empty for textual
  std::string text;                                  ///< textual only

  static Record Relational(
      std::vector<std::pair<std::string, Value>> attrs);
  static Record SemiStructured(
      std::vector<std::pair<std::string, Value>> attrs);
  static Record Textual(std::string text);

  /// Number of top-level attributes (textual records count as 1, matching
  /// how the paper's Table 1 reports #attr for text tables).
  int NumAttrs() const;

  /// Looks up a top-level attribute value; nullptr when absent.
  const Value* Find(const std::string& attr) const;
};

/// Validates structural invariants (relational records must be flat, text
/// records must have no attrs). Returns InvalidArgument on violation.
core::Status ValidateRecord(const Record& record);

}  // namespace promptem::data

#endif  // PROMPTEM_DATA_RECORD_H_
