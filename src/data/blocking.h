#ifndef PROMPTEM_DATA_BLOCKING_H_
#define PROMPTEM_DATA_BLOCKING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/hash_index.h"
#include "data/dataset.h"

namespace promptem::data {

/// Blocking — the first stage of the classic EM workflow (paper §2.1):
/// cheaply prunes the quadratic candidate space before the matcher runs.
/// The paper focuses on matching and assumes candidates exist; this
/// module supplies that substrate so the library covers the full
/// workflow on user data.
///
/// Blocker is the streaming face of that substrate. Candidates are pulled
/// in bounded chunks rather than materialized all at once, so the
/// downstream chunked scorer (em::MatchPipeline) runs all-pairs-scale
/// tables in memory bounded by the chunk size, not the candidate count.
///
/// Contract:
///  - NextChunk appends at most `max_pairs` candidates and returns the
///    number appended; 0 means the stream is exhausted.
///  - Every emitted pair carries label == kUnlabeledLabel (the blocker
///    proposes; it never labels).
///  - The candidate sequence is deterministic: the concatenation of all
///    chunks is a fixed function of the construction inputs, independent
///    of chunk sizes and of PROMPTEM_NUM_THREADS. Downstream scoring
///    order (and thus any order-sensitive reduction) is therefore bitwise
///    reproducible.
///  - Reset rewinds the stream to the beginning.
class Blocker {
 public:
  virtual ~Blocker() = default;

  virtual const char* Name() const = 0;
  virtual size_t left_size() const = 0;
  virtual size_t right_size() const = 0;

  /// Appends up to `max_pairs` next candidates to *out (which is not
  /// cleared). Returns the count appended; 0 = exhausted.
  virtual size_t NextChunk(size_t max_pairs, std::vector<PairExample>* out) = 0;

  /// Rewinds the stream to its first candidate.
  virtual void Reset() = 0;

  /// Drains the remaining stream into one vector (tests, small tables,
  /// the blocking-quality report). Defeats the bounded-memory point at
  /// million-record scale — production paths should chunk instead.
  std::vector<PairExample> Drain();
};

/// Shared skeleton for blockers that generate candidates one left record
/// at a time (overlap, MinHash): NextChunk refills an internal buffer by
/// running CandidatesForLeft over a fixed-size batch of left records on
/// the thread pool. The batch size and the per-left output order are
/// fixed, and per-left buffers are concatenated in left order, so the
/// stream is bitwise independent of the pool size.
class LeftStreamBlocker : public Blocker {
 public:
  size_t NextChunk(size_t max_pairs, std::vector<PairExample>* out) final;
  void Reset() override;

 protected:
  /// Appends the candidates of one left record in the blocker's
  /// deterministic per-left order. Must be safe to call concurrently for
  /// distinct left indices.
  virtual void CandidatesForLeft(int left_index,
                                 std::vector<PairExample>* out) const = 0;

 private:
  void Refill();

  size_t next_left_ = 0;     // first left record not yet generated
  std::vector<PairExample> pending_;
  size_t pending_pos_ = 0;
};

/// The no-blocking reference: streams every (left, right) pair in
/// row-major order without ever materializing the cross product. Gives
/// the quadratic candidate-count baseline the benches compare against,
/// and turns the pipeline into an exhaustive matcher on small tables.
class AllPairsBlocker : public Blocker {
 public:
  AllPairsBlocker(size_t left_size, size_t right_size)
      : left_size_(left_size), right_size_(right_size) {}

  const char* Name() const override { return "allpairs"; }
  size_t left_size() const override { return left_size_; }
  size_t right_size() const override { return right_size_; }
  size_t NextChunk(size_t max_pairs, std::vector<PairExample>* out) override;
  void Reset() override { next_left_ = 0; next_right_ = 0; }

 private:
  size_t left_size_;
  size_t right_size_;
  size_t next_left_ = 0;
  size_t next_right_ = 0;
};

/// Token-overlap blocker with IDF weighting: records sharing informative
/// tokens become candidates, ranked by the summed IDF of their shared
/// tokens, keeping the top-k rights per left record. Index construction
/// (tokenization) and candidate generation are parallelized over records
/// via core::ParallelFor; token ids, IDF, and the candidate stream are
/// bitwise independent of the pool size.
class OverlapBlocker : public LeftStreamBlocker {
 public:
  struct Config {
    int top_k = 10;            ///< candidates kept per left record
    int min_shared_tokens = 1;  ///< ignore pairs sharing fewer tokens
    /// Tokens appearing in more than this fraction of records carry no
    /// blocking signal and are dropped from the index.
    double max_token_frequency = 0.3;
  };

  OverlapBlocker(const std::vector<Record>& left_table,
                 const std::vector<Record>& right_table,
                 const Config& config);
  /// Default configuration (defined out of line: nested-class member
  /// initializers are unusable in default arguments here).
  OverlapBlocker(const std::vector<Record>& left_table,
                 const std::vector<Record>& right_table);

  const char* Name() const override { return "overlap"; }
  size_t left_size() const override { return left_tokens_.size(); }
  size_t right_size() const override { return right_tokens_.size(); }

  /// Generates every candidate at once (the pre-streaming API, kept for
  /// small tables and tests); parallel over left records, output in left
  /// order. Equivalent to Reset + Drain with `config`.
  std::vector<PairExample> GenerateCandidates(const Config& config) const;

  /// Blocking score of one pair: summed IDF of shared tokens.
  double PairScore(int left_index, int right_index) const;

 protected:
  void CandidatesForLeft(int left_index,
                         std::vector<PairExample>* out) const override;

 private:
  void CandidatesForLeftWithConfig(int left_index, const Config& config,
                                   std::vector<PairExample>* out) const;

  Config config_;
  std::vector<std::vector<int>> left_tokens_;   // token ids per record
  std::vector<std::vector<int>> right_tokens_;  // token ids per record
  std::vector<std::vector<int>> right_index_;   // token id -> right records
  std::vector<double> idf_;
  int num_tokens_ = 0;
};

/// MinHash-LSH blocker: each record's serialization is shingled into
/// character n-grams, min-hashed into a fixed-length signature, and the
/// signature split into bands; records sharing any band key become
/// candidates. Banding makes the candidate probability a steep function
/// of Jaccard similarity, so candidate counts stay near-linear in the
/// table size while near-duplicates are retained with high probability.
///
/// Per left record, bucket hits are ranked by the number of matching
/// bands (ties broken by right index) and the top-k kept — the same
/// shape OverlapBlocker emits. Signature computation runs over
/// core::ParallelFor; only per-band keys are stored (sorted key -> right
/// arrays), so the index is O(num_bands * right) with no per-record
/// signature retained.
class MinHashBlocker : public LeftStreamBlocker {
 public:
  /// Backing store for the per-band key -> rights tables. All three
  /// produce bitwise-identical candidate streams (pinned by
  /// hash_index_test): a posting list under a band key is the rights
  /// ascending, exactly the segment the legacy sorted arrays cover with
  /// equal_range.
  enum class IndexBackend {
    kSortedArray,    ///< legacy per-band sorted (key, right) arrays
    kHashIndexRam,   ///< core::HashIndex postings, in-RAM arena
    kHashIndexMmap,  ///< core::HashIndex postings, mmap files in index_dir
  };

  struct Config {
    int num_hashes = 32;   ///< signature length = num_bands * rows/band
    int num_bands = 16;    ///< bands of num_hashes / num_bands rows each
    int shingle_len = 4;   ///< character shingle length (lowercased)
    int top_k = 10;        ///< candidates kept per left record
    int min_band_matches = 1;  ///< require at least this many shared bands
    /// Buckets holding more than this fraction of the right table carry
    /// no blocking signal — think shared schema boilerplate — and are
    /// skipped, like OverlapBlocker's stop tokens.
    double max_bucket_fraction = 0.01;
    /// Absolute ceiling on the bucket cap (floor 16). Without it the cap
    /// grows linearly with the table, making probe cost quadratic at
    /// million-row scale; a true near-duplicate shares *rare* shingles,
    /// so skipping huge buckets costs almost no recall.
    size_t max_bucket_cap = 2048;
    uint64_t seed = 0x5EEDB10CULL;  ///< hash-family seed
    IndexBackend index_backend = IndexBackend::kHashIndexRam;
    /// Directory holding the per-band index files ("band_<b>.phx") for
    /// kHashIndexMmap (created if missing; ignored otherwise). The files
    /// outlive the blocker — they ARE the beyond-RAM index.
    std::string index_dir;
  };

  /// Memory observability for --blocking-report: where the band tables
  /// live (heap vs file) and how often the bucket cap fires.
  struct IndexStats {
    std::vector<uint64_t> band_bytes;  ///< sealed index bytes per band
    uint64_t ram_bytes = 0;            ///< sealed heap bytes, all bands
    uint64_t file_bytes = 0;           ///< on-disk bytes, all bands
    /// Buckets larger than the cap (dead weight the cap disables).
    uint64_t buckets_over_cap = 0;
    /// Probes that hit such a bucket and were skipped so far.
    uint64_t capped_probes = 0;
  };

  MinHashBlocker(const std::vector<Record>& left_table,
                 const std::vector<Record>& right_table,
                 const Config& config);
  /// Default configuration.
  MinHashBlocker(const std::vector<Record>& left_table,
                 const std::vector<Record>& right_table);

  const char* Name() const override { return "minhash"; }
  size_t left_size() const override { return left_table_->size(); }
  size_t right_size() const override { return right_size_; }

  /// Band keys of one record (exposed for tests / diagnostics).
  std::vector<uint64_t> BandKeys(const Record& record) const;

  /// Index memory/eviction counters (capped_probes accumulates as the
  /// stream is drained).
  IndexStats index_stats() const;

 protected:
  void CandidatesForLeft(int left_index,
                         std::vector<PairExample>* out) const override;

 private:
  Config config_;
  const std::vector<Record>* left_table_;  // not owned; must outlive this
  size_t right_size_ = 0;
  size_t bucket_cap_ = 0;
  /// kSortedArray backend — per band: right-record band keys sorted
  /// ascending (ties by right index), probed with equal_range.
  std::vector<std::vector<uint64_t>> band_keys_;
  std::vector<std::vector<int32_t>> band_rights_;
  /// kHashIndex* backends — per band: key -> ascending rights postings.
  /// Snapshots are pinned once at build, so probes are wait-free.
  std::vector<std::unique_ptr<core::HashIndex>> band_index_;
  std::vector<core::HashIndex::Snapshot> band_snap_;
  uint64_t buckets_over_cap_ = 0;
  mutable std::atomic<uint64_t> capped_probes_{0};
};

/// Blocking quality: pair completeness = fraction of gold matches kept;
/// reduction ratio = 1 - |candidates| / (|left| * |right|).
struct BlockingQuality {
  double pair_completeness = 0.0;
  double reduction_ratio = 0.0;
  size_t num_candidates = 0;
};

/// Evaluates candidates against gold matched pairs.
BlockingQuality EvaluateBlocking(
    const std::vector<PairExample>& candidates,
    const std::vector<PairExample>& gold_matches, size_t left_size,
    size_t right_size);

/// Streaming variant: folds the blocker's chunks without materializing
/// the candidate list (memory bounded by `chunk_size` + the gold set).
/// Resets the blocker first and leaves it exhausted.
BlockingQuality EvaluateBlockingStream(
    Blocker* blocker, const std::vector<PairExample>& gold_matches,
    size_t chunk_size = 65536);

}  // namespace promptem::data

#endif  // PROMPTEM_DATA_BLOCKING_H_
