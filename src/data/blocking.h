#ifndef PROMPTEM_DATA_BLOCKING_H_
#define PROMPTEM_DATA_BLOCKING_H_

#include <vector>

#include "data/dataset.h"

namespace promptem::data {

/// Blocking — the first stage of the classic EM workflow (paper §2.1):
/// cheaply prunes the quadratic candidate space before the matcher runs.
/// The paper focuses on matching and assumes candidates exist; this
/// module supplies that substrate so the library covers the full
/// workflow on user data.
///
/// OverlapBlocker is a token-overlap blocker with IDF weighting: records
/// sharing informative tokens become candidates, ranked by the summed
/// IDF of their shared tokens, keeping the top-k rights per left record.
class OverlapBlocker {
 public:
  struct Config {
    int top_k = 10;            ///< candidates kept per left record
    int min_shared_tokens = 1;  ///< ignore pairs sharing fewer tokens
    /// Tokens appearing in more than this fraction of records carry no
    /// blocking signal and are dropped from the index.
    double max_token_frequency = 0.3;
  };

  OverlapBlocker(const std::vector<Record>& left_table,
                 const std::vector<Record>& right_table);

  /// Generates candidate pairs (labels set to 0; the matcher decides).
  std::vector<PairExample> GenerateCandidates(const Config& config) const;

  /// Blocking score of one pair: summed IDF of shared tokens.
  double PairScore(int left_index, int right_index) const;

 private:
  std::vector<std::vector<int>> left_tokens_;   // token ids per record
  std::vector<std::vector<int>> right_tokens_;  // token ids per record
  std::vector<std::vector<int>> right_index_;   // token id -> right records
  std::vector<double> idf_;
  int num_tokens_ = 0;
};

/// Blocking quality: pair completeness = fraction of gold matches kept;
/// reduction ratio = 1 - |candidates| / (|left| * |right|).
struct BlockingQuality {
  double pair_completeness = 0.0;
  double reduction_ratio = 0.0;
};

/// Evaluates candidates against gold matched pairs.
BlockingQuality EvaluateBlocking(
    const std::vector<PairExample>& candidates,
    const std::vector<PairExample>& gold_matches, size_t left_size,
    size_t right_size);

}  // namespace promptem::data

#endif  // PROMPTEM_DATA_BLOCKING_H_
