#include "data/io.h"

#include <sys/stat.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "core/string_util.h"
#include "data/json.h"

namespace promptem::data {

namespace {

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

core::Result<std::vector<std::string>> ReadLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) return core::Status::IOError("cannot open: " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

/// Strict decimal-integer parse: the whole trimmed cell must be a number
/// that fits in int. atoi-style parsing would quietly turn garbage like
/// "1x" or "" into an index, which is exactly the silent-corruption mode
/// the pair loaders must reject.
bool ParseIntCell(const std::string& cell, int* out) {
  const std::string s = core::Trim(cell);
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  if (v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

/// True when the cell parses fully as a decimal number.
bool IsNumericCell(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

Value CellToValue(const std::string& cell) {
  if (IsNumericCell(cell)) {
    return Value::Num(std::strtod(cell.c_str(), nullptr));
  }
  return Value::Str(cell);
}

std::string ValueToCell(const Value& value) {
  switch (value.kind()) {
    case Value::Kind::kString:
      return value.as_string();
    case Value::Kind::kNumber:
      return value.NumberToString();
    default:
      // Relational CSV cells must be flat; callers guarantee this.
      PROMPTEM_CHECK_MSG(false, "CSV cell must be flat");
      return "";
  }
}

}  // namespace

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  return "\"" + core::ReplaceAll(field, "\"", "\"\"") + "\"";
}

core::Result<std::vector<Record>> LoadCsvTable(const std::string& path) {
  auto lines = ReadLines(path);
  if (!lines.ok()) return lines.status();
  if (lines.value().empty()) {
    return core::Status::InvalidArgument("CSV missing header: " + path);
  }
  const std::vector<std::string> header = SplitCsvLine(lines.value()[0]);
  std::vector<Record> table;
  for (size_t i = 1; i < lines.value().size(); ++i) {
    if (lines.value()[i].empty()) continue;
    const std::vector<std::string> cells = SplitCsvLine(lines.value()[i]);
    if (cells.size() != header.size()) {
      return core::Status::InvalidArgument(core::StrFormat(
          "%s line %zu: %zu cells for %zu columns", path.c_str(), i + 1,
          cells.size(), header.size()));
    }
    std::vector<std::pair<std::string, Value>> attrs;
    attrs.reserve(header.size());
    for (size_t c = 0; c < header.size(); ++c) {
      attrs.emplace_back(header[c], CellToValue(cells[c]));
    }
    table.push_back(Record::Relational(std::move(attrs)));
  }
  return table;
}

core::Result<std::vector<Record>> LoadJsonlTable(const std::string& path) {
  auto lines = ReadLines(path);
  if (!lines.ok()) return lines.status();
  std::vector<Record> table;
  for (size_t i = 0; i < lines.value().size(); ++i) {
    const std::string& line = lines.value()[i];
    if (core::Trim(line).empty()) continue;
    core::Result<Record> record = ParseJsonRecord(line);
    if (!record.ok()) {
      return core::Status::InvalidArgument(core::StrFormat(
          "%s line %zu: %s", path.c_str(), i + 1,
          record.status().message().c_str()));
    }
    table.push_back(std::move(record).value());
  }
  return table;
}

core::Result<std::vector<Record>> LoadTextTable(const std::string& path) {
  auto lines = ReadLines(path);
  if (!lines.ok()) return lines.status();
  std::vector<Record> table;
  for (const auto& line : lines.value()) {
    if (core::Trim(line).empty()) continue;
    table.push_back(Record::Textual(line));
  }
  return table;
}

core::Result<std::vector<Record>> LoadTableAuto(const std::string& stem) {
  if (FileExists(stem + ".csv")) return LoadCsvTable(stem + ".csv");
  if (FileExists(stem + ".jsonl")) return LoadJsonlTable(stem + ".jsonl");
  if (FileExists(stem + ".txt")) return LoadTextTable(stem + ".txt");
  return core::Status::NotFound("no table file at " + stem +
                                ".{csv,jsonl,txt}");
}

core::Result<std::vector<PairExample>> LoadPairsCsv(const std::string& path,
                                                    int left_size,
                                                    int right_size) {
  auto lines = ReadLines(path);
  if (!lines.ok()) return lines.status();
  std::vector<PairExample> pairs;
  for (size_t i = 0; i < lines.value().size(); ++i) {
    const std::string& line = lines.value()[i];
    if (core::Trim(line).empty()) continue;
    const std::vector<std::string> cells = SplitCsvLine(line);
    if (cells.size() != 3) {
      return core::Status::InvalidArgument(
          core::StrFormat("%s line %zu: expected 3 fields", path.c_str(),
                          i + 1));
    }
    PairExample pair;
    if (!ParseIntCell(cells[0], &pair.left_index) ||
        !ParseIntCell(cells[1], &pair.right_index) ||
        !ParseIntCell(cells[2], &pair.label)) {
      return core::Status::InvalidArgument(core::StrFormat(
          "%s line %zu: non-integer pair field", path.c_str(), i + 1));
    }
    if (pair.left_index < 0 || pair.left_index >= left_size ||
        pair.right_index < 0 || pair.right_index >= right_size ||
        (pair.label != 0 && pair.label != 1)) {
      return core::Status::OutOfRange(core::StrFormat(
          "%s line %zu: pair out of range", path.c_str(), i + 1));
    }
    pairs.push_back(pair);
  }
  return pairs;
}

core::Result<GemDataset> LoadGemDataset(const std::string& dir,
                                        const std::string& name) {
  GemDataset ds;
  ds.name = name;
  auto left = LoadTableAuto(dir + "/left");
  if (!left.ok()) return left.status();
  auto right = LoadTableAuto(dir + "/right");
  if (!right.ok()) return right.status();
  ds.left_table = std::move(left).value();
  ds.right_table = std::move(right).value();
  const int ln = static_cast<int>(ds.left_table.size());
  const int rn = static_cast<int>(ds.right_table.size());
  auto train = LoadPairsCsv(dir + "/pairs_train.csv", ln, rn);
  if (!train.ok()) return train.status();
  auto valid = LoadPairsCsv(dir + "/pairs_valid.csv", ln, rn);
  if (!valid.ok()) return valid.status();
  auto test = LoadPairsCsv(dir + "/pairs_test.csv", ln, rn);
  if (!test.ok()) return test.status();
  ds.train = std::move(train).value();
  ds.valid = std::move(valid).value();
  ds.test = std::move(test).value();
  return ds;
}

core::Result<std::string> SaveTable(const std::vector<Record>& table,
                                    const std::string& stem) {
  if (table.empty()) {
    return core::Status::InvalidArgument("cannot save empty table: " + stem);
  }
  const RecordFormat format = table.front().format;
  for (const auto& r : table) {
    if (r.format != format) {
      return core::Status::InvalidArgument(
          "mixed record formats in one table");
    }
  }
  std::string path;
  std::ostringstream out;
  switch (format) {
    case RecordFormat::kRelational: {
      path = stem + ".csv";
      // Header from the first record's attribute order.
      const auto& header = table.front().attrs;
      for (size_t c = 0; c < header.size(); ++c) {
        if (c > 0) out << ',';
        out << CsvEscape(header[c].first);
      }
      out << '\n';
      for (const auto& record : table) {
        if (record.attrs.size() != header.size()) {
          return core::Status::InvalidArgument(
              "relational rows must share one schema for CSV export");
        }
        for (size_t c = 0; c < record.attrs.size(); ++c) {
          const Value& v = record.attrs[c].second;
          if (v.kind() != Value::Kind::kString &&
              v.kind() != Value::Kind::kNumber) {
            return core::Status::InvalidArgument(
                "relational cell '" + record.attrs[c].first +
                "' is nested; CSV cells must be flat");
          }
          if (c > 0) out << ',';
          out << CsvEscape(ValueToCell(v));
        }
        out << '\n';
      }
      break;
    }
    case RecordFormat::kSemiStructured: {
      path = stem + ".jsonl";
      for (const auto& record : table) out << RecordToJson(record) << '\n';
      break;
    }
    case RecordFormat::kTextual: {
      path = stem + ".txt";
      for (const auto& record : table) out << record.text << '\n';
      break;
    }
  }
  std::ofstream f(path);
  if (!f) return core::Status::IOError("cannot write: " + path);
  f << out.str();
  if (!f) return core::Status::IOError("write failed: " + path);
  return path;
}

namespace {

core::Status SavePairs(const std::vector<PairExample>& pairs,
                       const std::string& path) {
  std::ofstream f(path);
  if (!f) return core::Status::IOError("cannot write: " + path);
  for (const auto& p : pairs) {
    f << p.left_index << ',' << p.right_index << ',' << p.label << '\n';
  }
  return f ? core::Status::OK()
           : core::Status::IOError("write failed: " + path);
}

}  // namespace

core::Status SaveGemDataset(const GemDataset& dataset,
                            const std::string& dir) {
  ::mkdir(dir.c_str(), 0755);  // best effort; write errors surface below
  auto left = SaveTable(dataset.left_table, dir + "/left");
  if (!left.ok()) return left.status();
  auto right = SaveTable(dataset.right_table, dir + "/right");
  if (!right.ok()) return right.status();
  PROMPTEM_RETURN_IF_ERROR(SavePairs(dataset.train,
                                     dir + "/pairs_train.csv"));
  PROMPTEM_RETURN_IF_ERROR(SavePairs(dataset.valid,
                                     dir + "/pairs_valid.csv"));
  PROMPTEM_RETURN_IF_ERROR(SavePairs(dataset.test, dir + "/pairs_test.csv"));
  return core::Status::OK();
}

}  // namespace promptem::data
