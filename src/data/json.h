#ifndef PROMPTEM_DATA_JSON_H_
#define PROMPTEM_DATA_JSON_H_

#include <string>
#include <string_view>

#include "core/status.h"
#include "data/record.h"

namespace promptem::data {

/// Parses one JSON document into a Value. Supported grammar covers what
/// semi-structured GEM records need: objects, arrays, strings (with
/// standard escapes incl. \uXXXX for the BMP), numbers, true/false/null
/// (booleans map to numbers 1/0; null maps to the empty string).
/// Duplicate object keys keep the last occurrence.
core::Result<Value> ParseJson(std::string_view text);

/// Parses a JSON object into a semi-structured Record.
/// Fails unless the top-level value is an object.
core::Result<Record> ParseJsonRecord(std::string_view text);

/// Serializes a Value back to compact JSON (strings escaped; numbers via
/// Value::NumberToString).
std::string ToJson(const Value& value);

/// Serializes a record's attributes as a JSON object. Textual records
/// become {"text": "..."}.
std::string RecordToJson(const Record& record);

}  // namespace promptem::data

#endif  // PROMPTEM_DATA_JSON_H_
