#include "data/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "core/string_util.h"

namespace promptem::data {

namespace {

/// Recursive-descent JSON parser over a string_view cursor.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  core::Result<Value> Parse() {
    SkipWhitespace();
    core::Result<Value> value = ParseValue();
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  core::Status Error(const std::string& message) const {
    return core::Status::InvalidArgument(
        core::StrFormat("JSON error at offset %zu: %s", pos_,
                        message.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  core::Result<Value> ParseValue() {
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        core::Result<std::string> s = ParseString();
        if (!s.ok()) return s.status();
        return Value::Str(std::move(s).value());
      }
      case 't':
        if (ConsumeLiteral("true")) return Value::Num(1);
        return Error("bad literal");
      case 'f':
        if (ConsumeLiteral("false")) return Value::Num(0);
        return Error("bad literal");
      case 'n':
        if (ConsumeLiteral("null")) return Value::Str("");
        return Error("bad literal");
      default:
        return ParseNumber();
    }
  }

  core::Result<Value> ParseObject() {
    PROMPTEM_CHECK(Consume('{'));
    std::vector<std::pair<std::string, Value>> fields;
    SkipWhitespace();
    if (Consume('}')) return Value::Object(std::move(fields));
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      core::Result<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after key");
      SkipWhitespace();
      core::Result<Value> value = ParseValue();
      if (!value.ok()) return value;
      // Last duplicate key wins.
      bool replaced = false;
      for (auto& [name, existing] : fields) {
        if (name == key.value()) {
          existing = std::move(value).value();
          replaced = true;
          break;
        }
      }
      if (!replaced) {
        fields.emplace_back(std::move(key).value(), std::move(value).value());
      }
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Value::Object(std::move(fields));
      return Error("expected ',' or '}' in object");
    }
  }

  core::Result<Value> ParseArray() {
    PROMPTEM_CHECK(Consume('['));
    std::vector<Value> items;
    SkipWhitespace();
    if (Consume(']')) return Value::List(std::move(items));
    for (;;) {
      SkipWhitespace();
      core::Result<Value> value = ParseValue();
      if (!value.ok()) return value;
      items.push_back(std::move(value).value());
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Value::List(std::move(items));
      return Error("expected ',' or ']' in array");
    }
  }

  /// Reads the four hex digits of a \uXXXX escape (cursor past "\u").
  core::Result<unsigned> ParseHex4() {
    if (pos_ + 4 > text_.size()) {
      return core::Status::InvalidArgument("truncated \\u escape");
    }
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code += static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code += static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code += static_cast<unsigned>(h - 'A' + 10);
      } else {
        return core::Status::InvalidArgument("bad \\u escape digit");
      }
    }
    return code;
  }

  core::Result<std::string> ParseString() {
    PROMPTEM_CHECK(Consume('"'));
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          core::Result<unsigned> unit = ParseHex4();
          if (!unit.ok()) return unit.status();
          unsigned code = unit.value();
          if (code >= 0xDC00 && code <= 0xDFFF) {
            return core::Status::InvalidArgument(
                "unpaired low surrogate in \\u escape");
          }
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: must be immediately followed by "\uDC00".."
            // \uDFFF"; the pair combines to one non-BMP code point.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return core::Status::InvalidArgument(
                  "unpaired high surrogate in \\u escape");
            }
            pos_ += 2;
            core::Result<unsigned> low = ParseHex4();
            if (!low.ok()) return low.status();
            if (low.value() < 0xDC00 || low.value() > 0xDFFF) {
              return core::Status::InvalidArgument(
                  "high surrogate not followed by low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low.value() - 0xDC00);
          }
          // UTF-8 encode the code point (1-4 bytes).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else if (code < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xF0 | (code >> 18)));
            out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return core::Status::InvalidArgument("unknown escape");
      }
    }
    return core::Status::InvalidArgument("unterminated string");
  }

  core::Result<Value> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool any_digit = false;
    auto eat_digits = [&]() {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        any_digit = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '-' || text_[pos_] == '+')) {
        ++pos_;
      }
      eat_digits();
    }
    if (!any_digit) return Error("invalid number");
    const std::string token(text_.substr(start, pos_ - start));
    return Value::Num(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out->append(core::StrFormat("\\u%04x", c));
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void ValueToJson(const Value& value, std::string* out) {
  switch (value.kind()) {
    case Value::Kind::kString:
      EscapeInto(value.as_string(), out);
      return;
    case Value::Kind::kNumber:
      out->append(value.NumberToString());
      return;
    case Value::Kind::kList: {
      out->push_back('[');
      bool first = true;
      for (const auto& item : value.as_list()) {
        if (!first) out->push_back(',');
        first = false;
        ValueToJson(item, out);
      }
      out->push_back(']');
      return;
    }
    case Value::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [name, item] : value.as_object()) {
        if (!first) out->push_back(',');
        first = false;
        EscapeInto(name, out);
        out->push_back(':');
        ValueToJson(item, out);
      }
      out->push_back('}');
      return;
    }
  }
}

}  // namespace

core::Result<Value> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

core::Result<Record> ParseJsonRecord(std::string_view text) {
  core::Result<Value> value = ParseJson(text);
  if (!value.ok()) return value.status();
  if (!value.value().is_object()) {
    return core::Status::InvalidArgument(
        "JSON record must be a top-level object");
  }
  return Record::SemiStructured(value.value().as_object());
}

std::string ToJson(const Value& value) {
  std::string out;
  ValueToJson(value, &out);
  return out;
}

std::string RecordToJson(const Record& record) {
  if (record.format == RecordFormat::kTextual) {
    return ToJson(Value::Object({{"text", Value::Str(record.text)}}));
  }
  return ToJson(Value::Object(record.attrs));
}

}  // namespace promptem::data
