#ifndef PROMPTEM_DATA_IO_H_
#define PROMPTEM_DATA_IO_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "data/dataset.h"

namespace promptem::data {

/// File-based dataset interchange, so the library runs on user data:
///  - relational tables as CSV (header row = attribute names; numeric
///    cells become number values),
///  - semi-structured tables as JSONL (one JSON object per line),
///  - textual tables as plain text (one record per line),
///  - labeled pairs as CSV "left_index,right_index,label".
///
/// A dataset directory contains: left.csv|left.jsonl|left.txt,
/// right.csv|right.jsonl|right.txt, and pairs_train.csv /
/// pairs_valid.csv / pairs_test.csv.

/// Splits one CSV line honoring double-quote quoting ("" escapes a quote).
std::vector<std::string> SplitCsvLine(const std::string& line);

/// Quotes a CSV field when needed.
std::string CsvEscape(const std::string& field);

/// Loads a relational table from CSV.
core::Result<std::vector<Record>> LoadCsvTable(const std::string& path);

/// Loads a semi-structured table from JSONL.
core::Result<std::vector<Record>> LoadJsonlTable(const std::string& path);

/// Loads a textual table (one record per non-empty line).
core::Result<std::vector<Record>> LoadTextTable(const std::string& path);

/// Loads whichever of path.csv / path.jsonl / path.txt exists for the
/// given stem ("dir/left").
core::Result<std::vector<Record>> LoadTableAuto(const std::string& stem);

/// Loads labeled pairs from CSV ("left_index,right_index,label", no
/// header). Indices are validated against the table sizes.
core::Result<std::vector<PairExample>> LoadPairsCsv(const std::string& path,
                                                    int left_size,
                                                    int right_size);

/// Loads a full dataset from a directory (see the layout above).
core::Result<GemDataset> LoadGemDataset(const std::string& dir,
                                        const std::string& name);

/// Writes a table in the format matching its records (CSV for relational,
/// JSONL for semi-structured, TXT for textual). Returns the path written.
core::Result<std::string> SaveTable(const std::vector<Record>& table,
                                    const std::string& stem);

/// Writes a dataset directory loadable by LoadGemDataset.
core::Status SaveGemDataset(const GemDataset& dataset,
                            const std::string& dir);

}  // namespace promptem::data

#endif  // PROMPTEM_DATA_IO_H_
