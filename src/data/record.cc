#include "data/record.h"

#include <cmath>
#include <cstdio>

namespace promptem::data {

Value Value::Str(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

Value Value::Num(double n) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.num_ = n;
  return v;
}

Value Value::List(std::vector<Value> items) {
  Value v;
  v.kind_ = Kind::kList;
  v.list_ = std::move(items);
  return v;
}

Value Value::Object(std::vector<std::pair<std::string, Value>> fields) {
  Value v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(fields);
  return v;
}

const std::string& Value::as_string() const {
  PROMPTEM_CHECK(is_string());
  return str_;
}

double Value::as_number() const {
  PROMPTEM_CHECK(is_number());
  return num_;
}

const std::vector<Value>& Value::as_list() const {
  PROMPTEM_CHECK(is_list());
  return list_;
}

const std::vector<std::pair<std::string, Value>>& Value::as_object() const {
  PROMPTEM_CHECK(is_object());
  return object_;
}

std::string Value::NumberToString() const {
  PROMPTEM_CHECK(is_number());
  if (num_ == std::floor(num_) && std::fabs(num_) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(num_));
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%g", num_);
  return buf;
}

const char* RecordFormatName(RecordFormat format) {
  switch (format) {
    case RecordFormat::kRelational:
      return "REL";
    case RecordFormat::kSemiStructured:
      return "SEMI";
    case RecordFormat::kTextual:
      return "TEXT";
  }
  return "?";
}

Record Record::Relational(
    std::vector<std::pair<std::string, Value>> attrs) {
  Record r;
  r.format = RecordFormat::kRelational;
  r.attrs = std::move(attrs);
  return r;
}

Record Record::SemiStructured(
    std::vector<std::pair<std::string, Value>> attrs) {
  Record r;
  r.format = RecordFormat::kSemiStructured;
  r.attrs = std::move(attrs);
  return r;
}

Record Record::Textual(std::string text) {
  Record r;
  r.format = RecordFormat::kTextual;
  r.text = std::move(text);
  return r;
}

int Record::NumAttrs() const {
  if (format == RecordFormat::kTextual) return 1;
  return static_cast<int>(attrs.size());
}

const Value* Record::Find(const std::string& attr) const {
  for (const auto& [name, value] : attrs) {
    if (name == attr) return &value;
  }
  return nullptr;
}

namespace {

bool IsFlat(const Value& v) { return v.is_string() || v.is_number(); }

}  // namespace

core::Status ValidateRecord(const Record& record) {
  switch (record.format) {
    case RecordFormat::kTextual:
      if (!record.attrs.empty()) {
        return core::Status::InvalidArgument(
            "textual record must not carry attributes");
      }
      return core::Status::OK();
    case RecordFormat::kRelational:
      if (!record.text.empty()) {
        return core::Status::InvalidArgument(
            "relational record must not carry free text");
      }
      for (const auto& [name, value] : record.attrs) {
        if (name.empty()) {
          return core::Status::InvalidArgument("empty attribute name");
        }
        if (!IsFlat(value)) {
          return core::Status::InvalidArgument(
              "relational attribute must be flat: " + name);
        }
      }
      return core::Status::OK();
    case RecordFormat::kSemiStructured:
      if (!record.text.empty()) {
        return core::Status::InvalidArgument(
            "semi-structured record must not carry free text");
      }
      for (const auto& [name, value] : record.attrs) {
        (void)value;
        if (name.empty()) {
          return core::Status::InvalidArgument("empty attribute name");
        }
      }
      return core::Status::OK();
  }
  return core::Status::Internal("unknown record format");
}

}  // namespace promptem::data
