#ifndef PROMPTEM_DATA_SYNTHETIC_H_
#define PROMPTEM_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace promptem::data {

/// Seeded synthetic two-table workload for the blocking / streaming-match
/// layers. Unlike the GEM benchmark generators (which reproduce the
/// paper's dataset *structures* at paper scale), this generator scales to
/// millions of rows with a known gold mapping, so blocking recall and
/// end-to-end block -> score -> match runs can be measured exactly.
///
/// Every left record gets exactly one perturbed copy in the right table
/// (typos, dropped attributes, price jitter — dirty-EM style noise), at a
/// position given by a seeded permutation; an optional fraction of
/// distractor records with no left match is mixed in. Generation is
/// per-record seeded (record i's content depends only on (seed, i)), so
/// it parallelizes over core::ParallelFor and is bitwise reproducible at
/// any pool size.
struct SyntheticTableOptions {
  size_t rows = 10000;  ///< left-table size; each row has one right match
  /// Extra unmatched right records, as a fraction of `rows`.
  double distractor_fraction = 0.1;
  /// Per-corruption probability applied to each right-side copy. 0 makes
  /// exact duplicates; the 0.25 default keeps character-shingle Jaccard
  /// high enough for LSH blocking while being visibly dirty.
  double perturbation = 0.25;
  uint64_t seed = 42;
};

struct SyntheticTables {
  std::vector<Record> left;
  std::vector<Record> right;
  /// Gold mapping: left i's matching right index (always valid).
  std::vector<int> right_of_left;
  /// Inverse mapping; -1 for distractor rights with no match.
  std::vector<int> left_of_right;

  /// 1 when (l, r) is the gold match, else 0. O(1).
  int GoldLabel(int l, int r) const {
    return right_of_left[static_cast<size_t>(l)] == r ? 1 : 0;
  }

  /// All gold matches as label-1 pairs (EvaluateBlocking's gold input).
  std::vector<PairExample> GoldMatches() const;

  /// Wraps the tables in a GemDataset with labeled train/valid/test pair
  /// splits sampled from the gold mapping (one positive and one random
  /// negative per sampled left record), so a matcher can be trained on
  /// the synthetic workload itself. The tables are *moved* into the
  /// returned dataset — `left`/`right` are empty afterwards, while the
  /// gold mappings stay valid.
  GemDataset ToDataset(size_t pairs_per_split, uint64_t seed);
};

SyntheticTables GenerateSyntheticTables(const SyntheticTableOptions& options);

}  // namespace promptem::data

#endif  // PROMPTEM_DATA_SYNTHETIC_H_
