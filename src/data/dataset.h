#ifndef PROMPTEM_DATA_DATASET_H_
#define PROMPTEM_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.h"
#include "data/record.h"

namespace promptem::data {

/// Process-unique identity token for cache keying. Every constructed
/// GemDataset draws one, so a cache keyed on it can never confuse two
/// datasets — unlike a raw `const GemDataset*`, which a destroy +
/// same-address reallocation silently reuses. Never zero.
uint64_t NextDatasetIdentity();

/// Label value for candidate pairs that carry no gold label — what every
/// Blocker emits. Distinct from 0 so downstream metrics can tell "true
/// negative" from "nobody labeled this"; ComputeMetrics skips unlabeled
/// pairs and McEl2nScoreBatch rejects them.
inline constexpr int kUnlabeledLabel = -1;

/// One candidate pair: indexes into the dataset's tables plus a binary
/// match label (1 = match / relevant, 0 = mismatch, kUnlabeledLabel = no
/// gold label attached).
struct PairExample {
  int left_index = 0;
  int right_index = 0;
  int label = 0;
};

/// A GEM benchmark: two entity tables (possibly of different formats /
/// schemas) and labeled candidate pairs pre-split into train/valid/test.
struct GemDataset {
  std::string name;
  std::string domain;
  std::vector<Record> left_table;
  std::vector<Record> right_table;
  std::vector<PairExample> train;
  std::vector<PairExample> valid;
  std::vector<PairExample> test;
  /// Default low-resource training fraction for this benchmark (Table 1's
  /// "% rate" column).
  double default_rate = 0.10;

  /// In-process cache identity. Caches (PairEncoder's encoding memo, the
  /// incremental matcher's score cache) key entries on this instead of
  /// the dataset's address. Copies share the originator's identity —
  /// correct while their tables are identical; call RefreshCacheIdentity
  /// after mutating a table in place so stale cache entries cannot be
  /// served for the changed records.
  uint64_t cache_identity = NextDatasetIdentity();

  void RefreshCacheIdentity() { cache_identity = NextDatasetIdentity(); }

  const Record& Left(const PairExample& p) const {
    return left_table[static_cast<size_t>(p.left_index)];
  }
  const Record& Right(const PairExample& p) const {
    return right_table[static_cast<size_t>(p.right_index)];
  }

  int TotalLabeled() const {
    return static_cast<int>(train.size() + valid.size() + test.size());
  }

  /// Mean top-level attribute count of a table (Table 1's #attr).
  static double MeanAttrs(const std::vector<Record>& table);
};

/// The low-resource view the trainers consume: a small labeled train set,
/// the rest of the training pool with labels hidden (for self-training),
/// plus the full validation and test sets.
struct LowResourceSplit {
  std::vector<PairExample> labeled;    ///< D_L
  std::vector<PairExample> unlabeled;  ///< D_U (labels retained for TPR/TNR
                                       ///< evaluation only; trainers must
                                       ///< not read them)
  std::vector<PairExample> valid;
  std::vector<PairExample> test;
};

/// Takes `rate` of the training pairs as the labeled set (stratified by
/// class so tiny rates keep at least one positive), the remainder as the
/// unlabeled pool. `rate` in (0, 1].
LowResourceSplit MakeLowResourceSplit(const GemDataset& dataset, double rate,
                                      core::Rng* rng);

/// Takes exactly `count` labeled training pairs (Table 3's extreme
/// setting, 80 labels), rest unlabeled.
LowResourceSplit MakeCountSplit(const GemDataset& dataset, int count,
                                core::Rng* rng);

/// Fraction of positive labels in a pair list.
double PositiveRate(const std::vector<PairExample>& pairs);

/// Content fingerprint of a dataset's tables: FNV-1a over every record's
/// serialized form (§2.2), chained left table then right. Unlike
/// cache_identity this survives process restarts, so persisted caches key
/// on it; it is O(corpus) to compute, so callers compute it once.
uint64_t DatasetFingerprint(const GemDataset& dataset);

}  // namespace promptem::data

#endif  // PROMPTEM_DATA_DATASET_H_
