#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/rng.h"
#include "core/status.h"
#include "core/thread_pool.h"

namespace promptem::data {

namespace {

constexpr int64_t kGenGrain = 512;

/// splitmix64 finalizer for deriving per-record seeds from (seed, index):
/// record content must depend only on these two values so generation can
/// shard across the pool without an order-dependent rng stream.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

const char* const kAdjectives[] = {
    "compact", "digital", "classic", "premium", "wireless", "portable",
    "vintage", "modern",  "deluxe",  "quantum", "hybrid",   "smart",
    "rapid",   "silent",  "solar",   "carbon",  "titan",    "nano",
    "ultra",   "micro",   "prime",   "stereo",  "turbo",    "atomic",
    "crystal", "mighty",  "nimble",  "sturdy",  "swift",    "vivid",
    "zen",     "aero"};

const char* const kNouns[] = {
    "speaker",  "camera",   "keyboard", "monitor", "router",   "charger",
    "blender",  "kettle",   "lamp",     "drill",   "scanner",  "printer",
    "headset",  "tablet",   "drone",    "watch",   "tripod",   "sensor",
    "battery",  "adapter",  "cable",    "mouse",   "phone",    "player",
    "console",  "freezer",  "heater",   "fan",     "mixer",    "toaster",
    "recorder", "repeater", "switch",   "dock",    "hub",      "case",
    "stand",    "mount",    "filter",   "pump",    "gauge",    "meter",
    "valve",    "bearing",  "gasket",   "spring",  "lens",     "visor"};

const char* const kBrands[] = {
    "acme",   "zenith", "orion",  "vertex", "nimbus", "cobalt",
    "quasar", "helix",  "lumina", "strato", "vulcan", "aurora",
    "pinion", "krypta", "maelis", "tundra", "fenwick", "galt",
    "harbor", "ionix",  "jasper", "keel",   "lyric",  "mistral"};

template <size_t N>
const char* Pick(const char* const (&pool)[N], core::Rng* rng) {
  return pool[rng->NextU64(N)];
}

std::string Base36Code(core::Rng* rng, int len) {
  static const char kDigits[] = "0123456789abcdefghijklmnopqrstuvwxyz";
  std::string code(static_cast<size_t>(len), '0');
  for (char& c : code) c = kDigits[rng->NextU64(36)];
  return code;
}

Record MakeLeftRecord(uint64_t seed, size_t index) {
  core::Rng rng(Mix64(seed ^ Mix64(index)));
  std::string name = std::string(Pick(kAdjectives, &rng)) + " " +
                     Pick(kNouns, &rng);
  const std::string brand = Pick(kBrands, &rng);
  // The 8-char code is the near-unique attribute that gives blocking its
  // strongest signal at million-row scale (name/brand pools collide).
  const std::string model = Base36Code(&rng, 8);
  const double year = 1990.0 + static_cast<double>(rng.NextU64(35));
  const double price =
      std::floor(rng.Uniform(5.0f, 2000.0f) * 100.0) / 100.0;
  return Record::Relational({{"name", Value::Str(std::move(name))},
                             {"brand", Value::Str(brand)},
                             {"model", Value::Str(model)},
                             {"year", Value::Num(year)},
                             {"price", Value::Num(price)}});
}

void TypoTranspose(std::string* s, core::Rng* rng) {
  if (s->size() < 2) return;
  const size_t i = rng->NextU64(s->size() - 1);
  std::swap((*s)[i], (*s)[i + 1]);
}

/// Dirty copy of one left record: each corruption fires independently
/// with probability `p`, drawn from the pair's own seeded stream.
Record Perturb(const Record& source, double p, uint64_t seed, size_t index) {
  core::Rng rng(Mix64(seed ^ Mix64(index) ^ 0xD1A7ULL));
  auto attrs = source.attrs;
  for (auto& [attr, value] : attrs) {
    if (attr == "name" && value.is_string()) {
      std::string name = value.as_string();
      if (rng.Bernoulli(p)) TypoTranspose(&name, &rng);
      if (rng.Bernoulli(p)) {
        // Abbreviate the second word ("compact speaker" -> "compact spk.").
        const size_t space = name.find(' ');
        if (space != std::string::npos && name.size() - space > 5) {
          name = name.substr(0, space + 4) + ".";
        }
      }
      value = Value::Str(std::move(name));
    } else if (attr == "brand" && value.is_string()) {
      if (rng.Bernoulli(p)) value = Value::Str("");  // missing value
    } else if (attr == "model" && value.is_string()) {
      // Rarely corrupt the strong key, so a small fraction of matches is
      // genuinely hard for blocking (the realistic case).
      if (rng.Bernoulli(p * 0.2)) {
        std::string code = value.as_string();
        TypoTranspose(&code, &rng);
        value = Value::Str(std::move(code));
      }
    } else if (attr == "price" && value.is_number()) {
      if (rng.Bernoulli(p)) {
        const double jitter = 1.0 + (rng.NextDouble() - 0.5) * 0.06;
        value = Value::Num(
            std::floor(value.as_number() * jitter * 100.0) / 100.0);
      }
    }
  }
  return Record::Relational(std::move(attrs));
}

}  // namespace

SyntheticTables GenerateSyntheticTables(const SyntheticTableOptions& options) {
  PROMPTEM_CHECK(options.rows >= 1);
  PROMPTEM_CHECK(options.distractor_fraction >= 0.0);
  PROMPTEM_CHECK(options.perturbation >= 0.0 && options.perturbation <= 1.0);

  const size_t rows = options.rows;
  const size_t distractors =
      static_cast<size_t>(options.distractor_fraction *
                          static_cast<double>(rows));
  const size_t right_rows = rows + distractors;

  SyntheticTables tables;
  tables.left.resize(rows);
  core::ParallelFor(0, static_cast<int64_t>(rows), kGenGrain,
                    [&](int64_t begin, int64_t end) {
                      for (int64_t i = begin; i < end; ++i) {
                        tables.left[static_cast<size_t>(i)] =
                            MakeLeftRecord(options.seed,
                                           static_cast<size_t>(i));
                      }
                    });

  // Seeded permutation places left i's dirty copy at right position
  // perm[i]; distractor slots are the tail of the shuffled positions.
  std::vector<int> positions(right_rows);
  for (size_t j = 0; j < right_rows; ++j) positions[j] = static_cast<int>(j);
  core::Rng perm_rng(Mix64(options.seed ^ 0x9E37ULL));
  perm_rng.Shuffle(&positions);

  tables.right.resize(right_rows);
  tables.right_of_left.resize(rows);
  tables.left_of_right.assign(right_rows, -1);
  for (size_t i = 0; i < rows; ++i) {
    tables.right_of_left[i] = positions[i];
    tables.left_of_right[static_cast<size_t>(positions[i])] =
        static_cast<int>(i);
  }
  core::ParallelFor(
      0, static_cast<int64_t>(right_rows), kGenGrain,
      [&](int64_t begin, int64_t end) {
        for (int64_t j = begin; j < end; ++j) {
          const size_t jj = static_cast<size_t>(j);
          const int li = tables.left_of_right[jj];
          tables.right[jj] =
              li >= 0 ? Perturb(tables.left[static_cast<size_t>(li)],
                                options.perturbation, options.seed, jj)
                      // Distractors draw from the same pools but a
                      // disjoint seed stream, so they are plausible
                      // near-misses rather than obvious noise.
                      : MakeLeftRecord(options.seed ^ 0xD157ULL,
                                       rows + jj);
        }
      });
  return tables;
}

std::vector<PairExample> SyntheticTables::GoldMatches() const {
  std::vector<PairExample> gold;
  gold.reserve(right_of_left.size());
  for (size_t i = 0; i < right_of_left.size(); ++i) {
    gold.push_back({static_cast<int>(i), right_of_left[i], 1});
  }
  return gold;
}

GemDataset SyntheticTables::ToDataset(size_t pairs_per_split, uint64_t seed) {
  PROMPTEM_CHECK(pairs_per_split >= 1);
  PROMPTEM_CHECK_MSG(!left.empty(), "tables already moved out");
  const size_t rows = left.size();
  const size_t right_rows = right.size();

  GemDataset dataset;
  dataset.name = "synthetic";
  dataset.domain = "synthetic";
  dataset.default_rate = 0.10;

  core::Rng rng(Mix64(seed ^ 0x5A17ULL));
  auto sample_split = [&](std::vector<PairExample>* split) {
    for (size_t k = 0; k < pairs_per_split; ++k) {
      const int l = static_cast<int>(rng.NextU64(rows));
      split->push_back({l, right_of_left[static_cast<size_t>(l)], 1});
      int wrong = static_cast<int>(rng.NextU64(right_rows));
      if (wrong == right_of_left[static_cast<size_t>(l)]) {
        wrong = (wrong + 1) % static_cast<int>(right_rows);
      }
      split->push_back({l, wrong, 0});
    }
  };
  sample_split(&dataset.train);
  sample_split(&dataset.valid);
  sample_split(&dataset.test);

  dataset.left_table = std::move(left);
  dataset.right_table = std::move(right);
  return dataset;
}

}  // namespace promptem::data
