#ifndef PROMPTEM_DATA_SERIALIZER_H_
#define PROMPTEM_DATA_SERIALIZER_H_

#include <string>

#include "data/record.h"

namespace promptem::data {

/// Serializes one entity record per the paper's §2.2:
///  - structured:     [COL] attr1 [VAL] val1 ... [COL] attrN [VAL] valN
///  - semi-structured: like structured, but nested objects recursively add
///    [COL]/[VAL] tags at each level, and list values are concatenated
///    into one string;
///  - textual: the text itself (already a sequence).
std::string SerializeRecord(const Record& record);

/// Serializes one attribute value (lists joined with spaces, nested
/// objects rendered recursively with [COL]/[VAL] tags).
std::string SerializeValue(const Value& value);

/// Builds the candidate-pair input of §2.3:
/// "[CLS] serialize(e) [SEP] serialize(e') [SEP]".
std::string SerializePair(const Record& left, const Record& right);

}  // namespace promptem::data

#endif  // PROMPTEM_DATA_SERIALIZER_H_
