#include "promptem/templates.h"

namespace promptem::em {

using text::SpecialTokens;

const char* TemplateTypeName(TemplateType type) {
  return type == TemplateType::kT1 ? "T1" : "T2";
}

const char* TemplateModeName(TemplateMode mode) {
  return mode == TemplateMode::kHard ? "hard" : "continuous";
}

namespace {

TemplateSlot Token(int id) {
  return {TemplateSlot::Kind::kToken, id, -1};
}
TemplateSlot Prompt(int index) {
  return {TemplateSlot::Kind::kPrompt, -1, index};
}
TemplateSlot Mask() { return {TemplateSlot::Kind::kMask, -1, -1}; }
TemplateSlot Left() { return {TemplateSlot::Kind::kLeftEntity, -1, -1}; }
TemplateSlot Right() { return {TemplateSlot::Kind::kRightEntity, -1, -1}; }

}  // namespace

std::vector<TemplateSlot> BuildTemplate(TemplateType type, TemplateMode mode,
                                        const text::Vocab& vocab) {
  const bool hard = mode == TemplateMode::kHard;
  std::vector<TemplateSlot> slots;
  slots.push_back(Token(SpecialTokens::kCls));
  if (type == TemplateType::kT1) {
    // serialize(e) [SEP] serialize(e') [SEP] They are [MASK]
    slots.push_back(Left());
    slots.push_back(Token(SpecialTokens::kSep));
    slots.push_back(Right());
    slots.push_back(Token(SpecialTokens::kSep));
    if (hard) {
      slots.push_back(Token(vocab.ToId("they")));
      slots.push_back(Token(vocab.ToId("are")));
    } else {
      slots.push_back(Prompt(0));
      slots.push_back(Prompt(1));
    }
    slots.push_back(Mask());
  } else {
    // serialize(e) is [MASK] to serialize(e')
    slots.push_back(Left());
    if (hard) {
      slots.push_back(Token(vocab.ToId("is")));
    } else {
      slots.push_back(Prompt(0));
    }
    slots.push_back(Mask());
    if (hard) {
      slots.push_back(Token(vocab.ToId("to")));
    } else {
      slots.push_back(Prompt(1));
    }
    slots.push_back(Right());
    slots.push_back(Token(SpecialTokens::kSep));
  }
  return slots;
}

int NumPromptSlots(TemplateType type) {
  (void)type;  // both templates carry two prompt words
  return 2;
}

int TemplateOverhead(TemplateType type) {
  return type == TemplateType::kT1 ? 6 : 5;
}

}  // namespace promptem::em
