#ifndef PROMPTEM_PROMPTEM_PROMPT_MODEL_H_
#define PROMPTEM_PROMPTEM_PROMPT_MODEL_H_

#include <memory>

#include "lm/pretrained_lm.h"
#include "nn/lstm.h"
#include "promptem/templates.h"
#include "promptem/trainer.h"
#include "promptem/verbalizer.h"

namespace promptem::em {

/// Prompt-model hyper-parameters (template and verbalizer choices of §3).
struct PromptModelConfig {
  TemplateType template_type = TemplateType::kT2;
  TemplateMode template_mode = TemplateMode::kContinuous;
  LabelWordsType label_words = LabelWordsType::kDesigned;
};

/// PromptEM's core model (§3): casts GEM as masked language modeling.
/// The pair is wrapped in a GEM-specific template; the pre-trained tied
/// MLM head predicts the [MASK] token; the verbalizer folds label-word
/// probabilities into class scores (Eq. 1).
///
/// Continuous templates implement P-tuning: trainable prompt embeddings
/// contextualized by a BiLSTM + linear head, spliced into the input
/// sequence in place of the hard prompt words, and optimized jointly with
/// the LM parameters.
class PromptModel : public nn::Module, public PairClassifier {
 public:
  PromptModel(const lm::PretrainedLM& lm, const PromptModelConfig& config,
              core::Rng* rng);

  tensor::Tensor Loss(const EncodedPair& x, int label,
                      core::Rng* rng) override;
  std::array<float, 2> Probs(const EncodedPair& x, core::Rng* rng) override;
  nn::Module* AsModule() override { return this; }

  /// MLM logits at the [MASK] position for one templated pair: [1, vocab].
  tensor::Tensor MaskLogits(const EncodedPair& x, core::Rng* rng) const;

  /// Mean-pooled encoder representation of the pair (used by the
  /// clustering pseudo-label strategy): [1, dim].
  tensor::Tensor PairEmbedding(const EncodedPair& x, core::Rng* rng) const;

  const PromptModelConfig& config() const { return config_; }
  const Verbalizer& verbalizer() const { return verbalizer_; }

 private:
  /// Assembles embedded rows for the templated sequence, splicing
  /// continuous prompt rows when in continuous mode. Sets *mask_pos.
  tensor::Tensor BuildInputRows(const EncodedPair& x, core::Rng* rng,
                                int* mask_pos) const;

  /// Prompt rows after BiLSTM + projection: [num_prompts, dim].
  tensor::Tensor PromptRows(core::Rng* rng) const;

  PromptModelConfig config_;
  std::unique_ptr<nn::TransformerEncoder> encoder_;
  std::vector<TemplateSlot> slots_;
  Verbalizer verbalizer_;

  // Continuous-template (P-tuning) machinery.
  tensor::Tensor prompt_embeddings_;  ///< [num_prompts, dim]
  std::unique_ptr<nn::BiLstm> prompt_lstm_;
  std::unique_ptr<nn::Linear> prompt_proj_;
};

}  // namespace promptem::em

#endif  // PROMPTEM_PROMPTEM_PROMPT_MODEL_H_
