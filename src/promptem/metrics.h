#ifndef PROMPTEM_PROMPTEM_METRICS_H_
#define PROMPTEM_PROMPTEM_METRICS_H_

#include <array>
#include <string>
#include <vector>

namespace promptem::em {

/// Binary classification counts and the paper's evaluation metrics.
struct Metrics {
  int tp = 0;
  int fp = 0;
  int tn = 0;
  int fn = 0;

  double Precision() const;
  double Recall() const;
  double F1() const;
  double Accuracy() const;
  /// True-positive rate (= recall) and true-negative rate, used by the
  /// pseudo-label quality study (Table 5).
  double Tpr() const { return Recall(); }
  double Tnr() const;

  /// "P=xx.x R=xx.x F1=xx.x".
  std::string ToString() const;

  /// Folds one prediction into the counts. A gold value of
  /// data::kUnlabeledLabel (a blocker-generated candidate with no gold
  /// label) is skipped — it is not a true negative and must never count
  /// as one. This is the incremental reduction the streaming match
  /// pipeline uses; ComputeMetrics is a loop over it.
  void Count(int prediction, int gold);

  /// Total labeled pairs folded so far.
  int TotalCounted() const { return tp + fp + tn + fn; }
};

/// Tallies predictions (1 = match) against gold labels; unlabeled gold
/// entries (data::kUnlabeledLabel) are skipped, not counted as negatives.
Metrics ComputeMetrics(const std::vector<int>& predictions,
                       const std::vector<int>& gold);

/// Tallies {P(no), P(yes)} pairs from the batched scoring engine
/// (scoring.h) against gold labels, thresholding P(yes) at 0.5 — the
/// reduction end of the unified eval path. Skips unlabeled gold entries
/// like ComputeMetrics.
Metrics MetricsFromProbs(const std::vector<std::array<float, 2>>& probs,
                         const std::vector<int>& gold);

}  // namespace promptem::em

#endif  // PROMPTEM_PROMPTEM_METRICS_H_
