#include "promptem/trainer.h"

#include <algorithm>
#include <cstring>

#include "nn/optimizer.h"

namespace promptem::em {

std::vector<std::vector<float>> SnapshotParams(const nn::Module& module) {
  std::vector<std::vector<float>> snapshot;
  for (const auto& p : module.Parameters()) {
    snapshot.emplace_back(p.data(), p.data() + p.numel());
  }
  return snapshot;
}

void RestoreParams(nn::Module* module,
                   const std::vector<std::vector<float>>& snapshot) {
  auto params = module->Parameters();
  PROMPTEM_CHECK(params.size() == snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    PROMPTEM_CHECK(static_cast<size_t>(params[i].numel()) ==
                   snapshot[i].size());
    std::memcpy(params[i].data(), snapshot[i].data(),
                snapshot[i].size() * sizeof(float));
  }
}

std::vector<int> PredictLabels(PairClassifier* model,
                               const std::vector<EncodedPair>& examples) {
  model->AsModule()->SetTraining(false);
  core::Rng unused(0);
  std::vector<int> preds;
  preds.reserve(examples.size());
  for (const auto& x : examples) {
    const auto probs = model->Probs(x, &unused);
    preds.push_back(probs[1] >= 0.5f ? 1 : 0);
  }
  return preds;
}

Metrics Evaluate(PairClassifier* model,
                 const std::vector<EncodedPair>& examples) {
  std::vector<int> gold;
  gold.reserve(examples.size());
  for (const auto& x : examples) gold.push_back(x.label);
  return ComputeMetrics(PredictLabels(model, examples), gold);
}

TrainResult TrainClassifier(PairClassifier* model,
                            const std::vector<EncodedPair>& train,
                            const std::vector<EncodedPair>& valid,
                            const TrainOptions& options) {
  PROMPTEM_CHECK(model != nullptr);
  PROMPTEM_CHECK(!train.empty());
  core::Rng rng(options.seed);

  nn::Module* module = model->AsModule();
  nn::AdamWConfig opt_config;
  opt_config.lr = options.lr;
  opt_config.weight_decay = options.weight_decay;
  nn::AdamW optimizer(module->Parameters(), opt_config);

  TrainResult result;
  std::vector<std::vector<float>> best_snapshot;
  double best_f1 = -1.0;

  std::vector<size_t> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    module->SetTraining(true);
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    int in_batch = 0;
    for (size_t idx : order) {
      const EncodedPair& x = train[idx];
      tensor::Tensor loss = model->Loss(x, x.label, &rng);
      epoch_loss += loss.item();
      loss.Backward();
      ++result.samples_trained;
      if (++in_batch == options.batch_size) {
        optimizer.Step();
        optimizer.ZeroGrad();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      optimizer.Step();
      optimizer.ZeroGrad();
    }
    result.epoch_losses.push_back(
        static_cast<float>(epoch_loss / static_cast<double>(train.size())));

    if (options.select_best_on_valid && !valid.empty()) {
      Metrics m = Evaluate(model, valid);
      if (m.F1() > best_f1) {
        best_f1 = m.F1();
        best_snapshot = SnapshotParams(*module);
        result.best_valid = m;
        result.best_epoch = epoch;
      }
    }
  }

  if (!best_snapshot.empty()) {
    RestoreParams(module, best_snapshot);
  }
  module->SetTraining(false);
  return result;
}

}  // namespace promptem::em
