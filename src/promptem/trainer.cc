#include "promptem/trainer.h"

#include <utility>

#include "promptem/scoring.h"
#include "train/train_loop.h"

namespace promptem::em {

std::vector<std::vector<float>> SnapshotParams(const nn::Module& module) {
  return train::SnapshotModuleParams(module);
}

void RestoreParams(nn::Module* module,
                   const std::vector<std::vector<float>>& snapshot) {
  train::RestoreModuleParams(module, snapshot);
}

std::vector<int> PredictLabels(PairClassifier* model,
                               const std::vector<EncodedPair>& examples) {
  // Eval-mode passes are deterministic and independent: the batched engine
  // scores them pool-parallel, graph-free, with buffer reuse.
  return LabelsFromProbs(ScoreBatch(model, examples));
}

Metrics Evaluate(PairClassifier* model,
                 const std::vector<EncodedPair>& examples) {
  std::vector<int> gold;
  gold.reserve(examples.size());
  for (const auto& x : examples) gold.push_back(x.label);
  return MetricsFromProbs(ScoreBatch(model, examples), gold);
}

TrainResult TrainClassifier(PairClassifier* model,
                            const std::vector<EncodedPair>& train,
                            const std::vector<EncodedPair>& valid,
                            const TrainOptions& options) {
  PROMPTEM_CHECK(model != nullptr);
  PROMPTEM_CHECK(!train.empty());
  nn::Module* module = model->AsModule();

  train::LoopOptions loop_options;
  loop_options.epochs = options.epochs;
  loop_options.batch_size = options.batch_size;
  loop_options.lr = options.lr;
  loop_options.weight_decay = options.weight_decay;
  loop_options.seed = options.seed;
  loop_options.early_stop_patience = options.early_stop_patience;
  loop_options.observer = options.observer;
  loop_options.run_name = options.run_name;
  loop_options.dataset_name = options.dataset_name;

  train::TrainLoop loop(module, loop_options);
  loop.OnParallelStep([&](size_t index, core::Rng* rng) {
    const EncodedPair& x = train[index];
    return model->Loss(x, x.label, rng);
  });
  if (options.select_best_on_valid && !valid.empty()) {
    loop.OnEval([&] { return Evaluate(model, valid); });
  }

  train::LoopResult run = loop.Run(train.size());

  TrainResult result;
  result.epoch_losses = std::move(run.epoch_losses);
  result.best_valid = run.best_eval;
  result.best_epoch = run.best_epoch;
  result.samples_trained = run.samples_processed;
  module->Eval();
  return result;
}

}  // namespace promptem::em
