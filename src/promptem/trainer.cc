#include "promptem/trainer.h"

#include <algorithm>
#include <cstring>
#include <memory>

#include "core/thread_pool.h"
#include "nn/optimizer.h"
#include "promptem/scoring.h"
#include "tensor/autograd.h"

namespace promptem::em {

std::vector<std::vector<float>> SnapshotParams(const nn::Module& module) {
  std::vector<std::vector<float>> snapshot;
  for (const auto& p : module.Parameters()) {
    snapshot.emplace_back(p.data(), p.data() + p.numel());
  }
  return snapshot;
}

void RestoreParams(nn::Module* module,
                   const std::vector<std::vector<float>>& snapshot) {
  auto params = module->Parameters();
  PROMPTEM_CHECK(params.size() == snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    PROMPTEM_CHECK(static_cast<size_t>(params[i].numel()) ==
                   snapshot[i].size());
    std::memcpy(params[i].data(), snapshot[i].data(),
                snapshot[i].size() * sizeof(float));
  }
}

std::vector<int> PredictLabels(PairClassifier* model,
                               const std::vector<EncodedPair>& examples) {
  // Eval-mode passes are deterministic and independent: the batched engine
  // scores them pool-parallel, graph-free, with buffer reuse.
  return LabelsFromProbs(ScoreBatch(model, examples));
}

Metrics Evaluate(PairClassifier* model,
                 const std::vector<EncodedPair>& examples) {
  std::vector<int> gold;
  gold.reserve(examples.size());
  for (const auto& x : examples) gold.push_back(x.label);
  return MetricsFromProbs(ScoreBatch(model, examples), gold);
}

double TrainEpochDataParallel(PairClassifier* model,
                              const std::vector<EncodedPair>& train,
                              const std::vector<size_t>& order,
                              int batch_size, nn::AdamW* optimizer,
                              core::Rng* rng, int64_t* samples_trained) {
  PROMPTEM_CHECK(batch_size >= 1);
  nn::Module* module = model->AsModule();
  const std::vector<tensor::Tensor> params = module->Parameters();

  // One gradient shard per minibatch slot, reused across batches. Sample b
  // of every batch accumulates into shard b; shards merge in slot order.
  const size_t slots =
      std::min(static_cast<size_t>(batch_size), order.size());
  std::vector<std::unique_ptr<tensor::GradShard>> shards;
  shards.reserve(slots);
  for (size_t s = 0; s < slots; ++s) {
    shards.push_back(std::make_unique<tensor::GradShard>(params));
  }

  double epoch_loss = 0.0;
  std::vector<uint64_t> seeds(slots);
  std::vector<float> losses(slots);
  for (size_t start = 0; start < order.size();
       start += static_cast<size_t>(batch_size)) {
    const size_t bsz =
        std::min(static_cast<size_t>(batch_size), order.size() - start);
    // Per-sample dropout streams, drawn in batch order so the seeds (and
    // everything downstream) are independent of the pool size.
    for (size_t b = 0; b < bsz; ++b) seeds[b] = rng->NextU64();
    core::ParallelFor(0, static_cast<int64_t>(bsz), 1,
                      [&](int64_t begin, int64_t end) {
      for (int64_t b = begin; b < end; ++b) {
        const size_t slot = static_cast<size_t>(b);
        tensor::GradShard::Scope scope(shards[slot].get());
        core::Rng sample_rng(seeds[slot]);
        const EncodedPair& x = train[order[start + slot]];
        tensor::Tensor loss = model->Loss(x, x.label, &sample_rng);
        losses[slot] = loss.item();
        loss.Backward();
      }
    });
    for (size_t b = 0; b < bsz; ++b) {
      epoch_loss += losses[b];
      shards[b]->MergeAndReset();
    }
    if (samples_trained != nullptr) {
      *samples_trained += static_cast<int64_t>(bsz);
    }
    optimizer->Step();
    optimizer->ZeroGrad();
  }
  return epoch_loss;
}

TrainResult TrainClassifier(PairClassifier* model,
                            const std::vector<EncodedPair>& train,
                            const std::vector<EncodedPair>& valid,
                            const TrainOptions& options) {
  PROMPTEM_CHECK(model != nullptr);
  PROMPTEM_CHECK(!train.empty());
  core::Rng rng(options.seed);

  nn::Module* module = model->AsModule();
  nn::AdamWConfig opt_config;
  opt_config.lr = options.lr;
  opt_config.weight_decay = options.weight_decay;
  nn::AdamW optimizer(module->Parameters(), opt_config);

  TrainResult result;
  std::vector<std::vector<float>> best_snapshot;
  double best_f1 = -1.0;

  std::vector<size_t> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    module->Train();
    rng.Shuffle(&order);
    const double epoch_loss = TrainEpochDataParallel(
        model, train, order, options.batch_size, &optimizer, &rng,
        &result.samples_trained);
    result.epoch_losses.push_back(
        static_cast<float>(epoch_loss / static_cast<double>(train.size())));

    if (options.select_best_on_valid && !valid.empty()) {
      Metrics m = Evaluate(model, valid);
      if (m.F1() > best_f1) {
        best_f1 = m.F1();
        best_snapshot = SnapshotParams(*module);
        result.best_valid = m;
        result.best_epoch = epoch;
      }
    }
  }

  if (!best_snapshot.empty()) {
    RestoreParams(module, best_snapshot);
  }
  module->Eval();
  return result;
}

}  // namespace promptem::em
