#ifndef PROMPTEM_PROMPTEM_EMBED_CACHE_H_
#define PROMPTEM_PROMPTEM_EMBED_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/concurrent_cache.h"
#include "core/status.h"

namespace promptem::em {

/// Persistent cache of per-pair embeddings (the EmbedBatch output the
/// clustering pseudo-label strategy recomputes every self-training
/// iteration, and a restart recomputes for the whole corpus).
///
/// Keys are 64-bit composites the caller builds with ContextTag/PairKey
/// from content fingerprints — data::DatasetFingerprint for the tables,
/// nn::ParameterFingerprint for the model that embeds them — plus the
/// pair's table indexes. Content fingerprints survive process restarts
/// (unlike in-process identity counters), which is what makes the
/// persisted file useful: after a reload, the same dataset + the same
/// deterministically-initialized model rebuild the same keys and hit.
/// A different dataset, a different model, or an updated weight simply
/// never hits — no explicit invalidation protocol is needed.
///
/// Only deterministic embeddings may be cached: the value must be a pure
/// function of the key. MC-Dropout outputs are stochastic by design and
/// must never go through this cache.
class EmbeddingCache {
 public:
  static constexpr size_t kDefaultCapacity = 1u << 18;

  explicit EmbeddingCache(size_t capacity = kDefaultCapacity);

  std::shared_ptr<const std::vector<float>> Find(uint64_t key) {
    return cache_.Find(key);
  }
  void Insert(uint64_t key, std::vector<float> embedding) {
    cache_.Insert(key, std::move(embedding));
  }

  /// Drops every entry (O(1), lazy reclamation).
  void Invalidate() { cache_.Invalidate(); }

  core::ConcurrentCache<std::vector<float>>::Stats stats() const {
    return cache_.stats();
  }
  size_t LiveEntries() const { return cache_.LiveEntries(); }

  /// Writes every live entry to `path` in the checkpoint-v2 envelope:
  /// magic "PEMEMBC1", u32 endianness tag, u32 entry count, per entry a
  /// u64 key + u32 dim + float32 data, and a trailing u64 FNV-1a hash of
  /// every preceding byte. Atomic: written to "<path>.tmp" and renamed
  /// over `path` only after a full flush, so an interrupted save never
  /// leaves a partial cache file. Entries are written in sorted key order
  /// so identical contents produce an identical file image.
  core::Status Save(const std::string& path) const;

  /// Loads entries from `path` into the cache, treating the file as
  /// untrusted input: every count and dimension is bounds-checked against
  /// the bytes actually remaining before any allocation, and truncation,
  /// trailing garbage, and byte corruption all fail the checksum or the
  /// structure checks. On any error the cache is left exactly as it was —
  /// a corrupt file is rejected wholesale, never partially trusted.
  core::Status Load(const std::string& path);

  /// Tag identifying one (dataset, model) embedding context from
  /// restart-stable content fingerprints.
  static uint64_t ContextTag(uint64_t dataset_fingerprint,
                             uint64_t model_fingerprint);

  /// Key of one pair's embedding within a context.
  static uint64_t PairKey(uint64_t context_tag, int left_index,
                          int right_index);

 private:
  core::ConcurrentCache<std::vector<float>> cache_;
};

/// Process-global embedding cache, installed by the CLI when the user
/// passes --embed-cache (null when absent). Returned as shared_ptr so a
/// concurrent re-install can never free a cache under a user.
std::shared_ptr<EmbeddingCache> GetGlobalEmbeddingCache();
void SetGlobalEmbeddingCache(std::shared_ptr<EmbeddingCache> cache);

}  // namespace promptem::em

#endif  // PROMPTEM_PROMPTEM_EMBED_CACHE_H_
