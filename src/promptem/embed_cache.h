#ifndef PROMPTEM_PROMPTEM_EMBED_CACHE_H_
#define PROMPTEM_PROMPTEM_EMBED_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/concurrent_cache.h"
#include "core/hash_index.h"
#include "core/status.h"

namespace promptem::em {

/// Persistent cache of per-pair embeddings (the EmbedBatch output the
/// clustering pseudo-label strategy recomputes every self-training
/// iteration, and a restart recomputes for the whole corpus).
///
/// Keys are 64-bit composites the caller builds with ContextTag/PairKey
/// from content fingerprints — data::DatasetFingerprint for the tables,
/// nn::ParameterFingerprint for the model that embeds them — plus the
/// pair's table indexes. Content fingerprints survive process restarts
/// (unlike in-process identity counters), which is what makes the
/// persisted file useful: after a reload, the same dataset + the same
/// deterministically-initialized model rebuild the same keys and hit.
/// A different dataset, a different model, or an updated weight simply
/// never hits — no explicit invalidation protocol is needed.
///
/// Only deterministic embeddings may be cached: the value must be a pure
/// function of the key. MC-Dropout outputs are stochastic by design and
/// must never go through this cache.
class EmbeddingCache {
 public:
  static constexpr size_t kDefaultCapacity = 1u << 18;

  /// Where the persisted store lives.
  ///  - kRam: the legacy "PEMEMBC1" flat file; Load materializes every
  ///    entry into the in-process cache up front.
  ///  - kMmap: a core::HashIndex file. Entries are read in place from
  ///    the mapping on first touch (a restart warm-starts without
  ///    round-tripping the whole store through RAM), and a flush only
  ///    stages the in-process overlay — untouched persisted entries
  ///    stream file -> file through the index's atomic tmp+rename grow.
  enum class CacheBackend { kRam, kMmap };

  explicit EmbeddingCache(size_t capacity = kDefaultCapacity);

  std::shared_ptr<const std::vector<float>> Find(uint64_t key);
  void Insert(uint64_t key, std::vector<float> embedding);

  /// Drops every entry (O(1), lazy reclamation).
  void Invalidate() { cache_.Invalidate(); }

  core::ConcurrentCache<std::vector<float>>::Stats stats() const {
    return cache_.stats();
  }
  size_t LiveEntries() const { return cache_.LiveEntries(); }

  /// Writes every live entry to `path` in the checkpoint-v2 envelope:
  /// magic "PEMEMBC1", u32 endianness tag, u32 entry count, per entry a
  /// u64 key + u32 dim + float32 data, and a trailing u64 FNV-1a hash of
  /// every preceding byte. Atomic: written to "<path>.tmp" and renamed
  /// over `path` only after a full flush, so an interrupted save never
  /// leaves a partial cache file. Entries are written in sorted key order
  /// so identical contents produce an identical file image.
  core::Status Save(const std::string& path) const;

  /// Loads entries from `path` into the cache, treating the file as
  /// untrusted input: every count and dimension is bounds-checked against
  /// the bytes actually remaining before any allocation, and truncation,
  /// trailing garbage, and byte corruption all fail the checksum or the
  /// structure checks. On any error the cache is left exactly as it was —
  /// a corrupt file is rejected wholesale, never partially trusted.
  core::Status Load(const std::string& path);

  /// Binds this cache to a persistent store at `path`. kRam is exactly
  /// Load. kMmap opens (or lazily creates) a HashIndex file: reads fall
  /// through the in-process cache to the mapping, flushes through Save /
  /// autosave grow the file in place of rewriting the overlay only. A
  /// legacy "PEMEMBC1" file at `path` is loaded into the overlay and
  /// migrated to the index format by the next flush. Returns NotFound
  /// when no file exists yet (the store is still attached — a cold
  /// start); corruption is rejected wholesale and nothing is attached.
  /// Call before the cache is shared across threads.
  core::Status Attach(const std::string& path, CacheBackend backend);

  CacheBackend backend() const { return backend_; }
  /// Keys in the attached mmap store (0 when kRam / unattached).
  size_t PersistedEntries() const {
    return base_ ? base_->key_count() : 0;
  }

  /// Crash-durable persistence: after every `every_n_inserts` Inserts the
  /// inserting thread flushes the cache to `path` through Save's atomic
  /// tmp+rename path. Without it a cache is only persisted by an explicit
  /// end-of-run Save, so a crash or Ctrl-C loses every warm entry; with
  /// it at most every_n_inserts-1 entries are ever at risk, and a kill at
  /// any instant leaves either the previous file or the new one on disk —
  /// never a torn write (fault_injection_test kills mid-flush to pin
  /// this). Concurrent triggers collapse into one flush; a flush already
  /// in progress is skipped, not queued. Pass every_n_inserts = 0 to
  /// disable again.
  void EnableAutosave(std::string path, size_t every_n_inserts);

  /// Immediate flush through the same serialized save path (the SIGTERM
  /// handler's entry point; safe against a concurrent autosave).
  core::Status FlushNow();

  /// Autosave flushes completed so far (observability / tests).
  uint64_t autosave_flushes() const {
    return autosave_flushes_.load(std::memory_order_relaxed);
  }

  /// Tag identifying one (dataset, model) embedding context from
  /// restart-stable content fingerprints.
  static uint64_t ContextTag(uint64_t dataset_fingerprint,
                             uint64_t model_fingerprint);

  /// Key of one pair's embedding within a context.
  static uint64_t PairKey(uint64_t context_tag, int left_index,
                          int right_index);

 private:
  core::Status SaveUnlocked(const std::string& path) const;
  /// Legacy-format write of the overlay merged over the mmap base (the
  /// kRam Save, and Save-to-a-different-path under kMmap).
  core::Status SaveLegacyUnlocked(const std::string& path) const;
  /// Flush if no other flush is running (never blocks the inserter).
  void MaybeAutosave();

  core::ConcurrentCache<std::vector<float>> cache_;

  // Persistent-store binding. Written only by Attach (before the cache
  // is shared); base_ itself is internally thread-safe (snapshot reads,
  // serialized seals under save_mu_).
  CacheBackend backend_ = CacheBackend::kRam;
  std::string attach_path_;
  std::shared_ptr<core::HashIndex> base_;

  // Autosave state. `save_mu_` serializes every flush (autosave or
  // FlushNow) so two threads can never interleave writes to `path.tmp`.
  mutable std::mutex save_mu_;
  std::mutex autosave_config_mu_;
  std::string autosave_path_;
  std::atomic<size_t> autosave_every_{0};
  std::atomic<uint64_t> insert_count_{0};
  std::atomic<uint64_t> autosave_flushes_{0};
};

/// Process-global embedding cache, installed by the CLI when the user
/// passes --embed-cache (null when absent). Returned as shared_ptr so a
/// concurrent re-install can never free a cache under a user.
std::shared_ptr<EmbeddingCache> GetGlobalEmbeddingCache();
void SetGlobalEmbeddingCache(std::shared_ptr<EmbeddingCache> cache);

}  // namespace promptem::em

#endif  // PROMPTEM_PROMPTEM_EMBED_CACHE_H_
