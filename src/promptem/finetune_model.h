#ifndef PROMPTEM_PROMPTEM_FINETUNE_MODEL_H_
#define PROMPTEM_PROMPTEM_FINETUNE_MODEL_H_

#include <memory>

#include "lm/pretrained_lm.h"
#include "promptem/trainer.h"

namespace promptem::em {

/// Vanilla fine-tuning (§2.3): "[CLS] serialize(e) [SEP] serialize(e')
/// [SEP]" through the encoder, then a freshly initialized classification
/// head on the [CLS] representation. This is both the "PromptEM w/o PT"
/// ablation and the BERT baseline — the head is *new*, which is exactly
/// the objective-form gap prompt-tuning removes (Challenge I).
class FinetuneModel : public nn::Module, public PairClassifier {
 public:
  FinetuneModel(const lm::PretrainedLM& lm, core::Rng* rng);

  tensor::Tensor Loss(const EncodedPair& x, int label,
                      core::Rng* rng) override;
  std::array<float, 2> Probs(const EncodedPair& x, core::Rng* rng) override;
  nn::Module* AsModule() override { return this; }

  /// Class logits [1, 2] for one pair.
  tensor::Tensor Logits(const EncodedPair& x, core::Rng* rng) const;

  /// Mean-pooled encoder representation: [1, dim].
  tensor::Tensor PairEmbedding(const EncodedPair& x, core::Rng* rng) const;

 private:
  std::vector<int> BuildInputIds(const EncodedPair& x) const;

  std::unique_ptr<nn::TransformerEncoder> encoder_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace promptem::em

#endif  // PROMPTEM_PROMPTEM_FINETUNE_MODEL_H_
