#include "promptem/uncertainty.h"

#include <array>
#include <cmath>

#include "promptem/scoring.h"

namespace promptem::em {

namespace {

/// The stochastic core: K dropout passes of P over one sample, pass i
/// seeded from the i-th draw of Rng(base_seed). Passes are independent, so
/// the graph-free engine fans them out across the pool (inline when
/// already inside a sample-level parallel region); the returned
/// probabilities are in pass order either way. Assumes training mode is
/// already on.
std::vector<std::array<float, 2>> RunMcPasses(PairClassifier* model,
                                              const EncodedPair& x,
                                              int passes,
                                              uint64_t base_seed) {
  std::vector<uint64_t> seeds(static_cast<size_t>(passes));
  core::Rng seeder(base_seed);
  for (auto& s : seeds) s = seeder.NextU64();
  return ScoreIndexed(passes,
                      [&](int64_t, core::Rng* pass_rng) {
                        return model->Probs(x, pass_rng);
                      },
                      seeds);
}

McEstimate EstimateFromPasses(
    const std::vector<std::array<float, 2>>& probs) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const auto& p : probs) {
    sum += p[1];
    sum_sq += static_cast<double>(p[1]) * p[1];
  }
  const auto passes = static_cast<double>(probs.size());
  McEstimate est;
  const double mean = sum / passes;
  const double var = std::max(0.0, sum_sq / passes - mean * mean);
  est.mean_pos_prob = static_cast<float>(mean);
  est.uncertainty = static_cast<float>(std::sqrt(var));
  est.pseudo_label = mean >= 0.5 ? 1 : 0;
  est.confidence = static_cast<float>(std::max(mean, 1.0 - mean));
  return est;
}

float El2nFromPasses(const std::vector<std::array<float, 2>>& probs,
                     int label) {
  double total = 0.0;
  for (const auto& p : probs) {
    const float d0 = p[0] - (label == 0 ? 1.0f : 0.0f);
    const float d1 = p[1] - (label == 1 ? 1.0f : 0.0f);
    total += std::sqrt(static_cast<double>(d0) * d0 +
                       static_cast<double>(d1) * d1);
  }
  return static_cast<float>(total / static_cast<double>(probs.size()));
}

}  // namespace

McEstimate McDropoutEstimate(PairClassifier* model, const EncodedPair& x,
                             int passes, core::Rng* rng) {
  PROMPTEM_CHECK(passes >= 1);
  ScopedTrainingMode training(model->AsModule());
  return EstimateFromPasses(RunMcPasses(model, x, passes, rng->NextU64()));
}

float McEl2nScore(PairClassifier* model, const EncodedPair& x, int label,
                  int passes, core::Rng* rng) {
  PROMPTEM_CHECK(passes >= 1);
  PROMPTEM_CHECK(label == 0 || label == 1);
  ScopedTrainingMode training(model->AsModule());
  return El2nFromPasses(RunMcPasses(model, x, passes, rng->NextU64()),
                        label);
}

std::vector<McEstimate> McDropoutEstimateBatch(
    PairClassifier* model, const std::vector<EncodedPair>& xs, int passes,
    core::Rng* rng) {
  PROMPTEM_CHECK(passes >= 1);
  ScopedTrainingMode training(model->AsModule());
  std::vector<uint64_t> seeds(xs.size());
  for (auto& s : seeds) s = rng->NextU64();
  std::vector<McEstimate> estimates(xs.size());
  ForEachGraphFree(static_cast<int64_t>(xs.size()), [&](int64_t i) {
    const size_t idx = static_cast<size_t>(i);
    estimates[idx] = EstimateFromPasses(
        RunMcPasses(model, xs[idx], passes, seeds[idx]));
  });
  return estimates;
}

std::vector<float> McEl2nScoreBatch(PairClassifier* model,
                                    const std::vector<EncodedPair>& xs,
                                    int passes, core::Rng* rng) {
  PROMPTEM_CHECK(passes >= 1);
  // Same contract as scalar McEl2nScore: EL2N needs a one-hot target, so
  // an unlabeled pair (label == data::kUnlabeledLabel, e.g. a
  // blocker-generated candidate) in the batch is a caller bug — catch it
  // before the parallel region rather than letting it silently poison the
  // pruning scores.
  for (const auto& x : xs) {
    PROMPTEM_CHECK_MSG(x.label != data::kUnlabeledLabel,
                       "McEl2nScoreBatch rejects unlabeled pairs");
    PROMPTEM_CHECK_MSG(x.label == 0 || x.label == 1,
                       "McEl2nScoreBatch requires labeled pairs");
  }
  ScopedTrainingMode training(model->AsModule());
  std::vector<uint64_t> seeds(xs.size());
  for (auto& s : seeds) s = rng->NextU64();
  std::vector<float> scores(xs.size());
  ForEachGraphFree(static_cast<int64_t>(xs.size()), [&](int64_t i) {
    const size_t idx = static_cast<size_t>(i);
    scores[idx] = El2nFromPasses(
        RunMcPasses(model, xs[idx], passes, seeds[idx]), xs[idx].label);
  });
  return scores;
}

}  // namespace promptem::em
