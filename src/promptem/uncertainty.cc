#include "promptem/uncertainty.h"

#include <cmath>

namespace promptem::em {

McEstimate McDropoutEstimate(PairClassifier* model, const EncodedPair& x,
                             int passes, core::Rng* rng) {
  PROMPTEM_CHECK(passes >= 1);
  nn::Module* module = model->AsModule();
  const bool was_training = module->training();
  module->SetTraining(true);  // keep dropout stochastic

  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < passes; ++i) {
    const float p = model->Probs(x, rng)[1];
    sum += p;
    sum_sq += static_cast<double>(p) * p;
  }
  module->SetTraining(was_training);

  McEstimate est;
  const double mean = sum / passes;
  const double var = std::max(0.0, sum_sq / passes - mean * mean);
  est.mean_pos_prob = static_cast<float>(mean);
  est.uncertainty = static_cast<float>(std::sqrt(var));
  est.pseudo_label = mean >= 0.5 ? 1 : 0;
  est.confidence = static_cast<float>(std::max(mean, 1.0 - mean));
  return est;
}

float McEl2nScore(PairClassifier* model, const EncodedPair& x, int label,
                  int passes, core::Rng* rng) {
  PROMPTEM_CHECK(passes >= 1);
  PROMPTEM_CHECK(label == 0 || label == 1);
  nn::Module* module = model->AsModule();
  const bool was_training = module->training();
  module->SetTraining(true);

  double total = 0.0;
  for (int i = 0; i < passes; ++i) {
    const auto probs = model->Probs(x, rng);
    const float d0 = probs[0] - (label == 0 ? 1.0f : 0.0f);
    const float d1 = probs[1] - (label == 1 ? 1.0f : 0.0f);
    total += std::sqrt(static_cast<double>(d0) * d0 +
                       static_cast<double>(d1) * d1);
  }
  module->SetTraining(was_training);
  return static_cast<float>(total / passes);
}

}  // namespace promptem::em
