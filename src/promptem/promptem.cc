#include "promptem/promptem.h"

#include "core/mem_tracker.h"
#include "core/timer.h"
#include "nn/serialize.h"

namespace promptem::em {

PairEncoder MakePairEncoder(const lm::PretrainedLM& lm,
                            const data::GemDataset& dataset) {
  // Worst-case template overhead across both templates, halved per side.
  const int overhead = std::max(TemplateOverhead(TemplateType::kT1),
                                TemplateOverhead(TemplateType::kT2));
  const int budget = (lm.config().max_seq_len - overhead) / 2;
  PairEncoder encoder(&lm.vocab(), budget);
  encoder.FitSummarizer(dataset);
  return encoder;
}

PromptEM::PromptEM(const lm::PretrainedLM* lm, const PromptEMConfig& config)
    : lm_(lm), config_(config) {
  PROMPTEM_CHECK(lm != nullptr);
}

std::unique_ptr<PairClassifier> PromptEM::MakeModel(core::Rng* rng) const {
  if (config_.use_prompt_tuning) {
    return std::make_unique<PromptModel>(*lm_, config_.model, rng);
  }
  return std::make_unique<FinetuneModel>(*lm_, rng);
}

PromptEMResult PromptEM::Run(const data::GemDataset& dataset,
                             const data::LowResourceSplit& split) const {
  core::Timer timer;
  core::ScopedPeakMemory peak;

  PairEncoder encoder = MakePairEncoder(*lm_, dataset);
  const std::vector<EncodedPair> labeled =
      encoder.EncodeAll(dataset, split.labeled);
  const std::vector<EncodedPair> unlabeled =
      encoder.EncodeAll(dataset, split.unlabeled);
  const std::vector<EncodedPair> valid =
      encoder.EncodeAll(dataset, split.valid);
  const std::vector<EncodedPair> test =
      encoder.EncodeAll(dataset, split.test);

  SelfTrainingConfig st = config_.self_training;
  st.use_pseudo_labels = config_.use_self_training;
  st.use_pruning = config_.use_data_pruning;
  st.seed = config_.seed;
  st.teacher_options.seed = config_.seed ^ 0x51ED;
  st.student_options.seed = config_.seed ^ 0x9A3F;

  core::Rng model_rng(config_.seed);
  ModelFactory factory = [this, &model_rng]() {
    return MakeModel(&model_rng);
  };

  // Clustering embeddings (only consulted by the kClustering strategy).
  EmbeddingFn embed = [](const EncodedPair&, core::Rng*) {
    return std::vector<float>();
  };
  std::shared_ptr<EmbeddingCache> embed_cache;
  if (st.strategy == PseudoLabelStrategy::kClustering) {
    embed = [this](const EncodedPair& x, core::Rng* rng) {
      // A strategy probe uses the fine-tune pair embedding space.
      static thread_local std::unique_ptr<FinetuneModel> probe;
      if (probe == nullptr) {
        core::Rng probe_rng(config_.seed ^ 0xC1u);
        probe = std::make_unique<FinetuneModel>(*lm_, &probe_rng);
        probe->Eval();
      }
      tensor::Tensor e = probe->PairEmbedding(x, rng);
      return std::vector<float>(e.data(), e.data() + e.numel());
    };
    // Probe embeddings are a pure function of (LM weights, probe seed,
    // pair), so they can ride the persistent embedding cache when one is
    // installed: keys come from content fingerprints of the tables and
    // of a probe built exactly like the lambda's, making them stable
    // across restarts of the same run configuration.
    embed_cache = GetGlobalEmbeddingCache();
    if (embed_cache != nullptr) {
      core::Rng probe_rng(config_.seed ^ 0xC1u);
      FinetuneModel probe(*lm_, &probe_rng);
      const uint64_t tag = EmbeddingCache::ContextTag(
          data::DatasetFingerprint(dataset),
          nn::ParameterFingerprint(*probe.AsModule()));
      st.embed_cache = embed_cache.get();
      st.embed_keys.reserve(split.unlabeled.size());
      for (const auto& p : split.unlabeled) {
        st.embed_keys.push_back(
            EmbeddingCache::PairKey(tag, p.left_index, p.right_index));
      }
    }
  }

  PromptEMResult result;
  last_model_ = RunSelfTraining(factory, labeled, unlabeled, valid, st,
                                &result.stats, embed);
  result.valid = Evaluate(last_model_.get(), valid);
  result.test = Evaluate(last_model_.get(), test);
  result.total_seconds = timer.ElapsedSeconds();
  result.peak_memory_bytes = peak.Peak();
  return result;
}

}  // namespace promptem::em
