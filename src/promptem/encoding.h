#ifndef PROMPTEM_PROMPTEM_ENCODING_H_
#define PROMPTEM_PROMPTEM_ENCODING_H_

#include <memory>
#include <vector>

#include "core/concurrent_cache.h"
#include "data/dataset.h"
#include "text/tfidf.h"
#include "text/vocab.h"

namespace promptem::em {

/// A candidate pair ready for a model: both sides tokenized to ids,
/// truncated/summarized to a per-side budget. Label is carried alongside
/// (and hidden from trainers for unlabeled pools).
struct EncodedPair {
  std::vector<int> left_ids;
  std::vector<int> right_ids;
  /// Ground truth (hidden for D_U except in evaluation);
  /// data::kUnlabeledLabel for blocker-generated candidates — metric
  /// reductions skip those, label-consuming estimators reject them.
  int label = 0;
};

/// Turns records into EncodedPairs: serialize (§2.2), tokenize, and apply
/// the Appendix-F TF-IDF summarizer when a side exceeds its token budget.
///
/// Record encodings are memoized per (dataset identity, side, record
/// index) in a core::ConcurrentCache: records are immutable, and
/// self-training re-encodes the same labeled / unlabeled / valid / test
/// pools every iteration, so each record pays for SerializeRecord +
/// WordTokenize once per dataset (until capacity evicts it). The memo is
/// keyed on data::GemDataset::cache_identity — an explicit identity
/// token, not the dataset's address, so a destroyed dataset followed by a
/// same-address allocation can never be served stale encodings. A
/// summarizer refit invalidates the whole memo.
///
/// The memo is safe under concurrent use: Encode/EncodeAll may be called
/// from any number of threads, and EncodeAll parallelizes over the pool
/// itself, with output bitwise identical at every pool size (encoding is
/// a pure function of the record; the cache only decides who recomputes).
class PairEncoder {
 public:
  /// Bounds how many record encodings stay memoized. Two tables of any of
  /// the GEM benchmarks fit; beyond it, CLOCK eviction keeps hot records.
  static constexpr size_t kDefaultCacheCapacity = 1u << 16;

  /// `per_side_budget` bounds each record's tokens so the final model input
  /// (with template and special tokens) fits the encoder's max_seq_len.
  PairEncoder(const text::Vocab* vocab, int per_side_budget,
              size_t cache_capacity = kDefaultCacheCapacity);

  /// Builds corpus statistics for the summarizer from both tables.
  void FitSummarizer(const data::GemDataset& dataset);

  /// Encodes one record side.
  std::vector<int> EncodeRecord(const data::Record& record) const;

  /// Encodes one labeled pair.
  EncodedPair Encode(const data::GemDataset& dataset,
                     const data::PairExample& pair) const;

  /// Encodes a whole pair list. Parallelized over the pool via
  /// core::ParallelFor; bitwise identical to the sequential loop at any
  /// pool size.
  std::vector<EncodedPair> EncodeAll(
      const data::GemDataset& dataset,
      const std::vector<data::PairExample>& pairs) const;

  /// Drops the memoized encoding of one record. Call after mutating a
  /// record in place (the incremental matcher's upsert path); cheaper
  /// than invalidating the whole memo.
  void InvalidateRecord(const data::GemDataset& dataset, bool left,
                        int index) const;

  /// Drops every memoized encoding (O(1), lazy reclamation).
  void InvalidateCache() const;

  core::ConcurrentCache<std::vector<int>>::Stats cache_stats() const {
    return cache_->stats();
  }

  int per_side_budget() const { return per_side_budget_; }
  const text::Vocab& vocab() const { return *vocab_; }

 private:
  /// Memoized encoding of one side of `dataset` (left when `left`), keyed
  /// by (cache_identity, side, index). Computes on miss.
  std::shared_ptr<const std::vector<int>> CachedEncode(
      const data::GemDataset& dataset, bool left, int index) const;

  static uint64_t CacheKey(const data::GemDataset& dataset, bool left,
                           int index);

  const text::Vocab* vocab_;
  int per_side_budget_;
  std::unique_ptr<text::TfIdf> tfidf_;

  /// unique_ptr keeps PairEncoder movable (the cache owns mutexes).
  std::unique_ptr<core::ConcurrentCache<std::vector<int>>> cache_;
};

}  // namespace promptem::em

#endif  // PROMPTEM_PROMPTEM_ENCODING_H_
