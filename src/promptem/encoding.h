#ifndef PROMPTEM_PROMPTEM_ENCODING_H_
#define PROMPTEM_PROMPTEM_ENCODING_H_

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "text/tfidf.h"
#include "text/vocab.h"

namespace promptem::em {

/// A candidate pair ready for a model: both sides tokenized to ids,
/// truncated/summarized to a per-side budget. Label is carried alongside
/// (and hidden from trainers for unlabeled pools).
struct EncodedPair {
  std::vector<int> left_ids;
  std::vector<int> right_ids;
  /// Ground truth (hidden for D_U except in evaluation);
  /// data::kUnlabeledLabel for blocker-generated candidates — metric
  /// reductions skip those, label-consuming estimators reject them.
  int label = 0;
};

/// Turns records into EncodedPairs: serialize (§2.2), tokenize, and apply
/// the Appendix-F TF-IDF summarizer when a side exceeds its token budget.
///
/// Record encodings are memoized per (table side, record index): records
/// are immutable, and self-training re-encodes the same labeled /
/// unlabeled / valid / test pools every iteration, so each record pays
/// for SerializeRecord + WordTokenize exactly once per dataset. The cache
/// follows the dataset identity (and is rebuilt when FitSummarizer
/// changes the summarizer); it never invalidates otherwise. Memoization
/// mutates the cache under const, so a PairEncoder must be driven from
/// one thread — which is how every trainer uses it.
class PairEncoder {
 public:
  /// `per_side_budget` bounds each record's tokens so the final model input
  /// (with template and special tokens) fits the encoder's max_seq_len.
  PairEncoder(const text::Vocab* vocab, int per_side_budget);

  /// Builds corpus statistics for the summarizer from both tables.
  void FitSummarizer(const data::GemDataset& dataset);

  /// Encodes one record side.
  std::vector<int> EncodeRecord(const data::Record& record) const;

  /// Encodes one labeled pair.
  EncodedPair Encode(const data::GemDataset& dataset,
                     const data::PairExample& pair) const;

  /// Encodes a whole pair list.
  std::vector<EncodedPair> EncodeAll(
      const data::GemDataset& dataset,
      const std::vector<data::PairExample>& pairs) const;

  int per_side_budget() const { return per_side_budget_; }
  const text::Vocab& vocab() const { return *vocab_; }

 private:
  /// Memoized encoding of one side of `dataset` (left when `left`), keyed
  /// by record index. Fills the slot on first use.
  const std::vector<int>& CachedEncode(const data::GemDataset& dataset,
                                       bool left, int index) const;

  const text::Vocab* vocab_;
  int per_side_budget_;
  std::unique_ptr<text::TfIdf> tfidf_;

  /// Identity of the dataset the caches below cover; a different dataset
  /// (or a summarizer refit) rebuilds them.
  mutable const data::GemDataset* cache_owner_ = nullptr;
  mutable std::vector<std::unique_ptr<std::vector<int>>> left_cache_;
  mutable std::vector<std::unique_ptr<std::vector<int>>> right_cache_;
};

}  // namespace promptem::em

#endif  // PROMPTEM_PROMPTEM_ENCODING_H_
