#include "promptem/prompt_model.h"

#include <algorithm>

#include "tensor/autograd.h"

namespace promptem::em {

namespace ops = tensor::ops;
using text::SpecialTokens;

PromptModel::PromptModel(const lm::PretrainedLM& lm,
                         const PromptModelConfig& config, core::Rng* rng)
    : config_(config),
      encoder_(lm.CloneEncoder(rng)),
      slots_(BuildTemplate(config.template_type, config.template_mode,
                           lm.vocab())),
      verbalizer_(lm.vocab(), config.label_words) {
  RegisterModule("encoder", encoder_.get());
  if (config_.template_mode == TemplateMode::kContinuous) {
    const int dim = encoder_->config().dim;
    const int n = NumPromptSlots(config_.template_type);
    tensor::Tensor prompts = tensor::Tensor::Zeros({n, dim});
    nn::NormalInit(&prompts, 0.02f, rng);
    prompt_embeddings_ = RegisterParameter("prompt_embeddings", prompts);
    prompt_lstm_ = std::make_unique<nn::BiLstm>(dim, dim / 2, rng);
    prompt_proj_ = std::make_unique<nn::Linear>(dim, dim, rng);
    RegisterModule("prompt_lstm", prompt_lstm_.get());
    RegisterModule("prompt_proj", prompt_proj_.get());
  }
}

tensor::Tensor PromptModel::PromptRows(core::Rng* rng) const {
  (void)rng;
  PROMPTEM_CHECK(config_.template_mode == TemplateMode::kContinuous);
  // P-tuning: BiLSTM over the trainable prompt tokens models interaction
  // between them; a linear head maps back to the embedding space.
  tensor::Tensor contextual = prompt_lstm_->Forward(prompt_embeddings_);
  return prompt_proj_->Forward(contextual);
}

tensor::Tensor PromptModel::BuildInputRows(const EncodedPair& x,
                                           core::Rng* rng,
                                           int* mask_pos) const {
  // Expand slots into a token-id sequence; prompt slots get a placeholder
  // id whose embedding row is replaced below.
  const int max_len = encoder_->config().max_seq_len;
  std::vector<int> ids;
  std::vector<std::pair<int, int>> prompt_positions;  // (seq pos, prompt idx)
  int mask = -1;

  // Budget the two entity spans so the full template fits max_len.
  const int overhead = TemplateOverhead(config_.template_type);
  const int budget = (max_len - overhead) / 2;
  auto clipped = [budget](const std::vector<int>& v) {
    std::vector<int> out = v;
    if (static_cast<int>(out.size()) > budget) {
      out.resize(static_cast<size_t>(budget));
    }
    return out;
  };
  const std::vector<int> left = clipped(x.left_ids);
  const std::vector<int> right = clipped(x.right_ids);

  for (const TemplateSlot& slot : slots_) {
    switch (slot.kind) {
      case TemplateSlot::Kind::kToken:
        ids.push_back(slot.token_id);
        break;
      case TemplateSlot::Kind::kLeftEntity:
        ids.insert(ids.end(), left.begin(), left.end());
        break;
      case TemplateSlot::Kind::kRightEntity:
        ids.insert(ids.end(), right.begin(), right.end());
        break;
      case TemplateSlot::Kind::kMask:
        mask = static_cast<int>(ids.size());
        ids.push_back(SpecialTokens::kMask);
        break;
      case TemplateSlot::Kind::kPrompt:
        prompt_positions.emplace_back(static_cast<int>(ids.size()),
                                      slot.prompt_index);
        ids.push_back(SpecialTokens::kPad);  // placeholder row
        break;
    }
  }
  PROMPTEM_CHECK(mask >= 0);
  *mask_pos = mask;

  tensor::Tensor rows = encoder_->token_embedding().Forward(ids);
  if (!prompt_positions.empty()) {
    tensor::Tensor prompt_rows = PromptRows(rng);
    // Splice prompt rows into the sequence between token segments.
    std::vector<tensor::Tensor> pieces;
    int cursor = 0;
    for (const auto& [pos, prompt_idx] : prompt_positions) {
      if (pos > cursor) {
        std::vector<int> seg(static_cast<size_t>(pos - cursor));
        for (int i = cursor; i < pos; ++i) {
          seg[static_cast<size_t>(i - cursor)] = i;
        }
        pieces.push_back(ops::SelectRows(rows, seg));
      }
      pieces.push_back(ops::SelectRows(prompt_rows, {prompt_idx}));
      cursor = pos + 1;
    }
    const int total = static_cast<int>(ids.size());
    if (cursor < total) {
      std::vector<int> seg(static_cast<size_t>(total - cursor));
      for (int i = cursor; i < total; ++i) {
        seg[static_cast<size_t>(i - cursor)] = i;
      }
      pieces.push_back(ops::SelectRows(rows, seg));
    }
    rows = ops::ConcatRows(pieces);
  }
  return encoder_->EmbedRows(rows, nn::TransformerEncoder::DuplicateFlags(ids),
                             rng);
}

tensor::Tensor PromptModel::MaskLogits(const EncodedPair& x,
                                       core::Rng* rng) const {
  int mask_pos = -1;
  tensor::Tensor embedded = BuildInputRows(x, rng, &mask_pos);
  tensor::Tensor hidden = encoder_->EncodeEmbedded(embedded, rng);
  return encoder_->MlmLogits(hidden, {mask_pos});
}

tensor::Tensor PromptModel::PairEmbedding(const EncodedPair& x,
                                          core::Rng* rng) const {
  tensor::NoGradGuard no_grad;
  int mask_pos = -1;
  tensor::Tensor embedded = BuildInputRows(x, rng, &mask_pos);
  tensor::Tensor hidden = encoder_->EncodeEmbedded(embedded, rng);
  return ops::MeanRows(hidden);
}

tensor::Tensor PromptModel::Loss(const EncodedPair& x, int label,
                                 core::Rng* rng) {
  return verbalizer_.Loss(MaskLogits(x, rng), label);
}

std::array<float, 2> PromptModel::Probs(const EncodedPair& x,
                                        core::Rng* rng) {
  // NOTE(execution-modes): the guard here is deliberately kept even though
  // the batched engine (scoring.h) already disables grad mode per worker
  // chunk — Probs must stay graph-free when called directly (active
  // learning, ad-hoc scoring), and nested guards are free. Dropout
  // stochasticity is governed solely by the module's Train()/Eval() state,
  // so MC-Dropout works under this guard.
  tensor::NoGradGuard no_grad;
  return verbalizer_.PredictProbs(MaskLogits(x, rng));
}

}  // namespace promptem::em
