#ifndef PROMPTEM_PROMPTEM_TRAINER_H_
#define PROMPTEM_PROMPTEM_TRAINER_H_

#include <array>
#include <string>
#include <vector>

#include "nn/module.h"
#include "promptem/encoding.h"
#include "promptem/metrics.h"
#include "train/observer.h"

namespace promptem::em {

/// The interface every matcher model implements (PromptEM's prompt model,
/// the vanilla fine-tuning model, and the LM-based baselines). Per-sample
/// API: the trainer accumulates gradients across a minibatch and steps.
class PairClassifier {
 public:
  virtual ~PairClassifier() = default;

  /// Differentiable scalar loss for one labeled pair.
  virtual tensor::Tensor Loss(const EncodedPair& x, int label,
                              core::Rng* rng) = 0;

  /// {P(no), P(yes)} for one pair. Deterministic in eval mode; stochastic
  /// (dropout active) in training mode — MC-Dropout exploits the latter.
  virtual std::array<float, 2> Probs(const EncodedPair& x,
                                     core::Rng* rng) = 0;

  /// The underlying module (parameters / train mode).
  virtual nn::Module* AsModule() = 0;
};

/// Supervised training configuration. The small from-scratch LM wants a
/// larger learning rate than the paper's 2e-5 for RoBERTa-base.
struct TrainOptions {
  int epochs = 10;
  int batch_size = 8;  ///< gradient-accumulation group
  float lr = 5e-3f;
  float weight_decay = 0.01f;
  bool select_best_on_valid = true;  ///< restore best-F1 weights at the end
  /// Stop after this many consecutive epochs without a validation-F1
  /// improvement (0 = disabled; requires select_best_on_valid).
  int early_stop_patience = 0;
  uint64_t seed = 17;
  train::TrainObserver* observer = nullptr;  ///< not owned; may be null
  std::string run_name;                      ///< observer label
  std::string dataset_name;                  ///< observer label
};

/// Per-run training statistics.
struct TrainResult {
  std::vector<float> epoch_losses;
  Metrics best_valid;
  int best_epoch = -1;          ///< 1-based; -1 when no epoch improved
  int64_t samples_trained = 0;  ///< total per-sample steps across epochs
};

/// Trains `model` on `train` (labels from EncodedPair::label), evaluating
/// on `valid` each epoch and restoring the best-F1 snapshot at the end
/// (the paper selects the epoch with the highest validation F1). A thin
/// adapter over train::TrainLoop's data-parallel mode; leaves the model
/// in eval mode.
TrainResult TrainClassifier(PairClassifier* model,
                            const std::vector<EncodedPair>& train,
                            const std::vector<EncodedPair>& valid,
                            const TrainOptions& options);

/// Evaluates in eval mode (deterministic) against the labels in `examples`.
Metrics Evaluate(PairClassifier* model,
                 const std::vector<EncodedPair>& examples);

/// Predicted labels in eval mode (threshold 0.5 on P(yes)).
std::vector<int> PredictLabels(PairClassifier* model,
                               const std::vector<EncodedPair>& examples);

/// Copies all parameter values out of / back into a module (best-epoch
/// snapshotting, teacher/student hand-off). Aliases for the train:: pair,
/// kept under the em:: name the self-training and test code uses.
std::vector<std::vector<float>> SnapshotParams(const nn::Module& module);
void RestoreParams(nn::Module* module,
                   const std::vector<std::vector<float>>& snapshot);

}  // namespace promptem::em

#endif  // PROMPTEM_PROMPTEM_TRAINER_H_
