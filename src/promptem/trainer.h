#ifndef PROMPTEM_PROMPTEM_TRAINER_H_
#define PROMPTEM_PROMPTEM_TRAINER_H_

#include <array>
#include <vector>

#include "nn/module.h"
#include "promptem/encoding.h"
#include "promptem/metrics.h"

namespace promptem::nn {
class AdamW;
}  // namespace promptem::nn

namespace promptem::em {

/// The interface every matcher model implements (PromptEM's prompt model,
/// the vanilla fine-tuning model, and the LM-based baselines). Per-sample
/// API: the trainer accumulates gradients across a minibatch and steps.
class PairClassifier {
 public:
  virtual ~PairClassifier() = default;

  /// Differentiable scalar loss for one labeled pair.
  virtual tensor::Tensor Loss(const EncodedPair& x, int label,
                              core::Rng* rng) = 0;

  /// {P(no), P(yes)} for one pair. Deterministic in eval mode; stochastic
  /// (dropout active) in training mode — MC-Dropout exploits the latter.
  virtual std::array<float, 2> Probs(const EncodedPair& x,
                                     core::Rng* rng) = 0;

  /// The underlying module (parameters / train mode).
  virtual nn::Module* AsModule() = 0;
};

/// Supervised training configuration. The small from-scratch LM wants a
/// larger learning rate than the paper's 2e-5 for RoBERTa-base.
struct TrainOptions {
  int epochs = 10;
  int batch_size = 8;  ///< gradient-accumulation group
  float lr = 5e-3f;
  float weight_decay = 0.01f;
  bool select_best_on_valid = true;  ///< restore best-F1 weights at the end
  uint64_t seed = 17;
};

/// Per-run training statistics.
struct TrainResult {
  std::vector<float> epoch_losses;
  Metrics best_valid;
  int best_epoch = -1;
  int64_t samples_trained = 0;  ///< total per-sample steps across epochs
};

/// Trains `model` on `train` (labels from EncodedPair::label), evaluating
/// on `valid` each epoch and restoring the best-F1 snapshot at the end
/// (the paper selects the epoch with the highest validation F1).
TrainResult TrainClassifier(PairClassifier* model,
                            const std::vector<EncodedPair>& train,
                            const std::vector<EncodedPair>& valid,
                            const TrainOptions& options);

/// One epoch of data-parallel minibatch training over `train[order[...]]`:
/// each minibatch's samples run forward+Backward concurrently, every
/// sample under its own GradShard and a per-sample Rng seeded from `rng`
/// in batch order; shards merge into the shared gradients in sample order
/// before the optimizer step. Gradients (and therefore weights) are
/// bitwise identical for any PROMPTEM_NUM_THREADS. Draws batch_size seeds
/// from `rng` per batch; returns the summed per-sample loss.
double TrainEpochDataParallel(PairClassifier* model,
                              const std::vector<EncodedPair>& train,
                              const std::vector<size_t>& order,
                              int batch_size, nn::AdamW* optimizer,
                              core::Rng* rng, int64_t* samples_trained);

/// Evaluates in eval mode (deterministic) against the labels in `examples`.
Metrics Evaluate(PairClassifier* model,
                 const std::vector<EncodedPair>& examples);

/// Predicted labels in eval mode (threshold 0.5 on P(yes)).
std::vector<int> PredictLabels(PairClassifier* model,
                               const std::vector<EncodedPair>& examples);

/// Copies all parameter values out of / back into a module (best-epoch
/// snapshotting, teacher/student hand-off).
std::vector<std::vector<float>> SnapshotParams(const nn::Module& module);
void RestoreParams(nn::Module* module,
                   const std::vector<std::vector<float>>& snapshot);

}  // namespace promptem::em

#endif  // PROMPTEM_PROMPTEM_TRAINER_H_
