#include "promptem/encoding.h"

#include "data/serializer.h"
#include "text/tokenizer.h"

namespace promptem::em {

PairEncoder::PairEncoder(const text::Vocab* vocab, int per_side_budget)
    : vocab_(vocab), per_side_budget_(per_side_budget) {
  PROMPTEM_CHECK(vocab != nullptr);
  PROMPTEM_CHECK(per_side_budget > 0);
}

void PairEncoder::FitSummarizer(const data::GemDataset& dataset) {
  std::vector<std::vector<std::string>> docs;
  docs.reserve(dataset.left_table.size() + dataset.right_table.size());
  for (const auto& r : dataset.left_table) {
    docs.push_back(text::WordTokenize(data::SerializeRecord(r)));
  }
  for (const auto& r : dataset.right_table) {
    docs.push_back(text::WordTokenize(data::SerializeRecord(r)));
  }
  tfidf_ = std::make_unique<text::TfIdf>(docs);
  // The summarizer changes how over-budget records encode; drop any
  // memoized encodings made without it.
  cache_owner_ = nullptr;
  left_cache_.clear();
  right_cache_.clear();
}

const std::vector<int>& PairEncoder::CachedEncode(
    const data::GemDataset& dataset, bool left, int index) const {
  if (cache_owner_ != &dataset) {
    cache_owner_ = &dataset;
    left_cache_.clear();
    right_cache_.clear();
    left_cache_.resize(dataset.left_table.size());
    right_cache_.resize(dataset.right_table.size());
  }
  auto& cache = left ? left_cache_ : right_cache_;
  PROMPTEM_CHECK(index >= 0 &&
                 static_cast<size_t>(index) < cache.size());
  auto& slot = cache[static_cast<size_t>(index)];
  if (slot == nullptr) {
    const data::Record& record =
        left ? dataset.left_table[static_cast<size_t>(index)]
             : dataset.right_table[static_cast<size_t>(index)];
    slot = std::make_unique<std::vector<int>>(EncodeRecord(record));
  }
  return *slot;
}

std::vector<int> PairEncoder::EncodeRecord(const data::Record& record) const {
  std::vector<std::string> tokens =
      text::WordTokenize(data::SerializeRecord(record));
  const auto budget = static_cast<size_t>(per_side_budget_);
  if (tokens.size() > budget) {
    if (tfidf_ != nullptr) {
      // Appendix F: keep high-TF-IDF non-stopword tokens instead of
      // blindly truncating (important signal is rarely at the front).
      tokens = text::SummarizeTokens(*tfidf_, tokens, budget);
    } else {
      tokens.resize(budget);
    }
  }
  return text::TokensToIds(*vocab_, tokens);
}

EncodedPair PairEncoder::Encode(const data::GemDataset& dataset,
                                const data::PairExample& pair) const {
  EncodedPair out;
  out.left_ids = CachedEncode(dataset, /*left=*/true, pair.left_index);
  out.right_ids = CachedEncode(dataset, /*left=*/false, pair.right_index);
  out.label = pair.label;
  return out;
}

std::vector<EncodedPair> PairEncoder::EncodeAll(
    const data::GemDataset& dataset,
    const std::vector<data::PairExample>& pairs) const {
  std::vector<EncodedPair> out;
  out.reserve(pairs.size());
  for (const auto& p : pairs) out.push_back(Encode(dataset, p));
  return out;
}

}  // namespace promptem::em
