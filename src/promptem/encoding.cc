#include "promptem/encoding.h"

#include "data/serializer.h"
#include "text/tokenizer.h"

namespace promptem::em {

PairEncoder::PairEncoder(const text::Vocab* vocab, int per_side_budget)
    : vocab_(vocab), per_side_budget_(per_side_budget) {
  PROMPTEM_CHECK(vocab != nullptr);
  PROMPTEM_CHECK(per_side_budget > 0);
}

void PairEncoder::FitSummarizer(const data::GemDataset& dataset) {
  std::vector<std::vector<std::string>> docs;
  docs.reserve(dataset.left_table.size() + dataset.right_table.size());
  for (const auto& r : dataset.left_table) {
    docs.push_back(text::WordTokenize(data::SerializeRecord(r)));
  }
  for (const auto& r : dataset.right_table) {
    docs.push_back(text::WordTokenize(data::SerializeRecord(r)));
  }
  tfidf_ = std::make_unique<text::TfIdf>(docs);
}

std::vector<int> PairEncoder::EncodeRecord(const data::Record& record) const {
  std::vector<std::string> tokens =
      text::WordTokenize(data::SerializeRecord(record));
  const auto budget = static_cast<size_t>(per_side_budget_);
  if (tokens.size() > budget) {
    if (tfidf_ != nullptr) {
      // Appendix F: keep high-TF-IDF non-stopword tokens instead of
      // blindly truncating (important signal is rarely at the front).
      tokens = text::SummarizeTokens(*tfidf_, tokens, budget);
    } else {
      tokens.resize(budget);
    }
  }
  return text::TokensToIds(*vocab_, tokens);
}

EncodedPair PairEncoder::Encode(const data::GemDataset& dataset,
                                const data::PairExample& pair) const {
  EncodedPair out;
  out.left_ids = EncodeRecord(dataset.Left(pair));
  out.right_ids = EncodeRecord(dataset.Right(pair));
  out.label = pair.label;
  return out;
}

std::vector<EncodedPair> PairEncoder::EncodeAll(
    const data::GemDataset& dataset,
    const std::vector<data::PairExample>& pairs) const {
  std::vector<EncodedPair> out;
  out.reserve(pairs.size());
  for (const auto& p : pairs) out.push_back(Encode(dataset, p));
  return out;
}

}  // namespace promptem::em
