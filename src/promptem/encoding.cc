#include "promptem/encoding.h"

#include "core/hashing.h"
#include "core/thread_pool.h"
#include "data/serializer.h"
#include "text/tokenizer.h"

namespace promptem::em {
namespace {

/// Pairs per ParallelFor chunk in EncodeAll. Encoding one pair is
/// tokenizer-bound (tens of microseconds); 8 keeps scheduling overhead
/// negligible while still splitting the small self-training pools.
constexpr int64_t kEncodeGrain = 8;

}  // namespace

PairEncoder::PairEncoder(const text::Vocab* vocab, int per_side_budget,
                         size_t cache_capacity)
    : vocab_(vocab),
      per_side_budget_(per_side_budget),
      cache_(std::make_unique<core::ConcurrentCache<std::vector<int>>>(
          cache_capacity)) {
  PROMPTEM_CHECK(vocab != nullptr);
  PROMPTEM_CHECK(per_side_budget > 0);
}

void PairEncoder::FitSummarizer(const data::GemDataset& dataset) {
  std::vector<std::vector<std::string>> docs;
  docs.reserve(dataset.left_table.size() + dataset.right_table.size());
  for (const auto& r : dataset.left_table) {
    docs.push_back(text::WordTokenize(data::SerializeRecord(r)));
  }
  for (const auto& r : dataset.right_table) {
    docs.push_back(text::WordTokenize(data::SerializeRecord(r)));
  }
  tfidf_ = std::make_unique<text::TfIdf>(docs);
  // The summarizer changes how over-budget records encode; drop any
  // memoized encodings made without it.
  InvalidateCache();
}

uint64_t PairEncoder::CacheKey(const data::GemDataset& dataset, bool left,
                               int index) {
  const uint64_t side_index =
      (static_cast<uint64_t>(left ? 1 : 2) << 32) |
      static_cast<uint64_t>(static_cast<uint32_t>(index));
  return core::Combine64(dataset.cache_identity, side_index);
}

std::shared_ptr<const std::vector<int>> PairEncoder::CachedEncode(
    const data::GemDataset& dataset, bool left, int index) const {
  const auto& table = left ? dataset.left_table : dataset.right_table;
  PROMPTEM_CHECK(index >= 0 && static_cast<size_t>(index) < table.size());
  return cache_->GetOrCompute(CacheKey(dataset, left, index), [&] {
    return EncodeRecord(table[static_cast<size_t>(index)]);
  });
}

void PairEncoder::InvalidateRecord(const data::GemDataset& dataset, bool left,
                                   int index) const {
  cache_->Erase(CacheKey(dataset, left, index));
}

void PairEncoder::InvalidateCache() const { cache_->Invalidate(); }

std::vector<int> PairEncoder::EncodeRecord(const data::Record& record) const {
  std::vector<std::string> tokens =
      text::WordTokenize(data::SerializeRecord(record));
  const auto budget = static_cast<size_t>(per_side_budget_);
  if (tokens.size() > budget) {
    if (tfidf_ != nullptr) {
      // Appendix F: keep high-TF-IDF non-stopword tokens instead of
      // blindly truncating (important signal is rarely at the front).
      tokens = text::SummarizeTokens(*tfidf_, tokens, budget);
    } else {
      tokens.resize(budget);
    }
  }
  return text::TokensToIds(*vocab_, tokens);
}

EncodedPair PairEncoder::Encode(const data::GemDataset& dataset,
                                const data::PairExample& pair) const {
  EncodedPair out;
  out.left_ids = *CachedEncode(dataset, /*left=*/true, pair.left_index);
  out.right_ids = *CachedEncode(dataset, /*left=*/false, pair.right_index);
  out.label = pair.label;
  return out;
}

std::vector<EncodedPair> PairEncoder::EncodeAll(
    const data::GemDataset& dataset,
    const std::vector<data::PairExample>& pairs) const {
  std::vector<EncodedPair> out(pairs.size());
  // Per-slot writes of a pure function of pairs[i]: bitwise identical at
  // any pool size. The memo only decides which lane pays the encode.
  core::ParallelFor(0, static_cast<int64_t>(pairs.size()), kEncodeGrain,
                    [&](int64_t begin, int64_t end) {
                      for (int64_t i = begin; i < end; ++i) {
                        out[static_cast<size_t>(i)] =
                            Encode(dataset, pairs[static_cast<size_t>(i)]);
                      }
                    });
  return out;
}

}  // namespace promptem::em
