#ifndef PROMPTEM_PROMPTEM_PSEUDO_LABELS_H_
#define PROMPTEM_PROMPTEM_PSEUDO_LABELS_H_

#include <functional>
#include <string>

#include "promptem/embed_cache.h"
#include "promptem/uncertainty.h"

namespace promptem::em {

/// Pseudo-label selection strategies compared in §5.5 / Table 5.
enum class PseudoLabelStrategy {
  kUncertainty,  ///< top-N least MC-Dropout uncertainty (PromptEM's choice)
  kConfidence,   ///< top-N highest mean confidence
  kClustering,   ///< k-means on pair embeddings; nearest-to-centroid first
};

const char* PseudoLabelStrategyName(PseudoLabelStrategy strategy);

/// Inverse of PseudoLabelStrategyName. Returns false (leaving `out`
/// untouched) for unknown names, so callers can report the bad value.
bool ParsePseudoLabelStrategy(const std::string& name,
                              PseudoLabelStrategy* out);

/// Produces a [1, dim]-style flat embedding for one pair (clustering).
using EmbeddingFn =
    std::function<std::vector<float>(const EncodedPair&, core::Rng*)>;

/// The selected pseudo-labeled subset of D_U.
struct PseudoLabelResult {
  std::vector<int> indices;        ///< into the unlabeled pool
  std::vector<int> pseudo_labels;  ///< teacher labels for those indices
  /// Quality of the selected pseudo-labels versus the (hidden) gold
  /// labels — only used for the Table 5 evaluation, never by training.
  double tpr = 0.0;
  double tnr = 0.0;
};

/// Selects N_P = ratio * |unlabeled| pseudo-labels with the given strategy
/// (Eq. 2 for uncertainty). `embed` is required for kClustering.
///
/// When `embed_cache` is set (with `embed_keys[i]` naming unlabeled[i]'s
/// embedding — see EmbeddingCache's key builders), the kClustering path
/// reuses cached embeddings and only embeds misses; the MC-Dropout
/// estimates are stochastic and always recomputed. Selection is bitwise
/// identical with or without the cache.
PseudoLabelResult SelectPseudoLabels(
    PairClassifier* teacher, const std::vector<EncodedPair>& unlabeled,
    PseudoLabelStrategy strategy, double ratio, int mc_passes,
    core::Rng* rng, const EmbeddingFn& embed = nullptr,
    EmbeddingCache* embed_cache = nullptr,
    const std::vector<uint64_t>& embed_keys = {});

/// Plain k-means (Lloyd's); returns per-point cluster assignment and the
/// distance to the assigned centroid. Deterministic given the rng.
void KMeans(const std::vector<std::vector<float>>& points, int k,
            int iterations, core::Rng* rng, std::vector<int>* assignment,
            std::vector<double>* distance);

}  // namespace promptem::em

#endif  // PROMPTEM_PROMPTEM_PSEUDO_LABELS_H_
