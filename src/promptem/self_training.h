#ifndef PROMPTEM_PROMPTEM_SELF_TRAINING_H_
#define PROMPTEM_PROMPTEM_SELF_TRAINING_H_

#include <functional>
#include <memory>

#include "promptem/pseudo_labels.h"

namespace promptem::em {

/// Creates a fresh model (teacher or student) initialized from the
/// pre-trained LM.
using ModelFactory = std::function<std::unique_ptr<PairClassifier>()>;

/// Lightweight Self-Training configuration (Algorithm 1 of §4).
struct SelfTrainingConfig {
  int iterations = 1;  ///< paper default
  TrainOptions teacher_options;
  TrainOptions student_options;
  double pseudo_ratio = 0.10;  ///< u_r: fraction of D_U pseudo-labeled
  double prune_ratio = 0.25;   ///< e_r: fraction of D_L pruned per pruning
  int prune_every = 3;         ///< prune every this many student epochs
  int mc_passes = 10;          ///< MC-Dropout passes (paper: 10)
  bool use_pseudo_labels = true;  ///< LST switch (ablation w/o LST)
  bool use_pruning = true;        ///< DDP switch (ablation w/o DDP)
  PseudoLabelStrategy strategy = PseudoLabelStrategy::kUncertainty;
  uint64_t seed = 23;
  /// Optional embedding cache for the kClustering strategy. `embed_keys`
  /// is parallel to RunSelfTraining's `unlabeled` argument (one key per
  /// pair, built with EmbeddingCache's key builders); the driver keeps
  /// the surviving keys aligned as pseudo-labeled pairs leave D_U.
  EmbeddingCache* embed_cache = nullptr;
  std::vector<uint64_t> embed_keys;
};

/// Observability for the benchmark tables.
struct SelfTrainingStats {
  TrainResult teacher_result;
  Metrics student_best_valid;
  PseudoLabelResult pseudo;      ///< last iteration's selection
  int pruned_total = 0;          ///< samples removed by DDP
  int64_t student_samples = 0;   ///< per-sample steps during student phase
  double teacher_seconds = 0.0;
  double student_seconds = 0.0;
};

/// Runs Algorithm 1 and returns the best student model (the teacher when
/// use_pseudo_labels is false, in which case this reduces to plain
/// supervised training).
///
/// `unlabeled` gold labels are only consulted for the pseudo-label quality
/// stats; training reads pseudo-labels exclusively.
std::unique_ptr<PairClassifier> RunSelfTraining(
    const ModelFactory& factory, const std::vector<EncodedPair>& labeled,
    const std::vector<EncodedPair>& unlabeled,
    const std::vector<EncodedPair>& valid, const SelfTrainingConfig& config,
    SelfTrainingStats* stats, const EmbeddingFn& embed = nullptr);

}  // namespace promptem::em

#endif  // PROMPTEM_PROMPTEM_SELF_TRAINING_H_
