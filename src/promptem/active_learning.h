#ifndef PROMPTEM_PROMPTEM_ACTIVE_LEARNING_H_
#define PROMPTEM_PROMPTEM_ACTIVE_LEARNING_H_

#include <memory>
#include <vector>

#include "promptem/self_training.h"

namespace promptem::em {

/// Uncertainty-driven active learning — the complementary use of the
/// MC-Dropout machinery (§4.2): where self-training consumes the *least*
/// uncertain unlabeled samples as pseudo-labels, active learning sends
/// the *most* uncertain ones to an oracle for true labels. The paper
/// cites this line of work (Kasai et al., ACL'19; Nafa et al., 2022) as
/// the other road out of the low-resource dilemma; this extension lets
/// the two be compared inside one framework.
struct ActiveLearningConfig {
  int rounds = 3;
  int budget_per_round = 8;  ///< oracle labels purchased per round
  int mc_passes = 10;
  TrainOptions train_options;
  uint64_t seed = 29;
};

/// One round's outcome.
struct ActiveLearningRound {
  int round = 0;
  size_t labeled_size = 0;  ///< after acquisition
  Metrics valid;            ///< model quality after retraining
};

/// Runs `rounds` of acquire-most-uncertain -> reveal gold label ->
/// retrain. The unlabeled pool's `label` fields act as the oracle.
/// Returns per-round stats; `*final_model` receives the last model.
std::vector<ActiveLearningRound> RunActiveLearning(
    const ModelFactory& factory, std::vector<EncodedPair> labeled,
    std::vector<EncodedPair> unlabeled,
    const std::vector<EncodedPair>& valid,
    const ActiveLearningConfig& config,
    std::unique_ptr<PairClassifier>* final_model);

}  // namespace promptem::em

#endif  // PROMPTEM_PROMPTEM_ACTIVE_LEARNING_H_
