#ifndef PROMPTEM_PROMPTEM_SCORING_H_
#define PROMPTEM_PROMPTEM_SCORING_H_

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/concurrent_cache.h"
#include "promptem/embed_cache.h"
#include "promptem/trainer.h"
#include "tensor/quant.h"

namespace promptem::em {

/// {P(no), P(yes)} for one pair.
using ProbPair = std::array<float, 2>;

/// The unified batched inference engine.
///
/// Every matcher in the repo — the prompt model, the vanilla fine-tuning
/// model, and the baselines — scores pairs one at a time through some
/// per-sample forward. This header is the single execution path that
/// batches those forwards: pool-parallel across samples, graph-free (each
/// worker chunk runs under a NoGradGuard so no autograd state is built),
/// and allocation-free in steady state (each chunk installs a
/// tensor::ScratchArena that recycles intermediate buffers). Results are
/// written to per-index slots and per-sample rng streams are derived from
/// explicit seeds, so the output is bitwise identical for any
/// PROMPTEM_NUM_THREADS.
///
/// PairClassifier implementations plug in via ScoreBatch /
/// ScoreBatchStochastic; models with other shapes (e.g. TDmatch*'s
/// graph-embedding head) adapt through ScoreIndexed; non-probability
/// work (MC-Dropout estimates, pair embeddings) rides ForEachGraphFree.

/// RAII: forces training mode (dropout active) if it is not already on,
/// restoring the previous mode on destruction. When the mode is already
/// correct nothing is written, so concurrent scopes over the same module
/// only read the flag. This is how MC-Dropout keeps dropout stochastic
/// while grad mode is off.
class ScopedTrainingMode {
 public:
  explicit ScopedTrainingMode(nn::Module* module)
      : module_(module), was_training_(module->training()) {
    if (!was_training_) module_->Train();
  }
  ~ScopedTrainingMode() {
    if (!was_training_) module_->Eval();
  }

  ScopedTrainingMode(const ScopedTrainingMode&) = delete;
  ScopedTrainingMode& operator=(const ScopedTrainingMode&) = delete;

 private:
  nn::Module* module_;
  bool was_training_;
};

/// Eval-traffic quantization switch for the engine. In kInt8 mode every
/// graph-free sweep (ScoreBatch / ScoreIndexed / EmbedBatch) runs its
/// Linear forwards through the dynamically quantized int8 kernel
/// (tensor/quant.h); training and MC-dropout (ScoreBatchStochastic)
/// always stay f32 because they run with training-mode/grad semantics.
/// Each sweep entry bumps the quant generation, so weight updates between
/// sweeps requantize lazily. Exact across kernel variants (the int8 GEMM
/// is integer arithmetic) and bitwise deterministic at any pool size.
inline void SetEvalQuantization(tensor::quant::EvalQuantMode mode) {
  tensor::quant::SetEvalQuantMode(mode);
}
inline tensor::quant::EvalQuantMode GetEvalQuantization() {
  return tensor::quant::GetEvalQuantMode();
}

/// Runs `fn(i)` for every i in [0, n) across the thread pool. Each worker
/// chunk executes under a NoGradGuard and a fresh ScratchArena scope, so
/// the body's forwards build no graph and recycle intermediate buffers.
/// `fn` must confine its side effects to slot i.
void ForEachGraphFree(int64_t n, const std::function<void(int64_t)>& fn);

/// Scores `n` indices through the engine. Index i is scored with a
/// core::Rng seeded from seeds[i] (or 0 when `seeds` is empty — the draws
/// are unused by deterministic eval forwards); slot i receives the result.
using IndexedScoreFn = std::function<ProbPair(int64_t, core::Rng*)>;
std::vector<ProbPair> ScoreIndexed(int64_t n, const IndexedScoreFn& score_one,
                                   const std::vector<uint64_t>& seeds = {});

/// Eval-mode probabilities for every pair. Puts the model in Eval() (and
/// leaves it there, matching PredictLabels semantics).
std::vector<ProbPair> ScoreBatch(PairClassifier* model,
                                 const std::vector<EncodedPair>& xs);

/// Stochastic probabilities: dropout stays active (ScopedTrainingMode)
/// and sample i draws its dropout pattern from Rng(seeds[i]).
std::vector<ProbPair> ScoreBatchStochastic(PairClassifier* model,
                                           const std::vector<EncodedPair>& xs,
                                           const std::vector<uint64_t>& seeds);

/// Threshold 0.5 on P(yes) — the decision rule used everywhere.
std::vector<int> LabelsFromProbs(const std::vector<ProbPair>& probs);

/// Flat per-pair embeddings through the engine (clustering pseudo-labels).
/// Sample i's rng is seeded from seeds[i] (or 0 when empty).
using PairEmbedFn =
    std::function<std::vector<float>(const EncodedPair&, core::Rng*)>;
std::vector<std::vector<float>> EmbedBatch(const PairEmbedFn& embed,
                                           const std::vector<EncodedPair>& xs,
                                           const std::vector<uint64_t>& seeds =
                                               {});

/// Cached variants of the deterministic eval sweeps. `keys[i]` names
/// xs[i]'s result in the cache (a composite over dataset/model
/// fingerprints and the pair's table indexes — see EmbeddingCache's key
/// builders); only misses go through the engine, and every computed value
/// is inserted for the next sweep. Because eval forwards are pure
/// functions of the input (per-sample rng draws are unused), output is
/// bitwise identical to the uncached sweep at any pool size and any cache
/// state. Stochastic paths (ScoreBatchStochastic, MC-Dropout) have no
/// cached variant by design: their outputs are not pure in the key.
///
/// `cache == nullptr` (or empty `keys`) degrades to the uncached sweep.
std::vector<ProbPair> ScoreBatchCached(
    PairClassifier* model, const std::vector<EncodedPair>& xs,
    core::ConcurrentCache<ProbPair>* cache,
    const std::vector<uint64_t>& keys);

std::vector<std::vector<float>> EmbedBatchCached(
    const PairEmbedFn& embed, const std::vector<EncodedPair>& xs,
    const std::vector<uint64_t>& seeds, EmbeddingCache* cache,
    const std::vector<uint64_t>& keys);

/// Softmax over a [1, 2] logits tensor — the shared tail of every binary
/// Probs implementation.
ProbPair SoftmaxProbs2(const tensor::Tensor& logits);

}  // namespace promptem::em

#endif  // PROMPTEM_PROMPTEM_SCORING_H_
