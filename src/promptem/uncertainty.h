#ifndef PROMPTEM_PROMPTEM_UNCERTAINTY_H_
#define PROMPTEM_PROMPTEM_UNCERTAINTY_H_

#include "promptem/trainer.h"

namespace promptem::em {

/// MC-Dropout estimate for one sample (§4.2): statistics of P(yes) across
/// `passes` stochastic forward passes with dropout active.
struct McEstimate {
  float mean_pos_prob = 0.0f;
  float uncertainty = 0.0f;  ///< std of P(yes) across passes
  int pseudo_label = 0;      ///< 1 when mean_pos_prob >= 0.5
  float confidence = 0.0f;   ///< max(mean p, 1 - mean p)
};

/// Runs `passes` stochastic passes (temporarily forcing training mode so
/// dropout stays active) and returns mean/std statistics. The model's
/// train/eval mode is restored afterwards.
McEstimate McDropoutEstimate(PairClassifier* model, const EncodedPair& x,
                             int passes, core::Rng* rng);

/// MC-EL2N (§4.3): mean over stochastic passes of || p(x) - onehot(y) ||_2.
/// Low scores mark easy/useless training samples, pruned by DDP.
float McEl2nScore(PairClassifier* model, const EncodedPair& x, int label,
                  int passes, core::Rng* rng);

}  // namespace promptem::em

#endif  // PROMPTEM_PROMPTEM_UNCERTAINTY_H_
