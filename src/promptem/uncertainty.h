#ifndef PROMPTEM_PROMPTEM_UNCERTAINTY_H_
#define PROMPTEM_PROMPTEM_UNCERTAINTY_H_

#include <vector>

#include "promptem/trainer.h"

namespace promptem::em {

/// MC-Dropout estimate for one sample (§4.2): statistics of P(yes) across
/// `passes` stochastic forward passes with dropout active.
struct McEstimate {
  float mean_pos_prob = 0.0f;
  float uncertainty = 0.0f;  ///< std of P(yes) across passes
  int pseudo_label = 0;      ///< 1 when mean_pos_prob >= 0.5
  float confidence = 0.0f;   ///< max(mean p, 1 - mean p)
};

/// Runs `passes` stochastic passes (temporarily forcing training mode so
/// dropout stays active) and returns mean/std statistics. The model's
/// train/eval mode is restored afterwards.
///
/// The passes run concurrently on the thread pool: each pass gets its own
/// core::Rng stream derived from one seed drawn from `rng`, runs under
/// NoGradGuard, and the per-pass probabilities are reduced in pass order —
/// so the estimate is bitwise identical for any PROMPTEM_NUM_THREADS.
McEstimate McDropoutEstimate(PairClassifier* model, const EncodedPair& x,
                             int passes, core::Rng* rng);

/// MC-EL2N (§4.3): mean over stochastic passes of || p(x) - onehot(y) ||_2.
/// Low scores mark easy/useless training samples, pruned by DDP.
float McEl2nScore(PairClassifier* model, const EncodedPair& x, int label,
                  int passes, core::Rng* rng);

/// Batch variants: estimates every sample, parallelized across samples
/// (per-sample seeds drawn from `rng` in input order; a sample's passes
/// then run inline inside its worker). Equivalent to calling the
/// single-sample functions in a loop — same seed derivation, same
/// reduction order — just faster.
std::vector<McEstimate> McDropoutEstimateBatch(
    PairClassifier* model, const std::vector<EncodedPair>& xs, int passes,
    core::Rng* rng);

/// Batch MC-EL2N against each sample's own EncodedPair::label.
std::vector<float> McEl2nScoreBatch(PairClassifier* model,
                                    const std::vector<EncodedPair>& xs,
                                    int passes, core::Rng* rng);

}  // namespace promptem::em

#endif  // PROMPTEM_PROMPTEM_UNCERTAINTY_H_
