#ifndef PROMPTEM_PROMPTEM_PROMPTEM_H_
#define PROMPTEM_PROMPTEM_PROMPTEM_H_

#include <memory>
#include <string>

#include "promptem/finetune_model.h"
#include "promptem/prompt_model.h"
#include "promptem/self_training.h"

namespace promptem::em {

/// Full PromptEM configuration: the three modules of the paper and the
/// ablation switches used by Table 2 (w/o PT, w/o LST, w/o DDP).
struct PromptEMConfig {
  PromptModelConfig model;
  bool use_prompt_tuning = true;   ///< false = fine-tune (w/o PT)
  bool use_self_training = true;   ///< false = teacher only (w/o LST)
  bool use_data_pruning = true;    ///< false = no DDP
  SelfTrainingConfig self_training;
  uint64_t seed = 7;
};

/// A full run's outputs (consumed by the benchmark harness).
struct PromptEMResult {
  Metrics test;
  Metrics valid;
  SelfTrainingStats stats;
  double total_seconds = 0.0;
  size_t peak_memory_bytes = 0;
};

/// Top-level façade: encodes a dataset split, runs lightweight
/// self-training over the prompt (or fine-tune) model, and evaluates.
///
/// Usage:
///   auto lm = lm::GetOrCreateSharedLM("lm_cache", 42);
///   PromptEM promptem(lm.get(), PromptEMConfig{});
///   PromptEMResult r = promptem.Run(dataset, split);
class PromptEM {
 public:
  PromptEM(const lm::PretrainedLM* lm, const PromptEMConfig& config);

  /// Trains on split.labeled (+ pseudo-labels from split.unlabeled) and
  /// reports test metrics.
  PromptEMResult Run(const data::GemDataset& dataset,
                     const data::LowResourceSplit& split) const;

  /// The trained model from the last Run (for inspection / examples).
  PairClassifier* last_model() const { return last_model_.get(); }

  const PromptEMConfig& config() const { return config_; }

 private:
  std::unique_ptr<PairClassifier> MakeModel(core::Rng* rng) const;

  const lm::PretrainedLM* lm_;
  PromptEMConfig config_;
  mutable std::unique_ptr<PairClassifier> last_model_;
};

/// Builds the PairEncoder every method shares for one dataset: per-side
/// budget derived from the LM's max sequence length and the template
/// overhead, summarizer fitted on the dataset.
PairEncoder MakePairEncoder(const lm::PretrainedLM& lm,
                            const data::GemDataset& dataset);

}  // namespace promptem::em

#endif  // PROMPTEM_PROMPTEM_PROMPTEM_H_
