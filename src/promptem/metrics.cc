#include "promptem/metrics.h"

#include "core/status.h"
#include "core/string_util.h"
#include "data/dataset.h"

namespace promptem::em {

double Metrics::Precision() const {
  return tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
}

double Metrics::Recall() const {
  return tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
}

double Metrics::F1() const {
  const double p = Precision();
  const double r = Recall();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double Metrics::Accuracy() const {
  const int total = tp + fp + tn + fn;
  return total == 0 ? 0.0 : static_cast<double>(tp + tn) / total;
}

double Metrics::Tnr() const {
  return tn + fp == 0 ? 0.0 : static_cast<double>(tn) / (tn + fp);
}

std::string Metrics::ToString() const {
  return core::StrFormat("P=%.1f R=%.1f F1=%.1f", Precision() * 100.0,
                         Recall() * 100.0, F1() * 100.0);
}

void Metrics::Count(int prediction, int gold) {
  if (gold == data::kUnlabeledLabel) return;
  PROMPTEM_CHECK_MSG(gold == 0 || gold == 1,
                     "gold label must be 0, 1, or kUnlabeledLabel");
  const bool pred = prediction == 1;
  const bool truth = gold == 1;
  if (pred && truth) {
    ++tp;
  } else if (pred && !truth) {
    ++fp;
  } else if (!pred && truth) {
    ++fn;
  } else {
    ++tn;
  }
}

Metrics ComputeMetrics(const std::vector<int>& predictions,
                       const std::vector<int>& gold) {
  PROMPTEM_CHECK(predictions.size() == gold.size());
  Metrics m;
  for (size_t i = 0; i < predictions.size(); ++i) {
    m.Count(predictions[i], gold[i]);
  }
  return m;
}

Metrics MetricsFromProbs(const std::vector<std::array<float, 2>>& probs,
                         const std::vector<int>& gold) {
  PROMPTEM_CHECK(probs.size() == gold.size());
  std::vector<int> predictions(probs.size());
  for (size_t i = 0; i < probs.size(); ++i) {
    predictions[i] = probs[i][1] >= 0.5f ? 1 : 0;
  }
  return ComputeMetrics(predictions, gold);
}

}  // namespace promptem::em
