#include "promptem/finetune_model.h"

#include "promptem/scoring.h"
#include "tensor/autograd.h"

namespace promptem::em {

namespace ops = tensor::ops;
using text::SpecialTokens;

FinetuneModel::FinetuneModel(const lm::PretrainedLM& lm, core::Rng* rng)
    : encoder_(lm.CloneEncoder(rng)) {
  head_ = std::make_unique<nn::Linear>(encoder_->config().dim, 2, rng);
  RegisterModule("encoder", encoder_.get());
  RegisterModule("head", head_.get());
}

std::vector<int> FinetuneModel::BuildInputIds(const EncodedPair& x) const {
  const int max_len = encoder_->config().max_seq_len;
  const int budget = (max_len - 3) / 2;
  std::vector<int> ids;
  ids.push_back(SpecialTokens::kCls);
  const auto take = [budget](const std::vector<int>& v) {
    return std::min<size_t>(v.size(), static_cast<size_t>(budget));
  };
  ids.insert(ids.end(), x.left_ids.begin(),
             x.left_ids.begin() + static_cast<long>(take(x.left_ids)));
  ids.push_back(SpecialTokens::kSep);
  ids.insert(ids.end(), x.right_ids.begin(),
             x.right_ids.begin() + static_cast<long>(take(x.right_ids)));
  ids.push_back(SpecialTokens::kSep);
  return ids;
}

tensor::Tensor FinetuneModel::Logits(const EncodedPair& x,
                                     core::Rng* rng) const {
  tensor::Tensor hidden = encoder_->Encode(BuildInputIds(x), rng);
  tensor::Tensor cls = ops::SelectRows(hidden, {0});
  return head_->Forward(cls);
}

tensor::Tensor FinetuneModel::PairEmbedding(const EncodedPair& x,
                                            core::Rng* rng) const {
  tensor::NoGradGuard no_grad;
  tensor::Tensor hidden = encoder_->Encode(BuildInputIds(x), rng);
  return ops::MeanRows(hidden);
}

tensor::Tensor FinetuneModel::Loss(const EncodedPair& x, int label,
                                   core::Rng* rng) {
  return ops::CrossEntropyLogits(Logits(x, rng), {label});
}

std::array<float, 2> FinetuneModel::Probs(const EncodedPair& x,
                                          core::Rng* rng) {
  tensor::NoGradGuard no_grad;
  return SoftmaxProbs2(Logits(x, rng));
}

}  // namespace promptem::em
