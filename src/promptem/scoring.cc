#include "promptem/scoring.h"

#include "core/thread_pool.h"
#include "tensor/arena.h"
#include "tensor/autograd.h"
#include "tensor/kernels.h"
#include "tensor/quant.h"

namespace promptem::em {

namespace {

/// Samples per worker chunk. Fixed — the chunk decomposition never depends
/// on the pool size — and large enough that a chunk's ScratchArena
/// amortizes its warm-up allocations over several samples.
constexpr int64_t kScoreGrain = 8;

}  // namespace

void ForEachGraphFree(int64_t n, const std::function<void(int64_t)>& fn) {
  // A new eval sweep may follow optimizer steps or a checkpoint load;
  // retire any int8 weight images quantized from the old parameters.
  // Safe mid-training too: the bump only forces a (cheap) requantize on
  // the next quantized forward, and it happens before — never during —
  // the sharded loop, so every chunk sees the same generation.
  if (tensor::quant::GetEvalQuantMode() == tensor::quant::EvalQuantMode::kInt8) {
    tensor::quant::BumpQuantGeneration();
  }
  core::ParallelFor(0, n, kScoreGrain, [&](int64_t begin, int64_t end) {
    tensor::NoGradGuard no_grad;
    tensor::ScratchArena arena;
    tensor::ScratchArena::Scope scope(&arena);
    for (int64_t i = begin; i < end; ++i) fn(i);
  });
}

std::vector<ProbPair> ScoreIndexed(int64_t n, const IndexedScoreFn& score_one,
                                   const std::vector<uint64_t>& seeds) {
  PROMPTEM_CHECK(seeds.empty() || static_cast<int64_t>(seeds.size()) == n);
  std::vector<ProbPair> probs(static_cast<size_t>(n));
  ForEachGraphFree(n, [&](int64_t i) {
    const size_t idx = static_cast<size_t>(i);
    core::Rng rng(seeds.empty() ? 0 : seeds[idx]);
    probs[idx] = score_one(i, &rng);
  });
  return probs;
}

std::vector<ProbPair> ScoreBatch(PairClassifier* model,
                                 const std::vector<EncodedPair>& xs) {
  model->AsModule()->Eval();
  return ScoreIndexed(static_cast<int64_t>(xs.size()),
                      [&](int64_t i, core::Rng* rng) {
                        return model->Probs(xs[static_cast<size_t>(i)], rng);
                      });
}

std::vector<ProbPair> ScoreBatchStochastic(
    PairClassifier* model, const std::vector<EncodedPair>& xs,
    const std::vector<uint64_t>& seeds) {
  PROMPTEM_CHECK(seeds.size() == xs.size());
  ScopedTrainingMode training(model->AsModule());
  return ScoreIndexed(static_cast<int64_t>(xs.size()),
                      [&](int64_t i, core::Rng* rng) {
                        return model->Probs(xs[static_cast<size_t>(i)], rng);
                      },
                      seeds);
}

std::vector<int> LabelsFromProbs(const std::vector<ProbPair>& probs) {
  std::vector<int> labels(probs.size());
  for (size_t i = 0; i < probs.size(); ++i) {
    labels[i] = probs[i][1] >= 0.5f ? 1 : 0;
  }
  return labels;
}

std::vector<std::vector<float>> EmbedBatch(const PairEmbedFn& embed,
                                           const std::vector<EncodedPair>& xs,
                                           const std::vector<uint64_t>& seeds) {
  PROMPTEM_CHECK(seeds.empty() || seeds.size() == xs.size());
  std::vector<std::vector<float>> points(xs.size());
  ForEachGraphFree(static_cast<int64_t>(xs.size()), [&](int64_t i) {
    const size_t idx = static_cast<size_t>(i);
    core::Rng rng(seeds.empty() ? 0 : seeds[idx]);
    points[idx] = embed(xs[idx], &rng);
  });
  return points;
}

namespace {

/// Indexes of the keys that miss `find` — the sub-batch the engine must
/// actually compute.
template <typename FindFn, typename HitFn>
std::vector<size_t> PartitionHits(const std::vector<uint64_t>& keys,
                                  const FindFn& find, const HitFn& on_hit) {
  std::vector<size_t> misses;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (auto hit = find(keys[i])) {
      on_hit(i, *hit);
    } else {
      misses.push_back(i);
    }
  }
  return misses;
}

}  // namespace

std::vector<ProbPair> ScoreBatchCached(PairClassifier* model,
                                       const std::vector<EncodedPair>& xs,
                                       core::ConcurrentCache<ProbPair>* cache,
                                       const std::vector<uint64_t>& keys) {
  if (cache == nullptr || keys.empty()) return ScoreBatch(model, xs);
  PROMPTEM_CHECK(keys.size() == xs.size());
  std::vector<ProbPair> probs(xs.size());
  const std::vector<size_t> misses = PartitionHits(
      keys, [&](uint64_t k) { return cache->Find(k); },
      [&](size_t i, const ProbPair& v) { probs[i] = v; });
  if (misses.empty()) return probs;
  std::vector<EncodedPair> miss_xs;
  miss_xs.reserve(misses.size());
  for (size_t i : misses) miss_xs.push_back(xs[i]);
  // The compacted sub-batch goes through the identical engine path; each
  // slot is a pure function of its pair, so compaction cannot change any
  // value.
  const std::vector<ProbPair> computed = ScoreBatch(model, miss_xs);
  for (size_t m = 0; m < misses.size(); ++m) {
    probs[misses[m]] = computed[m];
    cache->Insert(keys[misses[m]], computed[m]);
  }
  return probs;
}

std::vector<std::vector<float>> EmbedBatchCached(
    const PairEmbedFn& embed, const std::vector<EncodedPair>& xs,
    const std::vector<uint64_t>& seeds, EmbeddingCache* cache,
    const std::vector<uint64_t>& keys) {
  if (cache == nullptr || keys.empty()) return EmbedBatch(embed, xs, seeds);
  PROMPTEM_CHECK(keys.size() == xs.size());
  PROMPTEM_CHECK(seeds.empty() || seeds.size() == xs.size());
  std::vector<std::vector<float>> points(xs.size());
  const std::vector<size_t> misses = PartitionHits(
      keys, [&](uint64_t k) { return cache->Find(k); },
      [&](size_t i, const std::vector<float>& v) { points[i] = v; });
  if (misses.empty()) return points;
  std::vector<EncodedPair> miss_xs;
  std::vector<uint64_t> miss_seeds;
  miss_xs.reserve(misses.size());
  for (size_t i : misses) {
    miss_xs.push_back(xs[i]);
    if (!seeds.empty()) miss_seeds.push_back(seeds[i]);
  }
  std::vector<std::vector<float>> computed =
      EmbedBatch(embed, miss_xs, miss_seeds);
  for (size_t m = 0; m < misses.size(); ++m) {
    cache->Insert(keys[misses[m]], computed[m]);
    points[misses[m]] = std::move(computed[m]);
  }
  return points;
}

ProbPair SoftmaxProbs2(const tensor::Tensor& logits) {
  PROMPTEM_CHECK(logits.numel() == 2);
  float p[2];
  tensor::kernels::SoftmaxRows(logits.data(), 1, 2, p);
  return {p[0], p[1]};
}

}  // namespace promptem::em
