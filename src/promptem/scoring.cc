#include "promptem/scoring.h"

#include "core/thread_pool.h"
#include "tensor/arena.h"
#include "tensor/autograd.h"
#include "tensor/kernels.h"
#include "tensor/quant.h"

namespace promptem::em {

namespace {

/// Samples per worker chunk. Fixed — the chunk decomposition never depends
/// on the pool size — and large enough that a chunk's ScratchArena
/// amortizes its warm-up allocations over several samples.
constexpr int64_t kScoreGrain = 8;

}  // namespace

void ForEachGraphFree(int64_t n, const std::function<void(int64_t)>& fn) {
  // A new eval sweep may follow optimizer steps or a checkpoint load;
  // retire any int8 weight images quantized from the old parameters.
  // Safe mid-training too: the bump only forces a (cheap) requantize on
  // the next quantized forward, and it happens before — never during —
  // the sharded loop, so every chunk sees the same generation.
  if (tensor::quant::GetEvalQuantMode() == tensor::quant::EvalQuantMode::kInt8) {
    tensor::quant::BumpQuantGeneration();
  }
  core::ParallelFor(0, n, kScoreGrain, [&](int64_t begin, int64_t end) {
    tensor::NoGradGuard no_grad;
    tensor::ScratchArena arena;
    tensor::ScratchArena::Scope scope(&arena);
    for (int64_t i = begin; i < end; ++i) fn(i);
  });
}

std::vector<ProbPair> ScoreIndexed(int64_t n, const IndexedScoreFn& score_one,
                                   const std::vector<uint64_t>& seeds) {
  PROMPTEM_CHECK(seeds.empty() || static_cast<int64_t>(seeds.size()) == n);
  std::vector<ProbPair> probs(static_cast<size_t>(n));
  ForEachGraphFree(n, [&](int64_t i) {
    const size_t idx = static_cast<size_t>(i);
    core::Rng rng(seeds.empty() ? 0 : seeds[idx]);
    probs[idx] = score_one(i, &rng);
  });
  return probs;
}

std::vector<ProbPair> ScoreBatch(PairClassifier* model,
                                 const std::vector<EncodedPair>& xs) {
  model->AsModule()->Eval();
  return ScoreIndexed(static_cast<int64_t>(xs.size()),
                      [&](int64_t i, core::Rng* rng) {
                        return model->Probs(xs[static_cast<size_t>(i)], rng);
                      });
}

std::vector<ProbPair> ScoreBatchStochastic(
    PairClassifier* model, const std::vector<EncodedPair>& xs,
    const std::vector<uint64_t>& seeds) {
  PROMPTEM_CHECK(seeds.size() == xs.size());
  ScopedTrainingMode training(model->AsModule());
  return ScoreIndexed(static_cast<int64_t>(xs.size()),
                      [&](int64_t i, core::Rng* rng) {
                        return model->Probs(xs[static_cast<size_t>(i)], rng);
                      },
                      seeds);
}

std::vector<int> LabelsFromProbs(const std::vector<ProbPair>& probs) {
  std::vector<int> labels(probs.size());
  for (size_t i = 0; i < probs.size(); ++i) {
    labels[i] = probs[i][1] >= 0.5f ? 1 : 0;
  }
  return labels;
}

std::vector<std::vector<float>> EmbedBatch(const PairEmbedFn& embed,
                                           const std::vector<EncodedPair>& xs,
                                           const std::vector<uint64_t>& seeds) {
  PROMPTEM_CHECK(seeds.empty() || seeds.size() == xs.size());
  std::vector<std::vector<float>> points(xs.size());
  ForEachGraphFree(static_cast<int64_t>(xs.size()), [&](int64_t i) {
    const size_t idx = static_cast<size_t>(i);
    core::Rng rng(seeds.empty() ? 0 : seeds[idx]);
    points[idx] = embed(xs[idx], &rng);
  });
  return points;
}

ProbPair SoftmaxProbs2(const tensor::Tensor& logits) {
  PROMPTEM_CHECK(logits.numel() == 2);
  float p[2];
  tensor::kernels::SoftmaxRows(logits.data(), 1, 2, p);
  return {p[0], p[1]};
}

}  // namespace promptem::em
