#include "promptem/verbalizer.h"

#include <cmath>

#include "tensor/autograd.h"
#include "tensor/kernels.h"

namespace promptem::em {

namespace ops = tensor::ops;

const char* LabelWordsTypeName(LabelWordsType type) {
  return type == LabelWordsType::kDesigned ? "designed" : "simple";
}

Verbalizer::Verbalizer(const text::Vocab& vocab, LabelWordsType type) {
  std::vector<std::string> yes_words;
  std::vector<std::string> no_words;
  if (type == LabelWordsType::kDesigned) {
    yes_words = {"matched", "similar", "relevant"};
    no_words = {"mismatched", "different", "irrelevant"};
  } else {
    yes_words = {"matched"};
    no_words = {"mismatched"};
  }
  for (const auto& w : yes_words) {
    PROMPTEM_CHECK_MSG(vocab.Contains(w), "label word missing from vocab");
    yes_ids_.push_back(vocab.ToId(w));
  }
  for (const auto& w : no_words) {
    PROMPTEM_CHECK_MSG(vocab.Contains(w), "label word missing from vocab");
    no_ids_.push_back(vocab.ToId(w));
  }
  // Constant projection matrix applying Eq. 1 as a single matmul, keeping
  // the class-score computation on the autodiff path.
  projection_ = tensor::Tensor::Zeros({vocab.size(), 2});
  for (int id : no_ids_) {
    projection_.set(id, 0, 1.0f / static_cast<float>(no_ids_.size()));
  }
  for (int id : yes_ids_) {
    projection_.set(id, 1, 1.0f / static_cast<float>(yes_ids_.size()));
  }
}

const std::vector<int>& Verbalizer::WordIds(int label) const {
  PROMPTEM_CHECK(label == 0 || label == 1);
  return label == 1 ? yes_ids_ : no_ids_;
}

tensor::Tensor Verbalizer::ClassProbs(
    const tensor::Tensor& mask_logits) const {
  PROMPTEM_CHECK(mask_logits.ndim() == 2 && mask_logits.dim(0) == 1);
  tensor::Tensor probs = ops::Softmax(mask_logits);
  return ops::MatMul(probs, projection_);
}

tensor::Tensor Verbalizer::Loss(const tensor::Tensor& mask_logits,
                                int label) const {
  PROMPTEM_CHECK(label == 0 || label == 1);
  tensor::Tensor class_probs = ClassProbs(mask_logits);  // [1, 2]
  tensor::Tensor p_y = ops::SelectCols(class_probs, {label});
  return ops::Scale(ops::Sum(ops::Log(p_y)), -1.0f);
}

std::array<float, 2> Verbalizer::PredictProbs(
    const tensor::Tensor& mask_logits) const {
  tensor::NoGradGuard no_grad;
  tensor::Tensor class_probs = ClassProbs(mask_logits);
  float p_no = class_probs.at(0, 0);
  float p_yes = class_probs.at(0, 1);
  const float total = p_no + p_yes;
  if (total <= 0.0f) return {0.5f, 0.5f};
  return {p_no / total, p_yes / total};
}

}  // namespace promptem::em
