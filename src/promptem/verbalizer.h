#ifndef PROMPTEM_PROMPTEM_VERBALIZER_H_
#define PROMPTEM_PROMPTEM_VERBALIZER_H_

#include <array>
#include <vector>

#include "tensor/ops.h"
#include "text/vocab.h"

namespace promptem::em {

/// Label-word sets (§3.1). The designed set captures the *general binary
/// relationship* GEM needs (relevance, not just identity); the simple set
/// is the ablation baseline of Appendix B.
enum class LabelWordsType {
  kDesigned,  ///< yes -> {matched, similar, relevant};
              ///< no -> {mismatched, different, irrelevant}
  kSimple,    ///< yes -> {matched}; no -> {mismatched}
};

const char* LabelWordsTypeName(LabelWordsType type);

/// Maps MLM logits at the [MASK] position to class probabilities by Eq. 1:
/// P(y|x) = (1/m) * sum_j P([MASK] = w_j | T(x)).
class Verbalizer {
 public:
  Verbalizer(const text::Vocab& vocab, LabelWordsType type);

  /// Label-word ids for class y (0 = no, 1 = yes).
  const std::vector<int>& WordIds(int label) const;

  /// Differentiable class scores: mask_logits [1, V] -> [1, 2]
  /// (column 0 = P(no), column 1 = P(yes), each the mean of its label
  /// words' probabilities; columns need not sum to 1).
  tensor::Tensor ClassProbs(const tensor::Tensor& mask_logits) const;

  /// Prompt-tuning loss: -log P(y | x) with P from Eq. 1.
  tensor::Tensor Loss(const tensor::Tensor& mask_logits, int label) const;

  /// Fast non-differentiable scores normalized to sum 1 (inference).
  std::array<float, 2> PredictProbs(const tensor::Tensor& mask_logits) const;

 private:
  std::vector<int> no_ids_;
  std::vector<int> yes_ids_;
  tensor::Tensor projection_;  ///< [V, 2] constant: 1/m at label-word rows
};

}  // namespace promptem::em

#endif  // PROMPTEM_PROMPTEM_VERBALIZER_H_
