#include "promptem/embed_cache.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "core/hashing.h"
#include "core/log.h"

namespace promptem::em {

namespace {

// Format "PEMEMBC1": magic, u32 endianness tag, u32 entry count, entries
// (u64 key, u32 dim, float32 data), u64 FNV-1a hash of every preceding
// byte. Same envelope discipline as checkpoint v2 (nn/serialize.cc): the
// reader treats the file as adversarial input.
constexpr char kMagic[8] = {'P', 'E', 'M', 'E', 'M', 'B', 'C', '1'};
constexpr uint32_t kEndianTag = 0x01020304u;
/// No real pair embedding is near this wide; caps allocation from a
/// corrupted dim field even when the file is large.
constexpr uint32_t kMaxDim = 1u << 20;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// fwrite that folds every byte into a running FNV-1a hash.
class HashingWriter {
 public:
  explicit HashingWriter(std::FILE* f) : f_(f) {}

  bool Write(const void* data, size_t n) {
    hash_ = core::Fnv1a64(data, n, hash_);
    return std::fwrite(data, 1, n, f_) == n;
  }
  bool WriteU32(uint32_t v) { return Write(&v, sizeof(v)); }
  bool WriteU64(uint64_t v) { return Write(&v, sizeof(v)); }
  uint64_t hash() const { return hash_; }

 private:
  std::FILE* f_;
  uint64_t hash_ = core::kFnv1aOffset;
};

/// fread that tracks remaining bytes (for bounds checks) and the hash of
/// everything consumed so far.
class HashingReader {
 public:
  HashingReader(std::FILE* f, uint64_t file_size)
      : f_(f), remaining_(file_size) {}

  bool Read(void* data, size_t n) {
    if (n > remaining_) return false;
    if (std::fread(data, 1, n, f_) != n) return false;
    remaining_ -= n;
    hash_ = core::Fnv1a64(data, n, hash_);
    return true;
  }
  bool ReadU32(uint32_t* v) { return Read(v, sizeof(*v)); }
  /// Trailer read: not folded into the hash (it IS the hash).
  bool ReadRawU64(uint64_t* v) {
    if (sizeof(*v) > remaining_) return false;
    if (std::fread(v, 1, sizeof(*v), f_) != sizeof(*v)) return false;
    remaining_ -= sizeof(*v);
    return true;
  }

  uint64_t remaining() const { return remaining_; }
  uint64_t hash() const { return hash_; }

 private:
  std::FILE* f_;
  uint64_t remaining_;
  uint64_t hash_ = core::kFnv1aOffset;
};

bool FileSize(const std::string& path, uint64_t* size) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return false;
  if (std::fseek(f.get(), 0, SEEK_END) != 0) return false;
  const long end = std::ftell(f.get());
  if (end < 0) return false;
  *size = static_cast<uint64_t>(end);
  return true;
}

}  // namespace

EmbeddingCache::EmbeddingCache(size_t capacity) : cache_(capacity) {}

uint64_t EmbeddingCache::ContextTag(uint64_t dataset_fingerprint,
                                    uint64_t model_fingerprint) {
  return core::Combine64(dataset_fingerprint, model_fingerprint);
}

uint64_t EmbeddingCache::PairKey(uint64_t context_tag, int left_index,
                                 int right_index) {
  const uint64_t pair =
      (static_cast<uint64_t>(static_cast<uint32_t>(left_index)) << 32) |
      static_cast<uint64_t>(static_cast<uint32_t>(right_index));
  return core::Combine64(context_tag, pair);
}

std::shared_ptr<const std::vector<float>> EmbeddingCache::Find(uint64_t key) {
  if (auto hit = cache_.Find(key)) return hit;
  if (!base_) return nullptr;
  // Fall through to the mapped store: the entry is copied out of the
  // mapping on first touch only — a restart never materializes the
  // untouched remainder of the file.
  const core::HashIndex::Span span = base_->snapshot().Find(key);
  if (span.data == nullptr || span.size % sizeof(float) != 0) return nullptr;
  auto value = std::make_shared<std::vector<float>>(span.size / sizeof(float));
  std::memcpy(value->data(), span.data, static_cast<size_t>(span.size));
  // Read-through into the overlay so repeat touches stay in-process.
  // Straight into cache_ (not Insert) so warm reads never trip autosave.
  cache_.Insert(key, *value);
  return value;
}

core::Status EmbeddingCache::Attach(const std::string& path,
                                    CacheBackend backend) {
  backend_ = backend;
  if (backend == CacheBackend::kRam) return Load(path);
  attach_path_ = path;
  const auto fresh_index = [&] {
    core::HashIndex::Options options;
    options.backend = core::HashIndex::Backend::kMmap;
    options.path = path;
    return std::make_shared<core::HashIndex>(options);
  };
  uint64_t file_size = 0;
  if (!FileSize(path, &file_size)) {
    // Cold start: no store yet. The binding is live — the first flush
    // creates the file — but report NotFound so callers can say so.
    base_ = fresh_index();
    return core::Status::NotFound("cannot open: " + path);
  }
  char magic[8] = {0};
  {
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (f && std::fread(magic, 1, sizeof(magic), f.get()) != sizeof(magic)) {
      std::memset(magic, 0, sizeof(magic));
    }
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) == 0) {
    // A legacy flat file: load it into the overlay once; the next flush
    // rewrites `path` in the index format.
    base_ = fresh_index();
    return Load(path);
  }
  auto opened = core::HashIndex::Open(path);
  if (!opened.ok()) {
    // Corrupt store: rejected wholesale (no partial load), but the
    // binding stays live so the rebuild's next flush replaces the bad
    // file with a valid index.
    base_ = fresh_index();
    return opened.status();
  }
  base_ = std::move(opened).value();
  return core::Status::OK();
}

void EmbeddingCache::Insert(uint64_t key, std::vector<float> embedding) {
  cache_.Insert(key, std::move(embedding));
  const size_t every = autosave_every_.load(std::memory_order_relaxed);
  if (every == 0) return;
  const uint64_t n = insert_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n % every == 0) MaybeAutosave();
}

void EmbeddingCache::EnableAutosave(std::string path,
                                    size_t every_n_inserts) {
  std::lock_guard<std::mutex> lock(autosave_config_mu_);
  autosave_path_ = std::move(path);
  autosave_every_.store(autosave_path_.empty() ? 0 : every_n_inserts,
                        std::memory_order_relaxed);
}

core::Status EmbeddingCache::FlushNow() {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(autosave_config_mu_);
    path = autosave_path_;
  }
  if (path.empty()) {
    return core::Status::FailedPrecondition("autosave path not configured");
  }
  return Save(path);
}

void EmbeddingCache::MaybeAutosave() {
  // try_lock: if a flush is already running, this insert's trigger is
  // covered by it (the running flush snapshots the cache after our
  // insert or the next trigger fires soon) — never stall the inserter
  // behind disk I/O twice.
  std::unique_lock<std::mutex> lock(save_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return;
  std::string path;
  {
    std::lock_guard<std::mutex> config_lock(autosave_config_mu_);
    path = autosave_path_;
  }
  if (path.empty()) return;
  const core::Status saved = SaveUnlocked(path);
  if (saved.ok()) {
    autosave_flushes_.fetch_add(1, std::memory_order_relaxed);
  } else {
    PROMPTEM_LOG(Warn) << "embedding cache autosave failed: "
                       << saved.ToString();
  }
}

core::Status EmbeddingCache::Save(const std::string& path) const {
  std::lock_guard<std::mutex> lock(save_mu_);
  return SaveUnlocked(path);
}

core::Status EmbeddingCache::SaveUnlocked(const std::string& path) const {
  if (backend_ == CacheBackend::kMmap && base_ && path == attach_path_) {
    // Only the overlay (the dirty region) is staged; everything already
    // persisted streams file -> file inside Seal's atomic tmp+rename
    // grow. Re-staging an unchanged entry replaces it with identical
    // bytes, so repeated flushes converge on the same image.
    cache_.ForEachLive(
        [&](uint64_t key,
            const std::shared_ptr<const std::vector<float>>& v) {
          base_->Add(key, 0, v->data(), v->size() * sizeof(float));
        });
    return base_->Seal();
  }
  return SaveLegacyUnlocked(path);
}

core::Status EmbeddingCache::SaveLegacyUnlocked(
    const std::string& path) const {
  // Snapshot and sort so identical cache contents always serialize to an
  // identical byte image (ForEachLive order is shard-layout dependent).
  std::vector<std::pair<uint64_t, std::shared_ptr<const std::vector<float>>>>
      entries;
  cache_.ForEachLive([&](uint64_t key,
                         const std::shared_ptr<const std::vector<float>>& v) {
    entries.emplace_back(key, v);
  });
  if (base_) {
    // Exporting an mmap-backed cache to a flat file: persisted entries
    // the overlay does not shadow come along too.
    std::unordered_set<uint64_t> overlay_keys;
    overlay_keys.reserve(entries.size());
    for (const auto& [key, value] : entries) overlay_keys.insert(key);
    base_->snapshot().ForEach([&](uint64_t key, core::HashIndex::Span span) {
      if (overlay_keys.count(key) != 0 || span.size % sizeof(float) != 0) {
        return;
      }
      auto value =
          std::make_shared<std::vector<float>>(span.size / sizeof(float));
      std::memcpy(value->data(), span.data, static_cast<size_t>(span.size));
      entries.emplace_back(key, std::move(value));
    });
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (entries.size() > static_cast<size_t>(UINT32_MAX)) {
    return core::Status::InvalidArgument("embedding cache too large to save");
  }

  const std::string tmp = path + ".tmp";
  core::Status status;
  {
    FilePtr f(std::fopen(tmp.c_str(), "wb"));
    if (!f) return core::Status::IOError("cannot open for write: " + tmp);
    HashingWriter w(f.get());
    bool ok = w.Write(kMagic, sizeof(kMagic)) && w.WriteU32(kEndianTag) &&
              w.WriteU32(static_cast<uint32_t>(entries.size()));
    for (const auto& [key, value] : entries) {
      if (!ok) break;
      ok = w.WriteU64(key) &&
           w.WriteU32(static_cast<uint32_t>(value->size())) &&
           w.Write(value->data(), value->size() * sizeof(float));
    }
    if (ok) {
      const uint64_t hash = w.hash();
      ok = std::fwrite(&hash, 1, sizeof(hash), f.get()) == sizeof(hash);
    }
    if (ok) ok = std::fflush(f.get()) == 0;
    if (!ok) status = core::Status::IOError("write failed: " + tmp);
  }
  if (!status.ok()) {
    std::remove(tmp.c_str());
    return status;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return core::Status::IOError("rename failed: " + path);
  }
  return core::Status::OK();
}

core::Status EmbeddingCache::Load(const std::string& path) {
  uint64_t file_size = 0;
  if (!FileSize(path, &file_size)) {
    return core::Status::NotFound("cannot open: " + path);
  }
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return core::Status::NotFound("cannot open: " + path);
  HashingReader r(f.get(), file_size);

  // Every rejection names the failed check and the byte offset the
  // reader had reached — enough to localize a flipped byte or a
  // truncation without a hex dump. fault_injection_test asserts this.
  auto corrupt = [&path, &r, file_size](const std::string& what) {
    return core::Status::InvalidArgument(
        "corrupt embedding cache (" + what + " at offset " +
        std::to_string(file_size - r.remaining()) + "): " + path);
  };

  char magic[8];
  if (!r.Read(magic, sizeof(magic))) return corrupt("short magic");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return corrupt("bad magic");
  }
  uint32_t endian = 0;
  if (!r.ReadU32(&endian)) return corrupt("short endian tag");
  if (endian != kEndianTag) return corrupt("endianness mismatch");
  uint32_t count = 0;
  if (!r.ReadU32(&count)) return corrupt("short count");
  // Each entry needs at least key + dim; the trailer needs 8 more.
  const uint64_t min_entry = sizeof(uint64_t) + sizeof(uint32_t);
  if (static_cast<uint64_t>(count) * min_entry + sizeof(uint64_t) >
      r.remaining()) {
    return corrupt("count exceeds file size");
  }

  // Fully validate into a staging list before touching the cache: a file
  // that fails any check leaves the cache exactly as it was.
  std::vector<std::pair<uint64_t, std::vector<float>>> staged;
  staged.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t key = 0;
    uint32_t dim = 0;
    if (!r.Read(&key, sizeof(key)) || !r.ReadU32(&dim)) {
      return corrupt("short entry header");
    }
    if (dim > kMaxDim) return corrupt("dim too large");
    if (static_cast<uint64_t>(dim) * sizeof(float) + sizeof(uint64_t) >
        r.remaining()) {
      return corrupt("entry exceeds file size");
    }
    std::vector<float> values(dim);
    if (!r.Read(values.data(), static_cast<size_t>(dim) * sizeof(float))) {
      return corrupt("short entry data");
    }
    staged.emplace_back(key, std::move(values));
  }
  const uint64_t computed = r.hash();
  uint64_t stored = 0;
  if (!r.ReadRawU64(&stored)) return corrupt("missing checksum");
  if (stored != computed) return corrupt("checksum mismatch");
  if (r.remaining() != 0) return corrupt("trailing garbage");

  for (auto& [key, values] : staged) {
    cache_.Insert(key, std::move(values));
  }
  return core::Status::OK();
}

namespace {
std::mutex g_embed_cache_mu;
std::shared_ptr<EmbeddingCache> g_embed_cache;
}  // namespace

std::shared_ptr<EmbeddingCache> GetGlobalEmbeddingCache() {
  std::lock_guard<std::mutex> lock(g_embed_cache_mu);
  return g_embed_cache;
}

void SetGlobalEmbeddingCache(std::shared_ptr<EmbeddingCache> cache) {
  std::lock_guard<std::mutex> lock(g_embed_cache_mu);
  g_embed_cache = std::move(cache);
}

}  // namespace promptem::em
