#ifndef PROMPTEM_PROMPTEM_TEMPLATES_H_
#define PROMPTEM_PROMPTEM_TEMPLATES_H_

#include <string>
#include <vector>

#include "text/vocab.h"

namespace promptem::em {

/// The two GEM-specific prompt templates of §3.1:
///   T1(x) = serialize(e) serialize(e') "They are [MASK]"
///   T2(x) = serialize(e) "is [MASK] to" serialize(e')
enum class TemplateType { kT1, kT2 };

/// Hard-encoding templates use real vocabulary tokens for the prompt
/// words; continuous templates (P-tuning, §3.1) replace them with
/// trainable embeddings contextualized by a BiLSTM.
enum class TemplateMode { kHard, kContinuous };

const char* TemplateTypeName(TemplateType type);
const char* TemplateModeName(TemplateMode mode);

/// One slot of the assembled prompt input sequence.
struct TemplateSlot {
  enum class Kind {
    kToken,        ///< a fixed vocabulary token (CLS/SEP or hard prompt word)
    kLeftEntity,   ///< splice serialize(e) tokens here
    kRightEntity,  ///< splice serialize(e') tokens here
    kMask,         ///< the [MASK] position the verbalizer reads
    kPrompt,       ///< continuous prompt token #prompt_index
  };
  Kind kind;
  int token_id = -1;
  int prompt_index = -1;
};

/// Builds the slot sequence for a template/mode. The continuous variants
/// use the same positions as the hard words, replaced by kPrompt slots.
std::vector<TemplateSlot> BuildTemplate(TemplateType type, TemplateMode mode,
                                        const text::Vocab& vocab);

/// Number of kPrompt slots in the continuous variant of `type`.
int NumPromptSlots(TemplateType type);

/// Number of non-entity slots (template overhead when budgeting entity
/// tokens against the encoder's max sequence length).
int TemplateOverhead(TemplateType type);

}  // namespace promptem::em

#endif  // PROMPTEM_PROMPTEM_TEMPLATES_H_
