#include "promptem/self_training.h"

#include <algorithm>
#include <numeric>

#include "core/log.h"
#include "core/timer.h"
#include "nn/optimizer.h"

namespace promptem::em {

namespace {

/// Student phase: supervised training with dynamic data pruning (DDP)
/// interleaved every `prune_every` epochs (Algorithm 1, lines 9-15).
void TrainStudentWithPruning(PairClassifier* student,
                             std::vector<EncodedPair>* train_set,
                             const std::vector<EncodedPair>& valid,
                             const SelfTrainingConfig& config,
                             SelfTrainingStats* stats,
                             std::vector<std::vector<float>>* best_snapshot,
                             double* best_f1) {
  core::Rng rng(config.student_options.seed);
  nn::Module* module = student->AsModule();
  nn::AdamWConfig opt_config;
  opt_config.lr = config.student_options.lr;
  opt_config.weight_decay = config.student_options.weight_decay;
  nn::AdamW optimizer(module->Parameters(), opt_config);

  for (int epoch = 1; epoch <= config.student_options.epochs; ++epoch) {
    module->Train();
    std::vector<size_t> order(train_set->size());
    std::iota(order.begin(), order.end(), 0);
    rng.Shuffle(&order);
    TrainEpochDataParallel(student, *train_set, order,
                           config.student_options.batch_size, &optimizer,
                           &rng, &stats->student_samples);

    // Dynamic data pruning: drop the N_D least-important samples (lowest
    // MC-EL2N, Eq. 3) every `prune_every` epochs.
    if (config.use_pruning && config.prune_every > 0 &&
        epoch % config.prune_every == 0 && train_set->size() > 4) {
      const size_t n_d = static_cast<size_t>(
          config.prune_ratio * static_cast<double>(train_set->size()));
      if (n_d > 0) {
        const std::vector<float> scores =
            McEl2nScoreBatch(student, *train_set, config.mc_passes, &rng);
        std::vector<size_t> by_score(train_set->size());
        std::iota(by_score.begin(), by_score.end(), 0);
        std::stable_sort(by_score.begin(), by_score.end(),
                         [&](size_t a, size_t b) {
                           return scores[a] < scores[b];
                         });
        std::vector<bool> drop(train_set->size(), false);
        for (size_t i = 0; i < n_d; ++i) drop[by_score[i]] = true;
        std::vector<EncodedPair> kept;
        kept.reserve(train_set->size() - n_d);
        for (size_t i = 0; i < train_set->size(); ++i) {
          if (!drop[i]) kept.push_back((*train_set)[i]);
        }
        stats->pruned_total += static_cast<int>(n_d);
        *train_set = std::move(kept);
      }
    }

    if (!valid.empty()) {
      Metrics m = Evaluate(student, valid);
      if (m.F1() > *best_f1) {
        *best_f1 = m.F1();
        *best_snapshot = SnapshotParams(*module);
        stats->student_best_valid = m;
      }
    }
  }
}

}  // namespace

std::unique_ptr<PairClassifier> RunSelfTraining(
    const ModelFactory& factory, const std::vector<EncodedPair>& labeled,
    const std::vector<EncodedPair>& unlabeled,
    const std::vector<EncodedPair>& valid, const SelfTrainingConfig& config,
    SelfTrainingStats* stats, const EmbeddingFn& embed) {
  PROMPTEM_CHECK(stats != nullptr);
  core::Rng rng(config.seed);

  std::vector<EncodedPair> d_l = labeled;
  std::vector<EncodedPair> d_u = unlabeled;

  // Teachers and students share one architecture (same factory), so the
  // best model across all phases is tracked as a parameter snapshot and
  // materialized once at the end.
  std::vector<std::vector<float>> best_snapshot;
  double best_f1 = -1.0;

  for (int iteration = 0; iteration < config.iterations; ++iteration) {
    // Teacher phase (lines 2-4).
    core::Timer teacher_timer;
    std::unique_ptr<PairClassifier> teacher = factory();
    stats->teacher_result = TrainClassifier(
        teacher.get(), d_l, valid, config.teacher_options);
    stats->teacher_seconds += teacher_timer.ElapsedSeconds();

    if (!config.use_pseudo_labels) {
      // Ablation "w/o LST": the teacher IS the model.
      stats->student_best_valid = stats->teacher_result.best_valid;
      return teacher;
    }

    // The teacher competes with the students for best-on-validation, so a
    // noisy pseudo-label round can never make the final model worse than
    // plain supervised training.
    if (stats->teacher_result.best_valid.F1() > best_f1) {
      best_f1 = stats->teacher_result.best_valid.F1();
      best_snapshot = SnapshotParams(*teacher->AsModule());
      stats->student_best_valid = stats->teacher_result.best_valid;
    }

    // Uncertainty-aware pseudo-label selection (lines 5-8).
    if (!d_u.empty()) {
      stats->pseudo = SelectPseudoLabels(teacher.get(), d_u,
                                         config.strategy,
                                         config.pseudo_ratio,
                                         config.mc_passes, &rng, embed);
      std::vector<bool> taken(d_u.size(), false);
      for (size_t i = 0; i < stats->pseudo.indices.size(); ++i) {
        const int idx = stats->pseudo.indices[i];
        EncodedPair pseudo = d_u[static_cast<size_t>(idx)];
        pseudo.label = stats->pseudo.pseudo_labels[i];
        d_l.push_back(std::move(pseudo));
        taken[static_cast<size_t>(idx)] = true;
      }
      std::vector<EncodedPair> remaining;
      remaining.reserve(d_u.size());
      for (size_t i = 0; i < d_u.size(); ++i) {
        if (!taken[i]) remaining.push_back(std::move(d_u[i]));
      }
      d_u = std::move(remaining);
    }

    // Student phase with dynamic data pruning (lines 9-15).
    core::Timer student_timer;
    std::unique_ptr<PairClassifier> student = factory();
    std::vector<EncodedPair> student_train = d_l;
    std::vector<std::vector<float>> snapshot;
    double f1 = best_f1;
    TrainStudentWithPruning(student.get(), &student_train, valid, config,
                            stats, &snapshot, &f1);
    stats->student_seconds += student_timer.ElapsedSeconds();
    if (f1 > best_f1 && !snapshot.empty()) {
      best_f1 = f1;
      best_snapshot = std::move(snapshot);
    }
  }

  std::unique_ptr<PairClassifier> best_model = factory();
  if (best_snapshot.empty()) {
    // Empty validation set: fall back to a fresh model trained on the
    // augmented labeled set.
    TrainClassifier(best_model.get(), d_l, valid, config.student_options);
    return best_model;
  }
  RestoreParams(best_model->AsModule(), best_snapshot);
  best_model->AsModule()->Eval();
  return best_model;
}

}  // namespace promptem::em
