#include "promptem/self_training.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "core/log.h"
#include "core/timer.h"
#include "train/train_loop.h"

namespace promptem::em {

namespace {

/// Student phase: supervised training with dynamic data pruning (DDP)
/// interleaved every `prune_every` epochs (Algorithm 1, lines 9-15).
/// Pruning runs as the loop's epoch hook — after the epoch's batches,
/// before evaluation — on the same RNG stream as the training epochs.
void TrainStudentWithPruning(PairClassifier* student,
                             std::vector<EncodedPair>* train_set,
                             const std::vector<EncodedPair>& valid,
                             const SelfTrainingConfig& config,
                             SelfTrainingStats* stats,
                             std::vector<std::vector<float>>* best_snapshot,
                             double* best_f1) {
  core::Rng rng(config.student_options.seed);

  train::LoopOptions loop_options;
  loop_options.epochs = config.student_options.epochs;
  loop_options.batch_size = config.student_options.batch_size;
  loop_options.lr = config.student_options.lr;
  loop_options.weight_decay = config.student_options.weight_decay;
  // The student re-derives the identity order every epoch (the historical
  // convention; pruning invalidates a persistent permutation anyway).
  loop_options.reset_order_each_epoch = true;
  loop_options.rng = &rng;
  // The best snapshot is handed back to the self-training driver, which
  // materializes it into a fresh model; the student itself keeps its
  // final-epoch weights.
  loop_options.restore_best = false;
  // Students compete with the teacher (and earlier students) for
  // best-on-validation: an epoch only snapshots by beating the incoming
  // cross-phase best.
  loop_options.best_score_init = *best_f1;
  loop_options.observer = config.student_options.observer;
  loop_options.run_name = config.student_options.run_name.empty()
                              ? "student"
                              : config.student_options.run_name;
  loop_options.dataset_name = config.student_options.dataset_name;

  train::TrainLoop loop(student->AsModule(), loop_options);
  loop.OnParallelStep([&](size_t index, core::Rng* sample_rng) {
    const EncodedPair& x = (*train_set)[index];
    return student->Loss(x, x.label, sample_rng);
  });
  loop.OnEpochHook([&](int epoch, core::Rng* hook_rng) -> size_t {
    // Dynamic data pruning: drop the N_D least-important samples (lowest
    // MC-EL2N, Eq. 3) every `prune_every` epochs.
    if (config.use_pruning && config.prune_every > 0 &&
        epoch % config.prune_every == 0 && train_set->size() > 4) {
      const size_t n_d = static_cast<size_t>(
          config.prune_ratio * static_cast<double>(train_set->size()));
      if (n_d > 0) {
        const std::vector<float> scores = McEl2nScoreBatch(
            student, *train_set, config.mc_passes, hook_rng);
        std::vector<size_t> by_score(train_set->size());
        std::iota(by_score.begin(), by_score.end(), 0);
        std::stable_sort(by_score.begin(), by_score.end(),
                         [&](size_t a, size_t b) {
                           return scores[a] < scores[b];
                         });
        std::vector<bool> drop(train_set->size(), false);
        for (size_t i = 0; i < n_d; ++i) drop[by_score[i]] = true;
        std::vector<EncodedPair> kept;
        kept.reserve(train_set->size() - n_d);
        for (size_t i = 0; i < train_set->size(); ++i) {
          if (!drop[i]) kept.push_back((*train_set)[i]);
        }
        stats->pruned_total += static_cast<int>(n_d);
        *train_set = std::move(kept);
      }
    }
    return train_set->size();
  });
  if (!valid.empty()) {
    loop.OnEval([&] { return Evaluate(student, valid); });
  }

  train::LoopResult run = loop.Run(train_set->size());
  stats->student_samples += run.samples_processed;
  if (run.best_score > *best_f1 && !run.best_snapshot.empty()) {
    *best_f1 = run.best_score;
    *best_snapshot = std::move(run.best_snapshot);
    stats->student_best_valid = run.best_eval;
  }
}

}  // namespace

std::unique_ptr<PairClassifier> RunSelfTraining(
    const ModelFactory& factory, const std::vector<EncodedPair>& labeled,
    const std::vector<EncodedPair>& unlabeled,
    const std::vector<EncodedPair>& valid, const SelfTrainingConfig& config,
    SelfTrainingStats* stats, const EmbeddingFn& embed) {
  PROMPTEM_CHECK(stats != nullptr);
  core::Rng rng(config.seed);

  std::vector<EncodedPair> d_l = labeled;
  std::vector<EncodedPair> d_u = unlabeled;
  // Embedding-cache keys stay index-aligned with the shrinking d_u.
  std::vector<uint64_t> u_keys = config.embed_keys;
  PROMPTEM_CHECK(u_keys.empty() || u_keys.size() == d_u.size());

  TrainOptions teacher_options = config.teacher_options;
  if (teacher_options.run_name.empty()) teacher_options.run_name = "teacher";

  // Teachers and students share one architecture (same factory), so the
  // best model across all phases is tracked as a parameter snapshot and
  // materialized once at the end.
  std::vector<std::vector<float>> best_snapshot;
  double best_f1 = -1.0;

  for (int iteration = 0; iteration < config.iterations; ++iteration) {
    // Teacher phase (lines 2-4).
    core::Timer teacher_timer;
    std::unique_ptr<PairClassifier> teacher = factory();
    stats->teacher_result = TrainClassifier(
        teacher.get(), d_l, valid, teacher_options);
    stats->teacher_seconds += teacher_timer.ElapsedSeconds();

    if (!config.use_pseudo_labels) {
      // Ablation "w/o LST": the teacher IS the model.
      stats->student_best_valid = stats->teacher_result.best_valid;
      return teacher;
    }

    // The teacher competes with the students for best-on-validation, so a
    // noisy pseudo-label round can never make the final model worse than
    // plain supervised training.
    if (stats->teacher_result.best_valid.F1() > best_f1) {
      best_f1 = stats->teacher_result.best_valid.F1();
      best_snapshot = SnapshotParams(*teacher->AsModule());
      stats->student_best_valid = stats->teacher_result.best_valid;
    }

    // Uncertainty-aware pseudo-label selection (lines 5-8).
    if (!d_u.empty()) {
      stats->pseudo = SelectPseudoLabels(teacher.get(), d_u,
                                         config.strategy,
                                         config.pseudo_ratio,
                                         config.mc_passes, &rng, embed,
                                         config.embed_cache, u_keys);
      std::vector<bool> taken(d_u.size(), false);
      for (size_t i = 0; i < stats->pseudo.indices.size(); ++i) {
        const int idx = stats->pseudo.indices[i];
        EncodedPair pseudo = d_u[static_cast<size_t>(idx)];
        pseudo.label = stats->pseudo.pseudo_labels[i];
        d_l.push_back(std::move(pseudo));
        taken[static_cast<size_t>(idx)] = true;
      }
      std::vector<EncodedPair> remaining;
      std::vector<uint64_t> remaining_keys;
      remaining.reserve(d_u.size());
      for (size_t i = 0; i < d_u.size(); ++i) {
        if (!taken[i]) {
          remaining.push_back(std::move(d_u[i]));
          if (!u_keys.empty()) remaining_keys.push_back(u_keys[i]);
        }
      }
      d_u = std::move(remaining);
      u_keys = std::move(remaining_keys);
    }

    // Student phase with dynamic data pruning (lines 9-15).
    core::Timer student_timer;
    std::unique_ptr<PairClassifier> student = factory();
    std::vector<EncodedPair> student_train = d_l;
    std::vector<std::vector<float>> snapshot;
    double f1 = best_f1;
    TrainStudentWithPruning(student.get(), &student_train, valid, config,
                            stats, &snapshot, &f1);
    stats->student_seconds += student_timer.ElapsedSeconds();
    if (f1 > best_f1 && !snapshot.empty()) {
      best_f1 = f1;
      best_snapshot = std::move(snapshot);
    }
  }

  std::unique_ptr<PairClassifier> best_model = factory();
  if (best_snapshot.empty()) {
    // Empty validation set: fall back to a fresh model trained on the
    // augmented labeled set.
    TrainClassifier(best_model.get(), d_l, valid, config.student_options);
    return best_model;
  }
  RestoreParams(best_model->AsModule(), best_snapshot);
  best_model->AsModule()->Eval();
  return best_model;
}

}  // namespace promptem::em
