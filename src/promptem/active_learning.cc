#include "promptem/active_learning.h"

#include <algorithm>
#include <numeric>

namespace promptem::em {

std::vector<ActiveLearningRound> RunActiveLearning(
    const ModelFactory& factory, std::vector<EncodedPair> labeled,
    std::vector<EncodedPair> unlabeled,
    const std::vector<EncodedPair>& valid,
    const ActiveLearningConfig& config,
    std::unique_ptr<PairClassifier>* final_model) {
  PROMPTEM_CHECK(final_model != nullptr);
  core::Rng rng(config.seed);
  std::vector<ActiveLearningRound> history;

  std::unique_ptr<PairClassifier> model;
  for (int round = 0; round < config.rounds; ++round) {
    // Retrain from the pre-trained initialization on the current labels.
    model = factory();
    TrainResult result =
        TrainClassifier(model.get(), labeled, valid, config.train_options);

    ActiveLearningRound entry;
    entry.round = round;
    entry.labeled_size = labeled.size();
    entry.valid = result.best_valid;
    history.push_back(entry);

    if (unlabeled.empty() || round + 1 == config.rounds) continue;

    // Acquisition: most MC-Dropout-uncertain samples first.
    std::vector<float> uncertainty(unlabeled.size());
    for (size_t i = 0; i < unlabeled.size(); ++i) {
      uncertainty[i] = McDropoutEstimate(model.get(), unlabeled[i],
                                         config.mc_passes, &rng)
                           .uncertainty;
    }
    std::vector<size_t> order(unlabeled.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return uncertainty[a] > uncertainty[b];
    });
    const size_t budget = std::min<size_t>(
        static_cast<size_t>(config.budget_per_round), unlabeled.size());
    std::vector<bool> taken(unlabeled.size(), false);
    for (size_t k = 0; k < budget; ++k) {
      const size_t i = order[k];
      taken[i] = true;
      // The oracle reveals the gold label (already stored in the pool).
      labeled.push_back(unlabeled[i]);
    }
    std::vector<EncodedPair> remaining;
    remaining.reserve(unlabeled.size() - budget);
    for (size_t i = 0; i < unlabeled.size(); ++i) {
      if (!taken[i]) remaining.push_back(std::move(unlabeled[i]));
    }
    unlabeled = std::move(remaining);
  }

  *final_model = std::move(model);
  return history;
}

}  // namespace promptem::em
