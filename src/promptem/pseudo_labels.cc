#include "promptem/pseudo_labels.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "promptem/scoring.h"

namespace promptem::em {

const char* PseudoLabelStrategyName(PseudoLabelStrategy strategy) {
  switch (strategy) {
    case PseudoLabelStrategy::kUncertainty:
      return "uncertainty";
    case PseudoLabelStrategy::kConfidence:
      return "confidence";
    case PseudoLabelStrategy::kClustering:
      return "clustering";
  }
  return "?";
}

bool ParsePseudoLabelStrategy(const std::string& name,
                              PseudoLabelStrategy* out) {
  for (PseudoLabelStrategy s : {PseudoLabelStrategy::kUncertainty,
                                PseudoLabelStrategy::kConfidence,
                                PseudoLabelStrategy::kClustering}) {
    if (name == PseudoLabelStrategyName(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

void KMeans(const std::vector<std::vector<float>>& points, int k,
            int iterations, core::Rng* rng, std::vector<int>* assignment,
            std::vector<double>* distance) {
  PROMPTEM_CHECK(!points.empty());
  PROMPTEM_CHECK(k >= 1);
  const size_t n = points.size();
  const size_t dim = points[0].size();
  for (const auto& p : points) PROMPTEM_CHECK(p.size() == dim);

  // Initialize centroids from distinct random points.
  std::vector<std::vector<float>> centroids;
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  for (int c = 0; c < k; ++c) {
    centroids.push_back(points[order[static_cast<size_t>(c) % n]]);
  }

  assignment->assign(n, 0);
  distance->assign(n, 0.0);
  auto dist2 = [&](const std::vector<float>& a, const std::vector<float>& b) {
    double d = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      const double diff = static_cast<double>(a[i]) - b[i];
      d += diff * diff;
    }
    return d;
  };

  for (int iter = 0; iter < iterations; ++iter) {
    // Assign.
    for (size_t i = 0; i < n; ++i) {
      double best = dist2(points[i], centroids[0]);
      int best_c = 0;
      for (int c = 1; c < k; ++c) {
        const double d = dist2(points[i], centroids[static_cast<size_t>(c)]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      (*assignment)[i] = best_c;
      (*distance)[i] = std::sqrt(best);
    }
    // Update.
    std::vector<std::vector<double>> sums(
        static_cast<size_t>(k), std::vector<double>(dim, 0.0));
    std::vector<int> counts(static_cast<size_t>(k), 0);
    for (size_t i = 0; i < n; ++i) {
      const int c = (*assignment)[i];
      ++counts[static_cast<size_t>(c)];
      for (size_t d = 0; d < dim; ++d) {
        sums[static_cast<size_t>(c)][d] += points[i][d];
      }
    }
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) continue;
      for (size_t d = 0; d < dim; ++d) {
        centroids[static_cast<size_t>(c)][d] = static_cast<float>(
            sums[static_cast<size_t>(c)][d] / counts[static_cast<size_t>(c)]);
      }
    }
  }
}

PseudoLabelResult SelectPseudoLabels(
    PairClassifier* teacher, const std::vector<EncodedPair>& unlabeled,
    PseudoLabelStrategy strategy, double ratio, int mc_passes,
    core::Rng* rng, const EmbeddingFn& embed, EmbeddingCache* embed_cache,
    const std::vector<uint64_t>& embed_keys) {
  PseudoLabelResult result;
  if (unlabeled.empty()) return result;
  PROMPTEM_CHECK(ratio > 0.0 && ratio <= 1.0);
  PROMPTEM_CHECK(embed_keys.empty() || embed_keys.size() == unlabeled.size());

  const size_t n = unlabeled.size();
  const size_t n_p =
      std::max<size_t>(1, static_cast<size_t>(ratio * n + 0.5));

  // Teacher estimates for every unlabeled sample, pool-parallel across
  // samples (and bitwise identical to the sequential loop).
  const std::vector<McEstimate> estimates =
      McDropoutEstimateBatch(teacher, unlabeled, mc_passes, rng);

  // Selection score: larger = selected earlier.
  std::vector<double> score(n, 0.0);
  switch (strategy) {
    case PseudoLabelStrategy::kUncertainty:
      // Eq. 2: Top-N_P by negative uncertainty (least uncertain first).
      for (size_t i = 0; i < n; ++i) score[i] = -estimates[i].uncertainty;
      break;
    case PseudoLabelStrategy::kConfidence:
      for (size_t i = 0; i < n; ++i) score[i] = estimates[i].confidence;
      break;
    case PseudoLabelStrategy::kClustering: {
      PROMPTEM_CHECK_MSG(embed != nullptr,
                         "clustering strategy needs an embedding fn");
      // Embeddings run through the batched graph-free engine. Per-sample
      // seeds are drawn in input order, so the result is independent of
      // the pool size.
      std::vector<uint64_t> seeds(n);
      for (auto& s : seeds) s = rng->NextU64();
      const std::vector<std::vector<float>> points =
          EmbedBatchCached(embed, unlabeled, seeds, embed_cache, embed_keys);
      std::vector<int> assignment;
      std::vector<double> distance;
      KMeans(points, /*k=*/2, /*iterations=*/10, rng, &assignment,
             &distance);
      for (size_t i = 0; i < n; ++i) score[i] = -distance[i];
      break;
    }
  }

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return score[a] > score[b]; });
  order.resize(n_p);

  int tp = 0, fp = 0, tn = 0, fn = 0;
  for (size_t i : order) {
    result.indices.push_back(static_cast<int>(i));
    const int pseudo = estimates[i].pseudo_label;
    result.pseudo_labels.push_back(pseudo);
    const int gold = unlabeled[i].label;  // hidden label, evaluation only
    if (gold == 1) {
      (pseudo == 1 ? tp : fn) += 1;
    } else {
      (pseudo == 0 ? tn : fp) += 1;
    }
  }
  result.tpr = tp + fn == 0 ? 1.0 : static_cast<double>(tp) / (tp + fn);
  result.tnr = tn + fp == 0 ? 1.0 : static_cast<double>(tn) / (tn + fp);
  return result;
}

}  // namespace promptem::em
