// Deterministic fault-injection suite for every artifact the library
// loads from disk: binary checkpoints, CSV tables, pair CSVs, JSONL
// tables, and the pre-trained LM's vocab/config/checkpoint triple.
//
// The contract under test: a corrupted or truncated artifact must surface
// as a non-OK core::Status with a useful message — never a crash, abort,
// hang, unbounded allocation, or silent success. The corruptor below
// flips and truncates bytes systematically (not randomly), so a failure
// reproduces from the test name alone.

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/hash_index.h"
#include "data/io.h"
#include "lm/pretrained_lm.h"
#include "nn/layers.h"
#include "nn/serialize.h"
#include "nn/transformer.h"
#include "promptem/embed_cache.h"
#include "text/vocab.h"

namespace promptem {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Byte-corruptor helpers.
// ---------------------------------------------------------------------------

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "fixture missing: " << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << "cannot write fixture: " << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out);
}

std::string FlipByte(std::string bytes, size_t offset, unsigned char mask) {
  bytes[offset] = static_cast<char>(
      static_cast<unsigned char>(bytes[offset]) ^ mask);
  return bytes;
}

/// A per-test scratch directory under the gtest temp root, wiped on exit.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_(fs::path(::testing::TempDir()) / name) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

// ---------------------------------------------------------------------------
// Checkpoints: every single-byte flip and every truncation must fail.
// The v2 checksum makes this exhaustive — corruption in the float payload
// is just as detectable as corruption in the structure.
// ---------------------------------------------------------------------------

std::string SaveReferenceCheckpoint(const ScratchDir& dir) {
  core::Rng rng(7);
  nn::Mlp module({3, 4, 2}, &rng);
  const std::string path = dir.File("ref.ckpt");
  EXPECT_TRUE(nn::SaveCheckpoint(module, path).ok());
  return path;
}

core::Status LoadIntoFreshMlp(const std::string& path) {
  core::Rng rng(8);
  nn::Mlp module({3, 4, 2}, &rng);
  return nn::LoadCheckpoint(&module, path);
}

TEST(CheckpointFaultTest, EveryByteFlipIsDetected) {
  ScratchDir dir("promptem_fault_ckpt_flip");
  const std::string good = ReadFileBytes(SaveReferenceCheckpoint(dir));
  const std::string victim = dir.File("flipped.ckpt");
  for (size_t i = 0; i < good.size(); ++i) {
    for (unsigned char mask : {0x01, 0xFF}) {
      WriteFileBytes(victim, FlipByte(good, i, mask));
      core::Status st = LoadIntoFreshMlp(victim);
      EXPECT_FALSE(st.ok()) << "flip at byte " << i << " mask "
                            << static_cast<int>(mask) << " went undetected";
      EXPECT_FALSE(st.message().empty());
    }
  }
}

TEST(CheckpointFaultTest, EveryTruncationIsDetected) {
  ScratchDir dir("promptem_fault_ckpt_trunc");
  const std::string good = ReadFileBytes(SaveReferenceCheckpoint(dir));
  const std::string victim = dir.File("truncated.ckpt");
  for (size_t len = 0; len < good.size(); ++len) {
    WriteFileBytes(victim, good.substr(0, len));
    core::Status st = LoadIntoFreshMlp(victim);
    EXPECT_FALSE(st.ok()) << "truncation to " << len
                          << " bytes went undetected";
  }
}

TEST(CheckpointFaultTest, TrailingGarbageIsDetected) {
  ScratchDir dir("promptem_fault_ckpt_trail");
  const std::string good = ReadFileBytes(SaveReferenceCheckpoint(dir));
  const std::string victim = dir.File("trailing.ckpt");
  WriteFileBytes(victim, good + std::string(13, '\x5A'));
  EXPECT_FALSE(LoadIntoFreshMlp(victim).ok());
}

// A legacy v1 checkpoint (no checksum) with dims chosen so the naive
// `n *= dim` would wrap around 2^64 to a tiny number, or would pass the
// multiply but demand a multi-gigabyte buffer. Both must be rejected by
// the remaining-bytes bound before any allocation happens.
TEST(CheckpointFaultTest, V1OversizedDimsRejectedWithoutAllocation) {
  ScratchDir dir("promptem_fault_ckpt_v1dims");
  auto u32 = [](uint32_t v) {
    return std::string(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  for (std::vector<uint32_t> dims :
       std::vector<std::vector<uint32_t>>{{0xFFFFFFFFu, 0xFFFFFFFFu,
                                           0xFFFFFFFFu, 0xFFFFFFFFu},
                                          {0x40000000u, 4u}}) {
    std::string bytes = "PEMCKPT1";
    bytes += u32(1);  // one entry
    const std::string name = "hidden0.weight";
    bytes += u32(static_cast<uint32_t>(name.size())) + name;
    bytes += u32(static_cast<uint32_t>(dims.size()));
    for (uint32_t d : dims) bytes += u32(d);
    // No payload: the declared element count alone must kill the load.
    const std::string victim = dir.File("huge.ckpt");
    WriteFileBytes(victim, bytes);
    core::Status st = LoadIntoFreshMlp(victim);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), core::StatusCode::kInvalidArgument)
        << st.ToString();
  }
}

TEST(CheckpointFaultTest, DuplicateEntryNamesRejected) {
  ScratchDir dir("promptem_fault_ckpt_dup");
  auto u32 = [](uint32_t v) {
    return std::string(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  // v1 file holding the same zero-dim scalar entry twice.
  std::string entry;
  const std::string name = "w";
  entry += u32(static_cast<uint32_t>(name.size())) + name;
  entry += u32(0);  // ndim 0 => one scalar element
  const float value = 1.5f;
  entry += std::string(reinterpret_cast<const char*>(&value), sizeof(value));
  std::string bytes = "PEMCKPT1";
  bytes += u32(2) + entry + entry;
  const std::string victim = dir.File("dup.ckpt");
  WriteFileBytes(victim, bytes);
  core::Rng rng(9);
  nn::Mlp module({3, 4, 2}, &rng);
  core::Status st = nn::LoadCheckpoint(&module, victim, /*strict=*/false);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("duplicate"), std::string::npos)
      << st.ToString();
}

TEST(CheckpointFaultTest, EndiannessMismatchRejected) {
  ScratchDir dir("promptem_fault_ckpt_endian");
  const std::string good = ReadFileBytes(SaveReferenceCheckpoint(dir));
  // Reverse the endian tag (bytes 8..11) as a foreign-endian writer would.
  std::string swapped = good;
  std::swap(swapped[8], swapped[11]);
  std::swap(swapped[9], swapped[10]);
  const std::string victim = dir.File("endian.ckpt");
  WriteFileBytes(victim, swapped);
  core::Status st = LoadIntoFreshMlp(victim);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("endian"), std::string::npos)
      << st.ToString();
}

// ---------------------------------------------------------------------------
// Atomic save: a failed save never touches the target path.
// ---------------------------------------------------------------------------

TEST(CheckpointFaultTest, SaveToUnreachablePathLeavesNothingBehind) {
  core::Rng rng(7);
  nn::Mlp module({3, 4, 2}, &rng);
  const std::string target =
      (fs::path(::testing::TempDir()) / "promptem_no_such_dir" / "x.ckpt")
          .string();
  core::Status st = nn::SaveCheckpoint(module, target);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(fs::exists(target));
  EXPECT_FALSE(fs::exists(target + ".tmp"));
}

TEST(CheckpointFaultTest, FailedSaveNeverClobbersGoodCheckpoint) {
  ScratchDir dir("promptem_fault_ckpt_atomic");
  const std::string path = SaveReferenceCheckpoint(dir);
  const std::string good = ReadFileBytes(path);
  // Block the temp file with a directory: the save must fail before it
  // writes a single byte anywhere near the target.
  fs::create_directory(path + ".tmp");
  core::Rng rng(10);
  nn::Mlp other(std::vector<int>{3, 4, 2}, &rng);
  core::Status st = nn::SaveCheckpoint(other, path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(ReadFileBytes(path), good) << "target was modified";
  fs::remove_all(path + ".tmp");
}

TEST(CheckpointFaultTest, SuccessfulSaveLeavesNoTempFile) {
  ScratchDir dir("promptem_fault_ckpt_clean");
  const std::string path = SaveReferenceCheckpoint(dir);
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

// ---------------------------------------------------------------------------
// Embedding-cache files (the --embed-cache artifact, "PEMEMBC1" envelope):
// the same exhaustive sweep as checkpoints — every byte flip, every
// truncation, trailing garbage — must be rejected wholesale, and a
// rejected load must leave the in-memory cache exactly as it was.
// ---------------------------------------------------------------------------

/// Five dim-8 embeddings under one context tag — the reference contents.
void FillReferenceEmbedCache(em::EmbeddingCache* cache) {
  const uint64_t tag = em::EmbeddingCache::ContextTag(0xABu, 0xCDu);
  for (int i = 0; i < 5; ++i) {
    cache->Insert(em::EmbeddingCache::PairKey(tag, i, i + 1),
                  std::vector<float>(8, 0.5f * static_cast<float>(i) - 1.0f));
  }
}

std::string SaveReferenceEmbedCache(const ScratchDir& dir) {
  em::EmbeddingCache cache(64);
  FillReferenceEmbedCache(&cache);
  const std::string path = dir.File("ref.embcache");
  EXPECT_TRUE(cache.Save(path).ok());
  return path;
}

TEST(EmbedCacheFaultTest, EveryByteFlipIsDetected) {
  ScratchDir dir("promptem_fault_emb_flip");
  const std::string good = ReadFileBytes(SaveReferenceEmbedCache(dir));
  const std::string victim = dir.File("flipped.embcache");
  for (size_t i = 0; i < good.size(); ++i) {
    for (unsigned char mask : {0x01, 0xFF}) {
      WriteFileBytes(victim, FlipByte(good, i, mask));
      em::EmbeddingCache fresh(64);
      core::Status st = fresh.Load(victim);
      EXPECT_FALSE(st.ok()) << "flip at byte " << i << " mask "
                            << static_cast<int>(mask) << " went undetected";
      EXPECT_FALSE(st.message().empty());
      EXPECT_EQ(fresh.LiveEntries(), 0u)
          << "rejected load inserted entries (flip at byte " << i << ")";
    }
  }
}

TEST(EmbedCacheFaultTest, EveryTruncationIsDetected) {
  ScratchDir dir("promptem_fault_emb_trunc");
  const std::string good = ReadFileBytes(SaveReferenceEmbedCache(dir));
  const std::string victim = dir.File("truncated.embcache");
  for (size_t len = 0; len < good.size(); ++len) {
    WriteFileBytes(victim, good.substr(0, len));
    em::EmbeddingCache fresh(64);
    EXPECT_FALSE(fresh.Load(victim).ok())
        << "truncation to " << len << " bytes went undetected";
    EXPECT_EQ(fresh.LiveEntries(), 0u);
  }
}

TEST(EmbedCacheFaultTest, TrailingGarbageIsDetected) {
  ScratchDir dir("promptem_fault_emb_trail");
  const std::string good = ReadFileBytes(SaveReferenceEmbedCache(dir));
  const std::string victim = dir.File("trailing.embcache");
  WriteFileBytes(victim, good + std::string(13, '\x5A'));
  em::EmbeddingCache fresh(64);
  core::Status st = fresh.Load(victim);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("trailing"), std::string::npos)
      << st.ToString();
}

TEST(EmbedCacheFaultTest, RejectedLoadLeavesCacheUnchanged) {
  ScratchDir dir("promptem_fault_emb_keep");
  const std::string good = ReadFileBytes(SaveReferenceEmbedCache(dir));
  const std::string victim = dir.File("corrupt.embcache");
  WriteFileBytes(victim, FlipByte(good, good.size() / 2, 0xFF));
  // A cache that already holds entries must keep serving them bitwise
  // intact after rejecting a corrupt file.
  em::EmbeddingCache cache(64);
  const uint64_t key = em::EmbeddingCache::PairKey(
      em::EmbeddingCache::ContextTag(0x11u, 0x22u), 3, 4);
  const std::vector<float> value = {1.0f, 2.0f, 3.0f};
  cache.Insert(key, value);
  EXPECT_FALSE(cache.Load(victim).ok());
  EXPECT_EQ(cache.LiveEntries(), 1u);
  auto entry = cache.Find(key);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(*entry, value);
  // And the survivor cache still round-trips: rebuild-after-reject works.
  const std::string repaired = dir.File("repaired.embcache");
  EXPECT_TRUE(cache.Save(repaired).ok());
  em::EmbeddingCache reloaded(64);
  EXPECT_TRUE(reloaded.Load(repaired).ok());
  auto reloaded_entry = reloaded.Find(key);
  ASSERT_NE(reloaded_entry, nullptr);
  EXPECT_EQ(*reloaded_entry, value);
}

TEST(EmbedCacheFaultTest, SaveToUnreachablePathLeavesNothingBehind) {
  em::EmbeddingCache cache(64);
  FillReferenceEmbedCache(&cache);
  const std::string target =
      (fs::path(::testing::TempDir()) / "promptem_no_such_dir" /
       "x.embcache")
          .string();
  core::Status st = cache.Save(target);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(fs::exists(target));
  EXPECT_FALSE(fs::exists(target + ".tmp"));
}

TEST(EmbedCacheFaultTest, FailedSaveNeverClobbersGoodFile) {
  ScratchDir dir("promptem_fault_emb_atomic");
  const std::string path = SaveReferenceEmbedCache(dir);
  const std::string good = ReadFileBytes(path);
  // Block the temp file with a directory: the save must fail without
  // touching the target.
  fs::create_directory(path + ".tmp");
  em::EmbeddingCache other(64);
  other.Insert(7u, {9.0f});
  EXPECT_FALSE(other.Save(path).ok());
  EXPECT_EQ(ReadFileBytes(path), good) << "target was modified";
  fs::remove_all(path + ".tmp");
}

TEST(EmbedCacheFaultTest, SuccessfulSaveLeavesNoTempFile) {
  ScratchDir dir("promptem_fault_emb_clean");
  const std::string path = SaveReferenceEmbedCache(dir);
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(EmbedCacheFaultTest, SigkillDuringAutosaveLeavesOldOrNewFileOnly) {
  // The autosave crash contract: a process killed at ANY instant while
  // inserting with periodic flushes enabled leaves either a previous
  // complete file or the new one on disk — never a torn write. Each
  // cached value is a pure function of its key, so the parent can verify
  // whatever generation survived, not just that Load succeeds.
  ScratchDir dir("promptem_fault_emb_kill");
  const std::string path = dir.File("autosaved.embcache");
  const auto value_for = [](uint64_t key) {
    return std::vector<float>{static_cast<float>(key),
                              static_cast<float>(key) * 0.25f};
  };
  for (const int delay_us : {0, 500, 1500, 4000, 9000, 20000}) {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      // Flush on every insert: the kill window is almost always inside
      // an open tmp-file write.
      em::EmbeddingCache cache(1u << 14);
      cache.EnableAutosave(path, 1);
      for (uint64_t key = 1;; ++key) {
        cache.Insert(key, value_for(key));
      }
    }
    ::usleep(static_cast<useconds_t>(delay_us));
    ::kill(child, SIGKILL);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
    ASSERT_TRUE(WIFSIGNALED(wstatus));

    em::EmbeddingCache survivor(1u << 14);
    const core::Status st = survivor.Load(path);
    if (st.code() == core::StatusCode::kNotFound) {
      continue;  // killed before the first rename landed — fine
    }
    ASSERT_TRUE(st.ok()) << "torn autosave after " << delay_us
                         << "us: " << st.ToString();
    EXPECT_GT(survivor.LiveEntries(), 0u);
    for (uint64_t key = 1; key <= survivor.LiveEntries(); ++key) {
      auto entry = survivor.Find(key);
      ASSERT_NE(entry, nullptr) << "missing key " << key << " in a "
                                << survivor.LiveEntries() << "-entry file";
      EXPECT_EQ(*entry, value_for(key)) << "key " << key;
    }
  }
}

TEST(EmbedCacheFaultTest, RejectionMessagesCarryPathOffsetAndCheck) {
  // The satellite contract for load failures: the Status message alone
  // must say which file, where in it, and which check tripped — enough
  // to diagnose a bad cache from a log line without re-running anything.
  ScratchDir dir("promptem_fault_emb_msg");
  const std::string good = ReadFileBytes(SaveReferenceEmbedCache(dir));
  const std::string victim = dir.File("diagnose.embcache");
  struct Case {
    std::string bytes;
    const char* check;  // substring naming the failed check
  };
  const std::vector<Case> cases = {
      {FlipByte(good, 0, 0xFF), "bad magic"},
      {FlipByte(good, 8, 0xFF), "endianness mismatch"},
      {FlipByte(good, good.size() / 2, 0x01), "checksum mismatch"},
      {good.substr(0, good.size() - 4), "exceeds file size"},
      {good + std::string(4, '\x00'), "trailing garbage"},
  };
  for (const Case& c : cases) {
    WriteFileBytes(victim, c.bytes);
    em::EmbeddingCache fresh(64);
    const core::Status st = fresh.Load(victim);
    ASSERT_FALSE(st.ok()) << c.check;
    EXPECT_NE(st.message().find(victim), std::string::npos)
        << "no path in: " << st.ToString();
    EXPECT_NE(st.message().find("at offset"), std::string::npos)
        << "no offset in: " << st.ToString();
    EXPECT_NE(st.message().find(c.check), std::string::npos)
        << "expected '" << c.check << "' in: " << st.ToString();
  }
}

// ---------------------------------------------------------------------------
// Mmap-backed hash index files ("PEMHIDX1", the band-table / embed-cache
// backing store): the same exhaustive sweep. Because readers map the file
// and dereference slots in place, wholesale up-front rejection is the
// only thing standing between a bad byte and a wild pointer — every flip
// and truncation must fail Open before any entry is visible, and the
// message must carry path, offset, and the failed check.
// ---------------------------------------------------------------------------

std::vector<uint8_t> IndexValueFor(uint64_t key) {
  uint64_t v = key * 0x9E3779B97F4A7C15ULL;
  std::vector<uint8_t> bytes(sizeof(v));
  std::memcpy(bytes.data(), &v, sizeof(v));
  return bytes;
}

std::string SaveReferenceHashIndex(const ScratchDir& dir) {
  core::HashIndex::Options options;
  options.backend = core::HashIndex::Backend::kMmap;
  options.path = dir.File("ref.phx");
  core::HashIndex index(options);
  for (uint64_t key = 1; key <= 21; ++key) {
    const auto value = IndexValueFor(key);
    index.Add(key, 0, value.data(), value.size());
  }
  EXPECT_TRUE(index.Seal().ok());
  return options.path;
}

TEST(HashIndexFaultTest, EveryByteFlipIsDetected) {
  ScratchDir dir("promptem_fault_phx_flip");
  const std::string good = ReadFileBytes(SaveReferenceHashIndex(dir));
  const std::string victim = dir.File("flipped.phx");
  for (size_t i = 0; i < good.size(); ++i) {
    for (unsigned char mask : {0x01, 0xFF}) {
      WriteFileBytes(victim, FlipByte(good, i, mask));
      auto opened = core::HashIndex::Open(victim);
      EXPECT_FALSE(opened.ok()) << "flip at byte " << i << " mask "
                                << static_cast<int>(mask)
                                << " went undetected";
      if (!opened.ok()) {
        EXPECT_NE(opened.status().message().find(victim), std::string::npos)
            << "no path in: " << opened.status().ToString();
        EXPECT_NE(opened.status().message().find("at offset"),
                  std::string::npos)
            << "no offset in: " << opened.status().ToString();
      }
    }
  }
}

TEST(HashIndexFaultTest, EveryTruncationIsDetected) {
  ScratchDir dir("promptem_fault_phx_trunc");
  const std::string good = ReadFileBytes(SaveReferenceHashIndex(dir));
  const std::string victim = dir.File("truncated.phx");
  for (size_t len = 0; len < good.size(); ++len) {
    WriteFileBytes(victim, good.substr(0, len));
    EXPECT_FALSE(core::HashIndex::Open(victim).ok())
        << "truncation to " << len << " bytes went undetected";
  }
}

TEST(HashIndexFaultTest, TrailingGarbageIsDetected) {
  ScratchDir dir("promptem_fault_phx_trail");
  const std::string good = ReadFileBytes(SaveReferenceHashIndex(dir));
  const std::string victim = dir.File("trailing.phx");
  WriteFileBytes(victim, good + std::string(13, '\x5A'));
  auto opened = core::HashIndex::Open(victim);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("size"), std::string::npos)
      << opened.status().ToString();
}

TEST(HashIndexFaultTest, CorruptAttachedStoreIsRejectedWholesale) {
  // The embed-cache seam over the same files: Attach must reject a bad
  // store entirely (never a partial view) while keeping the binding
  // live, so the rebuild's next flush replaces the bad file.
  ScratchDir dir("promptem_fault_phx_attach");
  const std::string good = ReadFileBytes(SaveReferenceHashIndex(dir));
  const std::string victim = dir.File("store.phx");
  WriteFileBytes(victim, FlipByte(good, good.size() / 2, 0xFF));
  em::EmbeddingCache cache(64);
  const core::Status st =
      cache.Attach(victim, em::EmbeddingCache::CacheBackend::kMmap);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.code(), core::StatusCode::kNotFound);
  EXPECT_EQ(cache.PersistedEntries(), 0u) << "partial load leaked through";
  cache.Insert(42u, {1.0f, 2.0f});
  ASSERT_TRUE(cache.Save(victim).ok());
  auto reopened = core::HashIndex::Open(victim);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->key_count(), 1u);
}

TEST(HashIndexFaultTest, SigkillDuringGrowthLeavesOldOrNewGenerationOnly) {
  // The re-seal crash contract (mirrors the autosave sweep above): a
  // process killed at any instant while growing the index leaves either
  // the previous complete generation or the new one — never a torn file.
  // Every payload is a pure function of its key, so the parent verifies
  // whichever generation survived in full.
  ScratchDir dir("promptem_fault_phx_kill");
  const std::string path = dir.File("grown.phx");
  constexpr uint64_t kGen1Keys = 200;
  constexpr uint64_t kGen2Keys = 400;
  for (const int delay_us : {0, 500, 1500, 4000, 9000, 20000}) {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      core::HashIndex::Options options;
      options.backend = core::HashIndex::Backend::kMmap;
      options.path = path;
      core::HashIndex index(options);
      for (uint64_t key = 1; key <= kGen1Keys; ++key) {
        const auto value = IndexValueFor(key);
        index.Add(key, 0, value.data(), value.size());
      }
      if (!index.Seal().ok()) std::_Exit(3);
      // Keep re-sealing growing generations until killed; the parent's
      // delay lands the SIGKILL inside a tmp-file write or rename.
      for (uint64_t next = kGen1Keys + 1;; next += kGen1Keys) {
        for (uint64_t key = next; key < next + kGen1Keys; ++key) {
          const auto value = IndexValueFor(key);
          index.Add(key, 0, value.data(), value.size());
        }
        if (!index.Seal().ok()) std::_Exit(3);
        if (next >= kGen2Keys) std::_Exit(0);  // bounded for delay > work
      }
    }
    ::usleep(static_cast<useconds_t>(delay_us));
    ::kill(child, SIGKILL);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(child, &wstatus, 0), child);

    auto survivor = core::HashIndex::Open(path);
    if (!survivor.ok()) {
      // Killed before the first rename landed — acceptable only as "no
      // complete file yet", never as a torn one.
      EXPECT_EQ(survivor.status().code(), core::StatusCode::kNotFound)
          << "torn growth after " << delay_us
          << "us: " << survivor.status().ToString();
      continue;
    }
    const auto snapshot = survivor.value()->snapshot();
    const uint64_t keys = snapshot.key_count();
    EXPECT_EQ(keys % kGen1Keys, 0u)
        << "file holds a fractional generation (" << keys << " keys)";
    EXPECT_GE(keys, kGen1Keys);
    for (uint64_t key = 1; key <= keys; ++key) {
      const auto span = snapshot.Find(key);
      ASSERT_NE(span.data, nullptr) << "missing key " << key << " in a "
                                    << keys << "-key file";
      const auto expect = IndexValueFor(key);
      ASSERT_EQ(span.size, expect.size());
      EXPECT_EQ(std::memcmp(span.data, expect.data(), expect.size()), 0)
          << "key " << key;
    }
  }
}

// ---------------------------------------------------------------------------
// Pair CSVs: structurally broken rows must fail with a line number.
// ---------------------------------------------------------------------------

TEST(PairsCsvFaultTest, StructurallyBrokenRowsRejected) {
  ScratchDir dir("promptem_fault_pairs");
  const std::string path = dir.File("pairs.csv");
  const std::vector<std::string> broken = {
      "0,1,1\n1,0",        // truncated row: 2 fields
      "0,1,1\n1,0,",       // empty label field
      "0,1,x\n",           // non-integer label
      "0;1;1\n",           // wrong separator: 1 field
      "0,1,2\n",           // label outside {0,1}
      "0,1,-1\n",          // unlabeled marker must not pass the loader
      "9,0,1\n",           // left index out of range
      "0,9,1\n",           // right index out of range
      "-1,0,1\n",          // negative index
      "0,1,1,0\n",         // extra field
      "a,b,c\n",           // letters everywhere
      "0, 1x, 1\n",        // garbage with embedded spaces
      "4294967296,0,1\n",  // overflows int
  };
  for (const auto& content : broken) {
    WriteFileBytes(path, content);
    auto pairs = data::LoadPairsCsv(path, 2, 2);
    EXPECT_FALSE(pairs.ok()) << "accepted: " << content;
    EXPECT_FALSE(pairs.status().message().empty());
  }
}

TEST(PairsCsvFaultTest, TruncationSweepNeverCrashesOrInventsPairs) {
  ScratchDir dir("promptem_fault_pairs_trunc");
  const std::string path = dir.File("pairs.csv");
  const std::string good = "0,1,1\n1,0,0\n1,1,1\n";
  auto reference = [&]() {
    WriteFileBytes(path, good);
    auto r = data::LoadPairsCsv(path, 2, 2);
    EXPECT_TRUE(r.ok());
    return std::move(r).value();
  }();
  for (size_t len = 0; len < good.size(); ++len) {
    WriteFileBytes(path, good.substr(0, len));
    auto result = data::LoadPairsCsv(path, 2, 2);
    if (!result.ok()) continue;  // detected, good
    // Line-oriented CSV cannot distinguish a file truncated exactly at a
    // row boundary from a shorter dataset; what it must never do is
    // return rows that differ from a prefix of the original.
    const auto& pairs = result.value();
    ASSERT_LE(pairs.size(), reference.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
      EXPECT_EQ(pairs[i].left_index, reference[i].left_index);
      EXPECT_EQ(pairs[i].right_index, reference[i].right_index);
      EXPECT_EQ(pairs[i].label, reference[i].label);
    }
  }
}

// ---------------------------------------------------------------------------
// Relational CSV tables.
// ---------------------------------------------------------------------------

TEST(CsvTableFaultTest, BrokenTablesRejected) {
  ScratchDir dir("promptem_fault_csv");
  const std::string path = dir.File("table.csv");
  const std::vector<std::string> broken = {
      "",                        // no header at all
      "a,b\n1\n",                // row narrower than header
      "a,b\n1,2,3\n",            // row wider than header
  };
  for (const auto& content : broken) {
    WriteFileBytes(path, content);
    auto table = data::LoadCsvTable(path);
    EXPECT_FALSE(table.ok()) << "accepted: " << content;
  }
}

// ---------------------------------------------------------------------------
// JSONL tables: any mid-object truncation or structural break must fail
// with the line number attached.
// ---------------------------------------------------------------------------

TEST(JsonlFaultTest, TruncationSweepRejectsEveryPartialObject) {
  ScratchDir dir("promptem_fault_jsonl");
  const std::string path = dir.File("table.jsonl");
  const std::string line = R"({"title":"sams teach","pages":288})";
  for (size_t len = 1; len < line.size(); ++len) {
    WriteFileBytes(path, line.substr(0, len) + "\n");
    auto table = data::LoadJsonlTable(path);
    EXPECT_FALSE(table.ok()) << "accepted prefix of length " << len;
    EXPECT_NE(table.status().message().find("line 1"), std::string::npos)
        << table.status().ToString();
  }
}

TEST(JsonlFaultTest, StructuralBreaksRejected) {
  ScratchDir dir("promptem_fault_jsonl2");
  const std::string path = dir.File("table.jsonl");
  const std::vector<std::string> broken = {
      "[1,2,3]\n",                    // record must be an object
      "{\"a\":1} trailing\n",         // garbage after the object
      "{\"a\":\"\\uD83D\"}\n",        // unpaired high surrogate
      "{\"a\":\"\\uDC00\"}\n",        // lone low surrogate
      "{\"a\":\"\\uZZZZ\"}\n",        // bad escape digits
      "{\"a\":1,}\n",                 // trailing comma
      "{\"a\" 1}\n",                  // missing colon
      "{\"a\":1}\n{\"b\":\n",         // second line truncated
  };
  for (const auto& content : broken) {
    WriteFileBytes(path, content);
    auto table = data::LoadJsonlTable(path);
    EXPECT_FALSE(table.ok()) << "accepted: " << content;
  }
}

// ---------------------------------------------------------------------------
// Pre-trained LM artifacts (vocab + config + checkpoint), exercised
// through PretrainedLM::Load so corruption in any of the three files
// propagates as a Status out of the single entry point.
// ---------------------------------------------------------------------------

class LmArtifactFault : public ::testing::Test {
 protected:
  LmArtifactFault() : dir_("promptem_fault_lm") {}

  /// Fabricates a consistent (vocab, config, ckpt) triple for a tiny
  /// untrained encoder — Load never checks training quality, only
  /// structural integrity, so no pre-training is needed.
  void SetUp() override {
    text::Vocab vocab;
    for (const char* tok : {"alpha", "beta", "gamma"}) vocab.AddToken(tok);
    nn::TransformerConfig config;
    config.vocab_size = vocab.size();
    config.max_seq_len = 16;
    config.dim = 8;
    config.num_layers = 1;
    config.num_heads = 2;
    config.ffn_dim = 16;
    config.dropout = 0.1f;
    core::Rng rng(3);
    nn::TransformerEncoder encoder(config, &rng);
    ASSERT_TRUE(nn::SaveCheckpoint(encoder, Prefix() + ".ckpt").ok());
    std::string vocab_lines;
    for (int i = 0; i < vocab.size(); ++i) {
      vocab_lines += vocab.ToToken(i) + "\n";
    }
    WriteFileBytes(Prefix() + ".vocab", vocab_lines);
    WriteFileBytes(Prefix() + ".config", "10 16 8 1 2 16 0.1\n");
  }

  std::string Prefix() const { return dir_.File("lm"); }

  core::Status LoadStatus() const {
    auto lm = lm::PretrainedLM::Load(Prefix());
    return lm.ok() ? core::Status::OK() : lm.status();
  }

  ScratchDir dir_;
};

TEST_F(LmArtifactFault, IntactTripleLoads) {
  EXPECT_TRUE(LoadStatus().ok());
}

TEST_F(LmArtifactFault, VocabCorruptionRejected) {
  const std::string good = ReadFileBytes(Prefix() + ".vocab");
  const std::vector<std::string> broken = {
      "",                                      // empty file
      good + "alpha\n",                        // duplicate token
      good + "\n",                             // empty token line
      "[BAD]\n" + good.substr(good.find('\n') + 1),  // corrupt special
      good.substr(0, good.find("alpha")),      // truncated: size mismatch
  };
  for (const auto& content : broken) {
    WriteFileBytes(Prefix() + ".vocab", content);
    core::Status st = LoadStatus();
    EXPECT_FALSE(st.ok()) << "accepted vocab: " << content;
    EXPECT_FALSE(st.message().empty());
  }
}

TEST_F(LmArtifactFault, ConfigCorruptionRejected) {
  const std::vector<std::string> broken = {
      "",                          // empty
      "10 16 8 1 2 16\n",          // truncated field list
      "10 16 8 1 2 16 abc\n",      // non-numeric dropout
      "10 16 0 1 2 16 0.1\n",      // zero dim
      "10 16 8 1 3 16 0.1\n",      // heads do not divide dim
      "10 16 8 -1 2 16 0.1\n",     // negative layer count
      "10 16 999999999 1 2 16 0.1\n",  // absurd dim: bounded alloc guard
      "10 16 8 1 2 16 1.5\n",      // dropout outside [0,1)
      "99 16 8 1 2 16 0.1\n",      // vocab size disagrees with .vocab
  };
  for (const auto& content : broken) {
    WriteFileBytes(Prefix() + ".config", content);
    core::Status st = LoadStatus();
    EXPECT_FALSE(st.ok()) << "accepted config: " << content;
  }
}

TEST_F(LmArtifactFault, CheckpointCorruptionPropagates) {
  const std::string ckpt = Prefix() + ".ckpt";
  std::string bytes = ReadFileBytes(ckpt);
  WriteFileBytes(ckpt, FlipByte(bytes, bytes.size() / 2, 0xFF));
  EXPECT_FALSE(LoadStatus().ok());
  WriteFileBytes(ckpt, bytes.substr(0, bytes.size() - 5));
  EXPECT_FALSE(LoadStatus().ok());
}

// ---------------------------------------------------------------------------
// Whole-dataset directory: a broken member file fails the load cleanly.
// ---------------------------------------------------------------------------

TEST(GemDatasetFaultTest, CorruptMemberFileFailsDirectoryLoad) {
  ScratchDir dir("promptem_fault_gem");
  WriteFileBytes(dir.File("left.csv"), "name,price\nwidget,3\ngadget,5\n");
  WriteFileBytes(dir.File("right.csv"), "name,price\nwidget,3\nsprocket,9\n");
  WriteFileBytes(dir.File("pairs_train.csv"), "0,0,1\n1,1,0\n");
  WriteFileBytes(dir.File("pairs_valid.csv"), "0,1,0\n");
  WriteFileBytes(dir.File("pairs_test.csv"), "1,0,0\n");
  ASSERT_TRUE(data::LoadGemDataset(dir.path().string(), "t").ok());

  WriteFileBytes(dir.File("pairs_train.csv"), "0,0,1\n5,5,1\n");
  auto bad_pairs = data::LoadGemDataset(dir.path().string(), "t");
  EXPECT_FALSE(bad_pairs.ok());

  WriteFileBytes(dir.File("pairs_train.csv"), "0,0,1\n1,1,0\n");
  WriteFileBytes(dir.File("left.csv"), "name,price\nwidget\n");
  auto bad_table = data::LoadGemDataset(dir.path().string(), "t");
  EXPECT_FALSE(bad_table.ok());
}

}  // namespace
}  // namespace promptem
