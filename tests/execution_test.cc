// Tests for the inference-mode execution engine: NoGradGuard semantics
// (no graph nodes, nesting, thread-locality under core::ParallelFor), the
// ScratchArena scratch allocator, the graph-free dropout fast path,
// MC-Dropout staying stochastic in eval mode, and parity between the
// unified batched scoring engine and the per-sample Probs loops it
// replaced. Runs under `ctest -L asan` in a -DPROMPTEM_SANITIZE=address
// build to shake out lifetime bugs in the arena deleter.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/deepmatcher.h"
#include "baselines/sentence_bert.h"
#include "baselines/tdmatch_star.h"
#include "core/mem_tracker.h"
#include "core/thread_pool.h"
#include "data/benchmarks.h"
#include "lm/pretrained_lm.h"
#include "promptem/finetune_model.h"
#include "promptem/prompt_model.h"
#include "promptem/scoring.h"
#include "promptem/uncertainty.h"
#include "tensor/arena.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "text/vocab.h"

namespace promptem {
namespace {

using em::EncodedPair;

// ---------------------------------------------------------------------------
// Fixtures: the committed tiny LM checkpoint and synthetic encoded pairs.
// ---------------------------------------------------------------------------

const lm::PretrainedLM& FixtureLM() {
  static const lm::PretrainedLM* kLm = [] {
    auto loaded =
        lm::PretrainedLM::Load("tests/data/promptem_integration_lm");
    if (!loaded.ok()) {
      std::fprintf(stderr,
                   "fixture LM missing (%s); tests must run from the repo "
                   "root\n",
                   loaded.status().ToString().c_str());
      std::abort();
    }
    return loaded.value().release();
  }();
  return *kLm;
}

std::vector<EncodedPair> SyntheticPairs(int n, uint64_t seed) {
  const int vocab = FixtureLM().vocab().size();
  const int lo = text::SpecialTokens::kCount;
  core::Rng rng(seed);
  std::vector<EncodedPair> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    EncodedPair p;
    const int left_len = 3 + static_cast<int>(rng.NextU64(8));
    const int right_len = 3 + static_cast<int>(rng.NextU64(8));
    for (int k = 0; k < left_len; ++k) {
      p.left_ids.push_back(
          lo + static_cast<int>(rng.NextU64(static_cast<uint64_t>(
                   vocab - lo))));
    }
    for (int k = 0; k < right_len; ++k) {
      p.right_ids.push_back(
          lo + static_cast<int>(rng.NextU64(static_cast<uint64_t>(
                   vocab - lo))));
    }
    p.label = static_cast<int>(rng.NextU64(2));
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<int> SyntheticIds(int n, uint64_t seed) {
  const int vocab = FixtureLM().vocab().size();
  const int lo = text::SpecialTokens::kCount;
  core::Rng rng(seed);
  std::vector<int> ids(static_cast<size_t>(n));
  for (int& id : ids) {
    id = lo + static_cast<int>(
                  rng.NextU64(static_cast<uint64_t>(vocab - lo)));
  }
  return ids;
}

// ---------------------------------------------------------------------------
// NoGradGuard semantics.
// ---------------------------------------------------------------------------

TEST(NoGradGuardTest, GuardsNestAndRestore) {
  EXPECT_TRUE(tensor::GradEnabled());
  {
    tensor::NoGradGuard outer;
    EXPECT_FALSE(tensor::GradEnabled());
    {
      tensor::NoGradGuard inner;
      EXPECT_FALSE(tensor::GradEnabled());
    }
    EXPECT_FALSE(tensor::GradEnabled());
  }
  EXPECT_TRUE(tensor::GradEnabled());
}

TEST(NoGradGuardTest, ThreadLocalUnderParallelFor) {
  core::SetNumThreads(3);
  // Chunk c runs on lane c % 3 and lane 0 is the calling thread, so with
  // the guard held by the caller, chunks 0 and 3 must see grad mode off
  // while the worker-lane chunks see their own (default-enabled) flag.
  std::vector<int> enabled(6, -1);
  {
    tensor::NoGradGuard guard;
    core::ParallelFor(0, 6, 1, [&](int64_t begin, int64_t end) {
      for (int64_t c = begin; c < end; ++c) {
        enabled[static_cast<size_t>(c)] = tensor::GradEnabled() ? 1 : 0;
        {
          tensor::NoGradGuard inner;
          if (tensor::GradEnabled()) enabled[static_cast<size_t>(c)] = -2;
        }
        // The inner guard must restore the chunk-entry state.
        const int now = tensor::GradEnabled() ? 1 : 0;
        if (now != enabled[static_cast<size_t>(c)]) {
          enabled[static_cast<size_t>(c)] = -3;
        }
      }
    });
    EXPECT_FALSE(tensor::GradEnabled());
  }
  EXPECT_TRUE(tensor::GradEnabled());
  EXPECT_EQ(enabled[0], 0);
  EXPECT_EQ(enabled[3], 0);
  for (int c : {1, 2, 4, 5}) {
    EXPECT_EQ(enabled[static_cast<size_t>(c)], 1) << "chunk " << c;
  }
  core::SetNumThreads(0);
}

TEST(NoGradGuardTest, TransformerForwardBuildsNoGraph) {
  core::Rng rng(5);
  auto encoder = FixtureLM().CloneEncoder(&rng);
  encoder->Eval();
  const std::vector<int> ids = SyntheticIds(12, 7);

  // Grad-enabled forward against trainable parameters builds a graph.
  {
    tensor::Tensor h = encoder->Encode(ids, &rng);
    EXPECT_TRUE(static_cast<bool>(h.impl()->backward_fn));
    EXPECT_FALSE(h.impl()->parents.empty());
  }

  const size_t before = core::MemTracker::CurrentBytes();
  {
    tensor::NoGradGuard guard;
    tensor::Tensor h = encoder->Encode(ids, &rng);
    EXPECT_FALSE(static_cast<bool>(h.impl()->backward_fn));
    EXPECT_TRUE(h.impl()->parents.empty());
    EXPECT_FALSE(h.impl()->requires_grad);
    EXPECT_EQ(h.impl()->grad, nullptr);
  }
  // Everything the guarded forward allocated died with it: no grad
  // buffers or retained closures keep storage alive.
  EXPECT_EQ(core::MemTracker::CurrentBytes(), before);
  for (const tensor::Tensor& p : encoder->Parameters()) {
    EXPECT_FALSE(p.has_grad());
  }
}

// ---------------------------------------------------------------------------
// ScratchArena.
// ---------------------------------------------------------------------------

TEST(ScratchArenaTest, SteadyStateIsAllocationFree) {
  core::Rng rng(3);
  auto encoder = FixtureLM().CloneEncoder(&rng);
  encoder->Eval();
  const std::vector<int> ids = SyntheticIds(16, 9);

  tensor::NoGradGuard no_grad;
  tensor::ScratchArena arena;
  tensor::ScratchArena::Scope scope(&arena);

  { tensor::Tensor h = encoder->Encode(ids, &rng); }
  const int64_t warm = arena.fresh_count();
  EXPECT_GT(warm, 0);

  // Identical shapes on the second pass: every buffer must come from the
  // freelist, so the fresh count stays flat.
  { tensor::Tensor h = encoder->Encode(ids, &rng); }
  EXPECT_EQ(arena.fresh_count(), warm);
  EXPECT_GT(arena.reuse_count(), 0);
  EXPECT_GT(arena.cached_buffers(), 0u);
}

TEST(ScratchArenaTest, ArenaForwardMatchesPlainForward) {
  core::Rng rng(4);
  auto encoder = FixtureLM().CloneEncoder(&rng);
  encoder->Eval();
  const std::vector<int> ids = SyntheticIds(10, 13);

  tensor::Tensor plain = encoder->Encode(ids, &rng);

  tensor::NoGradGuard no_grad;
  tensor::ScratchArena arena;
  tensor::ScratchArena::Scope scope(&arena);
  tensor::Tensor recycled = encoder->Encode(ids, &rng);
  // Warm pass, then a reuse pass over recycled (re-zeroed) buffers.
  recycled = encoder->Encode(ids, &rng);

  ASSERT_EQ(plain.numel(), recycled.numel());
  for (int64_t i = 0; i < plain.numel(); ++i) {
    EXPECT_EQ(plain.data()[i], recycled.data()[i]) << "element " << i;
  }
}

TEST(ScratchArenaTest, EscapedTensorsSurviveArenaDeath) {
  tensor::Tensor escaped;
  {
    tensor::NoGradGuard no_grad;
    tensor::ScratchArena arena;
    tensor::ScratchArena::Scope scope(&arena);
    escaped = tensor::ops::Add(tensor::Tensor::Full({4, 4}, 1.5f),
                               tensor::Tensor::Full({4, 4}, 0.5f));
  }
  // The arena is gone; the escaped buffer must have fallen back to plain
  // ownership (ASan validates the deleter path).
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) EXPECT_EQ(escaped.at(i, j), 2.0f);
  }
}

// ---------------------------------------------------------------------------
// Graph-free dropout fast path.
// ---------------------------------------------------------------------------

TEST(DropoutTest, GraphFreePathMatchesTrackedMask) {
  tensor::Tensor x = tensor::Tensor::Full({256}, 1.0f,
                                          /*requires_grad=*/true);
  core::Rng tracked_rng(9);
  tensor::Tensor tracked = tensor::ops::Dropout(x, 0.3f, &tracked_rng);
  EXPECT_TRUE(static_cast<bool>(tracked.impl()->backward_fn));

  core::Rng fast_rng(9);
  tensor::NoGradGuard guard;
  tensor::Tensor fast = tensor::ops::Dropout(x, 0.3f, &fast_rng);
  EXPECT_FALSE(static_cast<bool>(fast.impl()->backward_fn));
  EXPECT_TRUE(fast.impl()->parents.empty());

  // Same seed => identical Bernoulli draw sequence => identical mask.
  int zeros = 0;
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(tracked.at(i), fast.at(i)) << "element " << i;
    if (fast.at(i) == 0.0f) ++zeros;
  }
  EXPECT_GT(zeros, 0);
  EXPECT_LT(zeros, 256);
}

// ---------------------------------------------------------------------------
// Train/eval execution modes.
// ---------------------------------------------------------------------------

TEST(ExecutionModesTest, TrainAndEvalForwardsMatchWithoutDropout) {
  nn::TransformerConfig config;
  config.vocab_size = 64;
  config.dim = 16;
  config.num_layers = 2;
  config.num_heads = 2;
  config.ffn_dim = 32;
  config.max_seq_len = 32;
  config.dropout = 0.0f;
  core::Rng init_rng(21);
  nn::TransformerEncoder encoder(config, &init_rng);
  std::vector<int> ids;
  for (int i = 0; i < 12; ++i) {
    ids.push_back(text::SpecialTokens::kCount + (i % 40));
  }

  encoder.Train();
  core::Rng train_rng(0);
  tensor::Tensor train_h = encoder.Encode(ids, &train_rng);
  EXPECT_TRUE(static_cast<bool>(train_h.impl()->backward_fn));

  encoder.Eval();
  tensor::NoGradGuard guard;
  tensor::ScratchArena arena;
  tensor::ScratchArena::Scope scope(&arena);
  core::Rng eval_rng(0);
  tensor::Tensor eval_h = encoder.Encode(ids, &eval_rng);
  EXPECT_FALSE(static_cast<bool>(eval_h.impl()->backward_fn));

  // With dropout at zero the two execution modes are numerically the same
  // computation; the refactor must keep them bitwise identical.
  ASSERT_EQ(train_h.numel(), eval_h.numel());
  for (int64_t i = 0; i < train_h.numel(); ++i) {
    EXPECT_EQ(train_h.data()[i], eval_h.data()[i]) << "element " << i;
  }
}

TEST(ExecutionModesTest, McDropoutStaysStochasticInEval) {
  core::Rng rng(31);
  em::FinetuneModel model(FixtureLM(), &rng);
  model.Eval();
  const EncodedPair x = SyntheticPairs(1, 17)[0];

  core::Rng mc_rng(5);
  const em::McEstimate est = em::McDropoutEstimate(&model, x, 12, &mc_rng);
  // The fixture encoder has dropout 0.1: passes must differ even though
  // the model sat in eval mode (ScopedTrainingMode re-enables dropout
  // under the scoring engine's NoGradGuard).
  EXPECT_GT(est.uncertainty, 0.0f);
  // The model's mode is restored afterwards...
  EXPECT_FALSE(model.training());
  // ...and plain eval scoring stays deterministic (rng never consulted).
  core::Rng ra(1), rb(2);
  const auto pa = model.Probs(x, &ra);
  const auto pb = model.Probs(x, &rb);
  EXPECT_EQ(pa[0], pb[0]);
  EXPECT_EQ(pa[1], pb[1]);
}

// ---------------------------------------------------------------------------
// Unified scoring engine parity.
// ---------------------------------------------------------------------------

void ExpectEngineMatchesSequential(em::PairClassifier* model,
                                   const std::vector<EncodedPair>& xs) {
  // The pre-refactor path: eval mode, one Probs call per sample.
  model->AsModule()->Eval();
  std::vector<em::ProbPair> sequential;
  core::Rng unused(0);
  sequential.reserve(xs.size());
  for (const auto& x : xs) sequential.push_back(model->Probs(x, &unused));

  for (int threads : {1, 3}) {
    core::SetNumThreads(threads);
    const std::vector<em::ProbPair> batched = em::ScoreBatch(model, xs);
    ASSERT_EQ(batched.size(), sequential.size());
    for (size_t i = 0; i < batched.size(); ++i) {
      EXPECT_EQ(batched[i][0], sequential[i][0]) << "sample " << i;
      EXPECT_EQ(batched[i][1], sequential[i][1]) << "sample " << i;
    }
  }
  core::SetNumThreads(0);
}

TEST(EngineParityTest, FinetuneModel) {
  core::Rng rng(41);
  em::FinetuneModel model(FixtureLM(), &rng);
  ExpectEngineMatchesSequential(&model, SyntheticPairs(13, 1));
}

TEST(EngineParityTest, PromptModel) {
  core::Rng rng(42);
  em::PromptModel model(FixtureLM(), em::PromptModelConfig{}, &rng);
  ExpectEngineMatchesSequential(&model, SyntheticPairs(13, 2));
}

TEST(EngineParityTest, SentenceBertModel) {
  core::Rng rng(43);
  baselines::SentenceBertModel model(FixtureLM(), &rng);
  ExpectEngineMatchesSequential(&model, SyntheticPairs(13, 3));
}

TEST(EngineParityTest, DeepMatcherModel) {
  core::Rng rng(44);
  baselines::DeepMatcherModel model(FixtureLM().vocab(), /*embed_dim=*/16,
                                    /*hidden_dim=*/16, &rng);
  ExpectEngineMatchesSequential(&model, SyntheticPairs(13, 4));
}

TEST(EngineParityTest, PredictionsIndependentOfPriorMode) {
  core::Rng rng(45);
  em::FinetuneModel model(FixtureLM(), &rng);
  const std::vector<EncodedPair> xs = SyntheticPairs(11, 5);

  model.Train();
  const std::vector<int> from_train_state = em::PredictLabels(&model, xs);
  EXPECT_FALSE(model.training());  // the engine switched it to eval
  const std::vector<int> from_eval_state = em::PredictLabels(&model, xs);
  EXPECT_EQ(from_train_state, from_eval_state);
}

TEST(EngineParityTest, TdMatchStarStableAcrossThreadCounts) {
  data::BenchmarkGenOptions small;
  small.size_scale = 0.3;
  data::GemDataset ds =
      data::GenerateBenchmark(data::BenchmarkKind::kRelHeter, 11, small);
  baselines::TdMatchGraph graph(ds);
  graph.ComputeAllEmbeddings();
  core::Rng rng(10);
  baselines::TdMatchStar star(&graph, /*embedding_dim=*/16, /*seed=*/42,
                              &rng);
  star.Train(ds.train, /*epochs=*/3, /*lr=*/5e-3f, &rng);

  core::SetNumThreads(1);
  const std::vector<int> single = star.Predict(ds.test);
  core::SetNumThreads(3);
  const std::vector<int> pooled = star.Predict(ds.test);
  core::SetNumThreads(0);
  EXPECT_EQ(single, pooled);
  EXPECT_EQ(single.size(), ds.test.size());
}

}  // namespace
}  // namespace promptem
