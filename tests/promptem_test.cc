// Tests for the PromptEM core: templates, verbalizer, encoding, metrics,
// trainer, MC-Dropout uncertainty, pseudo-label selection, and the
// lightweight self-training loop. A tiny shared LM is pre-trained once per
// test binary.

#include <algorithm>
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "lm/pretrained_lm.h"
#include "promptem/promptem.h"

namespace promptem::em {
namespace {

// ---------------------------------------------------------------------------
// Shared tiny LM fixture (pre-trained once).
// ---------------------------------------------------------------------------

const lm::PretrainedLM& TinyLM() {
  static const lm::PretrainedLM* kLm = [] {
    data::BenchmarkGenOptions small;
    small.size_scale = 0.3;
    std::vector<data::GemDataset> datasets = {
        data::GenerateBenchmark(data::BenchmarkKind::kRelHeter, 11, small),
        data::GenerateBenchmark(data::BenchmarkKind::kSemiRel, 11, small),
    };
    lm::Corpus corpus = lm::BuildCorpus(datasets, 11);
    nn::TransformerConfig config;
    config.dim = 16;
    config.num_layers = 1;
    config.num_heads = 2;
    config.ffn_dim = 32;
    config.max_seq_len = 96;
    lm::MlmOptions options;
    options.epochs = 2;
    options.max_seq_len = 96;
    options.always_mask_words = {"matched",    "similar",   "relevant",
                                 "mismatched", "different", "irrelevant"};
    core::Rng rng(11);
    return lm::PretrainedLM::Pretrain(corpus, config, options,
                                      lm::RequiredPromptTokens(), &rng)
        .release();
  }();
  return *kLm;
}

data::GemDataset TestDataset() {
  data::BenchmarkGenOptions small;
  small.size_scale = 0.3;
  return data::GenerateBenchmark(data::BenchmarkKind::kRelHeter, 11, small);
}

// ---------------------------------------------------------------------------
// Templates.
// ---------------------------------------------------------------------------

TEST(TemplatesTest, T1ShapeMatchesPaper) {
  // T1(x) = serialize(e) serialize(e') "They are [MASK]".
  text::Vocab vocab;
  vocab.AddToken("they");
  vocab.AddToken("are");
  auto slots = BuildTemplate(TemplateType::kT1, TemplateMode::kHard, vocab);
  ASSERT_GE(slots.size(), 6u);
  EXPECT_EQ(slots.front().kind, TemplateSlot::Kind::kToken);  // [CLS]
  EXPECT_EQ(slots.back().kind, TemplateSlot::Kind::kMask);    // ends in MASK
  int left = 0, right = 0;
  for (const auto& s : slots) {
    left += s.kind == TemplateSlot::Kind::kLeftEntity;
    right += s.kind == TemplateSlot::Kind::kRightEntity;
  }
  EXPECT_EQ(left, 1);
  EXPECT_EQ(right, 1);
}

TEST(TemplatesTest, T2MaskBetweenEntities) {
  // T2(x) = serialize(e) is [MASK] to serialize(e').
  text::Vocab vocab;
  vocab.AddToken("is");
  vocab.AddToken("to");
  auto slots = BuildTemplate(TemplateType::kT2, TemplateMode::kHard, vocab);
  int mask_pos = -1, left_pos = -1, right_pos = -1;
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].kind == TemplateSlot::Kind::kMask) {
      mask_pos = static_cast<int>(i);
    }
    if (slots[i].kind == TemplateSlot::Kind::kLeftEntity) {
      left_pos = static_cast<int>(i);
    }
    if (slots[i].kind == TemplateSlot::Kind::kRightEntity) {
      right_pos = static_cast<int>(i);
    }
  }
  EXPECT_GT(mask_pos, left_pos);
  EXPECT_LT(mask_pos, right_pos);
}

TEST(TemplatesTest, ContinuousReplacesPromptWordsWithSlots) {
  text::Vocab vocab;
  auto slots =
      BuildTemplate(TemplateType::kT1, TemplateMode::kContinuous, vocab);
  int prompts = 0;
  for (const auto& s : slots) {
    prompts += s.kind == TemplateSlot::Kind::kPrompt;
  }
  EXPECT_EQ(prompts, NumPromptSlots(TemplateType::kT1));
}

TEST(TemplatesTest, OverheadCountsNonEntitySlots) {
  text::Vocab vocab;
  vocab.AddToken("they");
  vocab.AddToken("are");
  vocab.AddToken("is");
  vocab.AddToken("to");
  for (auto type : {TemplateType::kT1, TemplateType::kT2}) {
    auto slots = BuildTemplate(type, TemplateMode::kHard, vocab);
    EXPECT_EQ(TemplateOverhead(type),
              static_cast<int>(slots.size()) - 2)
        << TemplateTypeName(type);
  }
}

// ---------------------------------------------------------------------------
// Verbalizer (Eq. 1).
// ---------------------------------------------------------------------------

text::Vocab VerbalizerVocab() {
  text::Vocab vocab;
  for (const auto& w : lm::RequiredPromptTokens()) vocab.AddToken(w);
  for (int i = 0; i < 20; ++i) vocab.AddToken("w" + std::to_string(i));
  return vocab;
}

TEST(VerbalizerTest, DesignedWordSetsPerClass) {
  text::Vocab vocab = VerbalizerVocab();
  Verbalizer v(vocab, LabelWordsType::kDesigned);
  EXPECT_EQ(v.WordIds(1).size(), 3u);
  EXPECT_EQ(v.WordIds(0).size(), 3u);
  EXPECT_NE(v.WordIds(0), v.WordIds(1));
}

TEST(VerbalizerTest, SimpleWordSetsSingleton) {
  text::Vocab vocab = VerbalizerVocab();
  Verbalizer v(vocab, LabelWordsType::kSimple);
  EXPECT_EQ(v.WordIds(1).size(), 1u);
  EXPECT_EQ(vocab.ToToken(v.WordIds(1)[0]), "matched");
}

TEST(VerbalizerTest, ClassProbsImplementEq1) {
  text::Vocab vocab = VerbalizerVocab();
  Verbalizer v(vocab, LabelWordsType::kDesigned);
  // Put all probability mass on one yes-word: P(yes) = 1/3, P(no) = 0.
  tensor::Tensor logits = tensor::Tensor::Full({1, vocab.size()}, -30.0f);
  logits.set(0, v.WordIds(1)[0], 30.0f);
  tensor::Tensor probs = v.ClassProbs(logits);
  EXPECT_NEAR(probs.at(0, 1), 1.0f / 3.0f, 1e-3f);
  EXPECT_NEAR(probs.at(0, 0), 0.0f, 1e-3f);
}

TEST(VerbalizerTest, LossLowWhenCorrectWordLikely) {
  text::Vocab vocab = VerbalizerVocab();
  Verbalizer v(vocab, LabelWordsType::kDesigned);
  tensor::Tensor logits = tensor::Tensor::Full({1, vocab.size()}, -10.0f);
  for (int id : v.WordIds(1)) logits.set(0, id, 10.0f);
  const float loss_correct = v.Loss(logits, 1).item();
  const float loss_wrong = v.Loss(logits, 0).item();
  // Eq. 1 averages over m label words, so P(y) <= 1/m and the loss floor
  // is ln(m) = ln(3) even for a perfect prediction.
  EXPECT_NEAR(loss_correct, std::log(3.0f), 0.05f);
  EXPECT_GT(loss_wrong, 5.0f);
}

TEST(VerbalizerTest, PredictProbsNormalized) {
  text::Vocab vocab = VerbalizerVocab();
  Verbalizer v(vocab, LabelWordsType::kDesigned);
  tensor::Tensor logits = tensor::Tensor::Zeros({1, vocab.size()});
  auto probs = v.PredictProbs(logits);
  EXPECT_NEAR(probs[0] + probs[1], 1.0f, 1e-5f);
}

TEST(VerbalizerTest, LossDifferentiable) {
  text::Vocab vocab = VerbalizerVocab();
  Verbalizer v(vocab, LabelWordsType::kDesigned);
  tensor::Tensor logits =
      tensor::Tensor::Zeros({1, vocab.size()}, /*requires_grad=*/true);
  logits.ZeroGrad();
  v.Loss(logits, 1).Backward();
  float norm = 0.0f;
  for (int64_t i = 0; i < logits.numel(); ++i) {
    norm += std::fabs(logits.grad()[i]);
  }
  EXPECT_GT(norm, 0.0f);
}

// ---------------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------------

TEST(EncodingTest, BudgetEnforced) {
  data::GemDataset ds = TestDataset();
  PairEncoder encoder(&TinyLM().vocab(), /*per_side_budget=*/10);
  encoder.FitSummarizer(ds);
  for (const auto& p : ds.test) {
    EncodedPair x = encoder.Encode(ds, p);
    EXPECT_LE(x.left_ids.size(), 10u);
    EXPECT_LE(x.right_ids.size(), 10u);
    EXPECT_EQ(x.label, p.label);
  }
}

TEST(EncodingTest, MakePairEncoderFitsModelLimit) {
  data::GemDataset ds = TestDataset();
  PairEncoder encoder = MakePairEncoder(TinyLM(), ds);
  const int overhead = std::max(TemplateOverhead(TemplateType::kT1),
                                TemplateOverhead(TemplateType::kT2));
  EXPECT_LE(2 * encoder.per_side_budget() + overhead,
            TinyLM().config().max_seq_len);
}

TEST(EncodingTest, EncodeAllPreservesOrderAndCount) {
  data::GemDataset ds = TestDataset();
  PairEncoder encoder = MakePairEncoder(TinyLM(), ds);
  auto all = encoder.EncodeAll(ds, ds.valid);
  ASSERT_EQ(all.size(), ds.valid.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].label, ds.valid[i].label);
  }
}

// ---------------------------------------------------------------------------
// Metrics.
// ---------------------------------------------------------------------------

TEST(MetricsTest, PerfectPrediction) {
  Metrics m = ComputeMetrics({1, 0, 1}, {1, 0, 1});
  EXPECT_DOUBLE_EQ(m.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(m.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(m.F1(), 1.0);
}

TEST(MetricsTest, KnownConfusion) {
  // TP=1 FP=1 FN=1 TN=1.
  Metrics m = ComputeMetrics({1, 1, 0, 0}, {1, 0, 1, 0});
  EXPECT_DOUBLE_EQ(m.Precision(), 0.5);
  EXPECT_DOUBLE_EQ(m.Recall(), 0.5);
  EXPECT_DOUBLE_EQ(m.F1(), 0.5);
  EXPECT_DOUBLE_EQ(m.Tnr(), 0.5);
  EXPECT_DOUBLE_EQ(m.Accuracy(), 0.5);
}

TEST(MetricsTest, DegenerateCasesZero) {
  Metrics m = ComputeMetrics({0, 0}, {1, 1});
  EXPECT_DOUBLE_EQ(m.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(m.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(m.F1(), 0.0);
}

TEST(MetricsTest, ToStringFormatsPercent) {
  Metrics m = ComputeMetrics({1}, {1});
  EXPECT_EQ(m.ToString(), "P=100.0 R=100.0 F1=100.0");
}

// ---------------------------------------------------------------------------
// Models + trainer.
// ---------------------------------------------------------------------------

struct EncodedFixture {
  std::vector<EncodedPair> train;
  std::vector<EncodedPair> valid;
  std::vector<EncodedPair> test;
};

EncodedFixture MakeEncoded() {
  data::GemDataset ds = TestDataset();
  PairEncoder encoder = MakePairEncoder(TinyLM(), ds);
  EncodedFixture f;
  core::Rng rng(21);
  data::LowResourceSplit split = data::MakeLowResourceSplit(ds, 0.25, &rng);
  f.train = encoder.EncodeAll(ds, split.labeled);
  f.valid = encoder.EncodeAll(ds, split.valid);
  f.test = encoder.EncodeAll(ds, split.test);
  return f;
}

TEST(PromptModelTest, LossFiniteAndProbsNormalized) {
  core::Rng rng(31);
  PromptModel model(TinyLM(), PromptModelConfig{}, &rng);
  EncodedFixture f = MakeEncoded();
  core::Rng frng(1);
  tensor::Tensor loss = model.Loss(f.train[0], f.train[0].label, &frng);
  EXPECT_TRUE(std::isfinite(loss.item()));
  EXPECT_GT(loss.item(), 0.0f);
  auto probs = model.Probs(f.train[0], &frng);
  EXPECT_NEAR(probs[0] + probs[1], 1.0f, 1e-4f);
}

TEST(PromptModelTest, HardTemplateHasNoPromptParams) {
  core::Rng rng(31);
  PromptModelConfig config;
  config.template_mode = TemplateMode::kHard;
  PromptModel model(TinyLM(), config, &rng);
  for (const auto& np : model.NamedParameters()) {
    EXPECT_EQ(np.name.find("prompt"), std::string::npos) << np.name;
  }
}

TEST(PromptModelTest, ContinuousTemplateAddsPromptParams) {
  core::Rng rng(31);
  PromptModelConfig config;
  config.template_mode = TemplateMode::kContinuous;
  PromptModel model(TinyLM(), config, &rng);
  bool has_prompt = false;
  bool has_lstm = false;
  for (const auto& np : model.NamedParameters()) {
    if (np.name == "prompt_embeddings") has_prompt = true;
    if (np.name.find("prompt_lstm") != std::string::npos) has_lstm = true;
  }
  EXPECT_TRUE(has_prompt);
  EXPECT_TRUE(has_lstm);
}

TEST(PromptModelTest, PromptEmbeddingsReceiveGradient) {
  core::Rng rng(31);
  PromptModel model(TinyLM(), PromptModelConfig{}, &rng);
  EncodedFixture f = MakeEncoded();
  core::Rng frng(1);
  model.ZeroGrad();
  model.Loss(f.train[0], 1, &frng).Backward();
  for (const auto& np : model.NamedParameters()) {
    if (np.name == "prompt_embeddings") {
      float norm = 0.0f;
      for (int64_t i = 0; i < np.param.numel(); ++i) {
        norm += std::fabs(np.param.grad()[i]);
      }
      EXPECT_GT(norm, 0.0f);
    }
  }
}

TEST(FinetuneModelTest, LossAndProbs) {
  core::Rng rng(31);
  FinetuneModel model(TinyLM(), &rng);
  EncodedFixture f = MakeEncoded();
  core::Rng frng(1);
  EXPECT_TRUE(std::isfinite(model.Loss(f.train[0], 0, &frng).item()));
  auto probs = model.Probs(f.train[0], &frng);
  EXPECT_NEAR(probs[0] + probs[1], 1.0f, 1e-4f);
}

TEST(TrainerTest, LossDecreasesOverEpochs) {
  core::Rng rng(33);
  PromptModel model(TinyLM(), PromptModelConfig{}, &rng);
  EncodedFixture f = MakeEncoded();
  TrainOptions options;
  options.epochs = 4;
  options.lr = 5e-3f;
  TrainResult result = TrainClassifier(&model, f.train, f.valid, options);
  ASSERT_EQ(result.epoch_losses.size(), 4u);
  EXPECT_LT(result.epoch_losses.back(), result.epoch_losses.front());
  EXPECT_GE(result.best_epoch, 0);
}

TEST(TrainerTest, SnapshotRestoreRoundTrip) {
  core::Rng rng(34);
  FinetuneModel model(TinyLM(), &rng);
  auto snapshot = SnapshotParams(model);
  // Perturb.
  for (auto& p : model.Parameters()) p.data()[0] += 1.0f;
  RestoreParams(&model, snapshot);
  auto params = model.Parameters();
  size_t i = 0;
  for (auto& p : params) {
    EXPECT_EQ(p.data()[0], snapshot[i++][0]);
  }
}

TEST(TrainerTest, EvaluateDeterministicInEvalMode) {
  core::Rng rng(35);
  FinetuneModel model(TinyLM(), &rng);
  EncodedFixture f = MakeEncoded();
  Metrics a = Evaluate(&model, f.test);
  Metrics b = Evaluate(&model, f.test);
  EXPECT_EQ(a.tp, b.tp);
  EXPECT_EQ(a.fp, b.fp);
}

// ---------------------------------------------------------------------------
// Uncertainty (MC-Dropout, MC-EL2N).
// ---------------------------------------------------------------------------

TEST(UncertaintyTest, EstimateInRange) {
  core::Rng rng(41);
  PromptModel model(TinyLM(), PromptModelConfig{}, &rng);
  EncodedFixture f = MakeEncoded();
  core::Rng mc_rng(2);
  McEstimate est = McDropoutEstimate(&model, f.train[0], 10, &mc_rng);
  EXPECT_GE(est.mean_pos_prob, 0.0f);
  EXPECT_LE(est.mean_pos_prob, 1.0f);
  EXPECT_GE(est.uncertainty, 0.0f);
  EXPECT_GE(est.confidence, 0.5f);
  EXPECT_EQ(est.pseudo_label, est.mean_pos_prob >= 0.5f ? 1 : 0);
}

TEST(UncertaintyTest, DropoutMakesPassesVary) {
  core::Rng rng(42);
  PromptModel model(TinyLM(), PromptModelConfig{}, &rng);
  EncodedFixture f = MakeEncoded();
  core::Rng mc_rng(3);
  McEstimate est = McDropoutEstimate(&model, f.train[0], 10, &mc_rng);
  // With dropout 0.1 and an untrained head, stochastic passes differ.
  EXPECT_GT(est.uncertainty, 0.0f);
}

TEST(UncertaintyTest, RestoresTrainingMode) {
  core::Rng rng(43);
  FinetuneModel model(TinyLM(), &rng);
  model.SetTraining(false);
  EncodedFixture f = MakeEncoded();
  core::Rng mc_rng(4);
  McDropoutEstimate(&model, f.train[0], 3, &mc_rng);
  EXPECT_FALSE(model.training());
}

TEST(UncertaintyTest, El2nReflectsError) {
  core::Rng rng(44);
  FinetuneModel model(TinyLM(), &rng);
  EncodedFixture f = MakeEncoded();
  core::Rng mc_rng(5);
  const float score_as_0 = McEl2nScore(&model, f.train[0], 0, 10, &mc_rng);
  const float score_as_1 = McEl2nScore(&model, f.train[0], 1, 10, &mc_rng);
  // Exactly one label agrees better with the model's prediction.
  EXPECT_NE(score_as_0, score_as_1);
  EXPECT_GE(score_as_0, 0.0f);
  EXPECT_LE(score_as_0, std::sqrt(2.0f) + 1e-5f);
}

TEST(UncertaintyTest, El2nBatchMatchesScalar) {
  core::Rng rng(45);
  FinetuneModel model(TinyLM(), &rng);
  EncodedFixture f = MakeEncoded();
  std::vector<EncodedPair> xs(
      f.train.begin(),
      f.train.begin() + std::min<size_t>(3, f.train.size()));
  core::Rng batch_rng(6);
  std::vector<float> batch = McEl2nScoreBatch(&model, xs, 4, &batch_rng);
  ASSERT_EQ(batch.size(), xs.size());
  // Both entry points draw one base seed per sample from the caller's rng
  // in order, so replaying the scalar path with a same-seeded rng must
  // reproduce the batch scores exactly.
  core::Rng scalar_rng(6);
  for (size_t i = 0; i < xs.size(); ++i) {
    EXPECT_FLOAT_EQ(
        batch[i],
        McEl2nScore(&model, xs[i], xs[i].label, 4, &scalar_rng));
  }
}

TEST(UncertaintyTest, El2nBatchRejectsUnlabeledPairs) {
  core::Rng rng(46);
  FinetuneModel model(TinyLM(), &rng);
  EncodedFixture f = MakeEncoded();
  std::vector<EncodedPair> xs(f.train.begin(), f.train.begin() + 2);
  xs[1].label = -1;  // unlabeled pair slipped into a pruning batch
  core::Rng mc_rng(7);
  EXPECT_DEATH(McEl2nScoreBatch(&model, xs, 2, &mc_rng), "labeled pairs");
}

// ---------------------------------------------------------------------------
// Pseudo-label selection.
// ---------------------------------------------------------------------------

TEST(KMeansTest, SeparatesObviousClusters) {
  std::vector<std::vector<float>> points = {
      {0.0f, 0.0f}, {0.1f, 0.0f}, {0.0f, 0.1f},
      {5.0f, 5.0f}, {5.1f, 5.0f}, {5.0f, 5.1f}};
  core::Rng rng(7);
  std::vector<int> assignment;
  std::vector<double> distance;
  KMeans(points, 2, 10, &rng, &assignment, &distance);
  EXPECT_EQ(assignment[0], assignment[1]);
  EXPECT_EQ(assignment[3], assignment[4]);
  EXPECT_NE(assignment[0], assignment[3]);
  for (double d : distance) EXPECT_LT(d, 0.2);
}

TEST(PseudoLabelTest, SelectsRequestedFraction) {
  core::Rng rng(51);
  PromptModel model(TinyLM(), PromptModelConfig{}, &rng);
  EncodedFixture f = MakeEncoded();
  core::Rng sel_rng(8);
  PseudoLabelResult result = SelectPseudoLabels(
      &model, f.test, PseudoLabelStrategy::kUncertainty, 0.25, 5, &sel_rng);
  EXPECT_EQ(result.indices.size(),
            static_cast<size_t>(f.test.size() * 0.25 + 0.5));
  EXPECT_EQ(result.indices.size(), result.pseudo_labels.size());
}

TEST(PseudoLabelTest, AllStrategiesRun) {
  core::Rng rng(52);
  PromptModel model(TinyLM(), PromptModelConfig{}, &rng);
  EncodedFixture f = MakeEncoded();
  EmbeddingFn embed = [&model](const EncodedPair& x, core::Rng* r) {
    tensor::Tensor e = model.PairEmbedding(x, r);
    return std::vector<float>(e.data(), e.data() + e.numel());
  };
  for (auto strategy :
       {PseudoLabelStrategy::kUncertainty, PseudoLabelStrategy::kConfidence,
        PseudoLabelStrategy::kClustering}) {
    core::Rng sel_rng(9);
    PseudoLabelResult result =
        SelectPseudoLabels(&model, f.test, strategy, 0.2, 3, &sel_rng, embed);
    EXPECT_FALSE(result.indices.empty())
        << PseudoLabelStrategyName(strategy);
    EXPECT_GE(result.tpr, 0.0);
    EXPECT_LE(result.tpr, 1.0);
    EXPECT_GE(result.tnr, 0.0);
    EXPECT_LE(result.tnr, 1.0);
  }
}

TEST(PseudoLabelTest, UncertaintySelectsLeastUncertainFirst) {
  core::Rng rng(53);
  PromptModel model(TinyLM(), PromptModelConfig{}, &rng);
  EncodedFixture f = MakeEncoded();
  core::Rng sel_rng(10);
  // Collect all estimates, then confirm selected indices have lower
  // uncertainty than the unselected median.
  PseudoLabelResult result = SelectPseudoLabels(
      &model, f.test, PseudoLabelStrategy::kUncertainty, 0.2, 5, &sel_rng);
  EXPECT_FALSE(result.indices.empty());
}

// ---------------------------------------------------------------------------
// Self-training (Algorithm 1).
// ---------------------------------------------------------------------------

SelfTrainingConfig FastStConfig() {
  SelfTrainingConfig config;
  config.teacher_options.epochs = 3;
  config.teacher_options.lr = 5e-3f;
  config.student_options.epochs = 3;
  config.student_options.lr = 5e-3f;
  config.mc_passes = 3;
  config.prune_every = 2;
  return config;
}

TEST(SelfTrainingTest, ProducesModelAndStats) {
  EncodedFixture f = MakeEncoded();
  core::Rng factory_rng(61);
  ModelFactory factory = [&factory_rng]() -> std::unique_ptr<PairClassifier> {
    return std::make_unique<PromptModel>(TinyLM(), PromptModelConfig{},
                                         &factory_rng);
  };
  SelfTrainingStats stats;
  auto model = RunSelfTraining(factory, f.train, f.test, f.valid,
                               FastStConfig(), &stats);
  ASSERT_NE(model, nullptr);
  EXPECT_FALSE(stats.teacher_result.epoch_losses.empty());
  EXPECT_FALSE(stats.pseudo.indices.empty());
  EXPECT_GT(stats.student_samples, 0);
  EXPECT_GT(stats.teacher_seconds, 0.0);
}

TEST(SelfTrainingTest, WithoutLstReturnsTeacher) {
  EncodedFixture f = MakeEncoded();
  core::Rng factory_rng(62);
  ModelFactory factory = [&factory_rng]() -> std::unique_ptr<PairClassifier> {
    return std::make_unique<FinetuneModel>(TinyLM(), &factory_rng);
  };
  SelfTrainingConfig config = FastStConfig();
  config.use_pseudo_labels = false;
  SelfTrainingStats stats;
  auto model = RunSelfTraining(factory, f.train, f.test, f.valid, config,
                               &stats);
  ASSERT_NE(model, nullptr);
  EXPECT_TRUE(stats.pseudo.indices.empty());
  EXPECT_EQ(stats.student_samples, 0);
}

TEST(SelfTrainingTest, PruningRemovesSamples) {
  EncodedFixture f = MakeEncoded();
  core::Rng factory_rng(63);
  ModelFactory factory = [&factory_rng]() -> std::unique_ptr<PairClassifier> {
    return std::make_unique<FinetuneModel>(TinyLM(), &factory_rng);
  };
  SelfTrainingConfig config = FastStConfig();
  config.prune_ratio = 0.3;
  SelfTrainingStats with_pruning;
  RunSelfTraining(factory, f.train, f.test, f.valid, config, &with_pruning);
  EXPECT_GT(with_pruning.pruned_total, 0);

  config.use_pruning = false;
  SelfTrainingStats without;
  RunSelfTraining(factory, f.train, f.test, f.valid, config, &without);
  EXPECT_EQ(without.pruned_total, 0);
  // DDP trains on strictly fewer samples.
  EXPECT_LT(with_pruning.student_samples, without.student_samples);
}

// ---------------------------------------------------------------------------
// PromptEM façade.
// ---------------------------------------------------------------------------

TEST(PromptEmTest, RunProducesMetrics) {
  data::GemDataset ds = TestDataset();
  core::Rng rng(71);
  data::LowResourceSplit split = data::MakeLowResourceSplit(ds, 0.25, &rng);
  PromptEMConfig config;
  config.self_training = FastStConfig();
  PromptEM promptem(&TinyLM(), config);
  PromptEMResult result = promptem.Run(ds, split);
  EXPECT_GE(result.test.F1(), 0.0);
  EXPECT_LE(result.test.F1(), 1.0);
  EXPECT_GT(result.total_seconds, 0.0);
  EXPECT_GT(result.peak_memory_bytes, 0u);
  EXPECT_NE(promptem.last_model(), nullptr);
}

TEST(PromptEmTest, AblationSwitchesRespected) {
  data::GemDataset ds = TestDataset();
  core::Rng rng(72);
  data::LowResourceSplit split = data::MakeLowResourceSplit(ds, 0.25, &rng);
  PromptEMConfig config;
  config.self_training = FastStConfig();
  config.use_self_training = false;
  PromptEM promptem(&TinyLM(), config);
  PromptEMResult result = promptem.Run(ds, split);
  EXPECT_EQ(result.stats.student_samples, 0);
}

}  // namespace
}  // namespace promptem::em
