// Tests for the core substrate: status/result, rng, strings, formatting,
// memory tracking, and table printing.

#include <set>

#include <gtest/gtest.h>

#include "core/mem_tracker.h"
#include "core/rng.h"
#include "core/status.h"
#include "core/string_util.h"
#include "core/table_printer.h"
#include "core/timer.h"

namespace promptem::core {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad shape");
}

TEST(StatusTest, AllCodesHaveNames) {
  const StatusCode codes[] = {
      StatusCode::kOk,          StatusCode::kInvalidArgument,
      StatusCode::kNotFound,    StatusCode::kOutOfRange,
      StatusCode::kFailedPrecondition, StatusCode::kInternal,
      StatusCode::kIOError,     StatusCode::kUnimplemented};
  for (StatusCode code : codes) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 4);
}

TEST(RngTest, BoundedDrawInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextU64(10), 10u);
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, FloatInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const float f = rng.NextFloat();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const float g = rng.Gaussian();
    sum += g;
    sq += static_cast<double>(g) * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(15);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  EXPECT_EQ(std::set<int>(v.begin(), v.end()),
            std::set<int>(original.begin(), original.end()));
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[2], counts[1]);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(19);
  Rng child = a.Fork();
  EXPECT_NE(a.NextU64(), child.NextU64());
}

TEST(StringUtilTest, SplitAndJoin) {
  auto parts = SplitString("a b\tc\nd");
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(JoinStrings(parts, "-"), "a-b-c-d");
}

TEST(StringUtilTest, SplitDropsEmptyPieces) {
  EXPECT_EQ(SplitString("  a   b  ").size(), 2u);
  EXPECT_TRUE(SplitString("   ").empty());
}

TEST(StringUtilTest, ToLowerTrim) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(Trim("  hi \n"), "hi");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, DigitsAndAffixes) {
  EXPECT_TRUE(IsAllDigits("0123"));
  EXPECT_FALSE(IsAllDigits("12a"));
  EXPECT_FALSE(IsAllDigits(""));
  EXPECT_TRUE(StartsWith("promptem", "prom"));
  EXPECT_TRUE(EndsWith("promptem", "tem"));
  EXPECT_FALSE(StartsWith("p", "prom"));
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a,b,,c", ",", ";"), "a;b;;c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
}

TEST(StringUtilTest, EditDistance) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("same", "same"), 0u);
}

TEST(StringUtilTest, TokenJaccard) {
  EXPECT_DOUBLE_EQ(TokenJaccard("a b c", "a b c"), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("a b", "c d"), 0.0);
  EXPECT_NEAR(TokenJaccard("a b c", "b c d"), 0.5, 1e-9);
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.234), "1.23");
}

TEST(StringUtilTest, ParseInt64AcceptsOnlyCompleteLiterals) {
  long long value = 0;
  EXPECT_TRUE(ParseInt64("42", &value));
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(ParseInt64("-7", &value));
  EXPECT_EQ(value, -7);
  EXPECT_TRUE(ParseInt64("0", &value));
  EXPECT_EQ(value, 0);
  for (const char* bad : {"", " ", "12x", "x12", "1.5", "1e3", "0.1",
                          "--3", "nan", "99999999999999999999"}) {
    EXPECT_FALSE(ParseInt64(bad, &value)) << '"' << bad << '"';
  }
}

TEST(StringUtilTest, ParseFiniteDoubleRejectsNanAndInf) {
  double value = 0.0;
  EXPECT_TRUE(ParseFiniteDouble("0.25", &value));
  EXPECT_DOUBLE_EQ(value, 0.25);
  EXPECT_TRUE(ParseFiniteDouble("-1e-3", &value));
  EXPECT_DOUBLE_EQ(value, -1e-3);
  // The atof hole these exist to close: strtod happily reads nan/inf,
  // and every range check ('nan <= 0', 'nan > 1') is false — the value
  // would sail through flag validation and poison later comparisons.
  for (const char* bad : {"nan", "NaN", "-nan", "inf", "Infinity", "-inf",
                          "", " ", "0.1x", "x0.1", "1..2", "1e999"}) {
    EXPECT_FALSE(ParseFiniteDouble(bad, &value)) << '"' << bad << '"';
  }
}

TEST(TimerTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(26.64), "26.6s");
  EXPECT_EQ(FormatDuration(444.0), "7.4m");
  EXPECT_EQ(FormatDuration(183600.0), "51.0h");
}

TEST(TimerTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(29200000000ull), "29.2G");
  EXPECT_EQ(FormatBytes(105300000ull), "105.3M");
  EXPECT_EQ(FormatBytes(1500), "1.5K");
  EXPECT_EQ(FormatBytes(12), "12B");
}

TEST(TimerTest, ElapsedMonotonic) {
  Timer t;
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
}

TEST(MemTrackerTest, TracksPeak) {
  MemTracker::ResetPeak();
  const size_t base = MemTracker::CurrentBytes();
  MemTracker::Add(1000);
  MemTracker::Add(500);
  EXPECT_EQ(MemTracker::CurrentBytes(), base + 1500);
  MemTracker::Sub(1400);
  EXPECT_EQ(MemTracker::CurrentBytes(), base + 100);
  EXPECT_GE(MemTracker::PeakBytes(), base + 1500);
  MemTracker::Sub(100);
}

TEST(MemTrackerTest, ScopedPeakResets) {
  MemTracker::Add(64);
  {
    ScopedPeakMemory scope;
    MemTracker::Add(128);
    MemTracker::Sub(128);
    EXPECT_GE(scope.Peak(), MemTracker::CurrentBytes() + 128);
  }
  MemTracker::Sub(64);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "f1"});
  t.AddRow({"PromptEM", "94.2"});
  t.AddRow({"BERT", "91.6"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("PromptEM"), std::string::npos);
  EXPECT_NE(s.find("| name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|-"), std::string::npos);
}

TEST(TablePrinterTest, PctFormatsOneDecimal) {
  EXPECT_EQ(TablePrinter::Pct(0.9415), "94.2");
  EXPECT_EQ(TablePrinter::Pct(1.0), "100.0");
}

TEST(TablePrinterTest, CsvEscapesCommas) {
  TablePrinter t({"a"});
  t.AddRow({"x,y"});
  EXPECT_EQ(t.ToCsv(), "a\n\"x,y\"\n");
}

}  // namespace
}  // namespace promptem::core
