// Tests for the entity model, the §2.2 serializer, dataset splitting, and
// the eight benchmark generators (parameterized).

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "data/dataset.h"
#include "data/record.h"
#include "data/serializer.h"

namespace promptem::data {
namespace {

TEST(ValueTest, Kinds) {
  EXPECT_TRUE(Value::Str("x").is_string());
  EXPECT_TRUE(Value::Num(3).is_number());
  EXPECT_TRUE(Value::List({}).is_list());
  EXPECT_TRUE(Value::Object({}).is_object());
}

TEST(ValueTest, NumberFormatting) {
  EXPECT_EQ(Value::Num(2003).NumberToString(), "2003");
  EXPECT_EQ(Value::Num(4.5).NumberToString(), "4.5");
  EXPECT_EQ(Value::Num(-7).NumberToString(), "-7");
}

TEST(RecordTest, NumAttrs) {
  Record rel = Record::Relational({{"a", Value::Num(1)}});
  EXPECT_EQ(rel.NumAttrs(), 1);
  Record text = Record::Textual("hello world");
  EXPECT_EQ(text.NumAttrs(), 1);  // Table 1 convention for text tables
}

TEST(RecordTest, FindAttr) {
  Record r = Record::Relational(
      {{"a", Value::Num(1)}, {"b", Value::Str("x")}});
  ASSERT_NE(r.Find("b"), nullptr);
  EXPECT_EQ(r.Find("b")->as_string(), "x");
  EXPECT_EQ(r.Find("zz"), nullptr);
}

TEST(RecordTest, ValidateRelationalRejectsNested) {
  Record r = Record::Relational({{"a", Value::List({Value::Num(1)})}});
  EXPECT_FALSE(ValidateRecord(r).ok());
}

TEST(RecordTest, ValidateTextualRejectsAttrs) {
  Record r = Record::Textual("t");
  r.attrs.emplace_back("a", Value::Num(1));
  EXPECT_FALSE(ValidateRecord(r).ok());
}

TEST(RecordTest, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(ValidateRecord(Record::Textual("abc")).ok());
  EXPECT_TRUE(ValidateRecord(Record::Relational(
                                 {{"year", Value::Num(2003)}}))
                  .ok());
  EXPECT_TRUE(ValidateRecord(Record::SemiStructured(
                                 {{"authors",
                                   Value::List({Value::Str("a")})}}))
                  .ok());
}

// --- Serializer: the paper's §2.2 examples ---

TEST(SerializerTest, RelationalMatchesPaperFormat) {
  Record r = Record::Relational({{"title", Value::Str("efficient similarity")},
                                 {"venue", Value::Str("sigmod")},
                                 {"year", Value::Num(2003)}});
  EXPECT_EQ(SerializeRecord(r),
            "[COL] title [VAL] efficient similarity "
            "[COL] venue [VAL] sigmod [COL] year [VAL] 2003");
}

TEST(SerializerTest, ListConcatenatedIntoOneString) {
  // §2.2 rule (ii): list elements joined into one string.
  Record r = Record::SemiStructured(
      {{"authors", Value::List({Value::Str("ronald fagin"),
                                Value::Str("ravi kumar")})}});
  EXPECT_EQ(SerializeRecord(r),
            "[COL] authors [VAL] ronald fagin ravi kumar");
}

TEST(SerializerTest, NestedObjectRecursesWithTags) {
  // §2.2 rule (i): nested attributes get [COL]/[VAL] at each level.
  Record r = Record::SemiStructured(
      {{"credits",
        Value::Object({{"director", Value::Str("jane")},
                       {"studio", Value::Str("acme")}})}});
  EXPECT_EQ(SerializeRecord(r),
            "[COL] credits [VAL] [COL] director [VAL] jane "
            "[COL] studio [VAL] acme");
}

TEST(SerializerTest, TextualIsPassthrough) {
  EXPECT_EQ(SerializeRecord(Record::Textual("we study matching")),
            "we study matching");
}

TEST(SerializerTest, EmptyValueStaysTagged) {
  Record r = Record::Relational({{"note", Value::Str("")}});
  EXPECT_EQ(SerializeRecord(r), "[COL] note [VAL]");
}

TEST(SerializerTest, PairUsesClsSep) {
  Record a = Record::Textual("left");
  Record b = Record::Textual("right");
  EXPECT_EQ(SerializePair(a, b), "[CLS] left [SEP] right [SEP]");
}

// --- Dataset splitting ---

GemDataset TinyDataset(int n, double pos_rate) {
  GemDataset ds;
  ds.name = "tiny";
  for (int i = 0; i < n; ++i) {
    ds.left_table.push_back(Record::Textual("l" + std::to_string(i)));
    ds.right_table.push_back(Record::Textual("r" + std::to_string(i)));
    ds.train.push_back(
        {i, i, i < static_cast<int>(n * pos_rate) ? 1 : 0});
  }
  ds.valid = {{0, 0, 1}};
  ds.test = {{1, 1, 0}};
  return ds;
}

TEST(DatasetTest, LowResourceSplitSizes) {
  GemDataset ds = TinyDataset(100, 0.3);
  core::Rng rng(1);
  LowResourceSplit split = MakeLowResourceSplit(ds, 0.10, &rng);
  // Budget = rate * TotalLabeled = 0.1 * 102 = 10.
  EXPECT_EQ(split.labeled.size(), 10u);
  EXPECT_EQ(split.labeled.size() + split.unlabeled.size(), 100u);
}

TEST(DatasetTest, StratificationKeepsBothClasses) {
  GemDataset ds = TinyDataset(100, 0.3);
  core::Rng rng(2);
  LowResourceSplit split = MakeLowResourceSplit(ds, 0.10, &rng);
  const double rate = PositiveRate(split.labeled);
  EXPECT_GT(rate, 0.0);
  EXPECT_LT(rate, 1.0);
  EXPECT_NEAR(rate, 0.3, 0.15);
}

TEST(DatasetTest, CountSplitExactCount) {
  GemDataset ds = TinyDataset(100, 0.3);
  core::Rng rng(3);
  LowResourceSplit split = MakeCountSplit(ds, 14, &rng);
  EXPECT_EQ(split.labeled.size(), 14u);
}

TEST(DatasetTest, CountSplitClampsToTrainSize) {
  GemDataset ds = TinyDataset(10, 0.5);
  core::Rng rng(4);
  LowResourceSplit split = MakeCountSplit(ds, 999, &rng);
  EXPECT_EQ(split.labeled.size(), 10u);
  EXPECT_TRUE(split.unlabeled.empty());
}

TEST(DatasetTest, PositiveRateComputation) {
  EXPECT_DOUBLE_EQ(PositiveRate({}), 0.0);
  EXPECT_DOUBLE_EQ(PositiveRate({{0, 0, 1}, {0, 0, 0}}), 0.5);
}

TEST(DatasetTest, MeanAttrs) {
  std::vector<Record> table = {
      Record::Relational({{"a", Value::Num(1)}, {"b", Value::Num(2)}}),
      Record::Textual("x")};
  EXPECT_DOUBLE_EQ(GemDataset::MeanAttrs(table), 1.5);
}

// --- Benchmark generators (parameterized over all eight) ---

class BenchmarkGenTest : public ::testing::TestWithParam<BenchmarkKind> {};

TEST_P(BenchmarkGenTest, TablesNonEmptyAndValid) {
  GemDataset ds = GenerateBenchmark(GetParam(), 99);
  EXPECT_FALSE(ds.left_table.empty());
  EXPECT_FALSE(ds.right_table.empty());
  for (const auto& r : ds.left_table) {
    EXPECT_TRUE(ValidateRecord(r).ok()) << ds.name;
  }
  for (const auto& r : ds.right_table) {
    EXPECT_TRUE(ValidateRecord(r).ok()) << ds.name;
  }
}

TEST_P(BenchmarkGenTest, SplitsPopulatedAndIndicesInRange) {
  GemDataset ds = GenerateBenchmark(GetParam(), 99);
  EXPECT_GT(ds.train.size(), ds.valid.size());
  EXPECT_FALSE(ds.valid.empty());
  EXPECT_FALSE(ds.test.empty());
  auto check = [&](const std::vector<PairExample>& pairs) {
    for (const auto& p : pairs) {
      ASSERT_GE(p.left_index, 0);
      ASSERT_LT(p.left_index, static_cast<int>(ds.left_table.size()));
      ASSERT_GE(p.right_index, 0);
      ASSERT_LT(p.right_index, static_cast<int>(ds.right_table.size()));
      ASSERT_TRUE(p.label == 0 || p.label == 1);
    }
  };
  check(ds.train);
  check(ds.valid);
  check(ds.test);
}

TEST_P(BenchmarkGenTest, DeterministicPerSeed) {
  GemDataset a = GenerateBenchmark(GetParam(), 123);
  GemDataset b = GenerateBenchmark(GetParam(), 123);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].left_index, b.train[i].left_index);
    EXPECT_EQ(a.train[i].label, b.train[i].label);
  }
  ASSERT_EQ(a.left_table.size(), b.left_table.size());
  EXPECT_EQ(SerializeRecord(a.left_table[0]),
            SerializeRecord(b.left_table[0]));
}

TEST_P(BenchmarkGenTest, DifferentSeedsDiffer) {
  GemDataset a = GenerateBenchmark(GetParam(), 1);
  GemDataset b = GenerateBenchmark(GetParam(), 2);
  EXPECT_NE(SerializeRecord(a.left_table[0]),
            SerializeRecord(b.left_table[0]));
}

TEST_P(BenchmarkGenTest, PositiveRateReasonable) {
  GemDataset ds = GenerateBenchmark(GetParam(), 99);
  std::vector<PairExample> all = ds.train;
  all.insert(all.end(), ds.valid.begin(), ds.valid.end());
  all.insert(all.end(), ds.test.begin(), ds.test.end());
  const double rate = PositiveRate(all);
  EXPECT_GT(rate, 0.2);
  EXPECT_LT(rate, 0.45);
}

TEST_P(BenchmarkGenTest, PositivesShareEntity) {
  GemDataset ds = GenerateBenchmark(GetParam(), 99);
  for (const auto& p : ds.train) {
    if (p.label == 1) {
      // Generator renders matching rows at equal indices.
      EXPECT_EQ(p.left_index, p.right_index);
    }
  }
}

TEST_P(BenchmarkGenTest, SizeScaleGrowsTables) {
  BenchmarkGenOptions big;
  big.size_scale = 2.0;
  GemDataset base = GenerateBenchmark(GetParam(), 99);
  GemDataset scaled = GenerateBenchmark(GetParam(), 99, big);
  EXPECT_GT(scaled.left_table.size(), base.left_table.size());
  EXPECT_GT(scaled.TotalLabeled(), base.TotalLabeled());
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkGenTest,
    ::testing::ValuesIn(AllBenchmarks()),
    [](const ::testing::TestParamInfo<BenchmarkKind>& info) {
      std::string name = GetBenchmarkInfo(info.param).name;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(BenchmarkTest, FormatsMatchPaperTable1) {
  auto get = [](BenchmarkKind k) { return GenerateBenchmark(k, 5); };
  EXPECT_EQ(get(BenchmarkKind::kRelHeter).left_table[0].format,
            RecordFormat::kRelational);
  EXPECT_EQ(get(BenchmarkKind::kSemiHomo).left_table[0].format,
            RecordFormat::kSemiStructured);
  EXPECT_EQ(get(BenchmarkKind::kSemiRel).left_table[0].format,
            RecordFormat::kSemiStructured);
  EXPECT_EQ(get(BenchmarkKind::kSemiRel).right_table[0].format,
            RecordFormat::kRelational);
  EXPECT_EQ(get(BenchmarkKind::kSemiTextW).right_table[0].format,
            RecordFormat::kTextual);
  EXPECT_EQ(get(BenchmarkKind::kRelText).left_table[0].format,
            RecordFormat::kTextual);
}

TEST(BenchmarkTest, HeterogeneousSchemasDiffer) {
  GemDataset ds = GenerateBenchmark(BenchmarkKind::kRelHeter, 5);
  EXPECT_NE(ds.left_table[0].attrs[0].first,
            ds.right_table[0].attrs[0].first);
}

TEST(BenchmarkTest, HomogeneousSchemaShared) {
  GemDataset ds = GenerateBenchmark(BenchmarkKind::kSemiHomo, 5);
  // Same attribute set (order may differ per §2.2's robustness needs).
  std::set<std::string> left, right;
  for (auto& [k, v] : ds.left_table[0].attrs) left.insert(k);
  for (auto& [k, v] : ds.right_table[0].attrs) right.insert(k);
  EXPECT_EQ(left, right);
}

TEST(BenchmarkTest, SemiHeterIsDigitHeavy) {
  GemDataset ds = GenerateBenchmark(BenchmarkKind::kSemiHeter, 5);
  // Mirrors the paper's "53% of attribute values are digits".
  EXPECT_GT(DigitFraction(ds.left_table), 0.4);
}

TEST(BenchmarkTest, TextDatasetsLessDigitHeavy) {
  GemDataset heter = GenerateBenchmark(BenchmarkKind::kSemiHeter, 5);
  GemDataset text = GenerateBenchmark(BenchmarkKind::kSemiTextW, 5);
  EXPECT_GT(DigitFraction(heter.left_table),
            DigitFraction(text.right_table));
}

TEST(BenchmarkTest, MovieNestsCredits) {
  GemDataset ds = GenerateBenchmark(BenchmarkKind::kSemiRel, 5);
  const Value* credits = ds.left_table[0].Find("credits");
  ASSERT_NE(credits, nullptr);
  EXPECT_TRUE(credits->is_object());
}

TEST(BenchmarkTest, DefaultRatesMatchTable1) {
  EXPECT_DOUBLE_EQ(GetBenchmarkInfo(BenchmarkKind::kSemiHomo).default_rate,
                   0.05);
  EXPECT_DOUBLE_EQ(GetBenchmarkInfo(BenchmarkKind::kSemiTextC).default_rate,
                   0.05);
  EXPECT_DOUBLE_EQ(GetBenchmarkInfo(BenchmarkKind::kRelHeter).default_rate,
                   0.10);
}

TEST(BenchmarkTest, InfoNamesUnique) {
  std::set<std::string> names;
  for (auto kind : AllBenchmarks()) {
    names.insert(GetBenchmarkInfo(kind).name);
  }
  EXPECT_EQ(names.size(), 8u);
}

TEST(BenchmarkTest, GenerateAllReturnsEight) {
  auto all = GenerateAllBenchmarks(3);
  EXPECT_EQ(all.size(), 8u);
}

}  // namespace
}  // namespace promptem::data
