// Tests for core::HashIndex and the layers refactored onto it: sealed
// images must be pure functions of content (pool-size / insertion-order
// invariant), the mmap file must round-trip and grow atomically, and the
// MinHash candidate stream must be bitwise identical across the legacy
// sorted-array backend and both HashIndex backends at every chunk size
// and pool size.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/hash_index.h"
#include "core/thread_pool.h"
#include "data/blocking.h"
#include "data/synthetic.h"

namespace promptem {
namespace {

using core::HashIndex;

/// Fresh per-test scratch directory under the build tree's temp space.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    char tmpl[256];
    std::snprintf(tmpl, sizeof(tmpl), "/tmp/promptem_%s_XXXXXX", tag.c_str());
    path_ = mkdtemp(tmpl);
  }
  ~ScratchDir() {
    // Best-effort cleanup of the flat files the tests create.
    std::string cmd = "rm -rf '" + path_ + "'";
    if (std::system(cmd.c_str()) != 0) {
    }
  }
  std::string File(const std::string& name) const { return path_ + "/" + name; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

std::vector<uint8_t> SpanBytes(HashIndex::Span span) {
  return std::vector<uint8_t>(span.data, span.data + span.size);
}

class ScopedThreads {
 public:
  explicit ScopedThreads(int n) : saved_(core::GetNumThreads()) {
    core::SetNumThreads(n);
  }
  ~ScopedThreads() { core::SetNumThreads(saved_); }

 private:
  int saved_;
};

TEST(HashIndexTest, AddSealFindRoundTrip) {
  HashIndex index(HashIndex::Options{});
  // Before the first seal everything misses.
  EXPECT_TRUE(index.snapshot().Find(7).empty());
  EXPECT_EQ(index.key_count(), 0u);

  const std::vector<float> embedding = {1.5f, -2.25f, 3.0f};
  index.Add(7, 0, embedding.data(), embedding.size() * sizeof(float));
  index.Add(0, 0, "zero", 4);  // key 0 is a valid key, not a sentinel
  index.Add(UINT64_MAX, 0, nullptr, 0);  // zero-size payloads are legal
  ASSERT_TRUE(index.Seal().ok());

  EXPECT_EQ(index.key_count(), 3u);
  const HashIndex::Snapshot snap = index.snapshot();
  const HashIndex::Span got = snap.Find(7);
  ASSERT_EQ(got.size, embedding.size() * sizeof(float));
  EXPECT_EQ(0, std::memcmp(got.data, embedding.data(), got.size));
  ASSERT_EQ(snap.Find(0).size, 4u);
  EXPECT_EQ(0, std::memcmp(snap.Find(0).data, "zero", 4));
  EXPECT_TRUE(snap.Find(UINT64_MAX).empty());   // present, zero bytes
  EXPECT_TRUE(snap.Find(12345).empty());        // absent
}

TEST(HashIndexTest, PostingsSortAscendingRegardlessOfInsertOrder) {
  HashIndex index(HashIndex::Options{});
  const std::vector<int32_t> values = {900, 3, 77, 0, 41};
  for (int32_t v : values) index.AddPosting(42, v);
  index.AddPosting(99, 5);
  ASSERT_TRUE(index.Seal().ok());

  const int32_t* postings = nullptr;
  size_t count = 0;
  ASSERT_TRUE(index.snapshot().FindPostings(42, &postings, &count));
  const std::vector<int32_t> got(postings, postings + count);
  EXPECT_EQ(got, (std::vector<int32_t>{0, 3, 41, 77, 900}));
  ASSERT_TRUE(index.snapshot().FindPostings(99, &postings, &count));
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(postings[0], 5);
  EXPECT_FALSE(index.snapshot().FindPostings(7, &postings, &count));
}

TEST(HashIndexTest, ReSealMergesStagedKeysOverSealedOnes) {
  HashIndex index(HashIndex::Options{});
  index.Add(1, 0, "old-one", 7);
  index.Add(2, 0, "two", 3);
  ASSERT_TRUE(index.Seal().ok());

  index.Add(1, 0, "new", 3);  // replaces key 1 wholesale
  index.Add(3, 0, "three", 5);
  ASSERT_TRUE(index.Seal().ok());

  const HashIndex::Snapshot snap = index.snapshot();
  EXPECT_EQ(snap.key_count(), 3u);
  EXPECT_EQ(SpanBytes(snap.Find(1)),
            std::vector<uint8_t>({'n', 'e', 'w'}));
  EXPECT_EQ(SpanBytes(snap.Find(2)), std::vector<uint8_t>({'t', 'w', 'o'}));
  EXPECT_EQ(snap.Find(3).size, 5u);
}

TEST(HashIndexTest, ForEachVisitsKeysAscending) {
  HashIndex index(HashIndex::Options{});
  for (uint64_t key : {9u, 2u, 77u, 5u, 0u}) {
    index.Add(key, 0, &key, sizeof(key));
  }
  ASSERT_TRUE(index.Seal().ok());
  std::vector<uint64_t> seen;
  index.snapshot().ForEach(
      [&](uint64_t key, HashIndex::Span) { seen.push_back(key); });
  EXPECT_EQ(seen, (std::vector<uint64_t>{0, 2, 5, 9, 77}));
}

TEST(HashIndexTest, MmapBackendMatchesRamBackend) {
  ScratchDir dir("hidx");
  HashIndex ram(HashIndex::Options{});
  HashIndex::Options mmap_options;
  mmap_options.backend = HashIndex::Backend::kMmap;
  mmap_options.path = dir.File("table.phx");
  HashIndex mapped(mmap_options);

  for (uint64_t key = 0; key < 500; ++key) {
    for (int32_t v = 0; v <= static_cast<int32_t>(key % 5); ++v) {
      ram.AddPosting(key * 17, v * 100);
      mapped.AddPosting(key * 17, v * 100);
    }
  }
  ASSERT_TRUE(ram.Seal().ok());
  ASSERT_TRUE(mapped.Seal().ok());
  EXPECT_EQ(ram.key_count(), mapped.key_count());
  EXPECT_GT(ram.ram_bytes(), 0u);
  EXPECT_EQ(ram.file_bytes(), 0u);
  EXPECT_EQ(mapped.ram_bytes(), 0u);
  EXPECT_GT(mapped.file_bytes(), 0u);

  // Entry-for-entry identical, and a fresh Open sees the same table.
  auto reopened = HashIndex::Open(mmap_options.path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const HashIndex::Snapshot a = ram.snapshot();
  const HashIndex::Snapshot b = mapped.snapshot();
  const HashIndex::Snapshot c = reopened.value()->snapshot();
  size_t visited = 0;
  a.ForEach([&](uint64_t key, HashIndex::Span payload) {
    ++visited;
    EXPECT_EQ(SpanBytes(payload), SpanBytes(b.Find(key)));
    EXPECT_EQ(SpanBytes(payload), SpanBytes(c.Find(key)));
  });
  EXPECT_EQ(visited, ram.key_count());
}

TEST(HashIndexTest, FileImageIsPoolSizeAndInsertOrderInvariant) {
  ScratchDir dir("hidx");
  auto build = [&](const std::string& name, int pool,
                   bool reversed) {
    ScopedThreads threads(pool);
    HashIndex::Options options;
    options.backend = HashIndex::Backend::kMmap;
    options.path = dir.File(name);
    HashIndex index(options);
    constexpr int64_t kN = 20000;
    core::ParallelFor(0, kN, 64, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        const int64_t j = reversed ? kN - 1 - i : i;
        index.AddPosting(static_cast<uint64_t>(j % 997),
                         static_cast<int32_t>(j));
      }
    });
    EXPECT_TRUE(index.Seal().ok());
    return ReadFileBytes(options.path);
  };
  const std::vector<uint8_t> reference = build("a.phx", 1, false);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(reference, build("b.phx", 4, false));
  EXPECT_EQ(reference, build("c.phx", 8, true));
}

TEST(HashIndexTest, ReSealGrowsTheFileAtomically) {
  ScratchDir dir("hidx");
  HashIndex::Options options;
  options.backend = HashIndex::Backend::kMmap;
  options.path = dir.File("grow.phx");
  HashIndex index(options);
  index.AddPosting(1, 10);
  ASSERT_TRUE(index.Seal().ok());
  const uint64_t first_size = index.file_bytes();

  index.AddPosting(1, 11);  // replaces key 1's postings list
  index.AddPosting(2, 20);
  ASSERT_TRUE(index.Seal().ok());
  EXPECT_GT(index.file_bytes(), 0u);
  EXPECT_NE(index.file_bytes(), 0u);
  (void)first_size;

  auto reopened = HashIndex::Open(options.path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const HashIndex::Snapshot snap = reopened.value()->snapshot();
  EXPECT_EQ(snap.key_count(), 2u);
  const int32_t* postings = nullptr;
  size_t count = 0;
  ASSERT_TRUE(snap.FindPostings(1, &postings, &count));
  ASSERT_EQ(count, 1u);
  EXPECT_EQ(postings[0], 11);
  ASSERT_TRUE(snap.FindPostings(2, &postings, &count));
  EXPECT_EQ(postings[0], 20);
}

TEST(HashIndexTest, SnapshotsPinTheirGenerationAcrossReSeal) {
  ScratchDir dir("hidx");
  HashIndex::Options options;
  options.backend = HashIndex::Backend::kMmap;
  options.path = dir.File("pin.phx");
  HashIndex index(options);
  index.Add(5, 0, "generation-1", 12);
  ASSERT_TRUE(index.Seal().ok());

  const HashIndex::Snapshot pinned = index.snapshot();
  const HashIndex::Span before = pinned.Find(5);

  // Readers race re-seals: spans from a pinned snapshot must stay valid
  // and probes must never observe a half-published generation.
  std::vector<std::thread> readers;
  std::atomic<bool> stop{false};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&index, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        const HashIndex::Snapshot snap = index.snapshot();
        const HashIndex::Span span = snap.Find(5);
        ASSERT_EQ(span.size, 12u);
        ASSERT_EQ(0, std::memcmp(span.data, "generation-", 11));
      }
    });
  }
  for (int gen = 2; gen <= 6; ++gen) {
    const std::string payload = "generation-" + std::to_string(gen);
    index.Add(5, 0, payload.data(), payload.size());
    ASSERT_TRUE(index.Seal().ok());
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  // The pinned snapshot still reads generation 1's bytes in place.
  ASSERT_EQ(before.size, 12u);
  EXPECT_EQ(0, std::memcmp(before.data, "generation-1", 12));
  EXPECT_EQ(0, std::memcmp(pinned.Find(5).data, "generation-1", 12));
  const HashIndex::Span after = index.snapshot().Find(5);
  EXPECT_EQ(0, std::memcmp(after.data, "generation-6", 12));
}

TEST(HashIndexTest, ParallelInsertIsDeterministicUnderSharding) {
  auto build_count = [&](int pool) {
    ScopedThreads threads(pool);
    HashIndex index(HashIndex::Options{});
    core::ParallelFor(0, 50000, 128, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        index.AddPosting(static_cast<uint64_t>(i % 313),
                         static_cast<int32_t>(i));
      }
    });
    EXPECT_TRUE(index.Seal().ok());
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> image;
    index.snapshot().ForEach([&](uint64_t key, HashIndex::Span payload) {
      image.emplace_back(key, SpanBytes(payload));
    });
    return image;
  };
  const auto reference = build_count(1);
  EXPECT_EQ(reference.size(), 313u);
  EXPECT_EQ(reference, build_count(3));
  EXPECT_EQ(reference, build_count(8));
}

// ---------------------------------------------------------------------------
// MinHashBlocker backend parity
// ---------------------------------------------------------------------------

bool SamePairs(const std::vector<data::PairExample>& a,
               const std::vector<data::PairExample>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].left_index != b[i].left_index ||
        a[i].right_index != b[i].right_index || a[i].label != b[i].label) {
      return false;
    }
  }
  return true;
}

std::vector<data::PairExample> DrainWithChunk(data::Blocker* blocker,
                                              size_t chunk) {
  blocker->Reset();
  std::vector<data::PairExample> all;
  std::vector<data::PairExample> buf;
  while (true) {
    buf.clear();
    const size_t n = blocker->NextChunk(chunk, &buf);
    EXPECT_EQ(n, buf.size());
    if (n == 0) break;
    all.insert(all.end(), buf.begin(), buf.end());
  }
  return all;
}

TEST(MinHashBackendParityTest, StreamsBitwiseEqualAcrossBackends) {
  data::SyntheticTableOptions options;
  options.rows = 400;
  options.seed = 20260809;
  const data::SyntheticTables tables = data::GenerateSyntheticTables(options);
  ScratchDir dir("bands");

  data::MinHashBlocker::Config reference_config;
  reference_config.index_backend =
      data::MinHashBlocker::IndexBackend::kSortedArray;
  data::MinHashBlocker reference(tables.left, tables.right, reference_config);
  const std::vector<data::PairExample> expected = reference.Drain();
  ASSERT_FALSE(expected.empty());

  for (const auto backend : {data::MinHashBlocker::IndexBackend::kHashIndexRam,
                             data::MinHashBlocker::IndexBackend::kHashIndexMmap}) {
    for (const int pool : {1, 3, 8}) {
      ScopedThreads threads(pool);
      data::MinHashBlocker::Config config;
      config.index_backend = backend;
      config.index_dir = dir.path();
      data::MinHashBlocker blocker(tables.left, tables.right, config);
      for (const size_t chunk : {size_t{1}, size_t{7}, size_t{256},
                                 size_t{100000}}) {
        EXPECT_TRUE(SamePairs(expected, DrainWithChunk(&blocker, chunk)))
            << "backend=" << static_cast<int>(backend) << " pool=" << pool
            << " chunk=" << chunk;
      }
    }
  }
}

TEST(MinHashBackendParityTest, IndexStatsSeeTheBackingStore) {
  data::SyntheticTableOptions options;
  options.rows = 300;
  const data::SyntheticTables tables = data::GenerateSyntheticTables(options);
  ScratchDir dir("bands");

  data::MinHashBlocker::Config ram_config;
  ram_config.index_backend = data::MinHashBlocker::IndexBackend::kHashIndexRam;
  data::MinHashBlocker ram(tables.left, tables.right, ram_config);
  (void)ram.Drain();
  const auto ram_stats = ram.index_stats();
  EXPECT_EQ(ram_stats.band_bytes.size(),
            static_cast<size_t>(ram_config.num_bands));
  EXPECT_GT(ram_stats.ram_bytes, 0u);
  EXPECT_EQ(ram_stats.file_bytes, 0u);

  data::MinHashBlocker::Config mmap_config;
  mmap_config.index_backend =
      data::MinHashBlocker::IndexBackend::kHashIndexMmap;
  mmap_config.index_dir = dir.path();
  data::MinHashBlocker mapped(tables.left, tables.right, mmap_config);
  (void)mapped.Drain();
  const auto mmap_stats = mapped.index_stats();
  EXPECT_EQ(mmap_stats.ram_bytes, 0u);
  EXPECT_GT(mmap_stats.file_bytes, 0u);

  // The cap decisions are a function of content, not of the backend.
  data::MinHashBlocker::Config legacy_config;
  legacy_config.index_backend =
      data::MinHashBlocker::IndexBackend::kSortedArray;
  data::MinHashBlocker legacy(tables.left, tables.right, legacy_config);
  (void)legacy.Drain();
  const auto legacy_stats = legacy.index_stats();
  EXPECT_EQ(legacy_stats.buckets_over_cap, ram_stats.buckets_over_cap);
  EXPECT_EQ(legacy_stats.capped_probes, ram_stats.capped_probes);
  EXPECT_EQ(legacy_stats.capped_probes, mmap_stats.capped_probes);
}

}  // namespace
}  // namespace promptem
