// Tests for the adoption-path extensions: the JSON parser, CSV/JSONL
// dataset I/O, the blocking substrate, and active learning.

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "data/blocking.h"
#include "data/io.h"
#include "data/json.h"
#include "data/benchmarks.h"
#include "data/serializer.h"
#include "lm/pretrained_lm.h"
#include "promptem/active_learning.h"
#include "promptem/finetune_model.h"
#include "promptem/promptem.h"

namespace promptem {
namespace {

// --- JSON ---

TEST(JsonTest, ParsesScalars) {
  EXPECT_EQ(data::ParseJson("\"hi\"").value().as_string(), "hi");
  EXPECT_DOUBLE_EQ(data::ParseJson("3.5").value().as_number(), 3.5);
  EXPECT_DOUBLE_EQ(data::ParseJson("-12e2").value().as_number(), -1200.0);
  EXPECT_DOUBLE_EQ(data::ParseJson("true").value().as_number(), 1.0);
  EXPECT_EQ(data::ParseJson("null").value().as_string(), "");
}

TEST(JsonTest, ParsesNestedStructure) {
  auto v = data::ParseJson(
      R"({"title":"sams teach","authors":["a","b"],"meta":{"pages":288}})");
  ASSERT_TRUE(v.ok());
  const auto& obj = v.value().as_object();
  ASSERT_EQ(obj.size(), 3u);
  EXPECT_EQ(obj[0].second.as_string(), "sams teach");
  EXPECT_EQ(obj[1].second.as_list().size(), 2u);
  EXPECT_DOUBLE_EQ(
      obj[2].second.as_object()[0].second.as_number(), 288.0);
}

TEST(JsonTest, HandlesEscapes) {
  auto v = data::ParseJson(R"("a\"b\\c\ndA")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().as_string(), "a\"b\\c\ndA");
}

TEST(JsonTest, UnicodeEscapeUtf8) {
  auto v = data::ParseJson(R"("é")");  // é
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().as_string(), "\xC3\xA9");
}

TEST(JsonTest, SurrogatePairsDecodeToUtf8) {
  // U+1F600 (emoji), U+10000 (first non-BMP), U+10FFFF (last code point).
  EXPECT_EQ(data::ParseJson(R"("\uD83D\uDE00")").value().as_string(),
            "\xF0\x9F\x98\x80");
  EXPECT_EQ(data::ParseJson(R"("\uD800\uDC00")").value().as_string(),
            "\xF0\x90\x80\x80");
  EXPECT_EQ(data::ParseJson(R"("\uDBFF\uDFFF")").value().as_string(),
            "\xF4\x8F\xBF\xBF");
  // Mixed with a BMP escape and plain text on both sides.
  EXPECT_EQ(data::ParseJson(R"("a\u00e9\uD83D\uDE00z")").value().as_string(),
            "a\xC3\xA9\xF0\x9F\x98\x80z");
}

TEST(JsonTest, UnpairedSurrogatesRejected) {
  EXPECT_FALSE(data::ParseJson(R"("\uD83D")").ok());       // high, then end
  EXPECT_FALSE(data::ParseJson(R"("\uD83Dxy")").ok());     // high, then text
  EXPECT_FALSE(data::ParseJson(R"("\uD83D\n")").ok());     // high, then \n
  EXPECT_FALSE(data::ParseJson(R"("\uD83D\uD83D")").ok()); // high twice
  EXPECT_FALSE(data::ParseJson(R"("\uD83DA")").ok()); // high then BMP
  EXPECT_FALSE(data::ParseJson(R"("\uDC00")").ok());       // lone low
}

TEST(JsonTest, SurrogateRoundTripThroughJsonl) {
  // The writer passes UTF-8 bytes through raw; the reader must produce
  // the same bytes from the escaped form, so both spellings round-trip.
  auto v = data::ParseJson(R"({"name":"\uD83D\uDE00 deluxe"})");
  ASSERT_TRUE(v.ok());
  auto again = data::ParseJson(data::ToJson(v.value()));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(data::ToJson(v.value()), data::ToJson(again.value()));
  EXPECT_EQ(again.value().as_object()[0].second.as_string(),
            "\xF0\x9F\x98\x80 deluxe");
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_FALSE(data::ParseJson("{").ok());
  EXPECT_FALSE(data::ParseJson("[1,]").ok());
  EXPECT_FALSE(data::ParseJson("\"unterminated").ok());
  EXPECT_FALSE(data::ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(data::ParseJson("12 34").ok());
  EXPECT_FALSE(data::ParseJson("nul").ok());
}

TEST(JsonTest, DuplicateKeysLastWins) {
  auto v = data::ParseJson(R"({"a":1,"a":2})");
  ASSERT_TRUE(v.ok());
  const auto& obj = v.value().as_object();
  ASSERT_EQ(obj.size(), 1u);
  EXPECT_DOUBLE_EQ(obj[0].second.as_number(), 2.0);
}

TEST(JsonTest, RoundTrip) {
  const std::string doc =
      R"({"title":"a, \"quoted\"","year":2012,"tags":["x","y"]})";
  auto v = data::ParseJson(doc);
  ASSERT_TRUE(v.ok());
  auto again = data::ParseJson(data::ToJson(v.value()));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(data::ToJson(v.value()), data::ToJson(again.value()));
}

TEST(JsonTest, RecordParsingRequiresObject) {
  EXPECT_TRUE(data::ParseJsonRecord(R"({"a":"b"})").ok());
  EXPECT_FALSE(data::ParseJsonRecord("[1,2]").ok());
}

// --- CSV / dataset I/O ---

TEST(CsvTest, SplitHandlesQuoting) {
  auto f = data::SplitCsvLine(R"(a,"b,c","d""e",)");
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[1], "b,c");
  EXPECT_EQ(f[2], "d\"e");
  EXPECT_EQ(f[3], "");
}

TEST(CsvTest, EscapeRoundTrip) {
  const std::string tricky = "a,\"b\"\nc";
  auto f = data::SplitCsvLine(data::CsvEscape(tricky));
  // Newline inside field is out of scope for the line-based reader, but
  // commas and quotes round-trip.
  EXPECT_EQ(data::SplitCsvLine(data::CsvEscape("x,\"y\""))[0], "x,\"y\"");
  (void)f;
  (void)tricky;
}

TEST(IoTest, DatasetRoundTripAllFormats) {
  namespace fs = std::filesystem;
  // SEMI-REL exercises JSONL (left, nested) + CSV (right).
  data::BenchmarkGenOptions small;
  small.size_scale = 0.2;
  data::GemDataset ds =
      data::GenerateBenchmark(data::BenchmarkKind::kSemiRel, 5, small);
  const std::string dir = "/tmp/promptem_io_test";
  fs::remove_all(dir);
  ASSERT_TRUE(data::SaveGemDataset(ds, dir).ok());

  auto loaded = data::LoadGemDataset(dir, "roundtrip");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const data::GemDataset& back = loaded.value();
  ASSERT_EQ(back.left_table.size(), ds.left_table.size());
  ASSERT_EQ(back.right_table.size(), ds.right_table.size());
  ASSERT_EQ(back.train.size(), ds.train.size());
  EXPECT_EQ(back.test.size(), ds.test.size());
  // Serialization of a nested record survives the JSONL round trip.
  EXPECT_EQ(data::SerializeRecord(back.left_table[0]),
            data::SerializeRecord(ds.left_table[0]));
  // CSV round trip preserves relational attribute values.
  EXPECT_EQ(data::SerializeRecord(back.right_table[0]),
            data::SerializeRecord(ds.right_table[0]));
  fs::remove_all(dir);
}

TEST(IoTest, TextTableRoundTrip) {
  namespace fs = std::filesystem;
  data::BenchmarkGenOptions small;
  small.size_scale = 0.2;
  data::GemDataset ds =
      data::GenerateBenchmark(data::BenchmarkKind::kSemiTextW, 5, small);
  const std::string dir = "/tmp/promptem_io_test_text";
  fs::remove_all(dir);
  ASSERT_TRUE(data::SaveGemDataset(ds, dir).ok());
  auto loaded = data::LoadGemDataset(dir, "text");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().right_table[0].format,
            data::RecordFormat::kTextual);
  EXPECT_EQ(loaded.value().right_table[0].text, ds.right_table[0].text);
  fs::remove_all(dir);
}

TEST(IoTest, LoadPairsValidatesRanges) {
  const std::string path = "/tmp/promptem_pairs_test.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("0,0,1\n5,0,0\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(data::LoadPairsCsv(path, 2, 2).ok());  // 5 out of range
  EXPECT_TRUE(data::LoadPairsCsv(path, 6, 2).ok());
  std::remove(path.c_str());
}

TEST(IoTest, MissingFilesSurfaceNotFound) {
  auto r = data::LoadGemDataset("/tmp/definitely_missing_promptem", "x");
  EXPECT_FALSE(r.ok());
}

TEST(IoTest, CsvNumericCellsBecomeNumbers) {
  const std::string path = "/tmp/promptem_csv_test.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("name,year\nalpha,2012\n", f);
    std::fclose(f);
  }
  auto table = data::LoadCsvTable(path);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table.value().size(), 1u);
  EXPECT_TRUE(table.value()[0].attrs[1].second.is_number());
  EXPECT_TRUE(table.value()[0].attrs[0].second.is_string());
  std::remove(path.c_str());
}

// --- blocking ---

TEST(BlockingTest, KeepsTrueMatchesPrunesSpace) {
  data::GemDataset ds =
      data::GenerateBenchmark(data::BenchmarkKind::kSemiHomo, 7);
  data::OverlapBlocker blocker(ds.left_table, ds.right_table);
  data::OverlapBlocker::Config config;
  config.top_k = 10;
  auto candidates = blocker.GenerateCandidates(config);

  std::vector<data::PairExample> gold;
  for (const auto& p : ds.train) {
    if (p.label == 1) gold.push_back(p);
  }
  auto quality = data::EvaluateBlocking(candidates, gold,
                                        ds.left_table.size(),
                                        ds.right_table.size());
  EXPECT_GT(quality.pair_completeness, 0.8);
  EXPECT_GT(quality.reduction_ratio, 0.9);
}

TEST(BlockingTest, PairScorePositiveForMatches) {
  data::BenchmarkGenOptions small;
  small.size_scale = 0.3;
  data::GemDataset ds =
      data::GenerateBenchmark(data::BenchmarkKind::kRelHeter, 7, small);
  data::OverlapBlocker blocker(ds.left_table, ds.right_table);
  EXPECT_GT(blocker.PairScore(0, 0), 0.0);
}

TEST(BlockingTest, TopKBoundsCandidatesPerLeft) {
  data::BenchmarkGenOptions small;
  small.size_scale = 0.3;
  data::GemDataset ds =
      data::GenerateBenchmark(data::BenchmarkKind::kSemiHomo, 7, small);
  data::OverlapBlocker blocker(ds.left_table, ds.right_table);
  data::OverlapBlocker::Config config;
  config.top_k = 3;
  auto candidates = blocker.GenerateCandidates(config);
  std::map<int, int> per_left;
  for (const auto& c : candidates) ++per_left[c.left_index];
  for (const auto& [left, count] : per_left) EXPECT_LE(count, 3);
}

TEST(BlockingQualityTest, Formulae) {
  std::vector<data::PairExample> candidates = {{0, 0, 0}, {1, 2, 0}};
  std::vector<data::PairExample> gold = {{0, 0, 1}, {1, 1, 1}};
  auto q = data::EvaluateBlocking(candidates, gold, 10, 10);
  EXPECT_DOUBLE_EQ(q.pair_completeness, 0.5);
  EXPECT_DOUBLE_EQ(q.reduction_ratio, 1.0 - 2.0 / 100.0);
}

// --- active learning ---

TEST(ActiveLearningTest, LabeledSetGrowsPerRound) {
  // A tiny LM keeps this self-contained and fast.
  data::BenchmarkGenOptions small;
  small.size_scale = 0.3;
  std::vector<data::GemDataset> datasets = {
      data::GenerateBenchmark(data::BenchmarkKind::kRelHeter, 31, small)};
  lm::Corpus corpus = lm::BuildCorpus(datasets, 31);
  nn::TransformerConfig config;
  config.dim = 16;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ffn_dim = 32;
  config.max_seq_len = 96;
  lm::MlmOptions mlm;
  mlm.epochs = 1;
  mlm.max_seq_len = 96;
  core::Rng rng(31);
  auto lm_ptr = lm::PretrainedLM::Pretrain(corpus, config, mlm,
                                           lm::RequiredPromptTokens(), &rng);

  const data::GemDataset& ds = datasets[0];
  em::PairEncoder encoder = em::MakePairEncoder(*lm_ptr, ds);
  core::Rng split_rng(31);
  data::LowResourceSplit split =
      data::MakeLowResourceSplit(ds, 0.15, &split_rng);
  auto labeled = encoder.EncodeAll(ds, split.labeled);
  auto unlabeled = encoder.EncodeAll(ds, split.unlabeled);
  auto valid = encoder.EncodeAll(ds, split.valid);

  core::Rng factory_rng(31);
  em::ModelFactory factory =
      [&]() -> std::unique_ptr<em::PairClassifier> {
    return std::make_unique<em::FinetuneModel>(*lm_ptr, &factory_rng);
  };
  em::ActiveLearningConfig al;
  al.rounds = 3;
  al.budget_per_round = 4;
  al.mc_passes = 3;
  al.train_options.epochs = 2;
  std::unique_ptr<em::PairClassifier> model;
  auto history = em::RunActiveLearning(factory, labeled, unlabeled, valid,
                                       al, &model);
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history[0].labeled_size, labeled.size());
  EXPECT_EQ(history[1].labeled_size, labeled.size() + 4);
  EXPECT_EQ(history[2].labeled_size, labeled.size() + 8);
  ASSERT_NE(model, nullptr);
}

}  // namespace
}  // namespace promptem
