// Tests for the unified training runtime (src/train/): TrainLoop semantics,
// observer event ordering, the JSONL run log's schema, the matcher
// registry, and the golden seed-parity contract pinning every refactored
// learner to its pre-refactor per-epoch losses and F1 (bitwise).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/matchers.h"
#include "data/json.h"
#include "nn/layers.h"
#include "tensor/ops.h"
#include "train/observer.h"
#include "train/registry.h"
#include "train/train_loop.h"
#include "train_golden_support.h"

namespace promptem {
namespace {

namespace ops = tensor::ops;

// ---------------------------------------------------------------------------
// A tiny trainable problem: a 2-class MLP over fixed 2-d features.

struct TinyProblem {
  TinyProblem() : rng(5), mlp({2, 4, 2}, &rng, 0.1f) {
    for (int i = 0; i < 8; ++i) {
      features.push_back({i % 2 ? 1.0f : -1.0f, i % 3 ? 0.5f : -0.5f});
      labels.push_back(i % 2);
    }
  }

  tensor::Tensor Loss(size_t index, core::Rng* step_rng) {
    tensor::Tensor x = tensor::Tensor::FromValues(
        {1, 2}, std::vector<float>(features[index]));
    return ops::CrossEntropyLogits(mlp.Forward(x, step_rng),
                                   {labels[index]});
  }

  core::Rng rng;
  nn::Mlp mlp;
  std::vector<std::vector<float>> features;
  std::vector<int> labels;
};

/// Records every observer event as one compact token.
class RecordingObserver final : public train::TrainObserver {
 public:
  void OnLoopBegin(const train::RunMeta& meta) override {
    events.push_back("loop_begin");
    meta_ = meta;
  }
  void OnEpochBegin(int epoch) override {
    events.push_back("epoch_begin:" + std::to_string(epoch));
  }
  void OnBatchEnd(const train::BatchStats& stats) override {
    events.push_back("batch_end:" + std::to_string(stats.epoch) + ":" +
                     std::to_string(stats.batch_index));
  }
  void OnEvalEnd(const train::EvalStats& stats) override {
    events.push_back("eval_end:" + std::to_string(stats.epoch));
  }
  void OnEpochEnd(const train::EpochStats& stats) override {
    events.push_back("epoch_end:" + std::to_string(stats.epoch));
  }
  void OnLoopEnd(const train::LoopResult& result) override {
    events.push_back("loop_end");
    epochs_run = result.epochs_run;
  }

  const train::RunMeta& meta() const { return meta_; }

  std::vector<std::string> events;
  int epochs_run = 0;

 private:
  train::RunMeta meta_;
};

TEST(TrainLoopTest, ObserverEventOrderingAndOneBasedEpochs) {
  TinyProblem problem;
  RecordingObserver observer;

  train::LoopOptions options;
  options.epochs = 2;
  options.batch_size = 4;  // 8 samples -> 2 batches per epoch
  options.seed = 11;
  options.observer = &observer;
  options.run_name = "tiny";
  options.dataset_name = "unit";

  train::TrainLoop loop(&problem.mlp, options);
  loop.OnParallelStep(
      [&](size_t i, core::Rng* rng) { return problem.Loss(i, rng); });
  loop.OnEval([] { return em::ComputeMetrics({1}, {1}); });
  train::LoopResult result = loop.Run(problem.features.size());

  const std::vector<std::string> expected = {
      "loop_begin",
      "epoch_begin:1", "batch_end:1:0", "batch_end:1:1", "eval_end:1",
      "epoch_end:1",
      "epoch_begin:2", "batch_end:2:0", "batch_end:2:1", "eval_end:2",
      "epoch_end:2",
      "loop_end",
  };
  EXPECT_EQ(observer.events, expected);
  EXPECT_EQ(observer.epochs_run, 2);
  EXPECT_EQ(observer.meta().run_name, "tiny");
  EXPECT_EQ(observer.meta().dataset, "unit");
  EXPECT_EQ(observer.meta().seed, 11u);
  EXPECT_FALSE(observer.meta().config_hash.empty());
  EXPECT_EQ(result.epochs_run, 2);
  EXPECT_EQ(result.best_epoch, 1);  // 1-based; F1 ties never re-improve
  EXPECT_EQ(result.samples_processed, 16);
  EXPECT_EQ(result.epoch_losses.size(), 2u);
}

TEST(TrainLoopTest, SequentialSkipExcludesSampleFromLossAndCount) {
  TinyProblem problem;
  train::LoopOptions options;
  options.epochs = 1;
  options.batch_size = 3;
  options.shuffle = false;
  options.seed = 3;

  train::TrainLoop loop(&problem.mlp, options);
  loop.OnSequentialStep(
      [&](size_t i, core::Rng* rng) -> std::optional<tensor::Tensor> {
        if (i % 2 == 1) return std::nullopt;  // skip odd samples
        return problem.Loss(i, rng);
      });
  train::LoopResult result = loop.Run(problem.features.size());
  EXPECT_EQ(result.samples_processed, 4);  // 4 of 8 skipped
  ASSERT_EQ(result.epoch_losses.size(), 1u);
  EXPECT_GT(result.epoch_losses[0], 0.0f);
}

TEST(TrainLoopTest, EarlyStoppingAfterPatienceExhausted) {
  TinyProblem problem;
  train::LoopOptions options;
  options.epochs = 10;
  options.batch_size = 4;
  options.seed = 7;
  options.early_stop_patience = 2;

  int epoch_counter = 0;
  train::TrainLoop loop(&problem.mlp, options);
  loop.OnParallelStep(
      [&](size_t i, core::Rng* rng) { return problem.Loss(i, rng); });
  loop.OnEval([&] {
    // Perfect on the first epoch, wrong afterwards: the loop should stop
    // after two consecutive non-improving evals.
    ++epoch_counter;
    return epoch_counter == 1 ? em::ComputeMetrics({1}, {1})
                              : em::ComputeMetrics({0}, {1});
  });
  train::LoopResult result = loop.Run(problem.features.size());

  EXPECT_TRUE(result.early_stopped);
  EXPECT_EQ(result.epochs_run, 3);  // epoch 1 improves, 2 + 3 stale
  EXPECT_EQ(result.best_epoch, 1);
  EXPECT_EQ(result.epoch_losses.size(), 3u);
  EXPECT_DOUBLE_EQ(result.best_score, 1.0);
}

// ---------------------------------------------------------------------------
// JSONL run log

TEST(JsonlRunLoggerTest, WritesOneParseableRecordPerEpoch) {
  const std::string path = ::testing::TempDir() + "train_test_run.jsonl";
  std::remove(path.c_str());

  TinyProblem problem;
  {
    train::JsonlRunLogger logger(path);
    ASSERT_TRUE(logger.ok());

    train::LoopOptions options;
    options.epochs = 3;
    options.batch_size = 4;
    options.seed = 19;
    options.observer = &logger;
    options.run_name = "logger-test";
    options.dataset_name = "unit \"quoted\"";  // exercises escaping

    train::TrainLoop loop(&problem.mlp, options);
    loop.OnParallelStep(
        [&](size_t i, core::Rng* rng) { return problem.Loss(i, rng); });
    loop.OnEval([] { return em::ComputeMetrics({1, 0}, {1, 1}); });
    loop.Run(problem.features.size());
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int records = 0;
  while (std::getline(in, line)) {
    ++records;
    auto parsed = data::ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << line;
    const data::Value& v = parsed.value();
    ASSERT_TRUE(v.is_object());
    ASSERT_NE(v.as_object().size(), 0u);
    auto field = [&](const std::string& key) -> const data::Value* {
      for (const auto& [k, val] : v.as_object()) {
        if (k == key) return &val;
      }
      return nullptr;
    };
    ASSERT_NE(field("run"), nullptr);
    EXPECT_EQ(field("run")->as_string(), "logger-test");
    ASSERT_NE(field("dataset"), nullptr);
    EXPECT_EQ(field("dataset")->as_string(), "unit \"quoted\"");
    ASSERT_NE(field("epoch"), nullptr);
    EXPECT_EQ(static_cast<int>(field("epoch")->as_number()), records);
    for (const char* key : {"loss", "samples", "precision", "recall", "f1",
                            "seconds", "examples_per_sec", "seed"}) {
      ASSERT_NE(field(key), nullptr) << key;
      EXPECT_TRUE(field(key)->is_number()) << key;
    }
    EXPECT_EQ(static_cast<uint64_t>(field("seed")->as_number()), 19u);
    ASSERT_NE(field("config_hash"), nullptr);
    EXPECT_EQ(field("config_hash")->as_string().size(), 16u);
  }
  EXPECT_EQ(records, 3);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Matcher registry

class DummyMatcher final : public train::Matcher {
 public:
  std::string Name() const override { return "unit-dummy"; }
  void Train(const train::MatcherContext&) override {}
  std::vector<int> Predict(
      const train::MatcherContext&,
      const std::vector<data::PairExample>& pairs) override {
    return std::vector<int>(pairs.size(), 0);
  }
};

REGISTER_MATCHER_HIDDEN("unit-dummy",
                        [] { return std::make_unique<DummyMatcher>(); });

TEST(MatcherRegistryTest, RegisterMacroInThisTranslationUnit) {
  auto& registry = train::MatcherRegistry::Instance();
  ASSERT_TRUE(registry.Contains("unit-dummy"));
  auto matcher = registry.Create("unit-dummy");
  ASSERT_NE(matcher, nullptr);
  EXPECT_EQ(matcher->Name(), "unit-dummy");
  // Hidden registrations never surface in --list-matchers.
  for (const auto& name : registry.ListedNames()) {
    EXPECT_NE(name, "unit-dummy");
  }
}

TEST(MatcherRegistryTest, ListsTheNineCanonicalMatchersInTableOrder) {
  baselines::EnsureBaselineMatchersRegistered();
  const std::vector<std::string> expected = {
      "DeepMatcher", "BERT",    "SentenceBERT", "Ditto",    "DADER",
      "Rotom",       "TDmatch", "TDmatch*",     "PromptEM",
  };
  EXPECT_EQ(train::MatcherRegistry::Instance().ListedNames(), expected);
}

TEST(MatcherRegistryTest, AblationVariantsAreCreatableButUnlisted) {
  baselines::EnsureBaselineMatchersRegistered();
  auto& registry = train::MatcherRegistry::Instance();
  for (const char* name :
       {"PromptEM w/o PT", "PromptEM w/o LST", "PromptEM w/o DDP"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
    auto matcher = registry.Create(name);
    ASSERT_NE(matcher, nullptr) << name;
    EXPECT_EQ(matcher->Name(), name);
  }
}

TEST(MatcherRegistryTest, UnknownNameIsNotCreatable) {
  auto& registry = train::MatcherRegistry::Instance();
  EXPECT_FALSE(registry.Contains("NoSuchMatcher"));
  EXPECT_EQ(registry.Create("NoSuchMatcher"), nullptr);
}

// ---------------------------------------------------------------------------
// Golden seed parity: every refactored learner must reproduce the
// per-epoch losses and final F1 recorded against the pre-refactor HEAD,
// bit for bit. Regenerate with tools/make_train_golden after an
// intentional behavioural change.

TEST(GoldenParityTest, AllLearnersMatchRecordedFixtureBitwise) {
  std::ifstream in("tests/data/train_golden.json");
  ASSERT_TRUE(in.good())
      << "missing fixture; run tools/make_train_golden from the repo root";
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = data::ParseJson(buffer.str());
  ASSERT_TRUE(parsed.ok());

  const data::Value* runs_value = nullptr;
  for (const auto& [key, value] : parsed.value().as_object()) {
    if (key == "runs") runs_value = &value;
  }
  ASSERT_NE(runs_value, nullptr);
  const auto& fixture_runs = runs_value->as_list();

  const std::vector<golden::GoldenRun> actual_runs =
      golden::CaptureGoldenRuns();
  ASSERT_EQ(actual_runs.size(), fixture_runs.size());

  for (size_t r = 0; r < actual_runs.size(); ++r) {
    const golden::GoldenRun& actual = actual_runs[r];
    auto field = [&](const std::string& key) -> const data::Value* {
      for (const auto& [k, v] : fixture_runs[r].as_object()) {
        if (k == key) return &v;
      }
      return nullptr;
    };
    ASSERT_NE(field("name"), nullptr);
    EXPECT_EQ(field("name")->as_string(), actual.name);

    ASSERT_NE(field("epoch_loss_bits"), nullptr);
    const auto& loss_bits = field("epoch_loss_bits")->as_list();
    ASSERT_EQ(loss_bits.size(), actual.epoch_losses.size()) << actual.name;
    for (size_t i = 0; i < loss_bits.size(); ++i) {
      EXPECT_EQ(loss_bits[i].as_string(),
                golden::BitsOf(actual.epoch_losses[i]))
          << actual.name << " epoch " << i + 1;
    }
    ASSERT_NE(field("valid_f1_bits"), nullptr);
    EXPECT_EQ(field("valid_f1_bits")->as_string(),
              golden::BitsOf(actual.valid_f1))
        << actual.name;
    ASSERT_NE(field("test_f1_bits"), nullptr);
    EXPECT_EQ(field("test_f1_bits")->as_string(),
              golden::BitsOf(actual.test_f1))
        << actual.name;
  }
}

}  // namespace
}  // namespace promptem
