#ifndef PROMPTEM_TESTS_TRAIN_GOLDEN_SUPPORT_H_
#define PROMPTEM_TESTS_TRAIN_GOLDEN_SUPPORT_H_

// Shared between tools/make_train_golden.cpp (which records the fixture)
// and tests/train_test.cc (which replays it). The fixture pins the
// behavioural contract of the training-runtime refactor: for a fixed seed
// every learner must reproduce the exact per-epoch losses and final F1
// captured against the pre-refactor HEAD. Everything here is seeded, so
// the numbers are bitwise stable across runs on one platform.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "baselines/deepmatcher.h"
#include "core/string_util.h"
#include "data/benchmarks.h"
#include "lm/pretrained_lm.h"
#include "promptem/finetune_model.h"
#include "promptem/promptem.h"
#include "promptem/trainer.h"
#include "tensor/kernels.h"

namespace promptem::golden {

/// One learner's pinned numbers. F1 fields are -1 when not applicable.
struct GoldenRun {
  std::string name;
  std::vector<float> epoch_losses;
  double valid_f1 = -1.0;
  double test_f1 = -1.0;
};

inline std::string BitsOf(float v) {
  uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return core::StrFormat("0x%08x", bits);
}

inline std::string BitsOf(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return core::StrFormat("0x%016llx",
                         static_cast<unsigned long long>(bits));
}

/// The tiny deterministic LM every golden run shares (mirrors the test
/// fixtures): its pre-training losses double as the MLM loop's parity
/// record.
inline const lm::PretrainedLM& GoldenLM() {
  static const lm::PretrainedLM* kLm = [] {
    data::BenchmarkGenOptions small;
    small.size_scale = 0.3;
    std::vector<data::GemDataset> datasets = {
        data::GenerateBenchmark(data::BenchmarkKind::kRelHeter, 13, small),
    };
    lm::Corpus corpus = lm::BuildCorpus(datasets, 13);
    nn::TransformerConfig config;
    config.dim = 16;
    config.num_layers = 1;
    config.num_heads = 2;
    config.ffn_dim = 32;
    config.max_seq_len = 96;
    lm::MlmOptions options;
    options.epochs = 2;
    options.max_seq_len = 96;
    core::Rng rng(13);
    return lm::PretrainedLM::Pretrain(corpus, config, options,
                                      lm::RequiredPromptTokens(), &rng)
        .release();
  }();
  return *kLm;
}

inline data::GemDataset GoldenDataset() {
  data::BenchmarkGenOptions small;
  small.size_scale = 0.3;
  return data::GenerateBenchmark(data::BenchmarkKind::kRelHeter, 13, small);
}

inline baselines::RunOptions GoldenRunOptions() {
  baselines::RunOptions options;
  options.seed = 42;
  options.epochs = 8;
  options.student_epochs = 8;
  options.mc_passes = 2;
  options.prune_every = 2;
  return options;
}

/// Recomputes every pinned learner. Kept deliberately on the public
/// pre-refactor API surface (TrainClassifier, PromptEM, RunMethod) so the
/// identical code compiles before and after the runtime refactor.
///
/// Pinned to the scalar kernel variant: bitwise determinism holds only
/// *within* a variant, and the fixture must replay identically on AVX2
/// hosts, pre-AVX2 hosts, and the PROMPTEM_FORCE_SCALAR=1 CI job.
inline std::vector<GoldenRun> CaptureGoldenRuns() {
  tensor::kernels::ScopedKernelVariant scalar(
      tensor::kernels::KernelVariant::kScalar);
  std::vector<GoldenRun> runs;

  const lm::PretrainedLM& lm = GoldenLM();
  const data::GemDataset dataset = GoldenDataset();
  core::Rng split_rng(77);
  const data::LowResourceSplit split =
      data::MakeLowResourceSplit(dataset, 0.5, &split_rng);
  em::PairEncoder encoder = em::MakePairEncoder(lm, dataset);
  const auto train = encoder.EncodeAll(dataset, split.labeled);
  const auto valid = encoder.EncodeAll(dataset, split.valid);
  const auto test = encoder.EncodeAll(dataset, split.test);

  {
    GoldenRun run;
    run.name = "mlm_pretrain";
    run.epoch_losses = lm.pretrain_losses();
    runs.push_back(run);
  }

  em::TrainOptions train_options;
  train_options.epochs = 5;
  train_options.seed = 17;

  {
    GoldenRun run;
    run.name = "deepmatcher_classifier";
    core::Rng model_rng(7);
    baselines::DeepMatcherModel model(lm.vocab(), /*embed_dim=*/16,
                                      /*hidden_dim=*/8, &model_rng);
    em::TrainResult result =
        em::TrainClassifier(&model, train, valid, train_options);
    run.epoch_losses = result.epoch_losses;
    run.valid_f1 = result.best_valid.F1();
    run.test_f1 = em::Evaluate(&model, test).F1();
    runs.push_back(run);
  }

  {
    GoldenRun run;
    run.name = "finetune_classifier";
    core::Rng model_rng(9);
    em::FinetuneModel model(lm, &model_rng);
    em::TrainResult result =
        em::TrainClassifier(&model, train, valid, train_options);
    run.epoch_losses = result.epoch_losses;
    run.valid_f1 = result.best_valid.F1();
    run.test_f1 = em::Evaluate(&model, test).F1();
    runs.push_back(run);
  }

  const baselines::RunOptions options = GoldenRunOptions();

  {
    GoldenRun run;
    run.name = "promptem_full";
    em::PromptEM promptem(
        &lm, baselines::MakePromptEmConfig(baselines::Method::kPromptEM,
                                           options));
    em::PromptEMResult result = promptem.Run(dataset, split);
    run.epoch_losses = result.stats.teacher_result.epoch_losses;
    run.valid_f1 = result.valid.F1();
    run.test_f1 = result.test.F1();
    runs.push_back(run);
  }

  {
    GoldenRun run;
    run.name = "sentencebert_runmethod";
    baselines::MethodResult result = baselines::RunMethod(
        baselines::Method::kSentenceBert, lm, data::BenchmarkKind::kRelHeter,
        dataset, split, options);
    run.valid_f1 = result.valid.F1();
    run.test_f1 = result.test.F1();
    runs.push_back(run);
  }

  {
    GoldenRun run;
    run.name = "tdmatchstar_runmethod";
    baselines::MethodResult result = baselines::RunMethod(
        baselines::Method::kTdMatchStar, lm, data::BenchmarkKind::kRelHeter,
        dataset, split, options);
    run.valid_f1 = result.valid.F1();
    run.test_f1 = result.test.F1();
    runs.push_back(run);
  }

  return runs;
}

/// Serializes runs as one JSON object. Floats are recorded as raw bit
/// patterns (the parity contract is bitwise, not epsilon) with decimal
/// renderings alongside for humans.
inline std::string GoldenRunsToJson(const std::vector<GoldenRun>& runs) {
  std::string out = "{\"runs\": [\n";
  for (size_t r = 0; r < runs.size(); ++r) {
    const GoldenRun& run = runs[r];
    out += "  {\"name\": \"" + run.name + "\", \"epoch_loss_bits\": [";
    for (size_t i = 0; i < run.epoch_losses.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + BitsOf(run.epoch_losses[i]) + "\"";
    }
    out += "], \"epoch_losses\": [";
    for (size_t i = 0; i < run.epoch_losses.size(); ++i) {
      if (i > 0) out += ", ";
      out += core::StrFormat("%.9g", run.epoch_losses[i]);
    }
    out += "], \"valid_f1_bits\": \"" + BitsOf(run.valid_f1) + "\"";
    out += ", \"test_f1_bits\": \"" + BitsOf(run.test_f1) + "\"";
    out += core::StrFormat(", \"valid_f1\": %.17g, \"test_f1\": %.17g}",
                           run.valid_f1, run.test_f1);
    if (r + 1 < runs.size()) out += ",";
    out += "\n";
  }
  out += "]}\n";
  return out;
}

}  // namespace promptem::golden

#endif  // PROMPTEM_TESTS_TRAIN_GOLDEN_SUPPORT_H_
