// Tests for tokenization, vocabulary construction, and TF-IDF
// summarization (Appendix F).

#include <gtest/gtest.h>

#include "text/tfidf.h"
#include "text/tokenizer.h"
#include "text/vocab.h"

namespace promptem::text {
namespace {

TEST(TokenizerTest, LowercasesShortWords) {
  auto toks = WordTokenize("The Cat");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], "the");
  EXPECT_EQ(toks[1], "cat");
}

TEST(TokenizerTest, SplitsDigitsIntoSingles) {
  auto toks = WordTokenize("2012");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0], "2");
  EXPECT_EQ(toks[3], "2");
}

TEST(TokenizerTest, ChunksLongWords) {
  auto toks = WordTokenize("marberton");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0], "mar");
  EXPECT_EQ(toks[1], "ber");
  EXPECT_EQ(toks[2], "ton");
}

TEST(TokenizerTest, AbbreviationSharesChunkWithFullForm) {
  // "marber" -> mar ber; "mar." -> mar .  — overlap survives abbreviation.
  auto full = WordTokenize("marber");
  auto abbrev = WordTokenize("mar.");
  EXPECT_EQ(full[0], abbrev[0]);
}

TEST(TokenizerTest, KeepsSpecialTagsWhole) {
  auto toks = WordTokenize("[COL] year [VAL] x [MASK]");
  EXPECT_EQ(toks[0], "[COL]");
  EXPECT_EQ(toks[1], "year");
  EXPECT_EQ(toks[2], "[VAL]");
  EXPECT_EQ(toks.back(), "[MASK]");
}

TEST(TokenizerTest, PunctuationBecomesTokens) {
  auto toks = WordTokenize("a-b");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1], "-");
}

TEST(TokenizerTest, EmptyInput) {
  EXPECT_TRUE(WordTokenize("").empty());
  EXPECT_TRUE(WordTokenize("   ").empty());
}

TEST(TokenizerTest, BracketNotATagFallsThrough) {
  // "[12]" is not alphabetic inside -> not treated as a tag.
  auto toks = WordTokenize("[12]");
  EXPECT_GT(toks.size(), 1u);
}

TEST(VocabTest, SpecialTokensPreinstalled) {
  Vocab v;
  EXPECT_EQ(v.size(), SpecialTokens::kCount);
  EXPECT_EQ(v.ToId("[MASK]"), SpecialTokens::kMask);
  EXPECT_EQ(v.ToId("[COL]"), SpecialTokens::kCol);
  EXPECT_EQ(v.ToToken(SpecialTokens::kCls), "[CLS]");
}

TEST(VocabTest, AddAndLookup) {
  Vocab v;
  const int id = v.AddToken("cat");
  EXPECT_EQ(v.ToId("cat"), id);
  EXPECT_EQ(v.AddToken("cat"), id);  // idempotent
  EXPECT_TRUE(v.Contains("cat"));
  EXPECT_FALSE(v.Contains("dog"));
  EXPECT_EQ(v.ToId("dog"), SpecialTokens::kUnk);
}

TEST(VocabTest, BuildVocabFrequencyOrder) {
  std::vector<std::vector<std::string>> docs = {
      {"a", "a", "a", "b"}, {"a", "b", "c"}};
  Vocab v = BuildVocab(docs, /*min_count=*/1, /*max_size=*/0);
  EXPECT_LT(v.ToId("a"), v.ToId("b"));
  EXPECT_LT(v.ToId("b"), v.ToId("c"));
}

TEST(VocabTest, BuildVocabMinCount) {
  std::vector<std::vector<std::string>> docs = {{"a", "a", "b"}};
  Vocab v = BuildVocab(docs, /*min_count=*/2, /*max_size=*/0);
  EXPECT_TRUE(v.Contains("a"));
  EXPECT_FALSE(v.Contains("b"));
}

TEST(VocabTest, BuildVocabAlwaysKeep) {
  std::vector<std::vector<std::string>> docs = {{"a"}};
  Vocab v = BuildVocab(docs, 1, 0, {"matched", "mismatched"});
  EXPECT_TRUE(v.Contains("matched"));
  EXPECT_TRUE(v.Contains("mismatched"));
}

TEST(VocabTest, BuildVocabMaxSize) {
  std::vector<std::vector<std::string>> docs = {{"a", "b", "c", "d"}};
  Vocab v = BuildVocab(docs, 1, SpecialTokens::kCount + 2);
  EXPECT_EQ(v.size(), SpecialTokens::kCount + 2);
}

TEST(EncodeTest, RoundTripThroughIds) {
  std::vector<std::vector<std::string>> docs = {{"cat", "dog"}};
  Vocab v = BuildVocab(docs, 1, 0);
  auto ids = EncodeText(v, "cat dog cat");
  EXPECT_EQ(DecodeIds(v, ids), "cat dog cat");
}

TEST(TfIdfTest, RareTokenScoresHigher) {
  std::vector<std::vector<std::string>> docs = {
      {"the", "rare"}, {"the", "common"}, {"the", "common"}};
  TfIdf tfidf(docs);
  EXPECT_GT(tfidf.Idf("rare"), tfidf.Idf("the"));
  EXPECT_GT(tfidf.Idf("unseen"), tfidf.Idf("rare"));
}

TEST(TfIdfTest, ScoreCombinesTfAndIdf) {
  std::vector<std::vector<std::string>> docs = {{"x", "y"}, {"y"}};
  TfIdf tfidf(docs);
  std::vector<std::string> doc = {"x", "x", "y"};
  EXPECT_GT(tfidf.Score("x", doc), tfidf.Score("y", doc));
}

TEST(StopwordTest, CommonWordsAndPunct) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword(","));
  EXPECT_FALSE(IsStopword("matched"));
}

TEST(SummarizeTest, ShortDocUnchanged) {
  std::vector<std::vector<std::string>> docs = {{"a", "b"}};
  TfIdf tfidf(docs);
  std::vector<std::string> doc = {"a", "b"};
  EXPECT_EQ(SummarizeTokens(tfidf, doc, 5), doc);
}

TEST(SummarizeTest, KeepsHighTfIdfDropsStopwords) {
  std::vector<std::vector<std::string>> docs = {
      {"the", "widget"}, {"the", "gadget"}, {"the", "thing"}};
  TfIdf tfidf(docs);
  std::vector<std::string> doc = {"the", "widget", "the", "gadget", "the"};
  auto out = SummarizeTokens(tfidf, doc, 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "widget");
  EXPECT_EQ(out[1], "gadget");
}

TEST(SummarizeTest, PreservesOriginalOrder) {
  std::vector<std::vector<std::string>> docs = {{"z", "a", "q"}};
  TfIdf tfidf(docs);
  std::vector<std::string> doc = {"z", "a", "q", "z", "a", "q"};
  auto out = SummarizeTokens(tfidf, doc, 3);
  // Whatever survives must appear in original relative order.
  for (size_t i = 1; i < out.size(); ++i) {
    auto pos_prev = std::find(doc.begin(), doc.end(), out[i - 1]);
    auto pos_cur = std::find(pos_prev, doc.end(), out[i]);
    EXPECT_NE(pos_cur, doc.end());
  }
}

}  // namespace
}  // namespace promptem::text
