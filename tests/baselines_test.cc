// Tests for the eight baseline matchers and the unified method runner.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "baselines/bert_ft.h"
#include "core/mem_tracker.h"
#include "baselines/common.h"
#include "baselines/dader.h"
#include "baselines/deepmatcher.h"
#include "baselines/ditto.h"
#include "baselines/rotom.h"
#include "baselines/sentence_bert.h"
#include "baselines/tdmatch.h"
#include "baselines/tdmatch_star.h"

namespace promptem::baselines {
namespace {

const lm::PretrainedLM& TinyLM() {
  static const lm::PretrainedLM* kLm = [] {
    data::BenchmarkGenOptions small;
    small.size_scale = 0.3;
    std::vector<data::GemDataset> datasets = {
        data::GenerateBenchmark(data::BenchmarkKind::kRelHeter, 13, small),
    };
    lm::Corpus corpus = lm::BuildCorpus(datasets, 13);
    nn::TransformerConfig config;
    config.dim = 16;
    config.num_layers = 1;
    config.num_heads = 2;
    config.ffn_dim = 32;
    config.max_seq_len = 96;
    lm::MlmOptions options;
    options.epochs = 1;
    options.max_seq_len = 96;
    core::Rng rng(13);
    return lm::PretrainedLM::Pretrain(corpus, config, options,
                                      lm::RequiredPromptTokens(), &rng)
        .release();
  }();
  return *kLm;
}

data::GemDataset SmallDataset() {
  data::BenchmarkGenOptions small;
  small.size_scale = 0.3;
  return data::GenerateBenchmark(data::BenchmarkKind::kRelHeter, 13, small);
}

em::EncodedPair SampleEncoded() {
  data::GemDataset ds = SmallDataset();
  em::PairEncoder encoder = em::MakePairEncoder(TinyLM(), ds);
  return encoder.Encode(ds, ds.train[0]);
}

// --- registry ---

TEST(RegistryTest, MethodNamesUnique) {
  std::set<std::string> names;
  for (Method m : BaselineMethods()) names.insert(MethodName(m));
  for (Method m : PromptEmVariants()) names.insert(MethodName(m));
  EXPECT_EQ(names.size(),
            BaselineMethods().size() + PromptEmVariants().size());
}

TEST(RegistryTest, EightBaselinesFourVariants) {
  EXPECT_EQ(BaselineMethods().size(), 8u);
  EXPECT_EQ(PromptEmVariants().size(), 4u);
}

TEST(RegistryTest, AblationConfigSwitches) {
  RunOptions options;
  EXPECT_FALSE(
      MakePromptEmConfig(Method::kPromptEMNoPT, options).use_prompt_tuning);
  EXPECT_FALSE(MakePromptEmConfig(Method::kPromptEMNoLST, options)
                   .use_self_training);
  EXPECT_FALSE(
      MakePromptEmConfig(Method::kPromptEMNoDDP, options).use_data_pruning);
  em::PromptEMConfig full = MakePromptEmConfig(Method::kPromptEM, options);
  EXPECT_TRUE(full.use_prompt_tuning);
  EXPECT_TRUE(full.use_self_training);
  EXPECT_TRUE(full.use_data_pruning);
}

// --- DeepMatcher ---

TEST(DeepMatcherTest, ForwardAndGradients) {
  core::Rng rng(1);
  DeepMatcherModel model(TinyLM().vocab(), 8, 4, &rng);
  em::EncodedPair x = SampleEncoded();
  core::Rng frng(2);
  tensor::Tensor loss = model.Loss(x, 1, &frng);
  EXPECT_TRUE(std::isfinite(loss.item()));
  model.ZeroGrad();
  loss.Backward();
  auto probs = model.Probs(x, &frng);
  EXPECT_NEAR(probs[0] + probs[1], 1.0f, 1e-4f);
}

TEST(DeepMatcherTest, HandlesEmptySide) {
  core::Rng rng(1);
  DeepMatcherModel model(TinyLM().vocab(), 8, 4, &rng);
  em::EncodedPair x;
  x.right_ids = {10, 11};
  core::Rng frng(2);
  EXPECT_TRUE(std::isfinite(model.Loss(x, 0, &frng).item()));
}

// --- SentenceBERT ---

TEST(SentenceBertTest, SiameseSymmetricArchitecture) {
  core::Rng rng(1);
  SentenceBertModel model(TinyLM(), &rng);
  em::EncodedPair x = SampleEncoded();
  core::Rng frng(2);
  auto probs = model.Probs(x, &frng);
  EXPECT_NEAR(probs[0] + probs[1], 1.0f, 1e-4f);
  // One shared encoder: its parameters appear once.
  int encoder_params = 0;
  for (const auto& np : model.NamedParameters()) {
    encoder_params += np.name.rfind("encoder.", 0) == 0;
  }
  EXPECT_GT(encoder_params, 0);
}

// --- BERT factory ---

TEST(BertBaselineTest, IsFinetuneModel) {
  core::Rng rng(1);
  auto model = MakeBertBaseline(TinyLM(), &rng);
  ASSERT_NE(model, nullptr);
  EXPECT_NE(dynamic_cast<em::FinetuneModel*>(model.get()), nullptr);
}

// --- Ditto augmentation ---

TEST(DittoTest, AugmentPreservesLabel) {
  em::EncodedPair x = SampleEncoded();
  core::Rng rng(3);
  for (auto op : {AugOp::kSpanDeletion, AugOp::kTokenShuffle,
                  AugOp::kSideTruncate}) {
    em::EncodedPair y = Augment(x, op, &rng);
    EXPECT_EQ(y.label, x.label);
    EXPECT_LE(y.left_ids.size(), x.left_ids.size());
    EXPECT_LE(y.right_ids.size(), x.right_ids.size());
  }
}

TEST(DittoTest, ShuffleKeepsMultiset) {
  em::EncodedPair x = SampleEncoded();
  core::Rng rng(4);
  em::EncodedPair y = Augment(x, AugOp::kTokenShuffle, &rng);
  auto sorted = [](std::vector<int> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(y.left_ids).size() + sorted(y.right_ids).size(),
            x.left_ids.size() + x.right_ids.size());
}

TEST(DittoTest, AugmentSetSize) {
  std::vector<em::EncodedPair> examples = {SampleEncoded(), SampleEncoded()};
  core::Rng rng(5);
  auto out = AugmentSet(examples, 3, &rng);
  EXPECT_EQ(out.size(), 6u);
}

TEST(DittoTest, ShortSequenceUnharmed) {
  em::EncodedPair x;
  x.left_ids = {9};
  x.right_ids = {10};
  core::Rng rng(6);
  em::EncodedPair y = Augment(x, AugOp::kSpanDeletion, &rng);
  EXPECT_EQ(y.left_ids.size(), 1u);
  EXPECT_EQ(y.right_ids.size(), 1u);
}

// --- Rotom ---

TEST(RotomTest, MetaFilterKeepsConsistentOnly) {
  core::Rng rng(7);
  em::FinetuneModel seed(TinyLM(), &rng);
  data::GemDataset ds = SmallDataset();
  em::PairEncoder encoder = em::MakePairEncoder(TinyLM(), ds);
  auto candidates = encoder.EncodeAll(ds, ds.train);
  auto kept = MetaFilterAugmented(&seed, candidates, 0.0f);
  // With threshold 0, kept = candidates whose label the seed model agrees
  // with; those must be a subset with consistent predictions.
  EXPECT_LE(kept.size(), candidates.size());
  core::Rng unused(0);
  for (const auto& x : kept) {
    EXPECT_EQ(seed.Probs(x, &unused)[1] >= 0.5f ? 1 : 0, x.label);
  }
}

TEST(RotomTest, PipelineProducesModel) {
  data::GemDataset ds = SmallDataset();
  em::PairEncoder encoder = em::MakePairEncoder(TinyLM(), ds);
  auto labeled = encoder.EncodeAll(ds, ds.train);
  labeled.resize(std::min<size_t>(labeled.size(), 12));
  auto valid = encoder.EncodeAll(ds, ds.valid);
  em::TrainOptions options;
  options.epochs = 2;
  core::Rng rng(8);
  auto model = RunRotom(TinyLM(), labeled, valid, options, &rng);
  ASSERT_NE(model, nullptr);
  em::Metrics m = em::Evaluate(model.get(), valid);
  EXPECT_GE(m.Accuracy(), 0.0);
}

// --- DADER ---

TEST(DaderTest, SourceMappingSymmetricProducts) {
  EXPECT_EQ(DaderSourceFor(data::BenchmarkKind::kSemiTextW),
            data::BenchmarkKind::kSemiTextC);
  EXPECT_EQ(DaderSourceFor(data::BenchmarkKind::kSemiTextC),
            data::BenchmarkKind::kSemiTextW);
  for (auto kind : data::AllBenchmarks()) {
    EXPECT_NE(DaderSourceFor(kind), kind);
  }
}

TEST(DaderTest, TransferPipelineRuns) {
  data::GemDataset ds = SmallDataset();
  em::PairEncoder encoder = em::MakePairEncoder(TinyLM(), ds);
  auto labeled = encoder.EncodeAll(ds, ds.train);
  labeled.resize(8);
  auto unlabeled = encoder.EncodeAll(ds, ds.test);
  auto valid = encoder.EncodeAll(ds, ds.valid);
  em::TrainOptions options;
  options.epochs = 2;
  core::Rng rng(9);
  // Source = the same tiny dataset (adequate for a pipeline test).
  auto model = RunDader(TinyLM(), labeled, labeled, unlabeled, valid,
                        options, &rng);
  ASSERT_NE(model, nullptr);
}

// --- TDmatch ---

TEST(TdMatchTest, GraphTokenizeKeepsDigitRunsWhole) {
  auto toks = GraphTokenize("isbn 9780672336072 sams!");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1], "9780672336072");
  EXPECT_EQ(toks[2], "sams");
}

TEST(TdMatchTest, GraphStructure) {
  data::GemDataset ds = SmallDataset();
  TdMatchGraph graph(ds);
  EXPECT_EQ(graph.num_left(), static_cast<int>(ds.left_table.size()));
  EXPECT_EQ(graph.num_right(), static_cast<int>(ds.right_table.size()));
  EXPECT_GT(graph.num_nodes(), graph.num_left() + graph.num_right());
  EXPECT_GT(graph.num_edges(), 0);
}

TEST(TdMatchTest, PprIsDistribution) {
  data::GemDataset ds = SmallDataset();
  TdMatchGraph graph(ds);
  auto ppr = graph.Ppr(graph.LeftNode(0));
  double sum = 0.0;
  for (float v : ppr) {
    EXPECT_GE(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-3);
}

TEST(TdMatchTest, SelfScoreHighestAmongRecords) {
  // The PPR of a left record should place its own matching right record
  // (index-aligned rendering of the same entity) above most others.
  data::GemDataset ds = SmallDataset();
  TdMatchGraph graph(ds);
  const float self_score = graph.PairScore(0, 0);
  int better = 0;
  for (int j = 0; j < graph.num_right(); ++j) {
    if (j != 0 && graph.PairScore(0, j) > self_score) ++better;
  }
  EXPECT_LE(better, graph.num_right() / 4);
}

TEST(TdMatchTest, PredictPairsUnsupervisedQuality) {
  data::GemDataset ds = SmallDataset();
  TdMatchGraph graph(ds);
  std::vector<int> gold;
  for (const auto& p : ds.test) gold.push_back(p.label);
  auto preds = graph.PredictPairs(ds.test);
  em::Metrics m = em::ComputeMetrics(preds, gold);
  // Unsupervised, but far better than random on the easy benchmark.
  EXPECT_GT(m.F1(), 0.3);
}

TEST(TdMatchTest, EmbeddingsTrackMemory) {
  data::GemDataset ds = SmallDataset();
  const size_t before = core::MemTracker::CurrentBytes();
  {
    TdMatchGraph graph(ds);
    graph.ComputeAllEmbeddings();
    EXPECT_TRUE(graph.embeddings_ready());
    EXPECT_GT(core::MemTracker::CurrentBytes(), before);
  }
  EXPECT_EQ(core::MemTracker::CurrentBytes(), before);
}

TEST(TdMatchTest, ProjectedEmbeddingDeterministic) {
  data::GemDataset ds = SmallDataset();
  TdMatchGraph graph(ds);
  auto a = graph.ProjectedEmbedding(true, 0, 16, 99);
  auto b = graph.ProjectedEmbedding(true, 0, 16, 99);
  EXPECT_EQ(a, b);
  auto c = graph.ProjectedEmbedding(true, 0, 16, 100);
  EXPECT_NE(a, c);
}

TEST(TdMatchStarTest, TrainsAndPredicts) {
  data::GemDataset ds = SmallDataset();
  TdMatchGraph graph(ds);
  graph.ComputeAllEmbeddings();
  core::Rng rng(10);
  TdMatchStar star(&graph, 16, 42, &rng);
  star.Train(ds.train, /*epochs=*/10, /*lr=*/5e-3f, &rng);
  em::Metrics train_metrics = star.Evaluate(ds.train);
  // Should fit the training pairs better than chance.
  EXPECT_GT(train_metrics.Accuracy(), 0.55);
  auto preds = star.Predict(ds.test);
  EXPECT_EQ(preds.size(), ds.test.size());
}

// --- unified runner (smoke over the cheap methods) ---

TEST(RunMethodTest, DeepMatcherAndTdMatchProduceResults) {
  data::GemDataset ds = SmallDataset();
  core::Rng rng(11);
  data::LowResourceSplit split = data::MakeLowResourceSplit(ds, 0.25, &rng);
  RunOptions options;
  options.epochs = 2;
  options.student_epochs = 2;
  for (Method m : {Method::kDeepMatcher, Method::kTdMatch}) {
    MethodResult r = RunMethod(m, TinyLM(), data::BenchmarkKind::kRelHeter,
                               ds, split, options);
    EXPECT_GE(r.test.F1(), 0.0) << MethodName(m);
    EXPECT_GE(r.train_seconds, 0.0);
  }
}

}  // namespace
}  // namespace promptem::baselines
