// Property-style parameterized sweeps (TEST_P) over the numeric core:
// gradient checks for MatMul across shape/transpose combinations,
// softmax/log-softmax invariants across widths, serializer/tokenizer
// round-trip properties across all benchmarks, and RNG stream
// independence across seeds.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/benchmarks.h"
#include "data/json.h"
#include "data/serializer.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "text/tokenizer.h"

namespace promptem {
namespace {

namespace ops = tensor::ops;

tensor::Tensor RandomTensor(std::vector<int> shape, uint64_t seed) {
  core::Rng rng(seed);
  tensor::Tensor t = tensor::Tensor::Zeros(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = rng.Uniform(-1.0f, 1.0f);
  }
  return t;
}

// ---------------------------------------------------------------------------
// MatMul gradients across (m, k, n, trans_a, trans_b).
// ---------------------------------------------------------------------------

using MatMulCase = std::tuple<int, int, int, bool, bool>;

class MatMulGradSweep : public ::testing::TestWithParam<MatMulCase> {};

TEST_P(MatMulGradSweep, NumericalGradient) {
  const auto [m, k, n, trans_a, trans_b] = GetParam();
  const std::vector<int> a_shape =
      trans_a ? std::vector<int>{k, m} : std::vector<int>{m, k};
  const std::vector<int> b_shape =
      trans_b ? std::vector<int>{n, k} : std::vector<int>{k, n};

  tensor::Tensor a = RandomTensor(a_shape, 100 + m);
  tensor::Tensor b = RandomTensor(b_shape, 200 + n);
  a.set_requires_grad(true);
  b.set_requires_grad(true);

  auto loss_fn = [&]() {
    tensor::Tensor c = ops::MatMul(a, b, trans_a, trans_b);
    return ops::Sum(ops::Mul(c, c));
  };
  a.ZeroGrad();
  b.ZeroGrad();
  loss_fn().Backward();
  std::vector<float> ga(a.grad(), a.grad() + a.numel());
  std::vector<float> gb(b.grad(), b.grad() + b.numel());

  const float h = 1e-3f;
  auto check = [&](tensor::Tensor* t, const std::vector<float>& analytic) {
    for (int64_t i = 0; i < t->numel(); ++i) {
      const float original = t->data()[i];
      t->data()[i] = original + h;
      const float up = loss_fn().item();
      t->data()[i] = original - h;
      const float down = loss_fn().item();
      t->data()[i] = original;
      EXPECT_NEAR(analytic[static_cast<size_t>(i)], (up - down) / (2 * h),
                  5e-2f);
    }
  };
  check(&a, ga);
  check(&b, gb);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulGradSweep,
    ::testing::Values(MatMulCase{1, 1, 1, false, false},
                      MatMulCase{2, 3, 4, false, false},
                      MatMulCase{2, 3, 4, false, true},
                      MatMulCase{2, 3, 4, true, false},
                      MatMulCase{2, 3, 4, true, true},
                      MatMulCase{1, 8, 2, false, true},
                      MatMulCase{5, 1, 5, false, false}));

// ---------------------------------------------------------------------------
// Softmax invariants across widths.
// ---------------------------------------------------------------------------

class SoftmaxWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(SoftmaxWidthSweep, RowsSumToOneAndShiftInvariant) {
  const int cols = GetParam();
  tensor::Tensor x = RandomTensor({3, cols}, 300 + cols);
  tensor::Tensor y = ops::Softmax(x);
  for (int i = 0; i < 3; ++i) {
    float sum = 0.0f;
    for (int j = 0; j < cols; ++j) {
      EXPECT_GE(y.at(i, j), 0.0f);
      sum += y.at(i, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }
  // Shift invariance: softmax(x + c) == softmax(x).
  tensor::Tensor shifted = ops::AddScalar(x, 5.0f);
  tensor::Tensor y2 = ops::Softmax(shifted);
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_NEAR(y.data()[i], y2.data()[i], 1e-5f);
  }
}

TEST_P(SoftmaxWidthSweep, LogSoftmaxConsistent) {
  const int cols = GetParam();
  tensor::Tensor x = RandomTensor({2, cols}, 400 + cols);
  tensor::Tensor soft = ops::Softmax(x);
  tensor::Tensor logsoft = ops::LogSoftmax(x);
  for (int64_t i = 0; i < soft.numel(); ++i) {
    EXPECT_NEAR(std::exp(logsoft.data()[i]), soft.data()[i], 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SoftmaxWidthSweep,
                         ::testing::Values(1, 2, 7, 64, 333));

// ---------------------------------------------------------------------------
// Serializer / JSON / tokenizer properties across all eight benchmarks.
// ---------------------------------------------------------------------------

class BenchmarkPropertySweep
    : public ::testing::TestWithParam<data::BenchmarkKind> {};

TEST_P(BenchmarkPropertySweep, SerializationTagsBalance) {
  data::BenchmarkGenOptions small;
  small.size_scale = 0.2;
  data::GemDataset ds = data::GenerateBenchmark(GetParam(), 9, small);
  for (const auto& record : ds.left_table) {
    const std::string s = data::SerializeRecord(record);
    if (record.format == data::RecordFormat::kTextual) {
      EXPECT_EQ(s.find("[COL]"), std::string::npos);
      continue;
    }
    // Every [COL] is followed (eventually) by a [VAL]; counts match.
    size_t cols = 0, vals = 0, pos = 0;
    while ((pos = s.find("[COL]", pos)) != std::string::npos) {
      ++cols;
      pos += 5;
    }
    pos = 0;
    while ((pos = s.find("[VAL]", pos)) != std::string::npos) {
      ++vals;
      pos += 5;
    }
    EXPECT_EQ(cols, vals);
    EXPECT_GE(cols, record.attrs.size());
  }
}

TEST_P(BenchmarkPropertySweep, JsonRoundTripForSemiStructured) {
  data::BenchmarkGenOptions small;
  small.size_scale = 0.2;
  data::GemDataset ds = data::GenerateBenchmark(GetParam(), 9, small);
  for (const auto& record : ds.left_table) {
    if (record.format != data::RecordFormat::kSemiStructured) continue;
    auto back = data::ParseJsonRecord(data::RecordToJson(record));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(data::SerializeRecord(back.value()),
              data::SerializeRecord(record));
  }
}

TEST_P(BenchmarkPropertySweep, TokenizerNeverEmitsEmptyTokens) {
  data::BenchmarkGenOptions small;
  small.size_scale = 0.2;
  data::GemDataset ds = data::GenerateBenchmark(GetParam(), 9, small);
  for (const auto& record : ds.right_table) {
    for (const auto& tok :
         text::WordTokenize(data::SerializeRecord(record))) {
      EXPECT_FALSE(tok.empty());
      EXPECT_LE(tok.size(), 8u);  // chunking bounds token length
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkPropertySweep,
    ::testing::ValuesIn(data::AllBenchmarks()),
    [](const ::testing::TestParamInfo<data::BenchmarkKind>& info) {
      std::string name = data::GetBenchmarkInfo(info.param).name;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// RNG seed sweep: distinct seeds give distinct streams; same seed agrees.
// ---------------------------------------------------------------------------

class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, ReproducibleAndWellDistributed) {
  const uint64_t seed = GetParam();
  core::Rng a(seed);
  core::Rng b(seed);
  double mean = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double v = a.NextDouble();
    EXPECT_EQ(v, b.NextDouble());
    mean += v;
  }
  EXPECT_NEAR(mean / 2000.0, 0.5, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 42ull,
                                           0xDEADBEEFull,
                                           0xFFFFFFFFFFFFFFFFull));

}  // namespace
}  // namespace promptem
