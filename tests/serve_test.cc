// Tests for the resident serving layer: wire-protocol round trips and
// malformed-frame rejection, BatchQueue admission control and drain
// semantics, MatchService coalescing/caching exactness, and the full
// ServeDaemon over real TCP sockets — served scores bitwise identical
// to the in-process one-shot path, queue overflow shedding, deadline
// expiry, and a client killed mid-stream never taking the daemon down.
// Labels: serve, asan.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/matchers.h"
#include "core/rng.h"
#include "core/signals.h"
#include "data/benchmarks.h"
#include "data/synthetic.h"
#include "lm/pretrained_lm.h"
#include "promptem/embed_cache.h"
#include "serve/batch_queue.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/service.h"
#include "train/registry.h"

namespace promptem {
namespace {

const lm::PretrainedLM& FixtureLM() {
  static const lm::PretrainedLM* kLm = [] {
    auto loaded =
        lm::PretrainedLM::Load("tests/data/promptem_integration_lm");
    if (!loaded.ok()) {
      std::fprintf(stderr,
                   "fixture LM missing (%s); tests must run from the repo "
                   "root\n",
                   loaded.status().ToString().c_str());
      std::abort();
    }
    return loaded.value().release();
  }();
  return *kLm;
}

data::GemDataset ServeDataset() {
  data::SyntheticTableOptions options;
  options.rows = 40;
  options.seed = 7;
  data::SyntheticTables tables = data::GenerateSyntheticTables(options);
  return tables.ToDataset(64, 7 ^ 0xDA7AULL);
}

train::RunOptions FastOptions() {
  train::RunOptions options;
  options.seed = 7;
  options.epochs = 2;
  options.student_epochs = 2;
  return options;
}

/// A fresh service over the fixture dataset with DeepMatcher trained
/// (cheap: two epochs on 40-row tables).
std::unique_ptr<serve::MatchService> MakeService(
    serve::MatchService::Config config = {}) {
  if (config.default_matcher == "PromptEM") {
    config.default_matcher = "DeepMatcher";
  }
  data::GemDataset dataset = ServeDataset();
  core::Rng rng(7);
  data::LowResourceSplit split =
      data::MakeLowResourceSplit(dataset, 0.25, &rng);
  auto service = std::make_unique<serve::MatchService>(
      &FixtureLM(), std::move(dataset), std::move(split), FastOptions(),
      config);
  const core::Status trained = service->TrainAll();
  EXPECT_TRUE(trained.ok()) << trained.ToString();
  return service;
}

/// The CLI one-shot reference: an independently trained matcher scoring
/// the same pairs directly through Matcher::ScoreProbs.
std::vector<std::array<float, 2>> OneShotReference(
    const std::vector<data::PairExample>& pairs) {
  baselines::EnsureBaselineMatchersRegistered();
  data::GemDataset dataset = ServeDataset();
  core::Rng rng(7);
  data::LowResourceSplit split =
      data::MakeLowResourceSplit(dataset, 0.25, &rng);
  train::MatcherContext ctx;
  ctx.lm = &FixtureLM();
  ctx.dataset = &dataset;
  ctx.split = &split;
  ctx.options = FastOptions();
  auto matcher = train::MatcherRegistry::Instance().Create("DeepMatcher");
  matcher->Train(ctx);
  return matcher->ScoreProbs(ctx, pairs);
}

std::vector<data::PairExample> SomePairs(size_t n, uint64_t seed) {
  const data::GemDataset dataset = ServeDataset();
  core::Rng rng(seed);
  std::vector<data::PairExample> pairs(n);
  for (auto& pair : pairs) {
    pair.left_index =
        static_cast<int>(rng.NextU64(dataset.left_table.size()));
    pair.right_index =
        static_cast<int>(rng.NextU64(dataset.right_table.size()));
    pair.label = data::kUnlabeledLabel;
  }
  return pairs;
}

bool BitwiseEqual(const std::vector<std::array<float, 2>>& a,
                  const std::vector<std::array<float, 2>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(a[i].data(), b[i].data(), sizeof(float) * 2) != 0) {
      return false;
    }
  }
  return true;
}

/// Test-only matcher whose ScoreProbs sleeps: pins queue-overflow and
/// deadline behavior without depending on model speed. Hidden from
/// --list-matchers; probabilities are a pure function of the pair so
/// the coalescing contract still holds.
class SlowMatcher : public train::Matcher {
 public:
  std::string Name() const override { return "SlowTest"; }
  void Train(const train::MatcherContext&) override {}
  std::vector<int> Predict(
      const train::MatcherContext&,
      const std::vector<data::PairExample>& pairs) override {
    return std::vector<int>(pairs.size(), 0);
  }
  std::vector<std::array<float, 2>> ScoreProbs(
      const train::MatcherContext&,
      const std::vector<data::PairExample>& pairs) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    std::vector<std::array<float, 2>> probs(pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
      const float p =
          static_cast<float>(pairs[i].left_index % 7) / 8.0f;
      probs[i] = {1.0f - p, p};
    }
    return probs;
  }
};

void EnsureSlowMatcherRegistered() {
  static const bool kOnce = [] {
    train::MatcherRegistry::Instance().Register(
        "SlowTest", [] { return std::make_unique<SlowMatcher>(); },
        /*listed=*/false);
    return true;
  }();
  (void)kOnce;
}

// --- protocol ---

TEST(ServeProtocolTest, RequestRoundTrip) {
  serve::MatchRequest request;
  request.id = 42;
  request.matcher = "DeepMatcher";
  request.deadline_ms = 250;
  request.pairs = SomePairs(5, 3);
  auto parsed = serve::ParseMatchRequest(serve::SerializeRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().id, 42u);
  EXPECT_EQ(parsed.value().matcher, "DeepMatcher");
  EXPECT_EQ(parsed.value().deadline_ms, 250);
  ASSERT_EQ(parsed.value().pairs.size(), request.pairs.size());
  for (size_t i = 0; i < request.pairs.size(); ++i) {
    EXPECT_EQ(parsed.value().pairs[i].left_index,
              request.pairs[i].left_index);
    EXPECT_EQ(parsed.value().pairs[i].right_index,
              request.pairs[i].right_index);
    EXPECT_EQ(parsed.value().pairs[i].label, data::kUnlabeledLabel);
  }
}

TEST(ServeProtocolTest, InfoRequestRoundTrip) {
  serve::MatchRequest request;
  request.id = 9;
  request.op = serve::RequestOp::kInfo;
  auto parsed = serve::ParseMatchRequest(serve::SerializeRequest(request));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().op, serve::RequestOp::kInfo);
}

TEST(ServeProtocolTest, ResponseFloatsSurviveTheWireBitwise) {
  serve::MatchResponse response;
  response.id = 7;
  response.status = serve::ResponseStatus::kOk;
  // Awkward floats: denormal-adjacent, repeating-binary, and exact.
  response.probs = {{0.1f, 0.9f},
                    {1.0f / 3.0f, 2.0f / 3.0f},
                    {1.1754944e-38f, 1.0f - 1.1920929e-7f}};
  response.labels = {1, 1, 1};
  response.batch_size = 17;
  auto parsed =
      serve::ParseMatchResponse(serve::SerializeResponse(response));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(BitwiseEqual(parsed.value().probs, response.probs));
  EXPECT_EQ(parsed.value().batch_size, 17u);
  EXPECT_EQ(parsed.value().labels, response.labels);
}

TEST(ServeProtocolTest, MalformedRequestsAreRejected) {
  const char* bad[] = {
      "not json at all",
      "[1,2,3]",
      "{\"id\": -1, \"pairs\": [[0,0]]}",
      "{\"id\": 1.5, \"pairs\": [[0,0]]}",
      "{\"pairs\": []}",
      "{\"pairs\": [[0]]}",
      "{\"pairs\": [[0,1,2]]}",
      "{\"pairs\": [[-1,0]]}",
      "{\"pairs\": [[0,0.5]]}",
      "{\"pairs\": 3}",
      "{\"op\": \"explode\", \"pairs\": [[0,0]]}",
      "{\"deadline_ms\": -5, \"pairs\": [[0,0]]}",
      "{\"matcher\": 7, \"pairs\": [[0,0]]}",
      "{}",
  };
  for (const char* request : bad) {
    EXPECT_FALSE(serve::ParseMatchRequest(request).ok()) << request;
  }
}

TEST(ServeProtocolTest, PairCapIsEnforced) {
  std::string request = "{\"pairs\":[";
  for (size_t i = 0; i <= serve::kMaxPairsPerRequest; ++i) {
    if (i > 0) request += ',';
    request += "[0,0]";
  }
  request += "]}";
  EXPECT_FALSE(serve::ParseMatchRequest(request).ok());
}

TEST(ServeProtocolTest, FrameRoundTripAndErrors) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);

  ASSERT_TRUE(serve::WriteFrame(fds[1], "{\"id\":1}").ok());
  std::string payload;
  ASSERT_TRUE(serve::ReadFrame(fds[0], &payload).ok());
  EXPECT_EQ(payload, "{\"id\":1}");

  // Oversized declared length: rejected before any allocation happens.
  const uint8_t huge[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_TRUE(serve::WriteFull(fds[1], huge, 4));
  EXPECT_EQ(serve::ReadFrame(fds[0], &payload).code(),
            core::StatusCode::kInvalidArgument);

  // Truncated payload then EOF.
  const uint8_t header[4] = {0, 0, 0, 100};
  ASSERT_TRUE(serve::WriteFull(fds[1], header, 4));
  ASSERT_TRUE(serve::WriteFull(fds[1], "short", 5));
  ::close(fds[1]);
  EXPECT_EQ(serve::ReadFrame(fds[0], &payload).code(),
            core::StatusCode::kInvalidArgument);

  // Clean EOF at a frame boundary is NotFound, not an error.
  EXPECT_EQ(serve::ReadFrame(fds[0], &payload).code(),
            core::StatusCode::kNotFound);
  ::close(fds[0]);
}

// --- batch queue ---

serve::PendingRequest Pending(uint64_t id,
                              std::vector<serve::MatchResponse>* sink,
                              std::mutex* sink_mu) {
  serve::PendingRequest pending;
  pending.request.id = id;
  pending.request.pairs = SomePairs(1, id);
  pending.enqueue_time = std::chrono::steady_clock::now();
  pending.complete = [sink, sink_mu](serve::MatchResponse response) {
    std::lock_guard<std::mutex> lock(*sink_mu);
    sink->push_back(std::move(response));
  };
  return pending;
}

TEST(BatchQueueTest, ShedsBeyondCapacityAndDrainsAfterClose) {
  serve::BatchQueue queue({/*capacity=*/2, /*max_batch=*/8,
                           std::chrono::microseconds{0}});
  std::vector<serve::MatchResponse> sink;
  std::mutex sink_mu;
  EXPECT_TRUE(queue.TryEnqueue(Pending(1, &sink, &sink_mu)));
  EXPECT_TRUE(queue.TryEnqueue(Pending(2, &sink, &sink_mu)));
  EXPECT_FALSE(queue.TryEnqueue(Pending(3, &sink, &sink_mu)));  // shed
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.stats().shed, 1u);

  queue.Close();
  EXPECT_FALSE(queue.TryEnqueue(Pending(4, &sink, &sink_mu)));

  // Admitted work survives Close: one batch with both requests, then the
  // empty batch that tells the consumer to exit.
  std::vector<serve::PendingRequest> batch = queue.DequeueBatch();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].request.id, 1u);
  EXPECT_EQ(batch[1].request.id, 2u);
  EXPECT_TRUE(queue.DequeueBatch().empty());
}

TEST(BatchQueueTest, MaxBatchBoundsOneDequeue) {
  serve::BatchQueue queue({/*capacity=*/16, /*max_batch=*/3,
                           std::chrono::microseconds{0}});
  std::vector<serve::MatchResponse> sink;
  std::mutex sink_mu;
  for (uint64_t id = 0; id < 8; ++id) {
    ASSERT_TRUE(queue.TryEnqueue(Pending(id, &sink, &sink_mu)));
  }
  EXPECT_EQ(queue.DequeueBatch().size(), 3u);
  EXPECT_EQ(queue.DequeueBatch().size(), 3u);
  EXPECT_EQ(queue.DequeueBatch().size(), 2u);
  EXPECT_EQ(queue.stats().batches, 3u);
  EXPECT_EQ(queue.stats().dequeued, 8u);
}

TEST(BatchQueueTest, DequeueBlocksUntilWorkArrives) {
  serve::BatchQueue queue({/*capacity=*/4, /*max_batch=*/4,
                           std::chrono::microseconds{0}});
  std::vector<serve::MatchResponse> sink;
  std::mutex sink_mu;
  std::atomic<size_t> got{0};
  std::thread consumer([&] { got = queue.DequeueBatch().size(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(got.load(), 0u);
  ASSERT_TRUE(queue.TryEnqueue(Pending(1, &sink, &sink_mu)));
  consumer.join();
  EXPECT_EQ(got.load(), 1u);
}

// --- service ---

TEST(MatchServiceTest, ServedScoresMatchOneShotPathBitwise) {
  auto service = MakeService();
  const std::vector<data::PairExample> pairs = SomePairs(12, 11);

  serve::MatchRequest request;
  request.id = 1;
  request.pairs = pairs;
  const serve::MatchResponse response = service->Score(request);
  ASSERT_EQ(response.status, serve::ResponseStatus::kOk);
  ASSERT_EQ(response.probs.size(), pairs.size());

  // The pin: a resident service and a freshly trained one-shot matcher
  // produce bit-identical probabilities for the same pairs.
  EXPECT_TRUE(BitwiseEqual(response.probs, OneShotReference(pairs)));
}

TEST(MatchServiceTest, CoalescedBatchEqualsIndividualScoring) {
  auto service = MakeService();

  std::vector<serve::MatchResponse> individual;
  for (uint64_t id = 0; id < 4; ++id) {
    serve::MatchRequest request;
    request.id = id;
    request.pairs = SomePairs(3 + id, 100 + id);
    individual.push_back(service->Score(request));
  }

  auto coalesced_service = MakeService();
  std::vector<serve::MatchResponse> coalesced;
  std::mutex mu;
  std::vector<serve::PendingRequest> batch;
  for (uint64_t id = 0; id < 4; ++id) {
    serve::PendingRequest pending;
    pending.request.id = id;
    pending.request.pairs = SomePairs(3 + id, 100 + id);
    pending.enqueue_time = std::chrono::steady_clock::now();
    pending.complete = [&coalesced, &mu](serve::MatchResponse response) {
      std::lock_guard<std::mutex> lock(mu);
      coalesced.push_back(std::move(response));
    };
    batch.push_back(std::move(pending));
  }
  coalesced_service->HandleBatch(std::move(batch));

  ASSERT_EQ(coalesced.size(), individual.size());
  size_t total_pairs = 0;
  for (size_t i = 0; i < coalesced.size(); ++i) {
    total_pairs += individual[i].probs.size();
  }
  for (size_t i = 0; i < coalesced.size(); ++i) {
    const auto& one = individual[coalesced[i].id];
    EXPECT_EQ(coalesced[i].status, serve::ResponseStatus::kOk);
    EXPECT_TRUE(BitwiseEqual(coalesced[i].probs, one.probs)) << i;
    EXPECT_EQ(coalesced[i].labels, one.labels) << i;
    // batch_size reports the real coalesced sweep width.
    EXPECT_EQ(coalesced[i].batch_size, total_pairs);
  }
  EXPECT_EQ(coalesced_service->stats().sweeps, 1u);
}

TEST(MatchServiceTest, ScoreCacheHitsAreBitwiseExactAndPersist) {
  auto cache = std::make_shared<em::EmbeddingCache>();
  serve::MatchService::Config config;
  config.score_cache = cache;
  auto service = MakeService(config);
  const std::vector<data::PairExample> pairs = SomePairs(10, 21);

  serve::MatchRequest request;
  request.id = 1;
  request.pairs = pairs;
  const serve::MatchResponse cold = service->Score(request);
  const auto after_cold = service->stats();
  EXPECT_EQ(after_cold.score_hits, 0u);

  const serve::MatchResponse warm = service->Score(request);
  const auto after_warm = service->stats();
  EXPECT_TRUE(BitwiseEqual(warm.probs, cold.probs));
  EXPECT_EQ(after_warm.score_hits, pairs.size());
  EXPECT_EQ(after_warm.pairs_scored, after_cold.pairs_scored);

  // Restart-stable: a new service over the same dataset/options reading
  // the persisted file serves every pair from cache, bitwise equal.
  const std::string path = ::testing::TempDir() + "/serve_score_cache.bin";
  ASSERT_TRUE(cache->Save(path).ok());
  auto reloaded = std::make_shared<em::EmbeddingCache>();
  ASSERT_TRUE(reloaded->Load(path).ok());
  serve::MatchService::Config warm_config;
  warm_config.score_cache = reloaded;
  auto restarted = MakeService(warm_config);
  const serve::MatchResponse revived = restarted->Score(request);
  EXPECT_TRUE(BitwiseEqual(revived.probs, cold.probs));
  EXPECT_EQ(restarted->stats().score_hits, pairs.size());
  EXPECT_EQ(restarted->stats().pairs_scored, 0u);
  std::remove(path.c_str());
}

TEST(MatchServiceTest, RejectsUnknownMatcherAndOutOfRangeIndexes) {
  auto service = MakeService();

  serve::MatchRequest unknown;
  unknown.id = 1;
  unknown.matcher = "NoSuchMatcher";
  unknown.pairs = SomePairs(1, 1);
  EXPECT_EQ(service->Score(unknown).status,
            serve::ResponseStatus::kUnknownMatcher);

  serve::MatchRequest out_of_range;
  out_of_range.id = 2;
  out_of_range.pairs = SomePairs(1, 1);
  out_of_range.pairs[0].left_index = 1 << 20;
  const serve::MatchResponse response = service->Score(out_of_range);
  EXPECT_EQ(response.status, serve::ResponseStatus::kBadRequest);
  EXPECT_NE(response.error.find("out of range"), std::string::npos);
  EXPECT_EQ(service->stats().rejected, 2u);
}

TEST(MatchServiceTest, ExpiredRequestsCompleteWithoutScoring) {
  auto service = MakeService();
  std::vector<serve::MatchResponse> responses;
  std::mutex mu;
  std::vector<serve::PendingRequest> batch;
  for (int i = 0; i < 2; ++i) {
    serve::PendingRequest pending;
    pending.request.id = static_cast<uint64_t>(i);
    pending.request.pairs = SomePairs(2, 30);
    pending.enqueue_time = std::chrono::steady_clock::now();
    if (i == 0) {
      pending.has_deadline = true;
      pending.deadline =
          pending.enqueue_time - std::chrono::milliseconds(5);
    }
    pending.complete = [&responses, &mu](serve::MatchResponse response) {
      std::lock_guard<std::mutex> lock(mu);
      responses.push_back(std::move(response));
    };
    batch.push_back(std::move(pending));
  }
  service->HandleBatch(std::move(batch));
  ASSERT_EQ(responses.size(), 2u);
  for (const auto& response : responses) {
    if (response.id == 0) {
      EXPECT_EQ(response.status, serve::ResponseStatus::kDeadlineExceeded);
      EXPECT_TRUE(response.probs.empty());
    } else {
      EXPECT_EQ(response.status, serve::ResponseStatus::kOk);
    }
  }
  EXPECT_EQ(service->stats().expired, 1u);
}

TEST(MatchServiceTest, InfoJsonDescribesTheCatalog) {
  auto service = MakeService();
  const std::string info = service->InfoJson();
  EXPECT_NE(info.find("\"left_rows\""), std::string::npos);
  EXPECT_NE(info.find("\"DeepMatcher\""), std::string::npos);
  serve::MatchRequest request;
  request.id = 3;
  request.op = serve::RequestOp::kInfo;
  const serve::MatchResponse response = service->Score(request);
  EXPECT_EQ(response.status, serve::ResponseStatus::kOk);
  EXPECT_EQ(response.info, info);
}

// --- daemon over TCP ---

int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

serve::MatchResponse RoundTrip(int fd, const serve::MatchRequest& request) {
  EXPECT_TRUE(serve::WriteFrame(fd, serve::SerializeRequest(request)).ok());
  std::string payload;
  EXPECT_TRUE(serve::ReadFrame(fd, &payload).ok());
  auto parsed = serve::ParseMatchResponse(payload);
  EXPECT_TRUE(parsed.ok()) << payload;
  return parsed.ok() ? std::move(parsed).value() : serve::MatchResponse{};
}

class ServeDaemonTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::IgnoreSigPipe();  // a dying client must never SIGPIPE the suite
    EnsureSlowMatcherRegistered();
  }
};

TEST_F(ServeDaemonTest, ServesBitwiseIdenticalScoresOverTcp) {
  auto service = MakeService();
  serve::ServeDaemon daemon(service.get(), {/*port=*/0, {}});
  ASSERT_TRUE(daemon.Start().ok());
  ASSERT_GT(daemon.port(), 0);

  const std::vector<data::PairExample> pairs = SomePairs(8, 51);
  const int fd = ConnectLoopback(daemon.port());
  serve::MatchRequest request;
  request.id = 77;
  request.pairs = pairs;
  const serve::MatchResponse response = RoundTrip(fd, request);
  ::close(fd);
  EXPECT_EQ(response.id, 77u);
  ASSERT_EQ(response.status, serve::ResponseStatus::kOk);
  EXPECT_TRUE(BitwiseEqual(response.probs, OneShotReference(pairs)));

  daemon.Shutdown();
  daemon.Wait();
}

TEST_F(ServeDaemonTest, MalformedFramesAreRejectedWithoutCrashing) {
  auto service = MakeService();
  serve::ServeDaemon daemon(service.get(), {/*port=*/0, {}});
  ASSERT_TRUE(daemon.Start().ok());

  // Valid frame, garbage JSON: bad_request, connection stays usable.
  {
    const int fd = ConnectLoopback(daemon.port());
    ASSERT_TRUE(serve::WriteFrame(fd, "totally not json").ok());
    std::string payload;
    ASSERT_TRUE(serve::ReadFrame(fd, &payload).ok());
    auto parsed = serve::ParseMatchResponse(payload);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().status, serve::ResponseStatus::kBadRequest);
    serve::MatchRequest request;
    request.id = 5;
    request.pairs = SomePairs(2, 5);
    EXPECT_EQ(RoundTrip(fd, request).status, serve::ResponseStatus::kOk);
    ::close(fd);
  }

  // Oversized frame header: answered once, then the connection closes.
  {
    const int fd = ConnectLoopback(daemon.port());
    const uint8_t huge[4] = {0xFF, 0xFF, 0xFF, 0xFF};
    ASSERT_TRUE(serve::WriteFull(fd, huge, 4));
    std::string payload;
    ASSERT_TRUE(serve::ReadFrame(fd, &payload).ok());
    auto parsed = serve::ParseMatchResponse(payload);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().status, serve::ResponseStatus::kBadRequest);
    EXPECT_EQ(serve::ReadFrame(fd, &payload).code(),
              core::StatusCode::kNotFound);
    ::close(fd);
  }

  // Truncated frame then disconnect: the daemon just moves on.
  {
    const int fd = ConnectLoopback(daemon.port());
    const uint8_t header[4] = {0, 0, 0, 50};
    ASSERT_TRUE(serve::WriteFull(fd, header, 4));
    ::close(fd);
  }

  // Still alive and serving.
  const int fd = ConnectLoopback(daemon.port());
  serve::MatchRequest request;
  request.id = 6;
  request.pairs = SomePairs(1, 6);
  EXPECT_EQ(RoundTrip(fd, request).status, serve::ResponseStatus::kOk);
  ::close(fd);

  daemon.Shutdown();
  daemon.Wait();
}

TEST_F(ServeDaemonTest, ClientKilledMidResponseDoesNotKillTheDaemon) {
  auto service = MakeService();
  serve::ServeDaemon daemon(service.get(), {/*port=*/0, {}});
  ASSERT_TRUE(daemon.Start().ok());

  // Fire requests and slam the connection shut without reading: the
  // scorer's response writes land on a dead socket (EPIPE). Repeat a few
  // times so at least one write genuinely races the disconnect.
  for (int round = 0; round < 5; ++round) {
    const int fd = ConnectLoopback(daemon.port());
    serve::MatchRequest request;
    request.id = static_cast<uint64_t>(round);
    request.pairs = SomePairs(16, static_cast<uint64_t>(round));
    ASSERT_TRUE(
        serve::WriteFrame(fd, serve::SerializeRequest(request)).ok());
    struct linger hard_close {1, 0};  // RST instead of graceful FIN
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_close,
                 sizeof(hard_close));
    ::close(fd);
  }

  // The daemon must still answer a well-behaved client afterwards.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const int fd = ConnectLoopback(daemon.port());
  serve::MatchRequest request;
  request.id = 99;
  request.pairs = SomePairs(4, 99);
  EXPECT_EQ(RoundTrip(fd, request).status, serve::ResponseStatus::kOk);
  ::close(fd);

  daemon.Shutdown();
  daemon.Wait();
}

TEST_F(ServeDaemonTest, OverloadShedsWithExplicitStatus) {
  serve::MatchService::Config config;
  config.default_matcher = "SlowTest";
  EnsureSlowMatcherRegistered();
  auto service = MakeService(config);

  serve::ServeDaemon::Config daemon_config;
  daemon_config.port = 0;
  daemon_config.queue.capacity = 1;
  daemon_config.queue.max_batch = 1;
  serve::ServeDaemon daemon(service.get(), daemon_config);
  ASSERT_TRUE(daemon.Start().ok());

  // Pipeline several requests without reading; with a 1-deep queue and a
  // 200ms-per-sweep matcher, most must be shed with `overloaded`.
  const int fd = ConnectLoopback(daemon.port());
  constexpr int kRequests = 6;
  for (int i = 0; i < kRequests; ++i) {
    serve::MatchRequest request;
    request.id = static_cast<uint64_t>(i + 1);
    request.pairs = SomePairs(1, static_cast<uint64_t>(i));
    ASSERT_TRUE(
        serve::WriteFrame(fd, serve::SerializeRequest(request)).ok());
  }
  int ok = 0;
  int overloaded = 0;
  for (int i = 0; i < kRequests; ++i) {
    std::string payload;
    ASSERT_TRUE(serve::ReadFrame(fd, &payload).ok());
    auto parsed = serve::ParseMatchResponse(payload);
    ASSERT_TRUE(parsed.ok());
    if (parsed.value().status == serve::ResponseStatus::kOk) ++ok;
    if (parsed.value().status == serve::ResponseStatus::kOverloaded) {
      ++overloaded;
    }
  }
  ::close(fd);
  EXPECT_GE(ok, 1);
  EXPECT_GE(overloaded, 1);
  EXPECT_EQ(ok + overloaded, kRequests);
  EXPECT_EQ(daemon.queue_stats().shed,
            static_cast<uint64_t>(overloaded));

  daemon.Shutdown();
  daemon.Wait();
}

TEST_F(ServeDaemonTest, ExpiredDeadlineReturnsWithoutScoring) {
  serve::MatchService::Config config;
  config.default_matcher = "SlowTest";
  EnsureSlowMatcherRegistered();
  auto service = MakeService(config);

  serve::ServeDaemon::Config daemon_config;
  daemon_config.port = 0;
  daemon_config.queue.max_batch = 1;
  serve::ServeDaemon daemon(service.get(), daemon_config);
  ASSERT_TRUE(daemon.Start().ok());

  const int fd = ConnectLoopback(daemon.port());
  // Request 1 occupies the scorer for ~200ms; request 2's 1ms deadline
  // expires while queued and must come back unscored.
  serve::MatchRequest blocker;
  blocker.id = 1;
  blocker.pairs = SomePairs(1, 1);
  ASSERT_TRUE(
      serve::WriteFrame(fd, serve::SerializeRequest(blocker)).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  serve::MatchRequest hurried;
  hurried.id = 2;
  hurried.pairs = SomePairs(1, 2);
  hurried.deadline_ms = 1;
  ASSERT_TRUE(
      serve::WriteFrame(fd, serve::SerializeRequest(hurried)).ok());

  bool saw_expired = false;
  for (int i = 0; i < 2; ++i) {
    std::string payload;
    ASSERT_TRUE(serve::ReadFrame(fd, &payload).ok());
    auto parsed = serve::ParseMatchResponse(payload);
    ASSERT_TRUE(parsed.ok());
    if (parsed.value().id == 2) {
      EXPECT_EQ(parsed.value().status,
                serve::ResponseStatus::kDeadlineExceeded);
      EXPECT_TRUE(parsed.value().probs.empty());
      saw_expired = true;
    }
  }
  ::close(fd);
  EXPECT_TRUE(saw_expired);
  EXPECT_EQ(service->stats().expired, 1u);

  daemon.Shutdown();
  daemon.Wait();
}

TEST_F(ServeDaemonTest, InfoOpAnswersInline) {
  auto service = MakeService();
  serve::ServeDaemon daemon(service.get(), {/*port=*/0, {}});
  ASSERT_TRUE(daemon.Start().ok());
  const int fd = ConnectLoopback(daemon.port());
  serve::MatchRequest request;
  request.id = 11;
  request.op = serve::RequestOp::kInfo;
  const serve::MatchResponse response = RoundTrip(fd, request);
  ::close(fd);
  EXPECT_EQ(response.status, serve::ResponseStatus::kOk);
  EXPECT_NE(response.info.find("left_rows"), std::string::npos);
  daemon.Shutdown();
  daemon.Wait();
}

TEST_F(ServeDaemonTest, GracefulDrainAnswersAdmittedWork) {
  serve::MatchService::Config config;
  config.default_matcher = "SlowTest";
  EnsureSlowMatcherRegistered();
  auto service = MakeService(config);
  serve::ServeDaemon::Config daemon_config;
  daemon_config.port = 0;
  daemon_config.queue.max_batch = 1;
  serve::ServeDaemon daemon(service.get(), daemon_config);
  ASSERT_TRUE(daemon.Start().ok());

  const int fd = ConnectLoopback(daemon.port());
  serve::MatchRequest first;
  first.id = 1;
  first.pairs = SomePairs(1, 1);
  ASSERT_TRUE(serve::WriteFrame(fd, serve::SerializeRequest(first)).ok());
  serve::MatchRequest second;
  second.id = 2;
  second.pairs = SomePairs(1, 2);
  ASSERT_TRUE(serve::WriteFrame(fd, serve::SerializeRequest(second)).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Shutdown mid-flight: both admitted requests still get ok responses
  // (the write half of the connection survives the drain).
  daemon.Shutdown();
  int ok = 0;
  for (int i = 0; i < 2; ++i) {
    std::string payload;
    if (!serve::ReadFrame(fd, &payload).ok()) break;
    auto parsed = serve::ParseMatchResponse(payload);
    ASSERT_TRUE(parsed.ok());
    if (parsed.value().status == serve::ResponseStatus::kOk) ++ok;
  }
  ::close(fd);
  daemon.Wait();
  EXPECT_EQ(ok, 2);
}

}  // namespace
}  // namespace promptem
