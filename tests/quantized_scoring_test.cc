// End-to-end parity for the int8 dynamically-quantized eval path: on
// every built-in benchmark, ScoreBatch in int8 mode must reproduce the
// f32 path's F1 within 0.5 points (the ISSUE acceptance bound) and keep
// per-pair probabilities close. Also pins the gating rules: training
// forwards and MC-dropout passes never take the quantized kernel, and
// the int8 path itself is bitwise deterministic at any pool size.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/thread_pool.h"
#include "data/benchmarks.h"
#include "lm/pretrained_lm.h"
#include "promptem/encoding.h"
#include "promptem/finetune_model.h"
#include "promptem/promptem.h"
#include "promptem/scoring.h"
#include "promptem/trainer.h"
#include "tensor/quant.h"

namespace promptem {
namespace {

using em::EncodedPair;
using em::ProbPair;

/// RAII: int8 eval mode for the scope, restoring f32 after.
class ScopedInt8Eval {
 public:
  ScopedInt8Eval() {
    em::SetEvalQuantization(tensor::quant::EvalQuantMode::kInt8);
  }
  ~ScopedInt8Eval() {
    em::SetEvalQuantization(tensor::quant::EvalQuantMode::kF32);
  }
};

const lm::PretrainedLM& FixtureLM() {
  static const lm::PretrainedLM* kLm = [] {
    auto loaded =
        lm::PretrainedLM::Load("tests/data/promptem_integration_lm");
    if (!loaded.ok()) {
      std::fprintf(stderr,
                   "fixture LM missing (%s); tests must run from the repo "
                   "root\n",
                   loaded.status().ToString().c_str());
      std::abort();
    }
    return loaded.value().release();
  }();
  return *kLm;
}

double F1Of(const std::vector<int>& pred,
            const std::vector<EncodedPair>& xs) {
  int tp = 0, fp = 0, fn = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (pred[i] == 1 && xs[i].label == 1) ++tp;
    if (pred[i] == 1 && xs[i].label == 0) ++fp;
    if (pred[i] == 0 && xs[i].label == 1) ++fn;
  }
  if (tp == 0) return (fp == 0 && fn == 0) ? 1.0 : 0.0;
  const double p = static_cast<double>(tp) / (tp + fp);
  const double r = static_cast<double>(tp) / (tp + fn);
  return 2.0 * p * r / (p + r);
}

/// A briefly trained classifier + the benchmark's encoded test pairs —
/// enough structure that F1 parity is a meaningful bar (an untrained
/// model's probabilities all sit at the decision boundary).
struct TrainedOnBenchmark {
  std::unique_ptr<em::FinetuneModel> model;
  std::vector<EncodedPair> test;
};

TrainedOnBenchmark TrainOn(data::BenchmarkKind kind) {
  data::BenchmarkGenOptions small;
  small.size_scale = 0.3;
  const data::GemDataset dataset = data::GenerateBenchmark(kind, 13, small);
  core::Rng split_rng(77);
  const data::LowResourceSplit split =
      data::MakeLowResourceSplit(dataset, 0.5, &split_rng);
  em::PairEncoder encoder = em::MakePairEncoder(FixtureLM(), dataset);

  TrainedOnBenchmark out;
  core::Rng model_rng(9);
  out.model = std::make_unique<em::FinetuneModel>(FixtureLM(), &model_rng);
  em::TrainOptions options;
  options.epochs = 3;
  options.seed = 17;
  em::TrainClassifier(out.model.get(),
                      encoder.EncodeAll(dataset, split.labeled),
                      encoder.EncodeAll(dataset, split.valid), options);
  out.test = encoder.EncodeAll(dataset, split.test);
  return out;
}

TEST(QuantizedScoringTest, Int8F1WithinHalfPointOnEveryBenchmark) {
  for (data::BenchmarkKind kind : data::AllBenchmarks()) {
    const char* name = data::GetBenchmarkInfo(kind).name;
    TrainedOnBenchmark tb = TrainOn(kind);
    ASSERT_FALSE(tb.test.empty()) << name;

    const std::vector<ProbPair> f32_probs =
        em::ScoreBatch(tb.model.get(), tb.test);
    std::vector<ProbPair> int8_probs;
    {
      ScopedInt8Eval int8;
      int8_probs = em::ScoreBatch(tb.model.get(), tb.test);
    }

    const double f32_f1 = F1Of(em::LabelsFromProbs(f32_probs), tb.test);
    const double int8_f1 = F1Of(em::LabelsFromProbs(int8_probs), tb.test);
    // "0.5 F1 points" on the percent scale everyone reports.
    EXPECT_LE(std::fabs(f32_f1 - int8_f1), 0.005 + 1e-12)
        << name << ": f32 F1 " << f32_f1 << " vs int8 F1 " << int8_f1;

    // The probabilities themselves stay close — the F1 match must come
    // from genuinely similar scores, not offsetting label flips.
    float worst = 0.0f;
    for (size_t i = 0; i < f32_probs.size(); ++i) {
      worst = std::max(worst, std::fabs(f32_probs[i][1] - int8_probs[i][1]));
    }
    EXPECT_LE(worst, 0.08f) << name << ": worst |dP(yes)| " << worst;
  }
}

TEST(QuantizedScoringTest, Int8PathDeterministicAcrossPoolSizes) {
  TrainedOnBenchmark tb = TrainOn(data::BenchmarkKind::kRelHeter);
  ScopedInt8Eval int8;
  std::vector<ProbPair> reference;
  for (int threads : {1, 3}) {
    core::SetNumThreads(threads);
    const std::vector<ProbPair> probs =
        em::ScoreBatch(tb.model.get(), tb.test);
    if (reference.empty()) {
      reference = probs;
    } else {
      ASSERT_EQ(probs.size(), reference.size());
      for (size_t i = 0; i < probs.size(); ++i) {
        EXPECT_EQ(probs[i][0], reference[i][0]) << "sample " << i;
        EXPECT_EQ(probs[i][1], reference[i][1]) << "sample " << i;
      }
    }
  }
  core::SetNumThreads(0);
}

TEST(QuantizedScoringTest, Int8ActuallyChangesEvalNumbers) {
  // Guards against the gate silently never engaging: the quantized
  // forward is an approximation, so at least one pair's probabilities
  // must differ from the f32 pass (exact equality would mean the int8
  // branch never ran).
  TrainedOnBenchmark tb = TrainOn(data::BenchmarkKind::kSemiHomo);
  const std::vector<ProbPair> f32_probs =
      em::ScoreBatch(tb.model.get(), tb.test);
  std::vector<ProbPair> int8_probs;
  {
    ScopedInt8Eval int8;
    int8_probs = em::ScoreBatch(tb.model.get(), tb.test);
  }
  bool any_diff = false;
  for (size_t i = 0; i < f32_probs.size(); ++i) {
    if (f32_probs[i][1] != int8_probs[i][1]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(QuantizedScoringTest, TrainingAndMcDropoutStayF32) {
  // Int8EvalActive requires grad mode OFF: a training-style forward
  // (grad enabled) is identical whether or not int8 mode is set.
  TrainedOnBenchmark tb = TrainOn(data::BenchmarkKind::kRelHeter);
  const EncodedPair& x = tb.test.front();

  tb.model->AsModule()->Eval();
  core::Rng r1(3);
  const tensor::Tensor loss_f32 = tb.model->Loss(x, x.label, &r1);
  float with_int8 = 0.0f;
  {
    ScopedInt8Eval int8;
    core::Rng r2(3);
    with_int8 = tb.model->Loss(x, x.label, &r2).at(0);
  }
  EXPECT_EQ(loss_f32.at(0), with_int8);

  // MC-dropout passes run under ScopedTrainingMode; the module reports
  // training(), so Linear::Forward skips the quantized branch and the
  // stochastic estimates are unchanged by the int8 switch.
  const std::vector<uint64_t> seeds = {11, 12, 13};
  const std::vector<EncodedPair> xs(3, x);
  const std::vector<ProbPair> plain =
      em::ScoreBatchStochastic(tb.model.get(), xs, seeds);
  std::vector<ProbPair> gated;
  {
    ScopedInt8Eval int8;
    gated = em::ScoreBatchStochastic(tb.model.get(), xs, seeds);
  }
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i][0], gated[i][0]) << "pass " << i;
    EXPECT_EQ(plain[i][1], gated[i][1]) << "pass " << i;
  }
}

}  // namespace
}  // namespace promptem
